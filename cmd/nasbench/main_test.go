package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestProjectionText checks the default mode renders both paper tables
// for SP.
func TestProjectionText(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, []string{"-bench", "sp"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	for _, want := range []string{"Table: SP Class A", "Table: SP Class B", "E.dHPF"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestProjectionJSON checks -json emits one row per (class, procs) pair
// with the projected fields populated.
func TestProjectionJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, []string{"-bench", "sp", "-json", "-procs", "4,9"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	var rows []jsonRow
	if err := json.Unmarshal(out.Bytes(), &rows); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(rows) != 4 { // 2 classes x 2 proc counts
		t.Fatalf("got %d rows, want 4: %+v", len(rows), rows)
	}
	for _, r := range rows {
		if r.Bench != "sp" || r.Mode != "projected" {
			t.Errorf("row misidentified: %+v", r)
		}
		if r.Procs != 4 && r.Procs != 9 {
			t.Errorf("unexpected procs %d", r.Procs)
		}
		if r.DhpfS == nil || r.EffDhpf == nil {
			t.Errorf("projected row missing dHPF fields: %+v", r)
		}
	}
}

// TestMeasureJSON runs the tiny measured mode end to end on the
// simulator.
func TestMeasureJSON(t *testing.T) {
	var out bytes.Buffer
	err := run(&out, []string{"-bench", "sp", "-measure", "-json", "-n", "10", "-steps", "1", "-procs", "4"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var rows []jsonRow
	if err := json.Unmarshal(out.Bytes(), &rows); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(rows) != 1 || rows[0].Mode != "measured" || rows[0].Procs != 4 {
		t.Fatalf("unexpected rows: %+v", rows)
	}
	if rows[0].HandS == nil || rows[0].DhpfS == nil || rows[0].EffDhpf == nil {
		t.Errorf("measured row missing times: %+v", rows[0])
	}
}

// TestBadFlags covers the error surface.
func TestBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, []string{"-procs", "4,x"}); err == nil {
		t.Error("bad -procs accepted")
	}
	if err := run(&out, []string{"-nonsense"}); err == nil {
		t.Error("unknown flag accepted")
	}
}
