// Command nasbench regenerates the paper's Tables 8.1 and 8.2: execution
// time, relative speedup and relative efficiency of the hand-written
// multipartitioning MPI code, the dhpf-compiled HPF code, and the
// PGI-style transpose code, for NAS SP and BT.
//
// Two modes, reflecting the reproduction protocol (DESIGN.md):
//
//	-measure   run all three implementations on the virtual machine at a
//	           reduced size (default N=24, 2 steps) and print measured
//	           times — this validates the shape of the comparison;
//	-project   print the analytic LogGP projection of the paper's Class
//	           A/B sizes across the paper's processor counts (default).
//
// With -json the rows are emitted as a machine-readable JSON array (for
// benchmark-trajectory tracking) instead of the rendered tables.
//
// Usage:
//
//	nasbench [-bench sp|bt|all] [-measure] [-json] [-n N] [-steps S] [-procs csv]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"dhpf/internal/mpsim"
	"dhpf/internal/nas"
	"dhpf/internal/perfmodel"
	"dhpf/internal/spmd"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nasbench:", err)
		os.Exit(1)
	}
}

// jsonRow is one table row in -json form.  Inapplicable measurements
// (NaN in the table) are omitted rather than serialized.
type jsonRow struct {
	Bench string `json:"bench"`
	Class string `json:"class,omitempty"` // projection only
	Mode  string `json:"mode"`            // "projected" or "measured"
	N     int    `json:"n"`
	Steps int    `json:"steps"`
	Procs int    `json:"procs"`

	HandS *float64 `json:"hand_s,omitempty"`
	DhpfS *float64 `json:"dhpf_s,omitempty"`
	PgiS  *float64 `json:"pgi_s,omitempty"`

	SpeedupHand *float64 `json:"speedup_hand,omitempty"`
	SpeedupDhpf *float64 `json:"speedup_dhpf,omitempty"`
	SpeedupPgi  *float64 `json:"speedup_pgi,omitempty"`
	EffDhpf     *float64 `json:"eff_dhpf,omitempty"`
	EffPgi      *float64 `json:"eff_pgi,omitempty"`
}

// fptr maps a table cell to its JSON field: NaN and zero (the table's
// "-") become absent.
func fptr(v float64) *float64 {
	if math.IsNaN(v) || v == 0 {
		return nil
	}
	return &v
}

// run is main with its environment made explicit, so tests can drive
// the CLI end to end.
func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("nasbench", flag.ContinueOnError)
	fs.SetOutput(w)
	bench := fs.String("bench", "all", "sp, bt or all")
	measure := fs.Bool("measure", false, "measure reduced-size runs on the simulator")
	asJSON := fs.Bool("json", false, "emit rows as a JSON array instead of tables")
	n := fs.Int("n", 24, "grid size for -measure")
	steps := fs.Int("steps", 2, "time steps for -measure")
	procsCSV := fs.String("procs", "", "comma-separated rank counts (default: the paper's)")
	grain := fs.Int("grain", 8, "dhpf pipeline strip width")
	if err := fs.Parse(args); err != nil {
		return err
	}

	benches := []string{"sp", "bt"}
	if *bench != "all" {
		benches = []string{*bench}
	}
	var rows []jsonRow
	for _, b := range benches {
		procs := perfmodel.PaperProcs[b]
		if *procsCSV != "" {
			var err error
			if procs, err = parseCSV(*procsCSV); err != nil {
				return err
			}
		}
		if *measure {
			rows = append(rows, measureTable(w, b, *n, *steps, procs, *grain, *asJSON)...)
			continue
		}
		base := 4
		for _, class := range []nas.Class{nas.ClassA, nas.ClassB} {
			if b == "bt" && class.Name == "B" {
				base = 16 // the paper's convention for BT Class B
			}
			tb, err := perfmodel.BuildTable(b, class, procs, base, mpsim.SP2Config(1), *grain)
			if err != nil {
				return err
			}
			if *asJSON {
				rows = append(rows, projectedRows(tb)...)
			} else {
				fmt.Fprintln(w, tb.Render())
			}
		}
	}
	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rows)
	}
	return nil
}

// projectedRows converts a perfmodel table to JSON rows.
func projectedRows(tb *perfmodel.Table) []jsonRow {
	out := make([]jsonRow, 0, len(tb.Rows))
	for _, r := range tb.Rows {
		out = append(out, jsonRow{
			Bench: tb.Bench, Class: tb.Class.Name, Mode: "projected",
			N: tb.Class.N, Steps: tb.Class.Steps, Procs: r.Procs,
			HandS: fptr(r.Hand), DhpfS: fptr(r.DHPF), PgiS: fptr(r.PGI),
			SpeedupHand: fptr(r.SpHand), SpeedupDhpf: fptr(r.SpDHPF), SpeedupPgi: fptr(r.SpPGI),
			EffDhpf: fptr(r.EffDHPF), EffPgi: fptr(r.EffPGI),
		})
	}
	return out
}

// measureTable runs the three implementations at a reduced size.  With
// asJSON it returns the rows silently; otherwise it renders the table.
func measureTable(w io.Writer, bench string, n, steps int, procs []int, grain int, asJSON bool) []jsonRow {
	if !asJSON {
		fmt.Fprintf(w, "Measured on the virtual machine: %s, N=%d, %d steps\n", strings.ToUpper(bench), n, steps)
		fmt.Fprintf(w, "%6s | %12s %12s %12s | %8s %8s\n", "procs", "hand(s)", "dHPF(s)", "PGI(s)", "E.dHPF", "E.PGI")
		fmt.Fprintln(w, strings.Repeat("-", 72))
	}
	opt := spmd.DefaultOptions()
	opt.PipelineGrain = grain
	var rows []jsonRow
	for _, p := range procs {
		hand, dhpfT, pgi := "-", "-", "-"
		var handT float64
		if mp, err := nas.RunMultipart(bench, n, steps, p, mpsim.SP2Config(p)); err == nil {
			handT = mp.Machine.Time
			hand = fmt.Sprintf("%.6f", handT)
		}
		var dT, gT float64
		if src := sourceFor(bench, n, steps, p); src != "" {
			if prog, err := spmd.CompileSource(src, nil, opt); err == nil {
				if res, err := prog.Execute(mpsim.SP2Config(p)); err == nil {
					dT = res.Machine.Time
					dhpfT = fmt.Sprintf("%.6f", dT)
				}
			}
		}
		if tp, err := nas.RunTranspose(bench, n, steps, p, mpsim.SP2Config(p)); err == nil {
			gT = tp.Machine.Time
			pgi = fmt.Sprintf("%.6f", gT)
		}
		ed, eg := "-", "-"
		var edV, egV float64
		if handT > 0 && dT > 0 {
			edV = handT / dT
			ed = fmt.Sprintf("%.2f", edV)
		}
		if handT > 0 && gT > 0 {
			egV = handT / gT
			eg = fmt.Sprintf("%.2f", egV)
		}
		if asJSON {
			rows = append(rows, jsonRow{
				Bench: bench, Mode: "measured", N: n, Steps: steps, Procs: p,
				HandS: fptr(handT), DhpfS: fptr(dT), PgiS: fptr(gT),
				EffDhpf: fptr(edV), EffPgi: fptr(egV),
			})
		} else {
			fmt.Fprintf(w, "%6d | %12s %12s %12s | %8s %8s\n", p, hand, dhpfT, pgi, ed, eg)
		}
	}
	if !asJSON {
		fmt.Fprintln(w)
	}
	return rows
}

func sourceFor(bench string, n, steps, p int) string {
	p1, p2 := nas.GridShape(p)
	if bench == "sp" {
		return nas.SPSource(n, steps, p1, p2)
	}
	return nas.BTSource(n, steps, p1, p2)
}

func parseCSV(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
