// Command nasbench regenerates the paper's Tables 8.1 and 8.2: execution
// time, relative speedup and relative efficiency of the hand-written
// multipartitioning MPI code, the dhpf-compiled HPF code, and the
// PGI-style transpose code, for NAS SP and BT.
//
// Two modes, reflecting the reproduction protocol (DESIGN.md):
//
//	-measure   run all three implementations on the virtual machine at a
//	           reduced size (default N=24, 2 steps) and print measured
//	           times — this validates the shape of the comparison;
//	-project   print the analytic LogGP projection of the paper's Class
//	           A/B sizes across the paper's processor counts (default).
//
// Usage:
//
//	nasbench [-bench sp|bt|all] [-measure] [-n N] [-steps S] [-procs csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dhpf/internal/mpsim"
	"dhpf/internal/nas"
	"dhpf/internal/perfmodel"
	"dhpf/internal/spmd"
)

func main() {
	bench := flag.String("bench", "all", "sp, bt or all")
	measure := flag.Bool("measure", false, "measure reduced-size runs on the simulator")
	n := flag.Int("n", 24, "grid size for -measure")
	steps := flag.Int("steps", 2, "time steps for -measure")
	procsCSV := flag.String("procs", "", "comma-separated rank counts (default: the paper's)")
	grain := flag.Int("grain", 8, "dhpf pipeline strip width")
	flag.Parse()

	benches := []string{"sp", "bt"}
	if *bench != "all" {
		benches = []string{*bench}
	}
	for _, b := range benches {
		procs := perfmodel.PaperProcs[b]
		if *procsCSV != "" {
			procs = parseCSV(*procsCSV)
		}
		if *measure {
			measureTable(b, *n, *steps, procs, *grain)
		} else {
			base := 4
			for _, class := range []nas.Class{nas.ClassA, nas.ClassB} {
				if b == "bt" && class.Name == "B" {
					base = 16 // the paper's convention for BT Class B
				}
				tb, err := perfmodel.BuildTable(b, class, procs, base, mpsim.SP2Config(1), *grain)
				if err != nil {
					fatal(err)
				}
				fmt.Println(tb.Render())
			}
		}
	}
}

// measureTable runs the three implementations at a reduced size.
func measureTable(bench string, n, steps int, procs []int, grain int) {
	fmt.Printf("Measured on the virtual machine: %s, N=%d, %d steps\n", strings.ToUpper(bench), n, steps)
	fmt.Printf("%6s | %12s %12s %12s | %8s %8s\n", "procs", "hand(s)", "dHPF(s)", "PGI(s)", "E.dHPF", "E.PGI")
	fmt.Println(strings.Repeat("-", 72))
	opt := spmd.DefaultOptions()
	opt.PipelineGrain = grain
	for _, p := range procs {
		hand, dhpfT, pgi := "-", "-", "-"
		var handT float64
		if mp, err := nas.RunMultipart(bench, n, steps, p, mpsim.SP2Config(p)); err == nil {
			handT = mp.Machine.Time
			hand = fmt.Sprintf("%.6f", handT)
		}
		var dT, gT float64
		if src := sourceFor(bench, n, steps, p); src != "" {
			if prog, err := spmd.CompileSource(src, nil, opt); err == nil {
				if res, err := prog.Execute(mpsim.SP2Config(p)); err == nil {
					dT = res.Machine.Time
					dhpfT = fmt.Sprintf("%.6f", dT)
				}
			}
		}
		if tp, err := nas.RunTranspose(bench, n, steps, p, mpsim.SP2Config(p)); err == nil {
			gT = tp.Machine.Time
			pgi = fmt.Sprintf("%.6f", gT)
		}
		ed, eg := "-", "-"
		if handT > 0 && dT > 0 {
			ed = fmt.Sprintf("%.2f", handT/dT)
		}
		if handT > 0 && gT > 0 {
			eg = fmt.Sprintf("%.2f", handT/gT)
		}
		fmt.Printf("%6d | %12s %12s %12s | %8s %8s\n", p, hand, dhpfT, pgi, ed, eg)
	}
	fmt.Println()
}

func sourceFor(bench string, n, steps, p int) string {
	p1, p2 := nas.GridShape(p)
	if bench == "sp" {
		return nas.SPSource(n, steps, p1, p2)
	}
	return nas.BTSource(n, steps, p1, p2)
}

func parseCSV(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			fatal(err)
		}
		out = append(out, v)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nasbench:", err)
	os.Exit(1)
}
