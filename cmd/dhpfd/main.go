// Command dhpfd serves the dhpf compiler over HTTP/JSON and load-tests
// it.  The server fronts every compilation with a content-addressed
// program cache (identical requests hit or coalesce; see
// internal/cache) and a bounded worker pool with queue backpressure.
//
// Usage:
//
//	dhpfd serve [-addr :8421] [-workers 4] [-queue 64] [-cache-mb 256]
//	            [-artifact-mb 64] [-timeout 60s] [-quiet]
//	dhpfd loadgen [-addr http://127.0.0.1:8421] [-requests 200]
//	              [-concurrency 8] [-warm 0.8] [-n 16] [-steps 1] [-json]
//
// serve runs until interrupted (SIGINT/SIGTERM), then drains and prints
// its final counters.  loadgen drives /v1/compile with a mixed workload:
// a fraction of requests repeat one hot SP configuration (warm) and the
// rest cycle through unique parameter variants (cold), and reports
// sustained throughput and latency for each class — the warm/cold
// compile-throughput experiment of EXPERIMENTS.md.  With -json the
// report is a single JSON summary object on stdout, for scripting.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"sync"
	"syscall"
	"time"

	"dhpf"
	"dhpf/internal/nas"
	"dhpf/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dhpfd:", err)
		os.Exit(1)
	}
}

// run is main with its environment made explicit so tests can drive the
// daemon end to end; cancelling ctx shuts serve down gracefully.
func run(ctx context.Context, w io.Writer, args []string) error {
	if len(args) < 1 {
		return errors.New("usage: dhpfd serve|loadgen [flags]")
	}
	switch args[0] {
	case "serve":
		return serve(ctx, w, args[1:])
	case "loadgen":
		return loadgen(ctx, w, args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want serve or loadgen)", args[0])
	}
}

func serve(ctx context.Context, w io.Writer, args []string) error {
	fs := flag.NewFlagSet("dhpfd serve", flag.ContinueOnError)
	fs.SetOutput(w)
	addr := fs.String("addr", ":8421", "listen address")
	workers := fs.Int("workers", 4, "concurrent compile workers")
	queue := fs.Int("queue", 64, "queued compiles beyond the workers (full queue = 429)")
	cacheMB := fs.Int("cache-mb", 256, "program cache budget in MiB")
	artifactMB := fs.Int("artifact-mb", 64, "per-procedure artifact store budget in MiB")
	timeout := fs.Duration("timeout", 60*time.Second, "per-request compile deadline")
	quiet := fs.Bool("quiet", false, "suppress per-request logs")
	if err := fs.Parse(args); err != nil {
		return err
	}

	logger := slog.New(slog.NewTextHandler(w, nil))
	if *quiet {
		logger = nil
	}
	srv := service.New(service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheBytes:     int64(*cacheMB) << 20,
		ArtifactBytes:  int64(*artifactMB) << 20,
		RequestTimeout: *timeout,
		Logger:         logger,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "dhpfd: listening on http://%s (workers=%d queue=%d cache=%dMiB timeout=%s)\n",
		ln.Addr(), *workers, *queue, *cacheMB, *timeout)

	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return err
	}
	st := srv.Stats()
	fmt.Fprintf(w, "dhpfd: shut down after %d requests (%d compiles, %d cache hits, %d coalesced, %d rejected)\n",
		st.Server.Requests, st.Server.Compiles, st.Cache.Hits, st.Cache.InflightCoalesced, st.Server.Rejected)
	return nil
}

// loadgen measures a served dhpfd instance with a mixed workload.
func loadgen(ctx context.Context, w io.Writer, args []string) error {
	fs := flag.NewFlagSet("dhpfd loadgen", flag.ContinueOnError)
	fs.SetOutput(w)
	addr := fs.String("addr", "http://127.0.0.1:8421", "service base URL")
	requests := fs.Int("requests", 200, "total requests to send")
	concurrency := fs.Int("concurrency", 8, "concurrent client goroutines")
	warmFrac := fs.Float64("warm", 0.8, "fraction of requests repeating the hot configuration")
	n := fs.Int("n", 16, "SP grid size")
	steps := fs.Int("steps", 1, "SP time steps")
	asJSON := fs.Bool("json", false, "print a single JSON summary object instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *warmFrac < 0 || *warmFrac > 1 {
		return fmt.Errorf("-warm %g outside [0,1]", *warmFrac)
	}

	client := dhpf.NewClient(*addr)
	src := nas.SPSource(*n, *steps, 2, 2)
	warmReq := dhpf.CompileRequest{Source: src, Ranks: []int{0}}

	type sample struct {
		warm bool
		dur  time.Duration
		err  error
	}
	jobs := make(chan int)
	samples := make([]sample, *requests)
	var wg sync.WaitGroup
	t0 := time.Now()
	for g := 0; g < *concurrency; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				req := warmReq
				// Spread the cold fraction evenly across the index
				// space so small runs still mix both classes.
				coldFrac := 1 - *warmFrac
				warm := math.Floor(float64(i+1)*coldFrac) == math.Floor(float64(i)*coldFrac)
				if !warm {
					// Unique params = unique fingerprint = cold compile.
					req.Params = map[string]int{"SEED": i}
				}
				start := time.Now()
				_, err := client.Compile(ctx, req)
				samples[i] = sample{warm: warm, dur: time.Since(start), err: err}
			}
		}()
	}
	for i := 0; i < *requests; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			close(jobs)
			wg.Wait()
			return ctx.Err()
		}
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(t0)

	var warmDurs, coldDurs []time.Duration
	errs, rejected := 0, 0
	for _, sm := range samples {
		if sm.err != nil {
			errs++
			var apiErr *dhpf.APIError
			if errors.As(sm.err, &apiErr) && apiErr.StatusCode == http.StatusTooManyRequests {
				rejected++
			}
			continue
		}
		if sm.warm {
			warmDurs = append(warmDurs, sm.dur)
		} else {
			coldDurs = append(coldDurs, sm.dur)
		}
	}
	ok := *requests - errs
	// Snapshot the artifact tier after the run: how much per-procedure
	// analysis the warm traffic reused versus recomputed.
	var artifacts *dhpf.ArtifactCacheStats
	if st, err := client.Stats(ctx); err == nil {
		artifacts = &st.Artifacts
	}
	sum := loadgenSummary{
		Requests:     *requests,
		OK:           ok,
		Errors:       errs,
		Rejected429:  rejected,
		Concurrency:  *concurrency,
		WarmFraction: *warmFrac,
		ElapsedNS:    elapsed.Nanoseconds(),
		Throughput:   float64(ok) / elapsed.Seconds(),
		Warm:         summarize(warmDurs),
		Cold:         summarize(coldDurs),
		Artifacts:    artifacts,
	}
	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(sum)
	}
	fmt.Fprintf(w, "loadgen: %d requests (%d ok, %d errors, %d rejected 429) in %.3fs\n",
		sum.Requests, sum.OK, sum.Errors, sum.Rejected429, elapsed.Seconds())
	fmt.Fprintf(w, "throughput: %.1f req/s sustained at concurrency %d (warm fraction %.0f%%)\n",
		sum.Throughput, sum.Concurrency, sum.WarmFraction*100)
	report := func(label string, ls latencySummary) {
		if ls.Requests == 0 {
			fmt.Fprintf(w, "%-5s 0 requests\n", label)
			return
		}
		ns := func(v int64) string { return time.Duration(v).Round(time.Microsecond).String() }
		fmt.Fprintf(w, "%-5s %5d requests  mean %-10s p50 %-10s p95 %-10s max %s\n",
			label, ls.Requests, ns(ls.MeanNS), ns(ls.P50NS), ns(ls.P95NS), ns(ls.MaxNS))
	}
	report("warm", sum.Warm)
	report("cold", sum.Cold)
	if a := sum.Artifacts; a != nil {
		fmt.Fprintf(w, "artifacts: %d hits, %d misses, %d dirty recomputes, %d entries (%d B)\n",
			a.Hits, a.Misses, a.Dirty, a.Entries, a.SizeBytes)
	}
	return nil
}

// loadgenSummary is the -json report: one object, nanosecond latencies,
// so a script can diff throughput across configurations without parsing
// the human table.
type loadgenSummary struct {
	Requests     int            `json:"requests"`
	OK           int            `json:"ok"`
	Errors       int            `json:"errors"`
	Rejected429  int            `json:"rejected_429"`
	Concurrency  int            `json:"concurrency"`
	WarmFraction float64        `json:"warm_fraction"`
	ElapsedNS    int64          `json:"elapsed_ns"`
	Throughput   float64        `json:"throughput_rps"`
	Warm         latencySummary `json:"warm"`
	Cold         latencySummary `json:"cold"`
	// Artifacts is the service's per-procedure artifact-tier counters
	// after the run (nil when /v1/stats was unreachable).
	Artifacts *dhpf.ArtifactCacheStats `json:"artifacts,omitempty"`
}

type latencySummary struct {
	Requests int   `json:"requests"`
	MeanNS   int64 `json:"mean_ns"`
	P50NS    int64 `json:"p50_ns"`
	P95NS    int64 `json:"p95_ns"`
	MaxNS    int64 `json:"max_ns"`
}

func summarize(durs []time.Duration) latencySummary {
	if len(durs) == 0 {
		return latencySummary{}
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	var total time.Duration
	for _, d := range durs {
		total += d
	}
	q := func(p float64) int64 {
		return durs[min(int(p*float64(len(durs))), len(durs)-1)].Nanoseconds()
	}
	return latencySummary{
		Requests: len(durs),
		MeanNS:   (total / time.Duration(len(durs))).Nanoseconds(),
		P50NS:    q(0.50),
		P95NS:    q(0.95),
		MaxNS:    durs[len(durs)-1].Nanoseconds(),
	}
}
