// Command dhpfd serves the dhpf compiler over HTTP/JSON and load-tests
// it.  The server fronts every compilation with a content-addressed
// program cache (identical requests hit or coalesce; see
// internal/cache) and a bounded worker pool with queue backpressure.
//
// Usage:
//
//	dhpfd serve [-addr :8421] [-workers 4] [-queue 64] [-cache-mb 256]
//	            [-artifact-mb 64] [-timeout 60s] [-quiet]
//	            [-store PATH] [-store-mb 1024] [-peers URL,URL,...] [-self N]
//	dhpfd loadgen [-addr http://127.0.0.1:8421] [-requests 200]
//	              [-concurrency 8] [-warm 0.8] [-n 16] [-steps 1] [-json]
//	              [-fleet URL,URL,...] [-min-peer-hits 0]
//
// serve runs until interrupted (SIGINT/SIGTERM), then drains and prints
// its final counters.  With -store the server persists compiled programs
// and per-procedure artifacts to an append-only chunk journal at PATH, so
// a restart serves previously seen fingerprints from disk with zero pass
// work; -store-mb bounds the journal's live bytes (LRU eviction).  With
// -peers (the same list, same order, on every member) the server joins a
// static fleet sharded by consistent hashing: a local miss first asks the
// fingerprint's owning peer before compiling cold.
//
// loadgen drives /v1/compile with a mixed workload: a fraction of
// requests repeat one hot SP configuration (warm) and the rest cycle
// through unique parameter variants (cold), and reports sustained
// throughput and latency for each class — the warm/cold
// compile-throughput experiment of EXPERIMENTS.md.  With -fleet the
// requests round-robin over the replicas: the hot configuration is
// primed at its ring owner, every response is checked for cross-replica
// identity, per-replica throughput is reported, and -min-peer-hits
// fails the run unless the fleet counters show at least that many
// cross-replica warm hits.  With -json the report is a single JSON
// summary object on stdout, for scripting.
package main

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"dhpf"
	// The checked-in kernel corpus: RunRequest.Engine="codegen" serves
	// the pre-generated NAS kernels without any plugin machinery.
	_ "dhpf/internal/codegen/gen"
	"dhpf/internal/nas"
	"dhpf/internal/service"
	"dhpf/internal/store"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dhpfd:", err)
		os.Exit(1)
	}
}

// run is main with its environment made explicit so tests can drive the
// daemon end to end; cancelling ctx shuts serve down gracefully.
func run(ctx context.Context, w io.Writer, args []string) error {
	if len(args) < 1 {
		return errors.New("usage: dhpfd serve|loadgen [flags]")
	}
	switch args[0] {
	case "serve":
		return serve(ctx, w, args[1:])
	case "loadgen":
		return loadgen(ctx, w, args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want serve or loadgen)", args[0])
	}
}

func serve(ctx context.Context, w io.Writer, args []string) error {
	fs := flag.NewFlagSet("dhpfd serve", flag.ContinueOnError)
	fs.SetOutput(w)
	addr := fs.String("addr", ":8421", "listen address")
	workers := fs.Int("workers", 4, "concurrent compile workers")
	queue := fs.Int("queue", 64, "queued compiles beyond the workers (full queue = 429)")
	cacheMB := fs.Int("cache-mb", 256, "program cache budget in MiB")
	artifactMB := fs.Int("artifact-mb", 64, "per-procedure artifact store budget in MiB")
	timeout := fs.Duration("timeout", 60*time.Second, "per-request compile deadline")
	quiet := fs.Bool("quiet", false, "suppress per-request logs")
	storePath := fs.String("store", "", "durable chunk-store journal path (empty = memory only)")
	storeMB := fs.Int("store-mb", 1024, "durable store live-byte budget in MiB (LRU eviction beyond it)")
	peersFlag := fs.String("peers", "", "comma-separated fleet base URLs, identical on every member")
	self := fs.Int("self", 0, "this server's index in -peers")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var peers []string
	if *peersFlag != "" {
		for _, p := range strings.Split(*peersFlag, ",") {
			peers = append(peers, strings.TrimRight(strings.TrimSpace(p), "/"))
		}
		if *self < 0 || *self >= len(peers) {
			return fmt.Errorf("-self %d is not an index into -peers (%d members)", *self, len(peers))
		}
	}
	var st *store.Store
	if *storePath != "" {
		var err error
		st, err = store.Open(*storePath, store.Options{MaxBytes: int64(*storeMB) << 20})
		if err != nil {
			return fmt.Errorf("opening -store: %w", err)
		}
		defer st.Close()
	}

	logger := slog.New(slog.NewTextHandler(w, nil))
	if *quiet {
		logger = nil
	}
	srv := service.New(service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheBytes:     int64(*cacheMB) << 20,
		ArtifactBytes:  int64(*artifactMB) << 20,
		RequestTimeout: *timeout,
		Logger:         logger,
		Store:          st,
		Peers:          peers,
		Self:           *self,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	extra := ""
	if st != nil {
		extra += fmt.Sprintf(" store=%s(%dMiB)", *storePath, *storeMB)
	}
	if len(peers) > 0 {
		extra += fmt.Sprintf(" fleet=%d/self=%d", len(peers), *self)
	}
	fmt.Fprintf(w, "dhpfd: listening on http://%s (workers=%d queue=%d cache=%dMiB timeout=%s%s)\n",
		ln.Addr(), *workers, *queue, *cacheMB, *timeout, extra)

	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return err
	}
	stats := srv.Stats()
	fmt.Fprintf(w, "dhpfd: shut down after %d requests (%d compiles, %d cache hits, %d coalesced, %d rejected)\n",
		stats.Server.Requests, stats.Server.Compiles, stats.Cache.Hits, stats.Cache.InflightCoalesced, stats.Server.Rejected)
	if ss := stats.Store; ss != nil {
		fmt.Fprintf(w, "dhpfd: store %d chunks, %d manifests, %d B live (%d program hits, %d writes, %d evictions)\n",
			ss.Chunks, ss.Manifests, ss.LiveBytes, ss.ProgramHits, ss.ProgramWrites, ss.Evictions)
	}
	if ps := stats.Peer; ps != nil {
		fmt.Fprintf(w, "dhpfd: fleet %d peer hits, %d misses, %d errors, %d served\n",
			ps.Hits, ps.Misses, ps.Errors, ps.Served)
	}
	return nil
}

// loadgen measures a served dhpfd instance with a mixed workload.
func loadgen(ctx context.Context, w io.Writer, args []string) error {
	fs := flag.NewFlagSet("dhpfd loadgen", flag.ContinueOnError)
	fs.SetOutput(w)
	addr := fs.String("addr", "http://127.0.0.1:8421", "service base URL")
	requests := fs.Int("requests", 200, "total requests to send")
	concurrency := fs.Int("concurrency", 8, "concurrent client goroutines")
	warmFrac := fs.Float64("warm", 0.8, "fraction of requests repeating the hot configuration")
	n := fs.Int("n", 16, "SP grid size")
	steps := fs.Int("steps", 1, "SP time steps")
	asJSON := fs.Bool("json", false, "print a single JSON summary object instead of text")
	fleet := fs.String("fleet", "", "comma-separated fleet base URLs (overrides -addr; requests round-robin)")
	minPeerHits := fs.Int("min-peer-hits", 0, "fail unless the fleet's peer-hit counters total at least this")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *warmFrac < 0 || *warmFrac > 1 {
		return fmt.Errorf("-warm %g outside [0,1]", *warmFrac)
	}

	peers := []string{*addr}
	if *fleet != "" {
		peers = nil
		for _, p := range strings.Split(*fleet, ",") {
			peers = append(peers, strings.TrimRight(strings.TrimSpace(p), "/"))
		}
	} else if *minPeerHits > 0 {
		return errors.New("-min-peer-hits needs -fleet")
	}
	clients := make([]*dhpf.Client, len(peers))
	for i, p := range peers {
		clients[i] = dhpf.NewClient(p)
	}
	src := nas.SPSource(*n, *steps, 2, 2)
	warmReq := dhpf.CompileRequest{Source: src, Ranks: []int{0}}

	if len(clients) > 1 {
		// Prime the hot configuration at its ring owner, so every other
		// replica's first warm request exercises the peer-fetch path
		// (deterministically — CI gates on the peer-hit counter).
		owner := service.Owner(peers, dhpf.Fingerprint(src, nil, dhpf.DefaultOptions()))
		if _, err := clients[owner].Compile(ctx, warmReq); err != nil {
			return fmt.Errorf("priming the hot configuration at its owner: %w", err)
		}
	}

	type sample struct {
		warm    bool
		replica int
		dur     time.Duration
		err     error
	}

	// identity records one response digest per fingerprint; replicas that
	// disagree on a fingerprint's bytes are a correctness failure, not a
	// performance problem.
	var identityMu sync.Mutex
	identity := map[string]string{}
	mismatches := 0
	digest := func(resp *dhpf.CompileResponse) {
		h := sha256.New()
		io.WriteString(h, resp.Report)
		for rk := 0; rk < resp.Ranks; rk++ {
			io.WriteString(h, resp.NodePrograms[rk])
		}
		d := fmt.Sprintf("%x", h.Sum(nil))
		identityMu.Lock()
		defer identityMu.Unlock()
		if prev, ok := identity[resp.Fingerprint]; ok && prev != d {
			mismatches++
		} else {
			identity[resp.Fingerprint] = d
		}
	}
	jobs := make(chan int)
	samples := make([]sample, *requests)
	var wg sync.WaitGroup
	t0 := time.Now()
	for g := 0; g < *concurrency; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				req := warmReq
				// Spread the cold fraction evenly across the index
				// space so small runs still mix both classes.
				coldFrac := 1 - *warmFrac
				warm := math.Floor(float64(i+1)*coldFrac) == math.Floor(float64(i)*coldFrac)
				if !warm {
					// Unique params = unique fingerprint = cold compile.
					req.Params = map[string]int{"SEED": i}
				}
				replica := i % len(clients)
				start := time.Now()
				resp, err := clients[replica].Compile(ctx, req)
				samples[i] = sample{warm: warm, replica: replica, dur: time.Since(start), err: err}
				if err == nil {
					digest(resp)
				}
			}
		}()
	}
	for i := 0; i < *requests; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			close(jobs)
			wg.Wait()
			return ctx.Err()
		}
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(t0)

	var warmDurs, coldDurs []time.Duration
	errs, rejected := 0, 0
	okByReplica := make([]int, len(clients))
	for _, sm := range samples {
		if sm.err != nil {
			errs++
			var apiErr *dhpf.APIError
			if errors.As(sm.err, &apiErr) && apiErr.StatusCode == http.StatusTooManyRequests {
				rejected++
			}
			continue
		}
		okByReplica[sm.replica]++
		if sm.warm {
			warmDurs = append(warmDurs, sm.dur)
		} else {
			coldDurs = append(coldDurs, sm.dur)
		}
	}
	ok := *requests - errs
	// Snapshot every cache tier after the run: the program cache (with
	// its backing-hit split: how many misses the durable/peer tier
	// absorbed), the per-procedure artifact tier, and — when the server
	// has a store — the durable tier itself.
	var cacheStats *dhpf.CacheStats
	var artifacts *dhpf.ArtifactCacheStats
	var storeStats *dhpf.StoreStats
	if st, err := clients[0].Stats(ctx); err == nil {
		cacheStats = &st.Cache
		artifacts = &st.Artifacts
		storeStats = st.Store
	}
	sum := loadgenSummary{
		Requests:     *requests,
		OK:           ok,
		Errors:       errs,
		Rejected429:  rejected,
		Mismatches:   mismatches,
		Concurrency:  *concurrency,
		WarmFraction: *warmFrac,
		ElapsedNS:    elapsed.Nanoseconds(),
		Throughput:   float64(ok) / elapsed.Seconds(),
		Warm:         summarize(warmDurs),
		Cold:         summarize(coldDurs),
		Cache:        cacheStats,
		Artifacts:    artifacts,
		Store:        storeStats,
	}
	if len(clients) > 1 {
		for i, c := range clients {
			rs := replicaSummary{
				URL:        peers[i],
				OK:         okByReplica[i],
				Throughput: float64(okByReplica[i]) / elapsed.Seconds(),
			}
			if st, err := c.Stats(ctx); err == nil {
				rs.CacheHits = st.Cache.Hits
				rs.CacheBackingHits = st.Cache.BackingHits
				rs.ArtifactBackingHits = st.Artifacts.BackingHits
				if st.Store != nil {
					rs.StoreProgramHits = st.Store.ProgramHits
				}
				if st.Peer != nil {
					rs.PeerHits = st.Peer.Hits
					rs.PeerServed = st.Peer.Served
					sum.PeerHits += st.Peer.Hits
				}
			}
			sum.Fleet = append(sum.Fleet, rs)
		}
	}
	// gateErr fails the run after the report is printed, so the numbers
	// that explain the failure are always visible.
	var gateErr error
	if mismatches > 0 {
		gateErr = fmt.Errorf("%d responses differed across replicas for the same fingerprint", mismatches)
	} else if *minPeerHits > 0 && sum.PeerHits < int64(*minPeerHits) {
		gateErr = fmt.Errorf("fleet shows %d peer hits, want at least %d", sum.PeerHits, *minPeerHits)
	}
	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			return err
		}
		return gateErr
	}
	fmt.Fprintf(w, "loadgen: %d requests (%d ok, %d errors, %d rejected 429) in %.3fs\n",
		sum.Requests, sum.OK, sum.Errors, sum.Rejected429, elapsed.Seconds())
	fmt.Fprintf(w, "throughput: %.1f req/s sustained at concurrency %d (warm fraction %.0f%%)\n",
		sum.Throughput, sum.Concurrency, sum.WarmFraction*100)
	report := func(label string, ls latencySummary) {
		if ls.Requests == 0 {
			fmt.Fprintf(w, "%-5s 0 requests\n", label)
			return
		}
		ns := func(v int64) string { return time.Duration(v).Round(time.Microsecond).String() }
		fmt.Fprintf(w, "%-5s %5d requests  mean %-10s p50 %-10s p95 %-10s max %s\n",
			label, ls.Requests, ns(ls.MeanNS), ns(ls.P50NS), ns(ls.P95NS), ns(ls.MaxNS))
	}
	report("warm", sum.Warm)
	report("cold", sum.Cold)
	if c := sum.Cache; c != nil {
		fmt.Fprintf(w, "cache: %d hits, %d misses (%d absorbed by backing tier), %d coalesced\n",
			c.Hits, c.Misses, c.BackingHits, c.InflightCoalesced)
	}
	if a := sum.Artifacts; a != nil {
		fmt.Fprintf(w, "artifacts: %d hits (%d thawed from store), %d misses, %d dirty recomputes, %d entries (%d B)\n",
			a.Hits, a.BackingHits, a.Misses, a.Dirty, a.Entries, a.SizeBytes)
	}
	if st := sum.Store; st != nil {
		fmt.Fprintf(w, "store: %d program hits, %d misses, %d writes (%d chunks, %d B live)\n",
			st.ProgramHits, st.ProgramMisses, st.ProgramWrites, st.Chunks, st.LiveBytes)
	}
	for _, rs := range sum.Fleet {
		fmt.Fprintf(w, "replica %-28s %5d ok  %7.1f req/s  %d cache hits (%d backing), %d peer hits, %d served\n",
			rs.URL, rs.OK, rs.Throughput, rs.CacheHits, rs.CacheBackingHits, rs.PeerHits, rs.PeerServed)
	}
	if len(sum.Fleet) > 0 {
		fmt.Fprintf(w, "fleet: %d cross-replica warm hits, %d response mismatches\n", sum.PeerHits, sum.Mismatches)
	}
	return gateErr
}

// loadgenSummary is the -json report: one object, nanosecond latencies,
// so a script can diff throughput across configurations without parsing
// the human table.
type loadgenSummary struct {
	Requests     int            `json:"requests"`
	OK           int            `json:"ok"`
	Errors       int            `json:"errors"`
	Rejected429  int            `json:"rejected_429"`
	Concurrency  int            `json:"concurrency"`
	WarmFraction float64        `json:"warm_fraction"`
	ElapsedNS    int64          `json:"elapsed_ns"`
	Throughput   float64        `json:"throughput_rps"`
	Warm         latencySummary `json:"warm"`
	Cold         latencySummary `json:"cold"`
	// Cache is the program cache's counter snapshot after the run; its
	// BackingHits field says how many misses were absorbed by the
	// durable/peer tier rather than compiled cold.  Artifacts is the
	// per-procedure artifact tier (same BackingHits split for thawed
	// analyses), and Store — present only on store-backed servers — is
	// the durable tier itself.  Together they attribute every warm
	// request to the tier that served it.  (All nil when /v1/stats was
	// unreachable.)
	Cache     *dhpf.CacheStats         `json:"cache,omitempty"`
	Artifacts *dhpf.ArtifactCacheStats `json:"artifacts,omitempty"`
	Store     *dhpf.StoreStats         `json:"store,omitempty"`
	// Fleet is the per-replica breakdown (only with -fleet); PeerHits is
	// the fleet-wide cross-replica warm-hit total and Mismatches counts
	// same-fingerprint responses that differed between replicas (always
	// zero on a correct fleet).
	Fleet      []replicaSummary `json:"fleet,omitempty"`
	PeerHits   int64            `json:"peer_hits,omitempty"`
	Mismatches int              `json:"mismatches,omitempty"`
}

type replicaSummary struct {
	URL        string  `json:"url"`
	OK         int     `json:"ok"`
	Throughput float64 `json:"throughput_rps"`
	PeerHits   int64   `json:"peer_hits"`
	PeerServed int64   `json:"peer_served"`
	// Per-tier hit provenance: in-memory program-cache hits, misses the
	// replica's backing tier (store or peer) absorbed, per-procedure
	// artifacts thawed from disk, and whole programs thawed from the
	// local store — so a fleet smoke test can assert not just *that*
	// requests were warm but *which tier* made them warm.
	CacheHits           int64 `json:"cache_hits"`
	CacheBackingHits    int64 `json:"cache_backing_hits"`
	ArtifactBackingHits int64 `json:"artifact_backing_hits"`
	StoreProgramHits    int64 `json:"store_program_hits,omitempty"`
}

type latencySummary struct {
	Requests int   `json:"requests"`
	MeanNS   int64 `json:"mean_ns"`
	P50NS    int64 `json:"p50_ns"`
	P95NS    int64 `json:"p95_ns"`
	MaxNS    int64 `json:"max_ns"`
}

func summarize(durs []time.Duration) latencySummary {
	if len(durs) == 0 {
		return latencySummary{}
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	var total time.Duration
	for _, d := range durs {
		total += d
	}
	q := func(p float64) int64 {
		return durs[min(int(p*float64(len(durs))), len(durs)-1)].Nanoseconds()
	}
	return latencySummary{
		Requests: len(durs),
		MeanNS:   (total / time.Duration(len(durs))).Nanoseconds(),
		P50NS:    q(0.50),
		P95NS:    q(0.95),
		MaxNS:    durs[len(durs)-1].Nanoseconds(),
	}
}
