package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"dhpf"
	"dhpf/internal/service"
	"dhpf/internal/store"
)

// syncBuffer is a race-safe io.Writer for reading serve's output while
// the daemon is running.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

const smokeSrc = `
program smoke
param N = 8
param P = 2
!hpf$ processors procs(P)
!hpf$ template t(N)
!hpf$ align a with t(d0)
!hpf$ distribute t(BLOCK) onto procs

subroutine main()
  real a(0:N-1)
  !hpf$ independent
  do i = 0, N-1
    a(i) = 1.0*i
  enddo
end
`

// startServe launches the daemon with the given extra flags and waits
// for its listening line, returning the base URL, the output buffer,
// and a stop function that shuts it down and returns serve's error.
func startServe(t *testing.T, extra ...string) (string, *syncBuffer, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, out, append([]string{"serve", "-addr", "127.0.0.1:0", "-quiet"}, extra...))
	}()
	re := regexp.MustCompile(`listening on (http://[0-9.:]+)`)
	for deadline := time.Now().Add(10 * time.Second); ; time.Sleep(5 * time.Millisecond) {
		if m := re.FindStringSubmatch(out.String()); m != nil {
			return m[1], out, func() error {
				cancel()
				select {
				case err := <-done:
					return err
				case <-time.After(15 * time.Second):
					return context.DeadlineExceeded
				}
			}
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("daemon never reported its address; output:\n%s", out.String())
		}
	}
}

// TestServeSmoke starts the daemon, compiles through it, and shuts it
// down — the start/compile/shutdown smoke test CI runs.
func TestServeSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, &out, []string{"serve", "-addr", "127.0.0.1:0", "-quiet"})
	}()

	// Wait for the listening line and extract the bound address.
	re := regexp.MustCompile(`listening on (http://[0-9.:]+)`)
	var base string
	for deadline := time.Now().Add(10 * time.Second); ; time.Sleep(5 * time.Millisecond) {
		if m := re.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
			break
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("daemon never reported its address; output:\n%s", out.String())
		}
	}

	client := dhpf.NewClient(base)
	resp, err := client.Compile(ctx, dhpf.CompileRequest{Source: smokeSrc})
	if err != nil {
		cancel()
		t.Fatalf("compile through daemon: %v", err)
	}
	if resp.Ranks != 2 || !strings.Contains(resp.Report, "program smoke") {
		t.Errorf("unexpected compile response: ranks=%d", resp.Ranks)
	}
	stats, err := client.Stats(ctx)
	if err != nil {
		cancel()
		t.Fatalf("stats: %v", err)
	}
	if stats.Server.Compiles != 1 || stats.Cache.Misses != 1 {
		t.Errorf("daemon stats after one compile: %+v", stats)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exited with: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(out.String(), "shut down after") {
		t.Errorf("no shutdown summary in output:\n%s", out.String())
	}
}

// TestLoadgen drives the load generator against an in-process service
// and checks the mixed warm/cold report.
func TestLoadgen(t *testing.T) {
	ts := httptest.NewServer(service.New(service.Config{Workers: 2}).Handler())
	defer ts.Close()

	var out bytes.Buffer
	err := run(context.Background(), &out, []string{
		"loadgen", "-addr", ts.URL, "-requests", "30", "-concurrency", "4",
		"-warm", "0.8", "-n", "10",
	})
	if err != nil {
		t.Fatalf("loadgen: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"30 requests (30 ok", "throughput:", "req/s", "warm", "cold"} {
		if !strings.Contains(got, want) {
			t.Errorf("loadgen output missing %q:\n%s", want, got)
		}
	}
}

// TestLoadgenJSON checks that -json emits exactly one parseable summary
// object on stdout with consistent counts.
func TestLoadgenJSON(t *testing.T) {
	ts := httptest.NewServer(service.New(service.Config{Workers: 2}).Handler())
	defer ts.Close()

	var out bytes.Buffer
	err := run(context.Background(), &out, []string{
		"loadgen", "-addr", ts.URL, "-requests", "20", "-concurrency", "4",
		"-warm", "0.75", "-n", "10", "-json",
	})
	if err != nil {
		t.Fatalf("loadgen -json: %v\n%s", err, out.String())
	}
	dec := json.NewDecoder(&out)
	var sum loadgenSummary
	if err := dec.Decode(&sum); err != nil {
		t.Fatalf("stdout is not a JSON summary: %v", err)
	}
	if dec.More() {
		t.Error("stdout has trailing content after the summary object")
	}
	if sum.Requests != 20 || sum.OK != 20 || sum.Errors != 0 {
		t.Errorf("bad counts: %+v", sum)
	}
	if sum.Warm.Requests+sum.Cold.Requests != sum.OK {
		t.Errorf("warm %d + cold %d != ok %d", sum.Warm.Requests, sum.Cold.Requests, sum.OK)
	}
	if sum.Throughput <= 0 || sum.ElapsedNS <= 0 || sum.Warm.P95NS < sum.Warm.P50NS {
		t.Errorf("implausible summary: %+v", sum)
	}
	// Tier attribution: a storeless server serves warm traffic from the
	// in-memory program cache alone — hits present, zero backing hits.
	if sum.Cache == nil {
		t.Fatal("summary has no program-cache counters")
	}
	if sum.Cache.Hits == 0 {
		t.Errorf("warm traffic produced no cache hits: %+v", *sum.Cache)
	}
	if sum.Cache.BackingHits != 0 || sum.Store != nil {
		t.Errorf("storeless server reports backing tiers: cache=%+v store=%+v", *sum.Cache, sum.Store)
	}
}

// TestServeStoreRestartWarm: a daemon started with -store, killed, and
// restarted over the same journal serves a previously compiled request
// from disk — cached, byte-identical, zero compiles.
func TestServeStoreRestartWarm(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dhpfd.store")
	ctx := context.Background()
	req := dhpf.CompileRequest{Source: smokeSrc}

	base, _, stop := startServe(t, "-store", path)
	cold, err := dhpf.NewClient(base).Compile(ctx, req)
	if err != nil {
		t.Fatalf("compile before restart: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("first daemon: %v", err)
	}

	base2, out2, stop2 := startServe(t, "-store", path)
	client := dhpf.NewClient(base2)
	warm, err := client.Compile(ctx, req)
	if err != nil {
		t.Fatalf("compile after restart: %v", err)
	}
	if !warm.Cached {
		t.Error("restarted daemon did not serve the compile from its store")
	}
	if warm.Report != cold.Report || warm.NodePrograms[0] != cold.NodePrograms[0] {
		t.Error("restart-warm output differs from pre-restart output")
	}
	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Server.Compiles != 0 {
		t.Errorf("restarted daemon did %d compiles, want 0", stats.Server.Compiles)
	}
	if stats.Store == nil || stats.Store.ProgramHits == 0 {
		t.Errorf("store stats show no program hit: %+v", stats.Store)
	}
	if err := stop2(); err != nil {
		t.Fatalf("second daemon: %v", err)
	}
	if !strings.Contains(out2.String(), "dhpfd: store") {
		t.Errorf("shutdown summary missing store line:\n%s", out2.String())
	}
}

// TestLoadgenFleet: three store-backed daemons sharing a peer list, the
// fleet loadgen round-robining over them — cross-replica warm hits must
// appear (the hot config is primed at its ring owner), responses must be
// identical everywhere, and the summary must carry per-replica numbers.
func TestLoadgenFleet(t *testing.T) {
	srvs := make([]*service.Server, 3)
	peers := make([]string, 3)
	for i := range peers {
		i := i
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			srvs[i].Handler().ServeHTTP(w, r)
		}))
		defer ts.Close()
		peers[i] = ts.URL
	}
	for i := range srvs {
		st, err := store.Open(filepath.Join(t.TempDir(), "store"), store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		srvs[i] = service.New(service.Config{Workers: 2, Store: st, Peers: peers, Self: i})
	}

	var out bytes.Buffer
	err := run(context.Background(), &out, []string{
		"loadgen", "-fleet", strings.Join(peers, ","), "-requests", "24",
		"-concurrency", "3", "-warm", "0.75", "-n", "10",
		"-min-peer-hits", "1", "-json",
	})
	if err != nil {
		t.Fatalf("fleet loadgen: %v\n%s", err, out.String())
	}
	var sum loadgenSummary
	if err := json.Unmarshal(out.Bytes(), &sum); err != nil {
		t.Fatalf("stdout is not a JSON summary: %v", err)
	}
	if sum.Errors != 0 || sum.Mismatches != 0 {
		t.Errorf("fleet run unhealthy: %+v", sum)
	}
	if sum.PeerHits < 1 {
		t.Errorf("no cross-replica warm hits: %+v", sum)
	}
	if len(sum.Fleet) != 3 {
		t.Fatalf("fleet breakdown has %d replicas, want 3", len(sum.Fleet))
	}
	okTotal := 0
	var backingTotal, cacheTotal int64
	for _, rs := range sum.Fleet {
		okTotal += rs.OK
		cacheTotal += rs.CacheHits
		backingTotal += rs.CacheBackingHits
	}
	if okTotal != sum.OK {
		t.Errorf("per-replica ok %d != total %d", okTotal, sum.OK)
	}
	// Hit provenance: the cross-replica warm hits must show up as
	// backing-tier absorption on the replicas that fetched from a peer —
	// the summary says not just that requests were warm but which tier
	// (memory vs store/peer) made them warm.
	if backingTotal < sum.PeerHits {
		t.Errorf("peer hits (%d) not attributed to backing tiers (%d): %+v", sum.PeerHits, backingTotal, sum.Fleet)
	}
	if cacheTotal == 0 {
		t.Errorf("no in-memory warm hits across the fleet: %+v", sum.Fleet)
	}

	// The gate itself: an impossible -min-peer-hits must fail the run.
	if err := run(context.Background(), &out, []string{
		"loadgen", "-fleet", strings.Join(peers, ","), "-requests", "6",
		"-concurrency", "2", "-n", "10", "-min-peer-hits", "1000000", "-json",
	}); err == nil {
		t.Error("unreachable -min-peer-hits did not fail the run")
	}
}

// TestBadSubcommand covers the CLI's error surface.
func TestBadSubcommand(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), &out, []string{"frobnicate"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run(context.Background(), &out, nil); err == nil {
		t.Error("missing subcommand accepted")
	}
}

// TestLoadgenArtifacts: the -json summary carries the service's
// artifact-tier counters, and the text form prints them.
func TestLoadgenArtifacts(t *testing.T) {
	ts := httptest.NewServer(service.New(service.Config{Workers: 2}).Handler())
	defer ts.Close()

	var out bytes.Buffer
	err := run(context.Background(), &out, []string{
		"loadgen", "-addr", ts.URL, "-requests", "10", "-concurrency", "2",
		"-warm", "0.5", "-n", "10", "-json",
	})
	if err != nil {
		t.Fatalf("loadgen -json: %v\n%s", err, out.String())
	}
	var sum loadgenSummary
	if err := json.Unmarshal(out.Bytes(), &sum); err != nil {
		t.Fatalf("stdout is not a JSON summary: %v", err)
	}
	if sum.Artifacts == nil {
		t.Fatal("summary has no artifact counters")
	}
	if sum.Artifacts.Misses == 0 || sum.Artifacts.Entries == 0 {
		t.Errorf("artifact counters empty after compiles: %+v", *sum.Artifacts)
	}

	out.Reset()
	err = run(context.Background(), &out, []string{
		"loadgen", "-addr", ts.URL, "-requests", "5", "-concurrency", "2", "-n", "10",
	})
	if err != nil {
		t.Fatalf("loadgen text: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "artifacts:") {
		t.Errorf("text report missing artifact line:\n%s", out.String())
	}
}
