package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dhpf"
)

func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var out, errb bytes.Buffer
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	return out.String()
}

var smokeArgs = []string{
	"-bench", "sp", "-n", "12", "-steps", "1", "-procs", "4",
	"-grains", "8", "-topk", "2", "-workers", "2",
}

func TestLeaderboardDeterministicWinner(t *testing.T) {
	first := runOK(t, smokeArgs...)
	if !strings.Contains(first, "winner: ") {
		t.Fatalf("no winner line in:\n%s", first)
	}
	winner := func(out string) string {
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "winner: ") {
				return line
			}
		}
		return ""
	}
	again := runOK(t, smokeArgs...)
	if winner(first) != winner(again) {
		t.Errorf("winner not deterministic: %q vs %q", winner(first), winner(again))
	}
	if !strings.Contains(first, "RANK") || !strings.Contains(first, "block") {
		t.Errorf("leaderboard missing from output:\n%s", first)
	}
}

func TestJSONOutput(t *testing.T) {
	out := runOK(t, append(smokeArgs, "-json")...)
	var res dhpf.TuneResult
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if res.Winner == nil || res.Winner.Status != "ok" {
		t.Fatalf("JSON result has no ok winner: %+v", res.Winner)
	}
	if res.Counters.Candidates == 0 || len(res.Trail) == 0 {
		t.Errorf("counters or trail missing: %+v", res.Counters)
	}
}

func TestEmitOptionsRoundTrips(t *testing.T) {
	// -no-transpose forces a compiled winner, which carries replayable
	// params and options.
	out := runOK(t, append(smokeArgs, "-no-transpose", "-emit-options")...)
	var frag struct {
		Scheme  string               `json:"scheme"`
		Params  map[string]int       `json:"params"`
		Options *dhpf.RequestOptions `json:"options"`
	}
	if err := json.Unmarshal([]byte(out), &frag); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if frag.Params["P1"]*frag.Params["P2"] != 4 {
		t.Errorf("winner params do not tile 4 procs: %v", frag.Params)
	}
	opt, err := frag.Options.Resolve()
	if err != nil {
		t.Fatalf("emitted options do not resolve: %v", err)
	}
	if opt.PipelineGrain != 8 {
		t.Errorf("grain not preserved: %+v", opt)
	}
}

func TestFlagValidation(t *testing.T) {
	cases := [][]string{
		{},                              // no mode, no procs
		{"-procs", "4"},                 // no mode
		{"-bench", "sp"},                // no procs
		{"-bench", "lu", "-procs", "4"}, // unknown bench
		{"-bench", "sp", "-procs", "4", "-grids", "3y3"}, // bad grid syntax
	}
	for i, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code == 0 {
			t.Errorf("case %d (%v): accepted", i, args)
		}
	}
}
