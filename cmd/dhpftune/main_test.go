package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"dhpf"
)

func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var out, errb bytes.Buffer
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	return out.String()
}

var smokeArgs = []string{
	"-bench", "sp", "-n", "12", "-steps", "1", "-procs", "4",
	"-grains", "8", "-topk", "2", "-workers", "2",
}

func TestLeaderboardDeterministicWinner(t *testing.T) {
	first := runOK(t, smokeArgs...)
	if !strings.Contains(first, "winner: ") {
		t.Fatalf("no winner line in:\n%s", first)
	}
	winner := func(out string) string {
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "winner: ") {
				return line
			}
		}
		return ""
	}
	again := runOK(t, smokeArgs...)
	if winner(first) != winner(again) {
		t.Errorf("winner not deterministic: %q vs %q", winner(first), winner(again))
	}
	if !strings.Contains(first, "RANK") || !strings.Contains(first, "block") {
		t.Errorf("leaderboard missing from output:\n%s", first)
	}
}

func TestJSONOutput(t *testing.T) {
	out := runOK(t, append(smokeArgs, "-json")...)
	var res dhpf.TuneResult
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if res.Winner == nil || res.Winner.Status != "ok" {
		t.Fatalf("JSON result has no ok winner: %+v", res.Winner)
	}
	if res.Counters.Candidates == 0 || len(res.Trail) == 0 {
		t.Errorf("counters or trail missing: %+v", res.Counters)
	}
}

func TestEmitOptionsRoundTrips(t *testing.T) {
	// -no-transpose forces a compiled winner, which carries replayable
	// params and options.
	out := runOK(t, append(smokeArgs, "-no-transpose", "-emit-options")...)
	var frag struct {
		Scheme  string               `json:"scheme"`
		Params  map[string]int       `json:"params"`
		Options *dhpf.RequestOptions `json:"options"`
	}
	if err := json.Unmarshal([]byte(out), &frag); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if frag.Params["P1"]*frag.Params["P2"] != 4 {
		t.Errorf("winner params do not tile 4 procs: %v", frag.Params)
	}
	opt, err := frag.Options.Resolve()
	if err != nil {
		t.Fatalf("emitted options do not resolve: %v", err)
	}
	if opt.PipelineGrain != 8 {
		t.Errorf("grain not preserved: %+v", opt)
	}
}

// TestBackendsFlag: -backends widens the search across execution
// substrates.  Both backends must show up on the leaderboard (the shm
// twin carries the backend token in its key) and the whole board —
// not just the winner — must be reproducible run to run.
func TestBackendsFlag(t *testing.T) {
	args := append(append([]string{}, smokeArgs...),
		"-backends", "mp,shm", "-grids", "2x2", "-no-transpose", "-json")
	first := runOK(t, args...)
	var res dhpf.TuneResult
	if err := json.Unmarshal([]byte(first), &res); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, first)
	}
	seen := map[string]bool{}
	for _, e := range res.Entries {
		seen[e.Backend] = true
	}
	if !seen[""] && !seen["mp"] {
		t.Errorf("no mp candidate on the leaderboard: %s", first)
	}
	if !seen["shm"] {
		t.Errorf("no shm candidate on the leaderboard: %s", first)
	}
	if res.Winner == nil || res.Winner.Backend != "shm" {
		t.Errorf("shm twin should win on an all-interior stencil, got %+v", res.Winner)
	}
	if !strings.Contains(first, "block shm 2x2") {
		t.Errorf("shm key token missing from board:\n%s", first)
	}
	// Wall clocks and memo counters vary run to run; the ranked board
	// itself (keys, statuses, backends, in order) must not.
	board := func(r dhpf.TuneResult) string {
		var b strings.Builder
		for _, e := range r.Entries {
			fmt.Fprintf(&b, "%d %s %s %s\n", e.Rank, e.Status, e.Key, e.Backend)
		}
		return b.String()
	}
	var res2 dhpf.TuneResult
	if err := json.Unmarshal([]byte(runOK(t, args...)), &res2); err != nil {
		t.Fatal(err)
	}
	if board(res) != board(res2) {
		t.Errorf("backend search not deterministic:\n--- first ---\n%s\n--- again ---\n%s", board(res), board(res2))
	}

	var out, errb bytes.Buffer
	if code := run(append(append([]string{}, smokeArgs...), "-backends", "cuda"), &out, &errb); code != 1 {
		t.Errorf("bad -backends exit = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "unknown backend") {
		t.Errorf("bad -backends stderr = %q, want mention of unknown backend", errb.String())
	}
}

func TestFlagValidation(t *testing.T) {
	cases := [][]string{
		{},                              // no mode, no procs
		{"-procs", "4"},                 // no mode
		{"-bench", "sp"},                // no procs
		{"-bench", "lu", "-procs", "4"}, // unknown bench
		{"-bench", "sp", "-procs", "4", "-grids", "3y3"}, // bad grid syntax
	}
	for i, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code == 0 {
			t.Errorf("case %d (%v): accepted", i, args)
		}
	}
}
