// Command dhpftune auto-tunes a mini-HPF program: it searches
// processor-grid shapes, distribution schemes (compiled 2-D BLOCK vs
// the PGI-style 1-D transpose), coarse-grain pipelining granularities,
// pass ablations, and swept parameters for the lowest-predicted-cost
// configuration, then prints the ranked leaderboard, the decision
// trail, and (on request) the winning options as /v1/compile-ready
// JSON.
//
// Usage:
//
//	dhpftune -bench sp -n 12 -steps 1 -procs 16 -target-n 64
//	dhpftune -src prog.hpf -procs 4
//
//	-bench NAME      generate the SP or BT mini-HPF source (sp|bt)
//	-src FILE        tune a mini-HPF file instead (generic mode)
//	-procs N         virtual machine size (required)
//	-n, -steps       source problem size (bench mode; default 12, 1)
//	-target-n N      rank for this problem size (default: source size)
//	-target-steps N  rank for this step count (default: source steps)
//	-grids LIST      grid shapes, e.g. "2x8,4x4" (default: all factorizations)
//	-grains LIST     pipeline strip widths, e.g. "4,8,16"
//	-backends LIST   execution substrates to search, e.g. "mp,shm,hybrid"
//	                 (default mp only; non-mp candidates carry the backend
//	                 in their leaderboard key, e.g. "block shm 2x2 g8")
//	-ablate LIST     ablation sets, ';'-separated Disable lists, e.g.
//	                 "availability;localize,newprop" (full pipeline always included)
//	-sweep P=V,...   sweep an extra source parameter (repeatable)
//	-param NAME=V    fixed parameter override (repeatable)
//	-topk K          survivors fully simulated (default 3)
//	-max-screen N    cap screened candidates (seeded subsample; 0 = all)
//	-workers N       parallel evaluation wave size (default 4)
//	-seed N          subsample seed
//	-prune-factor F  abandon candidates above incumbent×F (default 4)
//	-static-screen   insert the zero-simulation oracle tier: analytic
//	                 survivors are compiled and costed by the static
//	                 analyzer's exact counters at the target size, and
//	                 only the statically cheapest half reach the simulator
//	-no-transpose    drop the 1-D transpose comparison candidate
//	-skip-verify     skip the serial-reference numerics check
//	-trail           print the decision trail (why candidates were pruned)
//	-json            print the full TuneResult as JSON
//	-emit-options    print the winner's {params, options} as JSON
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"dhpf"
	"dhpf/internal/nas"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type paramFlags map[string]int

func (p paramFlags) String() string { return fmt.Sprint(map[string]int(p)) }
func (p paramFlags) Set(v string) error {
	name, val, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want NAME=VALUE, got %q", v)
	}
	n, err := strconv.Atoi(val)
	if err != nil {
		return err
	}
	p[name] = n
	return nil
}

type sweepFlags map[string][]int

func (s sweepFlags) String() string { return fmt.Sprint(map[string][]int(s)) }
func (s sweepFlags) Set(v string) error {
	name, vals, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want NAME=V1,V2,..., got %q", v)
	}
	for _, f := range strings.Split(vals, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return err
		}
		s[name] = append(s[name], n)
	}
	return nil
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dhpftune", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		bench        = fs.String("bench", "", "generate the SP or BT source (sp|bt)")
		srcFile      = fs.String("src", "", "tune a mini-HPF file (generic mode)")
		procs        = fs.Int("procs", 0, "virtual machine size (required)")
		n            = fs.Int("n", 12, "source grid points per dimension (bench mode)")
		steps        = fs.Int("steps", 1, "source time steps (bench mode)")
		targetN      = fs.Int("target-n", 0, "problem size the ranking targets (0 = source)")
		targetSteps  = fs.Int("target-steps", 0, "step count the ranking targets (0 = source)")
		grids        = fs.String("grids", "", `grid shapes, e.g. "2x8,4x4" (default: all factorizations)`)
		grains       = fs.String("grains", "", `pipeline strip widths, e.g. "4,8,16"`)
		backends     = fs.String("backends", "", `execution substrates to search, e.g. "mp,shm,hybrid"`)
		ablate       = fs.String("ablate", "", `ablation sets: ';'-separated Disable lists`)
		topK         = fs.Int("topk", 0, "survivors fully simulated (default 3)")
		maxScreen    = fs.Int("max-screen", 0, "cap screened candidates (0 = all)")
		workers      = fs.Int("workers", 0, "parallel evaluation wave size (default 4)")
		seed         = fs.Int64("seed", 0, "subsample seed")
		pruneFactor  = fs.Float64("prune-factor", 0, "abandon above incumbent×F (default 4)")
		staticScreen = fs.Bool("static-screen", false, "insert the zero-simulation static oracle tier")
		noTranspose  = fs.Bool("no-transpose", false, "drop the transpose comparison candidate")
		skipVerify   = fs.Bool("skip-verify", false, "skip the serial-reference numerics check")
		trail        = fs.Bool("trail", false, "print the decision trail")
		asJSON       = fs.Bool("json", false, "print the full TuneResult as JSON")
		emitOptions  = fs.Bool("emit-options", false, "print the winner's {params, options} as JSON")
	)
	params := paramFlags{}
	fs.Var(params, "param", "parameter override NAME=VALUE (repeatable)")
	sweep := sweepFlags{}
	fs.Var(sweep, "sweep", "sweep a source parameter NAME=V1,V2,... (repeatable)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *procs < 1 {
		fmt.Fprintln(stderr, "dhpftune: -procs is required")
		return 2
	}
	if (*bench == "") == (*srcFile == "") {
		fmt.Fprintln(stderr, "dhpftune: exactly one of -bench or -src is required")
		return 2
	}

	opt := dhpf.TuneOptions{
		Params:       params,
		Procs:        *procs,
		TargetN:      *targetN,
		TargetSteps:  *targetSteps,
		TopK:         *topK,
		MaxScreen:    *maxScreen,
		Workers:      *workers,
		Seed:         *seed,
		PruneFactor:  *pruneFactor,
		StaticScreen: *staticScreen,
		NoTranspose:  *noTranspose,
		SkipVerify:   *skipVerify,
	}
	if len(sweep) > 0 {
		opt.Sweep = sweep
	}

	var source string
	switch *bench {
	case "sp":
		source = nas.SPSource(*n, *steps, 1, *procs)
	case "bt":
		source = nas.BTSource(*n, *steps, 1, *procs)
	case "":
		data, err := os.ReadFile(*srcFile)
		if err != nil {
			fmt.Fprintln(stderr, "dhpftune:", err)
			return 1
		}
		source = string(data)
	default:
		fmt.Fprintf(stderr, "dhpftune: unknown bench %q (want sp or bt)\n", *bench)
		return 2
	}
	if *bench != "" {
		opt.Bench, opt.N, opt.Steps = *bench, *n, *steps
	}

	var err error
	if opt.Grids, err = parseGrids(*grids); err != nil {
		fmt.Fprintln(stderr, "dhpftune:", err)
		return 2
	}
	if opt.Grains, err = parseInts(*grains); err != nil {
		fmt.Fprintln(stderr, "dhpftune:", err)
		return 2
	}
	opt.Ablations = parseAblations(*ablate)
	if *backends != "" {
		for _, b := range strings.Split(*backends, ",") {
			opt.Backends = append(opt.Backends, strings.TrimSpace(b))
		}
	}

	res, err := dhpf.Tune(context.Background(), source, opt)
	if err != nil {
		fmt.Fprintln(stderr, "dhpftune:", err)
		if res != nil && *trail {
			for _, line := range res.Trail {
				fmt.Fprintln(stderr, "  ", line)
			}
		}
		return 1
	}

	switch {
	case *asJSON:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		enc.Encode(res)
	case *emitOptions:
		// Key and scheme make the fragment self-describing: a transpose
		// winner is a hand-coded comparison point with no compiler
		// options to replay (params/options are null then).
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Key     string               `json:"key"`
			Scheme  string               `json:"scheme"`
			Params  map[string]int       `json:"params,omitempty"`
			Options *dhpf.RequestOptions `json:"options,omitempty"`
		}{res.Winner.Key, res.Winner.Scheme, res.Winner.Params, res.Winner.Options})
	default:
		printLeaderboard(stdout, res, *trail)
	}
	return 0
}

func printLeaderboard(w io.Writer, res *dhpf.TuneResult, withTrail bool) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "RANK\tSTATUS\tCANDIDATE\tPREDICTED\tSIMULATED\tRATIO\tNOTE")
	for _, e := range res.Entries {
		pred, sim, ratio := "-", "-", "-"
		if e.ScreenSeconds > 0 {
			pred = fmt.Sprintf("%.4gs", e.ScreenSeconds)
		}
		if e.SimSeconds > 0 {
			sim = fmt.Sprintf("%.4gs", e.SimSeconds)
		}
		if e.ModelRatio > 0 {
			ratio = fmt.Sprintf("%.2f", e.ModelRatio)
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%s\t%s\t%s\n",
			e.Rank, e.Status, e.Key, pred, sim, ratio, e.Note)
	}
	tw.Flush()
	c := res.Counters
	static := ""
	if c.StaticEvals > 0 {
		static = fmt.Sprintf(", %d static costings", c.StaticEvals)
	}
	fmt.Fprintf(w, "search: %d candidates, %d screened%s, %d infeasible, %d simulated (%d pruned, %d memo hits)\n",
		c.Candidates, c.Screened, static, c.Infeasible, c.FullEvals, c.Pruned, c.MemoHits)
	if withTrail {
		fmt.Fprintln(w, "trail:")
		for _, line := range res.Trail {
			fmt.Fprintln(w, "  ", line)
		}
	}
	if res.Winner != nil {
		fmt.Fprintf(w, "winner: %s\n", res.Winner.Key)
	}
}

func parseGrids(s string) ([][2]int, error) {
	if s == "" {
		return nil, nil
	}
	var out [][2]int
	for _, f := range strings.Split(s, ",") {
		a, b, ok := strings.Cut(strings.TrimSpace(f), "x")
		if !ok {
			return nil, fmt.Errorf("bad grid %q (want P1xP2)", f)
		}
		p1, err1 := strconv.Atoi(a)
		p2, err2 := strconv.Atoi(b)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad grid %q (want P1xP2)", f)
		}
		out = append(out, [2]int{p1, p2})
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// parseAblations turns "availability;localize,newprop" into Disable
// sets; the unablated full pipeline is always the first set.
func parseAblations(s string) [][]string {
	if s == "" {
		return nil
	}
	out := [][]string{nil}
	for _, group := range strings.Split(s, ";") {
		var set []string
		for _, name := range strings.Split(group, ",") {
			if name = strings.TrimSpace(name); name != "" {
				set = append(set, name)
			}
		}
		if len(set) > 0 {
			out = append(out, set)
		}
	}
	return out
}
