package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSpacetimeSmoke renders a small dhpf diagram end to end, including
// the CSV side channel.
func TestSpacetimeSmoke(t *testing.T) {
	csvPath := filepath.Join(t.TempDir(), "st.csv")
	var out bytes.Buffer
	err := run(&out, []string{
		"-code", "sp", "-version", "dhpf", "-procs", "4",
		"-n", "12", "-steps", "1", "-bins", "40", "-csv", csvPath,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	for _, want := range []string{"sp dhpf, 4 ranks", "mean compute", "phase breakdown", "CSV written"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	csv, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatalf("csv not written: %v", err)
	}
	if !strings.HasPrefix(string(csv), "rank") {
		t.Errorf("csv header missing: %q", string(csv[:min(len(csv), 40)]))
	}
}

// TestSpacetimeMPI covers the hand-written baseline path.
func TestSpacetimeMPI(t *testing.T) {
	var out bytes.Buffer
	err := run(&out, []string{"-code", "sp", "-version", "mpi", "-procs", "4", "-n", "12", "-steps", "1", "-bins", "40"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "sp mpi, 4 ranks") {
		t.Errorf("missing title:\n%s", out.String())
	}
}

// TestSpacetimeBadFlags covers the error surface.
func TestSpacetimeBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, []string{"-version", "nope"}); err == nil {
		t.Error("unknown version accepted")
	}
	if err := run(&out, []string{"-code", "nope", "-version", "dhpf"}); err == nil {
		t.Error("unknown code accepted")
	}
}
