// Command spacetime regenerates the paper's Figures 8.1–8.4: space–time
// diagrams of one (or more) time steps of SP and BT on 16 processors,
// for the hand-written multipartitioning code and the dhpf-compiled
// code.  The hand-coded diagrams show dense compute with thin message
// bands (Figures 8.1/8.3); the dhpf diagrams show the pipelined
// wavefront skew in the y/z solves (Figures 8.2/8.4).
//
// Usage:
//
//	spacetime [-code sp|bt] [-version mpi|dhpf|pgi] [-procs 16] [-n 24]
//	          [-steps 1] [-bins 120] [-csv file]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dhpf/internal/mpsim"
	"dhpf/internal/nas"
	"dhpf/internal/spmd"
	"dhpf/internal/trace"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "spacetime:", err)
		os.Exit(1)
	}
}

// run is main with its environment made explicit, so tests can drive
// the CLI end to end.
func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("spacetime", flag.ContinueOnError)
	fs.SetOutput(w)
	code := fs.String("code", "sp", "sp, bt, or lu (lu -version mpi uses the 2-D pipelined baseline)")
	version := fs.String("version", "mpi", "mpi (hand multipartitioning), dhpf, or pgi")
	procs := fs.Int("procs", 16, "rank count (16 in the paper's figures)")
	n := fs.Int("n", 24, "grid size")
	steps := fs.Int("steps", 1, "time steps")
	bins := fs.Int("bins", 120, "diagram width in time bins")
	csv := fs.String("csv", "", "also write the diagram as CSV to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := mpsim.SP2Config(*procs)
	cfg.Trace = true

	var res *mpsim.Result
	switch *version {
	case "mpi":
		if *code == "lu" {
			p1, p2 := nas.GridShape(*procs)
			lu, err := nas.RunLU2D(*n, *steps, p1, p2, cfg)
			if err != nil {
				return err
			}
			res = lu.Machine
			break
		}
		mp, err := nas.RunMultipart(*code, *n, *steps, *procs, cfg)
		if err != nil {
			return err
		}
		res = mp.Machine
	case "pgi":
		tp, err := nas.RunTranspose(*code, *n, *steps, *procs, cfg)
		if err != nil {
			return err
		}
		res = tp.Machine
	case "dhpf":
		p1, p2 := nas.GridShape(*procs)
		var src string
		switch *code {
		case "sp":
			src = nas.SPSource(*n, *steps, p1, p2)
		case "bt":
			src = nas.BTSource(*n, *steps, p1, p2)
		case "lu":
			src = nas.LUSource(*n, *steps, p1, p2)
		default:
			return fmt.Errorf("unknown -code %q", *code)
		}
		prog, err := spmd.CompileSource(src, nil, spmd.DefaultOptions())
		if err != nil {
			return err
		}
		er, err := prog.Execute(cfg)
		if err != nil {
			return err
		}
		res = er.Machine
	default:
		return fmt.Errorf("unknown -version %q", *version)
	}

	d := trace.Build(res, *bins)
	title := fmt.Sprintf("%s %s, %d ranks, N=%d, %d step(s)", *code, *version, *procs, *n, *steps)
	fmt.Fprint(w, d.Render(title))
	s := trace.Summarize(res)
	fmt.Fprintf(w, "\nmean compute %.0f%%  comm %.0f%%  idle %.0f%%  load imbalance %.1f%%\n",
		100*s.MeanCompute, 100*s.MeanComm, 100*s.MeanIdle, 100*s.LoadImbalance)
	fmt.Fprintln(w, "\nphase breakdown (compute seconds across all ranks):")
	for _, pt := range trace.PhaseBreakdown(res) {
		fmt.Fprintf(w, "  %-14s %.6f\n", pt.Label, pt.Seconds)
	}
	if *csv != "" {
		if err := os.WriteFile(*csv, []byte(d.CSV()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nCSV written to %s\n", *csv)
	}
	return nil
}
