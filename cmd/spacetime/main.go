// Command spacetime regenerates the paper's Figures 8.1–8.4: space–time
// diagrams of one (or more) time steps of SP and BT on 16 processors,
// for the hand-written multipartitioning code and the dhpf-compiled
// code.  The hand-coded diagrams show dense compute with thin message
// bands (Figures 8.1/8.3); the dhpf diagrams show the pipelined
// wavefront skew in the y/z solves (Figures 8.2/8.4).
//
// Usage:
//
//	spacetime [-code sp|bt] [-version mpi|dhpf|pgi] [-procs 16] [-n 24]
//	          [-steps 1] [-bins 120] [-csv file]
package main

import (
	"flag"
	"fmt"
	"os"

	"dhpf/internal/mpsim"
	"dhpf/internal/nas"
	"dhpf/internal/spmd"
	"dhpf/internal/trace"
)

func main() {
	code := flag.String("code", "sp", "sp, bt, or lu (lu -version mpi uses the 2-D pipelined baseline)")
	version := flag.String("version", "mpi", "mpi (hand multipartitioning), dhpf, or pgi")
	procs := flag.Int("procs", 16, "rank count (16 in the paper's figures)")
	n := flag.Int("n", 24, "grid size")
	steps := flag.Int("steps", 1, "time steps")
	bins := flag.Int("bins", 120, "diagram width in time bins")
	csv := flag.String("csv", "", "also write the diagram as CSV to this file")
	flag.Parse()

	cfg := mpsim.SP2Config(*procs)
	cfg.Trace = true

	var res *mpsim.Result
	switch *version {
	case "mpi":
		if *code == "lu" {
			p1, p2 := nas.GridShape(*procs)
			run, err := nas.RunLU2D(*n, *steps, p1, p2, cfg)
			if err != nil {
				fatal(err)
			}
			res = run.Machine
			break
		}
		run, err := nas.RunMultipart(*code, *n, *steps, *procs, cfg)
		if err != nil {
			fatal(err)
		}
		res = run.Machine
	case "pgi":
		run, err := nas.RunTranspose(*code, *n, *steps, *procs, cfg)
		if err != nil {
			fatal(err)
		}
		res = run.Machine
	case "dhpf":
		p1, p2 := nas.GridShape(*procs)
		var src string
		switch *code {
		case "sp":
			src = nas.SPSource(*n, *steps, p1, p2)
		case "bt":
			src = nas.BTSource(*n, *steps, p1, p2)
		case "lu":
			src = nas.LUSource(*n, *steps, p1, p2)
		default:
			fatal(fmt.Errorf("unknown -code %q", *code))
		}
		prog, err := spmd.CompileSource(src, nil, spmd.DefaultOptions())
		if err != nil {
			fatal(err)
		}
		er, err := prog.Execute(cfg)
		if err != nil {
			fatal(err)
		}
		res = er.Machine
	default:
		fatal(fmt.Errorf("unknown -version %q", *version))
	}

	d := trace.Build(res, *bins)
	title := fmt.Sprintf("%s %s, %d ranks, N=%d, %d step(s)", *code, *version, *procs, *n, *steps)
	fmt.Print(d.Render(title))
	s := trace.Summarize(res)
	fmt.Printf("\nmean compute %.0f%%  comm %.0f%%  idle %.0f%%  load imbalance %.1f%%\n",
		100*s.MeanCompute, 100*s.MeanComm, 100*s.MeanIdle, 100*s.LoadImbalance)
	fmt.Println("\nphase breakdown (compute seconds across all ranks):")
	for _, pt := range trace.PhaseBreakdown(res) {
		fmt.Printf("  %-14s %.6f\n", pt.Label, pt.Seconds)
	}
	if *csv != "" {
		if err := os.WriteFile(*csv, []byte(d.CSV()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("\nCSV written to %s\n", *csv)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spacetime:", err)
	os.Exit(1)
}
