package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"dhpf/internal/passes"
)

// TestGoldenLhsy drives the CLI end to end on testdata/lhsy.hpf with
// -run (virtual time is deterministic) and compares against the stored
// golden output.
func TestGoldenLhsy(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-run", "../../testdata/lhsy.hpf"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	want, err := os.ReadFile("testdata/lhsy.golden")
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != string(want) {
		t.Errorf("output differs from golden:\n--- got ---\n%s\n--- want ---\n%s", out.String(), want)
	}
}

// TestEngineFlagGolden: both execution engines render the identical run
// report — the compiled engine is byte-for-byte the interpreter as far
// as any observable output goes, including the virtual-time counters in
// the execution summary line.
func TestEngineFlagGolden(t *testing.T) {
	var compiled, interp, errb bytes.Buffer
	if code := run([]string{"-run", "-engine", "compiled", "../../testdata/lhsy.hpf"}, &compiled, &errb); code != 0 {
		t.Fatalf("-engine compiled exit %d, stderr: %s", code, errb.String())
	}
	if code := run([]string{"-run", "-engine", "interp", "../../testdata/lhsy.hpf"}, &interp, &errb); code != 0 {
		t.Fatalf("-engine interp exit %d, stderr: %s", code, errb.String())
	}
	if compiled.String() != interp.String() {
		t.Errorf("run reports differ between engines:\n--- compiled ---\n%s\n--- interp ---\n%s",
			compiled.String(), interp.String())
	}
	want, err := os.ReadFile("testdata/lhsy.golden")
	if err != nil {
		t.Fatal(err)
	}
	if compiled.String() != string(want) {
		t.Errorf("-engine compiled output differs from golden:\n--- got ---\n%s\n--- want ---\n%s",
			compiled.String(), want)
	}

	var out bytes.Buffer
	errb.Reset()
	if code := run([]string{"-run", "-engine", "bogus", "../../testdata/lhsy.hpf"}, &out, &errb); code != 1 {
		t.Errorf("bad -engine exit = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "unknown engine") {
		t.Errorf("bad -engine stderr = %q, want mention of unknown engine", errb.String())
	}
}

// TestEngineCodegenFallback: -engine codegen on a program outside the
// generated corpus, with plugin builds disabled, degrades gracefully —
// an INFO diagnostic on stderr, exit 0, and the report byte-identical
// to the golden (the closure engine runs the unkerneled units).
func TestEngineCodegenFallback(t *testing.T) {
	t.Setenv("DHPF_NO_PLUGIN", "1")
	var out, errb bytes.Buffer
	if code := run([]string{"-run", "-engine", "codegen", "../../testdata/lhsy.hpf"}, &out, &errb); code != 0 {
		t.Fatalf("-engine codegen exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "INFO") || !strings.Contains(errb.String(), "fallback") {
		t.Errorf("stderr = %q, want an INFO fallback diagnostic", errb.String())
	}
	want, err := os.ReadFile("testdata/lhsy.golden")
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != string(want) {
		t.Errorf("-engine codegen output differs from golden:\n--- got ---\n%s\n--- want ---\n%s",
			out.String(), want)
	}
}

// TestBackendFlag: -backend shm runs the program on the shared-memory
// substrate — the execution line reports pulls instead of messages —
// and -backend hybrid reports both levels.  An unknown backend is a
// usage error.
func TestBackendFlag(t *testing.T) {
	var shm, hyb, errb bytes.Buffer
	if code := run([]string{"-run", "-backend", "shm", "../../testdata/lhsy.hpf"}, &shm, &errb); code != 0 {
		t.Fatalf("-backend shm exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(shm.String(), "execution (shm):") || !strings.Contains(shm.String(), "pulls") {
		t.Errorf("shm run summary missing pull counters:\n%s", shm.String())
	}
	if strings.Contains(shm.String(), "messages") {
		t.Errorf("pure shm run should not report messages:\n%s", shm.String())
	}
	if code := run([]string{"-run", "-backend", "hybrid", "../../testdata/lhsy.hpf"}, &hyb, &errb); code != 0 {
		t.Fatalf("-backend hybrid exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(hyb.String(), "execution (hybrid") || !strings.Contains(hyb.String(), "outer messages") {
		t.Errorf("hybrid run summary missing outer traffic:\n%s", hyb.String())
	}

	errb.Reset()
	var out bytes.Buffer
	if code := run([]string{"-backend", "cuda", "../../testdata/lhsy.hpf"}, &out, &errb); code != 1 {
		t.Errorf("bad -backend exit = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "unknown backend") {
		t.Errorf("bad -backend stderr = %q, want mention of unknown backend", errb.String())
	}
}

// TestExplainTable checks -explain prints one table row per pipeline
// pass (wall times vary, so the check is structural).
func TestExplainTable(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-explain", "../../testdata/lhsy.hpf"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, name := range passes.PassNames() {
		found := false
		for _, line := range strings.Split(out.String(), "\n") {
			if strings.HasPrefix(line, name+" ") || strings.HasPrefix(line, name+"\t") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("-explain output has no row for pass %q", name)
		}
	}
	if !strings.Contains(out.String(), "Δbytes") {
		t.Error("-explain output missing the volume-delta column")
	}
}

// TestDisableFlag checks -disable maps to pass-level ablation and
// matches the legacy boolean flag.
func TestDisableFlag(t *testing.T) {
	var a, b, errb bytes.Buffer
	if code := run([]string{"-no-avail", "../../testdata/lhsy.hpf"}, &a, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if code := run([]string{"-disable", "availability", "../../testdata/lhsy.hpf"}, &b, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if a.String() != b.String() {
		t.Error("-disable availability and -no-avail reports differ")
	}
}

func TestBadUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{}, &out, &errb); code != 2 {
		t.Errorf("no-args exit = %d, want 2", code)
	}
	if code := run([]string{"-disable", "bogus", "../../testdata/lhsy.hpf"}, &out, &errb); code != 1 {
		t.Errorf("bad -disable exit = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "unknown pass") {
		t.Errorf("bad -disable stderr = %q, want mention of unknown pass", errb.String())
	}
}

// TestLint: -lint prints the verifier's report (clean for the shipped
// corpus, with the INFO re-proofs visible) and -json switches to the
// structured form.
func TestLint(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-lint", "../../testdata/ysolve.hpf"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "verify: clean") {
		t.Errorf("missing verdict in lint output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "INFO [comm]") {
		t.Errorf("lint output hides the availability re-proof:\n%s", out.String())
	}

	var jout bytes.Buffer
	if code := run([]string{"-lint", "-json", "../../testdata/ysolve.hpf"}, &jout, &errb); code != 0 {
		t.Fatalf("-json exit %d, stderr: %s", code, errb.String())
	}
	var rep struct {
		Diagnostics []map[string]any `json:"diagnostics"`
		Stmts       int              `json:"stmts"`
	}
	if err := json.Unmarshal(jout.Bytes(), &rep); err != nil {
		t.Fatalf("-json output not JSON: %v\n%s", err, jout.String())
	}
	if rep.Stmts == 0 || len(rep.Diagnostics) == 0 {
		t.Errorf("JSON report empty: %s", jout.String())
	}
}

// TestAnalyzeFlag: -analyze prints the static-analysis report — loop
// summaries, the verdict line and the cost oracle's prediction — and
// -json switches to the structured form with the shared diagnostic
// schema (code/severity/proc/stmt/message) and an exact cost block.
func TestAnalyzeFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-analyze", "../../testdata/ysolve.hpf"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{"proc main", "phase", "flops", "analyze:", "predict (mp,"} {
		if !strings.Contains(got, want) {
			t.Errorf("analyze output missing %q:\n%s", want, got)
		}
	}

	var jout bytes.Buffer
	if code := run([]string{"-analyze", "-json", "../../testdata/ysolve.hpf"}, &jout, &errb); code != 0 {
		t.Fatalf("-json exit %d, stderr: %s", code, errb.String())
	}
	var rep struct {
		Clean  bool `json:"clean"`
		Procs  int  `json:"procs"`
		Phases int  `json:"phases"`
		Cost   *struct {
			Ranks int  `json:"ranks"`
			Exact bool `json:"exact"`
		} `json:"cost"`
		Diagnostics []map[string]any `json:"diagnostics"`
	}
	if err := json.Unmarshal(jout.Bytes(), &rep); err != nil {
		t.Fatalf("-json output not JSON: %v\n%s", err, jout.String())
	}
	if !rep.Clean || rep.Procs == 0 || rep.Phases == 0 {
		t.Errorf("JSON report incomplete: %s", jout.String())
	}
	if rep.Cost == nil || !rep.Cost.Exact || rep.Cost.Ranks != 4 {
		t.Errorf("JSON report missing exact cost: %s", jout.String())
	}
	for _, d := range rep.Diagnostics {
		for _, key := range []string{"code", "severity", "proc", "stmt", "message"} {
			if _, ok := d[key]; !ok {
				t.Errorf("diagnostic missing shared-schema key %q: %v", key, d)
			}
		}
	}
}

// TestIncrementalFlag: -incremental prints the warm recompile's output,
// which must be byte-identical to a plain compile; -stats adds the
// recompile delta and a pass table whose reused passes say "cached".
func TestIncrementalFlag(t *testing.T) {
	var plain, incr, errb bytes.Buffer
	if code := run([]string{"../../testdata/lhsy.hpf"}, &plain, &errb); code != 0 {
		t.Fatalf("plain exit %d: %s", code, errb.String())
	}
	if code := run([]string{"-incremental", "../../testdata/lhsy.hpf"}, &incr, &errb); code != 0 {
		t.Fatalf("-incremental exit %d: %s", code, errb.String())
	}
	if plain.String() != incr.String() {
		t.Errorf("-incremental report differs from plain compile:\n--- plain ---\n%s\n--- incremental ---\n%s",
			plain.String(), incr.String())
	}

	var stats bytes.Buffer
	if code := run([]string{"-incremental", "-stats", "../../testdata/lhsy.hpf"}, &stats, &errb); code != 0 {
		t.Fatalf("-incremental -stats exit %d: %s", code, errb.String())
	}
	got := stats.String()
	if !strings.HasPrefix(got, plain.String()) {
		t.Error("-stats altered the compile report itself")
	}
	if !strings.Contains(got, "incremental: 0/") || !strings.Contains(got, "artifacts reused") {
		t.Errorf("missing recompile delta in -stats output:\n%s", got)
	}
	if !strings.Contains(got, "cached") {
		t.Errorf("warm recompile pass table has no cached labels:\n%s", got)
	}

	errb.Reset()
	if code := run([]string{"-stats", "../../testdata/lhsy.hpf"}, &stats, &errb); code != 2 {
		t.Errorf("-stats without -incremental exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "-incremental") {
		t.Errorf("stderr = %q, want mention of -incremental", errb.String())
	}
}
