// Command dhpfc compiles a mini-HPF source file with the dhpf pipeline
// and reports the compiler's decisions: computation partitionings per
// statement, communication events (with §7 eliminations), and selection
// notes.  With -run it also executes the program on the simulated
// machine and prints performance counters (and optionally a space–time
// diagram).
//
// Usage:
//
//	dhpfc [flags] file.hpf
//
//	-run             execute on the simulated machine after compiling
//	-engine E        with -run: compiled (default) | interp | codegen —
//	                 the closure-compiled execution engine, the reference
//	                 tree-walking interpreter, or native Go kernels
//	                 (emitted, compiled and hot-loaded per program; units
//	                 without a kernel run on the closure engine).  All
//	                 engines produce byte-identical results; when plugin
//	                 builds are unavailable, codegen prints an INFO
//	                 diagnostic and falls back without failing
//	-trace           with -run: print an ASCII space–time diagram
//	-bins N          diagram width in time bins (default 100)
//	-param NAME=V    override a program parameter (repeatable)
//	-no-localize     disable §4.2 LOCALIZE partial replication
//	-no-loopdist     disable §5 loop distribution
//	-no-interproc    disable §6 interprocedural CPs
//	-no-avail        disable §7 data availability analysis
//	-newprop MODE    translate (default) | owner | replicate  (§4.1)
//	-backend B       execution substrate: mp (message-passing, default) |
//	                 shm (shared-memory threads, barrier phases in place
//	                 of messages) | hybrid (ranks across grid dim 0 ×
//	                 threads within a rank); shm/hybrid add the
//	                 race-freedom theorem to the verifier's obligations
//	-grain N         coarse-grain pipelining strip width (default 8)
//	-emit R          print the generated SPMD node program for rank R
//	-disable LIST    drop optional passes by name (comma-separated)
//	-explain         print the per-pass table: wall time, communication
//	                 volume after each pass (with deltas), and decisions
//	-incremental     compile through the per-procedure artifact store:
//	                 prime it cold, then recompile warm — the warm run
//	                 thaws every procedure's frozen analyses, and its
//	                 output (printed) is byte-identical to the cold one
//	-stats           with -incremental: print the recompile delta and the
//	                 per-pass table (reused passes are labelled "cached")
//	-lint            run the translation validator and print its
//	                 diagnostics instead of the compile report; exit 1
//	                 when the program fails a safety obligation
//	-analyze         run the whole-program static analysis and print the
//	                 symbolic loop summaries, dataflow diagnostics and
//	                 predicted execution counters instead of the compile
//	                 report; exit 1 on an error-severity finding (a read
//	                 of never-defined distributed data)
//	-json            with -lint or -analyze: print the report as JSON
//
// A default compile already hard-fails when the verifier finds an error;
// -lint exists to *see* the diagnostics (including the INFO-level
// availability/redundancy re-proofs and privatization bail-outs) rather
// than just the first failure.  -analyze is the static-analysis
// counterpart: its diagnostics never fail a compile (dead stores and
// dead communication are program properties, not compiler bugs), so the
// flag is how they surface.  Both emit diagnostics in one shared JSON
// schema (code, severity, proc, stmt, message).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"dhpf"
	"dhpf/internal/cache"
	"dhpf/internal/codegen"
	// The checked-in kernel corpus: programs whose kernels are
	// pre-generated (the NAS benchmarks) need no plugin build.
	_ "dhpf/internal/codegen/gen"
	"dhpf/internal/cp"
	"dhpf/internal/mpsim"
	"dhpf/internal/passes"
	"dhpf/internal/spmd"
	"dhpf/internal/trace"
)

type paramFlags map[string]int

func (p paramFlags) String() string { return fmt.Sprint(map[string]int(p)) }
func (p paramFlags) Set(v string) error {
	name, val, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want NAME=VALUE, got %q", v)
	}
	n, err := strconv.Atoi(val)
	if err != nil {
		return err
	}
	p[name] = n
	return nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func sumInt64(xs []int64) int64 {
	var t int64
	for _, x := range xs {
		t += x
	}
	return t
}

// run is main with its environment made explicit, so tests can drive the
// CLI end to end.  Returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dhpfc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	params := paramFlags{}
	doRun := fs.Bool("run", false, "execute on the simulated machine")
	engineName := fs.String("engine", "", "execution engine: compiled|interp|codegen (with -run)")
	doTrace := fs.Bool("trace", false, "print a space-time diagram (with -run)")
	bins := fs.Int("bins", 100, "space-time diagram bins")
	noLocalize := fs.Bool("no-localize", false, "disable LOCALIZE (§4.2)")
	noLoopdist := fs.Bool("no-loopdist", false, "disable loop distribution (§5)")
	noInterproc := fs.Bool("no-interproc", false, "disable interprocedural CPs (§6)")
	noAvail := fs.Bool("no-avail", false, "disable data availability (§7)")
	newprop := fs.String("newprop", "translate", "NEW propagation mode: translate|owner|replicate")
	backend := fs.String("backend", "", "execution substrate: mp|shm|hybrid")
	grain := fs.Int("grain", 8, "pipeline strip width")
	emit := fs.Int("emit", -1, "emit the SPMD node program for this rank")
	disable := fs.String("disable", "", "comma-separated optional passes to drop "+
		fmt.Sprintf("(%s)", strings.Join(passes.OptionalPassNames(), ",")))
	explain := fs.Bool("explain", false, "print the per-pass instrumentation table")
	incremental := fs.Bool("incremental", false, "compile via the artifact store (cold prime + warm recompile)")
	stats := fs.Bool("stats", false, "with -incremental: print the recompile delta and pass table")
	lint := fs.Bool("lint", false, "print verifier diagnostics; exit 1 on safety errors")
	analyze := fs.Bool("analyze", false, "print the static-analysis report; exit 1 on error findings")
	asJSON := fs.Bool("json", false, "with -lint or -analyze: print the report as JSON")
	fs.Var(params, "param", "override a program parameter NAME=VALUE")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: dhpfc [flags] file.hpf")
		fs.PrintDefaults()
		return 2
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "dhpfc:", err)
		return 1
	}

	opt := spmd.DefaultOptions()
	opt.CP.Localize = !*noLocalize
	opt.CP.LoopDist = !*noLoopdist
	opt.CP.Interproc = !*noInterproc
	opt.Comm.Availability = !*noAvail
	opt.PipelineGrain = *grain
	opt.Instrument = *explain
	if opt.Backend, err = passes.ParseBackend(*backend); err != nil {
		fmt.Fprintln(stderr, "dhpfc:", err)
		return 1
	}
	if *disable != "" {
		opt.Disable = strings.Split(*disable, ",")
	}
	switch *newprop {
	case "translate":
		opt.CP.NewProp = cp.NewPropTranslate
	case "owner":
		opt.CP.NewProp = cp.NewPropOwner
	case "replicate":
		opt.CP.NewProp = cp.NewPropReplicate
	default:
		fmt.Fprintln(stderr, "dhpfc:", fmt.Errorf("unknown -newprop mode %q", *newprop))
		return 1
	}

	if *lint {
		// Drop the in-pipeline verify pass so an unsafe program still
		// compiles; the explicit Verify call below turns its failures
		// into printed diagnostics instead of a compile error.
		opt.Disable = append(opt.Disable, passes.PassVerify)
	}
	if *analyze {
		// The in-pipeline analyze pass never fails a compile, so dropping
		// it is just avoiding duplicate work: the explicit Analyze call
		// below recomputes the same facts for printing.
		opt.Disable = append(opt.Disable, passes.PassAnalyze)
	}

	if *stats && !*incremental {
		fmt.Fprintln(stderr, "dhpfc: -stats requires -incremental")
		return 2
	}

	var prog *spmd.Program
	var delta *passes.Delta
	if *incremental {
		// Prime the artifact store with a cold compile, then recompile
		// warm: the warm run thaws every procedure's frozen analyses and
		// is the compile whose (byte-identical) output gets printed.
		store := cache.NewArtifactStore(0)
		if _, _, err = spmd.CompileIncremental(string(src), params, opt, store); err == nil {
			prog, delta, err = spmd.CompileIncremental(string(src), params, opt, store)
		}
	} else {
		prog, err = spmd.CompileSource(string(src), params, opt)
	}
	if err != nil {
		fmt.Fprintln(stderr, "dhpfc:", err)
		return 1
	}

	if *lint {
		rep, err := prog.Verify()
		if err != nil {
			fmt.Fprintln(stderr, "dhpfc:", err)
			return 1
		}
		if *asJSON {
			fmt.Fprintln(stdout, rep.JSON())
		} else {
			fmt.Fprint(stdout, rep.String())
		}
		if !rep.Clean() {
			return 1
		}
		return 0
	}

	if *analyze {
		res, err := prog.Analyze()
		if err != nil {
			fmt.Fprintln(stderr, "dhpfc:", err)
			return 1
		}
		cost, err := prog.PredictCost()
		if err != nil {
			fmt.Fprintln(stderr, "dhpfc:", err)
			return 1
		}
		rep := dhpf.AnalyzeReportJSON(res, cost)
		if *asJSON {
			out, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				fmt.Fprintln(stderr, "dhpfc:", err)
				return 1
			}
			fmt.Fprintln(stdout, string(out))
		} else {
			fmt.Fprint(stdout, rep.Text)
			fmt.Fprintln(stdout, rep.Summary)
			fmt.Fprintf(stdout, "predict (%s, %d ranks): %.0f flops, %d messages, %d bytes",
				cost.Backend, cost.Ranks, cost.TotalFlops(), cost.TotalMessages(), cost.TotalBytes())
			if cost.Backend != "mp" {
				fmt.Fprintf(stdout, ", %d pulls, %d pulled bytes, %d barriers",
					sumInt64(cost.Pulls), cost.TotalPulled(), cost.Barriers)
			}
			fmt.Fprintln(stdout)
		}
		if !rep.Clean {
			return 1
		}
		return 0
	}
	fmt.Fprint(stdout, prog.Report())

	if *explain {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, passes.StatsTable(prog.PassStats()))
	}

	if *stats {
		fmt.Fprintln(stdout)
		fmt.Fprintln(stdout, delta)
		if !*explain {
			fmt.Fprint(stdout, passes.StatsTable(prog.PassStats()))
		}
	}

	if *emit >= 0 {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, prog.EmitNodeProgram(*emit))
	}

	if !*doRun {
		return 0
	}
	engine, err := spmd.ParseEngine(*engineName)
	if err != nil {
		fmt.Fprintln(stderr, "dhpfc:", err)
		return 1
	}
	if engine == spmd.EngineCodegen {
		// Bring native kernels online: pre-generated corpus entries are
		// free, the rest build a plugin.  Degradation is informational,
		// never fatal — unkerneled units run on the closure engine with
		// identical results.
		rep, err := codegen.EnableNative(prog, codegen.Options{})
		if err != nil {
			fmt.Fprintln(stderr, "dhpfc:", err)
			return 1
		}
		if rep.Fallback != "" {
			fmt.Fprintln(stderr, "dhpfc: INFO:", rep.String())
		}
	}
	cfg := mpsim.SP2Config(prog.Grid.Size())
	cfg.Trace = *doTrace
	res, err := prog.ExecuteEngine(cfg, engine)
	if err != nil {
		fmt.Fprintln(stderr, "dhpfc:", err)
		return 1
	}
	switch {
	case res.Shm != nil && res.Shm.Groups > 1:
		fmt.Fprintf(stdout, "\nexecution (hybrid, %d groups): %d threads, %.6fs virtual time, %d pulls, %d pulled bytes, %d outer messages, %d outer bytes\n",
			res.Shm.Groups, prog.Grid.Size(), res.Machine.Time,
			res.Shm.TotalPulls(), res.Shm.TotalPulledBytes(),
			res.Machine.TotalMessages(), res.Machine.TotalBytes())
	case res.Shm != nil:
		fmt.Fprintf(stdout, "\nexecution (shm): %d threads, %.6fs virtual time, %d pulls, %d pulled bytes\n",
			prog.Grid.Size(), res.Machine.Time, res.Shm.TotalPulls(), res.Shm.TotalPulledBytes())
	default:
		fmt.Fprintf(stdout, "\nexecution: %d ranks, %.6fs virtual time, %d messages, %d bytes\n",
			prog.Grid.Size(), res.Machine.Time, res.Machine.TotalMessages(), res.Machine.TotalBytes())
	}
	if *doTrace {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, trace.Build(res.Machine, *bins).Render(fs.Arg(0)))
		s := trace.Summarize(res.Machine)
		fmt.Fprintf(stdout, "mean compute %.0f%%  comm %.0f%%  idle %.0f%%  load imbalance %.1f%%\n",
			100*s.MeanCompute, 100*s.MeanComm, 100*s.MeanIdle, 100*s.LoadImbalance)
	}
	return 0
}
