// Command dhpfc compiles a mini-HPF source file with the dhpf pipeline
// and reports the compiler's decisions: computation partitionings per
// statement, communication events (with §7 eliminations), and selection
// notes.  With -run it also executes the program on the simulated
// machine and prints performance counters (and optionally a space–time
// diagram).
//
// Usage:
//
//	dhpfc [flags] file.hpf
//
//	-run             execute on the simulated machine after compiling
//	-trace           with -run: print an ASCII space–time diagram
//	-bins N          diagram width in time bins (default 100)
//	-param NAME=V    override a program parameter (repeatable)
//	-no-localize     disable §4.2 LOCALIZE partial replication
//	-no-loopdist     disable §5 loop distribution
//	-no-interproc    disable §6 interprocedural CPs
//	-no-avail        disable §7 data availability analysis
//	-newprop MODE    translate (default) | owner | replicate  (§4.1)
//	-grain N         coarse-grain pipelining strip width (default 8)
//	-emit R          print the generated SPMD node program for rank R
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dhpf/internal/comm"
	"dhpf/internal/cp"
	"dhpf/internal/mpsim"
	"dhpf/internal/spmd"
	"dhpf/internal/trace"
)

type paramFlags map[string]int

func (p paramFlags) String() string { return fmt.Sprint(map[string]int(p)) }
func (p paramFlags) Set(v string) error {
	name, val, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want NAME=VALUE, got %q", v)
	}
	n, err := strconv.Atoi(val)
	if err != nil {
		return err
	}
	p[name] = n
	return nil
}

func main() {
	params := paramFlags{}
	run := flag.Bool("run", false, "execute on the simulated machine")
	doTrace := flag.Bool("trace", false, "print a space-time diagram (with -run)")
	bins := flag.Int("bins", 100, "space-time diagram bins")
	noLocalize := flag.Bool("no-localize", false, "disable LOCALIZE (§4.2)")
	noLoopdist := flag.Bool("no-loopdist", false, "disable loop distribution (§5)")
	noInterproc := flag.Bool("no-interproc", false, "disable interprocedural CPs (§6)")
	noAvail := flag.Bool("no-avail", false, "disable data availability (§7)")
	newprop := flag.String("newprop", "translate", "NEW propagation mode: translate|owner|replicate")
	grain := flag.Int("grain", 8, "pipeline strip width")
	emit := flag.Int("emit", -1, "emit the SPMD node program for this rank")
	flag.Var(params, "param", "override a program parameter NAME=VALUE")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dhpfc [flags] file.hpf")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	opt := spmd.DefaultOptions()
	opt.CP.Localize = !*noLocalize
	opt.CP.LoopDist = !*noLoopdist
	opt.CP.Interproc = !*noInterproc
	opt.Comm.Availability = !*noAvail
	opt.PipelineGrain = *grain
	switch *newprop {
	case "translate":
		opt.CP.NewProp = cp.NewPropTranslate
	case "owner":
		opt.CP.NewProp = cp.NewPropOwner
	case "replicate":
		opt.CP.NewProp = cp.NewPropReplicate
	default:
		fatal(fmt.Errorf("unknown -newprop mode %q", *newprop))
	}

	prog, err := spmd.CompileSource(string(src), params, opt)
	if err != nil {
		fatal(err)
	}
	fmt.Print(prog.Report())

	if *emit >= 0 {
		fmt.Println()
		fmt.Print(prog.EmitNodeProgram(*emit))
	}

	if !*run {
		return
	}
	cfg := mpsim.SP2Config(prog.Grid.Size())
	cfg.Trace = *doTrace
	res, err := prog.Execute(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nexecution: %d ranks, %.6fs virtual time, %d messages, %d bytes\n",
		prog.Grid.Size(), res.Machine.Time, res.Machine.TotalMessages(), res.Machine.TotalBytes())
	if *doTrace {
		fmt.Println()
		fmt.Print(trace.Build(res.Machine, *bins).Render(flag.Arg(0)))
		s := trace.Summarize(res.Machine)
		fmt.Printf("mean compute %.0f%%  comm %.0f%%  idle %.0f%%  load imbalance %.1f%%\n",
			100*s.MeanCompute, 100*s.MeanComm, 100*s.MeanIdle, 100*s.LoadImbalance)
	}
}

var _ = comm.ReadComm

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dhpfc:", err)
	os.Exit(1)
}
