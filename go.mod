module dhpf

go 1.24
