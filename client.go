package dhpf

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client talks to a dhpfd compile service (internal/service, served by
// cmd/dhpfd).  The zero HTTPClient uses http.DefaultClient; cancellation
// and per-call deadlines come from the context.
type Client struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8421".
	BaseURL    string
	HTTPClient *http.Client
}

// NewClient returns a client for the service at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

// Compile compiles source through the service's program cache.
func (c *Client) Compile(ctx context.Context, req CompileRequest) (*CompileResponse, error) {
	var resp CompileResponse
	if err := c.post(ctx, "/v1/compile", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Explain returns the per-pass instrumentation table for a compilation.
func (c *Client) Explain(ctx context.Context, req CompileRequest) (*ExplainResponse, error) {
	var resp ExplainResponse
	if err := c.post(ctx, "/v1/explain", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Run compiles (cached) and executes on the named machine.
func (c *Client) Run(ctx context.Context, req RunRequest) (*RunResponse, error) {
	var resp RunResponse
	if err := c.post(ctx, "/v1/run", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats returns the service's cache and request counters.
func (c *Client) Stats(ctx context.Context) (*StatsResponse, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	var resp StatsResponse
	if err := c.do(httpReq, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (c *Client) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	return c.do(httpReq, out)
}

func (c *Client) do(req *http.Request, out any) error {
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		apiErr := &APIError{StatusCode: resp.StatusCode}
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if json.Unmarshal(data, apiErr) != nil || apiErr.Message == "" {
			apiErr.Message = strings.TrimSpace(string(data))
		}
		return apiErr
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("dhpfd: decoding %s response: %w", req.URL.Path, err)
	}
	return nil
}
