package dhpf

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strings"
	"syscall"
	"time"
)

// Client talks to a dhpfd compile service (internal/service, served by
// cmd/dhpfd).  The zero HTTPClient uses http.DefaultClient; cancellation
// and per-call deadlines come from the context.
type Client struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8421".
	BaseURL    string
	HTTPClient *http.Client
	// Retry bounds automatic retries of transient failures.  The zero
	// value makes exactly one attempt, so loadgen and backpressure tests
	// still observe raw 429s.
	Retry RetryPolicy
}

// RetryPolicy retries requests that failed for reasons that resolve by
// waiting: queue-full rejections (HTTP 429) and connection-refused
// dials (the daemon is restarting).  Anything else — 4xx/5xx responses,
// context cancellation, protocol errors — fails immediately.  Backoff
// is exponential from BaseDelay with equal jitter (half fixed, half
// uniform random), capped at MaxDelay; a cancelled context cuts the
// wait short.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first.
	// 0 and 1 both mean "no retries".
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 25ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth (default 2s).
	MaxDelay time.Duration
}

// Retryable reports whether err is one of the transient failures the
// policy covers.
func (RetryPolicy) Retryable(err error) bool {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.StatusCode == http.StatusTooManyRequests
	}
	return errors.Is(err, syscall.ECONNREFUSED)
}

// delay returns the jittered backoff before retry number retry (0-based).
func (p RetryPolicy) delay(retry int) time.Duration {
	base, max := p.BaseDelay, p.MaxDelay
	if base <= 0 {
		base = 25 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base << min(retry, 30)
	if d <= 0 || d > max {
		d = max
	}
	return d/2 + rand.N(d/2+1)
}

// NewClient returns a client for the service at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

// Compile compiles source through the service's program cache.
func (c *Client) Compile(ctx context.Context, req CompileRequest) (*CompileResponse, error) {
	var resp CompileResponse
	if err := c.post(ctx, "/v1/compile", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// CompileBatch compiles many requests in one round trip.  The service
// processes the batch in order against a shared program cache and
// per-procedure artifact store, so near-identical members (a parameter
// sweep, successive edits of one program) reuse each other's analyses.
// Per-member failures come back in the matching BatchCompileResult; the
// call itself fails only on transport or whole-batch errors.
func (c *Client) CompileBatch(ctx context.Context, req BatchCompileRequest) (*BatchCompileResponse, error) {
	var resp BatchCompileResponse
	if err := c.post(ctx, "/v1/compile/batch", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Explain returns the per-pass instrumentation table for a compilation.
func (c *Client) Explain(ctx context.Context, req CompileRequest) (*ExplainResponse, error) {
	var resp ExplainResponse
	if err := c.post(ctx, "/v1/explain", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Run compiles (cached) and executes on the named machine.
func (c *Client) Run(ctx context.Context, req RunRequest) (*RunResponse, error) {
	var resp RunResponse
	if err := c.post(ctx, "/v1/run", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Verify compiles (through the service's program cache, with the
// in-pipeline verify pass disabled) and returns the translation
// validator's report.  Unlike a plain Compile — which fails outright on
// an unsafe program — the response carries the full diagnostic list.
func (c *Client) Verify(ctx context.Context, req VerifyRequest) (*VerifyResponse, error) {
	var resp VerifyResponse
	if err := c.post(ctx, "/v1/verify", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Analyze compiles (through the service's program cache) and returns
// the static analyzer's report: symbolic loop summaries, dataflow
// diagnostics in the shared schema, and the cost oracle's predicted
// execution counters.  Repeated requests on one fingerprint are served
// from the entry's memoized report.
func (c *Client) Analyze(ctx context.Context, req AnalyzeRequest) (*AnalyzeResponse, error) {
	var resp AnalyzeResponse
	if err := c.post(ctx, "/v1/analyze", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Tune runs an auto-tuning search on the service (see Tuner.Tune); the
// server bounds the search's parallelism by its own worker pool.
func (c *Client) Tune(ctx context.Context, req TuneRequest) (*TuneResult, error) {
	var resp TuneResult
	if err := c.post(ctx, "/v1/tune", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// PeerFetch asks a fleet member for its stored copy of a fingerprint.
// A miss is a normal response (Found false), not an error.  This is the
// replica-to-replica path behind cross-replica warm hits; it is exposed
// on the client for fleet tooling and tests.
func (c *Client) PeerFetch(ctx context.Context, req PeerFetchRequest) (*PeerFetchResponse, error) {
	var resp PeerFetchResponse
	if err := c.post(ctx, "/v1/peer/fetch", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats returns the service's cache and request counters.
func (c *Client) Stats(ctx context.Context) (*StatsResponse, error) {
	var resp StatsResponse
	err := c.withRetry(ctx, &resp, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/stats", nil)
	})
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

func (c *Client) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	return c.withRetry(ctx, out, func() (*http.Request, error) {
		httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		httpReq.Header.Set("Content-Type", "application/json")
		return httpReq, nil
	})
}

// withRetry issues the request built by mkReq, retrying per c.Retry.
// The request is rebuilt each attempt so its body can be re-read.
func (c *Client) withRetry(ctx context.Context, out any, mkReq func() (*http.Request, error)) error {
	for retry := 0; ; retry++ {
		req, err := mkReq()
		if err != nil {
			return err
		}
		err = c.do(req, out)
		if err == nil || retry+1 >= c.Retry.MaxAttempts || !c.Retry.Retryable(err) {
			return err
		}
		select {
		case <-time.After(c.Retry.delay(retry)):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

func (c *Client) do(req *http.Request, out any) error {
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		apiErr := &APIError{StatusCode: resp.StatusCode}
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if json.Unmarshal(data, apiErr) != nil || apiErr.Message == "" {
			apiErr.Message = strings.TrimSpace(string(data))
		}
		return apiErr
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("dhpfd: decoding %s response: %w", req.URL.Path, err)
	}
	return nil
}
