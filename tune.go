package dhpf

import (
	"context"

	"dhpf/internal/tune"
)

// Tuner runs auto-tuning searches over shared memoization caches:
// repeated Tune calls on the same source reuse full evaluations and
// serial reference runs (the memo counters in TuneResult show it).
type Tuner struct {
	inner *tune.Tuner
}

// NewTuner returns a tuner with fresh caches.  The compile service
// holds one per server; Tune (package level) shares one per process.
func NewTuner() *Tuner { return &Tuner{inner: tune.New()} }

// Tune searches the configuration space of source — processor-grid
// shapes, distribution schemes, pipeline granularities, pass ablations,
// swept parameters — for the lowest-predicted-cost configuration, using
// the two-tier protocol of internal/tune: an analytic screen over every
// candidate at the target problem size, then compile + simulate + verify
// for the top-K survivors with deterministic early pruning.  The result
// is the ranked leaderboard with the search trail; the winner's Params
// and Options replay directly through Compile.
//
// The search is deterministic: a fixed spec yields an identical
// leaderboard across runs, memo hits or not.  On a non-nil error the
// result may still carry the partial leaderboard for diagnostics.
func (t *Tuner) Tune(ctx context.Context, source string, opt TuneOptions) (*TuneResult, error) {
	res, err := t.inner.Run(ctx, tune.Spec{
		Source:       source,
		Params:       opt.Params,
		Bench:        opt.Bench,
		N:            opt.N,
		Steps:        opt.Steps,
		TargetN:      opt.TargetN,
		TargetSteps:  opt.TargetSteps,
		Procs:        opt.Procs,
		GridParams:   opt.GridParams,
		Grids:        opt.Grids,
		Grains:       opt.Grains,
		Ablations:    opt.Ablations,
		Sweep:        opt.Sweep,
		Backends:     opt.Backends,
		NoTranspose:  opt.NoTranspose,
		TopK:         opt.TopK,
		MaxScreen:    opt.MaxScreen,
		Seed:         opt.Seed,
		Workers:      opt.Workers,
		PruneFactor:  opt.PruneFactor,
		StaticScreen: opt.StaticScreen,
		SkipVerify:   opt.SkipVerify,
		VerifyArrays: opt.VerifyArrays,
	})
	if res == nil {
		return nil, err
	}
	return convertTuneResult(res), err
}

var defaultTuner = NewTuner()

// Tune runs a search on the process-wide shared tuner (see
// Tuner.Tune).
func Tune(ctx context.Context, source string, opt TuneOptions) (*TuneResult, error) {
	return defaultTuner.Tune(ctx, source, opt)
}

func convertTuneResult(res *tune.Result) *TuneResult {
	out := &TuneResult{
		Entries: make([]TuneEntry, len(res.Entries)),
		Counters: TuneCounters{
			Candidates:   res.Counters.Candidates,
			Screened:     res.Counters.Screened,
			Infeasible:   res.Counters.Infeasible,
			FullEvals:    res.Counters.FullEvals,
			Pruned:       res.Counters.Pruned,
			MemoHits:     res.Counters.MemoHits,
			MemoMisses:   res.Counters.MemoMisses,
			StaticEvals:  res.Counters.StaticEvals,
			ScreenWallNS: res.Counters.ScreenWall.Nanoseconds(),
			StaticWallNS: res.Counters.StaticWall.Nanoseconds(),
			FullWallNS:   res.Counters.FullWall.Nanoseconds(),
		},
		Trail: res.Trail,
	}
	for i := range res.Entries {
		out.Entries[i] = convertTuneEntry(&res.Entries[i])
	}
	if res.Winner != nil && len(out.Entries) > 0 {
		out.Winner = &out.Entries[0]
	}
	return out
}

func convertTuneEntry(e *tune.Entry) TuneEntry {
	te := TuneEntry{
		Key:            e.Key(),
		Scheme:         e.Scheme,
		Backend:        e.Backend,
		P1:             e.P1,
		P2:             e.P2,
		Grain:          e.Grain,
		Disable:        e.Disable,
		Extra:          e.Extra,
		Rank:           e.Rank,
		Status:         e.Status,
		ScreenSeconds:  e.Screen,
		StaticSeconds:  e.Static,
		SimSeconds:     e.Sim,
		SimMessages:    e.Msgs,
		SimBytes:       e.Bytes,
		ModelRatio:     e.ModelRatio,
		MaxRelErr:      e.MaxRelErr,
		Verified:       e.Verified,
		ComparedArrays: e.ComparedArrays,
		Cached:         e.Cached,
		Note:           e.Note,
		Params:         e.Params,
	}
	if e.Options != nil {
		te.Options = RequestOptionsFrom(*e.Options)
	}
	return te
}
