package dhpf_test

import (
	"path/filepath"
	"testing"

	"dhpf"
	"dhpf/internal/nas"
	"dhpf/internal/store"
)

func openStoreT(t *testing.T, path string) *store.Store {
	t.Helper()
	st, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// TestIncrementalPersistRestartWarm: an Incremental with a durable
// store, restarted (fresh in-memory tiers over the same journal),
// recompiles a previously-seen program with zero dirty procedures —
// every frozen artifact thaws from disk — and byte-identical output.
func TestIncrementalPersistRestartWarm(t *testing.T) {
	path := filepath.Join(t.TempDir(), "artifacts.journal")
	src := nas.SPModSource(12, 1, 2, 2)
	opt := dhpf.DefaultOptions()

	st := openStoreT(t, path)
	inc := dhpf.NewIncremental(0)
	inc.Persist(st)
	cold, _, err := inc.Compile(src, nil, opt)
	if err != nil {
		t.Fatalf("priming compile: %v", err)
	}
	coldVerify, err := cold.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh store handle over the same journal and a fresh
	// Incremental with empty in-memory tiers.
	st2 := openStoreT(t, path)
	inc2 := dhpf.NewIncremental(0)
	inc2.Persist(st2)
	warm, delta, err := inc2.Compile(src, nil, opt)
	if err != nil {
		t.Fatalf("restart-warm compile: %v", err)
	}

	if delta.Dirty != 0 {
		t.Errorf("restart-warm recompile dirtied %d procs (%v), want 0", delta.Dirty, delta.DirtyProcs)
	}
	stats := inc2.ArtifactStats()
	if stats.BackingHits == 0 {
		t.Errorf("no artifacts thawed from the durable store: %+v", stats)
	}
	if warm.Report() != cold.Report() {
		t.Error("restart-warm report differs from pre-restart report")
	}
	for rk := 0; rk < cold.Ranks(); rk++ {
		if warm.NodeProgram(rk) != cold.NodeProgram(rk) {
			t.Errorf("rank %d node program differs across restart", rk)
		}
	}
	warmVerify, err := warm.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if warmVerify.Text != coldVerify.Text {
		t.Error("verification output differs across restart")
	}
}

// TestIncrementalPersistWarmEditAcrossRestart: the warm-edit property
// survives a restart — after reopening the store, editing one procedure
// re-analyzes only it and its caller, and output matches a cold compile.
func TestIncrementalPersistWarmEditAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "artifacts.journal")
	base := nas.SPModSource(12, 1, 2, 2)
	opt := dhpf.DefaultOptions()

	st := openStoreT(t, path)
	inc := dhpf.NewIncremental(0)
	inc.Persist(st)
	if _, _, err := inc.Compile(base, nil, opt); err != nil {
		t.Fatalf("priming compile: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStoreT(t, path)
	inc2 := dhpf.NewIncremental(0)
	inc2.Persist(st2)
	edited := editSPMod(t, base)
	warm, delta, err := inc2.Compile(edited, nil, opt)
	if err != nil {
		t.Fatalf("warm-edit compile: %v", err)
	}
	if delta.Dirty != 2 {
		t.Errorf("dirty procs = %d (%v), want exactly [add main]", delta.Dirty, delta.DirtyProcs)
	}
	cold, err := dhpf.Compile(edited, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Report() != cold.Report() {
		t.Error("warm-edit-across-restart report differs from cold")
	}
	if warm.NodeProgram(0) != cold.NodeProgram(0) {
		t.Error("warm-edit-across-restart node program differs from cold")
	}
}

// TestIncrementalPersistSharesChunks: two compiles differing only in an
// unused parameter produce different fingerprints but identical frozen
// artifacts — the content-addressed store must share their chunks.
func TestIncrementalPersistSharesChunks(t *testing.T) {
	st := openStoreT(t, filepath.Join(t.TempDir(), "artifacts.journal"))
	src := nas.SPModSource(12, 1, 2, 2)
	opt := dhpf.DefaultOptions()

	inc := dhpf.NewIncremental(0)
	inc.Persist(st)
	if _, _, err := inc.Compile(src, nil, opt); err != nil {
		t.Fatal(err)
	}
	// A second process compiling the same source: fresh memory, same
	// store — every chunk write dedups.
	inc2 := dhpf.NewIncremental(0)
	inc2.Persist(st)
	if _, _, err := inc2.Compile(src+"\n", nil, opt); err != nil {
		t.Fatal(err)
	}
	if stats := st.Stats(); stats.DedupHits == 0 {
		t.Errorf("no chunk-level structural sharing: %+v", stats)
	}
}
