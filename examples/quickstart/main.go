// Quickstart: compile a 2-D Jacobi stencil from mini-HPF source, run it
// on a simulated 4-processor machine, verify the result against the
// sequential reference, and print the compiler's decisions and the
// performance counters.
package main

import (
	"fmt"
	"io"
	"log"
	"math"
	"os"

	"dhpf"
)

const src = `
program jacobi
param N = 64
param P = 4

!hpf$ processors procs(P)
!hpf$ template tm(N, N)
!hpf$ align a with tm(d0, d1)
!hpf$ align b with tm(d0, d1)
!hpf$ distribute tm(*, BLOCK) onto procs

subroutine main()
  real a(0:N-1, 0:N-1)
  real b(0:N-1, 0:N-1)
  do j = 0, N-1
    do i = 0, N-1
      a(i,j) = sin(0.1*i) + 0.05*j
      b(i,j) = 0.0
    enddo
  enddo
  do t = 1, 5
    do j = 1, N-2
      do i = 1, N-2
        b(i,j) = 0.25*(a(i-1,j) + a(i+1,j) + a(i,j-1) + a(i,j+1))
      enddo
    enddo
    do j = 1, N-2
      do i = 1, N-2
        a(i,j) = b(i,j)
      enddo
    enddo
  enddo
end
`

func run(w io.Writer) error {
	prog, err := dhpf.Compile(src, nil, dhpf.DefaultOptions())
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "=== compiler report ===")
	fmt.Fprint(w, prog.Report())

	res, err := prog.Run(dhpf.SP2Machine(prog.Ranks()))
	if err != nil {
		return err
	}

	// Verify against the sequential reference semantics.
	ref, err := dhpf.RunSerial(src, nil)
	if err != nil {
		return err
	}
	got, _, _, _ := res.Array("a")
	want, _, _, _ := ref.Array("a")
	var maxErr float64
	for i := range want {
		maxErr = math.Max(maxErr, math.Abs(got[i]-want[i]))
	}

	fmt.Fprintln(w, "\n=== execution ===")
	fmt.Fprintf(w, "ranks:            %d\n", prog.Ranks())
	fmt.Fprintf(w, "virtual time:     %.6f s\n", res.Seconds())
	fmt.Fprintf(w, "messages:         %d (%d bytes)\n", res.Messages(), res.Bytes())
	fmt.Fprintf(w, "max |parallel - serial|: %g\n", maxErr)
	if maxErr > 1e-12 {
		return fmt.Errorf("verification FAILED: max error %g", maxErr)
	}
	fmt.Fprintln(w, "verification OK: compiled SPMD code matches the serial reference")
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
