package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRun smoke-tests the example end to end: it must compile, execute,
// and verify against the serial reference.
func TestRun(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"=== compiler report ===",
		"=== execution ===",
		"verification OK",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}
