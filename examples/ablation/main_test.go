package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRun smoke-tests the ablation tables: all three §4.1 modes plus the
// §7 availability pass toggled via Options.Disable.
func TestRun(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"translate (the paper, §4.1)",
		"replicate everything",
		"owner-computes",
		"availability=true",
		"availability=false",
		"verify: clean",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}
