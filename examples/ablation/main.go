// Ablation: compile the paper's lhsy fragment (Figure 4.1) under the
// three alternatives §4.1 weighs for privatizable arrays — the paper's
// CP translation, full replication, and owner-computes — plus data
// availability on/off on the wavefront fragment (§7), and print the
// communication each plan induces.
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"dhpf"
	"dhpf/internal/cp"
)

const lhsySrc = `
program lhsy
param N = 64
param P = 4
!hpf$ processors procs(P)
!hpf$ template tm(N, N)
!hpf$ template tline(N)
!hpf$ align lhs with tm(d0, d1)
!hpf$ align cv with tline(d0)
!hpf$ align rhoq with tline(d0)
!hpf$ distribute tm(*, BLOCK) onto procs
!hpf$ distribute tline(BLOCK) onto procs

subroutine main()
  real lhs(0:N-1, 0:N-1)
  real cv(0:N-1)
  real rhoq(0:N-1)
  do j = 0, N-1
    do i = 0, N-1
      lhs(i,j) = 0.0
    enddo
  enddo
  !hpf$ independent, new(cv, rhoq)
  do i = 1, N-2
    do j = 0, N-1
      cv(j) = 0.1*j + 0.01*i
      rhoq(j) = 0.2*j
    enddo
    do j = 1, N-2
      lhs(i,j) = cv(j-1) + rhoq(j) + cv(j+1)
    enddo
  enddo
end
`

const sweepSrc = `
program ys
param N = 64
param P = 4
!hpf$ processors procs(P)
!hpf$ template tm(N, N)
!hpf$ align w with tm(d0, d1)
!hpf$ align v with tm(d0, d1)
!hpf$ align f with tm(d0, d1)
!hpf$ distribute tm(*, BLOCK) onto procs

subroutine main()
  real w(0:N-1, 0:N-1)
  real v(0:N-1, 0:N-1)
  real f(0:N-1, 0:N-1)
  do j = 0, N-1
    do i = 0, N-1
      v(i,j) = 1.0 + 0.01*i
      w(i,j) = 0.02*j
      f(i,j) = 0.0
    enddo
  enddo
  do j = 1, N-4
    do i = 1, N-2
      f(i,j) = 0.08 / v(i,j)
      w(i,j+1) = w(i,j+1) - f(i,j)*w(i,j)
      w(i,j+2) = w(i,j+2) - 0.5*f(i,j)*w(i,j)
    enddo
  enddo
end
`

func measure(src string, opt dhpf.Options) (msgs, bytes int64, flops float64, verdict string, err error) {
	prog, err := dhpf.Compile(src, nil, opt)
	if err != nil {
		return 0, 0, 0, "", err
	}
	rep, err := prog.Verify()
	if err != nil {
		return 0, 0, 0, "", err
	}
	verdict = "clean"
	if !rep.Clean {
		verdict = "UNSAFE"
	}
	res, err := prog.Run(dhpf.SP2Machine(prog.Ranks()))
	if err != nil {
		return 0, 0, 0, "", err
	}
	var tot float64
	for _, s := range res.RankSeconds() {
		tot += s
	}
	return res.Messages(), res.Bytes(), tot, verdict, nil
}

func run(w io.Writer) error {
	fmt.Fprintln(w, "§4.1 ablation — privatizable array CPs on the lhsy fragment (4 ranks):")
	fmt.Fprintf(w, "%-28s %9s %10s %14s %8s\n", "mode", "messages", "bytes", "Σ rank time(s)", "verify")
	for _, m := range []struct {
		name string
		mode cp.NewPropMode
	}{
		{"translate (the paper, §4.1)", cp.NewPropTranslate},
		{"replicate everything", cp.NewPropReplicate},
		{"owner-computes", cp.NewPropOwner},
	} {
		opt := dhpf.DefaultOptions()
		opt.CP.NewProp = m.mode
		msgs, bytes, t, verdict, err := measure(lhsySrc, opt)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-28s %9d %10d %14.6f %8s\n", m.name, msgs, bytes, t, verdict)
	}

	fmt.Fprintln(w, "\n§7 ablation — data availability on the wavefront fragment:")
	fmt.Fprintf(w, "%-28s %9s %10s\n", "mode", "events", "transfers")
	for _, on := range []bool{true, false} {
		opt := dhpf.DefaultOptions()
		if !on {
			// Ablate §7 by dropping the pass from the pipeline.
			opt = opt.WithDisabled(dhpf.PassAvailability)
		}
		prog, err := dhpf.Compile(sweepSrc, nil, opt)
		if err != nil {
			return err
		}
		rep, err := prog.Verify()
		if err != nil {
			return err
		}
		verdict := "clean"
		if !rep.Clean {
			verdict = "UNSAFE"
		}
		elim := strings.Count(prog.Report(), "ELIMINATED")
		fmt.Fprintf(w, "availability=%-15v eliminated events: %d  verify: %s\n", on, elim, verdict)
	}
	fmt.Fprintln(w, "\nThe translate mode computes exactly the boundary values each")
	fmt.Fprintln(w, "processor needs (zero messages); replication wastes compute;")
	fmt.Fprintln(w, "owner-computes forces boundary messages in the inner loop.")
	fmt.Fprintln(w, "Every mode verifies clean: the alternatives trade communication")
	fmt.Fprintln(w, "for computation, never safety (see dhpfc -lint).")
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
