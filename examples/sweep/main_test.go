package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRun smoke-tests the example: the sweep must verify against the
// serial reference, show the §7 elimination, and render the diagram.
func TestRun(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"ELIMINATED",
		"verification OK",
		"=== space-time diagram: forward then reverse pipeline ===",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}
