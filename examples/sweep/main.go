// Sweep: a bi-directional line sweep (forward elimination writing rows
// j+1/j+2, backward substitution reading them — the paper's Figure 5.1 /
// §7 pattern) compiled into a coarse-grain pipelined wavefront.  Prints
// the compiler report showing the §7 availability elimination and an
// ASCII space–time diagram showing the pipeline skew.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"dhpf"
)

const src = `
program sweep
param N = 48
param P = 6

!hpf$ processors procs(P)
!hpf$ template tm(N, N)
!hpf$ align v with tm(d0, d1)
!hpf$ align w with tm(d0, d1)
!hpf$ align f with tm(d0, d1)
!hpf$ distribute tm(*, BLOCK) onto procs

subroutine main()
  real v(0:N-1, 0:N-1)
  real w(0:N-1, 0:N-1)
  real f(0:N-1, 0:N-1)
  do j = 0, N-1
    do i = 0, N-1
      v(i,j) = 1.0 + 0.01*i + 0.02*j
      w(i,j) = 0.5*i - 0.1*j
      f(i,j) = 0.0
    enddo
  enddo

  ! forward elimination: iteration j computes the pivot factor and
  ! updates rows j+1 and j+2 (the paper's Figure 5.1 structure)
  do j = 1, N-4
    do i = 1, N-2
      f(i,j) = 0.08 / v(i,j)
      w(i,j+1) = w(i,j+1) - f(i,j)*w(i,j)
      w(i,j+2) = w(i,j+2) - 0.5*f(i,j)*w(i,j)
    enddo
  enddo

  ! backward substitution
  do j = N-4, 1, -1
    do i = 1, N-2
      w(i,j) = w(i,j) - 0.06*w(i,j+1) - 0.03*w(i,j+2)
    enddo
  enddo
end
`

func run(w io.Writer) error {
	prog, err := dhpf.Compile(src, nil, dhpf.DefaultOptions())
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "=== compiler report (note the ELIMINATED anti-pipeline read, §7) ===")
	fmt.Fprint(w, prog.Report())

	cfg := dhpf.SP2Machine(prog.Ranks())
	cfg.Trace = true
	res, err := prog.Run(cfg)
	if err != nil {
		return err
	}

	ref, err := dhpf.RunSerial(src, nil)
	if err != nil {
		return err
	}
	got, _, _, _ := res.Array("w")
	want, _, _, _ := ref.Array("w")
	for i := range want {
		d := got[i] - want[i]
		if d > 1e-12 || d < -1e-12 {
			return fmt.Errorf("verification failed at %d: %g vs %g", i, got[i], want[i])
		}
	}
	fmt.Fprintln(w, "\nverification OK")

	fmt.Fprintln(w, "\n=== space-time diagram: forward then reverse pipeline ===")
	fmt.Fprint(w, res.SpaceTime("wavefront sweep, 6 ranks", 100))
	fmt.Fprintf(w, "\nvirtual time %.6fs, %d messages\n", res.Seconds(), res.Messages())
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
