// Heat3d: a 3-D diffusion solver exercising the paper's §4 optimizations
// — a LOCALIZE'd conductivity field (partial replication of boundary
// computation) and a privatizable NEW line temporary — and showing, by
// compiling with and without LOCALIZE, how partial replication trades a
// single u-halo exchange for per-array boundary traffic.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"dhpf"
)

const src = `
program heat3d
param N = 32
param P1 = 2
param P2 = 2

!hpf$ processors procs(P1, P2)
!hpf$ template tm(N, N, N)
!hpf$ align t with tm(d0, d1, d2)
!hpf$ align cond with tm(d0, d1, d2)
!hpf$ align flux with tm(d0, d1, d2)
!hpf$ distribute tm(*, BLOCK, BLOCK) onto procs

subroutine main()
  real t(0:N-1, 0:N-1, 0:N-1)
  real cond(0:N-1, 0:N-1, 0:N-1)
  real flux(0:N-1, 0:N-1, 0:N-1)
  real line(0:N-1)

  do k = 0, N-1
    do j = 0, N-1
      do i = 0, N-1
        t(i,j,k) = 20.0 + 0.5*i + 0.25*j + 0.125*k
        cond(i,j,k) = 0.0
        flux(i,j,k) = 0.0
      enddo
    enddo
  enddo

  do step = 1, 3
    ! Conductivity depends on temperature; its boundary values are
    ! partially replicated (LOCALIZE) so the flux stencil below needs no
    ! cond communication at all.
    !hpf$ independent, localize(cond)
    do onetrip = 1, 1
      do k = 0, N-1
        do j = 0, N-1
          do i = 0, N-1
            cond(i,j,k) = 1.0 / (1.0 + 0.01*t(i,j,k))
          enddo
        enddo
      enddo
      do k = 1, N-2
        do j = 1, N-2
          do i = 1, N-2
            flux(i,j,k) = cond(i,j+1,k)*(t(i,j+1,k) - t(i,j,k)) + cond(i,j-1,k)*(t(i,j-1,k) - t(i,j,k)) + cond(i,j,k+1)*(t(i,j,k+1) - t(i,j,k)) + cond(i,j,k-1)*(t(i,j,k-1) - t(i,j,k)) + cond(i+1,j,k)*(t(i+1,j,k) - t(i,j,k)) + cond(i-1,j,k)*(t(i-1,j,k) - t(i,j,k))
          enddo
        enddo
      enddo
    enddo

    ! A privatizable line temporary (NEW), as in the paper's lhsy.
    do k = 1, N-2
      !hpf$ independent, new(line)
      do i = 1, N-2
        do j = 0, N-1
          line(j) = 0.5 * flux(i,j,k)
        enddo
        do j = 1, N-2
          t(i,j,k) = t(i,j,k) + 0.05*(line(j-1) + line(j+1))
        enddo
      enddo
    enddo
  enddo
end
`

func run(w io.Writer) error {
	variant := func(localize bool) error {
		opt := dhpf.DefaultOptions()
		if !localize {
			// Ablate by dropping the pass from the pipeline.
			opt = opt.WithDisabled(dhpf.PassLocalize)
		}
		prog, err := dhpf.Compile(src, nil, opt)
		if err != nil {
			return err
		}
		res, err := prog.Run(dhpf.SP2Machine(prog.Ranks()))
		if err != nil {
			return err
		}
		ref, err := dhpf.RunSerial(src, nil)
		if err != nil {
			return err
		}
		got, _, _, _ := res.Array("t")
		want, _, _, _ := ref.Array("t")
		worst := 0.0
		for i := range want {
			if d := got[i] - want[i]; d > worst {
				worst = d
			} else if -d > worst {
				worst = -d
			}
		}
		fmt.Fprintf(w, "LOCALIZE=%-5v  time %.6fs  messages %4d  bytes %8d  max err %g\n",
			localize, res.Seconds(), res.Messages(), res.Bytes(), worst)
		return nil
	}
	fmt.Fprintln(w, "heat3d on 4 simulated ranks (2x2 over y,z), 3 time steps:")
	if err := variant(true); err != nil {
		return err
	}
	if err := variant(false); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nWith LOCALIZE the conductivity boundaries are computed redundantly")
	fmt.Fprintln(w, "on both neighbours (one t-halo fetch); without it every cond")
	fmt.Fprintln(w, "boundary plane is communicated separately each step.")
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
