package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRun smoke-tests the example: both variants (LOCALIZE in and out of
// the pipeline) must run and verify against the serial reference.
func TestRun(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"LOCALIZE=true", "LOCALIZE=false"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}
