// Autotune: search the SP mini-benchmark's configuration space — grid
// shapes, pipeline granularities, and the 1-D transpose alternative —
// ranking for the paper's Class A problem size (64³) while simulating
// at a tractable source size, the tuner's two-level protocol.  The
// leaderboard should rediscover Table 8.1's ordering: the compiled 2-D
// BLOCK code beats the PGI-style transpose code at 16 processors.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"

	"dhpf"
	"dhpf/internal/nas"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	const procs, n, steps = 16, 18, 1
	src := nas.SPSource(n, steps, 1, procs)

	res, err := dhpf.Tune(context.Background(), src, dhpf.TuneOptions{
		Bench:   "sp",
		N:       n,
		Steps:   steps,
		TargetN: 64, // rank for Class A, simulate at 18³
		Procs:   procs,
		Grains:  []int{4, 8},
		TopK:    4,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "=== auto-tuning SP at %d ranks (simulate %d³, rank for 64³) ===\n", procs, n)
	for _, e := range res.Entries {
		line := fmt.Sprintf("  #%d %-16s %-10s", e.Rank, e.Key, e.Status)
		if e.ScreenSeconds > 0 {
			line += fmt.Sprintf("  predicted %.4gs", e.ScreenSeconds)
		}
		if e.SimSeconds > 0 {
			line += fmt.Sprintf("  simulated %.4gs", e.SimSeconds)
		}
		if e.Note != "" {
			line += "  (" + e.Note + ")"
		}
		fmt.Fprintln(w, line)
	}
	c := res.Counters
	fmt.Fprintf(w, "search: %d candidates screened in %dµs, %d simulated in %dms\n",
		c.Candidates, c.ScreenWallNS/1e3, c.FullEvals, c.FullWallNS/1e6)

	win := res.Winner
	fmt.Fprintf(w, "winner: %s (verified against serial reference: %v)\n", win.Key, win.Verified)
	if win.Scheme == "block" {
		fmt.Fprintln(w, "Table 8.1 ordering rediscovered: 2-D BLOCK beats 1-D transpose at 16 ranks")
	}
	return nil
}
