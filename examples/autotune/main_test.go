package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRun(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"auto-tuning SP at 16 ranks",
		"search:",
		"winner: block",
		"verified against serial reference: true",
		"Table 8.1 ordering rediscovered",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
