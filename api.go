package dhpf

import (
	"fmt"

	"dhpf/internal/analysis"
	"dhpf/internal/cp"
	"dhpf/internal/passes"
	"dhpf/internal/verify"
)

// This file defines the wire types of the dhpfd compile service's
// HTTP/JSON API (v1).  They are shared by internal/service (the server)
// and Client (the client), so the two cannot drift.

// RequestOptions is the JSON form of Options.  Absent fields take the
// paper's defaults (DefaultOptions); pointer fields distinguish "not
// set" from an explicit false.
type RequestOptions struct {
	// NewProp is the §4.1 privatizable-array mode: "translate"
	// (default), "owner", or "replicate".
	NewProp       string `json:"newprop,omitempty"`
	Localize      *bool  `json:"localize,omitempty"`       // §4.2 LOCALIZE
	LoopDist      *bool  `json:"loopdist,omitempty"`       // §5 loop distribution
	Interproc     *bool  `json:"interproc,omitempty"`      // §6 interprocedural CPs
	Availability  *bool  `json:"availability,omitempty"`   // §7 data availability
	WritebackElim *bool  `json:"writeback_elim,omitempty"` // redundant write-back elimination
	PipelineGrain int    `json:"pipeline_grain,omitempty"` // wavefront strip width (default 8)
	MaxCombos     int    `json:"max_combos,omitempty"`     // CP search cap
	// Disable drops optional passes by name (PassNames lists them) —
	// the pass-level ablation switch.
	Disable []string `json:"disable,omitempty"`
	// Instrument enables the per-pass communication-volume probe
	// reported in pass_stats (costs one comm analysis per pass).
	Instrument bool `json:"instrument,omitempty"`
	// Backend selects the execution substrate the program is compiled
	// for: "mp" (message-passing, the default), "shm" (shared-memory
	// threads with barrier phases), or "hybrid" (ranks across grid
	// dimension 0 × threads within a rank).  The backend is part of the
	// compile fingerprint: it changes the verifier's obligations (shm
	// adds the race-freedom theorem), not the numerics.
	Backend string `json:"backend,omitempty"`
}

// Resolve converts the request options to pipeline Options, applying
// defaults for absent fields.  A nil receiver means DefaultOptions.
func (r *RequestOptions) Resolve() (Options, error) {
	opt := DefaultOptions()
	if r == nil {
		return opt, nil
	}
	switch r.NewProp {
	case "", "translate":
		opt.CP.NewProp = cp.NewPropTranslate
	case "owner":
		opt.CP.NewProp = cp.NewPropOwner
	case "replicate":
		opt.CP.NewProp = cp.NewPropReplicate
	default:
		return opt, fmt.Errorf("unknown newprop mode %q (want translate, owner or replicate)", r.NewProp)
	}
	if r.Localize != nil {
		opt.CP.Localize = *r.Localize
	}
	if r.LoopDist != nil {
		opt.CP.LoopDist = *r.LoopDist
	}
	if r.Interproc != nil {
		opt.CP.Interproc = *r.Interproc
	}
	if r.Availability != nil {
		opt.Comm.Availability = *r.Availability
	}
	if r.WritebackElim != nil {
		opt.Comm.RedundantWriteback = *r.WritebackElim
	}
	if r.PipelineGrain != 0 {
		opt.PipelineGrain = r.PipelineGrain
	}
	if r.MaxCombos != 0 {
		opt.CP.MaxCombos = r.MaxCombos
	}
	opt.Disable = append([]string{}, r.Disable...)
	opt.Instrument = r.Instrument
	if r.Backend != "" {
		b, err := passes.ParseBackend(r.Backend)
		if err != nil {
			return opt, err
		}
		opt.Backend = b
	}
	return opt, nil
}

// RequestOptionsFrom converts pipeline Options to their wire form —
// the inverse of Resolve, up to defaults.  The auto-tuner uses it to
// emit a winner's configuration as a /v1/compile-ready fragment.
func RequestOptionsFrom(o Options) *RequestOptions {
	r := &RequestOptions{
		Localize:      boolPtr(o.CP.Localize),
		LoopDist:      boolPtr(o.CP.LoopDist),
		Interproc:     boolPtr(o.CP.Interproc),
		Availability:  boolPtr(o.Comm.Availability),
		WritebackElim: boolPtr(o.Comm.RedundantWriteback),
		PipelineGrain: o.PipelineGrain,
		MaxCombos:     o.CP.MaxCombos,
		Instrument:    o.Instrument,
	}
	switch o.CP.NewProp {
	case cp.NewPropOwner:
		r.NewProp = "owner"
	case cp.NewPropReplicate:
		r.NewProp = "replicate"
	default:
		r.NewProp = "translate"
	}
	if len(o.Disable) > 0 {
		r.Disable = append([]string{}, o.Disable...)
	}
	if b, err := passes.ParseBackend(o.Backend); err == nil && b != passes.BackendMP {
		r.Backend = b
	}
	return r
}

func boolPtr(b bool) *bool { return &b }

// CompileRequest asks the service to compile mini-HPF source.  The
// (source, params, options) triple is the cache key; identical requests
// are served from the content-addressed program cache.
type CompileRequest struct {
	Source string         `json:"source"`
	Params map[string]int `json:"params,omitempty"`
	// Options defaults to the paper's configuration when absent.
	Options *RequestOptions `json:"options,omitempty"`
	// Ranks selects which ranks' node programs /v1/compile returns
	// (out-of-range ranks are an error); nil means every rank.
	Ranks []int `json:"ranks,omitempty"`
}

// PassStatJSON is the JSON form of one pass's instrumentation record.
type PassStatJSON struct {
	Name    string   `json:"name"`
	WallNS  int64    `json:"wall_ns"`
	Summary string   `json:"summary,omitempty"`
	Notes   []string `json:"notes,omitempty"`
	// Msgs/Bytes are present when the program was compiled with
	// options.instrument; DeltaBytes once a preceding pass was also
	// measured.
	Measured   bool   `json:"measured,omitempty"`
	Msgs       int64  `json:"msgs,omitempty"`
	Bytes      int64  `json:"bytes,omitempty"`
	DeltaBytes *int64 `json:"delta_bytes,omitempty"`
	// Cached marks a pass whose per-procedure work was satisfied from
	// the artifact store (incremental compile), or — on a whole-program
	// cache hit — a pass that did not run at all for this request.
	Cached bool `json:"cached,omitempty"`
}

// PassStatsJSON converts pass records to their wire form.
func PassStatsJSON(stats []PassStat) []PassStatJSON {
	out := make([]PassStatJSON, len(stats))
	for i, st := range stats {
		out[i] = PassStatJSON{
			Name:     st.Name,
			WallNS:   st.Wall.Nanoseconds(),
			Summary:  st.Summary,
			Notes:    st.Notes,
			Measured: st.Measured,
			Msgs:     st.Msgs,
			Bytes:    st.Bytes,
			Cached:   st.Cached,
		}
		if st.HasDelta {
			d := st.DeltaBytes
			out[i].DeltaBytes = &d
		}
	}
	return out
}

// CachedPassStatsJSON is the wire form of a whole-program cache hit: the
// request did zero pass work, so every record reports zero wall time and
// Cached, keeping only the name and decision summary of the original
// compile.  (Previously a hit replayed the original compile's wall
// times, which inflated aggregate timing dashboards with work that
// never happened.)
func CachedPassStatsJSON(stats []PassStat) []PassStatJSON {
	out := make([]PassStatJSON, len(stats))
	for i, st := range stats {
		out[i] = PassStatJSON{Name: st.Name, Summary: st.Summary, Cached: true}
	}
	return out
}

// CompileResponse is /v1/compile's result: the compiler's report, the
// requested ranks' generated node programs, and the per-pass records.
type CompileResponse struct {
	Fingerprint string `json:"fingerprint"`
	Ranks       int    `json:"ranks"`
	Report      string `json:"report"`
	// NodePrograms maps rank → generated SPMD node program text.
	NodePrograms map[int]string `json:"node_programs,omitempty"`
	PassStats    []PassStatJSON `json:"pass_stats"`
	// Cached reports whether the compiled program came from the cache
	// (a stored entry or a coalesced in-flight compile).
	Cached bool `json:"cached"`
}

// BatchCompileRequest is /v1/compile/batch's body: several compile
// requests processed as one unit.  Batch members share the server's
// program cache and per-unit artifact store, so members that differ by
// one procedure (parameter sweeps, edit sequences) reuse each other's
// per-procedure analyses.
type BatchCompileRequest struct {
	Requests []CompileRequest `json:"requests"`
}

// BatchCompileResult is one batch member's outcome: the response, or the
// error that member failed with (other members still complete).
type BatchCompileResult struct {
	Response *CompileResponse `json:"response,omitempty"`
	Error    string           `json:"error,omitempty"`
}

// BatchCompileResponse is /v1/compile/batch's result, one entry per
// request, in request order.
type BatchCompileResponse struct {
	Results []BatchCompileResult `json:"results"`
}

// ExplainResponse is /v1/explain's result: the rendered per-pass table
// (what cmd/dhpfc -explain prints) plus the structured records.
type ExplainResponse struct {
	Fingerprint string         `json:"fingerprint"`
	Table       string         `json:"table"`
	PassStats   []PassStatJSON `json:"pass_stats"`
	Cached      bool           `json:"cached"`
}

// RunRequest compiles (through the cache) and executes the program on a
// named machine configuration.
type RunRequest struct {
	Source  string          `json:"source"`
	Params  map[string]int  `json:"params,omitempty"`
	Options *RequestOptions `json:"options,omitempty"`
	// Machine names the simulated machine: "sp2" (sized to the
	// program's rank count, the default) or "sp2:N" (N must match the
	// program's PROCESSORS arrangement).
	Machine string `json:"machine,omitempty"`
	// Arrays lists array names whose authoritative global contents the
	// response should include.
	Arrays []string `json:"arrays,omitempty"`
	// Engine selects the execution engine: "compiled" (the default),
	// "interp" (the reference tree-walking interpreter), or "codegen"
	// (native Go kernels where the binary's registry has one for the
	// program's units — the pre-generated corpus covers the NAS
	// benchmarks — and the closure engine elsewhere; the service never
	// builds plugins on behalf of a request).  All engines produce
	// byte-identical results; the field exists for differential checks
	// and perf comparison.  Engine choice does not affect the compile
	// fingerprint — it is an execution-time concern.
	Engine string `json:"engine,omitempty"`
}

// ArrayJSON is one gathered global array: flattened data plus inclusive
// per-dimension bounds.
type ArrayJSON struct {
	Data []float64 `json:"data"`
	Lo   []int     `json:"lo"`
	Hi   []int     `json:"hi"`
}

// RunResponse is /v1/run's result: the virtual-time performance
// counters and any requested arrays.
type RunResponse struct {
	Fingerprint string    `json:"fingerprint"`
	Ranks       int       `json:"ranks"`
	Seconds     float64   `json:"seconds"`
	Messages    int64     `json:"messages"`
	Bytes       int64     `json:"bytes"`
	RankSeconds []float64 `json:"rank_seconds"`
	// Backend echoes the substrate the program ran on ("mp" omitted).
	// Under the shared-memory backends Messages/Bytes count only the
	// outer (cross-group) traffic — zero for pure shm — and Pulls /
	// PulledBytes count the direct memory-to-memory copies that replace
	// messages.
	Backend     string               `json:"backend,omitempty"`
	Pulls       int64                `json:"pulls,omitempty"`
	PulledBytes int64                `json:"pulled_bytes,omitempty"`
	Arrays      map[string]ArrayJSON `json:"arrays,omitempty"`
	Cached      bool                 `json:"cached"`
}

// TuneOptions configures an auto-tuning search (Tune, /v1/tune,
// cmd/dhpftune): the configuration space and the search budget.  Every
// zero field takes a default; see internal/tune for the search
// mechanics.
type TuneOptions struct {
	// Params are base parameter overrides applied to every candidate.
	Params map[string]int `json:"params,omitempty"`
	// Bench names the benchmark family of the source ("sp" or "bt"),
	// unlocking the analytic screen and the 1-D transpose comparison
	// scheme; empty means a generic source ranked by simulation alone.
	Bench string `json:"bench,omitempty"`
	// N, Steps are the source problem size (bench mode).
	N     int `json:"n,omitempty"`
	Steps int `json:"steps,omitempty"`
	// TargetN, TargetSteps set the problem size the screen ranks for
	// (e.g. Class A's 64³); zero means the source size.
	TargetN     int `json:"target_n,omitempty"`
	TargetSteps int `json:"target_steps,omitempty"`
	// Procs is the virtual machine size (required).
	Procs int `json:"procs"`
	// GridParams names the source parameters that set the processor
	// grid shape (default {"P1","P2"}).
	GridParams [2]string `json:"grid_params,omitempty"`
	// Grids, Grains, Ablations, Sweep span the candidate space: grid
	// factorizations of Procs, pipeline strip widths, Options.Disable
	// subsets, and extra swept source parameters (e.g. a BLOCK(B)
	// block size).
	Grids     [][2]int         `json:"grids,omitempty"`
	Grains    []int            `json:"grains,omitempty"`
	Ablations [][]string       `json:"ablations,omitempty"`
	Sweep     map[string][]int `json:"sweep,omitempty"`
	// Backends lists the execution substrates the block scheme tries
	// ("mp", "shm", "hybrid"); empty means message-passing only.  The
	// tuner crosses every backend with every grid × grain × ablation
	// point and the leaderboard records each candidate's backend.
	Backends []string `json:"backends,omitempty"`
	// NoTranspose drops the 1-D transpose comparison candidate.
	NoTranspose bool `json:"no_transpose,omitempty"`
	// TopK bounds how many screen survivors get a full simulation
	// (default 3); MaxScreen caps the screened space via a
	// Seed-deterministic subsample (0 = screen everything); Workers
	// sizes the full tier's parallel waves (default 4); PruneFactor is
	// the early-abandon margin over the incumbent (default 4).
	TopK        int     `json:"top_k,omitempty"`
	MaxScreen   int     `json:"max_screen,omitempty"`
	Seed        int64   `json:"seed,omitempty"`
	Workers     int     `json:"workers,omitempty"`
	PruneFactor float64 `json:"prune_factor,omitempty"`
	// StaticScreen inserts the zero-simulation middle tier: analytic
	// survivors are compiled and costed by the static analysis oracle
	// (exact flop/message counters at the target size) and only the
	// statically cheapest ⌈TopK/2⌉ block candidates reach the full
	// simulator.
	StaticScreen bool `json:"static_screen,omitempty"`
	// SkipVerify disables the serial-reference numerics check;
	// VerifyArrays restricts it to named arrays.
	SkipVerify   bool     `json:"skip_verify,omitempty"`
	VerifyArrays []string `json:"verify_arrays,omitempty"`
}

// TuneRequest is /v1/tune's body: the source plus the search options.
type TuneRequest struct {
	Source string `json:"source"`
	TuneOptions
}

// TuneEntry is one row of the tuner's ranked leaderboard.
type TuneEntry struct {
	// Key is the candidate's canonical identity, e.g. "block 2x8 g8".
	Key    string `json:"key"`
	Scheme string `json:"scheme"`
	// Backend is the candidate's execution substrate ("mp", "shm",
	// "hybrid").
	Backend string `json:"backend,omitempty"`
	P1      int    `json:"p1,omitempty"`
	P2      int    `json:"p2,omitempty"`
	Grain   int    `json:"grain,omitempty"`
	// Disable and Extra echo the candidate's ablations and swept
	// parameter bindings.
	Disable []string       `json:"disable,omitempty"`
	Extra   map[string]int `json:"extra,omitempty"`
	Rank    int            `json:"rank"`
	// Status: "ok" (simulated and verified), "screened" (ranked by the
	// analytic tier only), "pruned", "mismatch", "error", "infeasible".
	Status string `json:"status"`
	// ScreenSeconds is the analytic prediction at the target size;
	// StaticSeconds the cost oracle's zero-simulation time (static
	// screen tier only); SimSeconds the measured virtual time at the
	// source size.
	ScreenSeconds float64 `json:"screen_seconds"`
	StaticSeconds float64 `json:"static_seconds,omitempty"`
	SimSeconds    float64 `json:"sim_seconds,omitempty"`
	SimMessages   int64   `json:"sim_messages,omitempty"`
	SimBytes      int64   `json:"sim_bytes,omitempty"`
	// ModelRatio is simulation/model at the source size — the
	// calibration factor behind the target-size ranking.
	ModelRatio     float64 `json:"model_ratio,omitempty"`
	MaxRelErr      float64 `json:"max_rel_err,omitempty"`
	Verified       bool    `json:"verified,omitempty"`
	ComparedArrays int     `json:"compared_arrays,omitempty"`
	Cached         bool    `json:"cached,omitempty"`
	Note           string  `json:"note,omitempty"`
	// Params and Options replay the candidate through Compile or
	// /v1/compile.
	Params  map[string]int  `json:"params,omitempty"`
	Options *RequestOptions `json:"options,omitempty"`
}

// TuneCounters summarize the search effort, including the memoization
// behaviour of repeated Tune calls.
type TuneCounters struct {
	Candidates   int   `json:"candidates"`
	Screened     int   `json:"screened"`
	Infeasible   int   `json:"infeasible"`
	FullEvals    int   `json:"full_evals"`
	Pruned       int   `json:"pruned"`
	MemoHits     int   `json:"memo_hits"`
	MemoMisses   int   `json:"memo_misses"`
	StaticEvals  int   `json:"static_evals,omitempty"`
	ScreenWallNS int64 `json:"screen_wall_ns"`
	StaticWallNS int64 `json:"static_wall_ns,omitempty"`
	FullWallNS   int64 `json:"full_wall_ns"`
}

// TuneResult is the tuner's report: the winner, the full ranked
// leaderboard, effort counters, and the human-readable decision trail
// (why each candidate was pruned or rejected — the -explain analogue).
type TuneResult struct {
	Winner   *TuneEntry   `json:"winner,omitempty"`
	Entries  []TuneEntry  `json:"entries"`
	Counters TuneCounters `json:"counters"`
	Trail    []string     `json:"trail"`
}

// DiagnosticJSON is the shared wire form of one compiler finding.  Every
// diagnostic surface — the translation validator (-lint, /v1/verify) and
// the static analyzer (-analyze, /v1/analyze) — emits this one schema:
// which check fired (code), how severe, where in the program (proc,
// stmt), and the human explanation (message), plus the optional
// reference and rendered integer-set witness.  Tooling that consumes
// one surface's diagnostics consumes them all.
type DiagnosticJSON struct {
	Code     string `json:"code"`
	Severity string `json:"severity"`
	Proc     string `json:"proc"`
	Stmt     int    `json:"stmt"` // statement ID; -1 when not statement-scoped
	Ref      string `json:"ref,omitempty"`
	Set      string `json:"set,omitempty"` // rendered integer-set witness
	Message  string `json:"message"`
}

// VerifyDiagnostic is the shared diagnostic schema under its historical
// name.
type VerifyDiagnostic = DiagnosticJSON

// DiagnosticsJSON converts internal diagnostics to the shared wire
// schema.
func DiagnosticsJSON(ds []verify.Diagnostic) []DiagnosticJSON {
	var out []DiagnosticJSON
	for _, d := range ds {
		out = append(out, DiagnosticJSON{
			Code: d.Check, Severity: string(d.Severity), Proc: d.Proc,
			Stmt: d.Stmt, Ref: d.Ref, Set: d.Set, Message: d.Why,
		})
	}
	return out
}

// VerifyReport is the wire form of one verification run's outcome,
// shared by Program.Verify and /v1/verify.  Clean means no
// error-severity diagnostic; Text is the human rendering (what
// cmd/dhpfc -lint prints).
type VerifyReport struct {
	Clean       bool               `json:"clean"`
	Summary     string             `json:"summary"`
	Errors      int                `json:"errors"`
	Warnings    int                `json:"warnings"`
	Infos       int                `json:"infos"`
	Stmts       int                `json:"stmts"`
	Events      int                `json:"events"`
	Ranks       int                `json:"ranks"`
	Diagnostics []VerifyDiagnostic `json:"diagnostics,omitempty"`
	Text        string             `json:"text"`
}

// VerifyReportJSON converts a verifier report to its wire form.
func VerifyReportJSON(rep *verify.Report) VerifyReport {
	e, w, i := rep.Counts()
	out := VerifyReport{
		Clean: rep.Clean(), Summary: rep.Summary(),
		Errors: e, Warnings: w, Infos: i,
		Stmts: rep.Stmts, Events: rep.Events, Ranks: rep.Ranks,
		Text: rep.String(),
	}
	out.Diagnostics = DiagnosticsJSON(rep.Diagnostics)
	return out
}

// VerifyRequest asks the service to compile (through the program cache)
// and verify mini-HPF source.  The verifier always re-proves the safety
// theorems even when the compile itself was cached.
type VerifyRequest struct {
	Source  string          `json:"source"`
	Params  map[string]int  `json:"params,omitempty"`
	Options *RequestOptions `json:"options,omitempty"`
}

// VerifyResponse is /v1/verify's result.
type VerifyResponse struct {
	Fingerprint string `json:"fingerprint"`
	VerifyReport
	Cached bool `json:"cached"`
}

// AnalyzeCost is the static cost oracle's counter vector: per-rank
// flops, messages and bytes (message backend) or pulls, pulled bytes
// and barriers (shared-memory backends), integer-equal to what the
// virtual machines would measure when Exact is true.
type AnalyzeCost = analysis.Cost

// AnalyzeReport is the wire form of one static-analysis run's outcome,
// shared by Program.Analyze and /v1/analyze: the symbolic loop
// summaries (rendered in Text), the dataflow diagnostics in the shared
// schema, and the predicted execution cost.  Clean means no
// error-severity diagnostic (reads of never-defined distributed data);
// warnings flag dead stores, dead communication and redundant
// write-backs.
type AnalyzeReport struct {
	Clean    bool   `json:"clean"`
	Summary  string `json:"summary"`
	Errors   int    `json:"errors"`
	Warnings int    `json:"warnings"`
	Procs    int    `json:"procs"`
	Phases   int    `json:"phases"`
	// Diagnostics use the same schema as VerifyReport's.
	Diagnostics []DiagnosticJSON `json:"diagnostics,omitempty"`
	// Cost is the static cost oracle's prediction for the program's
	// backend.
	Cost *AnalyzeCost `json:"cost,omitempty"`
	// Text is the human rendering (what cmd/dhpfc -analyze prints).
	Text string `json:"text"`
}

// AnalyzeReportJSON converts an analysis result (plus the cost oracle's
// prediction, which may be nil) to its wire form.
func AnalyzeReportJSON(res *analysis.Result, cost *analysis.Cost) AnalyzeReport {
	phases := 0
	for _, p := range res.Procs {
		phases += len(p.Phases)
	}
	return AnalyzeReport{
		Clean: res.Clean(), Summary: res.Summary(),
		Errors: res.Errors(), Warnings: res.Warnings(),
		Procs: len(res.Procs), Phases: phases,
		Diagnostics: DiagnosticsJSON(res.Diagnostics),
		Cost:        cost,
		Text:        res.Text(),
	}
}

// AnalyzeRequest asks the service to compile (through the program
// cache) and statically analyze mini-HPF source: symbolic loop
// summaries, distributed-array dataflow diagnostics, and the cost
// oracle's predicted execution counters.
type AnalyzeRequest struct {
	Source  string          `json:"source"`
	Params  map[string]int  `json:"params,omitempty"`
	Options *RequestOptions `json:"options,omitempty"`
}

// AnalyzeResponse is /v1/analyze's result.
type AnalyzeResponse struct {
	Fingerprint string `json:"fingerprint"`
	AnalyzeReport
	Cached bool `json:"cached"`
}

// ProgramEntryJSON is one program-cache entry in transferable form:
// every rendered artifact of a compilation, but not the live program.
// It is what /v1/peer/fetch ships between fleet members and what the
// durable store persists (as chunks) across restarts.
type ProgramEntryJSON struct {
	Ranks  int    `json:"ranks"`
	Report string `json:"report"`
	// NodePrograms carries every rank (unlike CompileResponse, which
	// carries only the requested ones) — the receiver must be able to
	// serve any rank without a live program.
	NodePrograms map[int]string `json:"node_programs"`
	// PassStats are the cache-hit form of the records (zero wall time,
	// cached): an entry served from a peer or from disk did no pass work.
	PassStats []PassStatJSON `json:"pass_stats"`
	// Verify is the memoized translation-validation report, when one was
	// computed before the entry was persisted or shipped.
	Verify *VerifyReport `json:"verify,omitempty"`
	// Analyze is the memoized static-analysis report, when one was
	// computed before the entry was persisted or shipped.
	Analyze *AnalyzeReport `json:"analyze,omitempty"`
}

// PeerFetchRequest asks a fleet member for its stored copy of a
// fingerprint.  The receiver consults only its memory cache and local
// store — it never compiles and never forwards the request — so a fetch
// is one bounded hop.
type PeerFetchRequest struct {
	Fingerprint string `json:"fingerprint"`
}

// PeerFetchResponse is /v1/peer/fetch's result.  Found=false is a
// normal miss, not an error.
type PeerFetchResponse struct {
	Found bool              `json:"found"`
	Entry *ProgramEntryJSON `json:"entry,omitempty"`
}

// CacheStats is the program cache's counter snapshot.
type CacheStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// InflightCoalesced counts requests that joined an identical
	// in-flight compile instead of starting their own (singleflight).
	InflightCoalesced int64 `json:"inflight_coalesced"`
	// BackingHits counts misses served from the durable tier (local
	// store or a peer) instead of a fresh compile.
	BackingHits int64 `json:"backing_hits,omitempty"`
	Evictions   int64 `json:"evictions"`
	Entries     int   `json:"entries"`
	SizeBytes   int64 `json:"size_bytes"`
	MaxBytes    int64 `json:"max_bytes"`
}

// ServerStats is the service's request-level counter snapshot.
type ServerStats struct {
	Requests int64 `json:"requests"`
	Active   int64 `json:"active"`
	Compiles int64 `json:"compiles"`
	Errors   int64 `json:"errors"`
	// Rejected counts 429s from queue backpressure; Timeouts counts
	// compiles aborted by the per-request deadline.
	Rejected   int64 `json:"rejected"`
	Timeouts   int64 `json:"timeouts"`
	Workers    int   `json:"workers"`
	QueueDepth int   `json:"queue_depth"`
	UptimeMS   int64 `json:"uptime_ms"`
}

// ArtifactCacheStats is the per-unit artifact store's counter snapshot:
// hits and misses count artifact lookups by environment fingerprint
// across incremental compiles; dirty counts artifacts recomputed because
// a procedure (or its callees, options or directives) changed.
type ArtifactCacheStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// BackingHits counts artifact misses thawed from the durable chunk
	// store instead of recomputed.
	BackingHits int64 `json:"backing_hits,omitempty"`
	Dirty       int64 `json:"dirty"`
	Evictions   int64 `json:"evictions"`
	Entries     int   `json:"entries"`
	SizeBytes   int64 `json:"size_bytes"`
	MaxBytes    int64 `json:"max_bytes"`
}

// StoreStats is the durable chunk store's counter snapshot plus the
// service's program-persistence counters over it, present in /v1/stats
// when the server was started with a store.
type StoreStats struct {
	Chunks       int   `json:"chunks"`
	Manifests    int   `json:"manifests"`
	LiveBytes    int64 `json:"live_bytes"`
	DeadBytes    int64 `json:"dead_bytes"`
	JournalBytes int64 `json:"journal_bytes"`
	MaxBytes     int64 `json:"max_bytes"`

	Hits           int64 `json:"hits"`
	Misses         int64 `json:"misses"`
	ChunkPuts      int64 `json:"chunk_puts"`
	DedupHits      int64 `json:"dedup_hits"`
	ManifestPuts   int64 `json:"manifest_puts"`
	Evictions      int64 `json:"evictions"`
	Compactions    int64 `json:"compactions"`
	TruncatedBytes int64 `json:"truncated_bytes,omitempty"`

	// ProgramHits/Misses/Writes count whole-program cache entries thawed
	// from, missed in, and persisted to this store.
	ProgramHits   int64 `json:"program_hits"`
	ProgramMisses int64 `json:"program_misses"`
	ProgramWrites int64 `json:"program_writes"`

	// TuneHits/Misses/Writes count tune leaderboards recalled from,
	// missed in, and persisted to this store (keyed by tune-request
	// fingerprint), so a restarted server answers repeat /v1/tune
	// requests from disk.
	TuneHits   int64 `json:"tune_hits,omitempty"`
	TuneMisses int64 `json:"tune_misses,omitempty"`
	TuneWrites int64 `json:"tune_writes,omitempty"`
}

// PeerStats is the fleet tier's counter snapshot, present in /v1/stats
// when the server was started with peers.  Hits/Misses/Errors count
// this replica's outbound fetches; Served counts entries this replica
// handed to other members.
type PeerStats struct {
	Self   int   `json:"self"`
	Peers  int   `json:"peers"`
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Errors int64 `json:"errors"`
	Served int64 `json:"served"`
}

// StatsResponse is /v1/stats.
type StatsResponse struct {
	Cache CacheStats `json:"cache"`
	// Artifacts is the per-unit artifact tier feeding warm recompiles,
	// reported next to the whole-program cache above it.
	Artifacts ArtifactCacheStats `json:"artifacts"`
	Server    ServerStats        `json:"server"`
	// Store and Peer are present when the durable store and the fleet
	// are configured, respectively.
	Store *StoreStats `json:"store,omitempty"`
	Peer  *PeerStats  `json:"peer,omitempty"`
}

// APIError is a non-2xx service response.
type APIError struct {
	StatusCode int    `json:"-"`
	Message    string `json:"error"`
}

func (e *APIError) Error() string {
	return fmt.Sprintf("dhpfd: HTTP %d: %s", e.StatusCode, e.Message)
}
