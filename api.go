package dhpf

import (
	"fmt"

	"dhpf/internal/cp"
)

// This file defines the wire types of the dhpfd compile service's
// HTTP/JSON API (v1).  They are shared by internal/service (the server)
// and Client (the client), so the two cannot drift.

// RequestOptions is the JSON form of Options.  Absent fields take the
// paper's defaults (DefaultOptions); pointer fields distinguish "not
// set" from an explicit false.
type RequestOptions struct {
	// NewProp is the §4.1 privatizable-array mode: "translate"
	// (default), "owner", or "replicate".
	NewProp       string `json:"newprop,omitempty"`
	Localize      *bool  `json:"localize,omitempty"`       // §4.2 LOCALIZE
	LoopDist      *bool  `json:"loopdist,omitempty"`       // §5 loop distribution
	Interproc     *bool  `json:"interproc,omitempty"`      // §6 interprocedural CPs
	Availability  *bool  `json:"availability,omitempty"`   // §7 data availability
	WritebackElim *bool  `json:"writeback_elim,omitempty"` // redundant write-back elimination
	PipelineGrain int    `json:"pipeline_grain,omitempty"` // wavefront strip width (default 8)
	MaxCombos     int    `json:"max_combos,omitempty"`     // CP search cap
	// Disable drops optional passes by name (PassNames lists them) —
	// the pass-level ablation switch.
	Disable []string `json:"disable,omitempty"`
	// Instrument enables the per-pass communication-volume probe
	// reported in pass_stats (costs one comm analysis per pass).
	Instrument bool `json:"instrument,omitempty"`
}

// Resolve converts the request options to pipeline Options, applying
// defaults for absent fields.  A nil receiver means DefaultOptions.
func (r *RequestOptions) Resolve() (Options, error) {
	opt := DefaultOptions()
	if r == nil {
		return opt, nil
	}
	switch r.NewProp {
	case "", "translate":
		opt.CP.NewProp = cp.NewPropTranslate
	case "owner":
		opt.CP.NewProp = cp.NewPropOwner
	case "replicate":
		opt.CP.NewProp = cp.NewPropReplicate
	default:
		return opt, fmt.Errorf("unknown newprop mode %q (want translate, owner or replicate)", r.NewProp)
	}
	if r.Localize != nil {
		opt.CP.Localize = *r.Localize
	}
	if r.LoopDist != nil {
		opt.CP.LoopDist = *r.LoopDist
	}
	if r.Interproc != nil {
		opt.CP.Interproc = *r.Interproc
	}
	if r.Availability != nil {
		opt.Comm.Availability = *r.Availability
	}
	if r.WritebackElim != nil {
		opt.Comm.RedundantWriteback = *r.WritebackElim
	}
	if r.PipelineGrain != 0 {
		opt.PipelineGrain = r.PipelineGrain
	}
	if r.MaxCombos != 0 {
		opt.CP.MaxCombos = r.MaxCombos
	}
	opt.Disable = append([]string{}, r.Disable...)
	opt.Instrument = r.Instrument
	return opt, nil
}

// CompileRequest asks the service to compile mini-HPF source.  The
// (source, params, options) triple is the cache key; identical requests
// are served from the content-addressed program cache.
type CompileRequest struct {
	Source string         `json:"source"`
	Params map[string]int `json:"params,omitempty"`
	// Options defaults to the paper's configuration when absent.
	Options *RequestOptions `json:"options,omitempty"`
	// Ranks selects which ranks' node programs /v1/compile returns
	// (out-of-range ranks are an error); nil means every rank.
	Ranks []int `json:"ranks,omitempty"`
}

// PassStatJSON is the JSON form of one pass's instrumentation record.
type PassStatJSON struct {
	Name    string   `json:"name"`
	WallNS  int64    `json:"wall_ns"`
	Summary string   `json:"summary,omitempty"`
	Notes   []string `json:"notes,omitempty"`
	// Msgs/Bytes are present when the program was compiled with
	// options.instrument; DeltaBytes once a preceding pass was also
	// measured.
	Measured   bool   `json:"measured,omitempty"`
	Msgs       int64  `json:"msgs,omitempty"`
	Bytes      int64  `json:"bytes,omitempty"`
	DeltaBytes *int64 `json:"delta_bytes,omitempty"`
}

// PassStatsJSON converts pass records to their wire form.
func PassStatsJSON(stats []PassStat) []PassStatJSON {
	out := make([]PassStatJSON, len(stats))
	for i, st := range stats {
		out[i] = PassStatJSON{
			Name:     st.Name,
			WallNS:   st.Wall.Nanoseconds(),
			Summary:  st.Summary,
			Notes:    st.Notes,
			Measured: st.Measured,
			Msgs:     st.Msgs,
			Bytes:    st.Bytes,
		}
		if st.HasDelta {
			d := st.DeltaBytes
			out[i].DeltaBytes = &d
		}
	}
	return out
}

// CompileResponse is /v1/compile's result: the compiler's report, the
// requested ranks' generated node programs, and the per-pass records.
type CompileResponse struct {
	Fingerprint string `json:"fingerprint"`
	Ranks       int    `json:"ranks"`
	Report      string `json:"report"`
	// NodePrograms maps rank → generated SPMD node program text.
	NodePrograms map[int]string `json:"node_programs,omitempty"`
	PassStats    []PassStatJSON `json:"pass_stats"`
	// Cached reports whether the compiled program came from the cache
	// (a stored entry or a coalesced in-flight compile).
	Cached bool `json:"cached"`
}

// ExplainResponse is /v1/explain's result: the rendered per-pass table
// (what cmd/dhpfc -explain prints) plus the structured records.
type ExplainResponse struct {
	Fingerprint string         `json:"fingerprint"`
	Table       string         `json:"table"`
	PassStats   []PassStatJSON `json:"pass_stats"`
	Cached      bool           `json:"cached"`
}

// RunRequest compiles (through the cache) and executes the program on a
// named machine configuration.
type RunRequest struct {
	Source  string          `json:"source"`
	Params  map[string]int  `json:"params,omitempty"`
	Options *RequestOptions `json:"options,omitempty"`
	// Machine names the simulated machine: "sp2" (sized to the
	// program's rank count, the default) or "sp2:N" (N must match the
	// program's PROCESSORS arrangement).
	Machine string `json:"machine,omitempty"`
	// Arrays lists array names whose authoritative global contents the
	// response should include.
	Arrays []string `json:"arrays,omitempty"`
}

// ArrayJSON is one gathered global array: flattened data plus inclusive
// per-dimension bounds.
type ArrayJSON struct {
	Data []float64 `json:"data"`
	Lo   []int     `json:"lo"`
	Hi   []int     `json:"hi"`
}

// RunResponse is /v1/run's result: the virtual-time performance
// counters and any requested arrays.
type RunResponse struct {
	Fingerprint string               `json:"fingerprint"`
	Ranks       int                  `json:"ranks"`
	Seconds     float64              `json:"seconds"`
	Messages    int64                `json:"messages"`
	Bytes       int64                `json:"bytes"`
	RankSeconds []float64            `json:"rank_seconds"`
	Arrays      map[string]ArrayJSON `json:"arrays,omitempty"`
	Cached      bool                 `json:"cached"`
}

// CacheStats is the program cache's counter snapshot.
type CacheStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// InflightCoalesced counts requests that joined an identical
	// in-flight compile instead of starting their own (singleflight).
	InflightCoalesced int64 `json:"inflight_coalesced"`
	Evictions         int64 `json:"evictions"`
	Entries           int   `json:"entries"`
	SizeBytes         int64 `json:"size_bytes"`
	MaxBytes          int64 `json:"max_bytes"`
}

// ServerStats is the service's request-level counter snapshot.
type ServerStats struct {
	Requests int64 `json:"requests"`
	Active   int64 `json:"active"`
	Compiles int64 `json:"compiles"`
	Errors   int64 `json:"errors"`
	// Rejected counts 429s from queue backpressure; Timeouts counts
	// compiles aborted by the per-request deadline.
	Rejected   int64 `json:"rejected"`
	Timeouts   int64 `json:"timeouts"`
	Workers    int   `json:"workers"`
	QueueDepth int   `json:"queue_depth"`
	UptimeMS   int64 `json:"uptime_ms"`
}

// StatsResponse is /v1/stats.
type StatsResponse struct {
	Cache  CacheStats  `json:"cache"`
	Server ServerStats `json:"server"`
}

// APIError is a non-2xx service response.
type APIError struct {
	StatusCode int    `json:"-"`
	Message    string `json:"error"`
}

func (e *APIError) Error() string {
	return fmt.Sprintf("dhpfd: HTTP %d: %s", e.StatusCode, e.Message)
}
