package dhpf

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
)

// TestCompileParallel hammers the public API from many goroutines: the
// compile service shares *Program values across requests, so Compile,
// Run, Report and NodeProgram must all be safe to call concurrently.
// Run under -race this is the library-level half of the dhpfd
// concurrency guarantee.
func TestCompileParallel(t *testing.T) {
	// Serial baseline to compare every concurrent result against.
	base, err := Compile(quickSrc, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	baseRes, err := base.Run(SP2Machine(base.Ranks()))
	if err != nil {
		t.Fatal(err)
	}
	baseB, _, _, err := baseRes.Array("b")
	if err != nil {
		t.Fatal(err)
	}
	baseReport := base.Report()
	baseNode0 := base.NodeProgram(0)
	baseFP := Fingerprint(quickSrc, nil, DefaultOptions())

	const goroutines = 16
	var wg sync.WaitGroup
	errc := make(chan error, 2*goroutines)

	// Half the goroutines compile-and-run fresh programs.
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var prog *Program
			var err error
			if g%2 == 0 {
				prog, err = Compile(quickSrc, nil, DefaultOptions())
			} else {
				prog, err = CompileCtx(context.Background(), quickSrc, nil, DefaultOptions())
			}
			if err != nil {
				errc <- fmt.Errorf("goroutine %d: compile: %w", g, err)
				return
			}
			if fp := Fingerprint(quickSrc, nil, DefaultOptions()); fp != baseFP {
				errc <- fmt.Errorf("goroutine %d: fingerprint drifted", g)
				return
			}
			res, err := prog.Run(SP2Machine(prog.Ranks()))
			if err != nil {
				errc <- fmt.Errorf("goroutine %d: run: %w", g, err)
				return
			}
			b, _, _, err := res.Array("b")
			if err != nil {
				errc <- fmt.Errorf("goroutine %d: array: %w", g, err)
				return
			}
			for i := range baseB {
				if math.Abs(b[i]-baseB[i]) > 1e-12 {
					errc <- fmt.Errorf("goroutine %d: b[%d] = %g, want %g", g, i, b[i], baseB[i])
					return
				}
			}
		}(g)
	}

	// The other half share ONE program — the cache's access pattern —
	// mixing Run, Report and NodeProgram on it concurrently.
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			switch g % 3 {
			case 0:
				res, err := base.Run(SP2Machine(base.Ranks()))
				if err != nil {
					errc <- fmt.Errorf("shared goroutine %d: run: %w", g, err)
					return
				}
				if res.Seconds() != baseRes.Seconds() {
					errc <- fmt.Errorf("shared goroutine %d: time %g, want %g", g, res.Seconds(), baseRes.Seconds())
				}
			case 1:
				if rep := base.Report(); rep != baseReport {
					errc <- fmt.Errorf("shared goroutine %d: report drifted", g)
				}
			case 2:
				if np := base.NodeProgram(0); np != baseNode0 {
					errc <- fmt.Errorf("shared goroutine %d: node program drifted", g)
				}
			}
		}(g)
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
