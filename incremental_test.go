package dhpf_test

import (
	"strings"
	"testing"

	"dhpf"
	"dhpf/internal/nas"
)

// editSPMod makes the canonical warm edit to the modular SP source: a
// one-constant change inside the add procedure (the CoefAdd term).
func editSPMod(t testing.TB, src string) string {
	t.Helper()
	edited := strings.Replace(src, " + 0.1*(rhs(1", " + 0.105*(rhs(1", 1)
	if edited == src {
		t.Fatal("warm-edit marker not found in SPModSource output")
	}
	return edited
}

// TestIncrementalSPModByteIdentical: the full modular NAS SP program
// through the public incremental API.  A warm recompile after a
// one-procedure edit must reuse every unchanged procedure's artifacts
// and still produce byte-identical Report, node programs and
// verification output to a cold compile of the edited source.
func TestIncrementalSPModByteIdentical(t *testing.T) {
	base := nas.SPModSource(12, 1, 2, 2)
	inc := dhpf.NewIncremental(0)
	opt := dhpf.DefaultOptions()

	if _, _, err := inc.Compile(base, nil, opt); err != nil {
		t.Fatalf("priming compile: %v", err)
	}

	edited := editSPMod(t, base)
	warm, delta, err := inc.Compile(edited, nil, opt)
	if err != nil {
		t.Fatalf("warm compile: %v", err)
	}
	cold, err := dhpf.Compile(edited, nil, opt)
	if err != nil {
		t.Fatalf("cold compile: %v", err)
	}

	if warm.Report() != cold.Report() {
		t.Error("warm report differs from cold report")
	}
	for rk := 0; rk < cold.Ranks(); rk++ {
		if warm.NodeProgram(rk) != cold.NodeProgram(rk) {
			t.Errorf("rank %d node program differs warm vs cold", rk)
		}
	}
	wv, err1 := warm.Verify()
	cv, err2 := cold.Verify()
	if err1 != nil || err2 != nil {
		t.Fatalf("verify: warm %v cold %v", err1, err2)
	}
	if wv.Text != cv.Text {
		t.Error("warm verification report differs from cold")
	}

	// Only add (edited) and main (its caller) may be dirty.
	if delta.Dirty != 2 {
		t.Errorf("dirty procs = %v, want exactly [add main]", delta.DirtyProcs)
	}
	if delta.ArtifactHits == 0 {
		t.Error("warm edit thawed no artifacts")
	}
	stats := inc.ArtifactStats()
	if stats.Hits == 0 || stats.Entries == 0 {
		t.Errorf("artifact store counters empty after warm edit: %+v", stats)
	}
}

// TestIncrementalSPModCachedStats: an identical recompile is fully
// cached — zero dirty procedures, no misses, and the per-pass records
// label the memoized passes cached.
func TestIncrementalSPModCachedStats(t *testing.T) {
	src := nas.SPModSource(12, 1, 2, 2)
	inc := dhpf.NewIncremental(0)
	if _, _, err := inc.Compile(src, nil, dhpf.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	prog, delta, err := inc.Compile(src, nil, dhpf.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if delta.Dirty != 0 || delta.ArtifactMisses != 0 {
		t.Fatalf("identical recompile not fully cached: %v", delta)
	}
	var cached int
	for _, st := range prog.PassStats() {
		if st.Cached {
			cached++
		}
	}
	if cached == 0 {
		t.Error("no pass marked cached on a fully-memoized recompile")
	}
	if !strings.Contains(dhpf.StatsTable(prog.PassStats()), "cached") {
		t.Error("stats table does not label cached passes")
	}
}

// TestIncrementalSPModAblations: the byte-identical invariant holds for
// the modular SP program under every single-pass ablation.
func TestIncrementalSPModAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("full ablation matrix in long mode only")
	}
	base := nas.SPModSource(10, 1, 2, 2)
	for _, name := range append([]string{""}, dhpf.OptionalPassNames()...) {
		label := "default"
		opt := dhpf.DefaultOptions()
		if name != "" {
			label = "no-" + name
			opt = opt.WithDisabled(name)
		}
		t.Run(label, func(t *testing.T) {
			inc := dhpf.NewIncremental(0)
			if _, _, err := inc.Compile(base, nil, opt); err != nil {
				t.Fatalf("prime: %v", err)
			}
			edited := editSPMod(t, base)
			warm, _, err := inc.Compile(edited, nil, opt)
			if err != nil {
				t.Fatalf("warm: %v", err)
			}
			cold, err := dhpf.Compile(edited, nil, opt)
			if err != nil {
				t.Fatalf("cold: %v", err)
			}
			if warm.Report() != cold.Report() {
				t.Error("warm report differs from cold under ablation")
			}
			if warm.NodeProgram(0) != cold.NodeProgram(0) {
				t.Error("warm node program differs from cold under ablation")
			}
		})
	}
}
