// Package dhpf is a Go reproduction of the Rice dHPF compiler described
// in "High Performance Fortran Compilation Techniques for Parallelizing
// Scientific Codes" (Adve, Jin, Mellor-Crummey, Yi — SC'98).
//
// It compiles a mini-HPF language (Fortran-style loops and affine array
// references plus the HPF directives PROCESSORS, TEMPLATE, ALIGN,
// DISTRIBUTE, INDEPENDENT, NEW, and dHPF's LOCALIZE extension) into SPMD
// message-passing programs, applying the paper's optimizations:
//
//   - computation-partition selection over the general ON_HOME model,
//   - CP propagation for privatizable (NEW) arrays with partial
//     replication of boundary computation (§4.1),
//   - LOCALIZE partial replication for distributed arrays (§4.2),
//   - communication-sensitive selective loop distribution (§5),
//   - interprocedural CP selection (§6),
//   - data-availability analysis eliminating redundant communication
//     (§7),
//
// and runs the result on a deterministic virtual-time message-passing
// machine, so compiled programs produce both verified numerics and
// realistic parallel-performance behaviour (pipelines, halos, load
// imbalance).
//
// A minimal end-to-end use:
//
//	prog, err := dhpf.Compile(src, nil, dhpf.DefaultOptions())
//	res, err := prog.Run(dhpf.SP2Machine(prog.Ranks()))
//	data, lo, hi, err := res.Array("a")
package dhpf

import (
	"context"

	"dhpf/internal/cache"
	"dhpf/internal/mpsim"
	"dhpf/internal/parser"
	"dhpf/internal/passes"
	"dhpf/internal/spmd"
	"dhpf/internal/store"
	"dhpf/internal/trace"
)

// Options configures the compilation pipeline.  The zero value disables
// every optimization; use DefaultOptions for the paper's configuration.
// Options.Disable drops optional passes by name (see the Pass* name
// constants) and Options.Instrument enables the per-pass communication
// probe reported by Program.PassStats.
type Options = spmd.Options

// DefaultOptions enables all the paper's optimizations with a pipeline
// grain of 8.
func DefaultOptions() Options { return spmd.DefaultOptions() }

// PassStat is one pass's instrumentation record: wall time, decision
// summary and notes, and (with Options.Instrument) the communication
// volume as of the end of the pass.
type PassStat = passes.Stat

// Canonical pass names, in pipeline order.  The optional ones
// (PassNewProp through PassLoopDist, PassAvailability, PassWritebackRed,
// PassVerify, PassAnalyze) may be listed in Options.Disable to ablate
// that stage.
const (
	PassParse        = passes.PassParse
	PassBind         = passes.PassBind
	PassDependence   = passes.PassDependence
	PassCPSelect     = passes.PassCPSelect
	PassNewProp      = passes.PassNewProp
	PassLocalize     = passes.PassLocalize
	PassInterproc    = passes.PassInterproc
	PassLoopDist     = passes.PassLoopDist
	PassReductions   = passes.PassReductions
	PassCommPlan     = passes.PassCommPlan
	PassAvailability = passes.PassAvailability
	PassWritebackRed = passes.PassWritebackRed
	PassLower        = passes.PassLower
	PassVerify       = passes.PassVerify
	PassAnalyze      = passes.PassAnalyze
)

// Execution backends Options.Backend accepts: message-passing ranks
// (the default), shared-memory threads with barrier phases in place of
// messages, and the hybrid layout (ranks across grid dimension 0 ×
// threads within a rank).  All three produce bit-identical numerics;
// they differ in the cost model and in the verifier's obligations (the
// shared-memory backends add the race-freedom theorem).
const (
	BackendMP     = passes.BackendMP
	BackendShm    = passes.BackendShm
	BackendHybrid = passes.BackendHybrid
)

// PassNames lists every pass of the full pipeline, in order.
func PassNames() []string { return passes.PassNames() }

// OptionalPassNames lists the passes Options.Disable accepts, in
// pipeline order.
func OptionalPassNames() []string { return passes.OptionalPassNames() }

// StatsTable renders pass records as the table cmd/dhpfc -explain
// prints.
func StatsTable(stats []PassStat) string { return passes.StatsTable(stats) }

// MachineConfig fixes the simulated machine's size and cost model.
type MachineConfig = mpsim.Config

// SP2Machine returns a cost model approximating the paper's IBM SP2
// (120 MHz P2SC nodes, user-space MPI) for the given number of ranks.
func SP2Machine(procs int) MachineConfig { return mpsim.SP2Config(procs) }

// Program is a compiled SPMD program.
type Program struct {
	inner *spmd.Program
}

// Compile parses and compiles mini-HPF source.  params overrides the
// program's `param` defaults (e.g. problem size or processor counts).
func Compile(source string, params map[string]int, opt Options) (*Program, error) {
	return CompileCtx(context.Background(), source, params, opt)
}

// CompileCtx is Compile with cancellation: the pipeline checks ctx at
// every pass boundary, so a cancelled or timed-out context aborts the
// compilation between passes.  This is the entry point the compile
// service uses to enforce per-request timeouts.
func CompileCtx(ctx context.Context, source string, params map[string]int, opt Options) (*Program, error) {
	p, err := spmd.CompileSourceCtx(ctx, source, params, opt)
	if err != nil {
		return nil, err
	}
	return &Program{inner: p}, nil
}

// CompileDelta summarizes one incremental compile: procedure counts,
// which procedures were dirty, and the artifact hit/miss balance.
type CompileDelta = passes.Delta

// Incremental is a compiler with a per-unit artifact store: repeated
// Compile calls reuse the dependence graphs, communication plans and
// verification fragments of procedures whose content (and whose
// callees' content) is unchanged, re-analyzing only edited procedures —
// in parallel.  The output is byte-for-byte identical to a cold
// Compile of the same source.  Safe for concurrent use.
type Incremental struct {
	store *cache.ArtifactStore
}

// NewIncremental returns an incremental compiler whose artifact store
// holds at most maxBytes of frozen artifacts (0 = the 64 MiB default).
func NewIncremental(maxBytes int64) *Incremental {
	return &Incremental{store: cache.NewArtifactStore(maxBytes)}
}

// Persist layers a durable chunk store under the artifact tier: frozen
// artifacts are written through to st as content-addressed chunks and
// read back on later compiles — including by other processes, or after
// a restart.  Call before the first Compile.  The Incremental does not
// close st.
func (inc *Incremental) Persist(st *store.Store) {
	inc.store.SetBacking(passes.NewStoreBacking(st))
}

// Compile compiles source through the artifact store, returning the
// program plus the recompilation delta.
func (inc *Incremental) Compile(source string, params map[string]int, opt Options) (*Program, *CompileDelta, error) {
	return inc.CompileCtx(context.Background(), source, params, opt)
}

// CompileCtx is Compile with cancellation at pass boundaries.
func (inc *Incremental) CompileCtx(ctx context.Context, source string, params map[string]int, opt Options) (*Program, *CompileDelta, error) {
	p, delta, err := spmd.CompileIncrementalCtx(ctx, source, params, opt, inc.store)
	if err != nil {
		return nil, nil, err
	}
	return &Program{inner: p}, delta, nil
}

// ArtifactStats returns the artifact store's counter snapshot.
func (inc *Incremental) ArtifactStats() cache.ArtifactStats {
	return inc.store.Stats()
}

// Fingerprint returns the canonical content address of one compilation:
// a stable hash of (source, params, options), invariant under Options
// canonicalization (e.g. permuted or duplicated Disable lists) and param
// map ordering.  Identical fingerprints compile to programs with
// byte-identical Report and NodeProgram output; the compile service keys
// its program cache with it.  Options alone can be fingerprinted with
// Options.Fingerprint.
func Fingerprint(source string, params map[string]int, opt Options) string {
	return passes.FingerprintKey(source, params, opt)
}

// Ranks returns the number of processors the program was compiled for.
func (p *Program) Ranks() int { return p.inner.Grid.Size() }

// Report renders the compiler's decisions: per-statement computation
// partitionings, communication events (with eliminations), and notes.
func (p *Program) Report() string { return p.inner.Report() }

// NodeProgram renders the generated SPMD node program for one rank as
// readable pseudo-Fortran (localized bounds, guards, communication
// calls) — the analogue of inspecting dHPF's generated F77+MPI output.
func (p *Program) NodeProgram(rank int) string { return p.inner.EmitNodeProgram(rank) }

// PassStats returns per-pass instrumentation of the compilation: one
// record per executed pass, in pipeline order.  Wall times and decision
// summaries are always collected; communication volumes only when the
// program was compiled with Options.Instrument.
func (p *Program) PassStats() []PassStat { return p.inner.PassStats() }

// Verify re-runs the translation validator — the four safety theorems
// of the verify pass (iteration coverage, communication completeness,
// write-back soundness, pipeline legality) plus the privatization
// linter's surfaced bail-outs — over the compiled program's analyses and
// returns the wire-form report.  A default compile already fails when
// the proof does; callers that disabled the in-pipeline pass
// (Options.Disable PassVerify) use this to obtain the diagnostics
// instead — the -lint workflow.
func (p *Program) Verify() (VerifyReport, error) {
	rep, err := p.inner.Verify()
	if err != nil {
		return VerifyReport{}, err
	}
	return VerifyReportJSON(rep), nil
}

// Analyze runs the whole-program static analysis over the compiled
// facts — symbolic loop summaries, distributed-array dataflow
// diagnostics, and the static cost oracle — and returns the wire-form
// report.  The in-pipeline analyze pass already runs by default;
// Analyze recomputes so callers that disabled it (Options.Disable
// PassAnalyze) still get the full report — the -analyze workflow.
func (p *Program) Analyze() (AnalyzeReport, error) {
	res, err := p.inner.Analyze()
	if err != nil {
		return AnalyzeReport{}, err
	}
	cost, err := p.inner.PredictCost()
	if err != nil {
		return AnalyzeReport{}, err
	}
	return AnalyzeReportJSON(res, cost), nil
}

// PredictCost runs just the static cost oracle: the per-rank execution
// counters (flops, messages, bytes; pulls and barriers for the
// shared-memory backends) the virtual machine would measure, derived
// without executing anything.
func (p *Program) PredictCost() (*AnalyzeCost, error) {
	return p.inner.PredictCost()
}

// Run executes the program on the simulated machine with the default
// (compiled) execution engine.
func (p *Program) Run(cfg MachineConfig) (*Result, error) {
	return p.RunEngine(cfg, "")
}

// RunEngine executes the program with an explicit execution engine:
// "compiled" (or "", the default) for the closure-compiled engine,
// "interp" for the reference tree-walking interpreter, "codegen" for
// native kernels (units with a registered kernel — import
// dhpf/internal/codegen/gen or run codegen.EnableNative — execute
// natively, the rest on the closure engine).  All engines produce
// byte-identical results; the interpreter exists as the oracle the
// others are differentially tested against.
func (p *Program) RunEngine(cfg MachineConfig, engine string) (*Result, error) {
	eng, err := spmd.ParseEngine(engine)
	if err != nil {
		return nil, err
	}
	res, err := p.inner.ExecuteEngine(cfg, eng)
	if err != nil {
		return nil, err
	}
	return &Result{exec: res}, nil
}

// Result is a finished execution: verified numeric state plus the
// virtual-time performance measurements.
type Result struct {
	exec *spmd.ExecResult
}

// Array gathers the authoritative global contents of an array (each
// element from its owner) plus its per-dimension inclusive bounds.
func (r *Result) Array(name string) (data []float64, lo, hi []int, err error) {
	return r.exec.Global(name)
}

// Seconds returns the virtual-time makespan of the run.
func (r *Result) Seconds() float64 { return r.exec.Machine.Time }

// Messages returns the total number of point-to-point messages sent.
func (r *Result) Messages() int64 { return r.exec.Machine.TotalMessages() }

// Bytes returns the total payload bytes sent.
func (r *Result) Bytes() int64 { return r.exec.Machine.TotalBytes() }

// RankSeconds returns each rank's final virtual clock.
func (r *Result) RankSeconds() []float64 { return r.exec.Machine.RankTime }

// Pulls returns the number of direct memory-to-memory copies the
// shared-memory backends performed in place of messages; zero for a
// message-passing run.
func (r *Result) Pulls() int64 {
	if r.exec.Shm == nil {
		return 0
	}
	return r.exec.Shm.TotalPulls()
}

// PulledBytes returns the bytes moved by those direct copies.
func (r *Result) PulledBytes() int64 {
	if r.exec.Shm == nil {
		return 0
	}
	return r.exec.Shm.TotalPulledBytes()
}

// SpaceTime renders an ASCII space–time diagram of the run (requires the
// machine config to have had Trace enabled).
func (r *Result) SpaceTime(title string, bins int) string {
	return trace.Build(r.exec.Machine, bins).Render(title)
}

// Serial runs the program's reference (sequential) semantics, ignoring
// all directives — what the paper calls the NPB-serial starting point.
type Serial struct {
	inner *spmd.SerialResult
}

// RunSerial executes source sequentially with the given parameter
// overrides.
func RunSerial(source string, params map[string]int) (*Serial, error) {
	prog, err := parser.Parse(source)
	if err != nil {
		return nil, err
	}
	sr, err := spmd.RunSerial(prog, params)
	if err != nil {
		return nil, err
	}
	return &Serial{inner: sr}, nil
}

// Array returns a main-procedure array's data and bounds.
func (s *Serial) Array(name string) (data []float64, lo, hi []int, err error) {
	return s.inner.Array(name)
}
