package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const fixture = `package fixture

import (
	"fmt"
	"sort"
	"strings"
)

func bad(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k+"!") // transformed, not a bare key gather
	}
	return out
}

func badPrint(m map[string]int, b *strings.Builder) {
	for k, v := range m {
		fmt.Fprintf(b, "%s=%d\n", k, v)
	}
}

func badBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k)
	}
	return b.String()
}

func badConcat(m map[string]int) string {
	s := ""
	for k := range m {
		s += k
	}
	return s
}

func good(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func goodLocal(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func suppressed(m map[string]int) []string {
	var out []string
	for k := range m { //vetdet:ok
		out = append(out, k+"?")
	}
	return out
}
`

func TestLintFixture(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fixture.go")
	if err := os.WriteFile(path, []byte(fixture), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := lintPackage(listedPackage{Dir: dir, GoFiles: []string{"fixture.go"}})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		`append to outer slice "out"`,
		"fmt.Fprintf",
		`outer "b" via WriteString`,
		`string concatenation onto "s"`,
	}
	if len(findings) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%s", len(findings), len(want), strings.Join(findings, "\n"))
	}
	for i, w := range want {
		if !strings.Contains(findings[i], w) {
			t.Errorf("finding %d = %q, want mention of %q", i, findings[i], w)
		}
	}
	for _, f := range findings {
		if strings.Contains(f, "good") || strings.Contains(f, "suppressed") {
			t.Errorf("false positive: %s", f)
		}
	}
}

const nondetFixture = `package fixture

import (
	"math/rand"
	"time"
)

func badClock() time.Time {
	return time.Now()
}

func badElapsed(t0 time.Time) time.Duration {
	return time.Since(t0)
}

func badRand() int {
	return rand.Intn(10)
}

func goodSeeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func exemptTelemetry() time.Time {
	return time.Now() //vetdet:ok pass wall times are telemetry, not results
}
`

// TestNondetCallsInCore: time.Now/time.Since and global-source
// math/rand calls are findings inside a deterministic-core package,
// while seeded rand.New(rand.NewSource(k)) and //vetdet:ok lines pass.
// The same file in a non-core package lints clean.
func TestNondetCallsInCore(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fixture.go")
	if err := os.WriteFile(path, []byte(nondetFixture), 0o644); err != nil {
		t.Fatal(err)
	}
	core := listedPackage{Dir: dir, ImportPath: "dhpf/internal/analysis", GoFiles: []string{"fixture.go"}}
	findings, err := lintPackage(core)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"time.Now", "time.Since", "rand.Intn"}
	if len(findings) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%s", len(findings), len(want), strings.Join(findings, "\n"))
	}
	for i, w := range want {
		if !strings.Contains(findings[i], w) {
			t.Errorf("finding %d = %q, want mention of %q", i, findings[i], w)
		}
	}
	for _, f := range findings {
		if strings.Contains(f, "goodSeeded") || strings.Contains(f, "exempt") {
			t.Errorf("false positive: %s", f)
		}
	}

	outside := listedPackage{Dir: dir, ImportPath: "dhpf/internal/service", GoFiles: []string{"fixture.go"}}
	findings, err = lintPackage(outside)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("non-core package should not be clock-checked:\n%s", strings.Join(findings, "\n"))
	}
}

const keyReturnFixture = `package fixture

import "sort"

func BadKeys(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

func GoodKeys(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func GoodSortSlice(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// unexported callers stay inside the package; the caller is
// responsible for ordering before anything escapes.
func internalKeys(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

func ExemptKeys(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks //vetdet:ok order-insensitive membership set
}
`

// TestUnsortedKeyReturns: an exported function returning a gathered
// key slice without a sort is a finding; sorted, unexported, and
// exempted variants pass.
func TestUnsortedKeyReturns(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fixture.go")
	if err := os.WriteFile(path, []byte(keyReturnFixture), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := lintPackage(listedPackage{Dir: dir, GoFiles: []string{"fixture.go"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1:\n%s", len(findings), strings.Join(findings, "\n"))
	}
	if !strings.Contains(findings[0], "BadKeys") || !strings.Contains(findings[0], "unsorted") {
		t.Errorf("finding = %q, want BadKeys unsorted-return", findings[0])
	}
}

const exemptGeneratedFixture = `// Code generated by dhpf internal/codegen. DO NOT EDIT.
//vetdet:exempt-file machine-generated kernels (emission is deterministic by construction)

package fixture

import "time"

func Clock() time.Time {
	return time.Now()
}
`

const exemptHandwrittenFixture = `//vetdet:exempt-file trust me

package fixture

import "time"

func Clock() time.Time {
	return time.Now()
}
`

// TestExemptFile: the //vetdet:exempt-file marker silences every rule,
// but only in files carrying the machine-generated header; a
// hand-written file claiming it is itself a finding (and still linted).
func TestExemptFile(t *testing.T) {
	dir := t.TempDir()
	gen := filepath.Join(dir, "gen")
	hand := filepath.Join(dir, "hand")
	for d, src := range map[string]string{gen: exemptGeneratedFixture, hand: exemptHandwrittenFixture} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(d, "fixture.go"), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	findings, err := lintPackage(listedPackage{Dir: gen, ImportPath: "dhpf/internal/codegen/gen", GoFiles: []string{"fixture.go"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("generated exempt file should lint clean:\n%s", strings.Join(findings, "\n"))
	}

	findings, err = lintPackage(listedPackage{Dir: hand, ImportPath: "dhpf/internal/analysis", GoFiles: []string{"fixture.go"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2 (misused exemption + clock):\n%s", len(findings), strings.Join(findings, "\n"))
	}
	if !strings.Contains(findings[0], "hand-written") {
		t.Errorf("finding 0 = %q, want misused-exemption report", findings[0])
	}
	if !strings.Contains(findings[1], "time.Now") {
		t.Errorf("finding 1 = %q, want the clock finding to survive", findings[1])
	}
}

// TestRepoClean: the tree this linter ships in must itself lint clean —
// the same invocation CI runs.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("source-importer type-check of the whole tree is slow")
	}
	pkgs, err := listPackages([]string{"dhpf/internal/...", "dhpf/cmd/...", "dhpf"})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		findings, err := lintPackage(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range findings {
			t.Error(f)
		}
	}
}
