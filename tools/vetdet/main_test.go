package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const fixture = `package fixture

import (
	"fmt"
	"sort"
	"strings"
)

func bad(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k+"!") // transformed, not a bare key gather
	}
	return out
}

func badPrint(m map[string]int, b *strings.Builder) {
	for k, v := range m {
		fmt.Fprintf(b, "%s=%d\n", k, v)
	}
}

func badBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k)
	}
	return b.String()
}

func badConcat(m map[string]int) string {
	s := ""
	for k := range m {
		s += k
	}
	return s
}

func good(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func goodLocal(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func suppressed(m map[string]int) []string {
	var out []string
	for k := range m { //vetdet:ok
		out = append(out, k+"?")
	}
	return out
}
`

func TestLintFixture(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fixture.go")
	if err := os.WriteFile(path, []byte(fixture), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := lintPackage(listedPackage{Dir: dir, GoFiles: []string{"fixture.go"}})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		`append to outer slice "out"`,
		"fmt.Fprintf",
		`outer "b" via WriteString`,
		`string concatenation onto "s"`,
	}
	if len(findings) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%s", len(findings), len(want), strings.Join(findings, "\n"))
	}
	for i, w := range want {
		if !strings.Contains(findings[i], w) {
			t.Errorf("finding %d = %q, want mention of %q", i, findings[i], w)
		}
	}
	for _, f := range findings {
		if strings.Contains(f, "good") || strings.Contains(f, "suppressed") {
			t.Errorf("false positive: %s", f)
		}
	}
}

// TestRepoClean: the tree this linter ships in must itself lint clean —
// the same invocation CI runs.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("source-importer type-check of the whole tree is slow")
	}
	pkgs, err := listPackages([]string{"dhpf/internal/...", "dhpf/cmd/...", "dhpf"})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		findings, err := lintPackage(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range findings {
			t.Error(f)
		}
	}
}
