// Command vetdet is the repo's determinism linter: it flags `for …
// range m` loops over maps whose bodies feed order-sensitive output.
// Go randomizes map iteration order per run, so a map-range that
// appends to an outer slice, writes through an io.Writer /
// strings.Builder / bytes.Buffer, or concatenates onto an outer string
// produces nondeterministically ordered output — exactly the class of
// bug that breaks this repo's byte-identical-report and
// golden-output guarantees.  The fix is always the same idiom: collect
// the keys, sort, then range over the sorted slice.
//
// Two exemptions keep the signal clean:
//
//   - a loop whose body is a single `ks = append(ks, k)` statement
//     appending only the range variables is the first half of the
//     sort-then-range idiom and is allowed;
//   - a `//vetdet:ok` comment on the range statement suppresses the
//     finding (for sinks that are genuinely order-insensitive).
//
// Built on go/parser + go/types with the stdlib "source" importer
// (golang.org/x/tools is unavailable in this environment, so this is a
// standalone main rather than a go/analysis Analyzer driven by `go vet
// -vettool`).  Run it as:
//
//	go run ./tools/vetdet [package-dir ...]   (default: ./internal/...)
//
// Exit status 1 when any finding is reported.
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./internal/..."}
	}
	pkgs, err := listPackages(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vetdet:", err)
		os.Exit(2)
	}
	var findings []string
	for _, p := range pkgs {
		fs, err := lintPackage(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vetdet:", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// listedPackage is the slice of `go list -json` output vetdet needs.
type listedPackage struct {
	Dir     string
	GoFiles []string
}

// listPackages resolves package patterns through the go command (the
// only module-aware resolver available without x/tools).
func listPackages(patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json=Dir,GoFiles"}, patterns...)
	out, err := exec.Command("go", args...).Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return nil, fmt.Errorf("go list: %s", ee.Stderr)
		}
		return nil, err
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for dec.More() {
		var p listedPackage
		if err := dec.Decode(&p); err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// lintPackage parses, type-checks and lints one package's non-test
// files.
func lintPackage(p listedPackage) ([]string, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Uses:  map[*ast.Ident]types.Object{},
		Defs:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check(files[0].Name.Name, fset, files, info); err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", p.Dir, err)
	}
	var findings []string
	for _, f := range files {
		findings = append(findings, lintFile(fset, f, info)...)
	}
	return findings, nil
}

// lintFile walks one file for map-range loops feeding ordered sinks.
func lintFile(fset *token.FileSet, f *ast.File, info *types.Info) []string {
	suppressed := suppressedLines(fset, f)
	var findings []string
	ast.Inspect(f, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if suppressed[fset.Position(rng.Pos()).Line] {
			return true
		}
		if isKeyCollection(rng, info) {
			return true
		}
		if sink := orderedSink(rng, info); sink != "" {
			pos := fset.Position(rng.Pos())
			findings = append(findings,
				fmt.Sprintf("%s: map iteration order feeds %s: sort the keys first (or mark //vetdet:ok)",
					pos, sink))
		}
		return true
	})
	return findings
}

// suppressedLines collects the lines carrying a //vetdet:ok comment.
func suppressedLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "//vetdet:ok") {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// isKeyCollection reports the allowed idiom: a body that is exactly one
// `ks = append(ks, k)` (or `ks = append(ks, k, v)`) whose appended
// values are only the range variables — the gather step before sorting.
func isKeyCollection(rng *ast.RangeStmt, info *types.Info) bool {
	if len(rng.Body.List) != 1 {
		return false
	}
	as, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || !isBuiltinAppend(call, info) || len(call.Args) < 2 {
		return false
	}
	rangeVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok {
			rangeVars[info.Defs[id]] = true
		}
	}
	for _, arg := range call.Args[1:] {
		id, ok := arg.(*ast.Ident)
		if !ok || !rangeVars[info.Uses[id]] {
			return false
		}
	}
	return true
}

func isBuiltinAppend(call *ast.CallExpr, info *types.Info) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// orderedSink returns a description of the first order-sensitive output
// the loop body feeds, or "" when the body looks order-insensitive.
func orderedSink(rng *ast.RangeStmt, info *types.Info) string {
	inLoop := func(obj types.Object) bool {
		return obj != nil && obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End()
	}
	var sink string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch s := n.(type) {
		case *ast.AssignStmt:
			// v = append(v, …) or v += … onto a variable declared
			// outside the loop.
			if len(s.Lhs) != 1 {
				return true
			}
			id, ok := s.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.Uses[id]
			if obj == nil || inLoop(obj) {
				return true
			}
			if s.Tok == token.ADD_ASSIGN {
				if b, ok := obj.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					sink = fmt.Sprintf("string concatenation onto %q", id.Name)
				}
				return true
			}
			if call, ok := s.Rhs[0].(*ast.CallExpr); ok && isBuiltinAppend(call, info) {
				sink = fmt.Sprintf("append to outer slice %q", id.Name)
			}
		case *ast.CallExpr:
			switch fn := s.Fun.(type) {
			case *ast.SelectorExpr:
				name := fn.Sel.Name
				if pkgIdent, ok := fn.X.(*ast.Ident); ok {
					if pn, ok := info.Uses[pkgIdent].(*types.PkgName); ok && pn.Imported().Path() == "fmt" &&
						strings.HasPrefix(name, "Fprint") {
						sink = "a writer via fmt." + name
						return true
					}
				}
				// Methods that emit onto an outer writer/builder/buffer.
				switch name {
				case "WriteString", "WriteByte", "WriteRune", "Write", "Printf", "Println", "Print":
					if recv, ok := fn.X.(*ast.Ident); ok {
						if obj := info.Uses[recv]; obj != nil && !inLoop(obj) && isWriterish(obj.Type()) {
							sink = fmt.Sprintf("writes to outer %q via %s", recv.Name, name)
						}
					}
				}
			}
		}
		return true
	})
	return sink
}

// isWriterish recognizes the output types whose write order is the
// output order: anything with a Write([]byte) method (io.Writer,
// *bytes.Buffer, *strings.Builder) by name.
func isWriterish(t types.Type) bool {
	for _, typ := range []types.Type{t, types.NewPointer(t)} {
		ms := types.NewMethodSet(typ)
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == "Write" {
				return true
			}
		}
	}
	return false
}
