// Command vetdet is the repo's determinism linter.  It enforces three
// rules that protect the byte-identical-report, golden-output, and
// content-addressed-fingerprint guarantees:
//
//  1. Map-range order: a `for … range m` loop over a map whose body
//     feeds order-sensitive output — appending to an outer slice,
//     writing through an io.Writer / strings.Builder / bytes.Buffer,
//     or concatenating onto an outer string — produces
//     nondeterministically ordered output.  The fix is always the same
//     idiom: collect the keys, sort, then range over the sorted slice.
//
//  2. Wall-clock and global randomness in the deterministic core: the
//     compiler, analysis, and verification packages must be pure
//     functions of their inputs (their results are fingerprinted and
//     memoized), so calls to time.Now/time.Since or to math/rand's
//     global-source functions (rand.Int, rand.Perm, … — a seeded
//     rand.New(rand.NewSource(k)) is deterministic and allowed) are
//     flagged there.  Timing telemetry that never reaches a
//     fingerprint carries a //vetdet:ok exemption.
//
//  3. Unsorted key escapes: an exported function that gathers map keys
//     into a slice and returns it without sorting leaks map iteration
//     order across a package boundary, where it eventually reaches a
//     report or a fingerprint.
//
// Two exemptions keep the signal clean:
//
//   - a loop whose body is a single `ks = append(ks, k)` statement
//     appending only the range variables is the first half of the
//     sort-then-range idiom and is allowed (until rule 3 sees it
//     returned unsorted);
//   - a `//vetdet:ok` comment on the flagged line suppresses the
//     finding (for sinks that are genuinely order-insensitive and
//     clocks that are genuinely telemetry).
//
// Built on go/parser + go/types with the stdlib "source" importer
// (golang.org/x/tools is unavailable in this environment, so this is a
// standalone main rather than a go/analysis Analyzer driven by `go vet
// -vettool`).  Run it as:
//
//	go run ./tools/vetdet [package-dir ...]   (default: ./internal/...)
//
// Exit status 1 when any finding is reported.
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./internal/..."}
	}
	pkgs, err := listPackages(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vetdet:", err)
		os.Exit(2)
	}
	var findings []string
	for _, p := range pkgs {
		fs, err := lintPackage(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vetdet:", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// listedPackage is the slice of `go list -json` output vetdet needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	GoFiles    []string
}

// listPackages resolves package patterns through the go command (the
// only module-aware resolver available without x/tools).
func listPackages(patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json=Dir,ImportPath,GoFiles"}, patterns...)
	out, err := exec.Command("go", args...).Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return nil, fmt.Errorf("go list: %s", ee.Stderr)
		}
		return nil, err
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for dec.More() {
		var p listedPackage
		if err := dec.Decode(&p); err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// lintPackage parses, type-checks and lints one package's non-test
// files.
func lintPackage(p listedPackage) ([]string, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Uses:  map[*ast.Ident]types.Object{},
		Defs:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check(files[0].Name.Name, fset, files, info); err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", p.Dir, err)
	}
	var findings []string
	for _, f := range files {
		if exempt, generated := fileExemption(f); exempt {
			if !generated {
				findings = append(findings, fmt.Sprintf(
					"%s: //vetdet:exempt-file in a hand-written file: only machine-generated files (carrying a \"// Code generated … DO NOT EDIT.\" header) may be exempted",
					fset.Position(f.Pos())))
			} else {
				// A generated file is exempt wholesale: its emitter is
				// itself in the deterministic core and linted, so the
				// output's determinism is established at the source.
				continue
			}
		}
		findings = append(findings, lintFile(fset, f, info)...)
		findings = append(findings, lintUnsortedKeyReturns(fset, f, info)...)
		if deterministicCore(p.ImportPath) {
			findings = append(findings, lintNondetCalls(fset, f, info)...)
		}
	}
	return findings, nil
}

// fileExemption scans a file's comments for the //vetdet:exempt-file
// marker and the standard machine-generated header.  The exemption is
// honored only when both are present; a hand-written file claiming it
// is reported instead of silenced.
func fileExemption(f *ast.File) (exempt, generated bool) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "//vetdet:exempt-file") {
				exempt = true
			}
			if strings.HasPrefix(c.Text, "// Code generated ") && strings.HasSuffix(c.Text, "DO NOT EDIT.") {
				generated = true
			}
		}
	}
	return exempt, generated
}

// deterministicCore reports whether the package is part of the
// compiler/analysis core whose outputs are fingerprinted or memoized —
// the scope of the wall-clock/global-rand rule.  The service, CLI, and
// tuner layers may read the clock (request logging, tier wall
// counters); the core may not.
func deterministicCore(importPath string) bool {
	switch importPath {
	case "dhpf/internal/parser", "dhpf/internal/hpf", "dhpf/internal/ir",
		"dhpf/internal/iset", "dhpf/internal/cp", "dhpf/internal/comm",
		"dhpf/internal/spmd", "dhpf/internal/passes", "dhpf/internal/analysis",
		"dhpf/internal/verify", "dhpf/internal/perfmodel", "dhpf/internal/nas",
		// The native tier: emission is fingerprinted (kernel sources are
		// content-addressed), so the emitter must be deterministic; the
		// generated corpus rides along and is exempted per-file by its
		// machine-generated header.
		"dhpf/internal/codegen", "dhpf/internal/codegen/gen":
		return true
	}
	return false
}

// lintFile walks one file for map-range loops feeding ordered sinks.
func lintFile(fset *token.FileSet, f *ast.File, info *types.Info) []string {
	suppressed := suppressedLines(fset, f)
	var findings []string
	ast.Inspect(f, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if suppressed[fset.Position(rng.Pos()).Line] {
			return true
		}
		if isKeyCollection(rng, info) {
			return true
		}
		if sink := orderedSink(rng, info); sink != "" {
			pos := fset.Position(rng.Pos())
			findings = append(findings,
				fmt.Sprintf("%s: map iteration order feeds %s: sort the keys first (or mark //vetdet:ok)",
					pos, sink))
		}
		return true
	})
	return findings
}

// suppressedLines collects the lines carrying a //vetdet:ok comment.
func suppressedLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "//vetdet:ok") {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// isKeyCollection reports the allowed idiom: a body that is exactly one
// `ks = append(ks, k)` (or `ks = append(ks, k, v)`) whose appended
// values are only the range variables — the gather step before sorting.
func isKeyCollection(rng *ast.RangeStmt, info *types.Info) bool {
	if len(rng.Body.List) != 1 {
		return false
	}
	as, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || !isBuiltinAppend(call, info) || len(call.Args) < 2 {
		return false
	}
	rangeVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok {
			rangeVars[info.Defs[id]] = true
		}
	}
	for _, arg := range call.Args[1:] {
		id, ok := arg.(*ast.Ident)
		if !ok || !rangeVars[info.Uses[id]] {
			return false
		}
	}
	return true
}

func isBuiltinAppend(call *ast.CallExpr, info *types.Info) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// orderedSink returns a description of the first order-sensitive output
// the loop body feeds, or "" when the body looks order-insensitive.
func orderedSink(rng *ast.RangeStmt, info *types.Info) string {
	inLoop := func(obj types.Object) bool {
		return obj != nil && obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End()
	}
	var sink string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch s := n.(type) {
		case *ast.AssignStmt:
			// v = append(v, …) or v += … onto a variable declared
			// outside the loop.
			if len(s.Lhs) != 1 {
				return true
			}
			id, ok := s.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.Uses[id]
			if obj == nil || inLoop(obj) {
				return true
			}
			if s.Tok == token.ADD_ASSIGN {
				if b, ok := obj.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					sink = fmt.Sprintf("string concatenation onto %q", id.Name)
				}
				return true
			}
			if call, ok := s.Rhs[0].(*ast.CallExpr); ok && isBuiltinAppend(call, info) {
				sink = fmt.Sprintf("append to outer slice %q", id.Name)
			}
		case *ast.CallExpr:
			switch fn := s.Fun.(type) {
			case *ast.SelectorExpr:
				name := fn.Sel.Name
				if pkgIdent, ok := fn.X.(*ast.Ident); ok {
					if pn, ok := info.Uses[pkgIdent].(*types.PkgName); ok && pn.Imported().Path() == "fmt" &&
						strings.HasPrefix(name, "Fprint") {
						sink = "a writer via fmt." + name
						return true
					}
				}
				// Methods that emit onto an outer writer/builder/buffer.
				switch name {
				case "WriteString", "WriteByte", "WriteRune", "Write", "Printf", "Println", "Print":
					if recv, ok := fn.X.(*ast.Ident); ok {
						if obj := info.Uses[recv]; obj != nil && !inLoop(obj) && isWriterish(obj.Type()) {
							sink = fmt.Sprintf("writes to outer %q via %s", recv.Name, name)
						}
					}
				}
			}
		}
		return true
	})
	return sink
}

// isWriterish recognizes the output types whose write order is the
// output order: anything with a Write([]byte) method (io.Writer,
// *bytes.Buffer, *strings.Builder) by name.
func isWriterish(t types.Type) bool {
	for _, typ := range []types.Type{t, types.NewPointer(t)} {
		ms := types.NewMethodSet(typ)
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == "Write" {
				return true
			}
		}
	}
	return false
}

// globalRandFuncs are the math/rand package-level functions that draw
// from the unseeded global source.  rand.New and rand.NewSource are
// absent: a *rand.Rand built from an explicit seed is deterministic.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

// lintNondetCalls flags wall-clock reads and global-source randomness
// inside a deterministic-core package: time.Now / time.Since and the
// math/rand global-source functions.  //vetdet:ok on the call's line
// exempts telemetry that never reaches a fingerprint.
func lintNondetCalls(fset *token.FileSet, f *ast.File, info *types.Info) []string {
	suppressed := suppressedLines(fset, f)
	var findings []string
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgIdent, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := info.Uses[pkgIdent].(*types.PkgName)
		if !ok {
			return true
		}
		pos := fset.Position(call.Pos())
		if suppressed[pos.Line] {
			return true
		}
		switch pn.Imported().Path() {
		case "time":
			if sel.Sel.Name == "Now" || sel.Sel.Name == "Since" {
				findings = append(findings, fmt.Sprintf(
					"%s: wall clock (time.%s) in a deterministic-core package: results here are fingerprinted (or mark //vetdet:ok for telemetry)",
					pos, sel.Sel.Name))
			}
		case "math/rand", "math/rand/v2":
			if globalRandFuncs[sel.Sel.Name] {
				findings = append(findings, fmt.Sprintf(
					"%s: global-source rand.%s in a deterministic-core package: seed an explicit rand.New(rand.NewSource(k)) instead",
					pos, sel.Sel.Name))
			}
		}
		return true
	})
	return findings
}

// lintUnsortedKeyReturns flags exported functions that gather map keys
// into a slice and return that slice with no sort call on it anywhere
// in the function: map iteration order escapes the package boundary.
func lintUnsortedKeyReturns(fset *token.FileSet, f *ast.File, info *types.Info) []string {
	suppressed := suppressedLines(fset, f)
	var findings []string
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil || !fn.Name.IsExported() {
			continue
		}
		// The slices that hold gathered map keys, by object.
		gathered := map[types.Object]token.Position{}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if !isKeyCollection(rng, info) {
				return true
			}
			as := rng.Body.List[0].(*ast.AssignStmt)
			if id, ok := as.Lhs[0].(*ast.Ident); ok {
				if obj := objectOf(id, info); obj != nil {
					gathered[obj] = fset.Position(rng.Pos())
				}
			}
			return true
		})
		if len(gathered) == 0 {
			continue
		}
		// Any ident that appears inside a sort.* / slices.* call counts
		// as sorted (covers sort.Strings(ks), sort.Slice(ks, …), and
		// sort.Sort(byName(ks))).
		sorted := map[types.Object]bool{}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgIdent, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := info.Uses[pkgIdent].(*types.PkgName)
			if !ok || (pn.Imported().Path() != "sort" && pn.Imported().Path() != "slices") {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(a ast.Node) bool {
					if id, ok := a.(*ast.Ident); ok {
						if obj := info.Uses[id]; obj != nil {
							sorted[obj] = true
						}
					}
					return true
				})
			}
			return true
		})
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			for _, r := range ret.Results {
				id, ok := r.(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Uses[id]
				pos, isGathered := gathered[obj]
				if !isGathered || sorted[obj] {
					continue
				}
				retPos := fset.Position(ret.Pos())
				if suppressed[retPos.Line] || suppressed[pos.Line] {
					continue
				}
				findings = append(findings, fmt.Sprintf(
					"%s: %s returns map keys %q (gathered at line %d) unsorted across the package boundary: sort before returning (or mark //vetdet:ok)",
					retPos, fn.Name.Name, id.Name, pos.Line))
			}
			return true
		})
	}
	return findings
}

// objectOf resolves an ident whether it defines or uses its object.
func objectOf(id *ast.Ident, info *types.Info) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}
