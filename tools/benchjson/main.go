// Command benchjson runs the execution-engine, incremental-compile and
// durable-store benchmark set and emits a machine-readable summary
// (BENCH_10.json).  Five pairings are reported:
//
//   - engine pairs: each benchmark family has a compiled variant and an
//     Interp-suffixed interpreter variant over the same workload
//     (bench_test.go routes both through the same body via
//     Program.ExecuteEngine), and the tool reports the speedup of the
//     closure-compiled engine over the tree-walking interpreter;
//   - warm/cold pairs: each recompile benchmark against its
//     Cold-suffixed from-scratch twin, compared at the p50_ns metric
//     the benchmarks report (medians, because compile times are
//     long-tailed under GC and scheduler noise).  Two families:
//     BenchmarkWarmEditRecompile (one-procedure edit against a primed
//     artifact store) and BenchmarkRestartWarmCompile (a freshly
//     restarted server serving a known fingerprint from its durable
//     store, in internal/service);
//   - backend pairs: each Shm-suffixed benchmark against its
//     message-passing base name (BenchmarkExecuteSPStepShm vs
//     BenchmarkExecuteSPStep).  Both backends run the same compiled
//     closures over the same data, so their host times must stay within
//     a small band of each other — a large divergence means one
//     substrate grew an accidental hot path;
//   - codegen pairs: each Codegen-suffixed benchmark against its
//     closure-engine base name.  The native tier replaces the closure
//     walk with emitted flat-loop kernels at bit-identical results (the
//     parity suite enforces identity), and -check gates the speedup at
//     3x — the headline claim of the native backend;
//   - pin pairs: each WallClockPinned benchmark against its unpinned
//     WallClock twin — the same simulation under the Go scheduler's
//     default goroutine placement vs rank goroutines locked to OS
//     threads.  Recorded, not gated: the ratio is hardware- and
//     load-dependent, the point is that it is measured.
//
// Usage:
//
//	go run ./tools/benchjson [flags]
//
//	-bench RE     benchmark selection regexp (default the ExecuteSPStep,
//	              LUWavefront, WarmEditRecompile and RestartWarm families)
//	-benchtime T  passed through to go test (default 1x per bench: "2s")
//	-o FILE       write JSON here (default BENCH_10.json; "-" = stdout)
//	-check        gate mode: exit 1 unless the compiled engine beats the
//	              interpreter on every engine pair AND every warm/cold
//	              recompile pair is at least 10x faster warm at p50 AND
//	              every shm/mp backend pair stays within the host-time
//	              band AND every codegen pair is at least 3x faster than
//	              the closure engine (CI smoke; uses a short -benchtime
//	              unless given)
//
// Stdlib-only by design, like tools/vetdet: the container has no
// golang.org/x/perf, so the benchmark output is parsed directly.  The
// parser understands the standard `name iters value unit ...` line
// shape including custom ReportMetric columns (virtual_ms).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
)

// Bench is one parsed benchmark result line.
type Bench struct {
	Name        string  `json:"name"`
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// VirtualMs is the simulated-machine makespan reported by the LU
	// wavefront benchmarks; identical across engines by construction
	// (the differential suite enforces it), so a mismatch here means
	// the engines diverged.
	VirtualMs float64 `json:"virtual_ms,omitempty"`
	// P50Ns is the median per-iteration wall time reported by the
	// recompile benchmarks, which gate on medians rather than means.
	P50Ns float64 `json:"p50_ns,omitempty"`
}

// Pair is a compiled benchmark matched with its Interp-suffixed oracle.
type Pair struct {
	Benchmark     string  `json:"benchmark"`
	CompiledNs    float64 `json:"compiled_ns_per_op"`
	InterpNs      float64 `json:"interp_ns_per_op"`
	Speedup       float64 `json:"speedup"`
	CompiledAlloc float64 `json:"compiled_allocs_per_op"`
	InterpAlloc   float64 `json:"interp_allocs_per_op"`
	AllocRatio    float64 `json:"alloc_ratio"`
}

// WarmPair is a warm-edit recompile benchmark matched with its
// Cold-suffixed from-scratch twin, compared at p50.
type WarmPair struct {
	Benchmark string  `json:"benchmark"`
	WarmP50Ns float64 `json:"warm_p50_ns"`
	ColdP50Ns float64 `json:"cold_p50_ns"`
	Speedup   float64 `json:"speedup"`
}

// BackendPair is a Shm-suffixed benchmark matched with its
// message-passing base, compared at host ns/op.
type BackendPair struct {
	Benchmark string  `json:"benchmark"`
	MpNs      float64 `json:"mp_ns_per_op"`
	ShmNs     float64 `json:"shm_ns_per_op"`
	Ratio     float64 `json:"mp_over_shm"`
}

// CodegenPair is a Codegen-suffixed benchmark matched with its
// closure-engine base, compared at host ns/op.
type CodegenPair struct {
	Benchmark  string  `json:"benchmark"`
	CompiledNs float64 `json:"compiled_ns_per_op"`
	CodegenNs  float64 `json:"codegen_ns_per_op"`
	Speedup    float64 `json:"speedup"`
}

// PinPair is a WallClockPinned benchmark matched with its unpinned
// WallClock twin; recorded but never gated.
type PinPair struct {
	Benchmark  string  `json:"benchmark"`
	UnpinnedNs float64 `json:"unpinned_ns_per_op"`
	PinnedNs   float64 `json:"pinned_ns_per_op"`
	Ratio      float64 `json:"unpinned_over_pinned"`
}

// warmGate is the -check floor for warm/cold speedup: a warm-edit
// recompile, and a restart-warm store hit, must each beat their cold
// twin by at least this much at p50.
const warmGate = 10.0

// backendBand is the -check tolerance for the shm/mp host-time ratio:
// the pair must land in [1/backendBand, backendBand].
const backendBand = 3.0

// codegenGate is the -check floor for the native tier: emitted kernels
// must beat the closure engine by at least this much on every pair.
const codegenGate = 3.0

// Report is the BENCH_10.json document.
type Report struct {
	GoTestArgs   []string      `json:"go_test_args"`
	Benchmarks   []Bench       `json:"benchmarks"`
	Pairs        []Pair        `json:"pairs"`
	WarmPairs    []WarmPair    `json:"warm_pairs,omitempty"`
	BackendPairs []BackendPair `json:"backend_pairs,omitempty"`
	CodegenPairs []CodegenPair `json:"codegen_pairs,omitempty"`
	PinPairs     []PinPair     `json:"pin_pairs,omitempty"`
}

func main() {
	benchRE := flag.String("bench", "BenchmarkExecuteSPStep|BenchmarkLUWavefront|BenchmarkWarmEditRecompile|BenchmarkRestartWarm",
		"benchmark selection regexp (go test -bench)")
	benchtime := flag.String("benchtime", "", "go test -benchtime (default 2s, or 40x with -check)")
	out := flag.String("o", "BENCH_10.json", `output file ("-" for stdout)`)
	check := flag.Bool("check", false, "exit 1 unless compiled beats interp on every pair")
	flag.Parse()

	bt := *benchtime
	if bt == "" {
		if *check {
			// Enough iterations for a stable p50 on the recompile
			// benchmarks while keeping the engine families quick.
			bt = "40x"
		} else {
			bt = "2s"
		}
	}
	// The benchmark families live in two packages: the root (engines,
	// warm-edit recompiles) and internal/service (restart-warm store hits).
	args := []string{"test", "-run", "NONE", "-bench", *benchRE, "-benchmem", "-benchtime", bt, ".", "./internal/service"}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go %s: %v\n%s", strings.Join(args, " "), err, raw)
		os.Exit(2)
	}

	rep := Report{GoTestArgs: args}
	for _, line := range strings.Split(string(raw), "\n") {
		b, ok := parseLine(line)
		if ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmark lines in go test output:\n%s", raw)
		os.Exit(2)
	}
	rep.Pairs = pairUp(rep.Benchmarks)
	rep.WarmPairs = pairWarm(rep.Benchmarks)
	rep.BackendPairs = pairBackends(rep.Benchmarks)
	rep.CodegenPairs = pairCodegen(rep.Benchmarks)
	rep.PinPairs = pairPinned(rep.Benchmarks)

	js, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	js = append(js, '\n')
	if *out == "-" {
		os.Stdout.Write(js)
	} else if err := os.WriteFile(*out, js, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}

	if *check {
		fail := false
		for _, p := range rep.Pairs {
			if p.Speedup <= 1 {
				fmt.Fprintf(os.Stderr, "benchjson: FAIL %s: compiled %.0f ns/op not faster than interp %.0f ns/op\n",
					p.Benchmark, p.CompiledNs, p.InterpNs)
				fail = true
			}
		}
		for _, w := range rep.WarmPairs {
			if w.Speedup < warmGate {
				fmt.Fprintf(os.Stderr, "benchjson: FAIL %s: warm p50 %.0f ns only %.2fx faster than cold p50 %.0f ns (gate %.0fx)\n",
					w.Benchmark, w.WarmP50Ns, w.Speedup, w.ColdP50Ns, warmGate)
				fail = true
			}
		}
		if len(rep.Pairs) == 0 {
			fmt.Fprintln(os.Stderr, "benchjson: -check found no compiled/interp pairs")
			fail = true
		}
		if len(rep.WarmPairs) == 0 && strings.Contains(*benchRE, "WarmEditRecompile") {
			fmt.Fprintln(os.Stderr, "benchjson: -check found no warm/cold recompile pairs")
			fail = true
		}
		if strings.Contains(*benchRE, "RestartWarm") && !hasWarmPair(rep.WarmPairs, "BenchmarkRestartWarmCompile") {
			fmt.Fprintln(os.Stderr, "benchjson: -check found no restart-warm/cold pair")
			fail = true
		}
		for _, bp := range rep.BackendPairs {
			if bp.Ratio < 1/backendBand || bp.Ratio > backendBand {
				fmt.Fprintf(os.Stderr, "benchjson: FAIL %s: shm %.0f ns/op vs mp %.0f ns/op (ratio %.2f outside [%.2f, %.0f])\n",
					bp.Benchmark, bp.ShmNs, bp.MpNs, bp.Ratio, 1/backendBand, backendBand)
				fail = true
			}
		}
		if strings.Contains(*benchRE, "ExecuteSPStep") && len(rep.BackendPairs) == 0 {
			fmt.Fprintln(os.Stderr, "benchjson: -check found no shm/mp backend pair")
			fail = true
		}
		for _, cg := range rep.CodegenPairs {
			if cg.Speedup < codegenGate {
				fmt.Fprintf(os.Stderr, "benchjson: FAIL %s: codegen %.0f ns/op only %.2fx faster than compiled %.0f ns/op (gate %.0fx)\n",
					cg.Benchmark, cg.CodegenNs, cg.Speedup, cg.CompiledNs, codegenGate)
				fail = true
			}
		}
		if strings.Contains(*benchRE, "ExecuteSPStep") {
			if len(rep.CodegenPairs) == 0 {
				fmt.Fprintln(os.Stderr, "benchjson: -check found no codegen/compiled pair")
				fail = true
			}
			if len(rep.PinPairs) == 0 {
				fmt.Fprintln(os.Stderr, "benchjson: -check found no pinned/unpinned wall-clock pair")
				fail = true
			}
		}
		if fail {
			os.Exit(1)
		}
	}
	for _, p := range rep.Pairs {
		fmt.Fprintf(os.Stderr, "benchjson: %s speedup %.2fx (allocs %.0f -> %.0f)\n",
			p.Benchmark, p.Speedup, p.InterpAlloc, p.CompiledAlloc)
	}
	for _, w := range rep.WarmPairs {
		fmt.Fprintf(os.Stderr, "benchjson: %s warm-edit speedup %.2fx (p50 %.0f ns vs cold %.0f ns)\n",
			w.Benchmark, w.Speedup, w.WarmP50Ns, w.ColdP50Ns)
	}
	for _, bp := range rep.BackendPairs {
		fmt.Fprintf(os.Stderr, "benchjson: %s mp/shm host-time ratio %.2f (mp %.0f ns, shm %.0f ns)\n",
			bp.Benchmark, bp.Ratio, bp.MpNs, bp.ShmNs)
	}
	for _, cg := range rep.CodegenPairs {
		fmt.Fprintf(os.Stderr, "benchjson: %s codegen speedup %.2fx (%.0f ns vs compiled %.0f ns)\n",
			cg.Benchmark, cg.Speedup, cg.CodegenNs, cg.CompiledNs)
	}
	for _, pp := range rep.PinPairs {
		fmt.Fprintf(os.Stderr, "benchjson: %s unpinned/pinned wall-clock ratio %.2f (unpinned %.0f ns, pinned %.0f ns)\n",
			pp.Benchmark, pp.Ratio, pp.UnpinnedNs, pp.PinnedNs)
	}
}

// parseLine parses one `BenchmarkName-N  iters  v unit  v unit ...`
// result line; returns ok=false for everything else (headers, PASS,
// ok-lines).
func parseLine(line string) (Bench, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Bench{}, false
	}
	name, _, _ := strings.Cut(f[0], "-") // strip -GOMAXPROCS
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Bench{}, false
	}
	b := Bench{Name: name, Iters: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Bench{}, false
		}
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		case "virtual_ms":
			b.VirtualMs = v
		case "p50_ns":
			b.P50Ns = v
		}
	}
	return b, b.NsPerOp > 0
}

// pairUp matches each benchmark with its Interp-suffixed counterpart,
// preserving the order benchmarks appeared in.
func pairUp(bs []Bench) []Pair {
	byName := make(map[string]Bench, len(bs))
	for _, b := range bs {
		byName[b.Name] = b
	}
	var pairs []Pair
	for _, b := range bs {
		if strings.HasSuffix(b.Name, "Interp") {
			continue
		}
		in, ok := byName[b.Name+"Interp"]
		if !ok {
			continue
		}
		p := Pair{
			Benchmark:     b.Name,
			CompiledNs:    b.NsPerOp,
			InterpNs:      in.NsPerOp,
			CompiledAlloc: b.AllocsPerOp,
			InterpAlloc:   in.AllocsPerOp,
		}
		if b.NsPerOp > 0 {
			p.Speedup = in.NsPerOp / b.NsPerOp
		}
		if b.AllocsPerOp > 0 {
			p.AllocRatio = in.AllocsPerOp / b.AllocsPerOp
		}
		pairs = append(pairs, p)
	}
	return pairs
}

func hasWarmPair(pairs []WarmPair, name string) bool {
	for _, p := range pairs {
		if p.Benchmark == name {
			return true
		}
	}
	return false
}

// pairBackends matches each Shm-suffixed benchmark with its
// message-passing base name.
func pairBackends(bs []Bench) []BackendPair {
	byName := make(map[string]Bench, len(bs))
	for _, b := range bs {
		byName[b.Name] = b
	}
	var pairs []BackendPair
	for _, b := range bs {
		if !strings.HasSuffix(b.Name, "Shm") {
			continue
		}
		mp, ok := byName[strings.TrimSuffix(b.Name, "Shm")]
		if !ok || mp.NsPerOp <= 0 {
			continue
		}
		pairs = append(pairs, BackendPair{
			Benchmark: strings.TrimSuffix(b.Name, "Shm"),
			MpNs:      mp.NsPerOp,
			ShmNs:     b.NsPerOp,
			Ratio:     mp.NsPerOp / b.NsPerOp,
		})
	}
	return pairs
}

// pairCodegen matches each Codegen-suffixed benchmark with its
// closure-engine base name.
func pairCodegen(bs []Bench) []CodegenPair {
	byName := make(map[string]Bench, len(bs))
	for _, b := range bs {
		byName[b.Name] = b
	}
	var pairs []CodegenPair
	for _, b := range bs {
		if !strings.HasSuffix(b.Name, "Codegen") {
			continue
		}
		base, ok := byName[strings.TrimSuffix(b.Name, "Codegen")]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		pairs = append(pairs, CodegenPair{
			Benchmark:  strings.TrimSuffix(b.Name, "Codegen"),
			CompiledNs: base.NsPerOp,
			CodegenNs:  b.NsPerOp,
			Speedup:    base.NsPerOp / b.NsPerOp,
		})
	}
	return pairs
}

// pairPinned matches each WallClockPinned benchmark with its unpinned
// WallClock twin.
func pairPinned(bs []Bench) []PinPair {
	byName := make(map[string]Bench, len(bs))
	for _, b := range bs {
		byName[b.Name] = b
	}
	var pairs []PinPair
	for _, b := range bs {
		if !strings.HasSuffix(b.Name, "WallClockPinned") {
			continue
		}
		base, ok := byName[strings.TrimSuffix(b.Name, "Pinned")]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		pairs = append(pairs, PinPair{
			Benchmark:  strings.TrimSuffix(b.Name, "Pinned"),
			UnpinnedNs: base.NsPerOp,
			PinnedNs:   b.NsPerOp,
			Ratio:      base.NsPerOp / b.NsPerOp,
		})
	}
	return pairs
}

// pairWarm matches each recompile benchmark with its Cold-suffixed
// from-scratch twin and compares medians.
func pairWarm(bs []Bench) []WarmPair {
	byName := make(map[string]Bench, len(bs))
	for _, b := range bs {
		byName[b.Name] = b
	}
	var pairs []WarmPair
	for _, b := range bs {
		if strings.HasSuffix(b.Name, "Cold") || b.P50Ns <= 0 {
			continue
		}
		cold, ok := byName[b.Name+"Cold"]
		if !ok || cold.P50Ns <= 0 {
			continue
		}
		pairs = append(pairs, WarmPair{
			Benchmark: b.Name,
			WarmP50Ns: b.P50Ns,
			ColdP50Ns: cold.P50Ns,
			Speedup:   cold.P50Ns / b.P50Ns,
		})
	}
	return pairs
}
