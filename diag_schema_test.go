package dhpf_test

import (
	"encoding/json"
	"os"
	"testing"

	"dhpf"
)

// deadStoreSrc's first loop's store of a is entirely overwritten by the
// second loop before any read — the static analyzer's deadstore check.
const deadStoreSrc = `
program deadstore
param N = 16
param P = 4
!hpf$ processors procs(P)
!hpf$ template t(N)
!hpf$ align a with t(d0)
!hpf$ align b with t(d0)
!hpf$ distribute t(BLOCK) onto procs

subroutine main()
  real a(0:N-1)
  real b(0:N-1)
  !hpf$ independent
  do i = 0, N-1
    a(i) = 1.0
  enddo
  !hpf$ independent
  do i = 0, N-1
    a(i) = 2.0
  enddo
  !hpf$ independent
  do i = 0, N-1
    b(i) = a(i)
  enddo
end
`

// TestDiagnosticSchemaGolden pins the shared diagnostic wire schema:
// every surface (-lint / Program.Verify and -analyze / Program.Analyze)
// marshals its findings as exactly these keys — code, severity, proc,
// stmt, message, plus the optional ref and set witnesses.  Tooling
// parses one schema for both.
func TestDiagnosticSchemaGolden(t *testing.T) {
	d := dhpf.DiagnosticJSON{
		Code:     "deadstore",
		Severity: "warning",
		Proc:     "main",
		Stmt:     3,
		Ref:      "a",
		Set:      "{[0:15]}",
		Message:  "store to a is overwritten by stmt 7 before any read",
	}
	got, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{"code":"deadstore","severity":"warning","proc":"main","stmt":3,` +
		`"ref":"a","set":"{[0:15]}","message":"store to a is overwritten by stmt 7 before any read"}`
	if string(got) != golden {
		t.Errorf("diagnostic schema drifted:\n got %s\nwant %s", got, golden)
	}
}

// TestSharedDiagnosticSchemaAcrossSurfaces: the verify and analyze
// surfaces emit diagnostics whose marshalled JSON uses the same key set
// — no surface-specific field names.
func TestSharedDiagnosticSchemaAcrossSurfaces(t *testing.T) {
	// The verify side needs a program with communication to re-prove:
	// ysolve's availability eliminations surface as INFO diagnostics.
	ysrc, err := os.ReadFile("testdata/ysolve.hpf")
	if err != nil {
		t.Fatal(err)
	}
	yprog, err := dhpf.Compile(string(ysrc), nil, dhpf.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	vrep, err := yprog.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(vrep.Diagnostics) == 0 {
		t.Fatal("verify produced no diagnostics (expected at least the INFO re-proofs)")
	}

	prog, err := dhpf.Compile(deadStoreSrc, nil, dhpf.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	arep, err := prog.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if arep.Warnings == 0 {
		t.Fatalf("analyze missed the dead store:\n%s", arep.Text)
	}
	found := false
	for _, d := range arep.Diagnostics {
		if d.Code == "deadstore" && d.Severity == "warning" && d.Proc == "main" {
			found = true
		}
	}
	if !found {
		t.Errorf("no deadstore warning in analyze diagnostics: %+v", arep.Diagnostics)
	}

	allowed := map[string]bool{
		"code": true, "severity": true, "proc": true,
		"stmt": true, "ref": true, "set": true, "message": true,
	}
	required := []string{"code", "severity", "proc", "stmt", "message"}
	checkKeys := func(surface string, ds []dhpf.DiagnosticJSON) {
		for _, d := range ds {
			raw, err := json.Marshal(d)
			if err != nil {
				t.Fatal(err)
			}
			var m map[string]any
			if err := json.Unmarshal(raw, &m); err != nil {
				t.Fatal(err)
			}
			for k := range m {
				if !allowed[k] {
					t.Errorf("%s diagnostic has off-schema key %q: %s", surface, k, raw)
				}
			}
			for _, k := range required {
				if _, ok := m[k]; !ok {
					t.Errorf("%s diagnostic missing required key %q: %s", surface, k, raw)
				}
			}
		}
	}
	checkKeys("verify", vrep.Diagnostics)
	checkKeys("analyze", arep.Diagnostics)
}

// TestProgramAnalyzeCostMatchesRun: the library surface's report carries
// the cost oracle's prediction, and it is integer-equal to a measured
// run of the same program — the exactness invariant through the public
// API.
func TestProgramAnalyzeCostMatchesRun(t *testing.T) {
	prog, err := dhpf.Compile(deadStoreSrc, nil, dhpf.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := prog.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cost == nil || !rep.Cost.Exact {
		t.Fatalf("analyze report missing exact cost: %+v", rep.Cost)
	}
	res, err := prog.Run(dhpf.SP2Machine(prog.Ranks()))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rep.Cost.TotalMessages(), res.Messages(); got != want {
		t.Errorf("predicted %d messages, measured %d", got, want)
	}
	if got, want := rep.Cost.TotalBytes(), res.Bytes(); got != want {
		t.Errorf("predicted %d bytes, measured %d", got, want)
	}
}
