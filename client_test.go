package dhpf_test

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"dhpf"
)

// flakyServer fails the first fail429 requests with 429, then serves
// /v1/compile by echoing the decoded source length as the rank count —
// which also proves the client re-sends the body on each attempt.
func flakyServer(t *testing.T, fail429 int) (*httptest.Server, *atomic.Int32) {
	t.Helper()
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if int(hits.Add(1)) <= fail429 {
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]string{"error": "queue full"})
			return
		}
		var req dhpf.CompileRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("attempt %d body unreadable: %v", hits.Load(), err)
		}
		json.NewEncoder(w).Encode(dhpf.CompileResponse{Ranks: len(req.Source)})
	}))
	t.Cleanup(ts.Close)
	return ts, &hits
}

func retryClient(base string, attempts int) *dhpf.Client {
	c := dhpf.NewClient(base)
	c.Retry = dhpf.RetryPolicy{MaxAttempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
	return c
}

func TestClientRetries429(t *testing.T) {
	ts, hits := flakyServer(t, 2)
	c := retryClient(ts.URL, 5)
	resp, err := c.Compile(context.Background(), dhpf.CompileRequest{Source: "abcd"})
	if err != nil {
		t.Fatalf("compile through flaky server: %v", err)
	}
	if resp.Ranks != 4 {
		t.Errorf("body not re-sent intact: got ranks=%d, want 4", resp.Ranks)
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want 3", got)
	}
}

func TestClientRetryExhaustion(t *testing.T) {
	ts, hits := flakyServer(t, 1000)
	c := retryClient(ts.URL, 3)
	_, err := c.Compile(context.Background(), dhpf.CompileRequest{Source: "x"})
	var apiErr *dhpf.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("want final 429, got %v", err)
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want exactly MaxAttempts=3", got)
	}
}

// The batch helper rides the same retry machinery as single compiles:
// a whole-batch 429 is retried with the full body re-sent each attempt.
func TestClientCompileBatchRetries429(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if int(hits.Add(1)) <= 2 {
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]string{"error": "queue full"})
			return
		}
		var req dhpf.BatchCompileRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("attempt %d body unreadable: %v", hits.Load(), err)
		}
		resp := dhpf.BatchCompileResponse{Results: make([]dhpf.BatchCompileResult, len(req.Requests))}
		for i, cr := range req.Requests {
			resp.Results[i].Response = &dhpf.CompileResponse{Ranks: len(cr.Source)}
		}
		json.NewEncoder(w).Encode(resp)
	}))
	defer ts.Close()

	c := retryClient(ts.URL, 5)
	resp, err := c.CompileBatch(context.Background(), dhpf.BatchCompileRequest{
		Requests: []dhpf.CompileRequest{{Source: "ab"}, {Source: "wxyz"}},
	})
	if err != nil {
		t.Fatalf("batch through flaky server: %v", err)
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want 3", got)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(resp.Results))
	}
	if resp.Results[0].Response.Ranks != 2 || resp.Results[1].Response.Ranks != 4 {
		t.Errorf("batch body not re-sent intact: %+v", resp.Results)
	}
}

func TestClientNoRetryByDefault(t *testing.T) {
	ts, hits := flakyServer(t, 1)
	c := dhpf.NewClient(ts.URL) // zero RetryPolicy
	if _, err := c.Compile(context.Background(), dhpf.CompileRequest{Source: "x"}); err == nil {
		t.Fatal("zero-value client retried a 429")
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("server saw %d attempts, want 1", got)
	}
}

func TestClientNoRetryOnNonRetryableStatus(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusUnprocessableEntity)
		json.NewEncoder(w).Encode(map[string]string{"error": "parse error"})
	}))
	defer ts.Close()
	c := retryClient(ts.URL, 5)
	_, err := c.Compile(context.Background(), dhpf.CompileRequest{Source: "x"})
	var apiErr *dhpf.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("want 422, got %v", err)
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("client retried a 422: %d attempts", got)
	}
}

// refuseFirstTransport simulates a daemon restart: the first fails dials
// are refused at the socket, later ones reach the real server.
type refuseFirstTransport struct {
	fails int32
	tries atomic.Int32
}

func (tr *refuseFirstTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if tr.tries.Add(1) <= tr.fails {
		return nil, &net.OpError{Op: "dial", Net: "tcp", Err: syscall.ECONNREFUSED}
	}
	return http.DefaultTransport.RoundTrip(r)
}

func TestClientRetriesConnectionRefused(t *testing.T) {
	ts, hits := flakyServer(t, 0)
	tr := &refuseFirstTransport{fails: 2}
	c := retryClient(ts.URL, 5)
	c.HTTPClient = &http.Client{Transport: tr}
	if _, err := c.Compile(context.Background(), dhpf.CompileRequest{Source: "x"}); err != nil {
		t.Fatalf("compile across refused dials: %v", err)
	}
	if got, want := tr.tries.Load(), int32(3); got != want {
		t.Errorf("%d dial attempts, want %d", got, want)
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("server saw %d requests, want 1", got)
	}
}

func TestClientRetryRespectsContext(t *testing.T) {
	ts, _ := flakyServer(t, 1000)
	c := dhpf.NewClient(ts.URL)
	c.Retry = dhpf.RetryPolicy{MaxAttempts: 1000, BaseDelay: 50 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Compile(ctx, dhpf.CompileRequest{Source: "x"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline error, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("retry loop ignored cancellation for %s", elapsed)
	}
}

func TestRetryPolicyRetryable(t *testing.T) {
	var p dhpf.RetryPolicy
	cases := []struct {
		err  error
		want bool
	}{
		{&dhpf.APIError{StatusCode: 429}, true},
		{&dhpf.APIError{StatusCode: 422}, false},
		{&dhpf.APIError{StatusCode: 504}, false},
		{&net.OpError{Op: "dial", Err: syscall.ECONNREFUSED}, true},
		{context.Canceled, false},
		{errors.New("boom"), false},
	}
	for _, tc := range cases {
		if got := p.Retryable(tc.err); got != tc.want {
			t.Errorf("Retryable(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}
