package dhpf

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (§8):
//
//	BenchmarkTable81SP / BenchmarkTable82BT  — the Class A/B comparison
//	    tables (hand-MPI vs dHPF vs PGI), via the analytic projection
//	    backed by measured reduced-size runs (run cmd/nasbench to print
//	    the full rows);
//	BenchmarkFigure81..84 — the 16-processor space–time traces;
//	BenchmarkAblation*    — the design-choice ablations DESIGN.md lists;
//	Benchmark<micro>      — substrate micro-benchmarks.
//
// Reported custom metrics carry the paper's headline quantities, e.g.
// dhpf_vs_hand(x) is the dHPF/hand-MPI execution-time ratio at 25
// processors (the paper: ≤1.33 for SP, ≤1.15 for BT).

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	// The checked-in kernel corpus: BenchmarkExecuteSPStepCodegen uses
	// the pre-generated SP kernels, no plugin build involved.
	_ "dhpf/internal/codegen/gen"
	"dhpf/internal/cp"
	"dhpf/internal/iset"
	"dhpf/internal/mpsim"
	"dhpf/internal/nas"
	"dhpf/internal/perfmodel"
	"dhpf/internal/spmd"
	"dhpf/internal/trace"
)

// --- Tables 8.1 and 8.2 ------------------------------------------------------

func benchTable(b *testing.B, bench string) {
	var lastRatio25 float64
	for i := 0; i < b.N; i++ {
		for _, class := range []nas.Class{nas.ClassA, nas.ClassB} {
			tb, err := perfmodel.BuildTable(bench, class, perfmodel.PaperProcs[bench], 4, mpsim.SP2Config(1), 8)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Log("\n" + tb.Render())
			}
			if class.Name == "A" {
				for _, r := range tb.Rows {
					if r.Procs == 25 {
						lastRatio25 = r.DHPF / r.Hand
					}
				}
			}
		}
	}
	b.ReportMetric(lastRatio25, "dhpf_vs_hand_25p")
}

// BenchmarkTable81SP regenerates Table 8.1 (SP Class A and B).
func BenchmarkTable81SP(b *testing.B) { benchTable(b, "sp") }

// BenchmarkTable82BT regenerates Table 8.2 (BT Class A and B).
func BenchmarkTable82BT(b *testing.B) { benchTable(b, "bt") }

// BenchmarkTableMeasuredSP backs the projection with a full simulated
// run of all three SP implementations at a reduced size on 4 ranks.
func BenchmarkTableMeasuredSP(b *testing.B) {
	n, steps, procs := 16, 1, 4
	var hand, dhpfT, pgi float64
	for i := 0; i < b.N; i++ {
		mp, err := nas.RunMultipart("sp", n, steps, procs, mpsim.SP2Config(procs))
		if err != nil {
			b.Fatal(err)
		}
		hand = mp.Machine.Time
		p1, p2 := nas.GridShape(procs)
		prog, err := spmd.CompileSource(nas.SPSource(n, steps, p1, p2), nil, spmd.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		res, err := prog.Execute(mpsim.SP2Config(procs))
		if err != nil {
			b.Fatal(err)
		}
		dhpfT = res.Machine.Time
		tp, err := nas.RunTranspose("sp", n, steps, procs, mpsim.SP2Config(procs))
		if err != nil {
			b.Fatal(err)
		}
		pgi = tp.Machine.Time
	}
	b.ReportMetric(hand*1e3, "hand_ms")
	b.ReportMetric(dhpfT*1e3, "dhpf_ms")
	b.ReportMetric(pgi*1e3, "pgi_ms")
}

// BenchmarkTableMeasuredBT is the BT counterpart.
func BenchmarkTableMeasuredBT(b *testing.B) {
	n, steps, procs := 12, 1, 4
	var hand, dhpfT float64
	for i := 0; i < b.N; i++ {
		mp, err := nas.RunMultipart("bt", n, steps, procs, mpsim.SP2Config(procs))
		if err != nil {
			b.Fatal(err)
		}
		hand = mp.Machine.Time
		p1, p2 := nas.GridShape(procs)
		prog, err := spmd.CompileSource(nas.BTSource(n, steps, p1, p2), nil, spmd.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		res, err := prog.Execute(mpsim.SP2Config(procs))
		if err != nil {
			b.Fatal(err)
		}
		dhpfT = res.Machine.Time
	}
	b.ReportMetric(hand*1e3, "hand_ms")
	b.ReportMetric(dhpfT*1e3, "dhpf_ms")
}

// --- Figures 8.1–8.4 ----------------------------------------------------------

func benchFigure(b *testing.B, code, version string) {
	procs, n := 16, 16
	cfg := mpsim.SP2Config(procs)
	cfg.Trace = true
	var s trace.Stats
	for i := 0; i < b.N; i++ {
		var res *mpsim.Result
		switch version {
		case "mpi":
			run, err := nas.RunMultipart(code, n, 1, procs, cfg)
			if err != nil {
				b.Fatal(err)
			}
			res = run.Machine
		case "dhpf":
			p1, p2 := nas.GridShape(procs)
			var src string
			if code == "sp" {
				src = nas.SPSource(n, 1, p1, p2)
			} else {
				src = nas.BTSource(n, 1, p1, p2)
			}
			prog, err := spmd.CompileSource(src, nil, spmd.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			er, err := prog.Execute(cfg)
			if err != nil {
				b.Fatal(err)
			}
			res = er.Machine
		}
		s = trace.Summarize(res)
		if i == 0 {
			b.Log("\n" + trace.Build(res, 100).Render(fmt.Sprintf("%s %s, 16 ranks", code, version)))
		}
	}
	b.ReportMetric(100*s.MeanIdle, "idle_pct")
	b.ReportMetric(100*s.LoadImbalance, "imbalance_pct")
}

// BenchmarkFigure81 traces the hand-MPI SP run (paper Figure 8.1).
func BenchmarkFigure81(b *testing.B) { benchFigure(b, "sp", "mpi") }

// BenchmarkFigure82 traces the dHPF-compiled SP run (Figure 8.2).
func BenchmarkFigure82(b *testing.B) { benchFigure(b, "sp", "dhpf") }

// BenchmarkFigure83 traces the hand-MPI BT run (Figure 8.3).
func BenchmarkFigure83(b *testing.B) { benchFigure(b, "bt", "mpi") }

// BenchmarkFigure84 traces the dHPF-compiled BT run (Figure 8.4).
func BenchmarkFigure84(b *testing.B) { benchFigure(b, "bt", "dhpf") }

// --- Ablations ----------------------------------------------------------------

const ablationLhsy = `
program lhsy
param N = 64
param P = 4
!hpf$ processors procs(P)
!hpf$ template tm(N, N)
!hpf$ template tline(N)
!hpf$ align lhs with tm(d0, d1)
!hpf$ align cv with tline(d0)
!hpf$ distribute tm(*, BLOCK) onto procs
!hpf$ distribute tline(BLOCK) onto procs

subroutine main()
  real lhs(0:N-1, 0:N-1)
  real cv(0:N-1)
  do j = 0, N-1
    do i = 0, N-1
      lhs(i,j) = 0.0
    enddo
  enddo
  !hpf$ independent, new(cv)
  do i = 1, N-2
    do j = 0, N-1
      cv(j) = 0.1*j + 0.01*i
    enddo
    do j = 1, N-2
      lhs(i,j) = cv(j-1) + cv(j+1)
    enddo
  enddo
end
`

// BenchmarkAblationNewProp compares the §4.1 alternatives for
// privatizable arrays, reporting the messages each plan sends: the three
// propagation modes plus dropping the newprop pass entirely (definitions
// keep their base owner-computes CPs).
func BenchmarkAblationNewProp(b *testing.B) {
	for _, m := range []struct {
		name string
		opt  spmd.Options
	}{
		{"translate", spmd.DefaultOptions()},
		{"replicate", func() spmd.Options {
			o := spmd.DefaultOptions()
			o.CP.NewProp = cp.NewPropReplicate
			return o
		}()},
		{"owner", func() spmd.Options {
			o := spmd.DefaultOptions()
			o.CP.NewProp = cp.NewPropOwner
			return o
		}()},
		{"pass-disabled", spmd.DefaultOptions().WithDisabled(PassNewProp)},
	} {
		b.Run(m.name, func(b *testing.B) {
			var msgs int64
			var sumT float64
			for i := 0; i < b.N; i++ {
				prog, err := spmd.CompileSource(ablationLhsy, nil, m.opt)
				if err != nil {
					b.Fatal(err)
				}
				res, err := prog.Execute(mpsim.SP2Config(4))
				if err != nil {
					b.Fatal(err)
				}
				msgs = res.Machine.TotalMessages()
				sumT = 0
				for _, t := range res.Machine.RankTime {
					sumT += t
				}
			}
			b.ReportMetric(float64(msgs), "messages")
			b.ReportMetric(sumT*1e6, "sum_rank_us")
		})
	}
}

// BenchmarkAblationLocalize compares SP's compute_rhs communication with
// the LOCALIZE pass in and out of the pipeline.
func BenchmarkAblationLocalize(b *testing.B) {
	src := nas.SPSource(16, 1, 2, 2)
	for _, on := range []bool{true, false} {
		b.Run(fmt.Sprintf("localize=%v", on), func(b *testing.B) {
			opt := spmd.DefaultOptions()
			if !on {
				opt = opt.WithDisabled(PassLocalize)
			}
			var bytes int64
			for i := 0; i < b.N; i++ {
				prog, err := spmd.CompileSource(src, nil, opt)
				if err != nil {
					b.Fatal(err)
				}
				res, err := prog.Execute(mpsim.SP2Config(4))
				if err != nil {
					b.Fatal(err)
				}
				bytes = res.Machine.TotalBytes()
			}
			b.ReportMetric(float64(bytes), "bytes")
		})
	}
}

// BenchmarkAblationAvailability counts eliminated communication events
// with the §7 availability pass in and out of the pipeline.
func BenchmarkAblationAvailability(b *testing.B) {
	src := nas.SPSource(16, 1, 2, 2)
	for _, on := range []bool{true, false} {
		b.Run(fmt.Sprintf("avail=%v", on), func(b *testing.B) {
			opt := spmd.DefaultOptions()
			if !on {
				opt = opt.WithDisabled(PassAvailability)
			}
			elim := 0
			for i := 0; i < b.N; i++ {
				prog, err := spmd.CompileSource(src, nil, opt)
				if err != nil {
					b.Fatal(err)
				}
				elim = 0
				for _, an := range prog.Comm {
					for _, e := range an.Events {
						if e.Eliminated {
							elim++
						}
					}
				}
			}
			b.ReportMetric(float64(elim), "eliminated_events")
		})
	}
}

// BenchmarkAblationPipelineGrain sweeps the coarse-grain pipelining
// strip width on the projected SP time at 16 processors — the trade-off
// the paper says dHPF leaves on the table by using one global value.
func BenchmarkAblationPipelineGrain(b *testing.B) {
	for _, g := range []int{1, 4, 8, 16, 31, 62} {
		b.Run(fmt.Sprintf("grain=%d", g), func(b *testing.B) {
			var t float64
			for i := 0; i < b.N; i++ {
				v, err := perfmodel.PredictDHPF(perfmodel.Input{
					Bench: "sp", N: 64, Steps: 1, Procs: 16,
					Cfg: mpsim.SP2Config(16), PipelineGrain: g,
				})
				if err != nil {
					b.Fatal(err)
				}
				t = v
			}
			b.ReportMetric(t*1e3, "projected_ms")
		})
	}
}

// --- Micro-benchmarks of the substrates ---------------------------------------

// BenchmarkISetSubtract exercises the set algebra on stencil-shaped
// overlaps — the inner loop of every communication analysis.
func BenchmarkISetSubtract(b *testing.B) {
	a := iset.FromBox(iset.NewBox([]int{0, 0, 0}, []int{63, 63, 63}))
	c := iset.FromBox(iset.NewBox([]int{1, 1, 1}, []int{62, 62, 62}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Subtract(c)
	}
}

// BenchmarkCompileSP measures the whole compilation pipeline on SP.
func BenchmarkCompileSP(b *testing.B) {
	src := nas.SPSource(32, 2, 2, 2)
	for i := 0; i < b.N; i++ {
		if _, err := spmd.CompileSource(src, nil, spmd.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileBT measures the whole compilation pipeline on BT,
// whose block-tridiagonal solves stress interprocedural CP translation
// harder than SP.
func BenchmarkCompileBT(b *testing.B) {
	src := nas.BTSource(24, 2, 2, 2)
	for i := 0; i < b.N; i++ {
		if _, err := spmd.CompileSource(src, nil, spmd.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecuteSPStep measures the simulated execution of one SP step
// on 4 ranks under the default compiled engine; BenchmarkExecuteSPStepInterp
// is the tree-walking reference baseline the speedup is quoted against.
func BenchmarkExecuteSPStep(b *testing.B)       { benchExecuteSPStep(b, spmd.EngineCompiled) }
func BenchmarkExecuteSPStepInterp(b *testing.B) { benchExecuteSPStep(b, spmd.EngineInterp) }

// BenchmarkExecuteSPStepShm is the same step on the shared-memory
// backend: one 4-thread team, barrier phases in place of messages.
// tools/benchjson pairs it with BenchmarkExecuteSPStep to quote the
// shm-vs-mp host-time ratio.
func BenchmarkExecuteSPStepShm(b *testing.B) {
	opt := spmd.DefaultOptions()
	opt.Backend = BackendShm
	benchExecuteSPStepOpt(b, spmd.EngineCompiled, opt)
}

// BenchmarkExecuteSPStepCodegen is the same step under the native
// codegen tier: the checked-in gen corpus pre-registers SP's kernels
// (no plugin build in the loop), and results stay Float64bits-identical
// to both other engines.  tools/benchjson -check gates the ratio
// against BenchmarkExecuteSPStep.
func BenchmarkExecuteSPStepCodegen(b *testing.B) { benchExecuteSPStep(b, spmd.EngineCodegen) }

// BenchmarkExecuteSPStepWallClock and its Pinned twin run the identical
// simulation under the two goroutine-placement regimes — the Go
// scheduler's default multiplexing vs Config.PinOSThreads locking each
// rank onto its own OS thread — so the claim that pinning maps ranks
// onto hardware threads is measured wall-clock, not asserted.  Virtual
// results are bit-identical either way.
func BenchmarkExecuteSPStepWallClock(b *testing.B)       { benchExecuteSPStepPin(b, false) }
func BenchmarkExecuteSPStepWallClockPinned(b *testing.B) { benchExecuteSPStepPin(b, true) }

func benchExecuteSPStepPin(b *testing.B, pin bool) {
	prog, err := spmd.CompileSource(nas.SPSource(16, 1, 2, 2), nil, spmd.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	cfg := mpsim.SP2Config(4)
	cfg.PinOSThreads = pin
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prog.ExecuteEngine(cfg, spmd.EngineCompiled); err != nil {
			b.Fatal(err)
		}
	}
}

func benchExecuteSPStep(b *testing.B, engine spmd.Engine) {
	benchExecuteSPStepOpt(b, engine, spmd.DefaultOptions())
}

func benchExecuteSPStepOpt(b *testing.B, engine spmd.Engine, opt spmd.Options) {
	prog, err := spmd.CompileSource(nas.SPSource(16, 1, 2, 2), nil, opt)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prog.ExecuteEngine(mpsim.SP2Config(4), engine); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultipartStep measures the hand-coded multipartitioning step.
func BenchmarkMultipartStep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := nas.RunMultipart("sp", 24, 1, 16, mpsim.SP2Config(16)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMPSimPingPong measures the virtual machine's message path.
func BenchmarkMPSimPingPong(b *testing.B) {
	cfg := mpsim.SP2Config(2)
	for i := 0; i < b.N; i++ {
		mpsim.Run(cfg, func(r *mpsim.Rank) {
			buf := make([]float64, 128)
			for k := 0; k < 100; k++ {
				if r.ID == 0 {
					r.Send(1, k, buf)
					r.Recv(1, 1000+k)
				} else {
					r.Recv(0, k)
					r.Send(0, 1000+k, buf)
				}
			}
		})
	}
}

// BenchmarkLUWavefront runs the LU-extension's 2-D diagonal wavefront
// (the "line-sweeps in multiple physical dimensions" code class the
// paper's conclusion raises) on 4 simulated ranks under the compiled
// engine; BenchmarkLUWavefrontInterp is the interpreter baseline.
func BenchmarkLUWavefront(b *testing.B)       { benchLUWavefront(b, spmd.EngineCompiled) }
func BenchmarkLUWavefrontInterp(b *testing.B) { benchLUWavefront(b, spmd.EngineInterp) }

func benchLUWavefront(b *testing.B, engine spmd.Engine) {
	prog, err := spmd.CompileSource(nas.LUSource(16, 1, 2, 2), nil, spmd.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	var vt float64
	for i := 0; i < b.N; i++ {
		res, err := prog.ExecuteEngine(mpsim.SP2Config(4), engine)
		if err != nil {
			b.Fatal(err)
		}
		vt = res.Machine.Time
	}
	b.ReportMetric(vt*1e3, "virtual_ms")
}

// --- Incremental compilation -------------------------------------------------

// warmEdit produces the i-th distinct one-constant edit of the modular
// SP source (the CoefAdd term inside the add procedure), so every
// benchmark iteration is a genuine warm edit, never a program-level
// cache hit.
func warmEdit(b *testing.B, base string, i int) string {
	edited := strings.Replace(base, " + 0.1*(rhs(1",
		fmt.Sprintf(" + 0.1%04d*(rhs(1", i%9999+1), 1)
	if edited == base {
		b.Fatal("warm-edit marker not found in SPModSource output")
	}
	return edited
}

func p50ns(durs []time.Duration) float64 {
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	return float64(durs[len(durs)/2].Nanoseconds())
}

// BenchmarkWarmEditRecompile measures the warm-edit recompile latency of
// the modular SP program: one procedure (add) is edited each iteration
// and recompiled through the per-procedure artifact store, thawing every
// unchanged procedure's dependence graph, communication plan and
// verification fragment.  The p50_ns metric is gated against
// BenchmarkWarmEditRecompileCold by tools/benchjson -check (warm must be
// ≥10× faster at p50).
func BenchmarkWarmEditRecompile(b *testing.B) {
	base := nas.SPModSource(32, 2, 2, 2)
	inc := NewIncremental(0)
	if _, _, err := inc.Compile(base, nil, DefaultOptions()); err != nil {
		b.Fatal(err)
	}
	durs := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := warmEdit(b, base, i)
		t0 := time.Now()
		_, delta, err := inc.Compile(src, nil, DefaultOptions())
		durs = append(durs, time.Since(t0))
		if err != nil {
			b.Fatal(err)
		}
		if delta.Dirty >= delta.Procs {
			b.Fatalf("warm edit dirtied every procedure: %v", delta)
		}
	}
	b.ReportMetric(p50ns(durs), "p50_ns")
}

// BenchmarkWarmEditRecompileCold is the baseline: the same per-iteration
// edits compiled cold through the full pipeline.
func BenchmarkWarmEditRecompileCold(b *testing.B) {
	base := nas.SPModSource(32, 2, 2, 2)
	durs := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := warmEdit(b, base, i)
		t0 := time.Now()
		_, err := Compile(src, nil, DefaultOptions())
		durs = append(durs, time.Since(t0))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(p50ns(durs), "p50_ns")
}
