package analysis_test

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dhpf/internal/parser"
	"dhpf/internal/spmd"
)

// fuzzCorpus seeds the fuzzer with every shipped mini-HPF program.
func fuzzCorpus(f *testing.F) {
	f.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.hpf"))
	if err != nil || len(paths) == 0 {
		f.Fatalf("no corpus: %v", err)
	}
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
}

// FuzzAnalyze: any mutation of the corpus must either fail to parse,
// fail to compile with a diagnostic, or analyze — never panic.  For
// every mutant that compiles, the analyzer must be deterministic (two
// fresh runs over the same program render byte-identical reports) and
// the cost oracle must never produce a negative counter: the
// guarantees every surface (-analyze, /v1/analyze, the tuner's static
// screen) is built on.
func FuzzAnalyze(f *testing.F) {
	fuzzCorpus(f)
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<15 {
			t.Skip("oversized input")
		}
		if _, err := parser.Parse(src); err != nil {
			return // parse failure is an accepted outcome
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		prog, err := spmd.CompileSourceCtx(ctx, src, nil, spmd.DefaultOptions())
		if err != nil {
			return // compile diagnostics are an accepted outcome
		}
		if prog.Grid.Size() > 32 {
			t.Skip("fuzzed grid too large to analyze cheaply")
		}
		res, err := prog.Analyze()
		if err != nil {
			return // malformed-input error, still no panic
		}
		// Determinism: a second analysis from freshly built inputs must
		// render the identical report (map iteration anywhere in the
		// walk would surface here).
		again, err := prog.Analyze()
		if err != nil {
			t.Fatalf("second analysis failed after first succeeded: %v", err)
		}
		if a, b := res.Text(), again.Text(); a != b {
			t.Fatalf("analysis not deterministic:\n--- first ---\n%s\n--- second ---\n%s", a, b)
		}
		cost, err := prog.PredictCost()
		if err != nil {
			return
		}
		for r, fl := range cost.Flops {
			if fl < 0 {
				t.Fatalf("negative flops on rank %d: %g", r, fl)
			}
		}
		for _, counters := range [][]int64{cost.SentMsgs, cost.SentBytes, cost.RecvMsgs, cost.Pulls, cost.PulledBytes} {
			for r, c := range counters {
				if c < 0 {
					t.Fatalf("negative counter on rank %d: %d", r, c)
				}
			}
		}
		if cost.Barriers < 0 {
			t.Fatalf("negative barrier count: %d", cost.Barriers)
		}
	})
}
