package analysis

import (
	"fmt"
	"sort"
	"strings"

	"dhpf/internal/comm"
	"dhpf/internal/cp"
	"dhpf/internal/hpf"
	"dhpf/internal/ir"
	"dhpf/internal/iset"
)

// ProcSummary holds the symbolic summaries of one procedure's phases.
// A phase is one top-level statement — the granularity at which the
// paper's communication placement and the dataflow lattice operate.
type ProcSummary struct {
	Proc   string         `json:"proc"`
	Phases []PhaseSummary `json:"phases"`
}

// PhaseSummary is one phase's closed-form account: its loop nests with
// symbolic trip counts, total flops, per-array read/write footprints,
// and the communication volume its events move, per rank.
type PhaseSummary struct {
	Index int    `json:"index"`
	Stmt  int    `json:"stmt"`
	Kind  string `json:"kind"` // "loop", "assign", "call" or "if"

	Loops  []LoopSummary `json:"loops,omitempty"`
	Flops  float64       `json:"flops"` // executed instances × per-instance cost, summed over ranks
	Reads  []Footprint   `json:"reads,omitempty"`
	Writes []Footprint   `json:"writes,omitempty"`

	CommEvents  int     `json:"comm_events,omitempty"`
	CommElems   int64   `json:"comm_elems,omitempty"`
	PerRankComm []int64 `json:"per_rank_comm,omitempty"` // elements sent per rank, vectorized
}

// LoopSummary is one loop's symbolic bounds and trip count.
type LoopSummary struct {
	Stmt   int    `json:"stmt"`
	Var    string `json:"var"`
	Bounds string `json:"bounds"` // "lo : hi" in program parameters
	Trip   string `json:"trip"`   // closed-form trip count
	Points int64  `json:"points"` // trip count under the bound parameters
}

// Footprint is the section of one array a phase reads or writes.
type Footprint struct {
	Array string `json:"array"`
	Set   string `json:"set"` // rendered iset
	Elems int64  `json:"elems"`
}

// summarizeProc builds the per-phase symbolic summaries of a procedure
// under the program's bound parameters.  Footprints come from the
// scratch's shared phase IO (which also resolves calls through callee
// interfaces); iteration sets are memoized per (statement, rank).
func summarizeProc(in *Input, grid *hpf.Grid, proc *ir.Procedure, sc *procScratch) (*ProcSummary, error) {
	ps := &ProcSummary{Proc: proc.Name}
	bind := in.Ctx.Bind.Params
	for idx, s := range proc.Body {
		ph := PhaseSummary{Index: idx, Stmt: s.StmtID(), Kind: stmtKind(s)}

		ir.Walk([]ir.Stmt{s}, func(st ir.Stmt, loops []*ir.Loop) bool {
			switch x := st.(type) {
			case *ir.Loop:
				lo, hi := x.Lo, x.Hi
				if x.Step < 0 {
					lo, hi = hi, lo
				}
				trip := hi.Sub(lo).AddConst(1)
				pts := int64(trip.EvalOr(bind, 0))
				if pts < 0 {
					pts = 0
				}
				ph.Loops = append(ph.Loops, LoopSummary{
					Stmt:   x.ID,
					Var:    x.Var,
					Bounds: fmt.Sprintf("%s : %s", x.Lo.String(), x.Hi.String()),
					Trip:   trip.String(),
					Points: pts,
				})
			case *ir.Assign:
				nest := append([]*ir.Loop(nil), loops...)
				ph.Flops += FlopsOf(x) * float64(executedInstances(in, grid, proc, x.ID, nest, sc))
			}
			return true
		})
		ph.Reads = footprints(sc.phases[idx].reads)
		ph.Writes = footprints(sc.phases[idx].writes)

		// Communication: every live event anchored anywhere inside the
		// phase, priced by its fully-vectorized transfer plan.
		if an := in.Comm[proc.Name]; an != nil {
			ids := stmtIDs(s)
			perRank := make([]int64, grid.Size())
			for _, e := range an.Events {
				if e.Eliminated || !ids[e.Stmt.ID] {
					continue
				}
				ph.CommEvents++
				vars := ir.NestVars(e.Nest)
				layout := in.Ctx.Layout(proc, e.Ref.Name)
				if layout == nil {
					continue
				}
				for t := 0; t < grid.Size(); t++ {
					iters := sc.iterSet(in, proc, e.Stmt.ID, e.Nest, t)
					if iters.IsEmpty() {
						continue
					}
					nl := sc.nonLocal(in, proc, e.Stmt.ID, e.Ref, vars, iters, t)
					if nl.IsEmpty() {
						continue
					}
					for peer := 0; peer < grid.Size(); peer++ {
						if peer == t {
							continue
						}
						part := nl.IntersectBox(layout.LocalBox(peer))
						if part.IsEmpty() {
							continue
						}
						n := part.Card()
						ph.CommElems += n
						if e.Kind == comm.ReadComm {
							perRank[peer] += n // peer sends to t
						} else {
							perRank[t] += n // t writes back to peer
						}
					}
				}
			}
			if ph.CommEvents > 0 {
				ph.PerRankComm = perRank
			}
		}
		ps.Phases = append(ps.Phases, ph)
	}
	return ps, nil
}

// executedInstances counts, across all ranks, how many instances of the
// statement execute per phase execution — the iteration-set cardinality
// summed over the grid (replicated boundary work counts once per
// executing rank, matching what the machines charge).
func executedInstances(in *Input, grid *hpf.Grid, proc *ir.Procedure, id int, nest []*ir.Loop, sc *procScratch) int64 {
	var total int64
	for r := 0; r < grid.Size(); r++ {
		total += sc.iterSet(in, proc, id, nest, r).Card()
	}
	return total
}

func addFootprint(acc map[string]iset.Set, ref *ir.ArrayRef, vars []string, ibox iset.Box, bind map[string]int) {
	if ref == nil || len(ref.Subs) == 0 {
		return
	}
	data := cp.RefDataSet(ref, vars, iset.FromBox(ibox), bind)
	if cur, ok := acc[ref.Name]; ok {
		acc[ref.Name] = cur.Union(data)
	} else {
		acc[ref.Name] = data
	}
}

func footprints(m map[string]iset.Set) []Footprint {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Footprint, 0, len(names))
	for _, n := range names {
		out = append(out, Footprint{Array: n, Set: m[n].String(), Elems: m[n].Card()})
	}
	return out
}

func stmtKind(s ir.Stmt) string {
	switch s.(type) {
	case *ir.Loop:
		return "loop"
	case *ir.Assign:
		return "assign"
	case *ir.CallStmt:
		return "call"
	case *ir.IfStmt:
		return "if"
	}
	return "stmt"
}

// stmtIDs collects every statement ID inside a phase subtree.
func stmtIDs(s ir.Stmt) map[int]bool {
	ids := map[int]bool{}
	ir.Walk([]ir.Stmt{s}, func(st ir.Stmt, _ []*ir.Loop) bool {
		ids[st.StmtID()] = true
		return true
	})
	return ids
}

// Text renders the whole result in the stable human-readable form the
// golden summary files pin: procedures in program order, phases in
// statement order, arrays sorted.
func (r *Result) Text() string {
	var b strings.Builder
	for _, p := range r.Procs {
		fmt.Fprintf(&b, "proc %s\n", p.Proc)
		for _, ph := range p.Phases {
			fmt.Fprintf(&b, "  phase %d  stmt %d  %s\n", ph.Index, ph.Stmt, ph.Kind)
			for _, l := range ph.Loops {
				fmt.Fprintf(&b, "    loop %s = %s  trip %s (%d)\n", l.Var, l.Bounds, l.Trip, l.Points)
			}
			if ph.Flops > 0 {
				fmt.Fprintf(&b, "    flops %.0f\n", ph.Flops)
			}
			for _, f := range ph.Writes {
				fmt.Fprintf(&b, "    writes %s %s (%d)\n", f.Array, f.Set, f.Elems)
			}
			for _, f := range ph.Reads {
				fmt.Fprintf(&b, "    reads  %s %s (%d)\n", f.Array, f.Set, f.Elems)
			}
			if ph.CommEvents > 0 {
				fmt.Fprintf(&b, "    comm   %d events, %d elems, per-rank %v\n",
					ph.CommEvents, ph.CommElems, ph.PerRankComm)
			}
		}
	}
	for _, d := range r.Diagnostics {
		fmt.Fprintf(&b, "%s\n", d.String())
	}
	return b.String()
}
