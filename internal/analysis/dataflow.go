package analysis

import (
	"fmt"
	"sort"

	"dhpf/internal/comm"
	"dhpf/internal/cp"
	"dhpf/internal/hpf"
	"dhpf/internal/ir"
	"dhpf/internal/iset"
	"dhpf/internal/verify"
)

// dataflow.go is the distributed-array use-def layer.  The lattice is
// deliberately coarse — per phase (top-level statement), per array, an
// iset of defined elements — because that is the granularity at which
// the pipeline places communication, and it keeps every transfer
// attributable to a phase boundary.  Within a phase, reads may consume
// values the same nest produced in earlier iterations (loop-carried
// flow), so a phase's own writes always count as definitions for its
// reads; the checks are therefore sound for reporting (no false ERROR
// on a legal program) rather than complete.
//
// Checks:
//
//	readbeforedef — an element of a distributed array is read by a
//	    phase although no earlier phase (nor the phase itself, nor a
//	    formal binding) defines it.  ERROR: the executed program reads
//	    unset storage.
//	deadstore — a phase's write is entirely overwritten by a later
//	    phase with no intervening (or overwriting-phase) read.  WARN.
//	deadcomm — a live read-communication event transfers elements the
//	    anchored statement never reads.  WARN: the plan moves dead data.
//	redundantwb — a live write-back event that the redundancy
//	    eliminator proves unnecessary.  WARN (appears when the wbelim
//	    pass is ablated or miswired).
type phaseIO struct {
	stmt   int
	reads  map[string]iset.Set
	writes map[string]iset.Set
}

// dataflowProc runs the dataflow checks for one procedure.  The phase
// footprints and iteration sets come pre-computed from the scratch
// shared with the summary layer.
func dataflowProc(in *Input, grid *hpf.Grid, proc *ir.Procedure, sc *procScratch) []verify.Diagnostic {
	var diags []verify.Diagnostic
	phases := sc.phases

	// Formal arrays are defined by the caller; everything else starts
	// undefined.
	defined := map[string]iset.Set{}
	formal := map[string]bool{}
	for _, f := range proc.Formals {
		formal[f] = true
	}
	for _, d := range proc.Decls {
		if d.Rank() == 0 || !formal[d.Name] {
			continue
		}
		defined[d.Name] = iset.FromBox(declBox(d, in.Ctx.Bind.Params))
	}

	// readbeforedef: forward scan.
	for _, ph := range phases {
		for _, name := range sortFootprintNames(ph.reads) {
			missing := ph.reads[name]
			if w, ok := ph.writes[name]; ok {
				missing = missing.Subtract(w)
			}
			if def, ok := defined[name]; ok {
				missing = missing.Subtract(def)
			}
			if !missing.IsEmpty() {
				diags = append(diags, verify.Diagnostic{
					Check:    CheckReadBeforeDef,
					Severity: verify.Error,
					Proc:     proc.Name,
					Stmt:     ph.stmt,
					Ref:      name,
					Set:      missing.String(),
					Why:      fmt.Sprintf("reads %d element(s) of %s no earlier phase defines", missing.Card(), name),
				})
			}
		}
		for name, w := range ph.writes {
			if def, ok := defined[name]; ok {
				defined[name] = def.Union(w)
			} else {
				defined[name] = w
			}
		}
	}

	// deadstore: every write looks for a later covering write with no
	// intervening read of the overwritten section.
	for i, ph := range phases {
		for _, name := range sortFootprintNames(ph.writes) {
			w := ph.writes[name]
			live := false
			dead := false
			for j := i + 1; j < len(phases) && !live && !dead; j++ {
				if r, ok := phases[j].reads[name]; ok && !r.Intersect(w).IsEmpty() {
					live = true
					break
				}
				if w2, ok := phases[j].writes[name]; ok && w.SubsetOf(w2) {
					dead = true
					diags = append(diags, verify.Diagnostic{
						Check:    CheckDeadStore,
						Severity: verify.Warning,
						Proc:     proc.Name,
						Stmt:     ph.stmt,
						Ref:      name,
						Set:      w.String(),
						Why: fmt.Sprintf("store to %s is overwritten by stmt %d before any read",
							name, phases[j].stmt),
					})
				}
			}
		}
	}

	diags = append(diags, deadCommDiags(in, grid, proc, sc)...)
	diags = append(diags, redundantWBDiags(in, proc)...)
	return diags
}

// procPhases returns the memoized phase footprints of a procedure:
// each top-level statement's read and write footprints under the bound
// parameters, with calls contributing their callee's interface
// translated through the formal/actual aliasing.
func (in *Input) procPhases(proc *ir.Procedure) []phaseIO {
	in.memoMu.Lock()
	defer in.memoMu.Unlock()
	return in.phasesLocked(proc)
}

func (in *Input) phasesLocked(proc *ir.Procedure) []phaseIO {
	if ph, ok := in.phIO[proc.Name]; ok {
		return ph
	}
	bind := in.Ctx.Bind.Params
	out := make([]phaseIO, 0, len(proc.Body))
	for _, s := range proc.Body {
		ph := phaseIO{stmt: s.StmtID(), reads: map[string]iset.Set{}, writes: map[string]iset.Set{}}
		in.collectIOLocked(s, bind, ph.reads, ph.writes)
		out = append(out, ph)
	}
	if in.phIO == nil {
		in.phIO = map[string][]phaseIO{}
	}
	in.phIO[proc.Name] = out
	return out
}

// procIO is a procedure's interface footprint per formal array:
// upward-exposed reads (not covered by the callee's own earlier writes)
// and total writes.
type procIO struct {
	reads  map[string]iset.Set
	writes map[string]iset.Set
}

// ifaceLocked derives a procedure's interface from its memoized phase
// footprints.  Callers hold in.memoMu.
func (in *Input) ifaceLocked(proc *ir.Procedure) *procIO {
	if io, ok := in.ifaces[proc.Name]; ok {
		return io
	}
	// Mark in-progress to break (illegal, parser-rejected) cycles.
	io := &procIO{reads: map[string]iset.Set{}, writes: map[string]iset.Set{}}
	if in.ifaces == nil {
		in.ifaces = map[string]*procIO{}
	}
	in.ifaces[proc.Name] = io
	formal := map[string]bool{}
	for _, f := range proc.Formals {
		formal[f] = true
	}
	defined := map[string]iset.Set{}
	for _, ph := range in.phasesLocked(proc) {
		for name, r := range ph.reads {
			if !formal[name] {
				continue
			}
			exposed := r
			if w, ok := ph.writes[name]; ok {
				exposed = exposed.Subtract(w)
			}
			if def, ok := defined[name]; ok {
				exposed = exposed.Subtract(def)
			}
			if exposed.IsEmpty() {
				continue
			}
			if cur, ok := io.reads[name]; ok {
				io.reads[name] = cur.Union(exposed)
			} else {
				io.reads[name] = exposed
			}
		}
		for name, w := range ph.writes {
			if def, ok := defined[name]; ok {
				defined[name] = def.Union(w)
			} else {
				defined[name] = w
			}
			if !formal[name] {
				continue
			}
			if cur, ok := io.writes[name]; ok {
				io.writes[name] = cur.Union(w)
			} else {
				io.writes[name] = w
			}
		}
	}
	return io
}

// collectIOLocked accumulates the read/write footprints of one
// statement subtree into the maps, resolving calls through procedure
// interfaces.  Callers hold in.memoMu.
func (in *Input) collectIOLocked(s ir.Stmt, bind map[string]int, reads, writes map[string]iset.Set) {
	ir.Walk([]ir.Stmt{s}, func(st ir.Stmt, loops []*ir.Loop) bool {
		switch x := st.(type) {
		case *ir.Assign:
			nest := append([]*ir.Loop(nil), loops...)
			vars := ir.NestVars(nest)
			ibox := cp.IterBox(nest, bind)
			addFootprint(writes, x.LHS, vars, ibox, bind)
			ir.WalkExpr(x.RHS, func(e ir.Expr) {
				if r, ok := e.(*ir.ArrayRef); ok {
					addFootprint(reads, r, vars, ibox, bind)
				}
			})
		case *ir.CallStmt:
			callee := in.IR.Proc(x.Callee)
			if callee == nil {
				return true
			}
			io := in.ifaceLocked(callee)
			for k, formalName := range callee.Formals {
				if k >= len(x.Args) {
					break
				}
				arg, ok := x.Args[k].(*ir.ArrayRef)
				if !ok || len(arg.Subs) != 0 {
					continue
				}
				// Aliased whole-array actual: the callee's interface
				// footprints apply verbatim (same geometry).
				if r, ok := io.reads[formalName]; ok {
					if cur, ok := reads[arg.Name]; ok {
						reads[arg.Name] = cur.Union(r)
					} else {
						reads[arg.Name] = r
					}
				}
				if w, ok := io.writes[formalName]; ok {
					if cur, ok := writes[arg.Name]; ok {
						writes[arg.Name] = cur.Union(w)
					} else {
						writes[arg.Name] = w
					}
				}
			}
		}
		return true
	})
}

func declBox(d *ir.Decl, bind map[string]int) iset.Box {
	lo := make([]int, d.Rank())
	hi := make([]int, d.Rank())
	for k := range d.LB {
		lo[k] = d.LB[k].EvalOr(bind, 0)
		hi[k] = d.UB[k].EvalOr(bind, 0)
	}
	return iset.Box{Lo: lo, Hi: hi}
}

// deadCommDiags flags live read-communication events that move
// elements the anchored statement's references never read: the
// transferred non-local section must be covered by the union of the
// statement's own reads of that array.
func deadCommDiags(in *Input, grid *hpf.Grid, proc *ir.Procedure, sc *procScratch) []verify.Diagnostic {
	an := in.Comm[proc.Name]
	if an == nil {
		return nil
	}
	var diags []verify.Diagnostic
	for _, e := range an.Events {
		if e.Kind != comm.ReadComm || e.Eliminated {
			continue
		}
		layout := in.Ctx.Layout(proc, e.Ref.Name)
		if layout == nil {
			continue
		}
		vars := ir.NestVars(e.Nest)
		var refs []*ir.ArrayRef
		ir.WalkExpr(e.Stmt.RHS, func(x ir.Expr) {
			if r, ok := x.(*ir.ArrayRef); ok && r.Name == e.Ref.Name {
				refs = append(refs, r)
			}
		})
		dead := iset.EmptySet(len(e.Ref.Subs))
		for t := 0; t < grid.Size(); t++ {
			iters := sc.iterSet(in, proc, e.Stmt.ID, e.Nest, t)
			if iters.IsEmpty() {
				continue
			}
			moved := sc.nonLocal(in, proc, e.Stmt.ID, e.Ref, vars, iters, t)
			if moved.IsEmpty() {
				continue
			}
			needed := iset.EmptySet(len(e.Ref.Subs))
			for _, r := range refs {
				needed = needed.Union(sc.nonLocal(in, proc, e.Stmt.ID, r, vars, iters, t))
			}
			dead = dead.Union(moved.Subtract(needed))
		}
		if !dead.IsEmpty() {
			diags = append(diags, verify.Diagnostic{
				Check:    CheckDeadComm,
				Severity: verify.Warning,
				Proc:     proc.Name,
				Stmt:     e.Stmt.ID,
				Ref:      e.Ref.String(),
				Set:      dead.String(),
				Why: fmt.Sprintf("communication for %s moves %d element(s) the statement never reads",
					e.Ref.Name, dead.Card()),
			})
		}
	}
	return diags
}

// redundantWBDiags re-derives write-back redundancy on a copy of the
// live events: anything the eliminator would remove but the plan still
// carries is flagged (the wbelim pass was ablated or missed it).
func redundantWBDiags(in *Input, proc *ir.Procedure) []verify.Diagnostic {
	an := in.Comm[proc.Name]
	if an == nil {
		return nil
	}
	var clones []*comm.Event
	var originals []*comm.Event
	for _, e := range an.Events {
		if e.Kind != comm.WriteBack || e.Eliminated {
			continue
		}
		cp := *e
		clones = append(clones, &cp)
		originals = append(originals, e)
	}
	if len(clones) == 0 {
		return nil
	}
	shadow := comm.Restore(proc, clones, nil)
	comm.ApplyWritebackElim(in.Ctx, in.Sel, shadow)
	var diags []verify.Diagnostic
	for i, cl := range clones {
		if !cl.Eliminated {
			continue
		}
		e := originals[i]
		diags = append(diags, verify.Diagnostic{
			Check:    CheckRedundantWB,
			Severity: verify.Warning,
			Proc:     proc.Name,
			Stmt:     e.Stmt.ID,
			Ref:      e.Ref.String(),
			Why:      "write-back is provably redundant; the eliminator pass would remove it",
		})
	}
	return diags
}

// sortFootprintNames is a tiny helper kept for deterministic iteration
// over footprint maps in diagnostics-producing code.
func sortFootprintNames(m map[string]iset.Set) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
