package analysis_test

// The exactness invariant: analysis.Predict must agree integer for
// integer (and bit for bit on flops) with what the virtual machines
// measure, on every affine program, under every pass ablation, on all
// three backends.  This is the static-analysis sibling of the
// "incremental ≡ cold" and "shm ≡ mp" invariants: the oracle is not a
// model of the executor, it *is* the executor minus the values.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dhpf/internal/mpsim"
	"dhpf/internal/nas"
	"dhpf/internal/passes"
	"dhpf/internal/spmd"
)

func exactMachine(p int) mpsim.Config {
	return mpsim.Config{
		Procs:        p,
		SendOverhead: 1e-6,
		RecvOverhead: 1e-6,
		Latency:      10e-6,
		GapPerByte:   1e-8,
		FlopTime:     1e-8,
		WallLimit:    5 * time.Second,
	}
}

// requireExact compiles src for the backend, predicts, executes, and
// fails on any counter mismatch.
func requireExact(t *testing.T, src string, opt spmd.Options, backend string) {
	t.Helper()
	opt.Backend = backend
	prog, err := spmd.CompileSource(src, nil, opt)
	if err != nil {
		t.Fatalf("compile (backend %s): %v", backend, err)
	}
	cost, err := prog.PredictCost()
	if err != nil {
		t.Fatalf("predict: %v", err)
	}
	if !cost.Exact {
		t.Fatalf("predict degraded to inexact on an affine program")
	}
	res, err := prog.Execute(exactMachine(prog.Grid.Size()))
	if errors.Is(err, mpsim.ErrWallLimit) {
		t.Skipf("wall limit hit measuring the reference: %v", err)
	}
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	m := res.Machine
	if cost.Ranks != m.Procs {
		t.Fatalf("ranks: predicted %d, measured %d", cost.Ranks, m.Procs)
	}
	for r := 0; r < m.Procs; r++ {
		if cost.Flops[r] != m.RankFlops[r] {
			t.Errorf("rank %d flops: predicted %v, measured %v", r, cost.Flops[r], m.RankFlops[r])
		}
		if cost.SentMsgs[r] != m.SentMsgs[r] {
			t.Errorf("rank %d sent msgs: predicted %d, measured %d", r, cost.SentMsgs[r], m.SentMsgs[r])
		}
		if cost.SentBytes[r] != m.SentBytes[r] {
			t.Errorf("rank %d sent bytes: predicted %d, measured %d", r, cost.SentBytes[r], m.SentBytes[r])
		}
		if cost.RecvMsgs[r] != m.RecvMsgs[r] {
			t.Errorf("rank %d recv msgs: predicted %d, measured %d", r, cost.RecvMsgs[r], m.RecvMsgs[r])
		}
	}
	if backend != passes.BackendMP {
		sm := res.Shm
		if sm == nil {
			t.Fatalf("backend %s run returned no shm counters", backend)
		}
		for th := 0; th < sm.Threads; th++ {
			if cost.Pulls[th] != sm.Pulls[th] {
				t.Errorf("thread %d pulls: predicted %d, measured %d", th, cost.Pulls[th], sm.Pulls[th])
			}
			if cost.PulledBytes[th] != sm.PulledBytes[th] {
				t.Errorf("thread %d pulled bytes: predicted %d, measured %d", th, cost.PulledBytes[th], sm.PulledBytes[th])
			}
		}
		// shm.Result.Barriers is the team total: threads × collectives.
		if want := cost.Barriers; want != sm.Barriers {
			t.Errorf("barriers: predicted %d, measured %d", want, sm.Barriers)
		}
	}
	if t.Failed() {
		t.FailNow()
	}
}

var exactBackends = []string{passes.BackendMP, passes.BackendShm, passes.BackendHybrid}

// TestPredictExactTestdata runs the invariant over the shipped corpus:
// every program × every single-pass ablation × every backend.
func TestPredictExactTestdata(t *testing.T) {
	files, err := filepath.Glob("../../testdata/*.hpf")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata files found: %v", err)
	}
	ablations := append([]string{""}, passes.OptionalPassNames()...)
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, disable := range ablations {
			for _, backend := range exactBackends {
				name := filepath.Base(f) + "/" + backend
				if disable != "" {
					name += "-no-" + disable
				}
				t.Run(name, func(t *testing.T) {
					opt := spmd.DefaultOptions()
					if disable != "" {
						opt.Disable = append(opt.Disable, disable)
					}
					requireExact(t, string(src), opt, backend)
				})
			}
		}
	}
}

// TestPredictExactGrains runs the invariant across pipeline grains,
// which exercise the strip-mined chunked transfer counting.
func TestPredictExactGrains(t *testing.T) {
	src, err := os.ReadFile("../../testdata/ysolve.hpf")
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []int{1, 3, 8} {
		for _, backend := range exactBackends {
			t.Run(fmt.Sprintf("%s/g%d", backend, g), func(t *testing.T) {
				opt := spmd.DefaultOptions()
				opt.PipelineGrain = g
				requireExact(t, string(src), opt, backend)
			})
		}
	}
}

// TestPredictExactNAS runs the invariant over the NAS kernels at small
// sizes (BT's per-point leaf calls make the static walk iterate
// concretely, so sizes stay tiny).
func TestPredictExactNAS(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"sp", nas.SPSource(16, 1, 2, 2)},
		{"bt", nas.BTSource(12, 1, 2, 2)},
		{"lu", nas.LUSource(12, 1, 2, 2)},
	}
	for _, c := range cases {
		for _, backend := range exactBackends {
			t.Run(c.name+"/"+backend, func(t *testing.T) {
				requireExact(t, c.src, spmd.DefaultOptions(), backend)
			})
		}
	}
}
