package analysis

import (
	"dhpf/internal/ir"
	"dhpf/internal/iset"
)

// procScratch is the per-RunProc memo shared by the summary and
// dataflow layers.  Both layers price the same statements under the
// same partitionings, so the expensive integer-set computations —
// per-phase footprints, per-(statement, rank) iteration sets and
// per-(statement, reference, rank) non-local sections — are computed
// once and reused.  The cached sets are treated as immutable: every
// iset operation returns a fresh set, so sharing is safe.
type procScratch struct {
	phases []phaseIO
	iters  map[iterKey]iset.Set
	nl     map[nlKey]iset.Set
}

type iterKey struct {
	stmt int
	rank int
}

type nlKey struct {
	stmt int
	rank int
	ref  *ir.ArrayRef
}

func newProcScratch() *procScratch {
	return &procScratch{
		iters: map[iterKey]iset.Set{},
		nl:    map[nlKey]iset.Set{},
	}
}

// iterSet returns the statement's iteration set on one rank.  A
// statement's surrounding nest is a function of its ID, so the key
// (stmt, rank) determines the result.
func (sc *procScratch) iterSet(in *Input, proc *ir.Procedure, id int, nest []*ir.Loop, rank int) iset.Set {
	k := iterKey{stmt: id, rank: rank}
	if s, ok := sc.iters[k]; ok {
		return s
	}
	c := in.Sel.CPOf(id)
	s := c.IterSet(nest, in.Ctx.Bind.Params, in.Ctx.LocalOf(proc, rank))
	sc.iters[k] = s
	return s
}

// nonLocal returns the non-local section of one reference under the
// statement's iteration set on one rank (cp.Context.NonLocalData,
// memoized).  References are keyed by identity: the IR is stable for
// the lifetime of a RunProc call.
func (sc *procScratch) nonLocal(in *Input, proc *ir.Procedure, id int, ref *ir.ArrayRef, vars []string, iters iset.Set, rank int) iset.Set {
	k := nlKey{stmt: id, rank: rank, ref: ref}
	if s, ok := sc.nl[k]; ok {
		return s
	}
	s := in.Ctx.NonLocalData(proc, ref, vars, iters, rank)
	sc.nl[k] = s
	return s
}

// prepare fetches the procedure's memoized phase footprints; the
// summary layer renders them and the dataflow layer scans them.
func (sc *procScratch) prepare(in *Input, proc *ir.Procedure) {
	sc.phases = in.procPhases(proc)
}
