// Package analysis is the whole-program static-analysis layer over the
// post-pipeline IR and integer-set facts.  It exploits the property the
// paper's machinery establishes — computation partitions and
// communication sets are closed-form integer sets — to answer questions
// about a compiled program without executing it:
//
//   - Symbolic loop summaries (summary.go): per (procedure, phase,
//     loop nest) closed-form trip counts, flop counts, per-array
//     read/write footprints and per-rank communication volume,
//     parameterized by program parameters and the processor grid.
//   - Distributed-array dataflow (dataflow.go): use-def/liveness over
//     phases, yielding diagnostics for reads of never-defined
//     distributed data, dead stores, dead communication and redundant
//     write-backs.  Diagnostics reuse the verify package's Diagnostic
//     type so every surface renders compiler findings uniformly.
//   - A static cost oracle (predict.go): Predict walks the program's
//     control skeleton with pure counting semantics and returns flop
//     and traffic counters that agree exactly — integer for integer —
//     with what the virtual machines measure.
//
// The package deliberately imports only the fact layers (ir, iset, cp,
// comm, hpf, verify); the pipeline and the executors sit above it.
package analysis

import (
	"fmt"
	"sort"
	"sync"

	"dhpf/internal/comm"
	"dhpf/internal/cp"
	"dhpf/internal/hpf"
	"dhpf/internal/ir"
	"dhpf/internal/iset"
	"dhpf/internal/verify"
)

// Diagnostic check names contributed by the dataflow layer.  They live
// in the same namespace as the verify theorems and surface through the
// same report machinery.
const (
	CheckReadBeforeDef = "readbeforedef" // distributed read with no covering prior definition
	CheckDeadStore     = "deadstore"     // store overwritten before any intervening read
	CheckDeadComm      = "deadcomm"      // communication whose transferred section is never read
	CheckRedundantWB   = "redundantwb"   // write-back a sound eliminator would have removed
)

// Reduction mirrors the pipeline's reduction plan without importing the
// passes package (which imports this one).
type Reduction struct {
	Loop *ir.Loop
	Stmt *ir.Assign
	Var  string
	Op   byte // '+', '<' (min), '>' (max)
}

// Input carries the post-pipeline facts the analyses read.  It mirrors
// verify.Input so both passes are fed from the same compile context.
type Input struct {
	IR   *ir.Program
	Ctx  *cp.Context
	Sel  *cp.Selection
	Comm map[string]*comm.Analysis
	// Reductions maps procedure name to the reduction plans recognized
	// in it.
	Reductions map[string][]Reduction
	// Grid is the processor grid; when nil it is derived from Ctx.
	Grid *hpf.Grid
	// Backend is the canonical backend name ("mp", "shm" or "hybrid");
	// empty means "mp".  Only Predict depends on it.
	Backend string
	// PipelineGrain is the coarse-grain pipelining strip width
	// (Options.PipelineGrain); only Predict depends on it.
	PipelineGrain int

	// memoMu guards the whole-program memos below.  Phase footprints
	// and procedure interfaces depend only on the IR and the bound
	// parameters — both fixed for the lifetime of an Input — so they
	// are computed once and shared across the per-procedure RunProc
	// calls, which the incremental scheduler runs in parallel.
	memoMu sync.Mutex
	phIO   map[string][]phaseIO
	ifaces map[string]*procIO
}

func (in *Input) grid() (*hpf.Grid, error) {
	if in.Grid != nil {
		return in.Grid, nil
	}
	return in.Ctx.Grid()
}

// ProcIface is the persistable form of a procedure's interface
// footprint: upward-exposed reads and total writes per formal array.
// The sets live in the array's data space and carry no statement IDs,
// so cached interfaces survive recompiles untouched.
type ProcIface struct {
	Reads  map[string]iset.Set
	Writes map[string]iset.Set
}

// Interface returns the procedure's interface footprints, computing
// and memoizing them if needed.  The pipeline persists them alongside
// the procedure's analysis artifact.
func (in *Input) Interface(proc *ir.Procedure) ProcIface {
	in.memoMu.Lock()
	defer in.memoMu.Unlock()
	io := in.ifaceLocked(proc)
	return ProcIface{Reads: io.reads, Writes: io.writes}
}

// SeedInterface pre-populates the interface memo from a cached
// artifact, so analyzing a dirty caller does not recompute the phase
// footprints of its clean callees.  A seed never overrides an
// interface already computed from the current IR.
func (in *Input) SeedInterface(name string, f ProcIface) {
	in.memoMu.Lock()
	defer in.memoMu.Unlock()
	if _, ok := in.ifaces[name]; ok {
		return
	}
	if in.ifaces == nil {
		in.ifaces = map[string]*procIO{}
	}
	reads, writes := f.Reads, f.Writes
	if reads == nil {
		reads = map[string]iset.Set{}
	}
	if writes == nil {
		writes = map[string]iset.Set{}
	}
	in.ifaces[name] = &procIO{reads: reads, writes: writes}
}

// Result is the outcome of the static analysis: one summary per
// procedure plus the dataflow diagnostics, in deterministic order.
type Result struct {
	Procs       []ProcSummary       `json:"procs"`
	Diagnostics []verify.Diagnostic `json:"diagnostics,omitempty"`
}

// Run performs the summary and dataflow layers for the whole program.
// It is deterministic: procedures in program order, phases in statement
// order, diagnostics sorted like verify's.
func Run(in *Input) (*Result, error) {
	res := &Result{}
	for _, proc := range in.IR.Procs {
		frag, err := RunProc(in, proc)
		if err != nil {
			return nil, err
		}
		Merge(res, frag)
	}
	return res, nil
}

// RunProc analyzes a single procedure and returns its fragment of the
// result.  Fragments merged in procedure order equal a whole-program
// Run, which is what lets the incremental scheduler cache them per
// procedure.
func RunProc(in *Input, proc *ir.Procedure) (*Result, error) {
	grid, err := in.grid()
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	res := &Result{}
	sc := newProcScratch()
	sc.prepare(in, proc)
	ps, err := summarizeProc(in, grid, proc, sc)
	if err != nil {
		return nil, err
	}
	res.Procs = append(res.Procs, *ps)
	diags := dataflowProc(in, grid, proc, sc)
	sortDiagnostics(diags)
	res.Diagnostics = append(res.Diagnostics, diags...)
	return res, nil
}

// Merge appends a per-procedure fragment to an accumulating result.
func Merge(dst, frag *Result) {
	dst.Procs = append(dst.Procs, frag.Procs...)
	dst.Diagnostics = append(dst.Diagnostics, frag.Diagnostics...)
}

func sortDiagnostics(ds []verify.Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Stmt != b.Stmt {
			return a.Stmt < b.Stmt
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Why < b.Why
	})
}

// Errors counts error-severity diagnostics.
func (r *Result) Errors() int {
	n := 0
	for _, d := range r.Diagnostics {
		if d.Severity == verify.Error {
			n++
		}
	}
	return n
}

// Warnings counts warning-severity diagnostics.
func (r *Result) Warnings() int {
	n := 0
	for _, d := range r.Diagnostics {
		if d.Severity == verify.Warning {
			n++
		}
	}
	return n
}

// Clean reports whether no error-severity diagnostics were produced.
func (r *Result) Clean() bool { return r.Errors() == 0 }

// Summary renders a one-line digest.
func (r *Result) Summary() string {
	phases := 0
	for _, p := range r.Procs {
		phases += len(p.Phases)
	}
	return fmt.Sprintf("analyze: %d procs, %d phases, %d errors, %d warnings",
		len(r.Procs), phases, r.Errors(), r.Warnings())
}
