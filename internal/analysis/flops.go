package analysis

import "dhpf/internal/ir"

// FlopsOf is the canonical per-statement floating-point cost model: the
// number of flops one executed instance of the assignment charges to
// the virtual machine.  The spmd executors delegate to this function,
// so Predict's flop counts and the measured RankFlops share one source
// of truth by construction.
//
// Weights: division 4, other binary ops 1, sqrt 6, the transcendental
// intrinsics (exp/sin/cos/log/pow) 8, remaining intrinsics 1.  A bare
// copy with no arithmetic still costs 1 (its load/store).
func FlopsOf(a *ir.Assign) float64 {
	var n float64
	ir.WalkExpr(a.RHS, func(e ir.Expr) {
		switch x := e.(type) {
		case *ir.Bin:
			if x.Op == '/' {
				n += 4
			} else {
				n++
			}
		case *ir.Intrinsic:
			switch x.Name {
			case "sqrt":
				n += 6
			case "exp", "sin", "cos", "log", "pow":
				n += 8
			default:
				n++
			}
		}
	})
	if n == 0 {
		n = 1
	}
	return n
}
