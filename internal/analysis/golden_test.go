package analysis_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dhpf/internal/analysis"
	"dhpf/internal/comm"
	"dhpf/internal/ir"
	"dhpf/internal/passes"
	"dhpf/internal/spmd"
	"dhpf/internal/verify"
)

var update = flag.Bool("update", false, "rewrite the golden summary files")

// TestGoldenSummaries pins Result.Text() for every shipped mini-HPF
// program against a checked-in golden under testdata/.  Any change to
// the summary algebra (trip counts, footprints, per-rank volumes) or to
// the rendering shows up as a diff here; regenerate deliberately with
//
//	go test ./internal/analysis/ -run TestGoldenSummaries -update
func TestGoldenSummaries(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.hpf"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no corpus: %v", err)
	}
	for _, p := range paths {
		base := strings.TrimSuffix(filepath.Base(p), ".hpf")
		t.Run(base, func(t *testing.T) {
			src, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := spmd.CompileSource(string(src), nil, spmd.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			res, err := prog.Analyze()
			if err != nil {
				t.Fatal(err)
			}
			got := res.Text()
			golden := filepath.Join("testdata", base+".summary")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("summary drifted from %s:\n--- got ---\n%s\n--- want ---\n%s",
					golden, got, want)
			}
		})
	}
}

// readBeforeDefSrc reads distributed array c, which nothing ever
// defines: the dataflow layer's only ERROR-severity finding.
const readBeforeDefSrc = `
program rbd
param N = 16
param P = 4
!hpf$ processors procs(P)
!hpf$ template t(N)
!hpf$ align b with t(d0)
!hpf$ align c with t(d0)
!hpf$ distribute t(BLOCK) onto procs

subroutine main()
  real b(0:N-1)
  real c(0:N-1)
  !hpf$ independent
  do i = 0, N-1
    b(i) = c(i)
  enddo
end
`

func TestReadBeforeDefError(t *testing.T) {
	prog, err := spmd.CompileSource(readBeforeDefSrc, nil, spmd.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if res.Clean() {
		t.Fatalf("analysis of an undefined-read program came back clean:\n%s", res.Text())
	}
	found := false
	for _, d := range res.Diagnostics {
		if d.Check == analysis.CheckReadBeforeDef && d.Severity == verify.Error && d.Ref == "c" {
			found = true
		}
	}
	if !found {
		t.Errorf("no readbeforedef ERROR for c: %+v", res.Diagnostics)
	}
}

// deadStoreSrc's first store of a is entirely overwritten before any
// read.
const deadStoreSrc = `
program ds
param N = 16
param P = 4
!hpf$ processors procs(P)
!hpf$ template t(N)
!hpf$ align a with t(d0)
!hpf$ align b with t(d0)
!hpf$ distribute t(BLOCK) onto procs

subroutine main()
  real a(0:N-1)
  real b(0:N-1)
  !hpf$ independent
  do i = 0, N-1
    a(i) = 1.0
  enddo
  !hpf$ independent
  do i = 0, N-1
    a(i) = 2.0
  enddo
  !hpf$ independent
  do i = 0, N-1
    b(i) = a(i)
  enddo
end
`

func TestDeadStoreWarning(t *testing.T) {
	prog, err := spmd.CompileSource(deadStoreSrc, nil, spmd.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean() {
		t.Fatalf("dead store should be WARN, not ERROR:\n%s", res.Text())
	}
	found := false
	for _, d := range res.Diagnostics {
		if d.Check == analysis.CheckDeadStore && d.Severity == verify.Warning && d.Ref == "a" {
			found = true
		}
	}
	if !found {
		t.Errorf("no deadstore warning for a: %+v", res.Diagnostics)
	}
}

// TestCorruptedCommFlagsDeadComm is the adversarial half of the deadcomm
// check: take a correctly compiled ysolve, shift one live read-comm
// event's transferred section off the statement's true footprint, and
// require that (a) the analyzer reports the plan now moves dead data and
// (b) the translation validator independently finds the reads no longer
// covered.  A corruption only one of the two catches would mean the
// check and the validator disagree about what the plan transfers.
func TestCorruptedCommFlagsDeadComm(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "testdata", "ysolve.hpf"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := spmd.CompileSource(string(src), nil, spmd.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Diagnostics {
		if d.Check == analysis.CheckDeadComm {
			t.Fatalf("uncorrupted program already has deadcomm: %+v", d)
		}
	}
	rep, err := prog.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("uncorrupted program failed verification:\n%s", rep)
	}

	// Shift the first live read-comm event's reference by one element.
	// The event's Ref aliases the statement's own RHS node, so the
	// corruption must go through a copy: mutating in place would shift
	// the "needed" footprint identically and hide the damage.
	corrupted := false
	for _, e := range prog.Comm["main"].Events {
		if e.Kind != comm.ReadComm || e.Eliminated {
			continue
		}
		cp := *e.Ref
		cp.Subs = append([]ir.Subscript(nil), e.Ref.Subs...)
		cp.Subs[0].Off = cp.Subs[0].Off.AddConst(-1)
		e.Ref = &cp
		corrupted = true
		break
	}
	if !corrupted {
		t.Fatal("ysolve compiled without a live read-comm event to corrupt")
	}

	res, err = prog.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range res.Diagnostics {
		if d.Check == analysis.CheckDeadComm && d.Severity == verify.Warning {
			found = true
		}
	}
	if !found {
		t.Errorf("corrupted comm plan produced no deadcomm warning:\n%s", res.Text())
	}
	rep, err = prog.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Error("validator still clean after the comm plan was corrupted")
	}
}

// TestAblatedWritebackElimFlagsRedundantWB: compiling with the wbelim
// pass disabled leaves write-backs in the plan that the analyzer's
// shadow eliminator proves redundant — exactly the miswired-pipeline
// scenario the check exists for.  The default pipeline must not trip it.
func TestAblatedWritebackElimFlagsRedundantWB(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "testdata", "lhsy.hpf"))
	if err != nil {
		t.Fatal(err)
	}
	clean, err := spmd.CompileSource(string(src), nil, spmd.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := clean.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Diagnostics {
		if d.Check == analysis.CheckRedundantWB {
			t.Fatalf("default pipeline flagged redundantwb: %+v", d)
		}
	}

	ablated, err := spmd.CompileSource(string(src), nil,
		spmd.DefaultOptions().WithDisabled(passes.PassWritebackRed))
	if err != nil {
		t.Fatal(err)
	}
	res, err = ablated.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range res.Diagnostics {
		if d.Check == analysis.CheckRedundantWB && d.Severity == verify.Warning {
			found = true
		}
	}
	if !found {
		t.Errorf("wbelim-ablated compile produced no redundantwb warning:\n%s", res.Text())
	}
}
