package analysis

import (
	"fmt"
	"sort"
	"strings"

	"dhpf/internal/comm"
	"dhpf/internal/cp"
	"dhpf/internal/hpf"
	"dhpf/internal/ir"
	"dhpf/internal/iset"
)

// Cost is Predict's output: the counters the virtual machines would
// report, derived without executing anything.  For the message backend
// SentMsgs/SentBytes/RecvMsgs mirror mpsim's per-rank counters; for the
// shared-memory backends Pulls/PulledBytes/Barriers mirror the shm
// team's counters and SentMsgs/SentBytes carry the hybrid layout's
// outer traffic (zero for pure shm), exactly like the synthesized
// Machine view the executor returns.
type Cost struct {
	Ranks   int    `json:"ranks"`
	Backend string `json:"backend"`

	Flops     []float64 `json:"flops"`
	SentMsgs  []int64   `json:"sent_msgs"`
	SentBytes []int64   `json:"sent_bytes"`
	RecvMsgs  []int64   `json:"recv_msgs"`

	Pulls       []int64 `json:"pulls,omitempty"`
	PulledBytes []int64 `json:"pulled_bytes,omitempty"`
	Barriers    int64   `json:"barriers,omitempty"`

	// Exact is false when the program contains a condition the static
	// walk cannot decide (a scalar carrying a computed value); the
	// counters are then a deterministic best effort, not a guarantee.
	Exact bool `json:"exact"`
}

// TotalFlops sums the per-rank flop counters.
func (c *Cost) TotalFlops() float64 {
	var t float64
	for _, f := range c.Flops {
		t += f
	}
	return t
}

// TotalMessages sums the per-rank sent-message counters.
func (c *Cost) TotalMessages() int64 {
	var t int64
	for _, m := range c.SentMsgs {
		t += m
	}
	return t
}

// TotalBytes sums the per-rank sent-byte counters.
func (c *Cost) TotalBytes() int64 {
	var t int64
	for _, b := range c.SentBytes {
		t += b
	}
	return t
}

// TotalPulled sums the per-rank pulled-byte counters (shm backends).
func (c *Cost) TotalPulled() int64 {
	var t int64
	for _, b := range c.PulledBytes {
		t += b
	}
	return t
}

// Predict statically derives the execution counters of the compiled
// program: per-rank flops, messages and bytes (message backend), pulls,
// pulled bytes and barriers (shared-memory backends).  It walks the
// same control skeleton the executors walk — same iteration sets, same
// event placements, same strip-mining — but evaluates nothing
// numerically, bulk-counting communication-free subtrees with set
// cardinalities.  The result is integer-equal to the measured counters
// on affine programs (the exactness invariant; see the differential
// tests).
func Predict(in *Input) (*Cost, error) {
	grid, err := in.grid()
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	backend := in.Backend
	if backend == "" {
		backend = "mp"
	}
	switch backend {
	case "mp", "shm", "hybrid":
	default:
		return nil, fmt.Errorf("analysis: unknown backend %q", backend)
	}
	p := grid.Size()
	cost := &Cost{
		Ranks:   p,
		Backend: backend,
		Flops:   make([]float64, p),

		SentMsgs:  make([]int64, p),
		SentBytes: make([]int64, p),
		RecvMsgs:  make([]int64, p),
		Exact:     true,
	}
	groups := make([]int, p) // group per rank; all zero except hybrid
	if backend == "hybrid" {
		for r := 0; r < p; r++ {
			groups[r] = grid.Coord(r)[0]
		}
	}
	if backend != "mp" {
		cost.Pulls = make([]int64, p)
		cost.PulledBytes = make([]int64, p)
	}
	shared := &predictShared{
		in:     in,
		grid:   grid,
		mp:     backend == "mp",
		groups: groups,
		plans:  map[string][]planTransfer{},
		pure:   map[*ir.Loop]bool{},
	}
	main := in.IR.Main()
	if main == nil {
		return nil, fmt.Errorf("analysis: program has no main procedure")
	}
	for me := 0; me < p; me++ {
		cx := &costExec{sh: shared, me: me, cost: cost, bind: map[string]int{}}
		for k, v := range in.Ctx.Bind.Params {
			cx.bind[k] = v
		}
		if err := cx.runProc(main); err != nil {
			return nil, err
		}
	}
	return cost, nil
}

// planTransfer is one coalesced point-to-point transfer of a plan, with
// only what counting needs: endpoints and payload size.
type planTransfer struct {
	from, to int
	card     int64
}

// predictShared is the state all rank walks share: the plan cache (the
// executor's transfer plans are rank-independent, so each distinct
// firing is computed once and re-attributed per rank) and the per-loop
// purity memo that gates bulk counting.
type predictShared struct {
	in     *Input
	grid   *hpf.Grid
	mp     bool
	groups []int
	plans  map[string][]planTransfer
	pure   map[*ir.Loop]bool
}

func (sh *predictShared) crossGroup(a, b int) bool {
	return sh.groups[a] != sh.groups[b]
}

// cframe mirrors the executor's frame: iteration sets and nest shapes
// per statement, fixed at procedure entry under the entry binding.
type cframe struct {
	proc  *ir.Procedure
	iters map[int]iset.Set
	vars  map[int][]string
	nests map[int][]*ir.Loop
}

type stripCtl struct {
	variable string
	lo, hi   int
}

// costExec is one rank's counting walk.  It mirrors rankExec in
// internal/spmd/exec.go member for member, minus all value state.
type costExec struct {
	sh     *predictShared
	me     int
	bind   map[string]int
	frames []*cframe
	strip  *stripCtl
	cost   *Cost
}

func (cx *costExec) top() *cframe { return cx.frames[len(cx.frames)-1] }

// runProc mirrors rankExec.runProc: a fresh frame whose iteration sets
// are computed over each statement's full nest at entry.
func (cx *costExec) runProc(proc *ir.Procedure) error {
	f := &cframe{
		proc:  proc,
		iters: map[int]iset.Set{},
		vars:  map[int][]string{},
		nests: map[int][]*ir.Loop{},
	}
	localOf := cx.sh.in.Ctx.LocalOf(proc, cx.me)
	ir.Walk(proc.Body, func(s ir.Stmt, loops []*ir.Loop) bool {
		nest := make([]*ir.Loop, len(loops))
		copy(nest, loops)
		switch st := s.(type) {
		case *ir.Assign:
			f.iters[st.ID] = cx.sh.in.Sel.CPOf(st.ID).IterSet(nest, cx.bind, localOf)
			f.vars[st.ID] = ir.NestVars(nest)
			f.nests[st.ID] = nest
		case *ir.CallStmt:
			f.iters[st.ID] = cx.sh.in.Sel.CPOf(st.ID).IterSet(nest, cx.bind, localOf)
			f.vars[st.ID] = ir.NestVars(nest)
			f.nests[st.ID] = nest
		}
		return true
	})
	cx.frames = append(cx.frames, f)
	err := cx.execStmts(proc, proc.Body, 0)
	cx.frames = cx.frames[:len(cx.frames)-1]
	return err
}

func (cx *costExec) execStmts(proc *ir.Procedure, stmts []ir.Stmt, depth int) error {
	for _, s := range stmts {
		var err error
		switch st := s.(type) {
		case *ir.Assign:
			cx.execAssign(proc, st, depth)
		case *ir.CallStmt:
			err = cx.execCall(proc, st, depth)
		case *ir.Loop:
			err = cx.execLoop(proc, st, depth)
		case *ir.IfStmt:
			if cx.evalCond(st.Cond) {
				err = cx.execStmts(proc, st.Then, depth)
			} else {
				err = cx.execStmts(proc, st.Else, depth)
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// evalCond mirrors the executor's uniform-condition evaluation over the
// expression forms a static walk can decide.  A condition that reads a
// computed scalar value degrades Exact and evaluates with that scalar
// as zero — deterministically, so repeated Predicts agree.
func (cx *costExec) evalCond(c ir.Cond) bool {
	l, okl := cx.evalScalar(c.L)
	r, okr := cx.evalScalar(c.R)
	if !okl || !okr {
		cx.cost.Exact = false
	}
	switch c.Op {
	case "<":
		return l < r
	case ">":
		return l > r
	case "<=":
		return l <= r
	case ">=":
		return l >= r
	case "==":
		return l == r
	case "/=":
		return l != r
	}
	return false
}

func (cx *costExec) evalScalar(e ir.Expr) (float64, bool) {
	switch x := e.(type) {
	case ir.FloatConst:
		return x.Val, true
	case ir.IndexRef:
		return float64(cx.bind[x.Name]), true
	case ir.ParamRef:
		return float64(cx.bind[x.Name]), true
	case ir.ScalarRef:
		if v, ok := cx.bind[x.Name]; ok {
			return float64(v), true // integer formal read as a value
		}
		return 0, false
	case *ir.Bin:
		l, okl := cx.evalScalar(x.L)
		r, okr := cx.evalScalar(x.R)
		ok := okl && okr
		switch x.Op {
		case '+':
			return l + r, ok
		case '-':
			return l - r, ok
		case '*':
			return l * r, ok
		case '/':
			return l / r, ok
		}
	}
	return 0, false
}

func (cx *costExec) execAssign(proc *ir.Procedure, a *ir.Assign, depth int) {
	f := cx.top()
	if depth == 0 {
		cx.fireEvents(proc, cx.eventsAt(proc, a, comm.ReadComm), 0)
		if cx.ownsTopLevel(proc, a.ID) {
			cx.cost.Flops[cx.me] += FlopsOf(a)
		}
		cx.fireEvents(proc, cx.eventsAt(proc, a, comm.WriteBack), 0)
		return
	}
	vars := f.vars[a.ID]
	point := make([]int, len(vars))
	for k, v := range vars {
		point[k] = cx.bind[v]
	}
	if !f.iters[a.ID].Contains(point) {
		return
	}
	cx.cost.Flops[cx.me] += FlopsOf(a)
}

// ownsTopLevel mirrors rankExec.ownsTopLevel.
func (cx *costExec) ownsTopLevel(proc *ir.Procedure, id int) bool {
	c := cx.sh.in.Sel.CPOf(id)
	if c.Replicated() {
		return true
	}
	for _, t := range c.Terms {
		layout := cx.sh.in.Ctx.Layout(proc, t.Array)
		if layout == nil {
			return true
		}
		local := layout.LocalBox(cx.me)
		owns := true
		for k, sub := range t.Subs {
			if sub.IsRange {
				lo := sub.Lo.EvalOr(cx.bind, 0)
				hi := sub.Hi.EvalOr(cx.bind, 0)
				if max(lo, local.Lo[k]) > min(hi, local.Hi[k]) {
					owns = false
					break
				}
				continue
			}
			v := sub.Off.EvalOr(cx.bind, 0)
			if sub.Var != "" {
				v += sub.Coef * cx.bind[sub.Var]
			}
			if v < local.Lo[k] || v > local.Hi[k] {
				owns = false
				break
			}
		}
		if owns {
			return true
		}
	}
	return false
}

// execCall mirrors rankExec.execCall: same membership gating, same
// integer-formal binding discipline.  Value formals carry no counting
// state and are skipped.
func (cx *costExec) execCall(proc *ir.Procedure, call *ir.CallStmt, depth int) error {
	f := cx.top()
	if depth == 0 {
		if !cx.ownsTopLevel(proc, call.ID) {
			return nil
		}
	} else {
		vars := f.vars[call.ID]
		point := make([]int, len(vars))
		for k, v := range vars {
			point[k] = cx.bind[v]
		}
		if !f.iters[call.ID].Contains(point) {
			return nil
		}
	}
	callee := cx.sh.in.IR.Proc(call.Callee)
	if callee == nil {
		return fmt.Errorf("analysis: call to unknown procedure %q", call.Callee)
	}
	var savedInts []struct {
		name string
		val  int
		had  bool
	}
	for k, formal := range callee.Formals {
		if k >= len(call.Args) {
			break
		}
		switch arg := call.Args[k].(type) {
		case *ir.ArrayRef:
			// Whole-array aliases and subscripted value formals alike
			// carry no integer binding.
		case ir.IndexRef, ir.ParamRef:
			v, _ := cx.evalScalar(arg)
			old, had := cx.bind[formal]
			savedInts = append(savedInts, struct {
				name string
				val  int
				had  bool
			}{formal, old, had})
			cx.bind[formal] = int(v)
		case ir.FloatConst:
			if float64(int(arg.Val)) == arg.Val {
				old, had := cx.bind[formal]
				savedInts = append(savedInts, struct {
					name string
					val  int
					had  bool
				}{formal, old, had})
				cx.bind[formal] = int(arg.Val)
			}
		}
	}
	err := cx.runProc(callee)
	for i := len(savedInts) - 1; i >= 0; i-- {
		s := savedInts[i]
		if s.had {
			cx.bind[s.name] = s.val
		} else {
			delete(cx.bind, s.name)
		}
	}
	return err
}

func (cx *costExec) execLoop(proc *ir.Procedure, l *ir.Loop, depth int) error {
	cx.fireEvents(proc, cx.eventsBeforeLoop(proc, l, depth, comm.ReadComm), depth)

	plans := cx.reductionsAt(proc, l)

	var err error
	if pipe := cx.pipelinedEvents(proc, l); len(pipe) > 0 {
		err = cx.execPipelined(proc, l, depth, pipe)
	} else {
		err = cx.iterateLoop(proc, l, depth)
	}
	if err != nil {
		return err
	}

	// Each reduction finalization is one collective: a barrier-priced
	// AllReduce on the shm team, messageless on the message machine.
	if !cx.sh.mp {
		cx.cost.Barriers += int64(len(plans))
	}

	cx.fireEvents(proc, cx.eventsBeforeLoop(proc, l, depth, comm.WriteBack), depth)
	return nil
}

func (cx *costExec) reductionsAt(proc *ir.Procedure, l *ir.Loop) []Reduction {
	var out []Reduction
	for _, p := range cx.sh.in.Reductions[proc.Name] {
		if p.Loop == l {
			out = append(out, p)
		}
	}
	return out
}

// loopRange evaluates the visited range of a loop under the current
// binding and strip window, mirroring iterateLoop's clamps, and
// normalizes it to an ascending interval (empty when lo > hi).
func (cx *costExec) loopRange(l *ir.Loop) (int, int) {
	lo := l.Lo.EvalOr(cx.bind, 0)
	hi := l.Hi.EvalOr(cx.bind, 0)
	if cx.strip != nil && cx.strip.variable == l.Var {
		if l.Step > 0 {
			lo, hi = max(lo, cx.strip.lo), min(hi, cx.strip.hi)
		} else {
			lo, hi = min(lo, cx.strip.hi), max(hi, cx.strip.lo)
		}
	}
	if l.Step < 0 {
		lo, hi = hi, lo
	}
	return lo, hi
}

// iterateLoop mirrors rankExec.iterateLoop but bulk-counts subtrees
// that contain no communication, no conditionals, no calls and no
// reduction boundaries: for such a subtree the executed instances of
// every assignment are exactly the statement's iteration set clamped to
// the visited ranges, so one Card per assignment replaces the walk.
func (cx *costExec) iterateLoop(proc *ir.Procedure, l *ir.Loop, depth int) error {
	if cx.bulkable(proc, l) {
		cx.bulkCount(proc, l, depth)
		return nil
	}
	lo, hi := cx.loopRange(l)
	old, had := cx.bind[l.Var]
	// Direction does not matter for counting; visit ascending.
	for v := lo; v <= hi; v++ {
		cx.bind[l.Var] = v
		if err := cx.execStmts(proc, l.Body, depth+1); err != nil {
			return err
		}
	}
	if had {
		cx.bind[l.Var] = old
	} else {
		delete(cx.bind, l.Var)
	}
	return nil
}

// bulkable reports whether the loop's subtree can be counted in closed
// form.  The memo is binding-independent: it looks only at statement
// kinds, event anchors, reduction plans and which variables the bounds
// reference.
func (cx *costExec) bulkable(proc *ir.Procedure, l *ir.Loop) bool {
	if v, ok := cx.sh.pure[l]; ok {
		return v
	}
	v := cx.computeBulkable(proc, l)
	cx.sh.pure[l] = v
	return v
}

func (cx *costExec) computeBulkable(proc *ir.Procedure, l *ir.Loop) bool {
	// Collect the subtree's own loop variables; any bound referencing
	// one makes ranges iteration-dependent (triangular nests), which
	// bulk counting does not model.
	subVars := map[string]bool{}
	var loops []*ir.Loop
	ok := true
	ir.Walk([]ir.Stmt{l}, func(s ir.Stmt, _ []*ir.Loop) bool {
		switch st := s.(type) {
		case *ir.Loop:
			subVars[st.Var] = true
			loops = append(loops, st)
		case *ir.CallStmt, *ir.IfStmt:
			ok = false
		}
		return true
	})
	if !ok {
		return false
	}
	an := cx.sh.in.Comm[proc.Name]
	for _, m := range loops {
		for _, b := range []ir.AffExpr{m.Lo, m.Hi} {
			for _, t := range b.Terms {
				if subVars[t.Name] {
					return false
				}
			}
		}
		if m == l {
			continue
		}
		// A strict descendant that fires events, carries a pipeline or
		// finalizes a reduction needs its execLoop boundary to run.
		if len(cx.sh.in.Reductions[proc.Name]) > 0 {
			for _, p := range cx.sh.in.Reductions[proc.Name] {
				if p.Loop == m {
					return false
				}
			}
		}
		if an != nil {
			for _, e := range an.Events {
				if e.Eliminated {
					continue
				}
				if e.Pipelined {
					if e.CarriedBy == m {
						return false
					}
					continue
				}
				d := min(e.Depth, len(e.Nest)-1)
				if d >= 0 && e.Nest[d] == m {
					return false
				}
			}
		}
	}
	return true
}

// bulkCount adds the flops of every assignment in the subtree: the
// statement's iteration set, with outer dimensions pinned to the
// current binding and subtree dimensions clamped to their visited
// ranges, counts executed instances exactly.
func (cx *costExec) bulkCount(proc *ir.Procedure, l *ir.Loop, depth int) {
	f := cx.top()
	ir.Walk([]ir.Stmt{l}, func(s ir.Stmt, _ []*ir.Loop) bool {
		a, isAssign := s.(*ir.Assign)
		if !isAssign {
			return true
		}
		set := f.iters[a.ID]
		vars := f.vars[a.ID]
		nest := f.nests[a.ID]
		for k := range vars {
			if k < depth {
				v := cx.bind[vars[k]]
				set = set.ClampDim(k, v, v)
			} else {
				lo, hi := cx.loopRange(nest[k])
				if lo > hi {
					return true // visited range empty: zero instances
				}
				set = set.ClampDim(k, lo, hi)
			}
			if set.IsEmpty() {
				return true
			}
		}
		cx.cost.Flops[cx.me] += FlopsOf(a) * float64(set.Card())
		return true
	})
}

// --- event selection (mirrors exec.go) ---------------------------------------

func (cx *costExec) eventsBeforeLoop(proc *ir.Procedure, l *ir.Loop, depth int, kind comm.Kind) []*comm.Event {
	an := cx.sh.in.Comm[proc.Name]
	if an == nil {
		return nil
	}
	var out []*comm.Event
	for _, e := range an.Events {
		if e.Kind != kind || e.Eliminated || e.Pipelined {
			continue
		}
		d := min(e.Depth, len(e.Nest)-1)
		if d < 0 {
			continue
		}
		if d == depth && e.Nest[d] == l {
			out = append(out, e)
		}
	}
	return out
}

func (cx *costExec) pipelinedEvents(proc *ir.Procedure, l *ir.Loop) []*comm.Event {
	an := cx.sh.in.Comm[proc.Name]
	if an == nil {
		return nil
	}
	var out []*comm.Event
	for _, e := range an.Events {
		if e.Pipelined && !e.Eliminated && e.CarriedBy == l {
			out = append(out, e)
		}
	}
	return out
}

func (cx *costExec) eventsAt(proc *ir.Procedure, stmt *ir.Assign, kind comm.Kind) []*comm.Event {
	an := cx.sh.in.Comm[proc.Name]
	if an == nil {
		return nil
	}
	var out []*comm.Event
	for _, e := range an.Events {
		if e.Kind != kind || e.Eliminated || e.Pipelined {
			continue
		}
		if e.Stmt == stmt && len(e.Nest) == 0 {
			out = append(out, e)
		}
	}
	return out
}

// --- transfer counting --------------------------------------------------------

// fireEvents counts one non-pipelined plan firing: the executor's
// doTransfers with counters instead of traffic.
func (cx *costExec) fireEvents(proc *ir.Procedure, events []*comm.Event, depth int) {
	if len(events) == 0 {
		return
	}
	plan := cx.plansFor(proc, events, depth, nil)
	if len(plan) == 0 {
		return
	}
	if !cx.sh.mp {
		for _, tr := range plan {
			if tr.from == cx.me && cx.sh.crossGroup(tr.from, tr.to) {
				cx.cost.SentMsgs[cx.me]++
				cx.cost.SentBytes[cx.me] += 8 * tr.card
			}
		}
		for _, tr := range plan {
			if tr.to == cx.me {
				cx.cost.Pulls[cx.me]++
				cx.cost.PulledBytes[cx.me] += 8 * tr.card
			}
		}
		return
	}
	for _, tr := range plan {
		if tr.from == cx.me {
			cx.cost.SentMsgs[cx.me]++
			cx.cost.SentBytes[cx.me] += 8 * tr.card
		}
	}
	for _, tr := range plan {
		if tr.to == cx.me {
			cx.cost.RecvMsgs[cx.me]++
		}
	}
}

// countRecvMine / countSendMine mirror the pipelined tagged paths.
func (cx *costExec) countRecvMine(plan []planTransfer) {
	for _, tr := range plan {
		if tr.to != cx.me {
			continue
		}
		if !cx.sh.mp {
			cx.cost.Pulls[cx.me]++
			cx.cost.PulledBytes[cx.me] += 8 * tr.card
			continue
		}
		cx.cost.RecvMsgs[cx.me]++
	}
}

func (cx *costExec) countSendMine(plan []planTransfer) {
	for _, tr := range plan {
		if tr.from != cx.me {
			continue
		}
		if !cx.sh.mp {
			if cx.sh.crossGroup(tr.from, tr.to) {
				cx.cost.SentMsgs[cx.me]++
				cx.cost.SentBytes[cx.me] += 8 * tr.card
			}
			continue
		}
		cx.cost.SentMsgs[cx.me]++
		cx.cost.SentBytes[cx.me] += 8 * tr.card
	}
}

// execPipelined mirrors rankExec.execPipelined: strip-mined wavefront
// chunks, each with its own boundary plan.
func (cx *costExec) execPipelined(proc *ir.Procedure, l *ir.Loop, depth int, events []*comm.Event) error {
	if cx.strip != nil {
		plan := cx.plansFor(proc, events, depth, cx.strip)
		cx.countRecvMine(plan)
		if err := cx.iterateLoop(proc, l, depth); err != nil {
			return err
		}
		cx.countSendMine(plan)
		return nil
	}
	strip := chooseStrip(l, events)
	if strip == nil {
		plan := cx.plansFor(proc, events, depth, nil)
		cx.countRecvMine(plan)
		if err := cx.iterateLoop(proc, l, depth); err != nil {
			return err
		}
		cx.countSendMine(plan)
		return nil
	}
	lo := strip.Lo.EvalOr(cx.bind, 0)
	hi := strip.Hi.EvalOr(cx.bind, 0)
	if lo > hi {
		lo, hi = hi, lo
	}
	g := cx.sh.in.PipelineGrain
	if g <= 0 {
		g = hi - lo + 1
	}
	for s := lo; s <= hi; s += g {
		chunk := &stripCtl{variable: strip.Var, lo: s, hi: min(s+g-1, hi)}
		plan := cx.plansFor(proc, events, depth, chunk)
		cx.countRecvMine(plan)
		cx.strip = chunk
		if err := cx.iterateLoop(proc, l, depth); err != nil {
			return err
		}
		cx.strip = nil
		cx.countSendMine(plan)
	}
	return nil
}

func chooseStrip(l *ir.Loop, events []*comm.Event) *ir.Loop {
	for _, e := range events {
		nest := e.Nest
		for i := len(nest) - 1; i >= 0; i-- {
			if nest[i] != l {
				return nest[i]
			}
		}
	}
	return nil
}

// plansFor computes (or recalls) the transfer plan of one event firing.
// The executor's plans depend only on sets, the integer binding of the
// outer loop variables and the strip window — never on the computing
// rank — so the cache is shared across the per-rank walks.
func (cx *costExec) plansFor(proc *ir.Procedure, events []*comm.Event, depth int, strip *stripCtl) []planTransfer {
	key := cx.planKey(proc, events, depth, strip)
	if plan, ok := cx.sh.plans[key]; ok {
		return plan
	}
	plan := cx.computePlan(proc, events, depth, strip)
	cx.sh.plans[key] = plan
	return plan
}

func (cx *costExec) planKey(proc *ir.Procedure, events []*comm.Event, depth int, strip *stripCtl) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%d|", proc.Name, depth)
	for _, e := range events {
		fmt.Fprintf(&b, "e%d.%d.%d;", e.Stmt.ID, e.Kind, e.Depth)
	}
	if strip != nil {
		fmt.Fprintf(&b, "|s%s=%d:%d", strip.variable, strip.lo, strip.hi)
	}
	names := make([]string, 0, len(cx.bind))
	for k := range cx.bind {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(&b, "|%s=%d", k, cx.bind[k])
	}
	return b.String()
}

// computePlan mirrors rankExec.transfersFor, keeping only endpoint and
// cardinality per coalesced transfer.
func (cx *costExec) computePlan(proc *ir.Procedure, events []*comm.Event, depth int, strip *stripCtl) []planTransfer {
	type key struct {
		array    string
		from, to int
	}
	acc := map[key]iset.Set{}
	var order []key
	grid := cx.sh.grid
	in := cx.sh.in
	for _, e := range events {
		layout := in.Ctx.Layout(proc, e.Ref.Name)
		if layout == nil {
			continue
		}
		vars := ir.NestVars(e.Nest)
		for t := 0; t < grid.Size(); t++ {
			iters := in.Sel.CPOf(e.Stmt.ID).IterSet(e.Nest, cx.bind, in.Ctx.LocalOf(proc, t))
			for k := 0; k < depth && k < len(vars); k++ {
				v := cx.bind[vars[k]]
				iters = iters.ClampDim(k, v, v)
			}
			if strip != nil {
				for k, v := range vars {
					if v == strip.variable {
						iters = iters.ClampDim(k, strip.lo, strip.hi)
					}
				}
			}
			if iters.IsEmpty() {
				continue
			}
			data := cp.RefDataSet(e.Ref, vars, iters, cx.bind)
			data = data.IntersectBox(layout.Space())
			nl := data.SubtractBox(layout.LocalBox(t))
			if nl.IsEmpty() {
				continue
			}
			for peer := 0; peer < grid.Size(); peer++ {
				if peer == t {
					continue
				}
				part := nl.IntersectBox(layout.LocalBox(peer))
				if part.IsEmpty() {
					continue
				}
				var k key
				if e.Kind == comm.ReadComm {
					k = key{array: e.Ref.Name, from: peer, to: t}
				} else {
					k = key{array: e.Ref.Name, from: t, to: peer}
				}
				if _, seen := acc[k]; !seen {
					order = append(order, k)
				}
				acc[k] = acc[k].Union(part)
			}
		}
	}
	out := make([]planTransfer, 0, len(order))
	for _, k := range order {
		out = append(out, planTransfer{from: k.from, to: k.to, card: acc[k].Card()})
	}
	return out
}
