package iset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetUnionDisjointness(t *testing.T) {
	s := FromBoxes(
		NewBox([]int{0, 0}, []int{5, 5}),
		NewBox([]int{3, 3}, []int{8, 8}),
	)
	// Internal boxes must be disjoint.
	bs := s.Boxes()
	for i := range bs {
		for j := i + 1; j < len(bs); j++ {
			if bs[i].Intersects(bs[j]) {
				t.Fatalf("boxes %v and %v overlap", bs[i], bs[j])
			}
		}
	}
	if got := s.Card(); got != 36+36-9 {
		t.Fatalf("Card = %d, want 63", got)
	}
}

func TestSetOps(t *testing.T) {
	a := FromBox(NewBox([]int{0, 0}, []int{9, 9}))
	b := FromBox(NewBox([]int{5, 5}, []int{14, 14}))

	inter := a.Intersect(b)
	if got := inter.Card(); got != 25 {
		t.Fatalf("intersection Card = %d, want 25", got)
	}
	uni := a.Union(b)
	if got := uni.Card(); got != 100+100-25 {
		t.Fatalf("union Card = %d, want 175", got)
	}
	diff := a.Subtract(b)
	if got := diff.Card(); got != 75 {
		t.Fatalf("difference Card = %d, want 75", got)
	}
	if !inter.SubsetOf(a) || !inter.SubsetOf(b) {
		t.Error("intersection not a subset of operands")
	}
	if !a.SubsetOf(uni) || !b.SubsetOf(uni) {
		t.Error("operands not subsets of union")
	}
	if diff.Intersect(b).Card() != 0 {
		t.Error("difference intersects subtrahend")
	}
	if !diff.Union(inter).Eq(a) {
		t.Error("(a−b) ∪ (a∩b) ≠ a")
	}
}

func TestSetEmptyBehaviour(t *testing.T) {
	e := EmptySet(2)
	a := FromBox(NewBox([]int{0, 0}, []int{3, 3}))
	if !e.IsEmpty() || e.Card() != 0 {
		t.Fatal("EmptySet not empty")
	}
	if !e.SubsetOf(a) {
		t.Error("empty not subset of a")
	}
	if a.SubsetOf(e) {
		t.Error("a subset of empty")
	}
	if !a.Union(e).Eq(a) || !e.Union(a).Eq(a) {
		t.Error("union with empty changed set")
	}
	if !a.Intersect(e).IsEmpty() {
		t.Error("intersection with empty not empty")
	}
	if !a.Subtract(e).Eq(a) {
		t.Error("a − ∅ ≠ a")
	}
	if !e.Subtract(a).IsEmpty() {
		t.Error("∅ − a not empty")
	}
}

func TestSetCoalesce(t *testing.T) {
	// Two adjacent boxes along dim 0 must merge into one.
	s := FromBoxes(
		NewBox([]int{0, 0}, []int{4, 9}),
		NewBox([]int{5, 0}, []int{9, 9}),
	)
	if n := len(s.Boxes()); n != 1 {
		t.Fatalf("coalesce kept %d boxes, want 1", n)
	}
	if !s.Eq(FromBox(NewBox([]int{0, 0}, []int{9, 9}))) {
		t.Fatal("coalesced set has wrong contents")
	}
}

func TestSetDropInsert(t *testing.T) {
	s := FromBoxes(
		NewBox([]int{0, 0, 0}, []int{3, 3, 3}),
		NewBox([]int{0, 9, 0}, []int{3, 9, 3}),
	)
	d := s.Drop(1)
	if d.Rank() != 2 {
		t.Fatalf("Drop rank = %d", d.Rank())
	}
	// Both boxes project to the same 2-D box.
	if got := d.Card(); got != 16 {
		t.Fatalf("Drop Card = %d, want 16", got)
	}
	ins := d.Insert(1, 5, 7)
	if ins.Rank() != 3 || ins.Card() != 48 {
		t.Fatalf("Insert rank=%d card=%d", ins.Rank(), ins.Card())
	}
}

func TestSetContainsAndEach(t *testing.T) {
	s := FromBoxes(Point(1, 1), Point(3, 3))
	if !s.Contains([]int{1, 1}) || !s.Contains([]int{3, 3}) {
		t.Error("Contains missed member")
	}
	if s.Contains([]int{2, 2}) {
		t.Error("Contains reported non-member")
	}
	n := 0
	s.Each(func(p []int) bool { n++; return true })
	if n != 2 {
		t.Errorf("Each visited %d, want 2", n)
	}
}

func TestSetBoundingBox(t *testing.T) {
	s := FromBoxes(Point(1, 8), Point(5, 2))
	bb, ok := s.BoundingBox()
	if !ok {
		t.Fatal("BoundingBox reported empty")
	}
	if !bb.Eq(NewBox([]int{1, 2}, []int{5, 8})) {
		t.Fatalf("BoundingBox = %v", bb)
	}
	if _, ok := EmptySet(2).BoundingBox(); ok {
		t.Error("empty set has a bounding box")
	}
}

// --- Property-based tests ------------------------------------------------

// randBox2 makes a small random 2-D box (possibly empty).
func randBox2(r *rand.Rand) Box {
	lo0, lo1 := r.Intn(12)-2, r.Intn(12)-2
	return NewBox(
		[]int{lo0, lo1},
		[]int{lo0 + r.Intn(8) - 1, lo1 + r.Intn(8) - 1},
	)
}

func randSet2(r *rand.Rand) Set {
	s := EmptySet(2)
	for i, n := 0, 1+r.Intn(3); i < n; i++ {
		s = s.UnionBox(randBox2(r))
	}
	return s
}

func quickCfg() *quick.Config {
	return &quick.Config{
		MaxCount: 300,
		Values:   nil,
	}
}

func TestQuickSetAlgebra(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randSet2(r), randSet2(r)

		inter := a.Intersect(b)
		diff := a.Subtract(b)
		uni := a.Union(b)

		// Partition law: a = (a−b) ⊎ (a∩b), disjointly.
		if !diff.Union(inter).Eq(a) {
			return false
		}
		if !diff.Intersect(inter).IsEmpty() {
			return false
		}
		// Cardinality laws.
		if diff.Card()+inter.Card() != a.Card() {
			return false
		}
		if uni.Card() != a.Card()+b.Card()-inter.Card() {
			return false
		}
		// Subset laws.
		if !inter.SubsetOf(a) || !inter.SubsetOf(b) || !a.SubsetOf(uni) {
			return false
		}
		// Commutativity of union and intersection (as point sets).
		if !uni.Eq(b.Union(a)) || !inter.Eq(b.Intersect(a)) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSetMembershipAgreesWithOps(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randSet2(r), randSet2(r)
		inter := a.Intersect(b)
		diff := a.Subtract(b)
		uni := a.Union(b)
		// Check pointwise semantics over a window.
		for x := -4; x <= 20; x++ {
			for y := -4; y <= 20; y++ {
				p := []int{x, y}
				ia, ib := a.Contains(p), b.Contains(p)
				if inter.Contains(p) != (ia && ib) {
					return false
				}
				if uni.Contains(p) != (ia || ib) {
					return false
				}
				if diff.Contains(p) != (ia && !ib) {
					return false
				}
			}
		}
		return true
	}
	cfg := quickCfg()
	cfg.MaxCount = 60
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCoalescePreservesSemantics(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Build a set from many random boxes; card must equal the count
		// of distinct points (coalesce/disjointness must not lose points).
		boxes := make([]Box, 1+r.Intn(5))
		for i := range boxes {
			boxes[i] = randBox2(r)
		}
		s := FromBoxes(boxes...)
		distinct := map[[2]int]bool{}
		for _, b := range boxes {
			b.Each(func(p []int) bool {
				distinct[[2]int{p[0], p[1]}] = true
				return true
			})
		}
		if s.Card() != int64(len(distinct)) {
			return false
		}
		for pt := range distinct {
			if !s.Contains([]int{pt[0], pt[1]}) {
				return false
			}
		}
		return true
	}
	cfg := quickCfg()
	cfg.MaxCount = 150
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
