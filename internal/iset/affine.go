package iset

import "fmt"

// DimMap describes how one output dimension of an affine tuple map is
// produced.  Each output dimension is either a constant or a unit-scale
// affine function of exactly one input dimension:
//
//	out[k] = Scale*in[Src] + Offset   (Scale ∈ {+1, -1})
//	out[k] = Offset                   (Src == -1)
//
// Restricting Scale to ±1 keeps images and preimages of boxes exactly
// boxes (no internal strides), which matches the subscript forms the dhpf
// front end accepts (i, i+c, c-i, c).  This is the same restriction the
// SC'98 paper exploits for its CP-translation step: it builds 1-1 *linear*
// mappings between use and definition subscripts and skips anything else.
type DimMap struct {
	Src    int // input dimension index, or -1 for a constant dimension
	Scale  int // +1 or -1; ignored when Src == -1
	Offset int
}

// AffineMap maps rank-n integer tuples to rank-m tuples, one DimMap per
// output dimension.
type AffineMap struct {
	InRank int
	Out    []DimMap
}

// Identity returns the identity map on rank-n tuples.
func Identity(n int) AffineMap {
	m := AffineMap{InRank: n, Out: make([]DimMap, n)}
	for k := range m.Out {
		m.Out[k] = DimMap{Src: k, Scale: 1}
	}
	return m
}

// Translation returns the map p ↦ p + off.
func Translation(off []int) AffineMap {
	m := Identity(len(off))
	for k := range m.Out {
		m.Out[k].Offset = off[k]
	}
	return m
}

// OutRank returns the rank of the map's output tuples.
func (m AffineMap) OutRank() int { return len(m.Out) }

func (m AffineMap) validate() {
	for k, d := range m.Out {
		if d.Src >= m.InRank {
			panic(fmt.Sprintf("iset: map out[%d] reads input dim %d of rank-%d map", k, d.Src, m.InRank))
		}
		if d.Src >= 0 && d.Scale != 1 && d.Scale != -1 {
			panic(fmt.Sprintf("iset: map out[%d] has non-unit scale %d", k, d.Scale))
		}
	}
}

// Apply maps a single tuple.
func (m AffineMap) Apply(p []int) []int {
	m.validate()
	if len(p) != m.InRank {
		panic("iset: Apply rank mismatch")
	}
	out := make([]int, len(m.Out))
	for k, d := range m.Out {
		if d.Src < 0 {
			out[k] = d.Offset
		} else {
			out[k] = d.Scale*p[d.Src] + d.Offset
		}
	}
	return out
}

// Invertible reports whether the map is a bijection onto its image that
// can be inverted dimension-by-dimension: every input dimension must feed
// exactly one output dimension.
func (m AffineMap) Invertible() bool {
	m.validate()
	seen := make([]int, m.InRank)
	for _, d := range m.Out {
		if d.Src >= 0 {
			seen[d.Src]++
		}
	}
	for _, c := range seen {
		if c != 1 {
			return false
		}
	}
	return true
}

// Inverse returns the inverse map.  Constant output dimensions are dropped
// (they carry no input information), so the inverse maps rank-OutRank
// tuples back to rank-InRank tuples only when the map has no constant
// dimensions; otherwise Inverse panics — callers should use PreimageBox
// for general preimages.
func (m AffineMap) Inverse() AffineMap {
	if !m.Invertible() {
		panic("iset: Inverse of non-invertible map")
	}
	inv := AffineMap{InRank: m.OutRank(), Out: make([]DimMap, m.InRank)}
	assigned := make([]bool, m.InRank)
	for k, d := range m.Out {
		if d.Src < 0 {
			continue
		}
		// out[k] = s*in[src] + c  =>  in[src] = s*out[k] - s*c
		inv.Out[d.Src] = DimMap{Src: k, Scale: d.Scale, Offset: -d.Scale * d.Offset}
		assigned[d.Src] = true
	}
	for src, ok := range assigned {
		if !ok {
			panic(fmt.Sprintf("iset: input dim %d unconstrained in Inverse", src))
		}
	}
	return inv
}

// ImageBox returns the image of a box under the map.  The result is exact
// when no input dimension feeds more than one output dimension (the 1-1
// subscript mappings of CP translation always satisfy this); when an input
// feeds several outputs the result is a sound over-approximation, since a
// box cannot express the correlation between the output dimensions.
func (m AffineMap) ImageBox(b Box) Box {
	m.validate()
	if b.Rank() != m.InRank {
		panic("iset: ImageBox rank mismatch")
	}
	out := Box{Lo: make([]int, len(m.Out)), Hi: make([]int, len(m.Out))}
	if b.Empty() {
		// Preserve emptiness with an inverted interval.
		for k := range m.Out {
			out.Lo[k], out.Hi[k] = 1, 0
		}
		return out
	}
	for k, d := range m.Out {
		switch {
		case d.Src < 0:
			out.Lo[k], out.Hi[k] = d.Offset, d.Offset
		case d.Scale == 1:
			out.Lo[k] = b.Lo[d.Src] + d.Offset
			out.Hi[k] = b.Hi[d.Src] + d.Offset
		default: // Scale == -1
			out.Lo[k] = -b.Hi[d.Src] + d.Offset
			out.Hi[k] = -b.Lo[d.Src] + d.Offset
		}
	}
	return out
}

// Image returns the exact image of a set under the map.
func (m AffineMap) Image(s Set) Set {
	out := EmptySet(m.OutRank())
	for _, b := range s.boxes {
		out = out.UnionBox(m.ImageBox(b))
	}
	return out
}

// PreimageBox returns the exact preimage {p : m(p) ∈ b} of a box,
// intersected with the universe box u over input tuples.  Input dimensions
// that no output reads are unconstrained, hence the need for u.
func (m AffineMap) PreimageBox(b Box, u Box) Box {
	m.validate()
	if b.Rank() != m.OutRank() || u.Rank() != m.InRank {
		panic("iset: PreimageBox rank mismatch")
	}
	out := u.clone()
	for k, d := range m.Out {
		lo, hi := b.Lo[k], b.Hi[k]
		switch {
		case d.Src < 0:
			if d.Offset < lo || d.Offset > hi {
				// Constant dimension misses the box: empty preimage.
				for j := range out.Lo {
					out.Lo[j], out.Hi[j] = 1, 0
				}
				return out
			}
		case d.Scale == 1:
			out.Lo[d.Src] = max(out.Lo[d.Src], lo-d.Offset)
			out.Hi[d.Src] = min(out.Hi[d.Src], hi-d.Offset)
		default: // Scale == -1: lo ≤ -in+c ≤ hi  =>  c-hi ≤ in ≤ c-lo
			out.Lo[d.Src] = max(out.Lo[d.Src], d.Offset-hi)
			out.Hi[d.Src] = min(out.Hi[d.Src], d.Offset-lo)
		}
	}
	return out
}

// Preimage returns the exact preimage of a set, within universe u.
func (m AffineMap) Preimage(s Set, u Box) Set {
	out := EmptySet(m.InRank)
	for _, b := range s.boxes {
		out = out.UnionBox(m.PreimageBox(b, u))
	}
	return out
}

// Compose returns the map p ↦ m(g(p)).
func (m AffineMap) Compose(g AffineMap) AffineMap {
	m.validate()
	g.validate()
	if g.OutRank() != m.InRank {
		panic("iset: Compose rank mismatch")
	}
	out := AffineMap{InRank: g.InRank, Out: make([]DimMap, m.OutRank())}
	for k, d := range m.Out {
		if d.Src < 0 {
			out.Out[k] = d
			continue
		}
		inner := g.Out[d.Src]
		if inner.Src < 0 {
			out.Out[k] = DimMap{Src: -1, Offset: d.Scale*inner.Offset + d.Offset}
		} else {
			out.Out[k] = DimMap{
				Src:    inner.Src,
				Scale:  d.Scale * inner.Scale,
				Offset: d.Scale*inner.Offset + d.Offset,
			}
		}
	}
	return out
}

// String renders the map, e.g. "(i0,i1) -> (i0+1, 5, -i1)".
func (m AffineMap) String() string {
	in := make([]string, m.InRank)
	for k := range in {
		in[k] = fmt.Sprintf("i%d", k)
	}
	out := make([]string, len(m.Out))
	for k, d := range m.Out {
		switch {
		case d.Src < 0:
			out[k] = fmt.Sprintf("%d", d.Offset)
		case d.Scale == 1 && d.Offset == 0:
			out[k] = fmt.Sprintf("i%d", d.Src)
		case d.Scale == 1:
			out[k] = fmt.Sprintf("i%d%+d", d.Src, d.Offset)
		case d.Offset == 0:
			out[k] = fmt.Sprintf("-i%d", d.Src)
		default:
			out[k] = fmt.Sprintf("-i%d%+d", d.Src, d.Offset)
		}
	}
	return fmt.Sprintf("(%s) -> (%s)", join(in), join(out))
}

func join(xs []string) string {
	s := ""
	for i, x := range xs {
		if i > 0 {
			s += ","
		}
		s += x
	}
	return s
}
