package iset

import (
	"testing"
)

func TestBoxBasics(t *testing.T) {
	b := NewBox([]int{1, 2}, []int{3, 5})
	if b.Rank() != 2 {
		t.Fatalf("rank = %d, want 2", b.Rank())
	}
	if b.Empty() {
		t.Fatal("box should not be empty")
	}
	if got := b.Card(); got != 12 {
		t.Fatalf("Card = %d, want 12", got)
	}
	if !b.Contains([]int{2, 3}) {
		t.Error("Contains(2,3) = false")
	}
	if b.Contains([]int{0, 3}) {
		t.Error("Contains(0,3) = true")
	}
	if b.Contains([]int{2}) {
		t.Error("Contains wrong-rank tuple = true")
	}
}

func TestBoxEmpty(t *testing.T) {
	e := NewBox([]int{3}, []int{1})
	if !e.Empty() {
		t.Fatal("inverted interval should be empty")
	}
	if e.Card() != 0 {
		t.Fatalf("empty Card = %d", e.Card())
	}
	if e.Contains([]int{2}) {
		t.Error("empty box contains a point")
	}
	full := Interval(0, 4)
	if !full.ContainsBox(e) {
		t.Error("every box should contain the empty box")
	}
	if e.ContainsBox(full) {
		t.Error("empty box contains a non-empty box")
	}
	if !e.Eq(NewBox([]int{10, 1}, []int{0, 5})) {
		// Ranks differ so these are not equal.
		t.Log("different-rank empties are unequal (expected)")
	}
	e2 := NewBox([]int{7}, []int{2})
	if !e.Eq(e2) {
		t.Error("two empty same-rank boxes should be Eq")
	}
}

func TestBoxIntersect(t *testing.T) {
	a := NewBox([]int{0, 0}, []int{5, 5})
	b := NewBox([]int{3, 4}, []int{9, 9})
	got := a.Intersect(b)
	want := NewBox([]int{3, 4}, []int{5, 5})
	if !got.Eq(want) {
		t.Fatalf("Intersect = %v, want %v", got, want)
	}
	c := NewBox([]int{6, 0}, []int{9, 9})
	if !a.Intersect(c).Empty() {
		t.Error("disjoint boxes should intersect to empty")
	}
	if a.Intersects(c) {
		t.Error("Intersects reported true for disjoint boxes")
	}
}

func TestBoxSubtract(t *testing.T) {
	a := NewBox([]int{0, 0}, []int{9, 9})
	b := NewBox([]int{3, 3}, []int{6, 6})
	parts := a.Subtract(b)
	// Pieces must be disjoint, cover a−b, and miss b entirely.
	var total int64
	for i, p := range parts {
		if p.Empty() {
			t.Fatalf("piece %d empty", i)
		}
		if p.Intersects(b) {
			t.Fatalf("piece %v overlaps subtrahend", p)
		}
		for j := i + 1; j < len(parts); j++ {
			if p.Intersects(parts[j]) {
				t.Fatalf("pieces %v and %v overlap", p, parts[j])
			}
		}
		total += p.Card()
	}
	if want := a.Card() - b.Card(); total != want {
		t.Fatalf("pieces cover %d points, want %d", total, want)
	}

	if got := a.Subtract(a); got != nil {
		t.Fatalf("a-a = %v, want nil", got)
	}
	far := NewBox([]int{100, 100}, []int{101, 101})
	got := a.Subtract(far)
	if len(got) != 1 || !got[0].Eq(a) {
		t.Fatalf("a-far = %v, want [a]", got)
	}
}

func TestBoxTranslateGrow(t *testing.T) {
	a := NewBox([]int{1, 1}, []int{4, 4})
	tr := a.Translate([]int{2, -1})
	if !tr.Eq(NewBox([]int{3, 0}, []int{6, 3})) {
		t.Fatalf("Translate = %v", tr)
	}
	g := a.Grow(0, 1, 2)
	if !g.Eq(NewBox([]int{0, 1}, []int{6, 4})) {
		t.Fatalf("Grow = %v", g)
	}
	w := a.WithDim(1, 7, 9)
	if !w.Eq(NewBox([]int{1, 7}, []int{4, 9})) {
		t.Fatalf("WithDim = %v", w)
	}
}

func TestBoxDropInsert(t *testing.T) {
	a := NewBox([]int{1, 2, 3}, []int{4, 5, 6})
	d := a.Drop(1)
	if !d.Eq(NewBox([]int{1, 3}, []int{4, 6})) {
		t.Fatalf("Drop = %v", d)
	}
	ins := d.Insert(1, 2, 5)
	if !ins.Eq(a) {
		t.Fatalf("Insert(Drop) = %v, want %v", ins, a)
	}
	front := d.Insert(0, 0, 0)
	if !front.Eq(NewBox([]int{0, 1, 3}, []int{0, 4, 6})) {
		t.Fatalf("Insert front = %v", front)
	}
}

func TestBoxEach(t *testing.T) {
	b := NewBox([]int{0, 0}, []int{2, 1})
	var pts [][]int
	b.Each(func(p []int) bool {
		cp := make([]int, len(p))
		copy(cp, p)
		pts = append(pts, cp)
		return true
	})
	if len(pts) != 6 {
		t.Fatalf("enumerated %d points, want 6", len(pts))
	}
	if pts[0][0] != 0 || pts[0][1] != 0 {
		t.Errorf("first point %v", pts[0])
	}
	if pts[5][0] != 2 || pts[5][1] != 1 {
		t.Errorf("last point %v", pts[5])
	}
	// Early stop.
	n := 0
	b.Each(func(p []int) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("early stop visited %d, want 3", n)
	}
}

func TestBoxString(t *testing.T) {
	b := NewBox([]int{1, 7, 1}, []int{62, 7, 62})
	if got, want := b.String(), "[1:62, 7, 1:62]"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if got := (NewBox([]int{2}, []int{1})).String(); got != "[]" {
		t.Errorf("empty String = %q", got)
	}
}

func TestBoxImmutability(t *testing.T) {
	lo := []int{1, 1}
	hi := []int{5, 5}
	b := NewBox(lo, hi)
	lo[0] = 99
	if b.Lo[0] != 1 {
		t.Fatal("NewBox aliased its argument")
	}
	c := b.Translate([]int{1, 1})
	if b.Lo[0] != 1 || c.Lo[0] != 2 {
		t.Fatal("Translate mutated receiver")
	}
}
