package iset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAffineApply(t *testing.T) {
	// (i,j) -> (j-1, 5, -i+2)
	m := AffineMap{InRank: 2, Out: []DimMap{
		{Src: 1, Scale: 1, Offset: -1},
		{Src: -1, Offset: 5},
		{Src: 0, Scale: -1, Offset: 2},
	}}
	got := m.Apply([]int{3, 7})
	want := []int{6, 5, -1}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("Apply = %v, want %v", got, want)
		}
	}
}

func TestAffineIdentityTranslation(t *testing.T) {
	id := Identity(3)
	p := []int{4, 5, 6}
	q := id.Apply(p)
	for k := range p {
		if q[k] != p[k] {
			t.Fatalf("Identity.Apply = %v", q)
		}
	}
	tr := Translation([]int{1, -2, 0})
	q = tr.Apply(p)
	want := []int{5, 3, 6}
	for k := range want {
		if q[k] != want[k] {
			t.Fatalf("Translation.Apply = %v, want %v", q, want)
		}
	}
}

func TestAffineInverse(t *testing.T) {
	// (i,j) -> (j+3, -i)
	m := AffineMap{InRank: 2, Out: []DimMap{
		{Src: 1, Scale: 1, Offset: 3},
		{Src: 0, Scale: -1, Offset: 0},
	}}
	if !m.Invertible() {
		t.Fatal("map should be invertible")
	}
	inv := m.Inverse()
	for x := -3; x <= 3; x++ {
		for y := -3; y <= 3; y++ {
			p := []int{x, y}
			q := inv.Apply(m.Apply(p))
			if q[0] != x || q[1] != y {
				t.Fatalf("inverse round trip failed at %v: got %v", p, q)
			}
		}
	}
}

func TestAffineNonInvertible(t *testing.T) {
	// Both outputs read input 0; input 1 unread.
	m := AffineMap{InRank: 2, Out: []DimMap{
		{Src: 0, Scale: 1},
		{Src: 0, Scale: 1, Offset: 1},
	}}
	if m.Invertible() {
		t.Fatal("map should not be invertible")
	}
}

func TestAffineImagePreimage(t *testing.T) {
	// Stencil shift: (i,j) -> (i+1, j)
	m := Translation([]int{1, 0})
	b := NewBox([]int{1, 1}, []int{8, 8})
	img := m.ImageBox(b)
	if !img.Eq(NewBox([]int{2, 1}, []int{9, 8})) {
		t.Fatalf("ImageBox = %v", img)
	}
	u := NewBox([]int{-100, -100}, []int{100, 100})
	pre := m.PreimageBox(img, u)
	if !pre.Eq(b) {
		t.Fatalf("PreimageBox = %v, want %v", pre, b)
	}
}

func TestAffinePreimageConstantDim(t *testing.T) {
	// (i) -> (i, 7): preimage of a box not containing 7 in dim 1 is empty.
	m := AffineMap{InRank: 1, Out: []DimMap{
		{Src: 0, Scale: 1},
		{Src: -1, Offset: 7},
	}}
	u := Interval(-50, 50)
	hit := m.PreimageBox(NewBox([]int{0, 7}, []int{9, 7}), u)
	if !hit.Eq(Interval(0, 9)) {
		t.Fatalf("hit preimage = %v", hit)
	}
	miss := m.PreimageBox(NewBox([]int{0, 8}, []int{9, 9}), u)
	if !miss.Empty() {
		t.Fatalf("miss preimage = %v, want empty", miss)
	}
}

func TestAffineCompose(t *testing.T) {
	f := Translation([]int{1, 2})            // p -> p + (1,2)
	g := AffineMap{InRank: 2, Out: []DimMap{ // (i,j) -> (j, -i)
		{Src: 1, Scale: 1},
		{Src: 0, Scale: -1},
	}}
	fg := f.Compose(g) // p -> g(p) + (1,2)
	p := []int{3, 4}
	want := f.Apply(g.Apply(p))
	got := fg.Apply(p)
	if got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Compose = %v, want %v", got, want)
	}
}

func TestAffineEmptyBoxImage(t *testing.T) {
	m := Translation([]int{5})
	e := Interval(3, 1)
	if !m.ImageBox(e).Empty() {
		t.Fatal("image of empty box should be empty")
	}
}

func randUnitMap(r *rand.Rand, inRank, outRank int) AffineMap {
	m := AffineMap{InRank: inRank, Out: make([]DimMap, outRank)}
	for k := range m.Out {
		if r.Intn(5) == 0 {
			m.Out[k] = DimMap{Src: -1, Offset: r.Intn(9) - 4}
			continue
		}
		sc := 1
		if r.Intn(2) == 0 {
			sc = -1
		}
		m.Out[k] = DimMap{Src: r.Intn(inRank), Scale: sc, Offset: r.Intn(9) - 4}
	}
	return m
}

func TestQuickImageMatchesPointwise(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randUnitMap(r, 2, 2)
		b := randBox2(r)
		img := m.ImageBox(b)
		ok := true
		b.Each(func(p []int) bool {
			if !img.Contains(m.Apply(p)) {
				ok = false
				return false
			}
			return true
		})
		if !ok {
			return false
		}
		// Tightness holds only when no input dim feeds two outputs
		// (otherwise ImageBox is a documented over-approximation).
		srcCount := map[int]int{}
		for _, d := range m.Out {
			if d.Src >= 0 {
				srcCount[d.Src]++
			}
		}
		for _, c := range srcCount {
			if c > 1 {
				return true
			}
		}
		seen := map[[2]int]bool{}
		b.Each(func(p []int) bool {
			q := m.Apply(p)
			seen[[2]int{q[0], q[1]}] = true
			return true
		})
		return img.Card() == int64(len(seen))
	}
	cfg := quickCfg()
	cfg.MaxCount = 200
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPreimageMatchesPointwise(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randUnitMap(r, 2, 2)
		target := randBox2(r)
		u := NewBox([]int{-6, -6}, []int{16, 16})
		pre := m.PreimageBox(target, u)
		ok := true
		u.Each(func(p []int) bool {
			inPre := pre.Contains(p)
			hits := target.Contains(m.Apply(p))
			if inPre != hits {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	cfg := quickCfg()
	cfg.MaxCount = 80
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInverseRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Build a random invertible map: a permutation with signs/offsets.
		perm := r.Perm(3)
		m := AffineMap{InRank: 3, Out: make([]DimMap, 3)}
		for k := range m.Out {
			sc := 1
			if r.Intn(2) == 0 {
				sc = -1
			}
			m.Out[k] = DimMap{Src: perm[k], Scale: sc, Offset: r.Intn(9) - 4}
		}
		if !m.Invertible() {
			return false
		}
		inv := m.Inverse()
		p := []int{r.Intn(21) - 10, r.Intn(21) - 10, r.Intn(21) - 10}
		q := inv.Apply(m.Apply(p))
		q2 := m.Apply(inv.Apply(p))
		for k := range p {
			if q[k] != p[k] || q2[k] != p[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Fatal(err)
	}
}
