// Package iset implements the symbolic integer-set framework that underlies
// every data-parallel analysis in the dhpf compiler, following the approach
// of the Rice dHPF compiler (Adve & Mellor-Crummey, PLDI'98; SC'98 §2).
//
// The key quantities the compiler manipulates — iteration sets of loops,
// data sets of array references, processor sets of distributions, and
// communication sets — are all represented as finite unions of integer
// boxes (axis-aligned products of inclusive intervals).  For the programs
// the compiler accepts (affine subscripts with unit coefficients, BLOCK
// and BLOCK(n) distributions), every set that arises during analysis is
// exactly a union of boxes, so the algebra here is exact, not an
// approximation.  Symbolic parameters (processor ids, block sizes, grid
// extents) are bound to concrete values before sets are constructed; the
// compiler evaluates its set equations per representative processor.
package iset

import (
	"fmt"
	"sort"
	"strings"
)

// Box is an axis-aligned product of inclusive integer intervals
// [Lo[0]:Hi[0]] x ... x [Lo[d-1]:Hi[d-1]].  A Box with any Lo[k] > Hi[k]
// is empty.  Boxes are immutable by convention: operations return fresh
// boxes and never alias their operands' slices.
type Box struct {
	Lo, Hi []int
}

// NewBox returns the box with the given inclusive bounds.
// It panics if the slices have different lengths.
func NewBox(lo, hi []int) Box {
	if len(lo) != len(hi) {
		panic(fmt.Sprintf("iset: NewBox rank mismatch %d vs %d", len(lo), len(hi)))
	}
	b := Box{Lo: make([]int, len(lo)), Hi: make([]int, len(hi))}
	copy(b.Lo, lo)
	copy(b.Hi, hi)
	return b
}

// Interval returns a 1-D box [lo:hi].
func Interval(lo, hi int) Box { return NewBox([]int{lo}, []int{hi}) }

// Point returns the degenerate box holding exactly the given tuple.
func Point(coords ...int) Box { return NewBox(coords, coords) }

// Rank returns the dimensionality of the box.
func (b Box) Rank() int { return len(b.Lo) }

// Empty reports whether the box contains no integer points.
func (b Box) Empty() bool {
	for k := range b.Lo {
		if b.Lo[k] > b.Hi[k] {
			return true
		}
	}
	return false
}

// Card returns the number of integer points in the box.
func (b Box) Card() int64 {
	n := int64(1)
	for k := range b.Lo {
		w := int64(b.Hi[k]) - int64(b.Lo[k]) + 1
		if w <= 0 {
			return 0
		}
		n *= w
	}
	return n
}

// Contains reports whether the tuple p lies inside the box.
func (b Box) Contains(p []int) bool {
	if len(p) != b.Rank() {
		return false
	}
	for k := range p {
		if p[k] < b.Lo[k] || p[k] > b.Hi[k] {
			return false
		}
	}
	return true
}

// Eq reports whether two boxes denote the same point set.
func (b Box) Eq(c Box) bool {
	if b.Rank() != c.Rank() {
		return false
	}
	if b.Empty() && c.Empty() {
		return true
	}
	if b.Empty() != c.Empty() {
		return false
	}
	for k := range b.Lo {
		if b.Lo[k] != c.Lo[k] || b.Hi[k] != c.Hi[k] {
			return false
		}
	}
	return true
}

// Intersect returns the intersection of two boxes of equal rank.
func (b Box) Intersect(c Box) Box {
	if b.Rank() != c.Rank() {
		panic("iset: Intersect rank mismatch")
	}
	out := Box{Lo: make([]int, b.Rank()), Hi: make([]int, b.Rank())}
	for k := range b.Lo {
		out.Lo[k] = max(b.Lo[k], c.Lo[k])
		out.Hi[k] = min(b.Hi[k], c.Hi[k])
	}
	return out
}

// Intersects reports whether the two boxes share at least one point.
func (b Box) Intersects(c Box) bool { return !b.Intersect(c).Empty() }

// ContainsBox reports whether c ⊆ b.
func (b Box) ContainsBox(c Box) bool {
	if c.Empty() {
		return true
	}
	if b.Empty() {
		return false
	}
	for k := range b.Lo {
		if c.Lo[k] < b.Lo[k] || c.Hi[k] > b.Hi[k] {
			return false
		}
	}
	return true
}

// Subtract returns b − c as a slice of disjoint boxes.  The result has at
// most 2·rank boxes (the classic axis-sweep decomposition).
func (b Box) Subtract(c Box) []Box {
	if b.Empty() {
		return nil
	}
	inter := b.Intersect(c)
	if inter.Empty() {
		return []Box{b.clone()}
	}
	if inter.Eq(b) {
		return nil
	}
	var out []Box
	rem := b.clone()
	for k := range b.Lo {
		if rem.Lo[k] < inter.Lo[k] {
			low := rem.clone()
			low.Hi[k] = inter.Lo[k] - 1
			out = append(out, low)
			rem.Lo[k] = inter.Lo[k]
		}
		if rem.Hi[k] > inter.Hi[k] {
			high := rem.clone()
			high.Lo[k] = inter.Hi[k] + 1
			out = append(out, high)
			rem.Hi[k] = inter.Hi[k]
		}
	}
	return out
}

// Translate returns the box shifted by the offset vector.
func (b Box) Translate(off []int) Box {
	if len(off) != b.Rank() {
		panic("iset: Translate rank mismatch")
	}
	out := b.clone()
	for k := range off {
		out.Lo[k] += off[k]
		out.Hi[k] += off[k]
	}
	return out
}

// Grow returns the box widened by lo points downward and hi points upward
// in dimension dim (overlap-area construction).
func (b Box) Grow(dim, lo, hi int) Box {
	out := b.clone()
	out.Lo[dim] -= lo
	out.Hi[dim] += hi
	return out
}

// WithDim returns a copy of the box with dimension dim replaced by [lo:hi].
func (b Box) WithDim(dim, lo, hi int) Box {
	out := b.clone()
	out.Lo[dim] = lo
	out.Hi[dim] = hi
	return out
}

// Project returns the 1-D interval of dimension dim.
func (b Box) Project(dim int) (lo, hi int) { return b.Lo[dim], b.Hi[dim] }

// Drop returns the box with dimension dim removed (projection away).
func (b Box) Drop(dim int) Box {
	lo := make([]int, 0, b.Rank()-1)
	hi := make([]int, 0, b.Rank()-1)
	for k := range b.Lo {
		if k == dim {
			continue
		}
		lo = append(lo, b.Lo[k])
		hi = append(hi, b.Hi[k])
	}
	return Box{Lo: lo, Hi: hi}
}

// Insert returns the box with a new dimension [lo:hi] inserted at index dim.
func (b Box) Insert(dim, lo, hi int) Box {
	nlo := make([]int, 0, b.Rank()+1)
	nhi := make([]int, 0, b.Rank()+1)
	nlo = append(nlo, b.Lo[:dim]...)
	nlo = append(nlo, lo)
	nlo = append(nlo, b.Lo[dim:]...)
	nhi = append(nhi, b.Hi[:dim]...)
	nhi = append(nhi, hi)
	nhi = append(nhi, b.Hi[dim:]...)
	return Box{Lo: nlo, Hi: nhi}
}

func (b Box) clone() Box {
	return NewBox(b.Lo, b.Hi)
}

// String renders the box in the paper's bracket notation, e.g.
// "[1:62, 17, 1:62]".
func (b Box) String() string {
	if b.Empty() {
		return "[]"
	}
	var sb strings.Builder
	sb.WriteByte('[')
	for k := range b.Lo {
		if k > 0 {
			sb.WriteString(", ")
		}
		if b.Lo[k] == b.Hi[k] {
			fmt.Fprintf(&sb, "%d", b.Lo[k])
		} else {
			fmt.Fprintf(&sb, "%d:%d", b.Lo[k], b.Hi[k])
		}
	}
	sb.WriteByte(']')
	return sb.String()
}

// Each calls fn for every tuple in the box in lexicographic order.  The
// tuple slice is reused between calls; fn must copy it to retain it.
// Each stops early (returning false) if fn returns false.
func (b Box) Each(fn func(p []int) bool) bool {
	if b.Empty() {
		return true
	}
	p := make([]int, b.Rank())
	copy(p, b.Lo)
	for {
		if !fn(p) {
			return false
		}
		k := b.Rank() - 1
		for k >= 0 {
			p[k]++
			if p[k] <= b.Hi[k] {
				break
			}
			p[k] = b.Lo[k]
			k--
		}
		if k < 0 {
			return true
		}
	}
}

// canonKey orders boxes deterministically for normalization.
func (b Box) canonKey() string { return b.String() }

func sortBoxes(bs []Box) {
	sort.Slice(bs, func(i, j int) bool { return bs[i].canonKey() < bs[j].canonKey() })
}
