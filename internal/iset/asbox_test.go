package iset

import (
	"math/rand"
	"testing"
)

// randBox returns a random (possibly empty) box of the given rank with
// coordinates in [-4, 12].
func randBox(rng *rand.Rand, rank int) Box {
	lo := make([]int, rank)
	hi := make([]int, rank)
	for k := 0; k < rank; k++ {
		a := rng.Intn(17) - 4
		b := a + rng.Intn(8) - 1 // occasionally empty (hi = lo-1)
		lo[k], hi[k] = a, b
	}
	return NewBox(lo, hi)
}

// TestAsBoxAgreesWithGeneralRepresentation is the property test of the
// AsBox fast path: whenever AsBox reports a box, the set must equal
// FromBox of that box exactly, and point membership through the box must
// agree with the general Contains on a sample of points in and around
// the bounding region.  When AsBox declines, the set must genuinely not
// be a single box (empty, or more than one disjoint fragment).
func TestAsBoxAgreesWithGeneralRepresentation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 500; trial++ {
		rank := 1 + rng.Intn(3)
		s := EmptySet(rank)
		for n := rng.Intn(4); n >= 0; n-- {
			s = s.UnionBox(randBox(rng, rank))
		}
		b, ok := s.AsBox()
		if ok {
			if s.IsEmpty() {
				t.Fatalf("trial %d: AsBox=true on empty set %v", trial, s)
			}
			if !s.Eq(FromBox(b)) {
				t.Fatalf("trial %d: AsBox returned %v but set is %v", trial, b, s)
			}
			if b.Card() != s.Card() {
				t.Fatalf("trial %d: AsBox card %d != set card %d", trial, b.Card(), s.Card())
			}
		} else if !s.IsEmpty() {
			// Declined: the representation holds >1 disjoint fragments, so
			// the set must be a strict subset of its bounding box or a
			// genuinely non-coalescible tiling; either way the general
			// membership path must remain authoritative (checked below).
			if len(s.Boxes()) < 2 {
				t.Fatalf("trial %d: AsBox=false on single-box set %v", trial, s)
			}
		}
		// Membership agreement on sampled points, box path vs general path.
		p := make([]int, rank)
		for i := 0; i < 50; i++ {
			for k := range p {
				p[k] = rng.Intn(21) - 6
			}
			want := s.Contains(p)
			if ok && b.Contains(p) != want {
				t.Fatalf("trial %d: box membership of %v = %v, set says %v", trial, p, b.Contains(p), want)
			}
		}
		// AsBox must not alias internal state.
		if ok && rank > 0 {
			b.Lo[0] = -999
			if b2, ok2 := s.AsBox(); !ok2 || b2.Lo[0] == -999 {
				t.Fatalf("trial %d: mutating AsBox result changed the set", trial)
			}
		}
	}
}

// BenchmarkSetContains compares per-point membership through the general
// Contains scan against the hoisted AsBox bounds-comparison fast path —
// the cost the execution engine removes from every iteration point.
func BenchmarkSetContains(b *testing.B) {
	s := FromBox(NewBox([]int{1, 1, 1}, []int{64, 64, 64}))
	p := []int{32, 32, 32}
	b.Run("general", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !s.Contains(p) {
				b.Fatal("expected member")
			}
		}
	})
	b.Run("asbox", func(b *testing.B) {
		box, ok := s.AsBox()
		if !ok {
			b.Fatal("expected a box")
		}
		lo, hi := box.Lo, box.Hi
		for i := 0; i < b.N; i++ {
			in := true
			for k, v := range p {
				if v < lo[k] || v > hi[k] {
					in = false
					break
				}
			}
			if !in {
				b.Fatal("expected member")
			}
		}
	})
}
