package iset

import (
	"strings"
)

// Set is a finite union of integer boxes of a common rank.  The zero value
// is the empty set of rank -1 (rank adapts to the first box added).
// Sets are immutable by convention: all methods return new sets.
//
// Internal invariant: boxes are non-empty and pairwise disjoint.  This
// makes Card a simple sum and Subset/Eq exact.
type Set struct {
	rank  int
	boxes []Box
}

// Empty returns the empty set of the given rank.
func EmptySet(rank int) Set { return Set{rank: rank} }

// FromBox returns the set holding exactly the given box.
func FromBox(b Box) Set {
	s := Set{rank: b.Rank()}
	if !b.Empty() {
		s.boxes = []Box{b.clone()}
	}
	return s
}

// FromBoxes returns the union of the given boxes.
func FromBoxes(bs ...Box) Set {
	if len(bs) == 0 {
		return Set{rank: -1}
	}
	s := EmptySet(bs[0].Rank())
	for _, b := range bs {
		s = s.UnionBox(b)
	}
	return s
}

// Rank returns the dimensionality of the set's tuples (-1 if indeterminate).
func (s Set) Rank() int { return s.rank }

// Boxes returns the disjoint boxes comprising the set, in canonical order.
func (s Set) Boxes() []Box {
	out := make([]Box, len(s.boxes))
	for i, b := range s.boxes {
		out[i] = b.clone()
	}
	sortBoxes(out)
	return out
}

// IsEmpty reports whether the set contains no points.
func (s Set) IsEmpty() bool { return len(s.boxes) == 0 }

// AsBox returns the set's single box when the set is exactly one box
// (the overwhelmingly common case for iteration sets after CP selection)
// and reports whether it is.  Empty and multi-box sets return false.
// The returned box is a copy; mutating it does not affect the set.
//
// This is the supported fast path for consumers that can specialize the
// box case — e.g. replacing a per-point Contains test with hoisted
// per-dimension bounds comparisons.
func (s Set) AsBox() (Box, bool) {
	if len(s.boxes) != 1 {
		return Box{}, false
	}
	return s.boxes[0].clone(), true
}

// Card returns the number of points in the set.
func (s Set) Card() int64 {
	var n int64
	for _, b := range s.boxes {
		n += b.Card()
	}
	return n
}

// Contains reports whether tuple p is in the set.
func (s Set) Contains(p []int) bool {
	for _, b := range s.boxes {
		if b.Contains(p) {
			return true
		}
	}
	return false
}

func (s Set) checkRank(t Set) {
	if len(s.boxes) > 0 && len(t.boxes) > 0 && s.rank != t.rank {
		panic("iset: set rank mismatch")
	}
}

// rankOr returns the set's rank, or the other set's rank when this set
// is empty (the zero value Set adapts to its first operand).
func (s Set) rankOr(t Set) int {
	if len(s.boxes) > 0 {
		return s.rank
	}
	return t.rank
}

// UnionBox returns s ∪ {b}, preserving disjointness by inserting only the
// parts of b not already covered.
func (s Set) UnionBox(b Box) Set {
	if b.Empty() {
		return s
	}
	if s.rank < 0 {
		s.rank = b.Rank()
	}
	frags := []Box{b.clone()}
	for _, have := range s.boxes {
		var next []Box
		for _, f := range frags {
			next = append(next, f.Subtract(have)...)
		}
		frags = next
		if len(frags) == 0 {
			return s
		}
	}
	out := Set{rank: s.rank, boxes: make([]Box, 0, len(s.boxes)+len(frags))}
	out.boxes = append(out.boxes, s.boxes...)
	out.boxes = append(out.boxes, frags...)
	return out.coalesce()
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set {
	s.checkRank(t)
	out := s
	out.rank = s.rankOr(t)
	for _, b := range t.boxes {
		out = out.UnionBox(b)
	}
	return out
}

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set {
	s.checkRank(t)
	out := Set{rank: s.rankOr(t)}
	for _, a := range s.boxes {
		for _, b := range t.boxes {
			c := a.Intersect(b)
			if !c.Empty() {
				// Disjointness of s's boxes ensures the pieces
				// a∩b are disjoint across a; across b they are
				// disjoint because t's boxes are disjoint.
				out.boxes = append(out.boxes, c)
			}
		}
	}
	return out.coalesce()
}

// IntersectBox returns s ∩ {b}.
func (s Set) IntersectBox(b Box) Set { return s.Intersect(FromBox(b)) }

// Subtract returns s − t.
func (s Set) Subtract(t Set) Set {
	s.checkRank(t)
	out := Set{rank: s.rank}
	for _, a := range s.boxes {
		frags := []Box{a.clone()}
		for _, b := range t.boxes {
			var next []Box
			for _, f := range frags {
				next = append(next, f.Subtract(b)...)
			}
			frags = next
			if len(frags) == 0 {
				break
			}
		}
		out.boxes = append(out.boxes, frags...)
	}
	return out.coalesce()
}

// SubtractBox returns s − {b}.
func (s Set) SubtractBox(b Box) Set { return s.Subtract(FromBox(b)) }

// SubsetOf reports whether s ⊆ t.
func (s Set) SubsetOf(t Set) bool { return s.Subtract(t).IsEmpty() }

// Eq reports whether the two sets contain exactly the same points.
func (s Set) Eq(t Set) bool { return s.SubsetOf(t) && t.SubsetOf(s) }

// Translate returns the set shifted by the offset vector.
func (s Set) Translate(off []int) Set {
	out := Set{rank: s.rank, boxes: make([]Box, len(s.boxes))}
	for i, b := range s.boxes {
		out.boxes[i] = b.Translate(off)
	}
	return out
}

// BoundingBox returns the smallest box containing the set.  The second
// result is false if the set is empty.
func (s Set) BoundingBox() (Box, bool) {
	if s.IsEmpty() {
		return Box{}, false
	}
	bb := s.boxes[0].clone()
	for _, b := range s.boxes[1:] {
		for k := range bb.Lo {
			bb.Lo[k] = min(bb.Lo[k], b.Lo[k])
			bb.Hi[k] = max(bb.Hi[k], b.Hi[k])
		}
	}
	return bb, true
}

// Each calls fn for every tuple in the set.  The tuple slice is reused; fn
// must copy it to retain it.  Iteration order is canonical box order, then
// lexicographic within each box.
func (s Set) Each(fn func(p []int) bool) bool {
	bs := s.Boxes()
	for _, b := range bs {
		if !b.Each(fn) {
			return false
		}
	}
	return true
}

// Drop projects away dimension dim (existential quantification).  Note
// that projection of a union of boxes is again a union of boxes.
func (s Set) Drop(dim int) Set {
	out := EmptySet(s.rank - 1)
	for _, b := range s.boxes {
		out = out.UnionBox(b.Drop(dim))
	}
	return out
}

// Insert adds a new dimension [lo:hi] at index dim to every box
// (the "vectorization" step of CP translation: an untranslated subscript
// is expanded through the loop range).
func (s Set) Insert(dim, lo, hi int) Set {
	out := EmptySet(s.rank + 1)
	for _, b := range s.boxes {
		out = out.UnionBox(b.Insert(dim, lo, hi))
	}
	return out
}

// ClampDim intersects dimension dim of every box with [lo:hi].
func (s Set) ClampDim(dim, lo, hi int) Set {
	out := EmptySet(s.rank)
	for _, b := range s.boxes {
		nb := b.clone()
		nb.Lo[dim] = max(nb.Lo[dim], lo)
		nb.Hi[dim] = min(nb.Hi[dim], hi)
		out = out.UnionBox(nb)
	}
	return out
}

// WithDim replaces dimension dim of every box with [lo:hi].
func (s Set) WithDim(dim, lo, hi int) Set {
	out := EmptySet(s.rank)
	for _, b := range s.boxes {
		out = out.UnionBox(b.WithDim(dim, lo, hi))
	}
	return out
}

// coalesce merges boxes that are adjacent along one dimension and equal in
// all others, keeping the representation small.  It preserves disjointness.
func (s Set) coalesce() Set {
	if len(s.boxes) <= 1 {
		return s
	}
	boxes := make([]Box, len(s.boxes))
	copy(boxes, s.boxes)
	changed := true
	for changed {
		changed = false
	outer:
		for i := 0; i < len(boxes); i++ {
			for j := i + 1; j < len(boxes); j++ {
				if m, ok := tryMerge(boxes[i], boxes[j]); ok {
					boxes[i] = m
					boxes = append(boxes[:j], boxes[j+1:]...)
					changed = true
					break outer
				}
			}
		}
	}
	return Set{rank: s.rank, boxes: boxes}
}

// tryMerge merges two boxes iff they agree in all dimensions except one,
// where they are adjacent or would union to a contiguous interval.
func tryMerge(a, b Box) (Box, bool) {
	if a.Rank() != b.Rank() {
		return Box{}, false
	}
	diff := -1
	for k := range a.Lo {
		if a.Lo[k] != b.Lo[k] || a.Hi[k] != b.Hi[k] {
			if diff >= 0 {
				return Box{}, false
			}
			diff = k
		}
	}
	if diff < 0 {
		// Identical boxes (should not happen under disjointness).
		return a.clone(), true
	}
	// Contiguity check along diff: [aLo:aHi] ∪ [bLo:bHi] must be an interval.
	lo1, hi1 := a.Lo[diff], a.Hi[diff]
	lo2, hi2 := b.Lo[diff], b.Hi[diff]
	if lo2 < lo1 {
		lo1, hi1, lo2, hi2 = lo2, hi2, lo1, hi1
	}
	if lo2 > hi1+1 {
		return Box{}, false
	}
	m := a.clone()
	m.Lo[diff] = lo1
	m.Hi[diff] = max(hi1, hi2)
	return m, true
}

// String renders the set as a union of boxes in canonical order.
func (s Set) String() string {
	if s.IsEmpty() {
		return "{}"
	}
	bs := s.Boxes()
	parts := make([]string, len(bs))
	for i, b := range bs {
		parts[i] = b.String()
	}
	return strings.Join(parts, " u ")
}
