// Package shm is a deterministic virtual-time shared-memory SPMD team:
// the second execution substrate beside the message-passing machine
// (internal/mpsim).  A team runs one goroutine per rank of the processor
// grid, but the ranks share the address space: a communication event is
// not a packed message, it is a synchronization edge after which the
// consumer pulls the producer's data directly, array to array.
//
// The synchronization protocol mirrors the message machine's mailbox
// semantics exactly — per (src, dst, tag) FIFO token queues — so any
// program whose sends and receives match on the message machine matches
// here too, strip for strip, and the pulled values are the values the
// message would have carried:
//
//   - Publish replaces Send: the producer posts a token carrying its
//     virtual clock and a reference to the source storage, then keeps
//     computing (buffered-send semantics);
//   - Await replaces Recv: the consumer blocks for the token, advances
//     its clock to the data's availability, and pulls straight from the
//     producer's array (the channel hand-off is the happens-before edge
//     that makes the direct read race-free);
//   - Ack + Drain replace nothing in the message model — they are the
//     shared-memory obligation: a producer must not overwrite a region
//     a consumer may still be reading, so before leaving a
//     communication phase it drains until every token it published has
//     been acknowledged.  Drain costs no virtual time (the cost model
//     treats the pull as completing at availability), it only orders
//     memory.
//
// Virtual time uses a memory-bandwidth term instead of message latency:
// an intra-node pull of B bytes costs B·MemGapPerByte on the consumer's
// clock, with no per-message overhead or wire latency.  Hybrid layouts
// ("ranks across a grid dimension × threads within a rank") assign each
// thread an outer group; pulls that cross groups are priced like
// messages, with the LogGP constants the outer message level would pay.
// Numeric results never depend on the cost model — clocks only decide
// how shm candidates rank against message-passing ones in the tuner.
//
// Reductions fold contributions in rank order 0..P-1, the same order
// mpsim.AllReduce folds, so reductions are bit-identical across the two
// substrates.  Aborts (virtual-time limit, wall-clock limit) panic with
// the mpsim error values, wrapping mpsim.ErrAborted, so callers prune
// over-budget runs with one errors.Is regardless of backend.
package shm

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"dhpf/internal/mpsim"
)

// MemSpeedup is the modelled advantage of a shared-memory pull over the
// message network's bandwidth: one byte through the memory system costs
// GapPerByte/MemSpeedup seconds.  Shared by FromMachine and the
// perfmodel screen so predicted and simulated shm times use one
// constant.
const MemSpeedup = 12.0

// SyncSpeedup is the modelled advantage of a shared-memory barrier or
// reduction step over one network latency: BarrierLatency =
// Latency/SyncSpeedup.  Shared with perfmodel like MemSpeedup.
const SyncSpeedup = 20.0

// Config fixes the team size and cost model.
type Config struct {
	Threads int
	// Groups assigns each thread an outer group for hybrid layouts;
	// pulls within a group cost memory bandwidth, pulls across groups
	// cost the message-level LogGP terms.  nil = one group (pure shm).
	Groups []int
	// FlopTime is the cost of one floating-point operation (seconds).
	FlopTime float64
	// MemGapPerByte is the memory-system inverse bandwidth an intra-group
	// pull pays per byte (seconds).
	MemGapPerByte float64
	// BarrierLatency is the cost of one log-tree step of a barrier or
	// reduction within a group (seconds).
	BarrierLatency float64
	// SendOverhead, RecvOverhead, Latency and GapPerByte price
	// cross-group pulls exactly like mpsim messages (hybrid layouts).
	SendOverhead float64
	RecvOverhead float64
	Latency      float64
	GapPerByte   float64
	// TimeLimit aborts once any thread's virtual clock exceeds it
	// (0 = unlimited); deterministic, like mpsim's.
	TimeLimit float64
	// WallLimit aborts after a real-time duration (0 = unlimited): the
	// safety valve for deadlocked rendezvous.
	WallLimit time.Duration
}

// FromMachine derives a shared-memory cost model from a message-machine
// configuration: same flop cost and limits, memory bandwidth and sync
// latency scaled by the documented MemSpeedup/SyncSpeedup constants, and
// the machine's own LogGP terms retained for cross-group pulls.
func FromMachine(cfg mpsim.Config, groups []int) Config {
	return Config{
		Threads:        cfg.Procs,
		Groups:         groups,
		FlopTime:       cfg.FlopTime,
		MemGapPerByte:  cfg.GapPerByte / MemSpeedup,
		BarrierLatency: cfg.Latency / SyncSpeedup,
		SendOverhead:   cfg.SendOverhead,
		RecvOverhead:   cfg.RecvOverhead,
		Latency:        cfg.Latency,
		GapPerByte:     cfg.GapPerByte,
		TimeLimit:      cfg.TimeLimit,
		WallLimit:      cfg.WallLimit,
	}
}

// token is one published rendezvous: the producer's availability time
// and a reference to the source storage the consumer pulls from.
type token struct {
	avail float64
	src   any
}

type boxKey struct {
	src, dst, tag int
}

type tokenBox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []token
}

func (tb *tokenBox) push(t token) {
	tb.mu.Lock()
	tb.queue = append(tb.queue, t)
	tb.cond.Signal()
	tb.mu.Unlock()
}

func (tb *tokenBox) pop(tm *Team) token {
	tb.mu.Lock()
	for len(tb.queue) == 0 {
		if err := tm.abortedErr(); err != nil {
			tb.mu.Unlock()
			panic(err)
		}
		tb.cond.Wait()
	}
	t := tb.queue[0]
	tb.queue = tb.queue[1:]
	tb.mu.Unlock()
	return t
}

// Team is the running shared-memory machine.
type Team struct {
	cfg      Config
	abortErr atomic.Pointer[error]

	mu    sync.Mutex
	boxes map[boxKey]*tokenBox

	// ackMu guards pending: published-not-yet-acknowledged token counts
	// per producer thread.  Drain waits for its own count to reach zero.
	ackMu   sync.Mutex
	ackCond *sync.Cond
	pending []int

	barrierMu     sync.Mutex
	barrierCond   *sync.Cond
	barrierCount  int
	barrierGen    int
	barrierMax    float64
	barrierTarget float64

	reduceMu     sync.Mutex
	reduceCond   *sync.Cond
	reduceCnt    int
	reduceGen    int
	reduceMax    float64
	reduceVals   []float64
	reduceSum    float64
	reduceTarget float64

	// groupSteps/outerSteps are the log-tree depths of the intra-group
	// and cross-group levels of a barrier or reduction.
	groupSteps float64
	outerSteps float64
}

// Thread is one team member, owned by its goroutine.
type Thread struct {
	ID       int
	tm       *Team
	clock    float64
	flops    float64
	idle     float64
	pulls    int64
	pulledB  int64
	barriers int64
	// outer message traffic this thread originated (cross-group
	// publishes, hybrid layouts only).
	outMsgs  int64
	outBytes int64
}

// Result aggregates a finished run.
type Result struct {
	Threads int
	Groups  int
	// Time is the makespan: the maximum final virtual clock.
	Time float64
	// ThreadTime, ThreadIdle, ThreadFlops index by thread.
	ThreadTime  []float64
	ThreadIdle  []float64
	ThreadFlops []float64
	// Pulls and PulledBytes count direct memory pulls, charged to the
	// consuming thread.
	Pulls       []int64
	PulledBytes []int64
	// Barriers counts team-wide synchronizations (barriers and
	// reductions).
	Barriers int64
	// OuterMsgs and OuterBytes count cross-group publishes per
	// originating thread — the message traffic of a hybrid layout
	// (all zero for pure shm).
	OuterMsgs  []int64
	OuterBytes []int64
}

// TotalPulls sums pulls by all threads.
func (r *Result) TotalPulls() int64 {
	var n int64
	for _, p := range r.Pulls {
		n += p
	}
	return n
}

// TotalPulledBytes sums pulled bytes by all threads.
func (r *Result) TotalPulledBytes() int64 {
	var n int64
	for _, p := range r.PulledBytes {
		n += p
	}
	return n
}

// Run executes body on every thread concurrently and collects the
// result.  Aborts wake every blocked thread, which panics with an error
// wrapping mpsim.ErrAborted; body is expected to recover it.
func Run(cfg Config, body func(t *Thread)) *Result {
	if cfg.Threads <= 0 {
		panic("shm: Threads must be positive")
	}
	if cfg.Groups != nil && len(cfg.Groups) != cfg.Threads {
		panic("shm: Groups must have one entry per thread")
	}
	tm := &Team{cfg: cfg, boxes: map[boxKey]*tokenBox{}, pending: make([]int, cfg.Threads)}
	tm.ackCond = sync.NewCond(&tm.ackMu)
	tm.barrierCond = sync.NewCond(&tm.barrierMu)
	tm.reduceCond = sync.NewCond(&tm.reduceMu)
	tm.groupSteps, tm.outerSteps = treeDepths(cfg)

	var wallTimer *time.Timer
	if cfg.WallLimit > 0 {
		wallTimer = time.AfterFunc(cfg.WallLimit, func() { tm.Abort(mpsim.ErrWallLimit) })
	}

	threads := make([]*Thread, cfg.Threads)
	var wg sync.WaitGroup
	var barriers atomic.Int64
	for i := 0; i < cfg.Threads; i++ {
		threads[i] = &Thread{ID: i, tm: tm}
		wg.Add(1)
		go func(t *Thread) {
			defer wg.Done()
			// Deferred closure, not a deferred call: t.barriers must be
			// read after body returns, not captured as zero here.
			defer func() { barriers.Add(t.barriers) }()
			body(t)
		}(threads[i])
	}
	wg.Wait()
	if wallTimer != nil {
		wallTimer.Stop()
	}

	groups := 1
	for _, g := range cfg.Groups {
		if g+1 > groups {
			groups = g + 1
		}
	}
	res := &Result{
		Threads:     cfg.Threads,
		Groups:      groups,
		ThreadTime:  make([]float64, cfg.Threads),
		ThreadIdle:  make([]float64, cfg.Threads),
		ThreadFlops: make([]float64, cfg.Threads),
		Pulls:       make([]int64, cfg.Threads),
		PulledBytes: make([]int64, cfg.Threads),
		OuterMsgs:   make([]int64, cfg.Threads),
		OuterBytes:  make([]int64, cfg.Threads),
		Barriers:    barriers.Load(),
	}
	for i, t := range threads {
		res.ThreadTime[i] = t.clock
		res.ThreadIdle[i] = t.idle
		res.ThreadFlops[i] = t.flops
		res.Pulls[i] = t.pulls
		res.PulledBytes[i] = t.pulledB
		res.OuterMsgs[i] = t.outMsgs
		res.OuterBytes[i] = t.outBytes
		res.Time = math.Max(res.Time, t.clock)
	}
	return res
}

// treeDepths returns the log-tree depths of the intra-group and
// cross-group levels of a team-wide synchronization.
func treeDepths(cfg Config) (group, outer float64) {
	if cfg.Groups == nil {
		return logSteps(cfg.Threads), 0
	}
	sizes := map[int]int{}
	for _, g := range cfg.Groups {
		sizes[g]++
	}
	maxSize := 1
	for _, n := range sizes {
		if n > maxSize {
			maxSize = n
		}
	}
	return logSteps(maxSize), logSteps(len(sizes))
}

func logSteps(n int) float64 {
	if n <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(n)))
}

// Abort marks the team dead with the given cause (first call wins) and
// wakes every blocked thread.
func (tm *Team) Abort(cause error) {
	if cause == nil {
		cause = mpsim.ErrAborted
	}
	if !tm.abortErr.CompareAndSwap(nil, &cause) {
		return
	}
	tm.mu.Lock()
	boxes := make([]*tokenBox, 0, len(tm.boxes))
	for _, tb := range tm.boxes {
		boxes = append(boxes, tb)
	}
	tm.mu.Unlock()
	for _, tb := range boxes {
		tb.mu.Lock()
		tb.cond.Broadcast()
		tb.mu.Unlock()
	}
	tm.ackMu.Lock()
	tm.ackCond.Broadcast()
	tm.ackMu.Unlock()
	tm.barrierMu.Lock()
	tm.barrierCond.Broadcast()
	tm.barrierMu.Unlock()
	tm.reduceMu.Lock()
	tm.reduceCond.Broadcast()
	tm.reduceMu.Unlock()
}

// Abort lets a thread kill its own team — typically from a panic
// handler, so peers blocked on a rendezvous with the dead thread unwind
// instead of deadlocking.
func (t *Thread) Abort(cause error) { t.tm.Abort(cause) }

func (tm *Team) abortedErr() error {
	if p := tm.abortErr.Load(); p != nil {
		return *p
	}
	return nil
}

func (tm *Team) box(k boxKey) *tokenBox {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	tb, ok := tm.boxes[k]
	if !ok {
		tb = &tokenBox{}
		tb.cond = sync.NewCond(&tb.mu)
		tm.boxes[k] = tb
	}
	return tb
}

// group returns the outer group of a thread (0 for pure shm).
func (tm *Team) group(id int) int {
	if tm.cfg.Groups == nil {
		return 0
	}
	return tm.cfg.Groups[id]
}

func (t *Thread) checkLimits() {
	tm := t.tm
	if err := tm.abortedErr(); err != nil {
		panic(err)
	}
	if tm.cfg.TimeLimit > 0 && t.clock > tm.cfg.TimeLimit {
		tm.Abort(mpsim.ErrTimeLimit)
		panic(mpsim.ErrTimeLimit)
	}
}

// Procs returns the team size.
func (t *Thread) Procs() int { return t.tm.cfg.Threads }

// Time returns the thread's current virtual clock (seconds).
func (t *Thread) Time() float64 { return t.clock }

// Compute advances the clock by flops floating-point operations.
func (t *Thread) Compute(flops float64) {
	if flops <= 0 {
		return
	}
	t.clock += flops * t.tm.cfg.FlopTime
	t.flops += flops
	t.checkLimits()
}

// Publish posts a rendezvous token to thread dst: the consumer's Await
// will find src (typically the producer's array storage) available at
// the producer's current clock.  Non-blocking, like a buffered send; a
// cross-group publish additionally pays the message-level send cost on
// the producer's clock and counts as outer traffic.
func (t *Thread) Publish(dst, tag, bytes int, src any) {
	if dst < 0 || dst >= t.tm.cfg.Threads {
		panic(fmt.Sprintf("shm: Publish to invalid thread %d", dst))
	}
	t.checkLimits()
	avail := t.clock
	if t.tm.group(t.ID) != t.tm.group(dst) {
		cost := t.tm.cfg.SendOverhead + float64(bytes)*t.tm.cfg.GapPerByte
		t.clock += cost
		avail = t.clock + t.tm.cfg.Latency
		t.outMsgs++
		t.outBytes += int64(bytes)
	}
	t.tm.ackMu.Lock()
	t.tm.pending[t.ID]++
	t.tm.ackMu.Unlock()
	t.tm.box(boxKey{src: t.ID, dst: dst, tag: tag}).push(token{avail: avail, src: src})
}

// Await blocks until thread src publishes under the tag, advances this
// thread's clock to the data's availability (idle time recorded), and
// returns the published source reference.  The caller pulls from it and
// then calls Ack.
func (t *Thread) Await(src, tag int) any {
	if src < 0 || src >= t.tm.cfg.Threads {
		panic(fmt.Sprintf("shm: Await from invalid thread %d", src))
	}
	t.checkLimits()
	tk := t.tm.box(boxKey{src: src, dst: t.ID, tag: tag}).pop(t.tm)
	if tk.avail > t.clock {
		t.idle += tk.avail - t.clock
		t.clock = tk.avail
	}
	return tk.src
}

// Ack completes a pull started by Await: it charges the consumer's
// clock the pull cost — bytes·MemGapPerByte within a group, the
// message-level receive overhead across groups — and releases the
// producer's Drain.  Call it after the data has actually been copied.
func (t *Thread) Ack(src, bytes int) {
	if t.tm.group(t.ID) != t.tm.group(src) {
		t.clock += t.tm.cfg.RecvOverhead
	} else {
		t.clock += float64(bytes) * t.tm.cfg.MemGapPerByte
	}
	t.pulls++
	t.pulledB += int64(bytes)
	tm := t.tm
	tm.ackMu.Lock()
	tm.pending[src]--
	if tm.pending[src] == 0 {
		tm.ackCond.Broadcast()
	}
	tm.ackMu.Unlock()
	t.checkLimits()
}

// Drain blocks until every token this thread published has been
// acknowledged: the shared-memory write-after-read obligation.  A
// producer leaving a communication phase must drain before it may
// overwrite data a consumer could still be pulling.  Costs no virtual
// time — it orders memory, it does not model a wait the message machine
// would have had.
func (t *Thread) Drain() {
	tm := t.tm
	tm.ackMu.Lock()
	for tm.pending[t.ID] > 0 {
		if err := tm.abortedErr(); err != nil {
			tm.ackMu.Unlock()
			panic(err)
		}
		tm.ackCond.Wait()
	}
	tm.ackMu.Unlock()
	t.checkLimits()
}

// Barrier synchronizes all threads; every clock advances to the global
// max plus the hierarchical log-tree term (intra-group steps at
// BarrierLatency, cross-group steps at the message latency).
func (t *Thread) Barrier() {
	t.checkLimits()
	tm := t.tm
	tm.barrierMu.Lock()
	gen := tm.barrierGen
	if tm.barrierCount == 0 {
		tm.barrierMax = 0
	}
	if t.clock > tm.barrierMax {
		tm.barrierMax = t.clock
	}
	tm.barrierCount++
	if tm.barrierCount == tm.cfg.Threads {
		tm.barrierCount = 0
		tm.barrierTarget = tm.barrierMax + tm.syncCost()
		tm.barrierGen++
		tm.barrierCond.Broadcast()
	} else {
		for gen == tm.barrierGen {
			if err := tm.abortedErr(); err != nil {
				tm.barrierMu.Unlock()
				panic(err)
			}
			tm.barrierCond.Wait()
		}
	}
	target := tm.barrierTarget
	tm.barrierMu.Unlock()

	t.barriers++
	if target > t.clock {
		t.idle += target - t.clock
		t.clock = target
	}
}

// syncCost is the log-tree completion term of a barrier or reduction:
// intra-group steps at BarrierLatency plus cross-group steps at the
// message latency (zero for a single group).
func (tm *Team) syncCost() float64 {
	return tm.groupSteps*tm.cfg.BarrierLatency + tm.outerSteps*tm.cfg.Latency
}

// AllReduce combines one value from every thread under op: '+' sum,
// '*' product, '<' min, '>' max.  Contributions fold in thread order
// 0..P-1 — the same order mpsim folds — so reductions are bit-identical
// across backends.
func (t *Thread) AllReduce(op byte, v float64) float64 {
	t.checkLimits()
	tm := t.tm
	tm.reduceMu.Lock()
	gen := tm.reduceGen
	if tm.reduceCnt == 0 {
		if cap(tm.reduceVals) < tm.cfg.Threads {
			tm.reduceVals = make([]float64, tm.cfg.Threads)
		}
		tm.reduceVals = tm.reduceVals[:tm.cfg.Threads]
		tm.reduceMax = 0
	}
	tm.reduceVals[t.ID] = v
	if t.clock > tm.reduceMax {
		tm.reduceMax = t.clock
	}
	tm.reduceCnt++
	if tm.reduceCnt == tm.cfg.Threads {
		tm.reduceCnt = 0
		sum := tm.reduceVals[0]
		for _, x := range tm.reduceVals[1:] {
			switch op {
			case '+':
				sum += x
			case '*':
				sum *= x
			case '<':
				sum = math.Min(sum, x)
			case '>':
				sum = math.Max(sum, x)
			default:
				panic(fmt.Sprintf("shm: unknown reduction op %q", op))
			}
		}
		tm.reduceSum = sum
		tm.reduceTarget = tm.reduceMax + tm.syncCost() +
			tm.groupSteps*8*tm.cfg.MemGapPerByte + tm.outerSteps*8*tm.cfg.GapPerByte
		tm.reduceGen++
		tm.reduceCond.Broadcast()
	} else {
		for gen == tm.reduceGen {
			if err := tm.abortedErr(); err != nil {
				tm.reduceMu.Unlock()
				panic(err)
			}
			tm.reduceCond.Wait()
		}
	}
	sum := tm.reduceSum
	target := tm.reduceTarget
	tm.reduceMu.Unlock()

	t.barriers++
	if target > t.clock {
		t.idle += target - t.clock
		t.clock = target
	}
	return sum
}
