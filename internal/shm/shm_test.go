package shm

import (
	"errors"
	"math"
	"testing"
	"time"

	"dhpf/internal/mpsim"
)

func testConfig(threads int, groups []int) Config {
	return FromMachine(mpsim.Config{
		Procs:        threads,
		FlopTime:     1e-8,
		SendOverhead: 1e-6,
		RecvOverhead: 1e-6,
		Latency:      30e-6,
		GapPerByte:   1e-8,
	}, groups)
}

// TestRendezvousPull: a ring of producers and consumers where each
// thread pulls its left neighbour's value directly out of shared
// storage.  Exercises Publish/Await/Ack/Drain concurrently — the
// -race run of this package leans on this test.
func TestRendezvousPull(t *testing.T) {
	const P = 4
	vals := make([][]float64, P)
	for i := range vals {
		vals[i] = []float64{float64(i) * 10}
	}
	got := make([]float64, P)
	res := Run(testConfig(P, nil), func(th *Thread) {
		th.Compute(100)
		right := (th.ID + 1) % P
		left := (th.ID + P - 1) % P
		th.Publish(right, 7, 8, vals[th.ID])
		src := th.Await(left, 7).([]float64)
		got[th.ID] = src[0]
		th.Ack(left, 8)
		th.Drain()
		th.Barrier()
	})
	for i := 0; i < P; i++ {
		want := float64((i+P-1)%P) * 10
		if got[i] != want {
			t.Errorf("thread %d pulled %v, want %v", i, got[i], want)
		}
	}
	if res.TotalPulls() != P || res.TotalPulledBytes() != P*8 {
		t.Errorf("pulls = %d (%d bytes), want %d (%d)", res.TotalPulls(), res.TotalPulledBytes(), P, P*8)
	}
	if res.Groups != 1 || res.Barriers != P {
		t.Errorf("groups = %d, barriers = %d, want 1, %d", res.Groups, res.Barriers, P)
	}
	for i, m := range res.OuterMsgs {
		if m != 0 {
			t.Errorf("pure shm thread %d has %d outer messages", i, m)
		}
	}
	if res.Time <= 0 {
		t.Error("zero makespan")
	}
}

// TestAllReduceRankOrderFold: reductions fold in thread order 0..P-1,
// so the result is bit-identical to a serial left fold (and to mpsim).
func TestAllReduceRankOrderFold(t *testing.T) {
	const P = 4
	contrib := []float64{0.1, 0.2, 0.3, 0.4}
	want := contrib[0]
	for _, v := range contrib[1:] {
		want += v
	}
	sums := make([]float64, P)
	Run(testConfig(P, nil), func(th *Thread) {
		sums[th.ID] = th.AllReduce('+', contrib[th.ID])
	})
	for i, s := range sums {
		if math.Float64bits(s) != math.Float64bits(want) {
			t.Errorf("thread %d sum %v, want bit-identical %v", i, s, want)
		}
	}
}

// TestHybridOuterTraffic: with two groups, a cross-group publish is
// priced and counted as a message while an intra-group one stays a
// memory pull.
func TestHybridOuterTraffic(t *testing.T) {
	buf := []float64{1}
	res := Run(testConfig(4, []int{0, 0, 1, 1}), func(th *Thread) {
		switch th.ID {
		case 0: // intra-group to 1, cross-group to 2
			th.Publish(1, 1, 8, buf)
			th.Publish(2, 2, 8, buf)
			th.Drain()
		case 1:
			th.Await(0, 1)
			th.Ack(0, 8)
		case 2:
			th.Await(0, 2)
			th.Ack(0, 8)
		}
		th.Barrier()
	})
	if res.Groups != 2 {
		t.Fatalf("groups = %d, want 2", res.Groups)
	}
	if res.OuterMsgs[0] != 1 || res.OuterBytes[0] != 8 {
		t.Errorf("thread 0 outer traffic = %d msgs %d bytes, want 1 msg 8 bytes",
			res.OuterMsgs[0], res.OuterBytes[0])
	}
	if res.TotalPulls() != 2 {
		t.Errorf("pulls = %d, want 2", res.TotalPulls())
	}
}

// TestWallLimitAbort: a deadlocked rendezvous (Await with no matching
// Publish) unwinds through the wall-clock safety valve with the mpsim
// abort error, on every thread.
func TestWallLimitAbort(t *testing.T) {
	cfg := testConfig(2, nil)
	cfg.WallLimit = 50 * time.Millisecond
	errs := make([]error, 2)
	Run(cfg, func(th *Thread) {
		defer func() {
			if r := recover(); r != nil {
				if err, ok := r.(error); ok {
					errs[th.ID] = err
				}
			}
		}()
		th.Await(1-th.ID, 99) // nobody publishes
	})
	for i, err := range errs {
		if !errors.Is(err, mpsim.ErrAborted) || !errors.Is(err, mpsim.ErrWallLimit) {
			t.Errorf("thread %d error = %v, want wall-limit abort", i, err)
		}
	}
}
