package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, path string, opts Options) *Store {
	t.Helper()
	s, err := Open(path, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func putChunkT(t *testing.T, s *Store, data []byte) Addr {
	t.Helper()
	a, err := s.PutChunk(data)
	if err != nil {
		t.Fatalf("PutChunk: %v", err)
	}
	return a
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openT(t, filepath.Join(t.TempDir(), "j"), Options{})
	report := []byte("rendered report text")
	node := []byte("node program for rank 0")
	ra := putChunkT(t, s, report)
	na := putChunkT(t, s, node)
	m := Manifest{
		Kind: "program",
		Meta: map[string]string{"ranks": "4", "v": "1"},
		Refs: []ChunkRef{{Name: "report", Addr: ra}, {Name: "node:0", Addr: na}},
	}
	if err := s.PutManifest("fp1", m); err != nil {
		t.Fatalf("PutManifest: %v", err)
	}

	got, ok := s.GetManifest("fp1")
	if !ok {
		t.Fatal("GetManifest miss")
	}
	if got.Kind != "program" || got.Meta["ranks"] != "4" || len(got.Refs) != 2 {
		t.Fatalf("manifest mangled: %+v", got)
	}
	data, ok := s.GetChunk(got.Refs[0].Addr)
	if !ok || !bytes.Equal(data, report) {
		t.Fatalf("report chunk = %q ok=%v", data, ok)
	}
	if _, ok := s.GetManifest("nope"); ok {
		t.Fatal("phantom manifest")
	}
	if _, ok := s.GetChunk(AddrOf([]byte("absent"))); ok {
		t.Fatal("phantom chunk")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Chunks != 2 || st.Manifests != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// Reopening the journal must serve everything byte-identically: this is
// the restart-warm property the service relies on.
func TestReopenServesIdentically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	s := openT(t, path, Options{})
	var want [][]byte
	for i := 0; i < 20; i++ {
		data := []byte(fmt.Sprintf("chunk payload %d with some body", i))
		want = append(want, data)
		a := putChunkT(t, s, data)
		if err := s.PutManifest(fmt.Sprintf("key%d", i), Manifest{
			Kind: "artifact",
			Refs: []ChunkRef{{Name: "artifact", Addr: a}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, path, Options{})
	for i, data := range want {
		m, ok := s2.GetManifest(fmt.Sprintf("key%d", i))
		if !ok {
			t.Fatalf("key%d lost across reopen", i)
		}
		got, ok := s2.GetChunk(m.Refs[0].Addr)
		if !ok || !bytes.Equal(got, data) {
			t.Fatalf("key%d chunk = %q ok=%v, want %q", i, got, ok, data)
		}
	}
	if st := s2.Stats(); st.TruncatedBytes != 0 {
		t.Fatalf("clean journal reported truncation: %+v", st)
	}
}

// Identical payloads are stored once: the structural-sharing property
// that lets equal node programs across ranks or fingerprints share
// disk.
func TestChunkDedup(t *testing.T) {
	s := openT(t, filepath.Join(t.TempDir(), "j"), Options{})
	data := []byte("shared node program body")
	a1 := putChunkT(t, s, data)
	a2 := putChunkT(t, s, data)
	if a1 != a2 {
		t.Fatalf("addresses differ: %s vs %s", a1, a2)
	}
	st := s.Stats()
	if st.ChunkPuts != 1 || st.DedupHits != 1 || st.Chunks != 1 {
		t.Fatalf("dedup stats: %+v", st)
	}
}

// Re-putting a manifest supersedes the old one; dead bytes accrue and
// explicit compaction reclaims them.
func TestSupersedeAndCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	s := openT(t, path, Options{NoAutoCompact: true})
	big := bytes.Repeat([]byte("x"), 10_000)
	aOld := putChunkT(t, s, append([]byte("old"), big...))
	aNew := putChunkT(t, s, append([]byte("new"), big...))
	if err := s.PutManifest("k", Manifest{Kind: "t", Refs: []ChunkRef{{Name: "a", Addr: aOld}}}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutManifest("k", Manifest{Kind: "t", Refs: []ChunkRef{{Name: "a", Addr: aNew}}}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Manifests != 1 || st.DeadBytes <= 10_000 {
		t.Fatalf("before compact: %+v", st)
	}
	before := st.JournalBytes
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	st = s.Stats()
	if st.DeadBytes != 0 || st.JournalBytes >= before || st.Chunks != 1 || st.Compactions != 1 {
		t.Fatalf("after compact: %+v (journal was %d)", st, before)
	}
	m, ok := s.GetManifest("k")
	if !ok {
		t.Fatal("manifest lost in compaction")
	}
	got, ok := s.GetChunk(m.Refs[0].Addr)
	if !ok || !bytes.HasPrefix(got, []byte("new")) {
		t.Fatalf("post-compact chunk = %.8q ok=%v", got, ok)
	}

	// And the compacted journal must replay cleanly.
	s.Close()
	s2 := openT(t, path, Options{})
	if _, ok := s2.GetManifest("k"); !ok {
		t.Fatal("manifest lost after compact+reopen")
	}
	if st := s2.Stats(); st.TruncatedBytes != 0 {
		t.Fatalf("compacted journal replayed with truncation: %+v", st)
	}
}

// The live-byte budget evicts least-recently-used manifests, never the
// newest, and evictions survive a reopen (they are journaled).
func TestBudgetEvictsLRU(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	s := openT(t, path, Options{MaxBytes: 30_000, NoAutoCompact: true})
	payload := func(i int) []byte {
		return append([]byte(fmt.Sprintf("p%02d-", i)), bytes.Repeat([]byte("y"), 8_000)...)
	}
	for i := 0; i < 8; i++ {
		a := putChunkT(t, s, payload(i))
		if err := s.PutManifest(fmt.Sprintf("k%d", i), Manifest{Kind: "t", Refs: []ChunkRef{{Name: "a", Addr: a}}}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under budget pressure: %+v", st)
	}
	if st.LiveBytes > 30_000 {
		t.Fatalf("live %d over budget: %+v", st.LiveBytes, st)
	}
	if _, ok := s.GetManifest("k7"); !ok {
		t.Fatal("newest manifest evicted")
	}
	if _, ok := s.GetManifest("k0"); ok {
		t.Fatal("oldest manifest survived an over-budget store")
	}
	surviving := s.Len()

	s.Close()
	s2 := openT(t, path, Options{MaxBytes: 30_000})
	if got := s2.Len(); got != surviving {
		t.Fatalf("reopen has %d manifests, want %d", got, surviving)
	}
	if _, ok := s2.GetManifest("k0"); ok {
		t.Fatal("evicted manifest resurrected by replay")
	}
}

// Recency survives reopen well enough that a hot manifest is not the
// next eviction victim: GetManifest bumps, and compaction rewrites in
// LRU order.
func TestRecencySurvivesCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	s := openT(t, path, Options{NoAutoCompact: true})
	for i := 0; i < 4; i++ {
		a := putChunkT(t, s, payloadN(i, 2_000))
		if err := s.PutManifest(fmt.Sprintf("k%d", i), Manifest{Kind: "t", Refs: []ChunkRef{{Name: "a", Addr: a}}}); err != nil {
			t.Fatal(err)
		}
	}
	// Touch k0 so it is the most recent, then compact and reopen.
	if _, ok := s.GetManifest("k0"); !ok {
		t.Fatal("k0 missing")
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// A tiny budget forces evictions on the next insert: k1 (now the
	// coldest) must go before k0.
	s2 := openT(t, path, Options{MaxBytes: 9_000, NoAutoCompact: true})
	a := putChunkT(t, s2, payloadN(99, 2_000))
	if err := s2.PutManifest("k99", Manifest{Kind: "t", Refs: []ChunkRef{{Name: "a", Addr: a}}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.GetManifest("k1"); ok {
		t.Fatal("cold k1 survived while budget forced evictions")
	}
	if _, ok := s2.GetManifest("k0"); !ok {
		t.Fatal("recently-touched k0 evicted before colder manifests")
	}
}

func payloadN(i, n int) []byte {
	return append([]byte(fmt.Sprintf("p%02d-", i)), bytes.Repeat([]byte("z"), n)...)
}

// Deleting a manifest is durable and frees its solely-referenced
// chunks at the next compaction.
func TestDeleteDurable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	s := openT(t, path, Options{NoAutoCompact: true})
	a := putChunkT(t, s, []byte("doomed"))
	if err := s.PutManifest("k", Manifest{Kind: "t", Refs: []ChunkRef{{Name: "a", Addr: a}}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetManifest("k"); ok {
		t.Fatal("deleted manifest still served")
	}
	s.Close()
	s2 := openT(t, path, Options{})
	if _, ok := s2.GetManifest("k"); ok {
		t.Fatal("deleted manifest resurrected by replay")
	}
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.Chunks != 0 || st.DeadBytes != 0 {
		t.Fatalf("delete+compact left garbage: %+v", st)
	}
}

// A manifest may not reference chunks the store has never seen.
func TestManifestMissingChunkRejected(t *testing.T) {
	s := openT(t, filepath.Join(t.TempDir(), "j"), Options{})
	err := s.PutManifest("k", Manifest{Kind: "t", Refs: []ChunkRef{{Name: "a", Addr: AddrOf([]byte("never written"))}}})
	if err == nil {
		t.Fatal("dangling manifest accepted")
	}
}

// A file that is not a journal is refused loudly, not silently wiped.
func TestBadMagicRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "notajournal")
	if err := os.WriteFile(path, []byte("PKZIP\x03\x04 something else entirely"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); err == nil {
		t.Fatal("Open accepted a non-journal file")
	}
}

// Operations after Close fail cleanly.
func TestClosedStore(t *testing.T) {
	s := openT(t, filepath.Join(t.TempDir(), "j"), Options{})
	s.Close()
	if _, err := s.PutChunk([]byte("x")); err == nil {
		t.Fatal("PutChunk on closed store succeeded")
	}
	if err := s.PutManifest("k", Manifest{}); err == nil {
		t.Fatal("PutManifest on closed store succeeded")
	}
	if _, ok := s.GetManifest("k"); ok {
		t.Fatal("GetManifest on closed store hit")
	}
}

// Concurrent writers and readers must not race (run under -race in CI).
func TestConcurrentAccess(t *testing.T) {
	s := openT(t, filepath.Join(t.TempDir(), "j"), Options{})
	done := make(chan error, 8)
	for g := 0; g < 4; g++ {
		go func(g int) {
			for i := 0; i < 25; i++ {
				data := []byte(fmt.Sprintf("g%d-i%d", g, i))
				a, err := s.PutChunk(data)
				if err != nil {
					done <- err
					return
				}
				if err := s.PutManifest(fmt.Sprintf("g%d-k%d", g, i), Manifest{
					Kind: "t", Refs: []ChunkRef{{Name: "a", Addr: a}},
				}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
		go func(g int) {
			for i := 0; i < 25; i++ {
				if m, ok := s.GetManifest(fmt.Sprintf("g%d-k%d", g, i)); ok {
					s.GetChunk(m.Refs[0].Addr)
				}
				s.Stats()
			}
			done <- nil
		}(g)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
