// Package codec is the stable binary encoding layer of the durable
// store: a length-prefixed, varint-based format with a self-describing
// (format, version) envelope.  Frozen compiler artifacts and cached
// program entries are serialized with it before they become chunks in
// internal/store, and deserialized on read-through after a restart.
//
// Versioning contract: every encoded value starts with a 4-byte magic,
// the producer's format name, and a format version.  NewReader checks
// all three and returns ErrFormat on any mismatch — callers treat that
// as a cache miss (the artifact is recomputed and rewritten under the
// current format), never as an error.  Bump the version whenever the
// body layout of a format changes.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrFormat reports an envelope mismatch: wrong magic, format name or
// version.  Store readers map it to "not present".
var ErrFormat = errors.New("codec: format or version mismatch")

const magic = "dpf\x01"

// Writer accumulates one encoded value.  All append methods are
// infallible; the buffer grows as needed.
type Writer struct {
	buf []byte
}

// NewWriter starts an encoded value with the (format, version) envelope.
func NewWriter(format string, version uint32) *Writer {
	w := &Writer{buf: make([]byte, 0, 128)}
	w.buf = append(w.buf, magic...)
	w.String(format)
	w.Uvarint(uint64(version))
	return w
}

// Bytes returns the encoded value.  The slice aliases the writer's
// buffer; do not append to the writer afterwards.
func (w *Writer) Bytes() []byte { return w.buf }

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

// Int appends a signed int as a zigzag varint.
func (w *Writer) Int(v int) { w.buf = binary.AppendVarint(w.buf, int64(v)) }

// Bool appends one byte, 0 or 1.
func (w *Writer) Bool(b bool) {
	if b {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Raw appends a length-prefixed byte slice.
func (w *Writer) Raw(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// Reader decodes one encoded value.  Errors are sticky: after the first
// malformed field every subsequent read returns a zero value, and Err
// reports what went wrong — callers check it once at the end.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader validates data's envelope against (format, version) and
// returns a reader positioned at the body.  A wrong magic, format name
// or version yields ErrFormat; truncated envelopes yield a decode
// error.  Both mean "treat as absent" to cache layers.
func NewReader(data []byte, format string, version uint32) (*Reader, error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return nil, ErrFormat
	}
	r := &Reader{buf: data, off: len(magic)}
	f := r.String()
	v := r.Uvarint()
	if r.err != nil {
		return nil, fmt.Errorf("codec: bad envelope: %w", r.err)
	}
	if f != format || v != uint64(version) {
		return nil, ErrFormat
	}
	return r, nil
}

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Done reports whether the whole buffer was consumed without error —
// the end-of-decode sanity check.
func (r *Reader) Done() bool { return r.err == nil && r.off == len(r.buf) }

func (r *Reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("codec: truncated or malformed %s at offset %d", what, r.off)
	}
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.off += n
	return v
}

// Int reads a zigzag varint.
func (r *Reader) Int() int {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail("varint")
		return 0
	}
	r.off += n
	return int(v)
}

// Bool reads one byte as a bool.
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if r.off >= len(r.buf) {
		r.fail("bool")
		return false
	}
	b := r.buf[r.off]
	r.off++
	if b > 1 {
		r.fail("bool")
		return false
	}
	return b == 1
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail("string")
		return ""
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// Raw reads a length-prefixed byte slice (copied out of the buffer).
func (r *Reader) Raw() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail("bytes")
		return nil
	}
	b := make([]byte, n)
	copy(b, r.buf[r.off:])
	r.off += int(n)
	return b
}
