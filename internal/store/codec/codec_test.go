package codec

import (
	"errors"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	w := NewWriter("test.fmt", 3)
	w.Uvarint(0)
	w.Uvarint(1<<63 + 17)
	w.Int(-123456)
	w.Int(0)
	w.Int(1 << 40)
	w.Bool(true)
	w.Bool(false)
	w.String("")
	w.String("hello, \x00 world")
	w.Raw(nil)
	w.Raw([]byte{1, 2, 3})

	r, err := NewReader(w.Bytes(), "test.fmt", 3)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if got := r.Uvarint(); got != 0 {
		t.Errorf("uvarint0 = %d", got)
	}
	if got := r.Uvarint(); got != 1<<63+17 {
		t.Errorf("uvarint1 = %d", got)
	}
	if got := r.Int(); got != -123456 {
		t.Errorf("int0 = %d", got)
	}
	if got := r.Int(); got != 0 {
		t.Errorf("int1 = %d", got)
	}
	if got := r.Int(); got != 1<<40 {
		t.Errorf("int2 = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Errorf("bools mangled")
	}
	if got := r.String(); got != "" {
		t.Errorf("string0 = %q", got)
	}
	if got := r.String(); got != "hello, \x00 world" {
		t.Errorf("string1 = %q", got)
	}
	if got := r.Raw(); len(got) != 0 {
		t.Errorf("raw0 = %v", got)
	}
	if got := r.Raw(); string(got) != "\x01\x02\x03" {
		t.Errorf("raw1 = %v", got)
	}
	if !r.Done() {
		t.Errorf("not done: err=%v", r.Err())
	}
}

// Format or version mismatches are ErrFormat — the "treat as a cache
// miss, recompute under the current format" signal.
func TestFormatMismatchIsErrFormat(t *testing.T) {
	w := NewWriter("fmt.a", 1)
	w.Int(7)
	data := w.Bytes()

	if _, err := NewReader(data, "fmt.b", 1); !errors.Is(err, ErrFormat) {
		t.Errorf("wrong format: err = %v, want ErrFormat", err)
	}
	if _, err := NewReader(data, "fmt.a", 2); !errors.Is(err, ErrFormat) {
		t.Errorf("wrong version: err = %v, want ErrFormat", err)
	}
	if _, err := NewReader([]byte("nonsense"), "fmt.a", 1); !errors.Is(err, ErrFormat) {
		t.Errorf("bad magic: err = %v, want ErrFormat", err)
	}
	if _, err := NewReader(nil, "fmt.a", 1); !errors.Is(err, ErrFormat) {
		t.Errorf("empty: err = %v, want ErrFormat", err)
	}
	if _, err := NewReader(data, "fmt.a", 1); err != nil {
		t.Errorf("matching envelope rejected: %v", err)
	}
}

// Truncating an encoded value anywhere must produce a sticky error (or
// envelope error), never a panic or silent success with Done()==true.
func TestTruncationIsSticky(t *testing.T) {
	w := NewWriter("fmt.t", 1)
	w.String("payload string")
	w.Int(-9)
	w.Raw(make([]byte, 100))
	w.Bool(true)
	full := w.Bytes()

	for cut := 0; cut < len(full); cut++ {
		data := full[:cut]
		r, err := NewReader(data, "fmt.t", 1)
		if err != nil {
			continue // envelope itself truncated
		}
		_ = r.String()
		_ = r.Int()
		_ = r.Raw()
		_ = r.Bool()
		if r.Done() {
			t.Fatalf("cut=%d: truncated value decoded as Done", cut)
		}
	}
}

// A reader must not allocate huge buffers for a corrupt length prefix.
func TestCorruptLengthRejected(t *testing.T) {
	w := NewWriter("fmt.c", 1)
	w.Uvarint(1 << 60) // claims a colossal string length...
	buf := w.Bytes()
	r, err := NewReader(buf, "fmt.c", 1)
	if err != nil {
		t.Fatal(err)
	}
	// ...interpreted as a string prefix with almost no bytes behind it.
	if got := r.String(); got != "" || r.Err() == nil {
		t.Errorf("String on corrupt length: %q err=%v, want error", got, r.Err())
	}
}
