// Package store is the durable persistence layer under dhpf's caches: a
// chunked, content-addressed on-disk store in the spirit of dolt/noms
// journaling chunk stores.
//
// The on-disk format is a single append-only journal file:
//
//	"DHPFST01"                                  8-byte file magic
//	record*                                     appended in commit order
//
// where each record is
//
//	tag      1 byte   'C' chunk | 'M' manifest | 'D' delete
//	length   4 bytes  big-endian payload length
//	payload  N bytes
//	crc32    4 bytes  big-endian IEEE CRC over tag+length+payload
//
// Chunk payloads are raw bytes, addressed by their SHA-256; identical
// payloads are written once and shared (structural sharing: the same
// node program or frozen artifact referenced from many manifests costs
// one chunk).  Manifest payloads are codec-encoded {key, kind, meta,
// refs} documents binding a caller key (a program fingerprint, an
// artifact key) to a named set of chunk addresses — a one-level Merkle
// manifest.  Delete payloads are the raw manifest key; they make
// evictions durable so replay converges without reading the evicted
// data.
//
// Recovery: Open replays the journal sequentially, rebuilding the
// in-memory offset index, and truncates at the first torn or corrupt
// record (short header, absurd length, CRC mismatch) — a torn tail
// from a crash mid-append loses only the uncommitted record; every
// fully-committed record before it is served.  Crash safety is
// property-tested by truncating a journal at every byte offset.
//
// Space: the store tracks live bytes (records reachable from a current
// manifest) against Options.MaxBytes and evicts least-recently-used
// manifests (appending 'D' records) when over budget; when dead bytes
// (superseded, deleted, or duplicate records) exceed live bytes,
// compaction rewrites the journal with only live records, via a temp
// file and an atomic rename.
package store

import (
	"bufio"
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"

	"dhpf/internal/store/codec"
)

const (
	fileMagic = "DHPFST01"

	tagChunk    = byte('C')
	tagManifest = byte('M')
	tagDelete   = byte('D')

	// maxRecord bounds a single payload; a length field above it is
	// treated as corruption during replay.  64 MiB is far above any
	// rendered program (the HTTP layer caps request bodies at 16 MiB).
	maxRecord = 64 << 20

	manifestFormat  = "store.manifest"
	manifestVersion = 1
)

// Addr is the SHA-256 content address of a chunk.
type Addr [sha256.Size]byte

// AddrOf returns the content address of data.
func AddrOf(data []byte) Addr { return sha256.Sum256(data) }

// String renders the address in hex.
func (a Addr) String() string { return hex.EncodeToString(a[:]) }

// ChunkRef names one chunk inside a manifest ("report", "node:3", ...).
type ChunkRef struct {
	Name string
	Addr Addr
}

// Manifest binds a caller key to a named set of chunks plus small
// string metadata.  It is the unit of lookup, recency, and eviction.
type Manifest struct {
	Kind string
	Meta map[string]string
	Refs []ChunkRef
}

// Options configures Open.
type Options struct {
	// MaxBytes bounds the live bytes (manifest records plus the chunk
	// records they reference).  When an insert pushes live bytes over
	// the bound, least-recently-used manifests are evicted until back
	// under it (the newest manifest is never evicted).  <= 0 means
	// 1 GiB.
	MaxBytes int64
	// NoAutoCompact disables compaction on the append path; Compact
	// can still be called explicitly.  Used by tests that assert exact
	// journal layouts.
	NoAutoCompact bool
}

// Stats is a point-in-time snapshot of store counters.
type Stats struct {
	Chunks       int   `json:"chunks"`
	Manifests    int   `json:"manifests"`
	LiveBytes    int64 `json:"live_bytes"`
	DeadBytes    int64 `json:"dead_bytes"`
	JournalBytes int64 `json:"journal_bytes"`
	MaxBytes     int64 `json:"max_bytes"`

	Hits         int64 `json:"hits"`
	Misses       int64 `json:"misses"`
	ChunkPuts    int64 `json:"chunk_puts"`
	DedupHits    int64 `json:"dedup_hits"`
	ManifestPuts int64 `json:"manifest_puts"`
	Evictions    int64 `json:"evictions"`
	Compactions  int64 `json:"compactions"`
	// TruncatedBytes counts journal bytes dropped at Open because the
	// tail was torn or corrupt (crash recovery).
	TruncatedBytes int64 `json:"truncated_bytes,omitempty"`
}

type chunkInfo struct {
	off  int64 // payload offset in the journal
	size int   // payload length
	rec  int64 // whole-record bytes (header + payload + crc)
	refs int   // referencing manifests
}

type manEntry struct {
	key string
	m   Manifest
	rec int64 // whole-record bytes
}

// Store is a journaling content-addressed chunk store.  All methods are
// safe for concurrent use.
type Store struct {
	mu     sync.Mutex
	path   string
	f      *os.File
	opts   Options
	end    int64 // append offset == journal length
	chunks map[Addr]*chunkInfo
	byKey  map[string]*list.Element // -> *manEntry
	lru    *list.List               // front = most recently used
	live   int64
	dead   int64
	stats  Stats
	closed bool
}

// Open opens (creating if absent) the journal at path, replays it to
// rebuild the index, and truncates any torn tail.
func Open(path string, opts Options) (*Store, error) {
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = 1 << 30
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	s := &Store{
		path:   path,
		f:      f,
		opts:   opts,
		chunks: make(map[Addr]*chunkInfo),
		byKey:  make(map[string]*list.Element),
		lru:    list.New(),
	}
	if err := s.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// replay scans the journal, applying records until the first torn or
// corrupt one, then truncates the file there and positions appends.
func (s *Store) replay() error {
	fi, err := s.f.Stat()
	if err != nil {
		return err
	}
	size := fi.Size()
	if size == 0 {
		if _, err := s.f.Write([]byte(fileMagic)); err != nil {
			return err
		}
		s.end = int64(len(fileMagic))
		return s.f.Sync()
	}
	if size < int64(len(fileMagic)) {
		// Torn before even the magic finished: rewrite it.
		if err := s.f.Truncate(0); err != nil {
			return err
		}
		if _, err := s.f.WriteAt([]byte(fileMagic), 0); err != nil {
			return err
		}
		s.end = int64(len(fileMagic))
		s.stats.TruncatedBytes = size
		return s.f.Sync()
	}
	magicBuf := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(io.NewSectionReader(s.f, 0, int64(len(magicBuf))), magicBuf); err != nil {
		return err
	}
	if string(magicBuf) != fileMagic {
		return fmt.Errorf("store: %s is not a dhpf chunk journal (bad magic)", s.path)
	}

	br := bufio.NewReaderSize(io.NewSectionReader(s.f, int64(len(fileMagic)), size), 1<<20)
	off := int64(len(fileMagic))
	good := off
	hdr := make([]byte, 5)
	for {
		if _, err := io.ReadFull(br, hdr); err != nil {
			break // clean EOF or torn header: stop at last good record
		}
		tag := hdr[0]
		n := int64(binary.BigEndian.Uint32(hdr[1:5]))
		if (tag != tagChunk && tag != tagManifest && tag != tagDelete) || n > maxRecord || off+5+n+4 > size {
			break
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			break
		}
		var crcBuf [4]byte
		if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
			break
		}
		if binary.BigEndian.Uint32(crcBuf[:]) != recordCRC(tag, payload) {
			break
		}
		rec := 5 + n + 4
		s.applyRecord(tag, payload, off+5, rec)
		off += rec
		good = off
	}
	if good < size {
		if err := s.f.Truncate(good); err != nil {
			return err
		}
		s.stats.TruncatedBytes = size - good
		if err := s.f.Sync(); err != nil {
			return err
		}
	}
	s.end = good
	return nil
}

func recordCRC(tag byte, payload []byte) uint32 {
	h := crc32.NewIEEE()
	var hdr [5]byte
	hdr[0] = tag
	binary.BigEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	h.Write(hdr[:])
	h.Write(payload)
	return h.Sum32()
}

// applyRecord replays one committed record into the in-memory index.
func (s *Store) applyRecord(tag byte, payload []byte, payloadOff, rec int64) {
	switch tag {
	case tagChunk:
		addr := AddrOf(payload)
		if _, ok := s.chunks[addr]; ok {
			s.dead += rec // duplicate write, e.g. pre-compaction dedup miss
			return
		}
		s.chunks[addr] = &chunkInfo{off: payloadOff, size: len(payload), rec: rec}
		s.dead += rec // dead until a manifest references it
	case tagManifest:
		key, m, ok := decodeManifest(payload)
		if !ok {
			s.dead += rec // undecodable under current codec version: skip
			return
		}
		for _, ref := range m.Refs {
			if _, ok := s.chunks[ref.Addr]; !ok {
				s.dead += rec // dangling ref (compacted away): skip
				return
			}
		}
		s.installManifest(key, m, rec)
	case tagDelete:
		s.dead += rec
		s.removeManifest(string(payload))
	}
}

// installManifest makes (key -> m) current, retiring any predecessor,
// and moves the referenced chunks' record bytes into the live set.
func (s *Store) installManifest(key string, m Manifest, rec int64) {
	s.removeManifest(key)
	el := s.lru.PushFront(&manEntry{key: key, m: m, rec: rec})
	s.byKey[key] = el
	s.live += rec
	for _, ref := range m.Refs {
		ci := s.chunks[ref.Addr]
		ci.refs++
		if ci.refs == 1 {
			s.live += ci.rec
			s.dead -= ci.rec
		}
	}
}

// removeManifest drops key's manifest (if any) from the index, moving
// its record bytes — and those of any chunk it solely referenced — to
// the dead set.
func (s *Store) removeManifest(key string) {
	el, ok := s.byKey[key]
	if !ok {
		return
	}
	me := el.Value.(*manEntry)
	s.lru.Remove(el)
	delete(s.byKey, key)
	s.live -= me.rec
	s.dead += me.rec
	for _, ref := range me.m.Refs {
		ci := s.chunks[ref.Addr]
		ci.refs--
		if ci.refs == 0 {
			s.live -= ci.rec
			s.dead += ci.rec
		}
	}
}

// appendRecord writes one record at the journal tail and returns the
// payload offset and whole-record size.
func (s *Store) appendRecord(tag byte, payload []byte) (payloadOff, rec int64, err error) {
	buf := make([]byte, 0, 9+len(payload))
	buf = append(buf, tag)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	buf = binary.BigEndian.AppendUint32(buf, recordCRC(tag, payload))
	if _, err := s.f.WriteAt(buf, s.end); err != nil {
		return 0, 0, fmt.Errorf("store: append: %w", err)
	}
	payloadOff = s.end + 5
	rec = int64(len(buf))
	s.end += rec
	return payloadOff, rec, nil
}

// PutChunk writes data as a content-addressed chunk and returns its
// address.  Identical payloads are stored once.
func (s *Store) PutChunk(data []byte) (Addr, error) {
	if int64(len(data)) > maxRecord {
		return Addr{}, fmt.Errorf("store: chunk of %d bytes exceeds %d-byte record bound", len(data), maxRecord)
	}
	addr := AddrOf(data)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Addr{}, errClosed
	}
	if _, ok := s.chunks[addr]; ok {
		s.stats.DedupHits++
		return addr, nil
	}
	off, rec, err := s.appendRecord(tagChunk, data)
	if err != nil {
		return Addr{}, err
	}
	s.chunks[addr] = &chunkInfo{off: off, size: len(data), rec: rec}
	s.dead += rec // live once a manifest references it
	s.stats.ChunkPuts++
	return addr, nil
}

// GetChunk reads a chunk by address.  A missing address — or one whose
// bytes no longer hash to it, which indicates on-disk corruption — is
// reported as absent.
func (s *Store) GetChunk(addr Addr) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false
	}
	ci, ok := s.chunks[addr]
	if !ok {
		return nil, false
	}
	data := make([]byte, ci.size)
	if _, err := s.f.ReadAt(data, ci.off); err != nil {
		return nil, false
	}
	if AddrOf(data) != addr {
		return nil, false
	}
	return data, true
}

// PutManifest makes (key -> m) the current manifest for key.  Every
// referenced chunk must already be present.  The write is durable
// before PutManifest returns (the journal is fsynced), then the LRU
// budget is enforced and compaction may run.
func (s *Store) PutManifest(key string, m Manifest) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	for _, ref := range m.Refs {
		if _, ok := s.chunks[ref.Addr]; !ok {
			return fmt.Errorf("store: manifest %q references missing chunk %s (%s)", key, ref.Addr, ref.Name)
		}
	}
	payload := encodeManifest(key, m)
	_, rec, err := s.appendRecord(tagManifest, payload)
	if err != nil {
		return err
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: sync: %w", err)
	}
	s.installManifest(key, cloneManifest(m), rec)
	s.stats.ManifestPuts++
	s.enforceBudgetLocked()
	s.maybeCompactLocked()
	return nil
}

// GetManifest returns the current manifest for key and marks it
// recently used.
func (s *Store) GetManifest(key string) (Manifest, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Manifest{}, false
	}
	el, ok := s.byKey[key]
	if !ok {
		s.stats.Misses++
		return Manifest{}, false
	}
	s.lru.MoveToFront(el)
	s.stats.Hits++
	return cloneManifest(el.Value.(*manEntry).m), true
}

// Delete durably removes key's manifest.  Chunks it solely referenced
// become dead and are reclaimed by the next compaction.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	if _, ok := s.byKey[key]; !ok {
		return nil
	}
	return s.deleteLocked(key)
}

func (s *Store) deleteLocked(key string) error {
	_, rec, err := s.appendRecord(tagDelete, []byte(key))
	if err != nil {
		return err
	}
	s.dead += rec
	s.removeManifest(key)
	return nil
}

// enforceBudgetLocked evicts LRU manifests until live bytes fit the
// budget; the most recently used manifest always survives so a single
// oversized program cannot evict itself.
func (s *Store) enforceBudgetLocked() {
	for s.live > s.opts.MaxBytes && s.lru.Len() > 1 {
		back := s.lru.Back()
		if err := s.deleteLocked(back.Value.(*manEntry).key); err != nil {
			return // append failed (disk full?): stop evicting, keep serving
		}
		s.stats.Evictions++
	}
}

// maybeCompactLocked compacts when dead bytes dominate live bytes and
// are worth reclaiming.
func (s *Store) maybeCompactLocked() {
	if s.opts.NoAutoCompact {
		return
	}
	if s.dead > s.live && s.dead >= 1<<20 {
		s.compactLocked()
	}
}

// Compact rewrites the journal with only live records, dropping dead
// chunks, superseded manifests, and delete tombstones, via a temp file
// and atomic rename.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	tmpPath := s.path + ".compact"
	tf, err := os.Create(tmpPath)
	if err != nil {
		return err
	}
	defer os.Remove(tmpPath) // no-op after a successful rename

	bw := bufio.NewWriterSize(tf, 1<<20)
	if _, err := bw.WriteString(fileMagic); err != nil {
		tf.Close()
		return err
	}
	end := int64(len(fileMagic))
	writeRec := func(tag byte, payload []byte) (payloadOff, rec int64, err error) {
		var hdr [5]byte
		hdr[0] = tag
		binary.BigEndian.PutUint32(hdr[1:5], uint32(len(payload)))
		if _, err := bw.Write(hdr[:]); err != nil {
			return 0, 0, err
		}
		if _, err := bw.Write(payload); err != nil {
			return 0, 0, err
		}
		var crcBuf [4]byte
		binary.BigEndian.PutUint32(crcBuf[:], recordCRC(tag, payload))
		if _, err := bw.Write(crcBuf[:]); err != nil {
			return 0, 0, err
		}
		payloadOff = end + 5
		rec = int64(5 + len(payload) + 4)
		end += rec
		return payloadOff, rec, nil
	}

	// Walk manifests LRU-back-first so that replaying the compacted
	// journal rebuilds the same recency order (later records are more
	// recent).  Chunks are written on first reference.
	newChunks := make(map[Addr]*chunkInfo)
	type manPatch struct {
		me  *manEntry
		rec int64
	}
	var patches []manPatch
	ok := true
	for el := s.lru.Back(); el != nil; el = el.Prev() {
		me := el.Value.(*manEntry)
		for _, ref := range me.m.Refs {
			if _, dup := newChunks[ref.Addr]; dup {
				continue
			}
			old := s.chunks[ref.Addr]
			data := make([]byte, old.size)
			if _, err = s.f.ReadAt(data, old.off); err != nil {
				ok = false
				break
			}
			if AddrOf(data) != ref.Addr {
				err = fmt.Errorf("store: chunk %s corrupt during compaction", ref.Addr)
				ok = false
				break
			}
			var off, rec int64
			if off, rec, err = writeRec(tagChunk, data); err != nil {
				ok = false
				break
			}
			newChunks[ref.Addr] = &chunkInfo{off: off, size: old.size, rec: rec, refs: 0}
		}
		if !ok {
			break
		}
		var rec int64
		if _, rec, err = writeRec(tagManifest, encodeManifest(me.key, me.m)); err != nil {
			ok = false
			break
		}
		patches = append(patches, manPatch{me: me, rec: rec})
	}
	if !ok {
		tf.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := bw.Flush(); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpPath, s.path); err != nil {
		return err
	}
	nf, err := os.OpenFile(s.path, os.O_RDWR, 0o644)
	if err != nil {
		// The compacted journal is on disk but we lost our handle;
		// poison the store rather than serve from the stale fd.
		s.closed = true
		s.f.Close()
		return fmt.Errorf("store: reopen after compact: %w", err)
	}
	s.f.Close()
	s.f = nf
	s.end = end

	// Install the rewritten index: refs recomputed from manifests.
	s.chunks = newChunks
	var live int64
	for _, p := range patches {
		p.me.rec = p.rec
		live += p.rec
		for _, ref := range p.me.m.Refs {
			ci := newChunks[ref.Addr]
			ci.refs++
			if ci.refs == 1 {
				live += ci.rec
			}
		}
	}
	s.live = live
	s.dead = 0
	s.stats.Compactions++
	return nil
}

// Stats returns a snapshot of store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Chunks = len(s.chunks)
	st.Manifests = s.lru.Len()
	st.LiveBytes = s.live
	st.DeadBytes = s.dead
	st.JournalBytes = s.end
	st.MaxBytes = s.opts.MaxBytes
	return st
}

// Len returns the number of current manifests.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// Path returns the journal path.
func (s *Store) Path() string { return s.path }

// Close syncs and closes the journal.  Further operations fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

var errClosed = fmt.Errorf("store: closed")

func cloneManifest(m Manifest) Manifest {
	out := Manifest{Kind: m.Kind}
	if m.Meta != nil {
		out.Meta = make(map[string]string, len(m.Meta))
		for k, v := range m.Meta {
			out.Meta[k] = v
		}
	}
	out.Refs = append([]ChunkRef(nil), m.Refs...)
	return out
}

// encodeManifest serializes a manifest record payload.  Meta keys are
// sorted so identical manifests encode identically.
func encodeManifest(key string, m Manifest) []byte {
	w := codec.NewWriter(manifestFormat, manifestVersion)
	w.String(key)
	w.String(m.Kind)
	metaKeys := make([]string, 0, len(m.Meta))
	for k := range m.Meta {
		metaKeys = append(metaKeys, k)
	}
	sort.Strings(metaKeys)
	w.Uvarint(uint64(len(metaKeys)))
	for _, k := range metaKeys {
		w.String(k)
		w.String(m.Meta[k])
	}
	w.Uvarint(uint64(len(m.Refs)))
	for _, ref := range m.Refs {
		w.String(ref.Name)
		w.Raw(ref.Addr[:])
	}
	return w.Bytes()
}

func decodeManifest(payload []byte) (string, Manifest, bool) {
	r, err := codec.NewReader(payload, manifestFormat, manifestVersion)
	if err != nil {
		return "", Manifest{}, false
	}
	key := r.String()
	m := Manifest{Kind: r.String()}
	if n := r.Uvarint(); n > 0 {
		if n > uint64(len(payload)) {
			return "", Manifest{}, false
		}
		m.Meta = make(map[string]string, n)
		for i := uint64(0); i < n; i++ {
			k := r.String()
			m.Meta[k] = r.String()
		}
	}
	nrefs := r.Uvarint()
	if nrefs > uint64(len(payload)) {
		return "", Manifest{}, false
	}
	m.Refs = make([]ChunkRef, 0, nrefs)
	for i := uint64(0); i < nrefs; i++ {
		ref := ChunkRef{Name: r.String()}
		ab := r.Raw()
		if len(ab) != len(ref.Addr) {
			return "", Manifest{}, false
		}
		copy(ref.Addr[:], ab)
		m.Refs = append(m.Refs, ref)
	}
	if !r.Done() {
		return "", Manifest{}, false
	}
	return key, m, true
}
