package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// commit is one durable point in the journal's history: after the
// manifest for key was fsynced, the store promised to serve it.
type commit struct {
	key   string
	data  []byte
	bytes int64 // journal length at the commit point
}

// TestTornWriteRecovery is the crash-safety property test: truncating
// the journal at EVERY byte boundary must (a) open cleanly and (b)
// still serve every manifest whose commit point lies at or before the
// cut, byte-identically.  A torn tail may only lose records that were
// never fully committed.
func TestTornWriteRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j")
	s := openT(t, path, Options{NoAutoCompact: true})

	var commits []commit
	for i := 0; i < 6; i++ {
		// Varying sizes so cuts land inside headers, payloads, and CRCs.
		data := append([]byte(fmt.Sprintf("payload-%d|", i)), bytes.Repeat([]byte{byte(i)}, 37*i+11)...)
		a, err := s.PutChunk(data)
		if err != nil {
			t.Fatal(err)
		}
		key := fmt.Sprintf("key-%d", i)
		if err := s.PutManifest(key, Manifest{Kind: "t", Refs: []ChunkRef{{Name: "a", Addr: a}}}); err != nil {
			t.Fatal(err)
		}
		commits = append(commits, commit{key: key, data: data, bytes: s.Stats().JournalBytes})
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(full); cut++ {
		tp := filepath.Join(dir, "torn")
		if err := os.WriteFile(tp, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		// Guard against the magic check rejecting a torn-in-magic file:
		// those must still open (as an empty store), not error.
		ts, err := Open(tp, Options{NoAutoCompact: true})
		if err != nil {
			t.Fatalf("cut=%d: Open failed: %v", cut, err)
		}
		for _, c := range commits {
			m, ok := ts.GetManifest(c.key)
			if c.bytes <= int64(cut) {
				if !ok {
					t.Fatalf("cut=%d: committed %s (at %d bytes) lost", cut, c.key, c.bytes)
				}
				got, ok := ts.GetChunk(m.Refs[0].Addr)
				if !ok || !bytes.Equal(got, c.data) {
					t.Fatalf("cut=%d: %s chunk ok=%v, bytes differ=%v", cut, c.key, ok, !bytes.Equal(got, c.data))
				}
			}
			// Uncommitted manifests may be present or absent depending on
			// where the cut fell, but never corrupt: if served, the chunk
			// must verify.
			if ok && c.bytes > int64(cut) {
				if got, ok2 := ts.GetChunk(m.Refs[0].Addr); ok2 && !bytes.Equal(got, c.data) {
					t.Fatalf("cut=%d: %s served corrupt data", cut, c.key)
				}
			}
		}
		// The recovered store must accept new writes where the tail was
		// torn away.
		if cut >= len(fileMagic) && cut < len(full) {
			a, err := ts.PutChunk([]byte("post-recovery"))
			if err != nil {
				t.Fatalf("cut=%d: PutChunk after recovery: %v", cut, err)
			}
			if err := ts.PutManifest("fresh", Manifest{Kind: "t", Refs: []ChunkRef{{Name: "a", Addr: a}}}); err != nil {
				t.Fatalf("cut=%d: PutManifest after recovery: %v", cut, err)
			}
		}
		ts.Close()
	}
}

// Flipping a byte inside a committed record must never serve corrupt
// data: either the record (and its successors) is dropped at replay, or
// the chunk-level hash check refuses the read.
func TestBitRotNeverServesCorruptData(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j")
	s := openT(t, path, Options{NoAutoCompact: true})
	data := []byte("precious payload that must never be silently wrong")
	a, err := s.PutChunk(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutManifest("k", Manifest{Kind: "t", Refs: []ChunkRef{{Name: "a", Addr: a}}}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for pos := len(fileMagic); pos < len(full); pos += 3 {
		rot := append([]byte(nil), full...)
		rot[pos] ^= 0x40
		tp := filepath.Join(dir, "rot")
		if err := os.WriteFile(tp, rot, 0o644); err != nil {
			t.Fatal(err)
		}
		ts, err := Open(tp, Options{NoAutoCompact: true})
		if err != nil {
			continue // refused outright: acceptable
		}
		if m, ok := ts.GetManifest("k"); ok {
			if got, ok2 := ts.GetChunk(m.Refs[0].Addr); ok2 && !bytes.Equal(got, data) {
				t.Fatalf("pos=%d: corrupt chunk served", pos)
			}
		}
		ts.Close()
	}
}
