package verify_test

// Adversarial tests: each seeded corruption of the compiled analyses must
// produce its specific diagnostic.  This is what makes the verifier a
// translation validator rather than a re-run of the compiler — it trusts
// none of the event list, the Eliminated flags, or the CP selection, so
// mutating any of them is caught.

import (
	"testing"

	"dhpf/internal/comm"
	"dhpf/internal/cp"
	"dhpf/internal/ir"
	"dhpf/internal/spmd"
	"dhpf/internal/verify"
)

// findEvent returns the first event matching kind and statement in main.
func findEvent(t *testing.T, prog *spmd.Program, kind comm.Kind, stmt int) *comm.Event {
	t.Helper()
	for _, e := range prog.Comm["main"].Events {
		if e.Kind == kind && e.Stmt.ID == stmt {
			return e
		}
	}
	t.Fatalf("no %v event on stmt %d", kind, stmt)
	return nil
}

// dropEvent removes one event from main's plan.
func dropEvent(prog *spmd.Program, victim *comm.Event) {
	a := prog.Comm["main"]
	var kept []*comm.Event
	for _, e := range a.Events {
		if e != victim {
			kept = append(kept, e)
		}
	}
	a.Events = kept
}

// TestCorruptDroppedReadEvent: deleting a live read event (stencil's
// a(i,j-1) boundary fetch) leaves a non-local read uncovered.
func TestCorruptDroppedReadEvent(t *testing.T) {
	prog := compileFile(t, "stencil.hpf")
	victim := findEvent(t, prog, comm.ReadComm, 8)
	dropEvent(prog, victim)
	rep := mustVerify(t, prog)
	if rep.Clean() {
		t.Fatalf("dropped read event not caught:\n%s", rep)
	}
	d, ok := findDiag(rep, verify.CheckComm, verify.Error, "covered by no communication event")
	if !ok {
		t.Fatalf("wrong diagnostic:\n%s", rep)
	}
	if d.Stmt != 8 || d.Set == "" {
		t.Errorf("diagnostic lacks location or witness set: %s", d)
	}
}

// TestCorruptDroppedWriteback: deleting ysolve's live pipelined
// write-back leaves the owner's copy stale.
func TestCorruptDroppedWriteback(t *testing.T) {
	prog := compileFile(t, "ysolve.hpf")
	victim := findEvent(t, prog, comm.WriteBack, 9)
	dropEvent(prog, victim)
	rep := mustVerify(t, prog)
	d, ok := findDiag(rep, verify.CheckWriteback, verify.Error, "never return to the owner")
	if !ok {
		t.Fatalf("dropped write-back not caught:\n%s", rep)
	}
	if d.Stmt != 9 {
		t.Errorf("wrong statement: %s", d)
	}
}

// TestCorruptWrongDepth: hoisting ysolve's pipelined write-back out of
// the wavefront loop (depth 1 → 0) moves the message ahead of the
// carried dependence that needs it inside the loop.
func TestCorruptWrongDepth(t *testing.T) {
	prog := compileFile(t, "ysolve.hpf")
	victim := findEvent(t, prog, comm.WriteBack, 9)
	if victim.Depth != 1 || !victim.Pipelined {
		t.Fatalf("unexpected baseline event: %s", victim)
	}
	victim.Depth = 0
	victim.Pipelined = false
	victim.CarriedBy = nil
	rep := mustVerify(t, prog)
	if _, ok := findDiag(rep, verify.CheckPipeline, verify.Error, "dependences require depth 1"); !ok {
		t.Fatalf("wrong-depth corruption not caught:\n%s", rep)
	}
}

// TestCorruptUnpipelined: keeping the depth but clearing the Pipelined
// flag on a wavefront event claims the loop carries no processor-crossing
// dependence — it does.
func TestCorruptUnpipelined(t *testing.T) {
	prog := compileFile(t, "ysolve.hpf")
	victim := findEvent(t, prog, comm.WriteBack, 9)
	victim.Pipelined = false
	victim.CarriedBy = nil
	rep := mustVerify(t, prog)
	if _, ok := findDiag(rep, verify.CheckPipeline, verify.Error, "but the event is not pipelined"); !ok {
		t.Fatalf("un-pipelined wavefront not caught:\n%s", rep)
	}
}

// TestCorruptCarriedByMismatch: pointing CarriedBy at the wrong loop
// serializes the wrong dimension.
func TestCorruptCarriedByMismatch(t *testing.T) {
	prog := compileFile(t, "ysolve.hpf")
	victim := findEvent(t, prog, comm.WriteBack, 9)
	if len(victim.Nest) < 2 {
		t.Fatalf("expected a 2-deep nest, got %d", len(victim.Nest))
	}
	victim.CarriedBy = victim.Nest[1] // inner i loop, not the wavefront j loop
	rep := mustVerify(t, prog)
	if _, ok := findDiag(rep, verify.CheckPipeline, verify.Error, "is not its placement loop"); !ok {
		t.Fatalf("CarriedBy mismatch not caught:\n%s", rep)
	}
}

// TestCorruptBogusElimination: marking stencil's live boundary fetch
// Eliminated asserts an availability proof that does not exist.
func TestCorruptBogusElimination(t *testing.T) {
	prog := compileFile(t, "stencil.hpf")
	victim := findEvent(t, prog, comm.ReadComm, 8)
	victim.Eliminated = true
	victim.Reason = "forged"
	rep := mustVerify(t, prog)
	if _, ok := findDiag(rep, verify.CheckComm, verify.Error, "no earlier local write covers"); !ok {
		t.Fatalf("bogus elimination not caught:\n%s", rep)
	}
}

const reductionSrc = `
program red
param N = 64
param P = 4
!hpf$ processors procs(P)
!hpf$ template tline(N)
!hpf$ align a with tline(d0)
!hpf$ distribute tline(BLOCK) onto procs

subroutine main()
  real a(0:N-1)
  real s
  do i = 0, N-1
    a(i) = 0.5*i
  enddo
  s = 0.0
  do i = 0, N-1
    s = s + a(i)
  enddo
end
`

// TestCorruptOverReplicatedReduction: replacing the reduction statement's
// partitioned CP with replicated execution makes every rank accumulate
// every element — the collective combine then multiplies the sum by the
// rank count.  The coverage check's disjointness obligation catches it.
func TestCorruptOverReplicatedReduction(t *testing.T) {
	prog := compileSrc(t, reductionSrc)
	plans := prog.Reductions["main"]
	if len(plans) != 1 {
		t.Fatalf("expected 1 reduction, got %d", len(plans))
	}
	id := plans[0].Stmt.ID
	prog.Sel.CPs[id] = &cp.CP{} // replicated
	rep := mustVerify(t, prog)
	d, ok := findDiag(rep, verify.CheckCoverage, verify.Error, "double-count in the collective combine")
	if !ok {
		t.Fatalf("over-replicated reduction not caught:\n%s", rep)
	}
	if d.Stmt != id {
		t.Errorf("wrong statement: %s", d)
	}
}

// TestCorruptLostIterations: shrinking a statement's CP to a single term
// that covers only part of the iteration space loses iterations.
func TestCorruptLostIterations(t *testing.T) {
	prog := compileFile(t, "stencil.hpf")
	// Stmt 8 is b(i,j) = 0.25*(…); replace its CP with ON_HOME a(i,j-8):
	// shifted ownership leaves the last block's iterations unexecuted.
	shifted := &cp.CP{}
	shifted.AddTerm(cp.Term{Array: "a", Subs: []cp.HomeSub{
		{Var: "i", Coef: 1, Off: ir.Num(0)},
		{Var: "j", Coef: 1, Off: ir.Num(-8)},
	}})
	prog.Sel.CPs[8] = shifted
	rep := mustVerify(t, prog)
	if _, ok := findDiag(rep, verify.CheckCoverage, verify.Error, "executed by no rank"); !ok {
		t.Fatalf("lost iterations not caught:\n%s", rep)
	}
}

// TestCorruptSelfAccumulateOverlap: ysolve's statement 9 accumulates into
// w(i,j+1) — a non-idempotent update.  Replacing its CP with ON_HOME
// w(i,30) ∪ w(i,45) makes the two ranks owning columns 30 and 45 each
// execute *every* iteration: both write the full row range, including
// elements whose owner executes nothing — overlapping replicated updates
// with no redundancy cover, so the accumulation applies twice.
func TestCorruptSelfAccumulateOverlap(t *testing.T) {
	prog := compileFile(t, "ysolve.hpf")
	corrupt := &cp.CP{}
	corrupt.AddTerm(cp.Term{Array: "w", Subs: []cp.HomeSub{
		{Var: "i", Coef: 1, Off: ir.Num(0)},
		{Off: ir.Num(30)},
	}})
	corrupt.AddTerm(cp.Term{Array: "w", Subs: []cp.HomeSub{
		{Var: "i", Coef: 1, Off: ir.Num(0)},
		{Off: ir.Num(45)},
	}})
	prog.Sel.CPs[9] = corrupt
	rep := mustVerify(t, prog)
	if _, ok := findDiag(rep, verify.CheckCoverage, verify.Error, "self-accumulating write replicated"); !ok {
		t.Fatalf("replicated self-accumulating write not caught:\n%s", rep)
	}
}
