package verify

import (
	"fmt"

	"dhpf/internal/comm"
	"dhpf/internal/cp"
	"dhpf/internal/dep"
	"dhpf/internal/hpf"
	"dhpf/internal/ir"
	"dhpf/internal/iset"
)

// checker verifies one procedure.  It re-runs dependence analysis on the
// (post-distribution) body itself, so its placement and availability
// obligations are derived from scratch rather than read off the comm
// package's cached state.
type checker struct {
	in   Input
	proc *ir.Procedure
	an   *comm.Analysis
	grid *hpf.Grid
	rep  *Report

	deps   []*dep.Dependence
	asn    []ir.AssignInNest
	nestOf map[int][]*ir.Loop
	iters  map[int][]iset.Set // per assignment: per-rank iteration sets
}

func newChecker(in Input, proc *ir.Procedure, an *comm.Analysis, grid *hpf.Grid, rep *Report) *checker {
	c := &checker{
		in: in, proc: proc, an: an, grid: grid, rep: rep,
		deps:   dep.Analyze(proc.Body),
		asn:    ir.Assignments(proc.Body),
		nestOf: map[int][]*ir.Loop{},
		iters:  map[int][]iset.Set{},
	}
	for _, a := range c.asn {
		c.nestOf[a.Assign.ID] = a.Nest
	}
	return c
}

func (c *checker) run() {
	c.rep.Stmts += len(c.asn)
	c.rep.Events += len(c.an.Events)
	for _, a := range c.asn {
		c.checkCoverage(a)
		c.checkReads(a)
		c.checkWriteback(a)
		if c.shmBackend() {
			c.checkRace(a)
		}
	}
	for _, e := range c.an.Events {
		c.checkPlacement(e)
	}
	c.checkPrivatizedProduction()
	c.checkPrivatize()
}

// shmBackend reports whether the verified program targets a
// shared-memory substrate (the canonical names the passes package
// assigns; verify cannot import passes without a cycle).
func (c *checker) shmBackend() bool {
	return c.in.Backend == "shm" || c.in.Backend == "hybrid"
}

// privatizedBy returns the enclosing loop privatizing the assignment's
// LHS via a NEW or LOCALIZE directive, if any.
func (c *checker) privatizedBy(a ir.AssignInNest) *ir.Loop {
	for _, l := range a.Nest {
		for _, v := range l.New {
			if v == a.Assign.LHS.Name {
				return l
			}
		}
		for _, v := range l.Localize {
			if v == a.Assign.LHS.Name {
				return l
			}
		}
	}
	return nil
}

func (c *checker) diag(d Diagnostic) {
	d.Proc = c.proc.Name
	c.rep.Diagnostics = append(c.rep.Diagnostics, d)
}

func (c *checker) params() map[string]int { return c.in.Ctx.Bind.Params }

// iterSets returns (and caches) the per-rank iteration sets of an
// assignment under its selected CP.
func (c *checker) iterSets(a ir.AssignInNest) []iset.Set {
	if s, ok := c.iters[a.Assign.ID]; ok {
		return s
	}
	stmtCP := c.in.Sel.CPOf(a.Assign.ID)
	out := make([]iset.Set, c.grid.Size())
	for r := range out {
		out[r] = stmtCP.IterSet(a.Nest, c.params(), c.in.Ctx.LocalOf(c.proc, r))
	}
	c.iters[a.Assign.ID] = out
	return out
}

// nonLocal computes the data of ref a rank touches but does not own when
// the given statement executes under its CP (the verifier's independent
// equivalent of the comm package's nonLocalOf).
func (c *checker) nonLocal(stmt *ir.Assign, nest []*ir.Loop, ref *ir.ArrayRef, rank int) iset.Set {
	stmtCP := c.in.Sel.CPOf(stmt.ID)
	iters := stmtCP.IterSet(nest, c.params(), c.in.Ctx.LocalOf(c.proc, rank))
	return c.in.Ctx.NonLocalData(c.proc, ref, ir.NestVars(nest), iters, rank)
}

// eventsFor finds the events attached to a (statement, reference shape).
func (c *checker) eventsFor(kind comm.Kind, stmt int, ref *ir.ArrayRef) []*comm.Event {
	var out []*comm.Event
	for _, e := range c.an.Events {
		if e.Kind == kind && e.Stmt.ID == stmt && e.Ref.Eq(ref) {
			out = append(out, e)
		}
	}
	return out
}

// --- theorem 1: coverage -----------------------------------------------------

// checkCoverage proves no iteration is lost (the union of per-rank
// iteration sets covers the full iteration space) and that non-idempotent
// work is not silently replicated: reduction statements must partition
// their iterations (overlap double-counts the collective combine), and
// self-accumulating array updates replicated across ranks must carry a
// redundancy cover (the owner computes the identical elements itself).
func (c *checker) checkCoverage(a ir.AssignInNest) {
	id := a.Assign.ID
	// A statement defining a privatized (NEW/LOCALIZE) array is exempt
	// from full-space coverage: §4.1's CP translation deliberately drops
	// defining iterations whose values no use consumes (dead under the
	// directive's liveness assertion).  Its real obligation — every
	// element actually consumed is produced on the consuming rank — is
	// checkPrivatizedProduction's.
	if c.privatizedBy(a) != nil {
		return
	}
	full := iset.FromBox(cp.IterBox(a.Nest, c.params()))
	sets := c.iterSets(a)
	union := iset.EmptySet(full.Rank())
	for _, s := range sets {
		union = union.Union(s)
	}
	if !full.SubsetOf(union) {
		c.diag(Diagnostic{
			Check: CheckCoverage, Severity: Error, Stmt: id,
			Ref: a.Assign.LHS.String(),
			Set: full.Subtract(union).String(),
			Why: fmt.Sprintf("iterations executed by no rank under %s", c.in.Sel.CPOf(id)),
		})
	}
	if c.in.Reductions[id] {
		for r := 0; r < len(sets); r++ {
			for s := r + 1; s < len(sets); s++ {
				ov := sets[r].Intersect(sets[s])
				if !ov.IsEmpty() {
					c.diag(Diagnostic{
						Check: CheckCoverage, Severity: Error, Stmt: id,
						Ref: a.Assign.LHS.String(),
						Set: ov.String(),
						Why: fmt.Sprintf("reduction iterations replicated on ranks %d and %d: partial results double-count in the collective combine", r, s),
					})
					return
				}
			}
		}
		return
	}
	if !c.selfAccumulating(a.Assign) {
		return
	}
	layout := c.in.Ctx.Layout(c.proc, a.Assign.LHS.Name)
	if layout == nil || len(a.Assign.LHS.Subs) == 0 {
		return
	}
	written := c.writtenSets(a, layout)
	for r := 0; r < len(written); r++ {
		for s := r + 1; s < len(written); s++ {
			ov := written[r].Intersect(written[s])
			if ov.IsEmpty() {
				continue
			}
			if c.redundantWrites(layout, written) {
				return // sanctioned partial replication: identical instances
			}
			c.diag(Diagnostic{
				Check: CheckCoverage, Severity: Error, Stmt: id,
				Ref: a.Assign.LHS.String(),
				Set: ov.String(),
				Why: fmt.Sprintf("self-accumulating write replicated on ranks %d and %d without a redundancy cover: the update applies more than once", r, s),
			})
			return
		}
	}
}

// selfAccumulating reports whether the statement reads the element it
// writes (a(i) = a(i) ⊕ …), making replicated execution non-idempotent.
func (c *checker) selfAccumulating(a *ir.Assign) bool {
	for _, r := range ir.Refs(a.RHS) {
		if r.Eq(a.LHS) {
			return true
		}
	}
	return false
}

// writtenSets computes, per rank, the element set the statement writes.
func (c *checker) writtenSets(a ir.AssignInNest, layout *hpf.Layout) []iset.Set {
	vars := ir.NestVars(a.Nest)
	sets := c.iterSets(a)
	out := make([]iset.Set, len(sets))
	for r := range sets {
		out[r] = cp.RefDataSet(a.Assign.LHS, vars, sets[r], c.params()).IntersectBox(layout.Space())
	}
	return out
}

// redundantWrites re-derives the write-back redundancy condition: every
// element a rank writes outside its own partition is also written by its
// owner with the same statement, so all replicated instances compute the
// identical value and no copy is stale.
func (c *checker) redundantWrites(layout *hpf.Layout, written []iset.Set) bool {
	for t := range written {
		nl := written[t].SubtractBox(layout.LocalBox(t))
		if nl.IsEmpty() {
			continue
		}
		for o := range written {
			if o == t {
				continue
			}
			piece := nl.IntersectBox(layout.LocalBox(o))
			if piece.IsEmpty() {
				continue
			}
			if !piece.SubsetOf(written[o]) {
				return false
			}
		}
	}
	return true
}

// --- theorem 5: race freedom (shared-memory backends) ------------------------

// checkRace proves the shared-memory backend's write-disjointness
// obligation: within one barrier phase (a statement's execution between
// its surrounding synchronization points), no two ranks write the same
// element of a distributed array.  The message machine tolerates write
// overlap — duplicate write-back deliveries serialize in the receiver's
// mailbox — but on a shared address space the same overlap is a data
// race.  Overlap is sanctioned only when the redundancy proof shows
// every replicated instance computes the identical value (same-value
// stores cannot produce a torn result under the barrier protocol, and
// the backend orders them with its rendezvous acks); that case is
// recorded as an INFO proof.  Privatized (NEW/LOCALIZE) arrays are
// exempt: the backend gives each thread a private copy, which is
// exactly the privatization obligation the directive asserts.
func (c *checker) checkRace(a ir.AssignInNest) {
	lhs := a.Assign.LHS
	layout := c.in.Ctx.Layout(c.proc, lhs.Name)
	if layout == nil || len(lhs.Subs) == 0 {
		return
	}
	if c.privatizedBy(a) != nil {
		return // thread-private under shm; production coverage is checked separately
	}
	if c.in.Reductions[a.Assign.ID] {
		return // per-rank partials are private until the collective combine
	}
	written := c.writtenSets(a, layout)
	for r := 0; r < len(written); r++ {
		for s := r + 1; s < len(written); s++ {
			ov := written[r].Intersect(written[s])
			if ov.IsEmpty() {
				continue
			}
			if c.redundantWrites(layout, written) {
				c.diag(Diagnostic{
					Check: CheckRace, Severity: Info, Stmt: a.Assign.ID,
					Ref: lhs.String(),
					Why: fmt.Sprintf("write overlap between ranks %d and %d re-proven benign: every replicated instance computes the identical value", r, s),
				})
				return
			}
			c.diag(Diagnostic{
				Check: CheckRace, Severity: Error, Stmt: a.Assign.ID,
				Ref: lhs.String(), Set: ov.String(),
				Why: fmt.Sprintf("ranks %d and %d write the same elements in one barrier phase: a data race under the shared-memory backend", r, s),
			})
			return
		}
	}
}

// --- theorem 2: communication completeness -----------------------------------

// checkReads proves every non-local read is satisfied: each RHS reference
// whose data-owner set differs from the executing ranks must carry a live
// read event, or an availability proof — re-derived here from the fresh
// dependence analysis — that the reading rank itself produced the values
// with an earlier write.
func (c *checker) checkReads(a ir.AssignInNest) {
	vars := ir.NestVars(a.Nest)
	sets := c.iterSets(a)
	var seen []*ir.ArrayRef
refs:
	for _, ref := range ir.Refs(a.Assign.RHS) {
		if c.in.Ctx.Layout(c.proc, ref.Name) == nil || len(ref.Subs) == 0 {
			continue
		}
		for _, s := range seen {
			if s.Eq(ref) {
				continue refs
			}
		}
		seen = append(seen, ref)

		nl := make([]iset.Set, len(sets))
		all := iset.EmptySet(len(ref.Subs))
		for r := range sets {
			nl[r] = c.in.Ctx.NonLocalData(c.proc, ref, vars, sets[r], r)
			all = all.Union(nl[r])
		}
		if all.IsEmpty() {
			continue
		}
		events := c.eventsFor(comm.ReadComm, a.Assign.ID, ref)
		if len(events) == 0 {
			c.diag(Diagnostic{
				Check: CheckComm, Severity: Error, Stmt: a.Assign.ID,
				Ref: ref.String(), Set: all.String(),
				Why: "non-local read is covered by no communication event: ranks would use stale or unallocated values",
			})
			continue
		}
		live := false
		for _, e := range events {
			if !e.Eliminated {
				live = true
				break
			}
		}
		if live {
			continue // satisfied by a real message; placement checked separately
		}
		if src, ok := c.proveAvailability(a.Assign, ref, nl); ok {
			c.diag(Diagnostic{
				Check: CheckComm, Severity: Info, Stmt: a.Assign.ID,
				Ref: ref.String(),
				Why: fmt.Sprintf("eliminated read re-proven: every rank produced the non-local values locally with stmt %d", src),
			})
			continue
		}
		c.diag(Diagnostic{
			Check: CheckComm, Severity: Error, Stmt: a.Assign.ID,
			Ref: ref.String(), Set: all.String(),
			Why: "read event eliminated but no earlier local write covers the non-local data on every rank",
		})
	}
}

// proveAvailability searches the re-derived flow dependences into the
// reference for a producing statement whose non-local writes cover the
// read's non-local needs on every rank — the reader already holds the
// values it would otherwise fetch.  Accepting *any* covering producer is
// deliberately more permissive than §7's last-reaching-write rule, so a
// legitimate elimination is never flagged; like the paper, the proof
// assumes no intervening kill (dependence analysis provides no kill
// information).
func (c *checker) proveAvailability(stmt *ir.Assign, ref *ir.ArrayRef, readNL []iset.Set) (srcStmt int, ok bool) {
	for _, d := range c.deps {
		if d.Kind != dep.Flow || d.Dst != stmt {
			continue
		}
		if d.DstRef == nil || !d.DstRef.Eq(ref) {
			continue
		}
		covered := true
		for rank := range readNL {
			if readNL[rank].IsEmpty() {
				continue
			}
			writeNL := c.nonLocal(d.Src, c.nestOf[d.Src.ID], d.SrcRef, rank)
			if !readNL[rank].SubsetOf(writeNL) {
				covered = false
				break
			}
		}
		if covered {
			return d.Src.ID, true
		}
	}
	return 0, false
}

// --- theorem 3: writeback soundness ------------------------------------------

// checkWriteback proves every non-owner write reaches its owner: a live
// write-back event, or a re-derived proof that the owner computes the
// identical elements itself (partial replication).
func (c *checker) checkWriteback(a ir.AssignInNest) {
	lhs := a.Assign.LHS
	layout := c.in.Ctx.Layout(c.proc, lhs.Name)
	if layout == nil || len(lhs.Subs) == 0 {
		return
	}
	vars := ir.NestVars(a.Nest)
	sets := c.iterSets(a)
	all := iset.EmptySet(len(lhs.Subs))
	for r := range sets {
		all = all.Union(c.in.Ctx.NonLocalData(c.proc, lhs, vars, sets[r], r))
	}
	if all.IsEmpty() {
		return
	}
	events := c.eventsFor(comm.WriteBack, a.Assign.ID, lhs)
	if len(events) == 0 {
		c.diag(Diagnostic{
			Check: CheckWriteback, Severity: Error, Stmt: a.Assign.ID,
			Ref: lhs.String(), Set: all.String(),
			Why: "non-owner writes never return to the owner: the owner's copy goes stale",
		})
		return
	}
	for _, e := range events {
		if !e.Eliminated {
			return // a real finalization message exists
		}
	}
	if c.redundantWrites(layout, c.writtenSets(a, layout)) {
		c.diag(Diagnostic{
			Check: CheckWriteback, Severity: Info, Stmt: a.Assign.ID,
			Ref: lhs.String(),
			Why: "eliminated write-back re-proven: the owner computes the identical elements itself",
		})
		return
	}
	c.diag(Diagnostic{
		Check: CheckWriteback, Severity: Error, Stmt: a.Assign.ID,
		Ref: lhs.String(), Set: all.String(),
		Why: "write-back eliminated but the owner does not compute every element written remotely",
	})
}

// --- theorem 4: pipeline legality --------------------------------------------

// checkPlacement proves a live event's placement depth respects the
// dependences it exists to serve, and that processor-crossing carried
// dependences occur only under consistently-marked Pipelined events.
func (c *checker) checkPlacement(e *comm.Event) {
	if e.Depth < 0 || e.Depth > len(e.Nest) {
		c.diag(Diagnostic{
			Check: CheckPipeline, Severity: Error, Stmt: e.Stmt.ID,
			Ref: e.Ref.String(),
			Why: fmt.Sprintf("malformed placement: depth %d outside nest of %d loops", e.Depth, len(e.Nest)),
		})
		return
	}
	if e.Eliminated {
		return // never executes
	}
	req := c.requiredDepth(e)
	if e.Depth < req {
		role := "values are fetched before the statement that produces them"
		if e.Kind == comm.WriteBack {
			role = "the owner receives the value after a consumer already needed it"
		}
		c.diag(Diagnostic{
			Check: CheckPipeline, Severity: Error, Stmt: e.Stmt.ID,
			Ref: e.Ref.String(),
			Why: fmt.Sprintf("%s event placed at depth %d but its dependences require depth %d: %s", e.Kind, e.Depth, req, role),
		})
	}
	if e.Depth == 0 {
		if e.Pipelined {
			c.diag(Diagnostic{
				Check: CheckPipeline, Severity: Error, Stmt: e.Stmt.ID,
				Ref: e.Ref.String(),
				Why: "event marked pipelined but hoisted out of every loop: no loop carries its dependence",
			})
		}
		return
	}
	carrier := e.Nest[e.Depth-1]
	crossing := c.carriesCrossing(carrier, e.Ref.Name)
	switch {
	case crossing && !e.Pipelined:
		c.diag(Diagnostic{
			Check: CheckPipeline, Severity: Error, Stmt: e.Stmt.ID,
			Ref: e.Ref.String(),
			Why: fmt.Sprintf("placement loop %s carries a processor-crossing flow dependence on %s but the event is not pipelined: ranks would race the wavefront", carrier.Var, e.Ref.Name),
		})
	case e.Pipelined && e.CarriedBy != carrier:
		name := "<nil>"
		if e.CarriedBy != nil {
			name = e.CarriedBy.Var
		}
		c.diag(Diagnostic{
			Check: CheckPipeline, Severity: Error, Stmt: e.Stmt.ID,
			Ref: e.Ref.String(),
			Why: fmt.Sprintf("pipelined event's CarriedBy loop %s is not its placement loop %s: the pipeline serializes the wrong dimension", name, carrier.Var),
		})
	case e.Pipelined && !crossing:
		c.diag(Diagnostic{
			Check: CheckPipeline, Severity: Warning, Stmt: e.Stmt.ID,
			Ref: e.Ref.String(),
			Why: fmt.Sprintf("event marked pipelined but loop %s carries no processor-crossing flow dependence on %s", carrier.Var, e.Ref.Name),
		})
	}
}

// requiredDepth re-derives the minimum legal placement depth of an event
// from the fresh dependence analysis, mirroring the placement rules the
// comm package uses: a read must sit inside every loop a reaching flow
// dependence pins (loop-independent ⇒ all shared loops; carried ⇒ the
// carrying loop); a write-back must sit inside every loop a consuming
// flow dependence pins, except consumers on the same partition reached
// without crossing a distributed dimension.
func (c *checker) requiredDepth(e *comm.Event) int {
	depth := 0
	if e.Kind == comm.ReadComm {
		for _, d := range c.deps {
			if d.Kind != dep.Flow || d.Dst != e.Stmt {
				continue
			}
			if d.DstRef == nil || !d.DstRef.Eq(e.Ref) {
				continue
			}
			depth = max(depth, depDepth(e.Nest, d))
		}
		return depth
	}
	srcKey := cp.PartitionKey(c.in.Ctx, c.proc, c.in.Sel.CPOf(e.Stmt.ID))
	for _, d := range c.deps {
		if d.Kind != dep.Flow || d.Src != e.Stmt {
			continue
		}
		if d.SrcRef == nil || !d.SrcRef.Eq(e.Ref) {
			continue
		}
		if srcKey != "<replicated>" &&
			cp.PartitionKey(c.in.Ctx, c.proc, c.in.Sel.CPOf(d.Dst.ID)) == srcKey &&
			!c.depCrossesRanks(d) {
			continue
		}
		depth = max(depth, depDepth(e.Nest, d))
	}
	return depth
}

// carriesCrossing reports whether any re-derived flow dependence on the
// array is carried by the loop across a distributed dimension.
func (c *checker) carriesCrossing(carrier *ir.Loop, array string) bool {
	for _, d := range c.deps {
		if d.Kind != dep.Flow || !d.CarriedBy(carrier) {
			continue
		}
		if d.SrcRef == nil || d.SrcRef.Name != array {
			continue
		}
		if c.crossesPartition(d, carrier) {
			return true
		}
	}
	return false
}

// depCrossesRanks mirrors the comm package's rule: a dependence connects
// different ranks only when carried by a loop whose variable indexes a
// distributed dimension of the source reference.
func (c *checker) depCrossesRanks(d *dep.Dependence) bool {
	if d.Level == 0 {
		return false
	}
	return c.crossesPartition(d, d.CommonNest[d.Level-1])
}

func (c *checker) crossesPartition(d *dep.Dependence, l *ir.Loop) bool {
	layout := c.in.Ctx.Layout(c.proc, d.SrcRef.Name)
	if layout == nil || len(d.SrcRef.Subs) != layout.Rank() {
		return false
	}
	for k, s := range d.SrcRef.Subs {
		if s.Var == l.Var && layout.Dims[k].Kind != hpf.Star {
			return true
		}
	}
	return false
}

// depDepth converts a dependence into a placement depth within nest: a
// loop-independent dependence pins the event inside every shared loop; a
// carried one pins it inside the carrying loop only.
func depDepth(nest []*ir.Loop, d *dep.Dependence) int {
	shared := sharedDepth(nest, d.CommonNest)
	if d.LoopIndependent() {
		return shared
	}
	return min(shared, d.Level)
}

// sharedDepth counts how many loops of nest form a prefix of common.
func sharedDepth(nest, common []*ir.Loop) int {
	n := 0
	for i := 0; i < len(nest) && i < len(common); i++ {
		if nest[i] != common[i] {
			break
		}
		n++
	}
	return n
}

// checkPrivatizedProduction verifies the §4.1/§4.2 obligation replacing
// full-space coverage for privatized arrays: inside a NEW/LOCALIZE loop,
// every element of the privatized array a rank consumes must be produced
// by a defining iteration that same rank executes (or fetched by a live
// read event).  This is exactly what CP propagation's use-to-definition
// translation is supposed to guarantee — re-proven here from the
// iteration sets alone.
func (c *checker) checkPrivatizedProduction() {
	ir.Walk(c.proc.Body, func(s ir.Stmt, _ []*ir.Loop) bool {
		l, ok := s.(*ir.Loop)
		if !ok {
			return true
		}
		vars := append(append([]string{}, l.New...), l.Localize...)
		seen := map[string]bool{}
		for _, v := range vars {
			if seen[v] {
				continue
			}
			seen[v] = true
			c.checkProductionOf(l, v)
		}
		return true
	})
}

// checkProductionOf runs the production-coverage obligation for one
// privatized array under one loop.
func (c *checker) checkProductionOf(l *ir.Loop, array string) {
	layout := c.in.Ctx.Layout(c.proc, array)
	if layout == nil {
		return // undistributed temporaries carry no partitioned defs to lose
	}
	inLoop := func(nest []*ir.Loop) bool {
		for _, n := range nest {
			if n == l {
				return true
			}
		}
		return false
	}
	var defs []ir.AssignInNest
	for _, a := range c.asn {
		if inLoop(a.Nest) && a.Assign.LHS.Name == array && len(a.Assign.LHS.Subs) > 0 {
			defs = append(defs, a)
		}
	}
	for rank := 0; rank < c.grid.Size(); rank++ {
		produced := iset.EmptySet(layout.Rank())
		for _, d := range defs {
			iters := c.iterSets(d)[rank]
			produced = produced.Union(
				cp.RefDataSet(d.Assign.LHS, ir.NestVars(d.Nest), iters, c.params()).IntersectBox(layout.Space()))
		}
		for _, a := range c.asn {
			if !inLoop(a.Nest) {
				continue
			}
			for _, ref := range ir.Refs(a.Assign.RHS) {
				if ref.Name != array || len(ref.Subs) == 0 {
					continue
				}
				iters := c.iterSets(a)[rank]
				needed := cp.RefDataSet(ref, ir.NestVars(a.Nest), iters, c.params()).IntersectBox(layout.Space())
				if needed.IsEmpty() {
					continue
				}
				fetched := iset.EmptySet(layout.Rank())
				for _, e := range c.eventsFor(comm.ReadComm, a.Assign.ID, ref) {
					if !e.Eliminated {
						fetched = fetched.Union(c.in.Ctx.NonLocalData(c.proc, ref, ir.NestVars(a.Nest), iters, rank))
					}
				}
				missing := needed.Subtract(produced).Subtract(fetched)
				if !missing.IsEmpty() {
					c.diag(Diagnostic{
						Check: CheckCoverage, Severity: Error, Stmt: a.Assign.ID,
						Ref: ref.String(), Set: missing.String(),
						Why: fmt.Sprintf("privatized array %s: rank %d consumes elements no defining iteration it executes produces (NEW/LOCALIZE translation broken)", array, rank),
					})
				}
			}
		}
	}
}

// --- privatization linter surface --------------------------------------------

// checkPrivatize surfaces the conservative bail-outs of the privatization
// linter as INFO diagnostics: for every NEW/LOCALIZE directive, any read
// the set-based def-before-use check could not cover is reported with its
// reason, instead of staying a silent user assertion.
func (c *checker) checkPrivatize() {
	ir.Walk(c.proc.Body, func(s ir.Stmt, _ []*ir.Loop) bool {
		l, ok := s.(*ir.Loop)
		if !ok {
			return true
		}
		for _, group := range []struct {
			directive string
			vars      []string
		}{{"NEW", l.New}, {"LOCALIZE", l.Localize}} {
			for _, v := range group.vars {
				for _, b := range dep.NewBailouts(l, v, c.params()) {
					c.diag(Diagnostic{
						Check: CheckPrivatize, Severity: Info, Stmt: b.Stmt,
						Ref: b.Ref,
						Why: fmt.Sprintf("%s(%s) on loop %s not validated — privatization rests on the user assertion: %s",
							group.directive, v, l.Var, b.Why()),
					})
				}
			}
		}
		return true
	})
}
