package verify_test

// Race-freedom theorem tests: under the shared-memory backends the
// verifier must prove per-rank write disjointness within a barrier
// phase, catch seeded partition corruptions that make two threads write
// the same elements, and stay silent under the message backend where
// duplicate deliveries serialize in the receiver's mailbox.

import (
	"os"
	"path/filepath"
	"testing"

	"dhpf/internal/cp"
	"dhpf/internal/ir"
	"dhpf/internal/passes"
	"dhpf/internal/spmd"
	"dhpf/internal/verify"
)

func compileBackendFile(t *testing.T, name, backend string) *spmd.Program {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	opt := spmd.DefaultOptions()
	opt.Backend = backend
	prog, err := spmd.CompileSource(string(src), nil, opt)
	if err != nil {
		t.Fatalf("compile (backend %s): %v", backend, err)
	}
	return prog
}

// overlapCP builds the corrupted partitioning used by the race tests:
// ON_HOME a(i,30) ∪ a(i,45) makes the two ranks owning columns 30 and
// 45 each execute every iteration, so their write sets coincide.
func overlapCP(array string) *cp.CP {
	c := &cp.CP{}
	c.AddTerm(cp.Term{Array: array, Subs: []cp.HomeSub{
		{Var: "i", Coef: 1, Off: ir.Num(0)},
		{Off: ir.Num(30)},
	}})
	c.AddTerm(cp.Term{Array: array, Subs: []cp.HomeSub{
		{Var: "i", Coef: 1, Off: ir.Num(0)},
		{Off: ir.Num(45)},
	}})
	return c
}

// TestShmCleanOnTestdata: the compiler's actual partitions satisfy the
// race-freedom theorem on every corpus program — disjoint ON_HOME write
// sets between barriers, no error diagnostics under the shm backend.
func TestShmCleanOnTestdata(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.hpf"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata files found: %v", err)
	}
	for _, f := range files {
		for _, backend := range []string{passes.BackendShm, passes.BackendHybrid} {
			t.Run(filepath.Base(f)+"-"+backend, func(t *testing.T) {
				prog := compileBackendFile(t, filepath.Base(f), backend)
				rep := mustVerify(t, prog)
				if !rep.Clean() {
					t.Fatalf("not race-clean under %s:\n%s", backend, rep)
				}
			})
		}
	}
}

// TestCorruptPartitionRace: corrupting stencil's relaxation statement to
// the overlapping two-term partition makes two threads write the same
// rows of b concurrently — the race theorem must name the overlap.
func TestCorruptPartitionRace(t *testing.T) {
	prog := compileBackendFile(t, "stencil.hpf", passes.BackendShm)
	prog.Sel.CPs[8] = overlapCP("a")
	rep := mustVerify(t, prog)
	d, ok := findDiag(rep, verify.CheckRace, verify.Error, "data race under the shared-memory backend")
	if !ok {
		t.Fatalf("corrupted partition's write overlap not caught:\n%s", rep)
	}
	if d.Stmt != 8 || d.Set == "" {
		t.Errorf("diagnostic lacks location or witness set: %s", d)
	}
}

// TestCorruptPartitionRaceMPSilent: the identical corruption under the
// message backend must NOT produce a race diagnostic — duplicate
// deliveries serialize in mailboxes there, and the overlap is already
// reported through the coverage/writeback theorems instead.
func TestCorruptPartitionRaceMPSilent(t *testing.T) {
	prog := compileBackendFile(t, "stencil.hpf", passes.BackendMP)
	prog.Sel.CPs[8] = overlapCP("a")
	rep := mustVerify(t, prog)
	for _, d := range rep.Diagnostics {
		if d.Check == verify.CheckRace {
			t.Fatalf("race diagnostic emitted under the message backend: %s", d)
		}
	}
}

// TestRaceReductionExempt: a recognized reduction's per-rank partials
// are private until the collective combine, so the race theorem must
// not flag the accumulation statement even though every rank writes the
// same scalar slot.
func TestRaceReductionExempt(t *testing.T) {
	opt := spmd.DefaultOptions()
	opt.Backend = passes.BackendShm
	prog, err := spmd.CompileSource(reductionSrc, nil, opt)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	rep := mustVerify(t, prog)
	if !rep.Clean() {
		t.Fatalf("reduction flagged under shm:\n%s", rep)
	}
}
