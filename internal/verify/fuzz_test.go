package verify_test

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dhpf/internal/mpsim"
	"dhpf/internal/parser"
	"dhpf/internal/passes"
	"dhpf/internal/spmd"
)

// corpus returns every shipped mini-HPF program.
func corpus(t testing.TB) map[string]string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.hpf"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no corpus: %v", err)
	}
	out := map[string]string{}
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		out[filepath.Base(p)] = string(src)
	}
	return out
}

// FuzzCompileVerify: any mutation of the corpus must either fail to
// parse, fail to compile with a diagnostic, or compile and verify —
// never panic and never produce a report that cannot render.  The
// in-pipeline verify pass is disabled so the explicit Verify call also
// exercises unsafe-but-compilable mutants.
func FuzzCompileVerify(f *testing.F) {
	for _, src := range corpus(f) {
		f.Add(src)
	}
	opt := spmd.DefaultOptions()
	opt.Disable = append(opt.Disable, passes.PassVerify)
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<15 {
			t.Skip("oversized input")
		}
		if _, err := parser.Parse(src); err != nil {
			return // parse failure is an accepted outcome
		}
		// The deadline bounds pathological pipeline blowups (compilation
		// checks it at every pass boundary).
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		prog, err := spmd.CompileSourceCtx(ctx, src, nil, opt)
		if err != nil {
			return // compile diagnostics are an accepted outcome
		}
		if prog.Grid.Size() > 32 {
			t.Skip("fuzzed grid too large to verify cheaply")
		}
		rep, err := prog.Verify()
		if err != nil {
			return // malformed-input error, still no panic
		}
		// Both renderings must succeed whatever the verdict.
		_ = rep.String()
		_ = rep.JSON()
	})
}

// TestVerifierCleanCorpusMatchesSerial closes the loop between the
// symbolic proof and the machine: every corpus program the verifier
// calls clean must also produce numerics identical to the serial
// reference on the message-passing simulator.  (A verifier that passed
// broken programs would be caught here; one that broke working
// programs is caught by TestCleanOnTestdata.)
func TestVerifierCleanCorpusMatchesSerial(t *testing.T) {
	cfg := mpsim.Config{
		SendOverhead: 1e-6, RecvOverhead: 1e-6,
		Latency: 10e-6, GapPerByte: 1e-8, FlopTime: 1e-8,
	}
	for name, src := range corpus(t) {
		t.Run(name, func(t *testing.T) {
			prog := compileSrc(t, src)
			rep := mustVerify(t, prog)
			if !rep.Clean() {
				t.Fatalf("corpus program not verifier-clean:\n%s", rep)
			}
			mcfg := cfg
			mcfg.Procs = prog.Grid.Size()
			res, err := prog.Execute(mcfg)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := spmd.RunSerial(parser.MustParse(src), nil)
			if err != nil {
				t.Fatal(err)
			}
			compared := 0
			for _, arr := range ref.Names() {
				want, _, _, err := ref.Array(arr)
				if err != nil {
					t.Fatal(err)
				}
				got, _, _, err := res.Global(arr)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("%s: %d elements vs serial %d", arr, len(got), len(want))
				}
				compared++
				for i := range want {
					if math.Abs(got[i]-want[i]) > 1e-10*math.Max(1, math.Abs(want[i])) {
						t.Fatalf("%s[%d] = %g, serial %g", arr, i, got[i], want[i])
					}
				}
			}
			if compared == 0 {
				t.Fatal("no arrays compared")
			}
		})
	}
}
