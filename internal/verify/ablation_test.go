package verify_test

import (
	"testing"

	"dhpf/internal/nas"
	"dhpf/internal/passes"
	"dhpf/internal/spmd"
)

// TestAblationMatrixVerifierSafe is the golden safety matrix: dropping
// any single optional pass still verifies clean on the whole corpus.
// The optional passes are optimizations — an ablation may cost
// communication volume or pipeline overlap (EXPERIMENTS.md quantifies
// that) but must never cost correctness, and this test is the proof
// that "merely slower" is the right column for every one of them.
func TestAblationMatrixVerifierSafe(t *testing.T) {
	for _, pass := range passes.OptionalPassNames() {
		if pass == passes.PassVerify {
			continue // disabling the verifier itself proves nothing
		}
		for name, src := range corpus(t) {
			t.Run(pass+"/"+name, func(t *testing.T) {
				opt := spmd.DefaultOptions()
				opt.Disable = []string{pass}
				prog, err := spmd.CompileSource(src, nil, opt)
				if err != nil {
					t.Fatalf("ablated compile failed: %v", err)
				}
				rep := mustVerify(t, prog)
				if !rep.Clean() {
					t.Fatalf("disabling %s makes %s unsafe:\n%s", pass, name, rep)
				}
			})
		}
	}
}

// TestNASVerifyClean: the three NAS benchmark programs compile and
// verify clean under DefaultOptions at a small problem size — the
// acceptance criterion tying the verifier to the paper's codes.
func TestNASVerifyClean(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"sp", nas.SPSource(12, 1, 2, 2)},
		{"bt", nas.BTSource(12, 1, 2, 2)},
		{"lu", nas.LUSource(12, 1, 2, 2)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			prog := compileSrc(t, c.src)
			rep := mustVerify(t, prog)
			if !rep.Clean() {
				t.Fatalf("%s not clean:\n%s", c.name, rep)
			}
			if rep.Stmts == 0 || rep.Events == 0 {
				t.Fatalf("%s: empty proof (%d stmts, %d events)", c.name, rep.Stmts, rep.Events)
			}
		})
	}
}
