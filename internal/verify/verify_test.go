package verify_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dhpf/internal/spmd"
	"dhpf/internal/verify"
)

// compileFile compiles a testdata program with default options.
func compileFile(t *testing.T, name string) *spmd.Program {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return compileSrc(t, string(src))
}

func compileSrc(t *testing.T, src string) *spmd.Program {
	t.Helper()
	prog, err := spmd.CompileSource(src, nil, spmd.DefaultOptions())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

func mustVerify(t *testing.T, prog *spmd.Program) *verify.Report {
	t.Helper()
	rep, err := prog.Verify()
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	return rep
}

// findDiag returns the first diagnostic of the given check and severity
// whose Why contains the substring.
func findDiag(rep *verify.Report, check string, sev verify.Severity, substr string) (verify.Diagnostic, bool) {
	for _, d := range rep.Diagnostics {
		if d.Check == check && d.Severity == sev && strings.Contains(d.Why, substr) {
			return d, true
		}
	}
	return verify.Diagnostic{}, false
}

// TestCleanOnTestdata: every shipped corpus program verifies clean under
// DefaultOptions — the baseline for all corruption tests.
func TestCleanOnTestdata(t *testing.T) {
	for _, name := range []string{"stencil.hpf", "ysolve.hpf", "lhsy.hpf"} {
		t.Run(name, func(t *testing.T) {
			prog := compileFile(t, name)
			rep := mustVerify(t, prog)
			if !rep.Clean() {
				t.Fatalf("%s not clean:\n%s", name, rep)
			}
			if rep.Stmts == 0 {
				t.Fatal("no statements checked")
			}
		})
	}
}

// TestEliminationReproofs: the verifier independently re-derives the
// availability and redundancy proofs behind every eliminated event and
// records them as INFO diagnostics naming the covering statement.
func TestEliminationReproofs(t *testing.T) {
	ysolve := mustVerify(t, compileFile(t, "ysolve.hpf"))
	if _, ok := findDiag(ysolve, verify.CheckComm, verify.Info, "produced the non-local values locally with stmt"); !ok {
		t.Errorf("ysolve: no availability re-proof INFO:\n%s", ysolve)
	}
	lhsy := mustVerify(t, compileFile(t, "lhsy.hpf"))
	if _, ok := findDiag(lhsy, verify.CheckWriteback, verify.Info, "owner computes the identical elements"); !ok {
		t.Errorf("lhsy: no redundancy re-proof INFO:\n%s", lhsy)
	}
	if _, ok := findDiag(lhsy, verify.CheckComm, verify.Info, "produced the non-local values locally"); !ok {
		t.Errorf("lhsy: no availability re-proof INFO:\n%s", lhsy)
	}
}

// TestPrivatizeBailoutSurfaced: a NEW directive whose array is read
// before it is written inside the loop produces an INFO diagnostic with
// the linter's reason, instead of silent conservatism.
func TestPrivatizeBailoutSurfaced(t *testing.T) {
	src := `
program badnew
param N = 64
param P = 4
!hpf$ processors procs(P)
!hpf$ template tm(N, N)
!hpf$ template tline(N)
!hpf$ align lhs with tm(d0, d1)
!hpf$ align cv with tline(d0)
!hpf$ distribute tm(*, BLOCK) onto procs
!hpf$ distribute tline(BLOCK) onto procs

subroutine main()
  real lhs(0:N-1, 0:N-1)
  real cv(0:N-1)
  do j = 0, N-1
    do i = 0, N-1
      lhs(i,j) = 0.0
    enddo
  enddo
  do j = 0, N-1
    cv(j) = 0.3*j
  enddo
  !hpf$ independent, new(cv)
  do i = 1, N-2
    do j = 1, N-2
      lhs(i,j) = lhs(i,j) + cv(j-1)
    enddo
    do j = 0, N-1
      cv(j) = 0.1*j + 0.01*i
    enddo
  enddo
end
`
	rep := mustVerify(t, compileSrc(t, src))
	d, ok := findDiag(rep, verify.CheckPrivatize, verify.Info, "NEW(cv)")
	if !ok {
		t.Fatalf("no privatize INFO diagnostic:\n%s", rep)
	}
	if !strings.Contains(d.Why, "written earlier in the iteration") {
		t.Errorf("bail-out reason missing from diagnostic: %s", d)
	}
	// The valid NEW program stays silent.
	clean := mustVerify(t, compileFile(t, "lhsy.hpf"))
	if _, ok := findDiag(clean, verify.CheckPrivatize, verify.Info, "NEW"); ok {
		t.Errorf("lhsy's valid NEW flagged:\n%s", clean)
	}
}

// TestReportRendering: the human and JSON renderings carry the verdict
// and the diagnostics.
func TestReportRendering(t *testing.T) {
	rep := mustVerify(t, compileFile(t, "ysolve.hpf"))
	s := rep.String()
	if !strings.Contains(s, "verify: clean") {
		t.Errorf("missing verdict in %q", s)
	}
	j := rep.JSON()
	if !strings.Contains(j, `"diagnostics"`) || !strings.Contains(j, `"stmts"`) {
		t.Errorf("JSON missing fields: %s", j)
	}
}
