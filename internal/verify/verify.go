// Package verify is dhpf's translation-validation layer: an integer-set
// static analysis that independently proves a compiled program's
// communication plan safe, instead of trusting that CP selection (§2,
// §4–§6), availability analysis (§7) and write-back elimination were each
// "safe by construction".  Four theorems are checked symbolically with
// iset set algebra over the *same* inputs the compiler used (distribution,
// CP selection, dependence analysis re-run from scratch) but none of its
// intermediate conclusions:
//
//  1. coverage — every assignment's full iteration space equals the union
//     of the per-rank ON_HOME iteration sets (no lost iterations), and
//     non-idempotent writes (reductions, self-accumulating updates) are
//     not replicated across ranks unless a redundancy proof covers them;
//  2. communication completeness — every reference touching data its
//     executing rank does not own is covered by a live read event, or by
//     an availability proof (re-derived here, not read off the event's
//     Eliminated reason) naming the earlier statement that produced the
//     values locally;
//  3. writeback soundness — every non-owner write reaches its owner via a
//     live write-back event or a re-derived proof that the owner computes
//     the identical elements itself;
//  4. pipeline legality — every live event sits at least as deep as the
//     dependences it must respect, and events whose placement loop
//     carries a processor-crossing flow dependence are marked Pipelined
//     with a consistent CarriedBy loop.
//
// Under the shared-memory backends (Input.Backend "shm" or "hybrid") a
// fifth theorem class activates:
//
//  5. race freedom — communication completeness no longer protects
//     writes (there are no messages to serialize duplicate deliveries),
//     so within one barrier phase no two ranks may write the same
//     element of a distributed array unless a redundancy proof shows
//     every replicated instance computes the identical value, and
//     privatized (NEW/LOCALIZE) arrays must actually be thread-private.
//
// A further, informational check surfaces the privatization linter's
// conservative bail-outs (dep.NewBailouts): why a NEW/LOCALIZE directive
// could not be validated.
//
// The verifier deliberately re-implements the comm package's placement
// and elimination mathematics rather than importing its conclusions, so a
// bug (or a deliberately corrupted event list — see the corruption tests)
// in any checked pass produces a diagnostic instead of being vacuously
// trusted.
package verify

import (
	"encoding/json"
	"fmt"
	"strings"

	"dhpf/internal/comm"
	"dhpf/internal/cp"
	"dhpf/internal/ir"
)

// Severity grades a diagnostic.  Errors mean the compiled program can
// lose or corrupt values; warnings mean an inconsistency that does not
// provably break the program; infos record successful proofs and
// conservative bail-outs worth seeing in a lint run.
type Severity string

const (
	Info    Severity = "info"
	Warning Severity = "warning"
	Error   Severity = "error"
)

// Check names, one per theorem (plus the privatization linter surface).
const (
	CheckCoverage  = "coverage"
	CheckComm      = "comm"
	CheckWriteback = "writeback"
	CheckPipeline  = "pipeline"
	CheckPrivatize = "privatize"
	CheckRace      = "race"
)

// Diagnostic is one finding: which theorem, how bad, where, and the
// offending (or witnessing) set.  The JSON tags are the shared
// diagnostic schema every surface emits — the verifier (-lint) and the
// static analyzer (-analyze) render findings identically: code,
// severity, proc, stmt, message (plus the optional ref/set witness).
type Diagnostic struct {
	Check    string   `json:"code"`
	Severity Severity `json:"severity"`
	Proc     string   `json:"proc"`
	Stmt     int      `json:"stmt"`          // statement ID; -1 when not statement-scoped
	Ref      string   `json:"ref,omitempty"` // rendered array reference
	Set      string   `json:"set,omitempty"` // rendered iset witness
	Why      string   `json:"message"`
}

func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s [%s] %s", strings.ToUpper(string(d.Severity)), d.Check, d.Proc)
	if d.Stmt >= 0 {
		s += fmt.Sprintf(" stmt %d", d.Stmt)
	}
	if d.Ref != "" {
		s += " " + d.Ref
	}
	s += ": " + d.Why
	if d.Set != "" {
		s += " [set " + d.Set + "]"
	}
	return s
}

// Report is the outcome of one verification run.
type Report struct {
	Diagnostics []Diagnostic `json:"diagnostics"`
	Stmts       int          `json:"stmts"`  // assignments checked
	Events      int          `json:"events"` // communication events checked
	Ranks       int          `json:"ranks"`
}

// Clean reports whether no error-severity diagnostic was produced.
// Warnings and infos do not make a program unsafe.
func (r *Report) Clean() bool {
	for _, d := range r.Diagnostics {
		if d.Severity == Error {
			return false
		}
	}
	return true
}

// Errors returns the error-severity diagnostics.
func (r *Report) Errors() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if d.Severity == Error {
			out = append(out, d)
		}
	}
	return out
}

// Counts tallies the diagnostics by severity.
func (r *Report) Counts() (errors, warnings, infos int) {
	for _, d := range r.Diagnostics {
		switch d.Severity {
		case Error:
			errors++
		case Warning:
			warnings++
		default:
			infos++
		}
	}
	return
}

// Summary is the one-line verdict.
func (r *Report) Summary() string {
	e, w, i := r.Counts()
	verdict := "UNSAFE"
	if r.Clean() {
		verdict = "clean"
	}
	return fmt.Sprintf("verify: %s — %d stmts, %d events, %d ranks checked: %d errors, %d warnings, %d infos",
		verdict, r.Stmts, r.Events, r.Ranks, e, w, i)
}

// String renders the full human-readable report.
func (r *Report) String() string {
	var b strings.Builder
	b.WriteString(r.Summary())
	b.WriteByte('\n')
	for _, d := range r.Diagnostics {
		b.WriteString("  " + d.String() + "\n")
	}
	return b.String()
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() string {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Sprintf(`{"error":%q}`, err)
	}
	return string(out)
}

// Input is everything the verifier needs, mirroring the back half of a
// passes.CompileContext.  It is a distinct struct (rather than taking the
// CompileContext itself) so the passes package can layer a verify pass on
// top without an import cycle.
type Input struct {
	IR   *ir.Program
	Ctx  *cp.Context
	Sel  *cp.Selection
	Comm map[string]*comm.Analysis
	// Reductions holds the statement IDs of recognized parallel
	// reductions: per-rank partial accumulations that a collective
	// combine finalizes, so their per-rank iteration sets must be
	// pairwise disjoint (otherwise contributions double-count).
	Reductions map[int]bool
	// Backend is the canonical execution backend name (passes.Backend*).
	// Under the shared-memory backends ("shm", "hybrid") a sixth theorem
	// class activates: race freedom — per-rank write sets on distributed
	// arrays must be pairwise disjoint within a barrier phase, replacing
	// the message model's implicit serialization of duplicate deliveries.
	Backend string
}

// Run verifies a compiled program and returns the report.  The error is
// non-nil only for malformed input (missing analyses, no grid) — safety
// findings are diagnostics, not errors.  It is the merge, in procedure
// order, of one RunProc fragment per procedure; the incremental compiler
// exploits exactly this decomposition to verify only dirty procedures and
// thaw the rest.
func Run(in Input) (*Report, error) {
	if in.IR == nil || in.Ctx == nil || in.Sel == nil || in.Comm == nil {
		return nil, fmt.Errorf("verify: incomplete input (need IR, Ctx, Sel, Comm)")
	}
	rep := &Report{}
	for _, proc := range in.IR.Procs {
		frag, err := RunProc(in, proc)
		if err != nil {
			return nil, err
		}
		Merge(rep, frag)
	}
	return rep, nil
}

// RunProc verifies a single procedure and returns its report fragment:
// the procedure's diagnostics, its statement and event counts, and the
// grid's rank count.  Fragments for independent procedures can be
// computed in parallel and merged with Merge; the merged result is
// identical to Run.
func RunProc(in Input, proc *ir.Procedure) (*Report, error) {
	if in.IR == nil || in.Ctx == nil || in.Sel == nil || in.Comm == nil {
		return nil, fmt.Errorf("verify: incomplete input (need IR, Ctx, Sel, Comm)")
	}
	grid, err := in.Ctx.Grid()
	if err != nil {
		return nil, fmt.Errorf("verify: %w", err)
	}
	a := in.Comm[proc.Name]
	if a == nil {
		return nil, fmt.Errorf("verify: no communication analysis for proc %s", proc.Name)
	}
	rep := &Report{Ranks: grid.Size()}
	c := newChecker(in, proc, a, grid, rep)
	c.run()
	return rep, nil
}

// Merge folds a per-procedure fragment into an accumulating report:
// diagnostics append in order, counts sum, and the rank count (identical
// across fragments) carries over.
func Merge(into *Report, frag *Report) {
	into.Diagnostics = append(into.Diagnostics, frag.Diagnostics...)
	into.Stmts += frag.Stmts
	into.Events += frag.Events
	into.Ranks = frag.Ranks
}
