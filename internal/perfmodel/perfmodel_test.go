package perfmodel

import (
	"math"
	"strings"
	"testing"

	"dhpf/internal/mpsim"
	"dhpf/internal/nas"
)

func in(bench string, n, steps, procs int) Input {
	return Input{Bench: bench, N: n, Steps: steps, Procs: procs,
		Cfg: mpsim.SP2Config(procs), PipelineGrain: 8}
}

func TestModelScalesDown(t *testing.T) {
	// More processors ⇒ less time, for every strategy (in the scaling
	// regime the paper covers).
	for _, bench := range []string{"sp", "bt"} {
		prev := math.Inf(1)
		for _, p := range []int{4, 16} {
			v, err := PredictMultipart(in(bench, 64, 10, p))
			if err != nil {
				t.Fatal(err)
			}
			if v >= prev {
				t.Errorf("%s multipart did not scale: %g at %d procs", bench, v, p)
			}
			prev = v
		}
		prev = math.Inf(1)
		for _, p := range []int{4, 16} {
			v, err := PredictDHPF(in(bench, 64, 10, p))
			if err != nil {
				t.Fatal(err)
			}
			if v >= prev {
				t.Errorf("%s dHPF did not scale: %g at %d procs", bench, v, p)
			}
			prev = v
		}
	}
}

func TestPaperShapeHolds(t *testing.T) {
	// The paper's headline shape at 25 processors, Class A:
	//   hand-written fastest; dHPF within 1.15× (BT) / 1.33× (SP)-ish;
	//   PGI slower than dHPF.
	for _, bench := range []string{"sp", "bt"} {
		h, err := PredictMultipart(in(bench, 64, 400, 25))
		if err != nil {
			t.Fatal(err)
		}
		d, err := PredictDHPF(in(bench, 64, 400, 25))
		if err != nil {
			t.Fatal(err)
		}
		g, err := PredictTranspose(in(bench, 64, 400, 25))
		if err != nil {
			t.Fatal(err)
		}
		if !(h < d) {
			t.Errorf("%s: hand %g not fastest (dHPF %g)", bench, h, d)
		}
		if !(d < g) {
			t.Errorf("%s: dHPF %g not faster than PGI %g", bench, d, g)
		}
		if d/h > 2.0 {
			t.Errorf("%s: dHPF/hand ratio %g too large (paper: ≤ ~1.5)", bench, d/h)
		}
	}
}

func TestBTCloserThanSP(t *testing.T) {
	// BT has ~5× more computation per communicated byte, so the dHPF gap
	// is smaller for BT than SP — the paper's 15% vs 33%.
	hs, _ := PredictMultipart(in("sp", 64, 400, 25))
	ds, _ := PredictDHPF(in("sp", 64, 400, 25))
	hb, _ := PredictMultipart(in("bt", 64, 400, 25))
	db, _ := PredictDHPF(in("bt", 64, 400, 25))
	gapSP := ds/hs - 1
	gapBT := db/hb - 1
	if gapBT >= gapSP {
		t.Errorf("BT gap %.3f not smaller than SP gap %.3f", gapBT, gapSP)
	}
}

func TestClassBScalesBetter(t *testing.T) {
	// Larger problems amortize communication: relative efficiency at 25
	// processors improves from Class A to Class B (paper §8.1).
	effAt := func(class nas.Class) float64 {
		h, _ := PredictMultipart(Input{Bench: "sp", N: class.N, Steps: 1, Procs: 25, Cfg: mpsim.SP2Config(25), PipelineGrain: 8})
		d, _ := PredictDHPF(Input{Bench: "sp", N: class.N, Steps: 1, Procs: 25, Cfg: mpsim.SP2Config(25), PipelineGrain: 8})
		return h / d
	}
	effA := effAt(nas.ClassA)
	effB := effAt(nas.ClassB)
	if effB <= effA {
		t.Errorf("efficiency did not improve with class size: A=%.3f B=%.3f", effA, effB)
	}
}

func TestEfficiencyDeclinesWithScale(t *testing.T) {
	// Both HPF variants lose efficiency as ranks grow for a fixed size.
	eff := func(p int) float64 {
		h, _ := PredictMultipart(in("sp", 64, 1, p))
		d, _ := PredictDHPF(in("sp", 64, 1, p))
		return h / d
	}
	if !(eff(25) < eff(4)) {
		t.Errorf("dHPF efficiency did not decline: eff(4)=%.3f eff(25)=%.3f", eff(4), eff(25))
	}
}

func TestBuildTableConventions(t *testing.T) {
	tb, err := BuildTable("sp", nas.ClassA, PaperProcs["sp"], 4, mpsim.SP2Config(1), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != len(PaperProcs["sp"]) {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		switch r.Procs {
		case 2, 8, 32:
			if !math.IsNaN(r.Hand) {
				t.Errorf("hand time at non-square %d should be NaN", r.Procs)
			}
		case 4:
			// By convention S.hand(4) = 4.
			if math.Abs(r.SpHand-4) > 1e-9 {
				t.Errorf("S.hand(4) = %g", r.SpHand)
			}
			if r.EffDHPF <= 0 || r.EffDHPF > 1.2 {
				t.Errorf("E.dHPF(4) = %g", r.EffDHPF)
			}
		case 25:
			if !(r.EffDHPF > r.EffPGI) {
				t.Errorf("at 25 procs dHPF efficiency %g not above PGI %g", r.EffDHPF, r.EffPGI)
			}
		}
	}
	out := tb.Render()
	for _, want := range []string{"Class A", "S.dHPF", "E.PGI"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestPipelineGrainTradeoff(t *testing.T) {
	// Too-fine grain pays message overheads; too-coarse pays fill time.
	// An intermediate grain must beat at least one extreme (the paper's
	// observation that a single global granularity is suboptimal).
	at := func(g int) float64 {
		v, _ := PredictDHPF(Input{Bench: "sp", N: 64, Steps: 1, Procs: 16, Cfg: mpsim.SP2Config(16), PipelineGrain: g})
		return v
	}
	mid := at(8)
	if !(mid < at(1) || mid < at(62)) {
		t.Errorf("grain 8 (%g) worse than both grain 1 (%g) and grain 62 (%g)", mid, at(1), at(62))
	}
}

func TestBuildTableBTClassBConvention(t *testing.T) {
	// The paper's BT Class B speedups are relative to the 16-processor
	// hand-written run; BuildTable must honor an arbitrary base.
	tb, err := BuildTable("bt", nas.ClassB, []int{16, 25}, 16, mpsim.SP2Config(1), 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tb.Rows {
		if r.Procs == 16 && mathAbs(r.SpHand-16) > 1e-9 {
			t.Errorf("S.hand(16) = %g, want 16 by convention", r.SpHand)
		}
	}
}

func mathAbs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestExplicitGridShape(t *testing.T) {
	// Default shape = nas.GridShape's most-square factorization.
	base := in("sp", 64, 1, 16)
	def, err := PredictDHPF(base)
	if err != nil {
		t.Fatal(err)
	}
	sq := base
	sq.P1, sq.P2 = 4, 4
	v, err := PredictDHPF(sq)
	if err != nil {
		t.Fatal(err)
	}
	if v != def {
		t.Errorf("explicit 4x4 (%g) differs from default shape (%g)", v, def)
	}
	// Shape is a real model input: a skewed grid changes the projection.
	skew := base
	skew.P1, skew.P2 = 2, 8
	s, err := PredictDHPF(skew)
	if err != nil {
		t.Fatal(err)
	}
	if s == def {
		t.Error("2x8 grid predicted identical to 4x4 — shape ignored")
	}
	// Invalid tilings are rejected.
	bad := base
	bad.P1, bad.P2 = 3, 4
	if _, err := PredictDHPF(bad); err == nil {
		t.Error("3x4 grid over 16 procs accepted")
	}
}
