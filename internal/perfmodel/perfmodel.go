// Package perfmodel analytically projects per-timestep execution times
// of the three SP/BT parallelizations — hand-MPI multipartitioning, dhpf
// block distribution with coarse-grain pipelining, and PGI-style 1-D
// block with transposes — onto the paper's Class A/B problem sizes and
// 2–32 processors.
//
// Directly simulating Class A/B (64³/102³ × 400 steps × up to 32 ranks)
// through the interpreting executor is infeasible on a laptop, so the
// reproduction follows a two-level protocol: the simulator *measures*
// all three implementations at reduced sizes (validating the model's
// shape), and this model — a LogGP-style composition of the same flop
// weights and message volumes the simulator charges — *extrapolates* the
// paper's table sizes.  The model's terms mirror the phase structure
// exactly: face exchanges, partially-replicated reciprocals, pipelined
// wavefronts with fill time, and full transposes.
package perfmodel

import (
	"fmt"
	"math"

	"dhpf/internal/mpsim"
	"dhpf/internal/nas"
	"dhpf/internal/shm"
)

// Input describes one projection.
type Input struct {
	Bench string // "sp" or "bt"
	N     int    // grid points per dimension
	Steps int
	Procs int
	Cfg   mpsim.Config // cost model (Procs field ignored)
	// PipelineGrain is the dhpf coarse-grain pipelining strip width.
	PipelineGrain int
	// P1, P2 fix the dhpf processor-grid shape explicitly (P1·P2 must
	// equal Procs); both zero means the default most-square
	// nas.GridShape factorization.  The auto-tuner sets these to score
	// each grid-shape candidate separately.
	P1, P2 int
}

// gridShape resolves the dhpf processor grid of the projection.
func (in Input) gridShape() (p1, p2 int, err error) {
	if in.P1 == 0 && in.P2 == 0 {
		p1, p2 = nas.GridShape(in.Procs)
		return p1, p2, nil
	}
	if in.P1 <= 0 || in.P2 <= 0 || in.P1*in.P2 != in.Procs {
		return 0, 0, fmt.Errorf("perfmodel: grid %dx%d does not tile %d procs", in.P1, in.P2, in.Procs)
	}
	return in.P1, in.P2, nil
}

func (in Input) comp() float64 {
	// Both benchmarks carry NCOMP solution components; they differ in the
	// per-component work (BT's block coupling), which the flop weights
	// already encode.
	return nas.NCOMP
}

// msg returns the end-to-end time of one message of b bytes: per-side
// overheads, wire latency, and the payload paid on both ends (the wire
// transfer plus the pack/unpack copies both the simulator's executor and
// real codes perform).
func msg(cfg mpsim.Config, bytes float64) float64 {
	return cfg.SendOverhead + cfg.RecvOverhead + cfg.Latency + 2*bytes*cfg.GapPerByte
}

// xferCosts prices one grid dimension's boundary exchanges on a given
// substrate: full is the end-to-end time of one coalesced transfer,
// strip the steady-state per-strip overhead of a pipelined sweep.
type xferCosts struct {
	full  func(bytes float64) float64
	strip func(bytes float64) float64
}

// msgCosts is the message substrate: LogGP messages with pack/unpack
// copies on both ends (exactly what PredictDHPF always charged).
func msgCosts(cfg mpsim.Config) xferCosts {
	return xferCosts{
		full:  func(b float64) float64 { return msg(cfg, b) },
		strip: func(b float64) float64 { return cfg.SendOverhead + cfg.RecvOverhead + b*cfg.GapPerByte },
	}
}

// pullCosts is the shared-memory substrate: a transfer is a rendezvous
// (one barrier-scale handshake) plus a single direct copy through the
// memory system — no per-side overheads, no wire latency, no second
// pack/unpack copy.  The constants are the same MemSpeedup/SyncSpeedup
// the shm simulator derives its Config from, so predicted and simulated
// shm times share one cost model.
func pullCosts(cfg mpsim.Config) xferCosts {
	memGap := cfg.GapPerByte / shm.MemSpeedup
	sync := cfg.Latency / shm.SyncSpeedup
	return xferCosts{
		full:  func(b float64) float64 { return sync + b*memGap },
		strip: func(b float64) float64 { return b * memGap },
	}
}

// baseFlops returns the total flops of one time step (all ranks), split
// into the perfectly-parallel portion and the per-sweep pivot work.
func baseFlops(in Input) (parallel float64, sweepPivots float64, w nas.FlopWeights) {
	w, err := nas.WeightsFor(in.Bench)
	if err != nil {
		panic(err)
	}
	n := float64(in.N)
	mult := in.comp()
	interior := math.Pow(n-4, 3)
	parallel = w.Rho*n*n*n + w.Stencil*interior*mult + w.Add*interior
	if in.Bench == "sp" {
		parallel += (w.Cv + w.Spd) * n * (n - 2) * n
	} else {
		parallel += 3 * math.Pow(n-2, 3) * w.Jac * mult * mult
	}
	// One sweep's pivot count: (n-4) pivots over an (n-2)×(n-blk…) ≈
	// (n-2)² line footprint; forward and backward have equal counts.
	sweepPivots = (n - 4) * (n - 2) * (n - 2)
	return parallel, sweepPivots, w
}

// PredictMultipart models the hand-MPI multipartitioning time per step.
func PredictMultipart(in Input) (float64, error) {
	q := int(math.Round(math.Sqrt(float64(in.Procs))))
	if q*q != in.Procs {
		return 0, fmt.Errorf("perfmodel: multipartitioning needs square procs, got %d", in.Procs)
	}
	par, pivots, w := baseFlops(in)
	cfg := in.Cfg
	n := float64(in.N)
	cell := n / float64(q)
	mult := in.comp()

	t := par / float64(in.Procs) * cfg.FlopTime

	// copy_faces: 6 coalesced messages of Q cells × 2 faces each.
	faceBytes := float64(q) * 2 * cell * cell * 8
	t += 6 * msg(cfg, faceBytes)

	// Per direction, each line *system* runs a forward and a backward
	// sweep: each rank computes its q cells (its 1/P share of the
	// pivots) and q−1 stage handoffs of 2 pivot planes ((c+1) values
	// forward, c values backward) add latency on the critical path.
	perPivotPts := pivots / float64(in.Procs)
	for dim := 0; dim < 3; dim++ {
		for _, sys := range nas.SweepSystems(in.Bench) {
			c := float64(sys.Comps())
			t += perPivotPts*c*w.Fwd*cfg.FlopTime + float64(q-1)*msg(cfg, 2*cell*cell*(c+1)*8)
			t += perPivotPts*c*w.Bwd*cfg.FlopTime + float64(q-1)*msg(cfg, 2*cell*cell*c*8)
		}
	}
	_ = mult
	return t * float64(in.Steps), nil
}

// PredictDHPF models the dhpf-compiled block-distributed code: a p1×p2
// grid over (y,z), LOCALIZE'd reciprocals (replicated boundary compute,
// u halo fetches), local x sweeps, and coarse-grain pipelined y/z sweeps
// whose fill time grows with the processor count — the effect that drags
// the paper's Figure 8.2 efficiency at 25 processors.
func PredictDHPF(in Input) (float64, error) {
	c := msgCosts(in.Cfg)
	return predictBlocked(in, c, c)
}

// PredictShm models the same compiled plans on the shared-memory team:
// every boundary exchange is a rendezvous pull through the memory
// system.  Compute, pipeline fill structure, and replicated shells are
// identical to PredictDHPF — the backends differ only in what a
// transfer costs, which is exactly how the executors differ too.
func PredictShm(in Input) (float64, error) {
	c := pullCosts(in.Cfg)
	return predictBlocked(in, c, c)
}

// PredictHybrid models the hierarchical layout: ranks across grid
// dimension 0 exchange messages, threads within a rank share memory.
// Dimension-0 boundary exchanges (the p1-wise sweeps and halos) pay
// message costs; dimension-1 exchanges are intra-group pulls.
func PredictHybrid(in Input) (float64, error) {
	return predictBlocked(in, msgCosts(in.Cfg), pullCosts(in.Cfg))
}

// predictBlocked is the shared body of the three dhpf-compiled
// projections; dim0/dim1 price the boundary exchanges that cross the
// first and second grid dimensions respectively.
func predictBlocked(in Input, dim0, dim1 xferCosts) (float64, error) {
	p1, p2, err := in.gridShape()
	if err != nil {
		return 0, err
	}
	par, pivots, w := baseFlops(in)
	cfg := in.Cfg
	n := float64(in.N)
	mult := in.comp()
	g := float64(in.PipelineGrain)
	if g <= 0 {
		g = 8
	}

	t := par / float64(in.Procs) * cfg.FlopTime

	// Replicated boundary computation for the LOCALIZE'd reciprocals:
	// each rank recomputes a one-deep shell around its block.
	shell := n * (2*n/float64(p1) + 2*n/float64(p2))
	t += shell * w.Rho * cfg.FlopTime

	// u halo fetches before compute_rhs: 2-deep planes from up to 4
	// neighbours, coalesced per neighbour.
	planeJ := 2 * n * (n / float64(p2)) * 8
	planeK := 2 * n * (n / float64(p1)) * 8
	if p1 > 1 {
		t += 2 * dim0.full(planeJ)
	}
	if p2 > 1 {
		t += 2 * dim1.full(planeK)
	}

	// x sweeps: local.  Every line system runs its own pair of sweeps.
	perPivotPts := pivots / float64(in.Procs)
	systems := nas.SweepSystems(in.Bench)
	for _, sys := range systems {
		t += perPivotPts * float64(sys.Comps()) * (w.Fwd + w.Bwd) * cfg.FlopTime
	}

	// y and z sweeps: each system's forward and backward sweeps form a
	// *separate pipeline* over the grid dimension (SP's two scalar
	// systems ⇒ four pipelines per direction, the structure of Figure
	// 8.2; BT's single block system ⇒ two).  Wall time per pipeline =
	// local compute + fill of (pDim−1) strip stages + per-strip message
	// overheads.
	sweepPair := func(pDim, pOther int, xc xferCosts) float64 {
		var tt float64
		for _, sys := range systems {
			c := float64(sys.Comps())
			if pDim == 1 {
				tt += perPivotPts * c * (w.Fwd + w.Bwd) * cfg.FlopTime
				continue
			}
			strips := math.Ceil((n - 2) / g)
			stripPivots := (n - 4) / float64(pDim) * g * (n - 2) / float64(pOther)
			stripBytes := 2 * g * (n - 2) / float64(pOther) * c * 8
			for _, wgt := range []float64{w.Fwd, w.Bwd} {
				stripT := stripPivots * wgt * c * cfg.FlopTime
				local := perPivotPts * c * wgt * cfg.FlopTime
				fill := float64(pDim-1) * (stripT + xc.full(stripBytes))
				overhead := strips * xc.strip(stripBytes)
				tt += local + fill + overhead
				// Boundary-row prefetch before the sweep (the §7
				// residual read that is hoisted out of the nest).
				tt += xc.full(2 * (n - 2) / float64(pOther) * (n - 2) * c * 8)
			}
		}
		return tt
	}
	t += sweepPair(p1, p2, dim0) // y
	t += sweepPair(p2, p1, dim1) // z
	_ = mult
	return t * float64(in.Steps), nil
}

// PredictTranspose models the PGI-style code: 1-D z distribution, local
// x/y sweeps, and two full transposes around the z solve.
func PredictTranspose(in Input) (float64, error) {
	p := in.Procs
	par, pivots, w := baseFlops(in)
	cfg := in.Cfg
	n := float64(in.N)
	mult := in.comp()

	// 1-D BLOCK over z: ceil-sized slabs leave the last rank short and
	// every other rank waiting — the dominant load imbalance of the
	// PGI strategy at the paper's processor counts (e.g. ⌈64/25⌉ = 3
	// planes vs a mean of 2.56).
	blk := math.Ceil(n / float64(p))
	imb := blk * float64(p) / n
	t := par / float64(p) * cfg.FlopTime * imb
	// Reciprocal shell (1-deep, z only).
	t += 2 * n * n * w.Rho * cfg.FlopTime
	// u halo (2 planes per neighbour).
	if p > 1 {
		t += 2 * msg(cfg, 2*n*n*8)
	}
	// All six sweeps compute locally (with the same slab imbalance).
	perPivotPts := pivots / float64(p)
	for _, sys := range nas.SweepSystems(in.Bench) {
		t += 3 * perPivotPts * float64(sys.Comps()) * (w.Fwd + w.Bwd) * cfg.FlopTime * imb
	}
	// Two transposes: forward ships u(+spd)+r, back ships r.  Each is an
	// all-to-all of (P−1) messages of n³/P² points per array.
	arrays := mult + 2 // u, spd, r components (SP); u + r components (BT)
	if in.Bench == "bt" {
		arrays = mult + 1
	}
	blockBytes := n * n / float64(p) * n / float64(p) * 8
	fwd := float64(p-1) * msg(cfg, blockBytes*arrays)
	back := float64(p-1) * msg(cfg, blockBytes*mult)
	t += fwd + back
	return t * float64(in.Steps), nil
}
