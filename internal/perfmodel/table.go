package perfmodel

import (
	"fmt"
	"math"
	"strings"

	"dhpf/internal/mpsim"
	"dhpf/internal/nas"
)

// Row is one processor count of a Table 8.1/8.2-style comparison.
type Row struct {
	Procs           int
	Hand, DHPF, PGI float64 // execution time (s); NaN = not applicable
	SpHand, SpDHPF  float64 // relative speedups (paper's convention)
	SpPGI           float64
	EffDHPF, EffPGI float64 // relative efficiency vs hand-written
}

// Table is the full comparison for one benchmark and class.
type Table struct {
	Bench     string
	Class     nas.Class
	BaseProcs int // the hand-written run assumed to have perfect speedup
	Rows      []Row
}

// PaperProcs are the processor counts of the paper's tables.
var PaperProcs = map[string][]int{
	"sp": {2, 4, 8, 9, 16, 25, 32},
	"bt": {4, 8, 9, 16, 25, 27, 32},
}

// BuildTable projects the three implementations across processor counts,
// following the paper's metric conventions: speedups are relative to the
// baseProcs hand-written run (assumed perfect), and relative efficiency
// compares each HPF code's speedup with the hand-written speedup at the
// same count.
func BuildTable(bench string, class nas.Class, procs []int, baseProcs int, cfg mpsim.Config, grain int) (*Table, error) {
	t := &Table{Bench: bench, Class: class, BaseProcs: baseProcs}
	mk := func(p int) Input {
		return Input{Bench: bench, N: class.N, Steps: class.Steps, Procs: p, Cfg: cfg, PipelineGrain: grain}
	}
	baseHand, err := PredictMultipart(mk(baseProcs))
	if err != nil {
		return nil, fmt.Errorf("perfmodel: base count %d: %w", baseProcs, err)
	}
	perfect := float64(baseProcs) * baseHand

	for _, p := range procs {
		r := Row{Procs: p, Hand: math.NaN(), DHPF: math.NaN(), PGI: math.NaN()}
		if h, err := PredictMultipart(mk(p)); err == nil {
			r.Hand = h
			r.SpHand = perfect / (float64(1) * h) / float64(1)
			r.SpHand = perfect / h / 1 // S(p) = baseProcs*T(base)/T(p)
		}
		if d, err := PredictDHPF(mk(p)); err == nil {
			r.DHPF = d
			r.SpDHPF = perfect / d
		}
		if g, err := PredictTranspose(mk(p)); err == nil {
			r.PGI = g
			r.SpPGI = perfect / g
		}
		if !math.IsNaN(r.Hand) {
			if !math.IsNaN(r.DHPF) {
				r.EffDHPF = r.SpDHPF / r.SpHand
			}
			if !math.IsNaN(r.PGI) {
				r.EffPGI = r.SpPGI / r.SpHand
			}
		}
		t.Rows = append(t.Rows, r)
	}
	return t, nil
}

// Render prints the table in the paper's layout.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table: %s Class %s (N=%d, %d steps) — projected on the simulated SP2 cost model\n",
		strings.ToUpper(t.Bench), t.Class.Name, t.Class.N, t.Class.Steps)
	fmt.Fprintf(&sb, "speedups relative to the %d-processor hand-written code (assumed perfect)\n", t.BaseProcs)
	fmt.Fprintf(&sb, "%6s | %10s %10s %10s | %7s %7s %7s | %7s %7s\n",
		"procs", "hand(s)", "dHPF(s)", "PGI(s)", "S.hand", "S.dHPF", "S.PGI", "E.dHPF", "E.PGI")
	fmt.Fprintf(&sb, "%s\n", strings.Repeat("-", 96))
	f := func(v float64) string {
		if math.IsNaN(v) || v == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f", v)
	}
	e := func(v float64) string {
		if math.IsNaN(v) || v == 0 {
			return "-"
		}
		return fmt.Sprintf("%.2f", v)
	}
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%6d | %10s %10s %10s | %7s %7s %7s | %7s %7s\n",
			r.Procs, f(r.Hand), f(r.DHPF), f(r.PGI),
			e(r.SpHand), e(r.SpDHPF), e(r.SpPGI), e(r.EffDHPF), e(r.EffPGI))
	}
	return sb.String()
}

// DefaultMachine is the SP2-like cost model the projections use.
func DefaultMachine() mpsim.Config { return mpsim.SP2Config(1) }
