// Package comm implements dhpf's communication analysis: it turns CP
// decisions into communication events (non-local reads and non-owner
// write-backs), vectorizes them to the outermost legal loop level,
// coalesces messages per processor pair, and applies the paper's §7
// data-availability analysis to delete non-local reads whose values the
// reading processor itself produced earlier.
package comm

import (
	"fmt"
	"sort"

	"dhpf/internal/cp"
	"dhpf/internal/dep"
	"dhpf/internal/hpf"
	"dhpf/internal/ir"
	"dhpf/internal/iset"
)

// Kind distinguishes the two communication directions of the dhpf model
// (§2): fetching non-local values read, and returning non-owner writes
// to the owner.
type Kind int

const (
	ReadComm Kind = iota
	WriteBack
)

func (k Kind) String() string {
	if k == ReadComm {
		return "read"
	}
	return "writeback"
}

// Event is one communication requirement attached to a statement.
type Event struct {
	Kind Kind
	Stmt *ir.Assign
	Ref  *ir.ArrayRef // the non-local reference (RHS ref or LHS)
	Nest []*ir.Loop   // enclosing loops, outermost first

	// Depth is the placement level: the event executes inside
	// Nest[0:Depth] and is vectorized across Nest[Depth:].  Depth 0 means
	// fully hoisted out of the nest.
	Depth int

	// Pipelined marks events that remain inside a loop carrying a
	// processor-crossing dependence: the wavefront case.  CarriedBy is
	// that loop.
	Pipelined bool
	CarriedBy *ir.Loop

	// Eliminated marks events removed by data-availability analysis,
	// with the reason recorded.
	Eliminated bool
	Reason     string
}

func (e *Event) String() string {
	s := fmt.Sprintf("%s comm for %v in stmt %d (depth %d", e.Kind, e.Ref, e.Stmt.ID, e.Depth)
	if e.Pipelined {
		s += fmt.Sprintf(", pipelined on %s", e.CarriedBy.Var)
	}
	if e.Eliminated {
		s += ", ELIMINATED: " + e.Reason
	}
	return s + ")"
}

// Analysis is the communication plan for one procedure.
type Analysis struct {
	Proc   *ir.Procedure
	Events []*Event
	Notes  []string

	// deps is the dependence analysis the events were built from (computed
	// on the post-distribution body), reused by the elimination phases.
	deps []*dep.Dependence
}

// Restore rebuilds an Analysis from previously-computed events and notes
// — the thaw path of incremental compilation.  The restored analysis has
// no dependence information, so the elimination phases (ApplyAvailability,
// ApplyWritebackElim) must not be run on it; a restored plan is already
// post-elimination by construction, since artifacts are frozen at the end
// of the communication passes.
func Restore(proc *ir.Procedure, events []*Event, notes []string) *Analysis {
	return &Analysis{Proc: proc, Events: events, Notes: notes}
}

// Live returns the events not eliminated by availability analysis.
func (a *Analysis) Live() []*Event {
	var out []*Event
	for _, e := range a.Events {
		if !e.Eliminated {
			out = append(out, e)
		}
	}
	return out
}

// Options controls the optional passes.
type Options struct {
	Availability bool // §7 data-availability elimination
	// RedundantWriteback eliminates write-backs of elements the owner
	// also computes itself with the same statement (partial replication:
	// the LOCALIZE/NEW CPs make the owner and its neighbours compute
	// identical boundary values, so no finalization message is needed —
	// §4.2's "no communication ... as part of the loop's finalization").
	RedundantWriteback bool
}

// DefaultOptions enables everything.
func DefaultOptions() Options { return Options{Availability: true, RedundantWriteback: true} }

// Analyze builds the communication plan for a procedure under the given
// CP selection.  It is the all-in-one convenience the pass pipeline
// decomposes into BuildEvents, ApplyAvailability and ApplyWritebackElim.
func Analyze(ctx *cp.Context, proc *ir.Procedure, sel *cp.Selection, opt Options) *Analysis {
	out := BuildEvents(ctx, proc, sel)
	if opt.Availability {
		ApplyAvailability(ctx, sel, out)
	}
	if opt.RedundantWriteback {
		ApplyWritebackElim(ctx, sel, out)
	}
	return out
}

// BuildEvents constructs the raw communication plan for a procedure:
// read and write-back events for every possibly-non-local reference,
// each vectorized to the outermost legal loop level and flagged when it
// must be pipelined.  Dependences are re-analyzed here because loop
// distribution may have changed the body; they are kept on the Analysis
// for the elimination phases.
func BuildEvents(ctx *cp.Context, proc *ir.Procedure, sel *cp.Selection) *Analysis {
	out := &Analysis{Proc: proc}
	deps := dep.Analyze(proc.Body)
	out.deps = deps

	asn := ir.Assignments(proc.Body)
	for _, a := range asn {
		stmtCP := sel.CPOf(a.Assign.ID)
		// Read events.
		for _, r := range ir.Refs(a.Assign.RHS) {
			if ctx.Layout(proc, r.Name) == nil || len(r.Subs) == 0 {
				continue
			}
			if !mayBeNonLocal(ctx, proc, a, r, stmtCP) {
				continue
			}
			e := &Event{Kind: ReadComm, Stmt: a.Assign, Ref: r, Nest: a.Nest}
			placeRead(e, deps)
			out.Events = append(out.Events, e)
		}
		// Write-back events.
		if ctx.Layout(proc, a.Assign.LHS.Name) != nil && len(a.Assign.LHS.Subs) > 0 {
			if mayBeNonLocal(ctx, proc, a, a.Assign.LHS, stmtCP) {
				e := &Event{Kind: WriteBack, Stmt: a.Assign, Ref: a.Assign.LHS, Nest: a.Nest}
				placeWrite(ctx, proc, sel, e, deps)
				out.Events = append(out.Events, e)
			}
		}
	}

	markPipelined(ctx, proc, out, deps)
	return out
}

// ApplyAvailability runs §7 data-availability elimination on a built
// plan (see applyAvailability).
func ApplyAvailability(ctx *cp.Context, sel *cp.Selection, a *Analysis) {
	applyAvailability(ctx, a.Proc, sel, a, a.deps)
}

// ApplyWritebackElim eliminates write-backs made redundant by partial
// replication (see applyWritebackRedundancy).
func ApplyWritebackElim(ctx *cp.Context, sel *cp.Selection, a *Analysis) {
	applyWritebackRedundancy(ctx, a.Proc, sel, a)
}

// applyWritebackRedundancy eliminates write-back events whose non-owner
// writes only cover elements the owner also computes itself via the same
// statement.  Since both ranks execute the identical statement instance
// on consistent inputs, the owner's copy is already up to date and the
// message is redundant.  This is what makes partially-replicated
// boundary computation (NEW/LOCALIZE CPs) communication-free.
func applyWritebackRedundancy(ctx *cp.Context, proc *ir.Procedure, sel *cp.Selection, a *Analysis) {
	grid, err := ctx.Grid()
	if err != nil {
		return
	}
	for _, e := range a.Events {
		if e.Kind != WriteBack || e.Eliminated {
			continue
		}
		layout := ctx.Layout(proc, e.Ref.Name)
		if layout == nil {
			continue
		}
		vars := ir.NestVars(e.Nest)
		c := sel.CPOf(e.Stmt.ID)
		// Precompute what each rank writes with this statement.
		written := make([]iset.Set, grid.Size())
		for r := 0; r < grid.Size(); r++ {
			iters := c.IterSet(e.Nest, ctx.Bind.Params, ctx.LocalOf(proc, r))
			written[r] = cp.RefDataSet(e.Ref, vars, iters, ctx.Bind.Params).IntersectBox(layout.Space())
		}
		ok := true
	check:
		for t := 0; t < grid.Size(); t++ {
			nl := written[t].SubtractBox(layout.LocalBox(t))
			if nl.IsEmpty() {
				continue
			}
			for o := 0; o < grid.Size(); o++ {
				if o == t {
					continue
				}
				piece := nl.IntersectBox(layout.LocalBox(o))
				if piece.IsEmpty() {
					continue
				}
				if !piece.SubsetOf(written[o]) {
					ok = false
					break check
				}
			}
		}
		if ok {
			e.Eliminated = true
			e.Reason = "owner computes the same elements (partial replication)"
			a.Notes = append(a.Notes, e.String())
		}
	}
}

// mayBeNonLocal checks whether, on any rank, the statement's iteration
// set touches data of the reference the rank does not own.
func mayBeNonLocal(ctx *cp.Context, proc *ir.Procedure, a ir.AssignInNest, r *ir.ArrayRef, c *cp.CP) bool {
	grid, err := ctx.Grid()
	if err != nil {
		return false
	}
	vars := ir.NestVars(a.Nest)
	for rank := 0; rank < grid.Size(); rank++ {
		iters := c.IterSet(a.Nest, ctx.Bind.Params, ctx.LocalOf(proc, rank))
		if iters.IsEmpty() {
			continue
		}
		if !ctx.NonLocalData(proc, r, vars, iters, rank).IsEmpty() {
			return true
		}
	}
	return false
}

// depDepth converts one dependence into a placement depth for an event
// in nest: a loop-independent dependence pins the communication inside
// every shared loop (the value moves within one iteration); a carried
// dependence pins it inside the carrying loop only — the value moves
// between iterations of that loop, so communication hoisted just inside
// it is still correct and maximally vectorized.
func depDepth(nest []*ir.Loop, d *dep.Dependence) int {
	shared := sharedDepth(nest, d.CommonNest)
	if d.LoopIndependent() {
		return shared
	}
	return min(shared, d.Level)
}

// placeRead computes the placement depth of a read event from the flow
// dependences reaching it (the value must exist before it is fetched).
// No reaching write ⇒ fully hoisted before the nest.
func placeRead(e *Event, deps []*dep.Dependence) {
	depth := 0
	for _, d := range deps {
		if d.Kind != dep.Flow || d.Dst != e.Stmt {
			continue
		}
		if d.DstRef == nil || !d.DstRef.Eq(e.Ref) {
			continue
		}
		depth = max(depth, depDepth(e.Nest, d))
	}
	e.Depth = depth
}

// placeWrite computes the placement depth of a write-back from the flow
// dependences leaving it: it must reach the owner before any consumer
// that is not guaranteed to run on the writing processor itself.  A
// consumer with the same data partition reached without crossing a
// distributed dimension reads the writer's own local copy (the §7
// availability situation), so it does not constrain the write-back.
// Without any constraining consumer the write-back is deferred past the
// nest.
func placeWrite(ctx *cp.Context, proc *ir.Procedure, sel *cp.Selection, e *Event, deps []*dep.Dependence) {
	depth := 0
	srcKey := cp.PartitionKey(ctx, proc, sel.CPOf(e.Stmt.ID))
	for _, d := range deps {
		if d.Kind != dep.Flow || d.Src != e.Stmt {
			continue
		}
		if d.SrcRef == nil || !d.SrcRef.Eq(e.Ref) {
			continue
		}
		if srcKey != "<replicated>" &&
			cp.PartitionKey(ctx, proc, sel.CPOf(d.Dst.ID)) == srcKey &&
			!depCrossesRanks(ctx, proc, d) {
			continue
		}
		depth = max(depth, depDepth(e.Nest, d))
	}
	e.Depth = depth
}

// depCrossesRanks reports whether a dependence can connect iterations
// assigned to different processors: loop-independent dependences between
// same-partition statements stay on one rank; carried dependences cross
// only when the carrying loop's variable indexes a distributed dimension
// of the reference.
func depCrossesRanks(ctx *cp.Context, proc *ir.Procedure, d *dep.Dependence) bool {
	if d.Level == 0 {
		return false
	}
	carrier := d.CommonNest[d.Level-1]
	return crossesPartition(ctx, proc, d, carrier)
}

// sharedDepth counts how many loops of nest form a prefix of common.
func sharedDepth(nest []*ir.Loop, common []*ir.Loop) int {
	n := 0
	for i := 0; i < len(nest) && i < len(common); i++ {
		if nest[i] != common[i] {
			break
		}
		n++
	}
	return n
}

// markPipelined flags events whose placement loop carries a
// processor-crossing flow dependence — the wavefront computations whose
// communication the code generator pipelines at coarse grain.
func markPipelined(ctx *cp.Context, proc *ir.Procedure, a *Analysis, deps []*dep.Dependence) {
	for _, e := range a.Events {
		if e.Depth == 0 || e.Depth > len(e.Nest) {
			continue
		}
		carrier := e.Nest[e.Depth-1]
		for _, d := range deps {
			if d.Kind != dep.Flow || !d.CarriedBy(carrier) {
				continue
			}
			if d.SrcRef.Name != e.Ref.Name {
				continue
			}
			if crossesPartition(ctx, proc, d, carrier) {
				e.Pipelined = true
				e.CarriedBy = carrier
				break
			}
		}
	}
}

// crossesPartition reports whether a dependence carried by loop l moves
// data across a distributed dimension boundary: the subscript position
// the loop variable indexes is BLOCK-distributed.
func crossesPartition(ctx *cp.Context, proc *ir.Procedure, d *dep.Dependence, l *ir.Loop) bool {
	layout := ctx.Layout(proc, d.SrcRef.Name)
	if layout == nil || len(d.SrcRef.Subs) != layout.Rank() {
		return false
	}
	for k, s := range d.SrcRef.Subs {
		if s.Var == l.Var && layout.Dims[k].Kind != hpf.Star {
			return true
		}
	}
	return false
}

// --- §7: data availability --------------------------------------------------

// applyAvailability eliminates read events whose non-local data is a
// subset of the non-local data the same processor produced with its last
// preceding write to the array (the value is already locally available).
// Only the *last* reaching write is considered because kill information
// is unavailable — exactly the paper's restriction.
func applyAvailability(ctx *cp.Context, proc *ir.Procedure, sel *cp.Selection, a *Analysis, deps []*dep.Dependence) {
	grid, err := ctx.Grid()
	if err != nil {
		return
	}
	// The write's iteration set needs its full loop nest, not just the
	// prefix shared with the read.
	nestOf := map[int][]*ir.Loop{}
	for _, ain := range ir.Assignments(proc.Body) {
		nestOf[ain.Assign.ID] = ain.Nest
	}
	for _, e := range a.Events {
		if e.Kind != ReadComm {
			continue
		}
		w := lastReachingWrite(e, deps)
		if w == nil {
			continue
		}
		ok := true
		for rank := 0; rank < grid.Size(); rank++ {
			readNL := nonLocalOf(ctx, proc, sel, e.Stmt, e.Nest, e.Ref, rank)
			if readNL.IsEmpty() {
				continue
			}
			writeNL := nonLocalOf(ctx, proc, sel, w.Src, nestOf[w.Src.ID], w.SrcRef, rank)
			if !readNL.SubsetOf(writeNL) {
				ok = false
				break
			}
		}
		if ok {
			e.Eliminated = true
			e.Reason = fmt.Sprintf("available locally: read ⊆ last non-local write of stmt %d", w.Src.ID)
			a.Notes = append(a.Notes, e.String())
		}
	}
}

// lastReachingWrite picks the flow dependence into the event's reference
// whose source executes *last* before the read.  Recency is compared
// lexicographically over the read's loop nest, outermost first: at each
// level the write is either in the same iteration (distance 0, most
// recent), a positive number of iterations back, or — oldest — outside
// the loop entirely (it ran before the loop started in the current outer
// iteration).  Ties break toward the textually later statement.
func lastReachingWrite(e *Event, deps []*dep.Dependence) *dep.Dependence {
	var best *dep.Dependence
	var bestKey []float64
	for _, d := range deps {
		if d.Kind != dep.Flow || d.Dst != e.Stmt {
			continue
		}
		if d.DstRef == nil || !d.DstRef.Eq(e.Ref) {
			continue
		}
		key := recencyKey(e.Nest, d)
		if best == nil || lexLess(key, bestKey) ||
			(lexEq(key, bestKey) && d.Src.ID > best.Src.ID) {
			best, bestKey = d, key
		}
	}
	return best
}

// recencyKey builds the per-level write age of a dependence relative to
// the read's nest: 0 = same iteration, d = d iterations back, +Inf =
// the write ran before this loop began.  Unknown carried distances rank
// as 1 (the typical recurrence; documented assumption, mirroring the
// paper's reliance on dependence analysis for the "last" write).
func recencyKey(nest []*ir.Loop, d *dep.Dependence) []float64 {
	const beforeLoop = 1e18
	key := make([]float64, len(nest))
	shared := sharedDepth(nest, d.CommonNest)
	for l := range key {
		switch {
		case l >= shared:
			key[l] = beforeLoop
		case d.Level == 0 || l < d.Level-1:
			key[l] = 0
		case l == d.Level-1:
			dd := d.Distance[l]
			if !dd.Known {
				key[l] = 1
			} else if dd.D < 0 {
				key[l] = float64(-dd.D)
			} else {
				key[l] = float64(dd.D)
			}
		default:
			// Inside the carried level's previous iteration: latest
			// possible position.
			key[l] = 0
		}
	}
	return key
}

func lexLess(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func lexEq(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// nonLocalOf computes a reference's non-local data on one rank, given the
// statement the reference sits in (its CP determines the iterations).
func nonLocalOf(ctx *cp.Context, proc *ir.Procedure, sel *cp.Selection, stmt *ir.Assign, nest []*ir.Loop, ref *ir.ArrayRef, rank int) iset.Set {
	c := sel.CPOf(stmt.ID)
	iters := c.IterSet(nest, ctx.Bind.Params, ctx.LocalOf(proc, rank))
	return ctx.NonLocalData(proc, ref, ir.NestVars(nest), iters, rank)
}

// --- transfers ---------------------------------------------------------------

// Transfer is one point-to-point message: src sends the data set of
// array elements to dst.
type Transfer struct {
	Array    string
	From, To int
	Data     iset.Set
}

// Bytes returns the message payload size.
func (t Transfer) Bytes() int64 { return 8 * t.Data.Card() }

// ReadTransfers computes the vectorized, coalesced messages satisfying a
// set of read events placed at the same point: for every rank, the data
// it needs but does not own, grouped by owner, merged per (owner, needer,
// array) across events — dhpf's message coalescing.
func ReadTransfers(ctx *cp.Context, proc *ir.Procedure, sel *cp.Selection, events []*Event) []Transfer {
	grid, err := ctx.Grid()
	if err != nil {
		return nil
	}
	type key struct {
		array    string
		from, to int
	}
	acc := map[key]iset.Set{}
	var order []key
	for _, e := range events {
		if e.Kind != ReadComm || e.Eliminated {
			continue
		}
		layout := ctx.Layout(proc, e.Ref.Name)
		if layout == nil {
			continue
		}
		for rank := 0; rank < grid.Size(); rank++ {
			nl := nonLocalOf(ctx, proc, sel, e.Stmt, e.Nest, e.Ref, rank)
			if nl.IsEmpty() {
				continue
			}
			for owner := 0; owner < grid.Size(); owner++ {
				if owner == rank {
					continue
				}
				part := nl.IntersectBox(layout.LocalBox(owner))
				if part.IsEmpty() {
					continue
				}
				k := key{array: e.Ref.Name, from: owner, to: rank}
				if _, seen := acc[k]; !seen {
					order = append(order, k)
				}
				acc[k] = acc[k].Union(part)
			}
		}
	}
	out := make([]Transfer, 0, len(order))
	for _, k := range order {
		out = append(out, Transfer{Array: k.array, From: k.from, To: k.to, Data: acc[k]})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Array != b.Array {
			return a.Array < b.Array
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	return out
}

// WriteBackTransfers computes the messages returning non-owner writes to
// their owners for a set of write-back events.
func WriteBackTransfers(ctx *cp.Context, proc *ir.Procedure, sel *cp.Selection, events []*Event) []Transfer {
	grid, err := ctx.Grid()
	if err != nil {
		return nil
	}
	type key struct {
		array    string
		from, to int
	}
	acc := map[key]iset.Set{}
	var order []key
	for _, e := range events {
		if e.Kind != WriteBack || e.Eliminated {
			continue
		}
		layout := ctx.Layout(proc, e.Ref.Name)
		if layout == nil {
			continue
		}
		for rank := 0; rank < grid.Size(); rank++ {
			nl := nonLocalOf(ctx, proc, sel, e.Stmt, e.Nest, e.Ref, rank)
			if nl.IsEmpty() {
				continue
			}
			for owner := 0; owner < grid.Size(); owner++ {
				if owner == rank {
					continue
				}
				part := nl.IntersectBox(layout.LocalBox(owner))
				if part.IsEmpty() {
					continue
				}
				k := key{array: e.Ref.Name, from: rank, to: owner}
				if _, seen := acc[k]; !seen {
					order = append(order, k)
				}
				acc[k] = acc[k].Union(part)
			}
		}
	}
	out := make([]Transfer, 0, len(order))
	for _, k := range order {
		out = append(out, Transfer{Array: k.array, From: k.from, To: k.to, Data: acc[k]})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Array != b.Array {
			return a.Array < b.Array
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	return out
}
