package comm

import (
	"testing"

	"dhpf/internal/cp"
	"dhpf/internal/hpf"
	"dhpf/internal/ir"
	"dhpf/internal/parser"
)

func build(t *testing.T, src string) (*cp.Context, *cp.Selection) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := hpf.Bind(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := cp.NewContext(prog, b)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := cp.Select(ctx, cp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return ctx, sel
}

const stencilSrc = `
program t
param N = 32
!hpf$ processors procs(4)
!hpf$ template tm(N, N)
!hpf$ align a with tm(d0, d1)
!hpf$ align b with tm(d0, d1)
!hpf$ distribute tm(*, BLOCK) onto procs

subroutine main()
  real a(0:N-1, 0:N-1)
  real b(0:N-1, 0:N-1)
  do j = 1, N-2
    do i = 1, N-2
      b(i,j) = a(i,j-1) + a(i,j+1)
    enddo
  enddo
end
`

func TestStencilReadEventsHoisted(t *testing.T) {
	ctx, sel := build(t, stencilSrc)
	proc := ctx.Prog.Main()
	an := Analyze(ctx, proc, sel, DefaultOptions())
	reads := 0
	for _, e := range an.Events {
		if e.Kind != ReadComm {
			continue
		}
		reads++
		if e.Depth != 0 {
			t.Errorf("stencil read not fully hoisted: %v", e)
		}
		if e.Pipelined {
			t.Errorf("stencil read marked pipelined: %v", e)
		}
	}
	if reads != 2 {
		t.Fatalf("read events = %d, want 2 (a(i,j-1), a(i,j+1))", reads)
	}
	// Owner-computes: no write-backs.
	for _, e := range an.Events {
		if e.Kind == WriteBack {
			t.Errorf("unexpected write-back: %v", e)
		}
	}
}

func TestStencilTransfersShape(t *testing.T) {
	ctx, sel := build(t, stencilSrc)
	proc := ctx.Prog.Main()
	an := Analyze(ctx, proc, sel, DefaultOptions())
	tr := ReadTransfers(ctx, proc, sel, an.Live())
	// 4 ranks in a line, each interior rank exchanges one column with
	// each neighbour: transfers = 2*(P-1) = 6 after coalescing.
	if len(tr) != 6 {
		t.Fatalf("transfers = %d, want 6: %v", len(tr), tr)
	}
	for _, x := range tr {
		if x.From == x.To {
			t.Errorf("self transfer: %+v", x)
		}
		// Each is one boundary column of 30 interior elements... the
		// full column is fetched for rows 1..N-2 = 30 elements.
		if x.Data.Card() != 30 {
			t.Errorf("transfer %v carries %d elements, want 30", x, x.Data.Card())
		}
	}
}

func TestCoalescingMergesRefs(t *testing.T) {
	// Two reads of the same array at j-1 and j-2 must coalesce into one
	// message per neighbour pair carrying both columns.
	ctx, sel := build(t, `
program t
param N = 32
!hpf$ processors procs(4)
!hpf$ template tm(N, N)
!hpf$ align a with tm(d0, d1)
!hpf$ align b with tm(d0, d1)
!hpf$ distribute tm(*, BLOCK) onto procs

subroutine main()
  real a(0:N-1, 0:N-1)
  real b(0:N-1, 0:N-1)
  do j = 2, N-2
    do i = 1, N-2
      b(i,j) = a(i,j-1) + a(i,j-2)
    enddo
  enddo
end
`)
	proc := ctx.Prog.Main()
	an := Analyze(ctx, proc, sel, DefaultOptions())
	tr := ReadTransfers(ctx, proc, sel, an.Live())
	// Selection aligns the statement with the reads (ON_HOME a(i,j-1)),
	// leaving one read column per downward-neighbour pair; both read
	// references coalesce into a single message per pair.
	if len(tr) != 3 {
		t.Fatalf("read transfers = %d, want 3: %v", len(tr), tr)
	}
	for _, x := range tr {
		if x.From != x.To-1 {
			t.Errorf("unexpected direction: %+v", x)
		}
		if x.Data.Card()%30 != 0 {
			t.Errorf("transfer carries %d elements, want a multiple of one 30-row column", x.Data.Card())
		}
	}
}

// ySolve4Src reproduces the §7 scenario: forward elimination writing
// rows j+1 and j+2 with non-owner CPs; the read of lhs(i,j+1,k4) is
// covered by the previous iteration's write of lhs(i,j+2,k4), while the
// read of lhs(i,j+2,k4) is not covered and stays.
const ySolve4Src = `
program ysolve
param N = 32
param n = 0
!hpf$ processors procs(4)
!hpf$ template tm(N, N)
!hpf$ align lhs with tm(d0, d1, *)
!hpf$ align rhs with tm(d0, d1)
!hpf$ distribute tm(*, BLOCK) onto procs

subroutine main()
  real lhs(0:N-1, 0:N-1, 5)
  real rhs(0:N-1, 0:N-1)
  do j = 1, N-3
    do i = 1, N-2
      rhs(i,j) = 1.0 / lhs(i,j,n+4)
      lhs(i,j+1,n+3) = lhs(i,j+1,n+3) - rhs(i,j)
      lhs(i,j+2,n+3) = lhs(i,j+2,n+3) - rhs(i,j)
    enddo
  enddo
end
`

func TestAvailabilityEliminatesAntiPipelineRead(t *testing.T) {
	ctx, sel := build(t, ySolve4Src)
	proc := ctx.Prog.Main()
	an := Analyze(ctx, proc, sel, DefaultOptions())

	var elimJ1, liveJ2 bool
	for _, e := range an.Events {
		if e.Kind != ReadComm || e.Ref.Name != "lhs" {
			continue
		}
		off, _ := e.Ref.Subs[1].Off.IsConst()
		switch off {
		case 1: // lhs(i,j+1,n+3)
			if e.Eliminated {
				elimJ1 = true
			}
		case 2: // lhs(i,j+2,n+3)
			if !e.Eliminated {
				liveJ2 = true
			}
		}
	}
	if !elimJ1 {
		t.Error("read of lhs(i,j+1,·) not eliminated by availability analysis")
	}
	if !liveJ2 {
		t.Error("read of lhs(i,j+2,·) wrongly eliminated (no covering write)")
	}
}

func TestAvailabilityOffKeepsEvents(t *testing.T) {
	ctx, sel := build(t, ySolve4Src)
	proc := ctx.Prog.Main()
	an := Analyze(ctx, proc, sel, Options{Availability: false})
	for _, e := range an.Events {
		if e.Eliminated {
			t.Fatalf("event eliminated with availability off: %v", e)
		}
	}
}

func TestPipelinedEventsMarked(t *testing.T) {
	ctx, sel := build(t, ySolve4Src)
	proc := ctx.Prog.Main()
	an := Analyze(ctx, proc, sel, DefaultOptions())
	// The write-backs to lhs(i,j+1/j+2) are carried by the j loop across
	// the distributed dimension: pipelined.
	pipelined := 0
	for _, e := range an.Events {
		if e.Kind == WriteBack && e.Pipelined {
			pipelined++
			if e.CarriedBy == nil || e.CarriedBy.Var != "j" {
				t.Errorf("pipelined event carried by %v", e.CarriedBy)
			}
		}
	}
	if pipelined == 0 {
		t.Fatal("no pipelined write-backs detected in the wavefront loop")
	}
}

func TestLocalizeProducesNoCommForReciprocals(t *testing.T) {
	ctx, sel := build(t, `
program bt_rhs
param N = 32
!hpf$ processors procs(2, 2)
!hpf$ template tm(N, N, N)
!hpf$ align rhs with tm(d0, d1, d2)
!hpf$ align rho_i with tm(d0, d1, d2)
!hpf$ align u with tm(d0, d1, d2)
!hpf$ distribute tm(*, BLOCK, BLOCK) onto procs

subroutine main()
  real rhs(0:N-1, 0:N-1, 0:N-1)
  real rho_i(0:N-1, 0:N-1, 0:N-1)
  real u(0:N-1, 0:N-1, 0:N-1)
  !hpf$ independent, localize(rho_i)
  do onetrip = 1, 1
    do k = 0, N-1
      do j = 0, N-1
        do i = 0, N-1
          rho_i(i,j,k) = 1.0 / u(i,j,k)
        enddo
      enddo
    enddo
    do k = 1, N-2
      do j = 1, N-2
        do i = 1, N-2
          rhs(i,j,k) = rho_i(i,j+1,k) - rho_i(i,j-1,k) + rho_i(i,j,k+1) - rho_i(i,j,k-1)
        enddo
      enddo
    enddo
  enddo
end
`)
	proc := ctx.Prog.Main()
	an := Analyze(ctx, proc, sel, DefaultOptions())
	// Reads of rho_i must generate no live communication: partial
	// replication computed the boundary values locally, so availability
	// analysis eliminates every rho_i read event.
	for _, e := range an.Events {
		if e.Kind == ReadComm && e.Ref.Name == "rho_i" && !e.Eliminated {
			t.Fatalf("rho_i read event survived: %v", e)
		}
	}
	tr := ReadTransfers(ctx, proc, sel, an.Live())
	for _, x := range tr {
		if x.Array == "rho_i" {
			t.Fatalf("LOCALIZE left rho_i transfer: %v", x)
		}
	}
}

var _ = ir.Num
