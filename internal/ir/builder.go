package ir

// Builder provides a fluent API for constructing programs in tests and
// embedded workloads without going through the parser.
type Builder struct {
	prog *Program
	proc *Procedure
	// stack of open loop bodies; the innermost receives new statements
	stack []*[]Stmt
}

// NewBuilder starts a new program.
func NewBuilder(name string) *Builder {
	return &Builder{prog: NewProgram(name)}
}

// Param declares a symbolic parameter with a default value.
func (b *Builder) Param(name string, val int) *Builder {
	b.prog.Params[name] = val
	return b
}

// Processors declares a processor arrangement.
func (b *Builder) Processors(name string, extents ...AffExpr) *Builder {
	b.prog.Processors = append(b.prog.Processors, &ProcessorsDecl{Name: name, Extents: extents})
	return b
}

// Template declares an HPF template.
func (b *Builder) Template(name string, extents ...AffExpr) *Builder {
	b.prog.Templates = append(b.prog.Templates, &TemplateDecl{Name: name, Extents: extents})
	return b
}

// Align aligns an array with a template identically (offset 0 per dim).
func (b *Builder) Align(array, template string, dims ...AlignDim) *Builder {
	b.prog.Aligns = append(b.prog.Aligns, &AlignDecl{Array: array, Template: template, Dims: dims})
	return b
}

// Distribute attaches a DISTRIBUTE directive.
func (b *Builder) Distribute(target, onto string, specs ...DistSpec) *Builder {
	b.prog.Distributes = append(b.prog.Distributes, &DistributeDecl{Target: target, Onto: onto, Specs: specs})
	return b
}

// Proc opens a new procedure; subsequent statements go into it.
func (b *Builder) Proc(name string, formals ...string) *Builder {
	b.proc = &Procedure{Name: name, Formals: formals}
	b.prog.Procs = append(b.prog.Procs, b.proc)
	b.stack = []*[]Stmt{&b.proc.Body}
	return b
}

// Real declares a float64 array in the current procedure.  Bounds come in
// (lb,ub) pairs; none ⇒ scalar.
func (b *Builder) Real(name string, bounds ...AffExpr) *Builder {
	if len(bounds)%2 != 0 {
		panic("ir: Real needs (lb,ub) pairs")
	}
	d := &Decl{Name: name}
	for i := 0; i < len(bounds); i += 2 {
		d.LB = append(d.LB, bounds[i])
		d.UB = append(d.UB, bounds[i+1])
	}
	for _, f := range b.proc.Formals {
		if f == name {
			d.Dummy = true
		}
	}
	b.proc.Decls = append(b.proc.Decls, d)
	return b
}

// Dims is shorthand producing (lb,ub) pairs (0, n-1) for each extent, for
// use as Real("a", Dims(N, M)...).
func Dims(extents ...AffExpr) []AffExpr {
	out := make([]AffExpr, 0, 2*len(extents))
	for _, n := range extents {
		out = append(out, Num(0), n.AddConst(-1))
	}
	return out
}

// Do opens a DO loop var = lo, hi (step 1).
func (b *Builder) Do(v string, lo, hi AffExpr) *Builder { return b.DoStep(v, lo, hi, 1) }

// DoStep opens a DO loop with the given step (must be ±1).
func (b *Builder) DoStep(v string, lo, hi AffExpr, step int) *Builder {
	if step != 1 && step != -1 {
		panic("ir: loop step must be ±1")
	}
	l := &Loop{ID: b.prog.NewStmtID(), Var: v, Lo: lo, Hi: hi, Step: step}
	b.append(l)
	b.stack = append(b.stack, &l.Body)
	return b
}

// Independent marks the innermost open loop INDEPENDENT with optional NEW
// variables.
func (b *Builder) Independent(newVars ...string) *Builder {
	l := b.innermostLoop()
	l.Independent = true
	l.New = append(l.New, newVars...)
	return b
}

// LocalizeVars marks variables LOCALIZE on the innermost open loop.
func (b *Builder) LocalizeVars(vars ...string) *Builder {
	l := b.innermostLoop()
	l.Independent = true
	l.Localize = append(l.Localize, vars...)
	return b
}

func (b *Builder) innermostLoop() *Loop {
	if len(b.stack) < 2 {
		panic("ir: no open loop")
	}
	// The loop owning the innermost body is the last Loop appended to the
	// next-outer body.
	outer := *b.stack[len(b.stack)-2]
	l, ok := outer[len(outer)-1].(*Loop)
	if !ok {
		panic("ir: innermost scope is not a loop")
	}
	return l
}

// End closes the innermost open loop.
func (b *Builder) End() *Builder {
	if len(b.stack) <= 1 {
		panic("ir: End without open loop")
	}
	b.stack = b.stack[:len(b.stack)-1]
	return b
}

// Assign appends LHS = RHS.
func (b *Builder) Assign(lhs *ArrayRef, rhs Expr) *Builder {
	b.append(&Assign{ID: b.prog.NewStmtID(), LHS: lhs, RHS: rhs})
	return b
}

// Call appends a procedure call.
func (b *Builder) Call(callee string, args ...Expr) *Builder {
	b.append(&CallStmt{ID: b.prog.NewStmtID(), Callee: callee, Args: args})
	return b
}

func (b *Builder) append(s Stmt) {
	if b.proc == nil {
		panic("ir: statement outside procedure")
	}
	body := b.stack[len(b.stack)-1]
	*body = append(*body, s)
}

// Build returns the completed program.
func (b *Builder) Build() *Program {
	if len(b.stack) > 1 {
		panic("ir: Build with unclosed loops")
	}
	return b.prog
}

// --- Expression helpers ----------------------------------------------------

// F returns a float constant expression.
func F(v float64) Expr { return FloatConst{Val: v} }

// Ix returns a loop-index value expression.
func Ix(name string) Expr { return IndexRef{Name: name} }

// P returns a parameter value expression.
func P(name string) Expr { return ParamRef{Name: name} }

// S returns a scalar variable read.
func S(name string) Expr { return ScalarRef{Name: name} }

// Add, SubE, Mul, Div build binary expressions.
func Add(l, r Expr) Expr  { return &Bin{Op: '+', L: l, R: r} }
func SubE(l, r Expr) Expr { return &Bin{Op: '-', L: l, R: r} }
func Mul(l, r Expr) Expr  { return &Bin{Op: '*', L: l, R: r} }
func Div(l, r Expr) Expr  { return &Bin{Op: '/', L: l, R: r} }

// Fn builds an intrinsic call.
func Fn(name string, args ...Expr) Expr { return &Intrinsic{Name: name, Args: args} }
