// Package ir defines the intermediate representation the dhpf compiler
// analyzes: a mini-HPF language of procedures, DO loops, assignments with
// affine array subscripts, procedure calls, and HPF directives
// (PROCESSORS, TEMPLATE, ALIGN, DISTRIBUTE, INDEPENDENT, NEW, LOCALIZE).
//
// The representation deliberately covers exactly the program forms the
// SC'98 dHPF paper's optimizations operate on: perfectly or imperfectly
// nested DO loops with unit steps (±1), subscripts affine in one loop
// index with unit coefficient, and symbolic integer parameters for grid
// extents.
package ir

import (
	"fmt"
	"sort"
	"strings"
)

// AffTerm is one coefficient*parameter term of an affine expression.
type AffTerm struct {
	Name string
	Coef int
}

// AffExpr is an affine integer expression over named parameters:
// Const + Σ Coef_i * Name_i.  Loop bounds and array extents are AffExprs,
// evaluated against a parameter binding (e.g. problem-size constants).
type AffExpr struct {
	Const int
	Terms []AffTerm
}

// Num returns the constant affine expression c.
func Num(c int) AffExpr { return AffExpr{Const: c} }

// Sym returns the affine expression 1*name.
func Sym(name string) AffExpr { return AffExpr{Terms: []AffTerm{{Name: name, Coef: 1}}} }

// AddAff returns a + b.
func (a AffExpr) AddAff(b AffExpr) AffExpr {
	out := AffExpr{Const: a.Const + b.Const}
	coef := map[string]int{}
	order := []string{}
	for _, t := range append(append([]AffTerm{}, a.Terms...), b.Terms...) {
		if _, ok := coef[t.Name]; !ok {
			order = append(order, t.Name)
		}
		coef[t.Name] += t.Coef
	}
	for _, n := range order {
		if coef[n] != 0 {
			out.Terms = append(out.Terms, AffTerm{Name: n, Coef: coef[n]})
		}
	}
	return out
}

// AddConst returns a + c.
func (a AffExpr) AddConst(c int) AffExpr {
	out := a.clone()
	out.Const += c
	return out
}

// Neg returns -a.
func (a AffExpr) Neg() AffExpr {
	out := AffExpr{Const: -a.Const, Terms: make([]AffTerm, len(a.Terms))}
	for i, t := range a.Terms {
		out.Terms[i] = AffTerm{Name: t.Name, Coef: -t.Coef}
	}
	return out
}

// Sub returns a - b.
func (a AffExpr) Sub(b AffExpr) AffExpr { return a.AddAff(b.Neg()) }

// Scale returns c*a.
func (a AffExpr) Scale(c int) AffExpr {
	out := AffExpr{Const: c * a.Const, Terms: make([]AffTerm, 0, len(a.Terms))}
	if c == 0 {
		return out
	}
	for _, t := range a.Terms {
		out.Terms = append(out.Terms, AffTerm{Name: t.Name, Coef: c * t.Coef})
	}
	return out
}

// IsConst reports whether the expression has no symbolic terms, returning
// the constant value when it does.
func (a AffExpr) IsConst() (int, bool) {
	if len(a.Terms) == 0 {
		return a.Const, true
	}
	return 0, false
}

// Eval evaluates the expression under the given parameter binding.
// It panics if a parameter is unbound (programming error in the compiler).
func (a AffExpr) Eval(bind map[string]int) int {
	v := a.Const
	for _, t := range a.Terms {
		val, ok := bind[t.Name]
		if !ok {
			panic(fmt.Sprintf("ir: unbound parameter %q in affine expression", t.Name))
		}
		v += t.Coef * val
	}
	return v
}

// EvalOr evaluates like Eval but substitutes missing for unbound
// parameters instead of panicking.  Analyses use it where procedure
// formals (bound only at run time) can appear in subscript offsets.
func (a AffExpr) EvalOr(bind map[string]int, missing int) int {
	v := a.Const
	for _, t := range a.Terms {
		val, ok := bind[t.Name]
		if !ok {
			val = missing
		}
		v += t.Coef * val
	}
	return v
}

// Params returns the sorted set of parameter names the expression uses.
func (a AffExpr) Params() []string {
	seen := map[string]bool{}
	for _, t := range a.Terms {
		seen[t.Name] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (a AffExpr) clone() AffExpr {
	out := AffExpr{Const: a.Const, Terms: make([]AffTerm, len(a.Terms))}
	copy(out.Terms, a.Terms)
	return out
}

// Eq reports structural equality after normalization.
func (a AffExpr) Eq(b AffExpr) bool { return a.Sub(b).isZero() }

func (a AffExpr) isZero() bool {
	if a.Const != 0 {
		return false
	}
	for _, t := range a.Terms {
		if t.Coef != 0 {
			return false
		}
	}
	return true
}

// String renders the expression, e.g. "N-2" or "2*P+1".
func (a AffExpr) String() string {
	var sb strings.Builder
	first := true
	for _, t := range a.Terms {
		if t.Coef == 0 {
			continue
		}
		switch {
		case first && t.Coef == 1:
			sb.WriteString(t.Name)
		case first && t.Coef == -1:
			sb.WriteString("-" + t.Name)
		case first:
			fmt.Fprintf(&sb, "%d*%s", t.Coef, t.Name)
		case t.Coef == 1:
			sb.WriteString("+" + t.Name)
		case t.Coef == -1:
			sb.WriteString("-" + t.Name)
		case t.Coef > 0:
			fmt.Fprintf(&sb, "+%d*%s", t.Coef, t.Name)
		default:
			fmt.Fprintf(&sb, "%d*%s", t.Coef, t.Name)
		}
		first = false
	}
	if first {
		return fmt.Sprintf("%d", a.Const)
	}
	if a.Const > 0 {
		fmt.Fprintf(&sb, "+%d", a.Const)
	} else if a.Const < 0 {
		fmt.Fprintf(&sb, "%d", a.Const)
	}
	return sb.String()
}
