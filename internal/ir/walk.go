package ir

// Walk calls fn for every statement in the body, pre-order, recursing into
// loop bodies.  fn returning false prunes the subtree.
func Walk(body []Stmt, fn func(s Stmt, loops []*Loop) bool) {
	walk(body, nil, fn)
}

func walk(body []Stmt, loops []*Loop, fn func(Stmt, []*Loop) bool) {
	for _, s := range body {
		if !fn(s, loops) {
			continue
		}
		switch st := s.(type) {
		case *Loop:
			walk(st.Body, append(loops, st), fn)
		case *IfStmt:
			walk(st.Then, loops, fn)
			walk(st.Else, loops, fn)
		}
	}
}

// Assignments returns every Assign in the body (recursively), each paired
// with its enclosing loop nest from outermost to innermost.
func Assignments(body []Stmt) []AssignInNest {
	var out []AssignInNest
	Walk(body, func(s Stmt, loops []*Loop) bool {
		if a, ok := s.(*Assign); ok {
			nest := make([]*Loop, len(loops))
			copy(nest, loops)
			out = append(out, AssignInNest{Assign: a, Nest: nest})
		}
		return true
	})
	return out
}

// AssignInNest pairs an assignment with its enclosing loops.
type AssignInNest struct {
	Assign *Assign
	Nest   []*Loop
}

// Refs returns all array references in an expression tree, in evaluation
// order.  Scalar references (zero-subscript ArrayRefs are arrays passed
// whole; ScalarRef leaves are scalars) are not included.
func Refs(e Expr) []*ArrayRef {
	var out []*ArrayRef
	WalkExpr(e, func(x Expr) {
		if r, ok := x.(*ArrayRef); ok {
			out = append(out, r)
		}
	})
	return out
}

// WalkExpr visits every node of an expression tree, pre-order.
func WalkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *Bin:
		WalkExpr(x.L, fn)
		WalkExpr(x.R, fn)
	case *Intrinsic:
		for _, a := range x.Args {
			WalkExpr(a, fn)
		}
	}
}

// RewriteExpr rebuilds an expression tree bottom-up, replacing each node
// with fn's result.  fn receives nodes whose children are already
// rewritten; returning the argument keeps it.
func RewriteExpr(e Expr, fn func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *Bin:
		l := RewriteExpr(x.L, fn)
		r := RewriteExpr(x.R, fn)
		if l != x.L || r != x.R {
			e = &Bin{Op: x.Op, L: l, R: r}
		}
	case *Intrinsic:
		args := make([]Expr, len(x.Args))
		changed := false
		for i, a := range x.Args {
			args[i] = RewriteExpr(a, fn)
			if args[i] != x.Args[i] {
				changed = true
			}
		}
		if changed {
			e = &Intrinsic{Name: x.Name, Args: args}
		}
	}
	return fn(e)
}

// ScalarReads returns the names of scalar variables read by the expression.
func ScalarReads(e Expr) []string {
	var out []string
	WalkExpr(e, func(x Expr) {
		if s, ok := x.(ScalarRef); ok {
			out = append(out, s.Name)
		}
	})
	return out
}

// LoopByVar returns the innermost loop in the nest using the given index
// variable, or nil.
func LoopByVar(nest []*Loop, v string) *Loop {
	for i := len(nest) - 1; i >= 0; i-- {
		if nest[i].Var == v {
			return nest[i]
		}
	}
	return nil
}

// NestVars returns the index variables of a loop nest, outermost first.
func NestVars(nest []*Loop) []string {
	out := make([]string, len(nest))
	for i, l := range nest {
		out[i] = l.Var
	}
	return out
}

// CommonPrefix returns the loops shared by both nests (outermost-in).
func CommonPrefix(a, b []*Loop) []*Loop {
	n := min(len(a), len(b))
	var out []*Loop
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			break
		}
		out = append(out, a[i])
	}
	return out
}
