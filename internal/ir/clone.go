package ir

// This file supports the incremental front end's per-procedure AST
// cache: a pristine parsed Procedure is kept aside and deep-cloned into
// each compilation (later passes — loop distribution, scalar expansion —
// rewrite bodies in place), then the assembled program is renumbered so
// statement ids come out exactly as a cold whole-source parse would
// assign them.

// CloneProc returns a structurally independent deep copy of the
// procedure: declarations, statements and expressions share no mutable
// state with the original.
func CloneProc(p *Procedure) *Procedure {
	out := &Procedure{
		Name:    p.Name,
		Formals: append([]string(nil), p.Formals...),
		Decls:   make([]*Decl, len(p.Decls)),
		Body:    cloneBody(p.Body),
	}
	for i, d := range p.Decls {
		out.Decls[i] = &Decl{
			Name:  d.Name,
			LB:    cloneAffs(d.LB),
			UB:    cloneAffs(d.UB),
			Dummy: d.Dummy,
		}
	}
	return out
}

func cloneBody(body []Stmt) []Stmt {
	if body == nil {
		return nil
	}
	out := make([]Stmt, len(body))
	for i, s := range body {
		out[i] = cloneStmt(s)
	}
	return out
}

func cloneStmt(s Stmt) Stmt {
	switch st := s.(type) {
	case *Assign:
		return &Assign{ID: st.ID, LHS: cloneRef(st.LHS), RHS: cloneExpr(st.RHS)}
	case *CallStmt:
		args := make([]Expr, len(st.Args))
		for i, a := range st.Args {
			args[i] = cloneExpr(a)
		}
		return &CallStmt{ID: st.ID, Callee: st.Callee, Args: args}
	case *IfStmt:
		return &IfStmt{
			ID:   st.ID,
			Cond: Cond{L: cloneExpr(st.Cond.L), Op: st.Cond.Op, R: cloneExpr(st.Cond.R)},
			Then: cloneBody(st.Then),
			Else: cloneBody(st.Else),
		}
	case *Loop:
		return &Loop{
			ID: st.ID, Var: st.Var,
			Lo: cloneAff(st.Lo), Hi: cloneAff(st.Hi), Step: st.Step,
			Body:        cloneBody(st.Body),
			Independent: st.Independent,
			New:         append([]string(nil), st.New...),
			Localize:    append([]string(nil), st.Localize...),
		}
	}
	return s
}

func cloneExpr(e Expr) Expr {
	switch ex := e.(type) {
	case *Bin:
		return &Bin{L: cloneExpr(ex.L), Op: ex.Op, R: cloneExpr(ex.R)}
	case *Intrinsic:
		args := make([]Expr, len(ex.Args))
		for i, a := range ex.Args {
			args[i] = cloneExpr(a)
		}
		return &Intrinsic{Name: ex.Name, Args: args}
	case *ArrayRef:
		return cloneRef(ex)
	}
	// FloatConst, IndexRef, ParamRef, ScalarRef are immutable values.
	return e
}

func cloneRef(r *ArrayRef) *ArrayRef {
	if r == nil {
		return nil
	}
	subs := make([]Subscript, len(r.Subs))
	for i, s := range r.Subs {
		subs[i] = Subscript{Var: s.Var, Coef: s.Coef, Off: cloneAff(s.Off)}
	}
	return &ArrayRef{Name: r.Name, Subs: subs}
}

func cloneAff(a AffExpr) AffExpr {
	return AffExpr{Const: a.Const, Terms: append([]AffTerm(nil), a.Terms...)}
}

func cloneAffs(xs []AffExpr) []AffExpr {
	if xs == nil {
		return nil
	}
	out := make([]AffExpr, len(xs))
	for i, x := range xs {
		out[i] = cloneAff(x)
	}
	return out
}

// RenumberStmts reassigns statement ids across the whole program in the
// order a cold parse allocates them: procedures in program order, and
// within each body pre-order (a loop or if receives its id before its
// nested statements, an if's then-arm before its else-arm).  The
// program's id counter is reset accordingly.
func RenumberStmts(p *Program) {
	p.nextID = 1
	for _, proc := range p.Procs {
		renumberBody(p, proc.Body)
	}
}

func renumberBody(p *Program, body []Stmt) {
	for _, s := range body {
		switch st := s.(type) {
		case *Assign:
			st.ID = p.NewStmtID()
		case *CallStmt:
			st.ID = p.NewStmtID()
		case *IfStmt:
			st.ID = p.NewStmtID()
			renumberBody(p, st.Then)
			renumberBody(p, st.Else)
		case *Loop:
			st.ID = p.NewStmtID()
			renumberBody(p, st.Body)
		}
	}
}
