package ir

import "fmt"

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// Expr is a run-time value expression (the right-hand sides of
// assignments).  Analyses only inspect the ArrayRef leaves; the arithmetic
// structure is carried for the SPMD interpreter that executes compiled
// programs.
type Expr interface {
	exprNode()
	String() string
}

// FloatConst is a literal floating-point constant.
type FloatConst struct{ Val float64 }

// IndexRef is the value of an enclosing loop's index variable.
type IndexRef struct{ Name string }

// ParamRef is the value of a symbolic integer parameter (e.g. the problem
// size N), usable in arithmetic.
type ParamRef struct{ Name string }

// ScalarRef reads a scalar variable.
type ScalarRef struct{ Name string }

// Bin is a binary arithmetic operation: + - * /.
type Bin struct {
	Op   byte
	L, R Expr
}

// Intrinsic is a call to a pure math intrinsic (sqrt, exp, sin, cos, min,
// max, abs, mod, pow).
type Intrinsic struct {
	Name string
	Args []Expr
}

func (FloatConst) exprNode() {}
func (IndexRef) exprNode()   {}
func (ParamRef) exprNode()   {}
func (ScalarRef) exprNode()  {}
func (*Bin) exprNode()       {}
func (*Intrinsic) exprNode() {}
func (*ArrayRef) exprNode()  {}

func (e FloatConst) String() string { return trimFloat(e.Val) }
func (e IndexRef) String() string   { return e.Name }
func (e ParamRef) String() string   { return e.Name }
func (e ScalarRef) String() string  { return e.Name }
func (e *Bin) String() string       { return fmt.Sprintf("(%s %c %s)", e.L, e.Op, e.R) }
func (e *Intrinsic) String() string {
	s := e.Name + "("
	for i, a := range e.Args {
		if i > 0 {
			s += ", "
		}
		s += a.String()
	}
	return s + ")"
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}

// ---------------------------------------------------------------------------
// Array references and subscripts
// ---------------------------------------------------------------------------

// Subscript is one array-subscript expression of the restricted affine
// form  Coef*Var + Off,  where Var is a loop index variable (Var == ""
// denotes a loop-invariant subscript) and Off is affine in symbolic
// parameters.  Coef is restricted to ±1 (or 0 via Var == ""), matching the
// subscript forms the dHPF integer-set framework handles exactly.
type Subscript struct {
	Var  string
	Coef int
	Off  AffExpr
}

// SubVar returns the subscript v+off for loop variable v.
func SubVar(v string, off int) Subscript {
	return Subscript{Var: v, Coef: 1, Off: Num(off)}
}

// SubConst returns a loop-invariant subscript.
func SubConst(a AffExpr) Subscript { return Subscript{Off: a} }

// String renders the subscript, e.g. "i+1", "-i+N", "5".
func (s Subscript) String() string {
	if s.Var == "" {
		return s.Off.String()
	}
	var v string
	switch s.Coef {
	case 1:
		v = s.Var
	case -1:
		v = "-" + s.Var
	default:
		v = fmt.Sprintf("%d*%s", s.Coef, s.Var)
	}
	if s.Off.isZero() {
		return v
	}
	off := s.Off.String()
	if off[0] != '-' && off[0] != '+' {
		off = "+" + off
	}
	return v + off
}

// Eq reports structural equality.
func (s Subscript) Eq(t Subscript) bool {
	if s.Var != t.Var {
		return false
	}
	if s.Var != "" && s.Coef != t.Coef {
		return false
	}
	return s.Off.Eq(t.Off)
}

// ArrayRef is a reference to array Name with affine subscripts.  A
// zero-subscript ArrayRef passed as a call argument denotes the whole
// array.
type ArrayRef struct {
	Name string
	Subs []Subscript
}

// NewRef builds an ArrayRef.
func NewRef(name string, subs ...Subscript) *ArrayRef {
	return &ArrayRef{Name: name, Subs: subs}
}

func (r *ArrayRef) String() string {
	if len(r.Subs) == 0 {
		return r.Name
	}
	s := r.Name + "("
	for i, sub := range r.Subs {
		if i > 0 {
			s += ","
		}
		s += sub.String()
	}
	return s + ")"
}

// Eq reports whether two references are structurally identical.
func (r *ArrayRef) Eq(o *ArrayRef) bool {
	if r.Name != o.Name || len(r.Subs) != len(o.Subs) {
		return false
	}
	for k := range r.Subs {
		if !r.Subs[k].Eq(o.Subs[k]) {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

// Stmt is a statement in a procedure body.
type Stmt interface {
	stmtNode()
	StmtID() int
}

// Assign is LHS = RHS.  A scalar assignment has a LHS with no subscripts.
type Assign struct {
	ID  int
	LHS *ArrayRef
	RHS Expr
}

// Loop is a DO loop with affine bounds and unit step (Step ∈ {1,-1}).
// HPF directives attach to the loop: Independent (asserted parallel), New
// (privatizable variables), Localize (dhpf's partial-replication
// extension, §4.2 of the paper).
type Loop struct {
	ID          int
	Var         string
	Lo, Hi      AffExpr
	Step        int
	Body        []Stmt
	Independent bool
	New         []string
	Localize    []string
}

// CallStmt invokes procedure Callee.  Array actuals appear as ArrayRefs;
// a zero-subscript ArrayRef passes the whole array.
type CallStmt struct {
	ID     int
	Callee string
	Args   []Expr
}

// Cond is a comparison between two expressions.  Conditions are
// restricted to loop indices, parameters and constants so that control
// flow is identical on every processor (guards over distributed data
// would require the CP machinery to broadcast the condition).
type Cond struct {
	L  Expr
	Op string // < > <= >= == /=
	R  Expr
}

func (c Cond) String() string {
	return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R)
}

// IfStmt is a two-armed conditional.
type IfStmt struct {
	ID   int
	Cond Cond
	Then []Stmt
	Else []Stmt
}

func (*Assign) stmtNode()   {}
func (*Loop) stmtNode()     {}
func (*CallStmt) stmtNode() {}
func (*IfStmt) stmtNode()   {}

func (s *Assign) StmtID() int   { return s.ID }
func (s *Loop) StmtID() int     { return s.ID }
func (s *CallStmt) StmtID() int { return s.ID }
func (s *IfStmt) StmtID() int   { return s.ID }

// ---------------------------------------------------------------------------
// Declarations and directives
// ---------------------------------------------------------------------------

// Decl declares an array (or scalar, with no dimensions) of float64
// elements.  Each dimension has inclusive affine bounds [LB:UB].
type Decl struct {
	Name   string
	LB, UB []AffExpr // equal length; empty for scalars
	Dummy  bool      // true for procedure dummy arguments
}

// Rank returns the number of array dimensions (0 for scalars).
func (d *Decl) Rank() int { return len(d.LB) }

// DistKind is one HPF distribution format for one dimension.
type DistKind int

const (
	DistStar  DistKind = iota // * : dimension not distributed
	DistBlock                 // BLOCK or BLOCK(n)
	DistCyclic
)

func (k DistKind) String() string {
	switch k {
	case DistStar:
		return "*"
	case DistBlock:
		return "BLOCK"
	case DistCyclic:
		return "CYCLIC"
	}
	return "?"
}

// DistSpec is the distribution format of one dimension.
type DistSpec struct {
	Kind DistKind
	Size AffExpr // optional BLOCK(n) size; zero ⇒ default block size
	Has  bool    // whether Size was given
}

// ProcessorsDecl declares a named processor arrangement.
type ProcessorsDecl struct {
	Name    string
	Extents []AffExpr
}

// TemplateDecl declares a named HPF template.
type TemplateDecl struct {
	Name    string
	Extents []AffExpr
}

// AlignDim maps one array dimension onto a template dimension with an
// offset:  array dim k  aligns with  template dim TDim at position
// (index + Off).  Collapsed (broadcast) dimensions use TDim = -1.
type AlignDim struct {
	TDim int
	Off  AffExpr
}

// AlignDecl aligns an array with a template.
type AlignDecl struct {
	Array    string
	Template string
	Dims     []AlignDim
}

// DistributeDecl distributes a template (or an unaligned array, treated as
// its own implicit template) over a processor arrangement.
type DistributeDecl struct {
	Target string
	Onto   string
	Specs  []DistSpec
}

// ---------------------------------------------------------------------------
// Procedures and programs
// ---------------------------------------------------------------------------

// Procedure is a subroutine: dummy arguments, local declarations, body.
type Procedure struct {
	Name    string
	Formals []string // names of dummy arguments, in order (arrays or scalars)
	Decls   []*Decl
	Body    []Stmt
}

// DeclOf returns the declaration of the named variable, or nil.
func (p *Procedure) DeclOf(name string) *Decl {
	for _, d := range p.Decls {
		if d.Name == name {
			return d
		}
	}
	return nil
}

// Program is a whole mini-HPF compilation unit.
type Program struct {
	Name        string
	Params      map[string]int // symbolic parameters with default values
	Processors  []*ProcessorsDecl
	Templates   []*TemplateDecl
	Aligns      []*AlignDecl
	Distributes []*DistributeDecl
	Procs       []*Procedure

	nextID int
}

// NewProgram returns an empty program.
func NewProgram(name string) *Program {
	return &Program{Name: name, Params: map[string]int{}, nextID: 1}
}

// NewStmtID allocates a fresh statement id.
func (p *Program) NewStmtID() int {
	id := p.nextID
	p.nextID++
	return id
}

// MaxStmtID returns an exclusive upper bound on allocated statement ids.
func (p *Program) MaxStmtID() int { return p.nextID }

// Proc returns the named procedure, or nil.
func (p *Program) Proc(name string) *Procedure {
	for _, pr := range p.Procs {
		if pr.Name == name {
			return pr
		}
	}
	return nil
}

// Main returns the first procedure named "main", else the first procedure.
func (p *Program) Main() *Procedure {
	if m := p.Proc("main"); m != nil {
		return m
	}
	if len(p.Procs) > 0 {
		return p.Procs[0]
	}
	return nil
}

// DeclOf resolves a name inside proc: local declarations first, then any
// global declaration found in other procedures is not visible — the mini
// language has no COMMON blocks; cross-procedure data flows through
// arguments.
func (p *Program) DeclOf(proc *Procedure, name string) *Decl {
	return proc.DeclOf(name)
}
