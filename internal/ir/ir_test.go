package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAffExprArith(t *testing.T) {
	a := Sym("N").AddConst(-2)         // N-2
	b := Sym("N").Scale(2).AddConst(1) // 2N+1
	sum := a.AddAff(b)
	if got := sum.Eval(map[string]int{"N": 10}); got != 8+21 {
		t.Fatalf("sum eval = %d, want 29", got)
	}
	diff := b.Sub(a)
	if got := diff.Eval(map[string]int{"N": 10}); got != 21-8 {
		t.Fatalf("diff eval = %d, want 13", got)
	}
	if got := a.Neg().Eval(map[string]int{"N": 3}); got != -1 {
		t.Fatalf("neg eval = %d, want -1", got)
	}
	if _, ok := a.IsConst(); ok {
		t.Error("N-2 reported constant")
	}
	if c, ok := Num(7).IsConst(); !ok || c != 7 {
		t.Error("Num(7) not constant 7")
	}
	// Cancellation must drop the term entirely.
	z := a.Sub(Sym("N"))
	if len(z.Terms) != 0 {
		t.Errorf("N-2-N kept terms: %v", z.Terms)
	}
}

func TestAffExprString(t *testing.T) {
	cases := []struct {
		e    AffExpr
		want string
	}{
		{Num(5), "5"},
		{Num(-3), "-3"},
		{Sym("N"), "N"},
		{Sym("N").AddConst(-2), "N-2"},
		{Sym("N").Scale(-1).AddConst(4), "-N+4"},
		{Sym("N").Scale(2).AddAff(Sym("M")).AddConst(1), "2*N+M+1"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.e, got, c.want)
		}
	}
}

func TestQuickAffEvalHomomorphism(t *testing.T) {
	prop := func(c1, c2, k int8, n int8) bool {
		a := Sym("N").Scale(int(c1)).AddConst(int(c2))
		b := Sym("N").Scale(int(k)).AddConst(3)
		bind := map[string]int{"N": int(n)}
		if a.AddAff(b).Eval(bind) != a.Eval(bind)+b.Eval(bind) {
			return false
		}
		if a.Sub(b).Eval(bind) != a.Eval(bind)-b.Eval(bind) {
			return false
		}
		if a.Scale(int(k)).Eval(bind) != int(k)*a.Eval(bind) {
			return false
		}
		return a.Eq(a) && a.AddAff(b).Eq(b.AddAff(a))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSubscriptString(t *testing.T) {
	cases := []struct {
		s    Subscript
		want string
	}{
		{SubVar("i", 0), "i"},
		{SubVar("j", 1), "j+1"},
		{SubVar("j", -2), "j-2"},
		{Subscript{Var: "i", Coef: -1, Off: Sym("N")}, "-i+N"},
		{SubConst(Num(5)), "5"},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.want {
			t.Errorf("Subscript.String = %q, want %q", got, c.want)
		}
	}
}

func TestBuilderAndWalk(t *testing.T) {
	N := Sym("N")
	b := NewBuilder("t").Param("N", 8).
		Processors("procs", Num(4)).
		Distribute("a", "procs", DistSpec{Kind: DistBlock}).
		Proc("main").
		Real("a", Dims(N)...).
		Real("b", Dims(N)...).
		Do("i", Num(1), N.AddConst(-2)).
		Assign(NewRef("a", SubVar("i", 0)),
			Add(NewRef("b", SubVar("i", -1)), NewRef("b", SubVar("i", 1)))).
		End()
	prog := b.Build()

	if prog.Main() == nil {
		t.Fatal("Main() nil")
	}
	asn := Assignments(prog.Main().Body)
	if len(asn) != 1 {
		t.Fatalf("found %d assignments, want 1", len(asn))
	}
	if got := len(asn[0].Nest); got != 1 {
		t.Fatalf("nest depth = %d, want 1", got)
	}
	refs := Refs(asn[0].Assign.RHS)
	if len(refs) != 2 {
		t.Fatalf("RHS refs = %d, want 2", len(refs))
	}
	if refs[0].Name != "b" || refs[1].Name != "b" {
		t.Errorf("refs = %v", refs)
	}
	// Statement ids must be unique and positive.
	seen := map[int]bool{}
	Walk(prog.Main().Body, func(s Stmt, _ []*Loop) bool {
		id := s.StmtID()
		if id <= 0 || seen[id] {
			t.Errorf("bad/duplicate stmt id %d", id)
		}
		seen[id] = true
		return true
	})
}

func TestBuilderDirectivesOnLoops(t *testing.T) {
	N := Sym("N")
	prog := NewBuilder("t").Param("N", 8).
		Proc("main").
		Real("a", Dims(N)...).
		Real("cv", Dims(N)...).
		Do("j", Num(1), N.AddConst(-2)).Independent("cv").
		Assign(NewRef("cv", SubVar("j", 0)), F(1)).
		End().
		Build()
	l := prog.Main().Body[0].(*Loop)
	if !l.Independent || len(l.New) != 1 || l.New[0] != "cv" {
		t.Fatalf("directives not attached: %+v", l)
	}
}

func TestPrintContainsStructure(t *testing.T) {
	N := Sym("N")
	prog := NewBuilder("stencil").Param("N", 16).
		Processors("procs", Num(4)).
		Template("tmpl", N).
		Align("a", "tmpl", AlignDim{TDim: 0, Off: Num(0)}).
		Distribute("tmpl", "procs", DistSpec{Kind: DistBlock}).
		Proc("main").
		Real("a", Dims(N)...).
		Do("i", Num(1), N.AddConst(-2)).
		Assign(NewRef("a", SubVar("i", 0)), Mul(F(0.5), NewRef("a", SubVar("i", 1)))).
		End().
		Build()
	out := Print(prog)
	for _, want := range []string{
		"program stencil",
		"param N = 16",
		"!hpf$ processors procs(4)",
		"!hpf$ template tmpl(N)",
		"!hpf$ align a with tmpl(d0)",
		"!hpf$ distribute tmpl(BLOCK) onto procs",
		"subroutine main()",
		"real a(0:N-1)",
		"do i = 1, N-2",
		"a(i) = (0.5 * a(i+1))",
		"enddo",
		"end",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Print output missing %q:\n%s", want, out)
		}
	}
}

func TestCommonPrefix(t *testing.T) {
	l1 := &Loop{ID: 1, Var: "k"}
	l2 := &Loop{ID: 2, Var: "j"}
	l3 := &Loop{ID: 3, Var: "i"}
	a := []*Loop{l1, l2, l3}
	b := []*Loop{l1, l2}
	cp := CommonPrefix(a, b)
	if len(cp) != 2 || cp[0] != l1 || cp[1] != l2 {
		t.Fatalf("CommonPrefix = %v", cp)
	}
	c := []*Loop{l2}
	if got := CommonPrefix(a, c); len(got) != 0 {
		t.Fatalf("CommonPrefix mismatch = %v", got)
	}
}

func TestRefEq(t *testing.T) {
	r1 := NewRef("lhs", SubVar("i", 0), SubVar("j", 1))
	r2 := NewRef("lhs", SubVar("i", 0), SubVar("j", 1))
	r3 := NewRef("lhs", SubVar("i", 0), SubVar("j", 2))
	if !r1.Eq(r2) {
		t.Error("identical refs not Eq")
	}
	if r1.Eq(r3) {
		t.Error("different refs Eq")
	}
	if r1.Eq(NewRef("rhs", SubVar("i", 0), SubVar("j", 1))) {
		t.Error("different arrays Eq")
	}
}
