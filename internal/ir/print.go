package ir

import (
	"fmt"
	"sort"
	"strings"
)

// Print renders the program in mini-HPF surface syntax.  The output is
// re-parseable by internal/parser, which the round-trip tests exercise.
func Print(p *Program) string {
	var sb strings.Builder
	printHeader(&sb, p)
	for _, pr := range p.Procs {
		sb.WriteByte('\n')
		printProc(&sb, pr)
	}
	return sb.String()
}

func printHeader(sb *strings.Builder, p *Program) {
	fmt.Fprintf(sb, "program %s\n", p.Name)
	names := make([]string, 0, len(p.Params))
	for n := range p.Params {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(sb, "param %s = %d\n", n, p.Params[n])
	}
	for _, d := range p.Processors {
		fmt.Fprintf(sb, "!hpf$ processors %s(%s)\n", d.Name, affList(d.Extents))
	}
	for _, d := range p.Templates {
		fmt.Fprintf(sb, "!hpf$ template %s(%s)\n", d.Name, affList(d.Extents))
	}
	for _, d := range p.Aligns {
		dims := make([]string, len(d.Dims))
		for i, ad := range d.Dims {
			if ad.TDim < 0 {
				dims[i] = "*"
			} else if c, ok := ad.Off.IsConst(); ok && c == 0 {
				dims[i] = fmt.Sprintf("d%d", ad.TDim)
			} else {
				dims[i] = fmt.Sprintf("d%d+%s", ad.TDim, ad.Off)
			}
		}
		fmt.Fprintf(sb, "!hpf$ align %s with %s(%s)\n", d.Array, d.Template, strings.Join(dims, ","))
	}
	for _, d := range p.Distributes {
		specs := make([]string, len(d.Specs))
		for i, s := range d.Specs {
			specs[i] = s.Kind.String()
			if s.Kind == DistBlock && s.Has {
				specs[i] += "(" + s.Size.String() + ")"
			}
		}
		fmt.Fprintf(sb, "!hpf$ distribute %s(%s) onto %s\n", d.Target, strings.Join(specs, ","), d.Onto)
	}
}

// ProcText renders one procedure in the same canonical surface syntax
// Print uses.  Because the parser already normalized whitespace and
// stripped comments, two procedure bodies that differ only in layout or
// commentary render identically — which makes this the per-unit content
// hash input of incremental compilation: a procedure's fingerprint
// changes exactly when its parsed form does.
func ProcText(pr *Procedure) string {
	var sb strings.Builder
	printProc(&sb, pr)
	return sb.String()
}

// HeaderText renders the program-level context every procedure compiles
// under: program name, parameter defaults, and the directive set
// (processors, templates, aligns, distributes).  It is Print minus the
// procedure bodies, and forms the shared half of per-unit fingerprints —
// a directive or parameter edit must dirty every unit.
func HeaderText(p *Program) string {
	var sb strings.Builder
	printHeader(&sb, p)
	return sb.String()
}

func printProc(sb *strings.Builder, pr *Procedure) {
	fmt.Fprintf(sb, "subroutine %s(%s)\n", pr.Name, strings.Join(pr.Formals, ", "))
	for _, d := range pr.Decls {
		if d.Rank() == 0 {
			fmt.Fprintf(sb, "  real %s\n", d.Name)
			continue
		}
		dims := make([]string, d.Rank())
		for k := range d.LB {
			dims[k] = fmt.Sprintf("%s:%s", d.LB[k], d.UB[k])
		}
		fmt.Fprintf(sb, "  real %s(%s)\n", d.Name, strings.Join(dims, ", "))
	}
	printBody(sb, pr.Body, 1)
	fmt.Fprintf(sb, "end\n")
}

func printBody(sb *strings.Builder, body []Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, s := range body {
		switch st := s.(type) {
		case *Assign:
			fmt.Fprintf(sb, "%s%s = %s\n", ind, st.LHS, st.RHS)
		case *CallStmt:
			args := make([]string, len(st.Args))
			for i, a := range st.Args {
				args[i] = a.String()
			}
			fmt.Fprintf(sb, "%scall %s(%s)\n", ind, st.Callee, strings.Join(args, ", "))
		case *IfStmt:
			fmt.Fprintf(sb, "%sif (%s) then\n", ind, st.Cond)
			printBody(sb, st.Then, depth+1)
			if len(st.Else) > 0 {
				fmt.Fprintf(sb, "%selse\n", ind)
				printBody(sb, st.Else, depth+1)
			}
			fmt.Fprintf(sb, "%sendif\n", ind)
		case *Loop:
			if st.Independent {
				dir := "!hpf$ independent"
				if len(st.New) > 0 {
					dir += ", new(" + strings.Join(st.New, ",") + ")"
				}
				if len(st.Localize) > 0 {
					dir += ", localize(" + strings.Join(st.Localize, ",") + ")"
				}
				fmt.Fprintf(sb, "%s%s\n", ind, dir)
			}
			if st.Step == 1 {
				fmt.Fprintf(sb, "%sdo %s = %s, %s\n", ind, st.Var, st.Lo, st.Hi)
			} else {
				fmt.Fprintf(sb, "%sdo %s = %s, %s, %d\n", ind, st.Var, st.Lo, st.Hi, st.Step)
			}
			printBody(sb, st.Body, depth+1)
			fmt.Fprintf(sb, "%senddo\n", ind)
		}
	}
}

func affList(xs []AffExpr) string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = x.String()
	}
	return strings.Join(out, ", ")
}
