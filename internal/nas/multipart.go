package nas

import (
	"fmt"
	"math"
	"sync"

	"dhpf/internal/hpf"
	"dhpf/internal/iset"
	"dhpf/internal/mpsim"
)

// MultipartRun is the result of a hand-coded multipartitioning run.
type MultipartRun struct {
	Machine *mpsim.Result
	N       int
	U, R    []float64 // gathered global arrays (R concatenates components)
}

// RunMultipart executes the hand-written message-passing version of SP
// or BT using diagonal multipartitioning on q² ranks — the paper's
// hand-MPI baseline (§3, §8).  Per time step it performs:
//
//	copy_faces    one coalesced message per face direction (6 per rank)
//	              carrying the 2-deep u halos of every owned cell;
//	compute_rhs   local (reciprocals recomputed on a 1-grown region);
//	x/y/z solves  bi-directional sweeps: at each of the Q stages every
//	              rank owns exactly one cell of the active slab, receives
//	              its predecessor's last two pivot rows (values + factor),
//	              eliminates its own rows, and forwards its own last two
//	              pivot rows — the NPB2.3b2 x_send_solve_info protocol;
//	add           local.
func RunMultipart(bench string, n, steps, procs int, cfg mpsim.Config) (*MultipartRun, error) {
	bt, comp, err := fmtBench(bench)
	if err != nil {
		return nil, err
	}
	q := int(math.Round(math.Sqrt(float64(procs))))
	if q*q != procs {
		return nil, fmt.Errorf("nas: multipartitioning needs a square rank count, got %d", procs)
	}
	mp, err := hpf.NewMultipartition(q, n, n, n)
	if err != nil {
		return nil, err
	}
	var w FlopWeights
	if bt {
		w = weightsFrom(BTSource(8, 1, 1, 1), true)
	} else {
		w = weightsFrom(SPSource(8, 1, 1, 1), false)
	}

	states := make([]*handState, procs)
	var mu sync.Mutex
	var runErr error
	cfg.Procs = procs
	res := mpsim.Run(cfg, func(rk *mpsim.Rank) {
		defer func() {
			if rec := recover(); rec != nil {
				mu.Lock()
				if runErr == nil {
					runErr = rankPanicErr(rec, "multipart", rk.ID)
				}
				mu.Unlock()
			}
		}()
		st := newHandState(n, comp, !bt)
		mu.Lock()
		states[rk.ID] = st
		mu.Unlock()
		d := &mpDriver{rk: rk, mp: mp, st: st, bt: bt, systems: SweepSystems(bench), w: w}
		d.run(steps)
	})
	if runErr != nil {
		return nil, runErr
	}

	out := &MultipartRun{Machine: res, N: n}
	out.U = make([]float64, n*n*n)
	out.R = make([]float64, comp*n*n*n)
	for rank := 0; rank < procs; rank++ {
		st := states[rank]
		mp.LocalSet(rank).Each(func(p []int) bool {
			i, j, k := p[0], p[1], p[2]
			out.U[st.idx(i, j, k)] = st.u[st.idx(i, j, k)]
			for m := 0; m < comp; m++ {
				out.R[st.ridx(m, i, j, k)] = st.r[st.ridx(m, i, j, k)]
			}
			return true
		})
	}
	return out, nil
}

type mpDriver struct {
	rk      *mpsim.Rank
	mp      *hpf.Multipartition
	st      *handState
	bt      bool
	systems []SweepSystem
	w       FlopWeights
	tag     int
}

func (d *mpDriver) nextTag() int {
	d.tag++
	return d.tag
}

func (d *mpDriver) cells() [][3]int { return d.mp.CellsOf(d.rk.ID) }

func (d *mpDriver) run(steps int) {
	st, n := d.st, d.st.n
	// Init: everything local (each rank initializes the union of its
	// cells grown by the halo depth, so copy_faces has valid sources).
	var ownPts float64
	for _, c := range d.cells() {
		box := d.mp.CellBox(c[0], c[1], c[2]).Grow(0, 2, 2).Grow(1, 2, 2).Grow(2, 2, 2)
		box = box.Intersect(iset.NewBox([]int{0, 0, 0}, []int{n - 1, n - 1, n - 1}))
		box.Each(func(p []int) bool {
			st.initPoint(p[0], p[1], p[2])
			return true
		})
		ownPts += float64(d.mp.CellBox(c[0], c[1], c[2]).Card())
	}
	d.rk.ComputeLabeled(d.w.Init*ownPts, "init")

	for s := 0; s < steps; s++ {
		d.copyFaces()
		d.computeRHS()
		if d.bt {
			d.jacPhase()
		} else {
			d.spdPhase()
		}
		for dim := 0; dim < 3; dim++ {
			label := [3]string{"x_solve", "y_solve", "z_solve"}[dim]
			for _, sys := range d.systems {
				d.forwardSweep(dim, sys, label, d.tagBlock())
			}
			for _, sys := range d.systems {
				d.backwardSweep(dim, sys, label, d.tagBlock())
			}
		}
		d.addPhase()
	}
}

// copyFaces exchanges the 2-deep u faces of every owned cell, one
// coalesced message per face direction (all cells' faces for a direction
// go to the same peer — the multipartitioning neighbour property).
func (d *mpDriver) copyFaces() {
	n := d.st.n
	for dim := 0; dim < 3; dim++ {
		for _, dir := range []int{+1, -1} {
			// Outgoing: my boundary planes toward dir.
			var payload []float64
			var sendPeer = -1
			for _, c := range d.cells() {
				nc := c
				nc[dim] += dir
				if nc[dim] < 0 || nc[dim] >= d.mp.Q {
					continue
				}
				sendPeer = d.mp.OwnerOfCell(nc[0], nc[1], nc[2])
				box := d.mp.CellBox(c[0], c[1], c[2])
				var rows [2]int
				if dir > 0 {
					rows = [2]int{box.Hi[dim] - 1, box.Hi[dim]}
				} else {
					rows = [2]int{box.Lo[dim], box.Lo[dim] + 1}
				}
				for _, row := range rows {
					if row < 0 || row >= n {
						continue
					}
					face := box.WithDim(dim, row, row)
					face.Each(func(p []int) bool {
						payload = append(payload, d.st.u[d.st.idx(p[0], p[1], p[2])])
						return true
					})
				}
			}
			tag := d.nextTag()
			if sendPeer >= 0 {
				d.rk.Send(sendPeer, tag, payload)
			}
			// Incoming: halos beyond my cells opposite to dir come from
			// the -dir neighbour, which sent with the same tag sequence.
			recvPeer := -1
			var regions []iset.Box
			for _, c := range d.cells() {
				nc := c
				nc[dim] -= dir
				if nc[dim] < 0 || nc[dim] >= d.mp.Q {
					continue
				}
				recvPeer = d.mp.OwnerOfCell(nc[0], nc[1], nc[2])
				box := d.mp.CellBox(c[0], c[1], c[2])
				var rows [2]int
				if dir > 0 {
					rows = [2]int{box.Lo[dim] - 2, box.Lo[dim] - 1}
				} else {
					rows = [2]int{box.Hi[dim] + 1, box.Hi[dim] + 2}
				}
				for _, row := range rows {
					if row < 0 || row >= n {
						continue
					}
					regions = append(regions, box.WithDim(dim, row, row))
				}
			}
			if recvPeer >= 0 {
				data := d.rk.Recv(recvPeer, tag)
				at := 0
				for _, face := range regions {
					face.Each(func(p []int) bool {
						d.st.u[d.st.idx(p[0], p[1], p[2])] = data[at]
						at++
						return true
					})
				}
			}
		}
	}
}

func (d *mpDriver) computeRHS() {
	n := d.st.n
	var rhoPts, stPts float64
	for _, c := range d.cells() {
		box := d.mp.CellBox(c[0], c[1], c[2])
		// Reciprocals on the cell grown by 1 along each axis (the local
		// replication that stands in for LOCALIZE).
		grown := box.Grow(0, 1, 1).Grow(1, 1, 1).Grow(2, 1, 1).
			Intersect(iset.NewBox([]int{0, 0, 0}, []int{n - 1, n - 1, n - 1}))
		grown.Each(func(p []int) bool {
			d.st.rhoPoint(p[0], p[1], p[2])
			rhoPts++
			return true
		})
		inner := box.Intersect(iset.NewBox([]int{2, 2, 2}, []int{n - 3, n - 3, n - 3}))
		inner.Each(func(p []int) bool {
			d.st.stencilPoint(p[0], p[1], p[2], d.bt)
			stPts++
			return true
		})
	}
	mul := float64(d.st.comp)
	d.rk.ComputeLabeled(d.w.Rho*rhoPts+d.w.Stencil*stPts*mul, "compute_rhs")
}

// jacPhase runs BT's fully-parallel block-Jacobian setup on own cells.
func (d *mpDriver) jacPhase() {
	n := d.st.n
	var pts float64
	for dim := 0; dim < 3; dim++ {
		for _, c := range d.cells() {
			box := d.mp.CellBox(c[0], c[1], c[2]).
				Intersect(iset.NewBox([]int{1, 1, 1}, []int{n - 2, n - 2, n - 2}))
			box.Each(func(p []int) bool {
				d.st.jacPoint(dim, p[0], p[1], p[2])
				pts++
				return true
			})
		}
	}
	c := float64(d.st.comp)
	d.rk.ComputeLabeled(d.w.Jac*pts*c*c, "lhs")
}

func (d *mpDriver) spdPhase() {
	n := d.st.n
	var pts float64
	for _, c := range d.cells() {
		box := d.mp.CellBox(c[0], c[1], c[2]).
			Intersect(iset.NewBox([]int{0, 1, 0}, []int{n - 1, n - 2, n - 1}))
		box.Each(func(p []int) bool {
			d.st.spdPoint(p[0], p[1], p[2])
			pts++
			return true
		})
	}
	d.rk.ComputeLabeled((d.w.Cv+d.w.Spd)*pts, "lhs")
}

// pivotRange returns the global forward/backward pivot range.
func (d *mpDriver) pivotRange() (int, int) { return 1, d.st.n - 4 }

// tagBlock reserves Q tags for one sweep's stage boundaries; boundary b
// (between stages b and b+1) uses tag base+b on both sides.
func (d *mpDriver) tagBlock() int {
	base := d.tag + 1
	d.tag += d.mp.Q
	return base
}

// forwardSweep runs one system's forward elimination along dim over the
// Q stages.
func (d *mpDriver) forwardSweep(dim int, sys SweepSystem, label string, tagBase int) {
	plo, phi := d.pivotRange()
	for s := 0; s < d.mp.Q; s++ {
		c := d.cellInSlab(dim, s)
		box := d.mp.CellBox(c[0], c[1], c[2])
		lo, hi := box.Lo[dim], box.Hi[dim]
		foot := footprint(box, dim, d.st.n)

		// Receive the predecessor's last two pivots and apply their
		// contributions to my rows.
		if s > 0 {
			pred := c
			pred[dim]--
			peer := d.mp.OwnerOfCell(pred[0], pred[1], pred[2])
			pivots := clampPivots([]int{lo - 2, lo - 1}, plo, phi)
			tag := tagBase + s - 1
			if len(pivots) > 0 {
				data := d.rk.Recv(peer, tag)
				at := 0
				nc := sys.Comps()
				for _, p := range pivots {
					foot.Each(func(ab []int) bool {
						f := data[at]
						at++
						rv := data[at : at+nc]
						at += nc
						d.st.applyPivot(dim, p, ab[0], ab[1], sys, lo, hi, f, rv)
						return true
					})
				}
			}
		}

		// Eliminate my own pivots, writing only into my rows.
		var pts float64
		for p := max(lo, plo); p <= min(hi, phi); p++ {
			foot.Each(func(ab []int) bool {
				d.st.applyPivot(dim, p, ab[0], ab[1], sys, lo, hi, 0, nil)
				pts++
				return true
			})
		}
		d.rk.ComputeLabeled(d.w.Fwd*pts*float64(sys.Comps()), label)

		// Forward my last two pivots to the successor stage.
		if s < d.mp.Q-1 {
			succ := c
			succ[dim]++
			peer := d.mp.OwnerOfCell(succ[0], succ[1], succ[2])
			pivots := clampPivots([]int{hi - 1, hi}, plo, phi)
			tag := tagBase + s
			if len(pivots) > 0 {
				var payload []float64
				for _, p := range pivots {
					foot.Each(func(ab []int) bool {
						i, j, k := point(dim, p, ab[0], ab[1])
						payload = append(payload, d.st.fac(sys, i, j, k))
						for m := sys.Mlo; m <= sys.Mhi; m++ {
							payload = append(payload, d.st.r[d.st.ridx(m, i, j, k)])
						}
						return true
					})
				}
				d.rk.Send(peer, tag, payload)
			}
		}
	}
}

// backwardSweep runs one system's back substitution along dim, stages
// descending.
func (d *mpDriver) backwardSweep(dim int, sys SweepSystem, label string, tagBase int) {
	n := d.st.n
	plo, phi := d.pivotRange()
	for s := d.mp.Q - 1; s >= 0; s-- {
		c := d.cellInSlab(dim, s)
		box := d.mp.CellBox(c[0], c[1], c[2])
		lo, hi := box.Lo[dim], box.Hi[dim]
		foot := footprint(box, dim, d.st.n)

		// Receive the two finished rows beyond my cell.
		if s < d.mp.Q-1 {
			succ := c
			succ[dim]++
			peer := d.mp.OwnerOfCell(succ[0], succ[1], succ[2])
			rows := clampPivots([]int{hi + 1, hi + 2}, 0, n-1)
			tag := tagBase + s
			data := d.rk.Recv(peer, tag)
			at := 0
			for _, row := range rows {
				foot.Each(func(ab []int) bool {
					i, j, k := point(dim, row, ab[0], ab[1])
					for m := sys.Mlo; m <= sys.Mhi; m++ {
						d.st.r[d.st.ridx(m, i, j, k)] = data[at]
						at++
					}
					return true
				})
			}
		}

		// Back-substitute my rows, descending.
		var pts float64
		for p := min(hi, phi); p >= max(lo, plo); p-- {
			foot.Each(func(ab []int) bool {
				d.st.backSub(dim, p, ab[0], ab[1], sys)
				pts++
				return true
			})
		}
		d.rk.ComputeLabeled(d.w.Bwd*pts*float64(sys.Comps()), label)

		// Send my first two rows to the previous stage.
		if s > 0 {
			pred := c
			pred[dim]--
			peer := d.mp.OwnerOfCell(pred[0], pred[1], pred[2])
			rows := clampPivots([]int{lo, lo + 1}, 0, n-1)
			tag := tagBase + s - 1
			var payload []float64
			for _, row := range rows {
				foot.Each(func(ab []int) bool {
					i, j, k := point(dim, row, ab[0], ab[1])
					for m := sys.Mlo; m <= sys.Mhi; m++ {
						payload = append(payload, d.st.r[d.st.ridx(m, i, j, k)])
					}
					return true
				})
			}
			d.rk.Send(peer, tag, payload)
		}
	}
}

func (d *mpDriver) addPhase() {
	n := d.st.n
	var pts float64
	for _, c := range d.cells() {
		box := d.mp.CellBox(c[0], c[1], c[2]).
			Intersect(iset.NewBox([]int{2, 2, 2}, []int{n - 3, n - 3, n - 3}))
		box.Each(func(p []int) bool {
			d.st.addPoint(p[0], p[1], p[2], d.bt)
			pts++
			return true
		})
	}
	d.rk.ComputeLabeled(d.w.Add*pts, "add")
}

// cellInSlab returns this rank's unique cell with coordinate s along dim.
func (d *mpDriver) cellInSlab(dim, s int) [3]int {
	for _, c := range d.cells() {
		if c[dim] == s {
			return c
		}
	}
	panic("nas: multipartitioning lost the sweep property")
}

// footprint is the 2-D box of the non-sweep dimensions of a cell box,
// clamped to the interior line range the solves cover (the sources sweep
// lines in [1, n-2] only).
func footprint(box iset.Box, dim, n int) iset.Box {
	f := box.Drop(dim)
	for d := 0; d < 2; d++ {
		f.Lo[d] = max(f.Lo[d], 1)
		f.Hi[d] = min(f.Hi[d], n-2)
	}
	return f
}

func clampPivots(rows []int, lo, hi int) []int {
	var out []int
	for _, r := range rows {
		if r >= lo && r <= hi {
			out = append(out, r)
		}
	}
	return out
}
