package nas

// Differential check of the shared-memory backend on the full NAS-class
// codes: the shm team (both layouts) must reproduce the message
// machine's global arrays bit for bit on SP, BT, and the LU 2-D
// wavefront, under every pass ablation.  Clocks and traffic are not
// compared — the substrates price time differently by design; a pure
// shm run must simply report zero message traffic.

import (
	"errors"
	"math"
	"testing"
	"time"

	"dhpf/internal/mpsim"
	"dhpf/internal/passes"
	"dhpf/internal/spmd"
)

func TestShmByteIdenticalNAS(t *testing.T) {
	cases := []struct {
		name  string
		src   string
		procs int
	}{
		{"sp", SPSource(12, 1, 2, 2), 4},
		{"bt", BTSource(12, 1, 2, 2), 4},
		{"lu", LUSource(12, 1, 2, 2), 4},
	}
	ablations := [][]string{nil, {"availability"}, {"loopdist"}, {"wbelim"}}
	for _, c := range cases {
		for _, disable := range ablations {
			for _, backend := range []string{passes.BackendShm, passes.BackendHybrid} {
				name := c.name + "-" + backend
				for _, d := range disable {
					name += "-no-" + d
				}
				// Hybrid's sync protocol is identical to shm's (only the
				// cost model differs); one unablated hybrid run per code
				// bounds the suite's runtime.
				if backend == passes.BackendHybrid && disable != nil {
					continue
				}
				t.Run(name, func(t *testing.T) {
					opt := spmd.DefaultOptions()
					opt.Disable = append(opt.Disable, disable...)
					mp, err := spmd.CompileSource(c.src, nil, opt)
					if err != nil {
						t.Fatalf("compile mp: %v", err)
					}
					opt.Backend = backend
					sm, err := spmd.CompileSource(c.src, nil, opt)
					if err != nil {
						t.Fatalf("compile %s: %v", backend, err)
					}
					cfg := smallMachine(c.procs)
					cfg.WallLimit = 2 * time.Second
					rm, errm := mp.ExecuteEngine(cfg, spmd.EngineCompiled)
					rs, errs := sm.ExecuteEngine(cfg, spmd.EngineCompiled)
					if errors.Is(errm, mpsim.ErrWallLimit) || errors.Is(errs, mpsim.ErrWallLimit) {
						// Some ablations genuinely deadlock (identically on
						// both substrates); nothing deterministic to compare.
						t.Skipf("wall limit hit (mp err=%v, %s err=%v)", errm, backend, errs)
					}
					if (errm == nil) != (errs == nil) {
						t.Fatalf("backends disagree on success: mp err=%v, %s err=%v", errm, backend, errs)
					}
					if errm != nil {
						return
					}
					if backend == passes.BackendShm {
						if n := rs.Machine.TotalMessages(); n != 0 {
							t.Fatalf("pure shm run reports %d messages", n)
						}
						if rs.Shm == nil || rs.Shm.TotalPulls() == 0 {
							t.Fatalf("shm run reports no pulls (counters: %+v)", rs.Shm)
						}
					}
					for _, d := range mp.IR.Main().Decls {
						if d.Rank() == 0 {
							continue
						}
						gm, _, _, err := rm.Global(d.Name)
						if err != nil {
							t.Fatal(err)
						}
						gs, _, _, err := rs.Global(d.Name)
						if err != nil {
							t.Fatal(err)
						}
						for k := range gm {
							if math.Float64bits(gm[k]) != math.Float64bits(gs[k]) {
								t.Fatalf("%s[%d]: mp %v, %s %v", d.Name, k, gm[k], backend, gs[k])
							}
						}
					}
				})
			}
		}
	}
}
