package nas

import "fmt"

// BTSource returns the mini-HPF source of the simplified BT benchmark:
// the same ADI phase structure as SP but with NCOMP coupled components
// per grid point (block systems instead of scalar ones), and with the
// x-direction solve performed by a pointwise *leaf subroutine* called
// inside the parallel (j,k) loops — the paper's Figure 6.1 pattern that
// exercises interprocedural CP selection.
func BTSource(n, steps, p1, p2 int) string {
	return fmt.Sprintf(`
program bt
param N = %d
param STEPS = %d
param P1 = %d
param P2 = %d

!hpf$ processors procs(P1, P2)
!hpf$ template tm(N, N, N)
!hpf$ align u with tm(d0, d1, d2)
!hpf$ align rho with tm(d0, d1, d2)
!hpf$ align r with tm(*, d0, d1, d2)
!hpf$ distribute tm(*, BLOCK, BLOCK) onto procs

subroutine solve_cell(r, v, jj, kk)
  real r(1:5, 0:N-1, 0:N-1, 0:N-1)
  real v(0:N-1, 0:N-1, 0:N-1)
  do i = 1, N-4
    do m = 1, 5
      r(m,i+1,jj,kk) = r(m,i+1,jj,kk) - (%g/v(i,jj,kk))*r(m,i,jj,kk)
      r(m,i+2,jj,kk) = r(m,i+2,jj,kk) - %g*r(m,i,jj,kk)
      do mm = 1, 5
        r(m,i+1,jj,kk) = r(m,i+1,jj,kk) - %g*r(mm,i,jj,kk)
      enddo
    enddo
  enddo
  do i = N-4, 1, -1
    do m = 1, 5
      r(m,i,jj,kk) = r(m,i,jj,kk) - %g*r(m,i+1,jj,kk) - %g*r(m,i+2,jj,kk)
      do mm = 1, 5
        r(m,i,jj,kk) = r(m,i,jj,kk) - %g*r(mm,i+1,jj,kk)
      enddo
    enddo
  enddo
end

subroutine main()
  real u(0:N-1, 0:N-1, 0:N-1)
  real rho(0:N-1, 0:N-1, 0:N-1)
  real r(1:5, 0:N-1, 0:N-1, 0:N-1)

  do k = 0, N-1
    do j = 0, N-1
      do i = 0, N-1
        u(i,j,k) = 1.0 + 0.001*i + 0.002*j + 0.003*k
        rho(i,j,k) = 0.0
        do m = 1, 5
          r(m,i,j,k) = 0.0
        enddo
      enddo
    enddo
  enddo

  do step = 1, STEPS

    ! --- compute_rhs with LOCALIZE'd reciprocals, per component ---
    !hpf$ independent, localize(rho)
    do onetrip = 1, 1
      do k = 0, N-1
        do j = 0, N-1
          do i = 0, N-1
            rho(i,j,k) = 1.0 / u(i,j,k)
          enddo
        enddo
      enddo
      do k = 2, N-3
        do j = 2, N-3
          do i = 2, N-3
            do m = 1, 5
              r(m,i,j,k) = %g*(rho(i+1,j,k) + rho(i-1,j,k) + rho(i,j+1,k) + rho(i,j-1,k) + rho(i,j,k+1) + rho(i,j,k-1) - 6.0*rho(i,j,k)) + %g*m*(u(i+2,j,k) + u(i-2,j,k) + u(i,j+2,k) + u(i,j-2,k) + u(i,j,k+2) + u(i,j,k-2))
            enddo
          enddo
        enddo
      enddo

    ! --- lhs setup: the 5x5 block Jacobians (fjac/njac) per direction,
    ! folded into r.  This is BT's dominant fully-parallel work; it sits
    ! inside the LOCALIZE scope so the replicated rho boundary values
    ! cover its ±1 reads.
    do k = 1, N-2
      do j = 1, N-2
        do i = 1, N-2
          do m = 1, 5
            do mm = 1, 5
              r(m,i,j,k) = r(m,i,j,k) + %g*mm*(rho(i+1,j,k) - rho(i-1,j,k))*u(i,j,k)
            enddo
          enddo
        enddo
      enddo
    enddo
    do k = 1, N-2
      do j = 1, N-2
        do i = 1, N-2
          do m = 1, 5
            do mm = 1, 5
              r(m,i,j,k) = r(m,i,j,k) + %g*mm*(rho(i,j+1,k) - rho(i,j-1,k))*u(i,j,k)
            enddo
          enddo
        enddo
      enddo
    enddo
    do k = 1, N-2
      do j = 1, N-2
        do i = 1, N-2
          do m = 1, 5
            do mm = 1, 5
              r(m,i,j,k) = r(m,i,j,k) + %g*mm*(rho(i,j,k+1) - rho(i,j,k-1))*u(i,j,k)
            enddo
          enddo
        enddo
      enddo
    enddo
    enddo

    ! --- x_solve: leaf routine per (j,k) line (interprocedural CPs) ---
    do k = 1, N-2
      do j = 1, N-2
        call solve_cell(r, u, j, k)
      enddo
    enddo

    ! --- y_solve: block wavefront along j ---
    do j = 1, N-4
      do k = 1, N-2
        do i = 1, N-2
          do m = 1, 5
            r(m,i,j+1,k) = r(m,i,j+1,k) - (%g/u(i,j,k))*r(m,i,j,k)
            r(m,i,j+2,k) = r(m,i,j+2,k) - %g*r(m,i,j,k)
            do mm = 1, 5
              r(m,i,j+1,k) = r(m,i,j+1,k) - %g*r(mm,i,j,k)
            enddo
          enddo
        enddo
      enddo
    enddo
    do j = N-4, 1, -1
      do k = 1, N-2
        do i = 1, N-2
          do m = 1, 5
            r(m,i,j,k) = r(m,i,j,k) - %g*r(m,i,j+1,k) - %g*r(m,i,j+2,k)
            do mm = 1, 5
              r(m,i,j,k) = r(m,i,j,k) - %g*r(mm,i,j+1,k)
            enddo
          enddo
        enddo
      enddo
    enddo

    ! --- z_solve: block wavefront along k ---
    do k = 1, N-4
      do j = 1, N-2
        do i = 1, N-2
          do m = 1, 5
            r(m,i,j,k+1) = r(m,i,j,k+1) - (%g/u(i,j,k))*r(m,i,j,k)
            r(m,i,j,k+2) = r(m,i,j,k+2) - %g*r(m,i,j,k)
            do mm = 1, 5
              r(m,i,j,k+1) = r(m,i,j,k+1) - %g*r(mm,i,j,k)
            enddo
          enddo
        enddo
      enddo
    enddo
    do k = N-4, 1, -1
      do j = 1, N-2
        do i = 1, N-2
          do m = 1, 5
            r(m,i,j,k) = r(m,i,j,k) - %g*r(m,i,j,k+1) - %g*r(m,i,j,k+2)
            do mm = 1, 5
              r(m,i,j,k) = r(m,i,j,k) - %g*r(mm,i,j,k+1)
            enddo
          enddo
        enddo
      enddo
    enddo

    ! --- add: fold the mean component update back into u ---
    do k = 2, N-3
      do j = 2, N-3
        do i = 2, N-3
          u(i,j,k) = u(i,j,k) + %g*(r(1,i,j,k) + r(2,i,j,k) + r(3,i,j,k) + r(4,i,j,k) + r(5,i,j,k))
        enddo
      enddo
    enddo
  enddo
end
`, n, steps, p1, p2,
		CoefFac, CoefFw2, CoefMix, CoefBk1, CoefBk2, CoefMix,
		CoefDT, CoefDX,
		CoefJac, CoefJac, CoefJac,
		CoefFac, CoefFw2, CoefMix, CoefBk1, CoefBk2, CoefMix,
		CoefFac, CoefFw2, CoefMix, CoefBk1, CoefBk2, CoefMix,
		CoefAdd)
}
