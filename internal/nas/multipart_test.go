package nas

import (
	"math"
	"testing"

	"dhpf/internal/parser"
	"dhpf/internal/spmd"
)

// referenceU runs the mini-HPF source serially and returns the named
// arrays (the single source of truth for all implementations).
func referenceArrays(t *testing.T, src string, names ...string) map[string][]float64 {
	t.Helper()
	ref, err := spmd.RunSerial(parser.MustParse(src), nil)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]float64{}
	for _, n := range names {
		data, _, _, err := ref.Array(n)
		if err != nil {
			t.Fatal(err)
		}
		out[n] = data
	}
	return out
}

func maxRelErr(got, want []float64) float64 {
	worst := 0.0
	for i := range want {
		rel := math.Abs(got[i]-want[i]) / math.Max(1, math.Abs(want[i]))
		worst = math.Max(worst, rel)
	}
	return worst
}

func TestMultipartSPMatchesSerial(t *testing.T) {
	n, steps := 12, 2
	for _, procs := range []int{1, 4, 9} {
		run, err := RunMultipart("sp", n, steps, procs, smallMachine(procs))
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		ref := referenceArrays(t, SPSource(n, steps, 1, 1), "u", "rhs")
		if e := maxRelErr(run.U, ref["u"]); e > 1e-12 {
			t.Errorf("procs=%d: u max rel err %g", procs, e)
		}
		if e := maxRelErr(run.R, ref["rhs"]); e > 1e-12 {
			t.Errorf("procs=%d: rhs max rel err %g", procs, e)
		}
		if procs > 1 && run.Machine.TotalMessages() == 0 {
			t.Errorf("procs=%d: no messages", procs)
		}
	}
}

func TestMultipartBTMatchesSerial(t *testing.T) {
	n, steps := 12, 2
	for _, procs := range []int{1, 4} {
		run, err := RunMultipart("bt", n, steps, procs, smallMachine(procs))
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		ref := referenceArrays(t, BTSource(n, steps, 1, 1), "u", "r")
		if e := maxRelErr(run.U, ref["u"]); e > 1e-12 {
			t.Errorf("procs=%d: u max rel err %g", procs, e)
		}
		if e := maxRelErr(run.R, ref["r"]); e > 1e-12 {
			t.Errorf("procs=%d: r max rel err %g", procs, e)
		}
	}
}

func TestMultipartLoadBalance(t *testing.T) {
	run, err := RunMultipart("sp", 16, 1, 16, smallMachine(16))
	if err != nil {
		t.Fatal(err)
	}
	var minF, maxF float64 = math.Inf(1), 0
	for _, f := range run.Machine.RankFlops {
		minF = math.Min(minF, f)
		maxF = math.Max(maxF, f)
	}
	// Multipartitioning's selling point: near-even work.
	if maxF > 1.5*minF {
		t.Errorf("imbalanced: flops range [%g, %g]", minF, maxF)
	}
}

func TestMultipartCopyFacesMessageCount(t *testing.T) {
	// Per step each rank sends ≤6 copy_faces messages plus the sweep
	// handoffs (3 dims × 2 directions × (q-1) stage boundaries).
	n, steps, procs := 12, 1, 4
	run, err := RunMultipart("sp", n, steps, procs, smallMachine(procs))
	if err != nil {
		t.Fatal(err)
	}
	q := 2
	systems := len(SweepSystems("sp"))
	perRank := 6 + 3*2*systems*(q-1)
	want := int64(procs * perRank)
	if got := run.Machine.TotalMessages(); got > want {
		t.Errorf("messages = %d, want ≤ %d", got, want)
	}
}

func TestMultipartRejectsNonSquare(t *testing.T) {
	if _, err := RunMultipart("sp", 12, 1, 6, smallMachine(6)); err == nil {
		t.Fatal("expected error for non-square rank count")
	}
	if _, err := RunMultipart("nope", 12, 1, 4, smallMachine(4)); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}

func TestFlopWeightsExtraction(t *testing.T) {
	w := weightsFrom(SPSource(8, 1, 1, 1), false)
	if w.Rho != 4 { // one division
		t.Errorf("rho weight = %g, want 4", w.Rho)
	}
	if w.Stencil < 10 || w.Fwd <= 0 || w.Bwd <= 0 || w.Add <= 0 || w.Init <= 0 {
		t.Errorf("suspicious weights: %+v", w)
	}
	wb := weightsFrom(BTSource(8, 1, 1, 1), true)
	if wb.Rho != 4 || wb.Fwd <= 0 || wb.Bwd <= 0 {
		t.Errorf("suspicious BT weights: %+v", wb)
	}
}
