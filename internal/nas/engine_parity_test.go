package nas

// Differential check of the compiled execution engine against the
// tree-walking interpreter on the full NAS-class codes (SP, BT, and the
// LU 2-D wavefront): globals bit-identical, virtual clocks and message
// traffic identical.  This is the heavyweight end of the differential
// corpus in internal/spmd — real multi-procedure programs with
// pipelined sweeps and boundary exchanges.

import (
	"math"
	"testing"

	"dhpf/internal/spmd"
)

func TestEnginesByteIdenticalNAS(t *testing.T) {
	cases := []struct {
		name  string
		src   string
		procs int
	}{
		{"sp", SPSource(12, 1, 2, 2), 4},
		{"bt", BTSource(12, 1, 2, 2), 4},
		{"lu", LUSource(12, 1, 2, 2), 4},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			prog, err := spmd.CompileSource(c.src, nil, spmd.DefaultOptions())
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			cfg := smallMachine(c.procs)
			ri, err := prog.ExecuteEngine(cfg, spmd.EngineInterp)
			if err != nil {
				t.Fatalf("interp: %v", err)
			}
			rc, err := prog.ExecuteEngine(cfg, spmd.EngineCompiled)
			if err != nil {
				t.Fatalf("compiled: %v", err)
			}
			mi, mc := ri.Machine, rc.Machine
			if math.Float64bits(mi.Time) != math.Float64bits(mc.Time) {
				t.Fatalf("virtual time differs: interp %v, compiled %v", mi.Time, mc.Time)
			}
			if mi.TotalMessages() != mc.TotalMessages() || mi.TotalBytes() != mc.TotalBytes() {
				t.Fatalf("traffic differs: interp %d msgs/%d B, compiled %d msgs/%d B",
					mi.TotalMessages(), mi.TotalBytes(), mc.TotalMessages(), mc.TotalBytes())
			}
			for r := range mi.RankTime {
				if math.Float64bits(mi.RankTime[r]) != math.Float64bits(mc.RankTime[r]) ||
					math.Float64bits(mi.RankFlops[r]) != math.Float64bits(mc.RankFlops[r]) {
					t.Fatalf("rank %d clocks/flops differ", r)
				}
			}
			for _, d := range prog.IR.Main().Decls {
				if d.Rank() == 0 {
					continue
				}
				gi, _, _, err := ri.Global(d.Name)
				if err != nil {
					t.Fatal(err)
				}
				gc, _, _, err := rc.Global(d.Name)
				if err != nil {
					t.Fatal(err)
				}
				for k := range gi {
					if math.Float64bits(gi[k]) != math.Float64bits(gc[k]) {
						t.Fatalf("%s[%d]: interp %v, compiled %v", d.Name, k, gi[k], gc[k])
					}
				}
			}
		})
	}
}
