package nas

import (
	"errors"
	"fmt"

	"dhpf/internal/ir"
	"dhpf/internal/mpsim"
	"dhpf/internal/parser"
	"dhpf/internal/spmd"
)

// rankPanicErr converts a recovered rank panic into an error.  Machine
// aborts (mpsim time/wall limits) keep their typed error so callers can
// errors.Is(err, mpsim.ErrAborted); everything else is a driver bug and
// keeps the rank-labeled formatting.
func rankPanicErr(rec any, impl string, rank int) error {
	if err, ok := rec.(error); ok && errors.Is(err, mpsim.ErrAborted) {
		return err
	}
	return fmt.Errorf("nas: %s rank %d: %v", impl, rank, rec)
}

// handState is the per-rank storage of the hand-coded implementations:
// full-size arrays with only the locally-owned (plus halo) portions kept
// valid — the standard trick that keeps explicitly-parallel solver code
// readable while the messages remain exactly the boundary regions.
type handState struct {
	n, comp int
	u, rho  []float64 // n³
	spd     []float64 // n³ (SP only; nil for BT)
	r       []float64 // comp·n³
}

func newHandState(n, comp int, sp bool) *handState {
	st := &handState{n: n, comp: comp}
	st.u = make([]float64, n*n*n)
	st.rho = make([]float64, n*n*n)
	st.r = make([]float64, comp*n*n*n)
	if sp {
		st.spd = make([]float64, n*n*n)
	}
	return st
}

func (st *handState) idx(i, j, k int) int { return (i*st.n+j)*st.n + k }
func (st *handState) ridx(m, i, j, k int) int {
	return ((m*st.n+i)*st.n+j)*st.n + k
}

// point maps a (dim, pivot, a, b) sweep coordinate to (i,j,k): the sweep
// dimension takes the pivot value, the remaining two dimensions (in
// ascending order) take a and b.
func point(dim, p, a, b int) (int, int, int) {
	switch dim {
	case 0:
		return p, a, b
	case 1:
		return a, p, b
	default:
		return a, b, p
	}
}

// FlopWeights are the per-point flop costs of each solver phase,
// extracted from the mini-HPF sources so hand-coded runs (and the
// analytic performance model) charge exactly what the compiled runs
// charge per point.
type FlopWeights struct {
	Init    float64 // per point, all init statements
	Rho     float64
	Stencil float64 // per point (per component for BT)
	Cv, Spd float64 // SP line-temp phase
	Fwd     float64 // one forward-elimination pivot (both statements)
	Bwd     float64
	Add     float64
	Jac     float64 // BT block-Jacobian statement, per (point, m, mm)
}

// WeightsFor returns the phase flop weights of a benchmark.
func WeightsFor(bench string) (FlopWeights, error) {
	bt, _, err := fmtBench(bench)
	if err != nil {
		return FlopWeights{}, err
	}
	if bt {
		return weightsFrom(BTSource(8, 1, 1, 1), true), nil
	}
	return weightsFrom(SPSource(8, 1, 1, 1), false), nil
}

func weightsFrom(src string, bt bool) FlopWeights {
	prog := parser.MustParse(src)
	var fl []float64
	for _, proc := range prog.Procs {
		ir.Walk(proc.Body, func(s ir.Stmt, _ []*ir.Loop) bool {
			if a, ok := s.(*ir.Assign); ok {
				fl = append(fl, spmd.StaticFlops(a))
			}
			return true
		})
	}
	w := FlopWeights{}
	if bt {
		// Procedure order: solve_cell (fwd1, fwd2, fwdmix, bwd, bwdmix)
		// then main (u, rho, r inits; rho; stencil; jac x/y/z; y fwd1/
		// fwd2/fwdmix/bwd/bwdmix; z ditto; add).  The mix statements
		// execute NCOMP times per (pivot, point, component) — the 5×5
		// block coupling.
		w.Fwd = fl[0] + fl[1] + float64(NCOMP)*fl[2]
		w.Bwd = fl[3] + float64(NCOMP)*fl[4]
		w.Init = fl[5] + fl[6] + fl[7]
		w.Rho = fl[8]
		w.Stencil = fl[9]
		w.Jac = fl[10]
		w.Add = fl[23]
		return w
	}
	// SP main order: u, rho, spd, rhs inits; rho; stencil; cv; spd; then
	// per direction: sys1 fwd1, fwd2, sys2 fwd1, fwd2, sys1 bwd, sys2
	// bwd (x block indices 8..13, y 14..19, z 20..25); add at 26.  The
	// per-component forward/backward weights average the two systems,
	// weighted by their component counts.
	w.Init = fl[0] + fl[1] + fl[2] + float64(NCOMP)*fl[3]
	w.Rho = fl[4]
	w.Stencil = fl[5]
	w.Cv = fl[6]
	w.Spd = fl[7]
	w.Fwd = ((fl[8]+fl[9])*3 + (fl[10]+fl[11])*2) / 5
	w.Bwd = (fl[12]*3 + fl[13]*2) / 5
	w.Add = fl[26]
	return w
}

// --- shared solver kernels (must match the mini-HPF formulas exactly) --------

// SweepSystem describes one of the separate line systems solved per
// direction: NAS SP factorizes two scalar systems (components 1-3 with
// the spd term, components 4-5 — the ±c characteristics); BT solves one
// coupled 5-component block system.
type SweepSystem struct {
	Mlo, Mhi int  // 0-based inclusive component range
	SpdTerm  bool // factor includes CoefSPD·spd
	Fac2     bool // factor uses CoefFac2 (the ±c systems)
	Mix      bool // BT block coupling
}

// Comps returns the number of components the system carries.
func (sys SweepSystem) Comps() int { return sys.Mhi - sys.Mlo + 1 }

// SweepSystems returns the per-direction systems of a benchmark.
func SweepSystems(bench string) []SweepSystem {
	if bench == "bt" {
		return []SweepSystem{{Mlo: 0, Mhi: NCOMP - 1, Mix: true}}
	}
	return []SweepSystem{
		{Mlo: 0, Mhi: 2, SpdTerm: true},
		{Mlo: 3, Mhi: 4, Fac2: true},
	}
}

// fac returns the forward-elimination factor of a system at a pivot.
func (st *handState) fac(sys SweepSystem, i, j, k int) float64 {
	if sys.Fac2 {
		return CoefFac2 / st.u[st.idx(i, j, k)]
	}
	f := CoefFac / st.u[st.idx(i, j, k)]
	if sys.SpdTerm {
		f += CoefSPD * st.spd[st.idx(i, j, k)]
	}
	return f
}

// initPoint initializes one grid point (all arrays).
func (st *handState) initPoint(i, j, k int) {
	st.u[st.idx(i, j, k)] = 1.0 + 0.001*float64(i) + 0.002*float64(j) + 0.003*float64(k)
	st.rho[st.idx(i, j, k)] = 0
	for m := 0; m < st.comp; m++ {
		st.r[st.ridx(m, i, j, k)] = 0
	}
	if st.spd != nil {
		st.spd[st.idx(i, j, k)] = 0
	}
}

// rhoPoint computes the reciprocal at one point.
func (st *handState) rhoPoint(i, j, k int) {
	st.rho[st.idx(i, j, k)] = 1.0 / st.u[st.idx(i, j, k)]
}

// stencilPoint computes the compute_rhs stencil at one interior point.
func (st *handState) stencilPoint(i, j, k int, bt bool) {
	rhoS := st.rho[st.idx(i+1, j, k)] + st.rho[st.idx(i-1, j, k)] +
		st.rho[st.idx(i, j+1, k)] + st.rho[st.idx(i, j-1, k)] +
		st.rho[st.idx(i, j, k+1)] + st.rho[st.idx(i, j, k-1)] -
		6.0*st.rho[st.idx(i, j, k)]
	uS := st.u[st.idx(i+2, j, k)] + st.u[st.idx(i-2, j, k)] +
		st.u[st.idx(i, j+2, k)] + st.u[st.idx(i, j-2, k)] +
		st.u[st.idx(i, j, k+2)] + st.u[st.idx(i, j, k-2)]
	for m := 0; m < st.comp; m++ {
		st.r[st.ridx(m, i, j, k)] = CoefDT*rhoS + CoefDX*float64(m+1)*uS
	}
}

// jacPoint applies one direction's block-Jacobian (lhs setup) update at
// one interior point, with the literal statement-by-statement accumulation
// order of the source (floating-point equivalence).
func (st *handState) jacPoint(dim, i, j, k int) {
	var d float64
	switch dim {
	case 0:
		d = st.rho[st.idx(i+1, j, k)] - st.rho[st.idx(i-1, j, k)]
	case 1:
		d = st.rho[st.idx(i, j+1, k)] - st.rho[st.idx(i, j-1, k)]
	default:
		d = st.rho[st.idx(i, j, k+1)] - st.rho[st.idx(i, j, k-1)]
	}
	u := st.u[st.idx(i, j, k)]
	for m := 0; m < st.comp; m++ {
		at := st.ridx(m, i, j, k)
		for mm := 1; mm <= st.comp; mm++ {
			st.r[at] = st.r[at] + CoefJac*float64(mm)*d*u
		}
	}
}

// spdPoint computes the SP line-temporary phase at one point
// (cv(j±1) = CoefCV·u(i,j±1,k) substituted directly).
func (st *handState) spdPoint(i, j, k int) {
	st.spd[st.idx(i, j, k)] = CoefCV*st.u[st.idx(i, j-1, k)] + CoefCV*st.u[st.idx(i, j+1, k)]
}

// applyPivot applies one forward-elimination pivot of one system at p
// along dim, updating rows p+1 and p+2 but only within [writeLo,
// writeHi] (the rows this rank owns in the sweep dimension).  fac and
// pivot values may come from a received message (fp, rvals non-nil,
// indexed from the system's first component) instead of local storage.
func (st *handState) applyPivot(dim, p, a, b int, sys SweepSystem, writeLo, writeHi int, fp float64, rvals []float64) {
	i, j, k := point(dim, p, a, b)
	var f float64
	var rv []float64
	if rvals != nil {
		f = fp
		rv = rvals
	} else {
		f = st.fac(sys, i, j, k)
		rv = make([]float64, sys.Comps())
		for m := sys.Mlo; m <= sys.Mhi; m++ {
			rv[m-sys.Mlo] = st.r[st.ridx(m, i, j, k)]
		}
	}
	if p+1 >= writeLo && p+1 <= writeHi {
		i1, j1, k1 := point(dim, p+1, a, b)
		var mix float64
		if sys.Mix {
			for _, v := range rv {
				mix += v
			}
			mix *= CoefMix
		}
		for m := sys.Mlo; m <= sys.Mhi; m++ {
			st.r[st.ridx(m, i1, j1, k1)] -= f*rv[m-sys.Mlo] + mix
		}
	}
	if p+2 >= writeLo && p+2 <= writeHi {
		i2, j2, k2 := point(dim, p+2, a, b)
		for m := sys.Mlo; m <= sys.Mhi; m++ {
			st.r[st.ridx(m, i2, j2, k2)] -= CoefFw2 * rv[m-sys.Mlo]
		}
	}
}

// backSub applies one back-substitution pivot of one system at p along
// dim (rows p+1, p+2 must already hold final values, locally or via
// halo).
func (st *handState) backSub(dim, p, a, b int, sys SweepSystem) {
	i, j, k := point(dim, p, a, b)
	i1, j1, k1 := point(dim, p+1, a, b)
	i2, j2, k2 := point(dim, p+2, a, b)
	var mix float64
	if sys.Mix {
		for mm := sys.Mlo; mm <= sys.Mhi; mm++ {
			mix += st.r[st.ridx(mm, i1, j1, k1)]
		}
		mix *= CoefMix
	}
	for m := sys.Mlo; m <= sys.Mhi; m++ {
		st.r[st.ridx(m, i, j, k)] = st.r[st.ridx(m, i, j, k)] -
			CoefBk1*st.r[st.ridx(m, i1, j1, k1)] -
			CoefBk2*st.r[st.ridx(m, i2, j2, k2)] - mix
	}
}

// addPoint folds rhs back into u at one interior point.
func (st *handState) addPoint(i, j, k int, bt bool) {
	s := 0.0
	for m := 0; m < st.comp; m++ {
		s += st.r[st.ridx(m, i, j, k)]
	}
	st.u[st.idx(i, j, k)] += CoefAdd * s
}

func fmtBench(bench string) (bt bool, comp int, err error) {
	switch bench {
	case "sp":
		// SP carries NCOMP components too — its line systems are scalar
		// (diagonalized), so the components do not couple.
		return false, NCOMP, nil
	case "bt":
		return true, NCOMP, nil
	default:
		return false, 0, fmt.Errorf("nas: unknown benchmark %q", bench)
	}
}
