package nas

import (
	"testing"

	"dhpf/internal/comm"
	"dhpf/internal/spmd"
)

// TestSPAvailabilityEliminatesHalfTheSweepReads checks §7's quantitative
// claim: "This algorithm directly eliminates about half the
// communication that would otherwise arise in the main pipelined
// computations of SP."  In each forward sweep, per system, the read of
// the first updated row is covered by the previous iteration's write
// (eliminated) while the second row's read survives as a hoisted
// prefetch — exactly half of the forward-sweep rhs reads.
func TestSPAvailabilityEliminatesHalfTheSweepReads(t *testing.T) {
	prog, err := spmd.CompileSource(SPSource(16, 1, 2, 2), nil, spmd.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var eliminated, live int
	for _, an := range prog.Comm {
		for _, e := range an.Events {
			if e.Kind != comm.ReadComm || e.Ref.Name != "rhs" {
				continue
			}
			// Only the forward-sweep reads (offset +1/+2 rows on a
			// distributed dimension).
			if e.Eliminated {
				eliminated++
			} else if !e.Pipelined {
				live++
			}
		}
	}
	if eliminated == 0 || live == 0 {
		t.Fatalf("expected both eliminated and surviving rhs reads, got %d/%d", eliminated, live)
	}
	if eliminated != live {
		t.Errorf("§7 claim: eliminated %d vs surviving %d forward-sweep reads (want equal halves)",
			eliminated, live)
	}
}

// TestSPNoCommunicationForPrivatizables: the §4.1 headline on the full
// SP program — the cv line temporary generates no communication events
// at all.
func TestSPNoCommunicationForPrivatizables(t *testing.T) {
	prog, err := spmd.CompileSource(SPSource(16, 1, 2, 2), nil, spmd.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, an := range prog.Comm {
		for _, e := range an.Events {
			if e.Ref.Name == "cv" {
				t.Errorf("privatizable cv produced a communication event: %v", e)
			}
		}
	}
}

// TestSPLocalizeNoRhoCommunication: §4.2 on the full SP program — the
// LOCALIZE'd reciprocal array's boundary values move no messages.
func TestSPLocalizeNoRhoCommunication(t *testing.T) {
	prog, err := spmd.CompileSource(SPSource(16, 1, 2, 2), nil, spmd.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, an := range prog.Comm {
		for _, e := range an.Events {
			if e.Ref.Name == "rho" && !e.Eliminated {
				t.Errorf("LOCALIZE'd rho produced live communication: %v", e)
			}
		}
	}
}
