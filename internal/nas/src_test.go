package nas

import (
	"math"
	"testing"

	"dhpf/internal/mpsim"
	"dhpf/internal/parser"
	"dhpf/internal/spmd"
)

func smallMachine(p int) mpsim.Config {
	cfg := mpsim.SP2Config(p)
	return cfg
}

func TestSPSourceParses(t *testing.T) {
	src := SPSource(16, 2, 2, 2)
	if _, err := parser.Parse(src); err != nil {
		t.Fatalf("SP source does not parse: %v", err)
	}
}

func TestBTSourceParses(t *testing.T) {
	src := BTSource(16, 2, 2, 2)
	if _, err := parser.Parse(src); err != nil {
		t.Fatalf("BT source does not parse: %v", err)
	}
}

// verifyCompiled compiles and runs the source on p1*p2 ranks and checks
// the named arrays against the serial reference.  Returns the run.
func verifyCompiled(t *testing.T, src string, procs int, arrays []string) *spmd.ExecResult {
	t.Helper()
	prog, err := spmd.CompileSource(src, nil, spmd.DefaultOptions())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := prog.Execute(smallMachine(procs))
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	ref, err := spmd.RunSerial(parser.MustParse(src), nil)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	for _, name := range arrays {
		got, _, _, err := res.Global(name)
		if err != nil {
			t.Fatal(err)
		}
		want, _, _, err := ref.Array(name)
		if err != nil {
			t.Fatal(err)
		}
		var maxRel float64
		for i := range want {
			rel := math.Abs(got[i]-want[i]) / math.Max(1, math.Abs(want[i]))
			maxRel = math.Max(maxRel, rel)
		}
		if maxRel > 1e-10 {
			t.Fatalf("%s: max rel error %g vs serial", name, maxRel)
		}
	}
	return res
}

func TestSPCompiledMatchesSerial(t *testing.T) {
	src := SPSource(ClassS.N, 2, 2, 2)
	res := verifyCompiled(t, src, 4, []string{"u", "rhs"})
	if res.Machine.TotalMessages() == 0 {
		t.Error("SP on 4 ranks must communicate")
	}
}

func TestSPCompiledMatchesSerialRectGrid(t *testing.T) {
	src := SPSource(ClassS.N, 1, 1, 2)
	verifyCompiled(t, src, 2, []string{"u"})
}

func TestBTCompiledMatchesSerial(t *testing.T) {
	src := BTSource(ClassS.N, 1, 2, 2)
	res := verifyCompiled(t, src, 4, []string{"u", "r"})
	if res.Machine.TotalMessages() == 0 {
		t.Error("BT on 4 ranks must communicate")
	}
}

func TestSPWorkIsDistributed(t *testing.T) {
	src := SPSource(ClassS.N, 1, 2, 2)
	prog, err := spmd.CompileSource(src, nil, spmd.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Execute(smallMachine(4))
	if err != nil {
		t.Fatal(err)
	}
	var tot float64
	for _, f := range res.Machine.RankFlops {
		tot += f
	}
	for r, f := range res.Machine.RankFlops {
		if f < tot/16 || f > tot/2 {
			t.Errorf("rank %d flops %g of %g: unbalanced", r, f, tot)
		}
	}
}
