package nas

import (
	"testing"
)

func TestTransposeSPMatchesSerial(t *testing.T) {
	n, steps := 12, 2
	for _, procs := range []int{1, 2, 4} {
		run, err := RunTranspose("sp", n, steps, procs, smallMachine(procs))
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		ref := referenceArrays(t, SPSource(n, steps, 1, 1), "u", "rhs")
		if e := maxRelErr(run.U, ref["u"]); e > 1e-12 {
			t.Errorf("procs=%d: u max rel err %g", procs, e)
		}
		if e := maxRelErr(run.R, ref["rhs"]); e > 1e-12 {
			t.Errorf("procs=%d: rhs max rel err %g", procs, e)
		}
	}
}

func TestTransposeBTMatchesSerial(t *testing.T) {
	n, steps := 12, 1
	for _, procs := range []int{2, 3} {
		run, err := RunTranspose("bt", n, steps, procs, smallMachine(procs))
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		ref := referenceArrays(t, BTSource(n, steps, 1, 1), "u", "r")
		if e := maxRelErr(run.U, ref["u"]); e > 1e-12 {
			t.Errorf("procs=%d: u max rel err %g", procs, e)
		}
		if e := maxRelErr(run.R, ref["r"]); e > 1e-12 {
			t.Errorf("procs=%d: r max rel err %g", procs, e)
		}
	}
}

func TestTransposeMovesMoreBytesThanMultipart(t *testing.T) {
	// The transpose strategy ships O(n³/P) per step; multipartitioning
	// ships only boundary faces.  This is the structural reason the
	// paper's PGI codes trail at scale.
	n, steps, procs := 16, 1, 4
	tp, err := RunTranspose("sp", n, steps, procs, smallMachine(procs))
	if err != nil {
		t.Fatal(err)
	}
	mp, err := RunMultipart("sp", n, steps, procs, smallMachine(procs))
	if err != nil {
		t.Fatal(err)
	}
	if tp.Machine.TotalBytes() <= mp.Machine.TotalBytes() {
		t.Errorf("transpose bytes %d ≤ multipart bytes %d", tp.Machine.TotalBytes(), mp.Machine.TotalBytes())
	}
}
