// Package nas holds the paper's application workloads: structurally
// faithful reductions of the NAS SP and BT pseudo-applications (ADI
// schemes with bi-directional line sweeps over a 3-D grid) in four
// interchangeable forms:
//
//   - a mini-HPF source (the "NPB2.3-serial plus directives" the paper's
//     dHPF experiments start from), compiled by the dhpf pipeline;
//   - the serial reference semantics of that source (spmd.RunSerial);
//   - a hand-written message-passing version using diagonal
//     multipartitioning — the paper's hand-MPI baseline;
//   - a PGI-style version using a 1-D block distribution with full
//     transposes around the distributed-dimension line solve — the
//     strategy of the pghpf codes the paper compares against.
//
// The physics is simplified (SP solves one scalar field, BT couples
// NCOMP fields per point), but every structural property the paper's
// optimizations react to is preserved: reciprocal temporaries consumed
// with ±1 stencils (LOCALIZE), privatizable line temporaries (NEW),
// 2-deep halo reads, forward eliminations writing rows j+1/j+2 and
// backward substitutions reading them (wavefront pipelines + §7
// availability), and pointwise leaf routines called inside parallel
// loops (interprocedural CPs, BT only).
package nas

// Class identifies a NAS problem size.
type Class struct {
	Name  string
	N     int // grid points per dimension
	Steps int // time steps the benchmark runs
}

// The paper's classes plus two reduced sizes for direct simulation.
var (
	ClassS = Class{Name: "S", N: 12, Steps: 2}
	ClassW = Class{Name: "W", N: 24, Steps: 2}
	ClassA = Class{Name: "A", N: 64, Steps: 400}
	ClassB = Class{Name: "B", N: 102, Steps: 400}
)

// NCOMP is the number of coupled components per grid point in BT
// (block size of the block-tridiagonal systems; 5 in NAS).
const NCOMP = 5

// Coefficients shared by every implementation of the simplified solver.
// They are small enough that a few hundred steps stay numerically tame.
const (
	CoefDT   = 0.015 // reciprocal-stencil weight in compute_rhs
	CoefDX   = 0.002 // 2-deep dissipation weight in compute_rhs
	CoefCV   = 0.5   // privatizable line-temp weight (lhsy phase)
	CoefSPD  = 0.05  // spd contribution to the sweep pivot
	CoefFw2  = 0.04  // second-row forward-elimination factor
	CoefBk1  = 0.06  // first back-substitution factor
	CoefBk2  = 0.03  // second back-substitution factor
	CoefAdd  = 0.1   // u += CoefAdd * rhs
	CoefFac  = 0.08  // system-1 forward factor: CoefFac/u + CoefSPD·spd
	CoefFac2 = 0.07  // system-2 forward factor: CoefFac2/u (the ±c characteristics)
	CoefMix  = 0.02  // BT cross-component coupling weight
	CoefJac  = 0.002 // BT block-Jacobian (lhs setup) weight
)

// GridShape picks the 2-D processor grid the HPF codes use for P ranks:
// as square as possible (the paper uses square counts 4, 9, 16, 25 and
// rectangular 2, 8, 32).
func GridShape(p int) (p1, p2 int) {
	best1 := 1
	for d := 1; d*d <= p; d++ {
		if p%d == 0 {
			best1 = d
		}
	}
	return best1, p / best1
}
