package nas

import (
	"fmt"
	"sync"

	"dhpf/internal/hpf"
	"dhpf/internal/ir"
	"dhpf/internal/mpsim"
	"dhpf/internal/parser"
	"dhpf/internal/spmd"
)

// LURun is the result of the hand-coded 2-D pipelined LU run.
type LURun struct {
	Machine *mpsim.Result
	N       int
	U, V    []float64
}

// RunLU2D executes the hand-written message-passing version of the LU
// extension: a p1×p2 block decomposition over (j,k) with the NPB-LU
// communication pattern — the lower-triangular sweep receives its north
// and west boundary planes, computes its block, and forwards south and
// east; the upper-triangular sweep runs the same wavefront in reverse.
// This is the explicitly-parallel baseline for the 2-D diagonal
// wavefronts the dhpf compiler pipelines automatically.
func RunLU2D(n, steps, p1, p2 int, cfg mpsim.Config) (*LURun, error) {
	if p1 <= 0 || p2 <= 0 {
		return nil, fmt.Errorf("nas: bad LU grid %dx%d", p1, p2)
	}
	w := luWeights()
	procs := p1 * p2
	blkJ := hpf.DefaultBlockSize(n, p1)
	blkK := hpf.DefaultBlockSize(n, p2)
	jr := func(pj int) (int, int) { return pj * blkJ, min(pj*blkJ+blkJ-1, n-1) }
	kr := func(pk int) (int, int) { return pk * blkK, min(pk*blkK+blkK-1, n-1) }

	states := make([]*handState, procs)
	var mu sync.Mutex
	var runErr error
	cfg.Procs = procs
	res := mpsim.Run(cfg, func(rk *mpsim.Rank) {
		defer func() {
			if rec := recover(); rec != nil {
				mu.Lock()
				if runErr == nil {
					runErr = rankPanicErr(rec, "lu2d", rk.ID)
				}
				mu.Unlock()
			}
		}()
		st := newHandState(n, 1, false)
		mu.Lock()
		states[rk.ID] = st
		mu.Unlock()
		d := &luDriver{rk: rk, st: st, w: w, p1: p1, p2: p2, jr: jr, kr: kr}
		d.run(steps)
	})
	if runErr != nil {
		return nil, runErr
	}

	out := &LURun{Machine: res, N: n}
	out.U = make([]float64, n*n*n)
	out.V = make([]float64, n*n*n)
	for rank := 0; rank < procs; rank++ {
		st := states[rank]
		jlo, jhi := jr(rank / p2)
		klo, khi := kr(rank % p2)
		for i := 0; i < n; i++ {
			for j := jlo; j <= jhi; j++ {
				for k := klo; k <= khi; k++ {
					out.U[st.idx(i, j, k)] = st.u[st.idx(i, j, k)]
					out.V[st.idx(i, j, k)] = st.r[st.ridx(0, i, j, k)]
				}
			}
		}
	}
	return out, nil
}

// luWeights extracts the LU phase flop weights from the mini-HPF source
// (main statement order: u, v, rho inits; rho; stencil; blts; buts; add).
func luWeights() FlopWeights {
	prog := parser.MustParse(LUSource(8, 1, 1, 1))
	var fl []float64
	ir.Walk(prog.Main().Body, func(s ir.Stmt, _ []*ir.Loop) bool {
		if a, ok := s.(*ir.Assign); ok {
			fl = append(fl, spmd.StaticFlops(a))
		}
		return true
	})
	return FlopWeights{
		Init:    fl[0] + fl[1] + fl[2],
		Rho:     fl[3],
		Stencil: fl[4],
		Fwd:     fl[5],
		Bwd:     fl[6],
		Add:     fl[7],
	}
}

type luDriver struct {
	rk     *mpsim.Rank
	st     *handState
	w      FlopWeights
	p1, p2 int
	jr, kr func(int) (int, int)
	tag    int
}

func (d *luDriver) coords() (int, int)  { return d.rk.ID / d.p2, d.rk.ID % d.p2 }
func (d *luDriver) rank(pj, pk int) int { return pj*d.p2 + pk }
func (d *luDriver) nextTag() int        { d.tag++; return d.tag }

// lower applies the blts update at one point (must match LUSource).
func (st *handState) luLower(i, j, k int) {
	st.r[st.ridx(0, i, j, k)] += (CoefFac/st.u[st.idx(i, j, k)])*st.r[st.ridx(0, i, j-1, k)] +
		CoefFw2*st.r[st.ridx(0, i, j, k-1)]
}

// upper applies the buts update at one point.
func (st *handState) luUpper(i, j, k int) {
	st.r[st.ridx(0, i, j, k)] += CoefBk1*st.r[st.ridx(0, i, j+1, k)] +
		CoefBk2*st.r[st.ridx(0, i, j, k+1)]
}

func (d *luDriver) run(steps int) {
	st, n := d.st, d.st.n
	pj, pk := d.coords()
	jlo, jhi := d.jr(pj)
	klo, khi := d.kr(pk)

	// Init the block plus a one-deep halo.
	for i := 0; i < n; i++ {
		for j := max(0, jlo-1); j <= min(n-1, jhi+1); j++ {
			for k := max(0, klo-1); k <= min(n-1, khi+1); k++ {
				st.initPoint(i, j, k)
			}
		}
	}
	d.rk.ComputeLabeled(d.w.Init*float64(n*(jhi-jlo+1)*(khi-klo+1)), "init")

	for s := 0; s < steps; s++ {
		d.haloU(jlo, jhi, klo, khi)
		d.rhsPhase(jlo, jhi, klo, khi)
		d.sweep(jlo, jhi, klo, khi, false)
		d.sweep(jlo, jhi, klo, khi, true)
		d.addPhase(jlo, jhi, klo, khi)
	}
}

// haloU exchanges one u plane with each of the 4 block neighbours.
func (d *luDriver) haloU(jlo, jhi, klo, khi int) {
	st, n := d.st, d.st.n
	pj, pk := d.coords()
	type dir struct {
		dj, dk       int
		sendJ, sendK [2]int // my boundary plane (j-range, k-range)
		recvJ, recvK [2]int // the halo plane I receive
	}
	dirs := []dir{
		{dj: +1, sendJ: [2]int{jhi, jhi}, sendK: [2]int{klo, khi}, recvJ: [2]int{jlo - 1, jlo - 1}, recvK: [2]int{klo, khi}},
		{dj: -1, sendJ: [2]int{jlo, jlo}, sendK: [2]int{klo, khi}, recvJ: [2]int{jhi + 1, jhi + 1}, recvK: [2]int{klo, khi}},
		{dk: +1, sendJ: [2]int{jlo, jhi}, sendK: [2]int{khi, khi}, recvJ: [2]int{jlo, jhi}, recvK: [2]int{klo - 1, klo - 1}},
		{dk: -1, sendJ: [2]int{jlo, jhi}, sendK: [2]int{klo, klo}, recvJ: [2]int{jlo, jhi}, recvK: [2]int{khi + 1, khi + 1}},
	}
	for _, dd := range dirs {
		tag := d.nextTag()
		tj, tk := pj+dd.dj, pk+dd.dk
		if tj >= 0 && tj < d.p1 && tk >= 0 && tk < d.p2 {
			var payload []float64
			for i := 0; i < n; i++ {
				for j := dd.sendJ[0]; j <= dd.sendJ[1]; j++ {
					for k := dd.sendK[0]; k <= dd.sendK[1]; k++ {
						payload = append(payload, st.u[st.idx(i, j, k)])
					}
				}
			}
			d.rk.Send(d.rank(tj, tk), tag, payload)
		}
		fj, fk := pj-dd.dj, pk-dd.dk
		if fj >= 0 && fj < d.p1 && fk >= 0 && fk < d.p2 {
			data := d.rk.Recv(d.rank(fj, fk), tag)
			at := 0
			for i := 0; i < n; i++ {
				for j := dd.recvJ[0]; j <= dd.recvJ[1]; j++ {
					for k := dd.recvK[0]; k <= dd.recvK[1]; k++ {
						st.u[st.idx(i, j, k)] = data[at]
						at++
					}
				}
			}
		}
	}
}

func (d *luDriver) rhsPhase(jlo, jhi, klo, khi int) {
	st, n := d.st, d.st.n
	var rhoPts, stPts float64
	for i := 0; i < n; i++ {
		for j := max(0, jlo-1); j <= min(n-1, jhi+1); j++ {
			for k := max(0, klo-1); k <= min(n-1, khi+1); k++ {
				st.rhoPoint(i, j, k)
				rhoPts++
			}
		}
	}
	for i := 1; i <= n-2; i++ {
		for j := max(1, jlo); j <= min(n-2, jhi); j++ {
			for k := max(1, klo); k <= min(n-2, khi); k++ {
				rhoS := st.rho[st.idx(i+1, j, k)] + st.rho[st.idx(i-1, j, k)] +
					st.rho[st.idx(i, j+1, k)] + st.rho[st.idx(i, j-1, k)] +
					st.rho[st.idx(i, j, k+1)] + st.rho[st.idx(i, j, k-1)] -
					6.0*st.rho[st.idx(i, j, k)]
				st.r[st.ridx(0, i, j, k)] = CoefDT * rhoS
				stPts++
			}
		}
	}
	d.rk.ComputeLabeled(d.w.Rho*rhoPts+d.w.Stencil*stPts, "rhs")
}

// sweep runs blts (upper=false) or buts (upper=true): the 2-D block
// wavefront — receive the inbound boundary planes, compute the block,
// forward the outbound planes.
func (d *luDriver) sweep(jlo, jhi, klo, khi int, upper bool) {
	st, n := d.st, d.st.n
	pj, pk := d.coords()
	label := "blts"
	dirJ, dirK := -1, -1 // where inbound data comes from (lower sweep: north/west)
	if upper {
		label = "buts"
		dirJ, dirK = +1, +1
	}
	cjlo, cjhi := max(1, jlo), min(n-2, jhi)
	cklo, ckhi := max(1, klo), min(n-2, khi)

	// Inbound planes.
	tagJ := d.nextTag()
	tagK := d.nextTag()
	if fj := pj + dirJ; fj >= 0 && fj < d.p1 {
		row := jlo - 1
		if upper {
			row = jhi + 1
		}
		if row >= 0 && row < n {
			data := d.rk.Recv(d.rank(fj, pk), tagJ)
			at := 0
			for i := 1; i <= n-2; i++ {
				for k := cklo; k <= ckhi; k++ {
					st.r[st.ridx(0, i, row, k)] = data[at]
					at++
				}
			}
		}
	}
	if fk := pk + dirK; fk >= 0 && fk < d.p2 {
		col := klo - 1
		if upper {
			col = khi + 1
		}
		if col >= 0 && col < n {
			data := d.rk.Recv(d.rank(pj, fk), tagK)
			at := 0
			for i := 1; i <= n-2; i++ {
				for j := cjlo; j <= cjhi; j++ {
					st.r[st.ridx(0, i, j, col)] = data[at]
					at++
				}
			}
		}
	}

	// Compute the block in sweep order.
	var pts float64
	if !upper {
		for j := cjlo; j <= cjhi; j++ {
			for k := cklo; k <= ckhi; k++ {
				for i := 1; i <= n-2; i++ {
					st.luLower(i, j, k)
					pts++
				}
			}
		}
	} else {
		for j := cjhi; j >= cjlo; j-- {
			for k := ckhi; k >= cklo; k-- {
				for i := 1; i <= n-2; i++ {
					st.luUpper(i, j, k)
					pts++
				}
			}
		}
	}
	wgt := d.w.Fwd
	if upper {
		wgt = d.w.Bwd
	}
	d.rk.ComputeLabeled(wgt*pts, label)

	// Outbound planes (my last computed row/column in sweep direction).
	if tj := pj - dirJ; tj >= 0 && tj < d.p1 {
		row := cjhi
		if upper {
			row = cjlo
		}
		var payload []float64
		for i := 1; i <= n-2; i++ {
			for k := cklo; k <= ckhi; k++ {
				payload = append(payload, st.r[st.ridx(0, i, row, k)])
			}
		}
		d.rk.Send(d.rank(tj, pk), tagJ, payload)
	}
	if tk := pk - dirK; tk >= 0 && tk < d.p2 {
		col := ckhi
		if upper {
			col = cklo
		}
		var payload []float64
		for i := 1; i <= n-2; i++ {
			for j := cjlo; j <= cjhi; j++ {
				payload = append(payload, st.r[st.ridx(0, i, j, col)])
			}
		}
		d.rk.Send(d.rank(pj, tk), tagK, payload)
	}
}

func (d *luDriver) addPhase(jlo, jhi, klo, khi int) {
	st, n := d.st, d.st.n
	var pts float64
	for i := 1; i <= n-2; i++ {
		for j := max(1, jlo); j <= min(n-2, jhi); j++ {
			for k := max(1, klo); k <= min(n-2, khi); k++ {
				st.u[st.idx(i, j, k)] += CoefAdd * st.r[st.ridx(0, i, j, k)]
				pts++
			}
		}
	}
	d.rk.ComputeLabeled(d.w.Add*pts, "add")
}
