package nas

import "fmt"

// SPModSource is the modular form of SPSource: the same simplified SP
// solver split into the benchmark's real subroutine structure (init,
// compute_rhs, lhs setup, the three sweep phases and add), with main
// reduced to the time-step loop calling them on whole-array arguments.
// The phases are word-for-word the loops of SPSource, so the compiled
// communication structure matches; only the interprocedural CP
// translation (§6) has more work to do.
//
// The split is what makes the program interesting to the incremental
// compiler: editing one phase (the canonical warm-edit benchmark edits
// the CoefAdd constant inside add) leaves every other phase's per-unit
// fingerprint unchanged, so their dependence graphs, communication plans
// and verification fragments all thaw from the artifact store and only
// add — plus main, whose environment embeds its callees — recompiles.
func SPModSource(n, steps, p1, p2 int) string {
	return fmt.Sprintf(`
program spmod
param N = %d
param STEPS = %d
param P1 = %d
param P2 = %d

!hpf$ processors procs(P1, P2)
!hpf$ template tm(N, N, N)
!hpf$ align u with tm(d0, d1, d2)
!hpf$ align rho with tm(d0, d1, d2)
!hpf$ align rhs with tm(*, d0, d1, d2)
!hpf$ align spd with tm(d0, d1, d2)
!hpf$ distribute tm(*, BLOCK, BLOCK) onto procs

! initialization (owner-computes everywhere, no communication)
subroutine init(u, rho, spd, rhs)
  real u(0:N-1, 0:N-1, 0:N-1)
  real rho(0:N-1, 0:N-1, 0:N-1)
  real spd(0:N-1, 0:N-1, 0:N-1)
  real rhs(1:5, 0:N-1, 0:N-1, 0:N-1)
  do k = 0, N-1
    do j = 0, N-1
      do i = 0, N-1
        u(i,j,k) = 1.0 + 0.001*i + 0.002*j + 0.003*k
        rho(i,j,k) = 0.0
        spd(i,j,k) = 0.0
        do m = 1, 5
          rhs(m,i,j,k) = 0.0
        enddo
      enddo
    enddo
  enddo
end

! compute_rhs: reciprocals partially replicated (LOCALIZE)
subroutine compute_rhs(u, rho, rhs)
  real u(0:N-1, 0:N-1, 0:N-1)
  real rho(0:N-1, 0:N-1, 0:N-1)
  real rhs(1:5, 0:N-1, 0:N-1, 0:N-1)
  !hpf$ independent, localize(rho)
  do onetrip = 1, 1
    do k = 0, N-1
      do j = 0, N-1
        do i = 0, N-1
          rho(i,j,k) = 1.0 / u(i,j,k)
        enddo
      enddo
    enddo
    do k = 2, N-3
      do j = 2, N-3
        do i = 2, N-3
          do m = 1, 5
            rhs(m,i,j,k) = %g*(rho(i+1,j,k) + rho(i-1,j,k) + rho(i,j+1,k) + rho(i,j-1,k) + rho(i,j,k+1) + rho(i,j,k-1) - 6.0*rho(i,j,k)) + %g*m*(u(i+2,j,k) + u(i-2,j,k) + u(i,j+2,k) + u(i,j-2,k) + u(i,j,k+2) + u(i,j,k-2))
          enddo
        enddo
      enddo
    enddo
  enddo
end

! lhs setup: privatizable line temporary (NEW), as in lhsy
subroutine lhs(u, spd)
  real u(0:N-1, 0:N-1, 0:N-1)
  real spd(0:N-1, 0:N-1, 0:N-1)
  real cv(0:N-1)
  do k = 0, N-1
    !hpf$ independent, new(cv)
    do i = 0, N-1
      do j = 0, N-1
        cv(j) = %g * u(i,j,k)
      enddo
      do j = 1, N-2
        spd(i,j,k) = cv(j-1) + cv(j+1)
      enddo
    enddo
  enddo
end

! x_solve: bi-directional sweeps along the undistributed dimension.
! Like the real (diagonalized ADI) SP, each direction solves three
! pentadiagonal systems: the scalar system for the first three
! components, and the u+c / u-c acoustic systems for the last two.
subroutine x_solve(u, spd, rhs)
  real u(0:N-1, 0:N-1, 0:N-1)
  real spd(0:N-1, 0:N-1, 0:N-1)
  real rhs(1:5, 0:N-1, 0:N-1, 0:N-1)
  do k = 1, N-2
    do j = 1, N-2
      do i = 1, N-4
        do m = 1, 3
          rhs(m,i+1,j,k) = rhs(m,i+1,j,k) - (%g/u(i,j,k))*rhs(m,i,j,k)
          rhs(m,i+1,j,k) = rhs(m,i+1,j,k) - (%g*spd(i,j,k))*rhs(m,i,j,k)
          rhs(m,i+2,j,k) = rhs(m,i+2,j,k) - %g*rhs(m,i,j,k)
        enddo
      enddo
      do i = 1, N-4
        do m = 4, 4
          rhs(m,i+1,j,k) = rhs(m,i+1,j,k) - (%g/(u(i,j,k) + spd(i,j,k)))*rhs(m,i,j,k)
          rhs(m,i+1,j,k) = rhs(m,i+1,j,k) - (%g*spd(i,j,k))*rhs(m,i,j,k)
          rhs(m,i+2,j,k) = rhs(m,i+2,j,k) - (%g*spd(i+1,j,k))*rhs(m,i,j,k)
        enddo
      enddo
      do i = 1, N-4
        do m = 5, 5
          rhs(m,i+1,j,k) = rhs(m,i+1,j,k) - (%g/(u(i,j,k) - spd(i,j,k)))*rhs(m,i,j,k)
          rhs(m,i+1,j,k) = rhs(m,i+1,j,k) - (%g*spd(i,j,k))*rhs(m,i,j,k)
          rhs(m,i+2,j,k) = rhs(m,i+2,j,k) - (%g*spd(i+1,j,k))*rhs(m,i,j,k)
        enddo
      enddo
      do i = N-4, 1, -1
        do m = 1, 3
          rhs(m,i,j,k) = rhs(m,i,j,k) - %g*rhs(m,i+1,j,k)
          rhs(m,i,j,k) = rhs(m,i,j,k) - %g*rhs(m,i+2,j,k)
        enddo
      enddo
      do i = N-4, 1, -1
        do m = 4, 5
          rhs(m,i,j,k) = rhs(m,i,j,k) - (%g*spd(i,j,k))*rhs(m,i+1,j,k)
          rhs(m,i,j,k) = rhs(m,i,j,k) - %g*rhs(m,i+2,j,k)
        enddo
      enddo
    enddo
  enddo
end

! y_solve: wavefronts along the first distributed dimension, again with
! the scalar and two acoustic systems of diagonalized ADI
subroutine y_solve(u, spd, rhs)
  real u(0:N-1, 0:N-1, 0:N-1)
  real spd(0:N-1, 0:N-1, 0:N-1)
  real rhs(1:5, 0:N-1, 0:N-1, 0:N-1)
  do j = 1, N-4
    do k = 1, N-2
      do i = 1, N-2
        do m = 1, 3
          rhs(m,i,j+1,k) = rhs(m,i,j+1,k) - (%g/u(i,j,k))*rhs(m,i,j,k)
          rhs(m,i,j+1,k) = rhs(m,i,j+1,k) - (%g*spd(i,j,k))*rhs(m,i,j,k)
          rhs(m,i,j+2,k) = rhs(m,i,j+2,k) - %g*rhs(m,i,j,k)
        enddo
      enddo
    enddo
  enddo
  do j = 1, N-4
    do k = 1, N-2
      do i = 1, N-2
        do m = 4, 4
          rhs(m,i,j+1,k) = rhs(m,i,j+1,k) - (%g/(u(i,j,k) + spd(i,j,k)))*rhs(m,i,j,k)
          rhs(m,i,j+1,k) = rhs(m,i,j+1,k) - (%g*spd(i,j,k))*rhs(m,i,j,k)
          rhs(m,i,j+2,k) = rhs(m,i,j+2,k) - (%g*spd(i,j+1,k))*rhs(m,i,j,k)
        enddo
      enddo
    enddo
  enddo
  do j = 1, N-4
    do k = 1, N-2
      do i = 1, N-2
        do m = 5, 5
          rhs(m,i,j+1,k) = rhs(m,i,j+1,k) - (%g/(u(i,j,k) - spd(i,j,k)))*rhs(m,i,j,k)
          rhs(m,i,j+1,k) = rhs(m,i,j+1,k) - (%g*spd(i,j,k))*rhs(m,i,j,k)
          rhs(m,i,j+2,k) = rhs(m,i,j+2,k) - (%g*spd(i,j+1,k))*rhs(m,i,j,k)
        enddo
      enddo
    enddo
  enddo
  do j = N-4, 1, -1
    do k = 1, N-2
      do i = 1, N-2
        do m = 1, 3
          rhs(m,i,j,k) = rhs(m,i,j,k) - %g*rhs(m,i,j+1,k)
          rhs(m,i,j,k) = rhs(m,i,j,k) - %g*rhs(m,i,j+2,k)
        enddo
      enddo
    enddo
  enddo
  do j = N-4, 1, -1
    do k = 1, N-2
      do i = 1, N-2
        do m = 4, 5
          rhs(m,i,j,k) = rhs(m,i,j,k) - (%g*spd(i,j,k))*rhs(m,i,j+1,k)
          rhs(m,i,j,k) = rhs(m,i,j,k) - %g*rhs(m,i,j+2,k)
        enddo
      enddo
    enddo
  enddo
end

! z_solve: wavefronts along the second distributed dimension, same
! three-system structure
subroutine z_solve(u, spd, rhs)
  real u(0:N-1, 0:N-1, 0:N-1)
  real spd(0:N-1, 0:N-1, 0:N-1)
  real rhs(1:5, 0:N-1, 0:N-1, 0:N-1)
  do k = 1, N-4
    do j = 1, N-2
      do i = 1, N-2
        do m = 1, 3
          rhs(m,i,j,k+1) = rhs(m,i,j,k+1) - (%g/u(i,j,k))*rhs(m,i,j,k)
          rhs(m,i,j,k+1) = rhs(m,i,j,k+1) - (%g*spd(i,j,k))*rhs(m,i,j,k)
          rhs(m,i,j,k+2) = rhs(m,i,j,k+2) - %g*rhs(m,i,j,k)
        enddo
      enddo
    enddo
  enddo
  do k = 1, N-4
    do j = 1, N-2
      do i = 1, N-2
        do m = 4, 4
          rhs(m,i,j,k+1) = rhs(m,i,j,k+1) - (%g/(u(i,j,k) + spd(i,j,k)))*rhs(m,i,j,k)
          rhs(m,i,j,k+1) = rhs(m,i,j,k+1) - (%g*spd(i,j,k))*rhs(m,i,j,k)
          rhs(m,i,j,k+2) = rhs(m,i,j,k+2) - (%g*spd(i,j,k+1))*rhs(m,i,j,k)
        enddo
      enddo
    enddo
  enddo
  do k = 1, N-4
    do j = 1, N-2
      do i = 1, N-2
        do m = 5, 5
          rhs(m,i,j,k+1) = rhs(m,i,j,k+1) - (%g/(u(i,j,k) - spd(i,j,k)))*rhs(m,i,j,k)
          rhs(m,i,j,k+1) = rhs(m,i,j,k+1) - (%g*spd(i,j,k))*rhs(m,i,j,k)
          rhs(m,i,j,k+2) = rhs(m,i,j,k+2) - (%g*spd(i,j,k+1))*rhs(m,i,j,k)
        enddo
      enddo
    enddo
  enddo
  do k = N-4, 1, -1
    do j = 1, N-2
      do i = 1, N-2
        do m = 1, 3
          rhs(m,i,j,k) = rhs(m,i,j,k) - %g*rhs(m,i,j,k+1)
          rhs(m,i,j,k) = rhs(m,i,j,k) - %g*rhs(m,i,j,k+2)
        enddo
      enddo
    enddo
  enddo
  do k = N-4, 1, -1
    do j = 1, N-2
      do i = 1, N-2
        do m = 4, 5
          rhs(m,i,j,k) = rhs(m,i,j,k) - (%g*spd(i,j,k))*rhs(m,i,j,k+1)
          rhs(m,i,j,k) = rhs(m,i,j,k) - %g*rhs(m,i,j,k+2)
        enddo
      enddo
    enddo
  enddo
end

! add: the warm-edit target — one statement, one constant
subroutine add(u, rhs)
  real u(0:N-1, 0:N-1, 0:N-1)
  real rhs(1:5, 0:N-1, 0:N-1, 0:N-1)
  do k = 2, N-3
    do j = 2, N-3
      do i = 2, N-3
        u(i,j,k) = u(i,j,k) + %g*(rhs(1,i,j,k) + rhs(2,i,j,k) + rhs(3,i,j,k) + rhs(4,i,j,k) + rhs(5,i,j,k))
      enddo
    enddo
  enddo
end

subroutine main()
  real u(0:N-1, 0:N-1, 0:N-1)
  real rho(0:N-1, 0:N-1, 0:N-1)
  real rhs(1:5, 0:N-1, 0:N-1, 0:N-1)
  real spd(0:N-1, 0:N-1, 0:N-1)

  call init(u, rho, spd, rhs)
  do step = 1, STEPS
    call compute_rhs(u, rho, rhs)
    call lhs(u, spd)
    call x_solve(u, spd, rhs)
    call y_solve(u, spd, rhs)
    call z_solve(u, spd, rhs)
    call add(u, rhs)
  enddo
end
`, n, steps, p1, p2,
		CoefDT, CoefDX,
		CoefCV,
		CoefFac, CoefSPD, CoefFw2, CoefFac2, CoefSPD, CoefFw2, CoefFac2, CoefSPD, CoefFw2, CoefBk1, CoefBk2, CoefBk1, CoefBk2,
		CoefFac, CoefSPD, CoefFw2, CoefFac2, CoefSPD, CoefFw2, CoefFac2, CoefSPD, CoefFw2, CoefBk1, CoefBk2, CoefBk1, CoefBk2,
		CoefFac, CoefSPD, CoefFw2, CoefFac2, CoefSPD, CoefFw2, CoefFac2, CoefSPD, CoefFw2, CoefBk1, CoefBk2, CoefBk1, CoefBk2,
		CoefAdd)
}
