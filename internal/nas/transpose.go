package nas

import (
	"fmt"
	"sync"

	"dhpf/internal/hpf"
	"dhpf/internal/mpsim"
)

// TransposeRun is the result of a PGI-style run.
type TransposeRun struct {
	Machine *mpsim.Result
	N       int
	U, R    []float64
}

// RunTranspose executes the PGI-style implementation the paper describes
// for the pghpf codes (§8.1): a 1-D block distribution of the principal
// arrays along the z dimension for every phase except the z line solve;
// before that solve the needed arrays are copied (fully transposed) into
// variables distributed along y, the z sweeps run locally, and the
// results are transposed back.
func RunTranspose(bench string, n, steps, procs int, cfg mpsim.Config) (*TransposeRun, error) {
	bt, comp, err := fmtBench(bench)
	if err != nil {
		return nil, err
	}
	if procs > n {
		return nil, fmt.Errorf("nas: transpose version needs procs ≤ n")
	}
	var w FlopWeights
	if bt {
		w = weightsFrom(BTSource(8, 1, 1, 1), true)
	} else {
		w = weightsFrom(SPSource(8, 1, 1, 1), false)
	}

	blk := hpf.DefaultBlockSize(n, procs)
	lohi := func(rank int) (int, int) {
		lo := rank * blk
		hi := min(lo+blk-1, n-1)
		return lo, hi
	}

	states := make([]*handState, procs)
	var mu sync.Mutex
	var runErr error
	cfg.Procs = procs
	res := mpsim.Run(cfg, func(rk *mpsim.Rank) {
		defer func() {
			if rec := recover(); rec != nil {
				mu.Lock()
				if runErr == nil {
					runErr = rankPanicErr(rec, "transpose", rk.ID)
				}
				mu.Unlock()
			}
		}()
		st := newHandState(n, comp, !bt)
		mu.Lock()
		states[rk.ID] = st
		mu.Unlock()
		d := &tpDriver{rk: rk, st: st, bt: bt, systems: SweepSystems(bench), w: w, procs: procs, lohi: lohi}
		d.run(steps)
	})
	if runErr != nil {
		return nil, runErr
	}

	out := &TransposeRun{Machine: res, N: n}
	out.U = make([]float64, n*n*n)
	out.R = make([]float64, comp*n*n*n)
	for rank := 0; rank < procs; rank++ {
		st := states[rank]
		klo, khi := lohi(rank)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				for k := klo; k <= khi; k++ {
					out.U[st.idx(i, j, k)] = st.u[st.idx(i, j, k)]
					for m := 0; m < comp; m++ {
						out.R[st.ridx(m, i, j, k)] = st.r[st.ridx(m, i, j, k)]
					}
				}
			}
		}
	}
	return out, nil
}

type tpDriver struct {
	rk      *mpsim.Rank
	st      *handState
	bt      bool
	systems []SweepSystem
	w       FlopWeights
	procs   int
	lohi    func(int) (int, int)
	tag     int
}

func (d *tpDriver) nextTag() int { d.tag++; return d.tag }

func (d *tpDriver) run(steps int) {
	st, n := d.st, d.st.n
	klo, khi := d.lohi(d.rk.ID)
	// Initialize the slab plus a 2-deep k halo.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := max(0, klo-2); k <= min(n-1, khi+2); k++ {
				st.initPoint(i, j, k)
			}
		}
	}
	slabPts := float64(n * n * (khi - klo + 1))
	d.rk.ComputeLabeled(d.w.Init*slabPts, "init")

	for s := 0; s < steps; s++ {
		d.haloExchange(klo, khi)
		d.computeRHS(klo, khi)
		if d.bt {
			d.jacPhase(klo, khi)
		} else {
			d.spdPhase(klo, khi)
		}
		// x and y sweeps: fully local for a z-distributution.
		d.localSweeps(0, klo, khi, "x_solve")
		d.localSweeps(1, klo, khi, "y_solve")
		// z sweeps: transpose to a y-distribution, solve, transpose back.
		d.zSolveWithTranspose(klo, khi)
		d.addPhase(klo, khi)
	}
}

// haloExchange ships 2 k-planes of u to each z neighbour.
func (d *tpDriver) haloExchange(klo, khi int) {
	st, n := d.st, d.st.n
	me := d.rk.ID
	for _, dir := range []int{+1, -1} {
		peer := me + dir
		tag := d.nextTag()
		if peer >= 0 && peer < d.procs {
			var rows [2]int
			if dir > 0 {
				rows = [2]int{khi - 1, khi}
			} else {
				rows = [2]int{klo, klo + 1}
			}
			payload := make([]float64, 0, 2*n*n)
			for _, k := range rows[:] {
				if k < 0 || k >= n {
					continue
				}
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						payload = append(payload, st.u[st.idx(i, j, k)])
					}
				}
			}
			d.rk.Send(peer, tag, payload)
		}
		// Receive from the opposite neighbour with the same tag position.
		from := me - dir
		if from >= 0 && from < d.procs {
			data := d.rk.Recv(from, tag)
			flo, fhi := d.lohi(from)
			var rows [2]int
			if dir > 0 {
				rows = [2]int{fhi - 1, fhi}
			} else {
				rows = [2]int{flo, flo + 1}
			}
			at := 0
			for _, k := range rows[:] {
				if k < 0 || k >= n {
					continue
				}
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						st.u[st.idx(i, j, k)] = data[at]
						at++
					}
				}
			}
		}
	}
}

func (d *tpDriver) computeRHS(klo, khi int) {
	st, n := d.st, d.st.n
	var rhoPts, stPts float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := max(0, klo-1); k <= min(n-1, khi+1); k++ {
				st.rhoPoint(i, j, k)
				rhoPts++
			}
		}
	}
	for i := 2; i <= n-3; i++ {
		for j := 2; j <= n-3; j++ {
			for k := max(2, klo); k <= min(n-3, khi); k++ {
				st.stencilPoint(i, j, k, d.bt)
				stPts++
			}
		}
	}
	mul := float64(st.comp)
	d.rk.ComputeLabeled(d.w.Rho*rhoPts+d.w.Stencil*stPts*mul, "compute_rhs")
}

// jacPhase runs BT's block-Jacobian setup on the slab.
func (d *tpDriver) jacPhase(klo, khi int) {
	st, n := d.st, d.st.n
	var pts float64
	for dim := 0; dim < 3; dim++ {
		for i := 1; i <= n-2; i++ {
			for j := 1; j <= n-2; j++ {
				for k := max(1, klo); k <= min(n-2, khi); k++ {
					st.jacPoint(dim, i, j, k)
					pts++
				}
			}
		}
	}
	c := float64(st.comp)
	d.rk.ComputeLabeled(d.w.Jac*pts*c*c, "lhs")
}

func (d *tpDriver) spdPhase(klo, khi int) {
	st, n := d.st, d.st.n
	var pts float64
	for i := 0; i < n; i++ {
		for j := 1; j <= n-2; j++ {
			for k := klo; k <= khi; k++ {
				st.spdPoint(i, j, k)
				pts++
			}
		}
	}
	d.rk.ComputeLabeled((d.w.Cv+d.w.Spd)*pts, "lhs")
}

// localSweeps performs the forward+backward sweeps along dim (0 or 1),
// which are fully local under the z distribution.
func (d *tpDriver) localSweeps(dim int, klo, khi int, label string) {
	st, n := d.st, d.st.n
	plo, phi := 1, n-4
	blo, bhi := max(klo, 1), min(khi, n-2)
	for _, sys := range d.systems {
		var pts float64
		for p := plo; p <= phi; p++ {
			for a := 1; a <= n-2; a++ {
				for b := blo; b <= bhi; b++ {
					st.applyPivot(dim, p, a, b, sys, 0, n-1, 0, nil)
					pts++
				}
			}
		}
		d.rk.ComputeLabeled(d.w.Fwd*pts*float64(sys.Comps()), label)
	}
	for _, sys := range d.systems {
		var pts float64
		for p := phi; p >= plo; p-- {
			for a := 1; a <= n-2; a++ {
				for b := blo; b <= bhi; b++ {
					st.backSub(dim, p, a, b, sys)
					pts++
				}
			}
		}
		d.rk.ComputeLabeled(d.w.Bwd*pts*float64(sys.Comps()), label)
	}
}

// zSolveWithTranspose redistributes u, spd and r to a y-block layout,
// runs the z sweeps locally, and transposes r back.
func (d *tpDriver) zSolveWithTranspose(klo, khi int) {
	st, n := d.st, d.st.n
	me := d.rk.ID
	jlo, jhi := d.lohi(me)

	// Forward transpose: peer p gets my k rows restricted to p's j rows.
	arrays := []([]float64){st.u, st.r}
	if st.spd != nil {
		arrays = []([]float64){st.u, st.spd, st.r}
	}
	base := d.tag + 1
	d.tag += d.procs
	for peer := 0; peer < d.procs; peer++ {
		if peer == me {
			continue
		}
		pjlo, pjhi := d.lohi(peer)
		payload := d.pack(arrays, 0, n-1, pjlo, pjhi, klo, khi)
		d.rk.Send(peer, base+me, payload)
	}
	for peer := 0; peer < d.procs; peer++ {
		if peer == me {
			continue
		}
		pklo, pkhi := d.lohi(peer)
		data := d.rk.Recv(peer, base+peer)
		d.unpack(arrays, data, 0, n-1, jlo, jhi, pklo, pkhi)
	}

	// Local z sweeps over my j rows (interior lines), all k.
	plo, phi := 1, n-4
	zjlo, zjhi := max(jlo, 1), min(jhi, n-2)
	for _, sys := range d.systems {
		var pts float64
		for p := plo; p <= phi; p++ {
			for i := 1; i <= n-2; i++ {
				for j := zjlo; j <= zjhi; j++ {
					st.applyPivot(2, p, i, j, sys, 0, n-1, 0, nil)
					pts++
				}
			}
		}
		d.rk.ComputeLabeled(d.w.Fwd*pts*float64(sys.Comps()), "z_solve")
	}
	for _, sys := range d.systems {
		var pts float64
		for p := phi; p >= plo; p-- {
			for i := 1; i <= n-2; i++ {
				for j := zjlo; j <= zjhi; j++ {
					st.backSub(2, p, i, j, sys)
					pts++
				}
			}
		}
		d.rk.ComputeLabeled(d.w.Bwd*pts*float64(sys.Comps()), "z_solve")
	}

	// Transpose r back: peer p gets my j rows restricted to p's k rows.
	rOnly := []([]float64){st.r}
	base = d.tag + 1
	d.tag += d.procs
	for peer := 0; peer < d.procs; peer++ {
		if peer == me {
			continue
		}
		pklo, pkhi := d.lohi(peer)
		payload := d.pack(rOnly, 0, n-1, jlo, jhi, pklo, pkhi)
		d.rk.Send(peer, base+me, payload)
	}
	for peer := 0; peer < d.procs; peer++ {
		if peer == me {
			continue
		}
		pjlo, pjhi := d.lohi(peer)
		data := d.rk.Recv(peer, base+peer)
		d.unpack(rOnly, data, 0, n-1, pjlo, pjhi, klo, khi)
	}
}

// pack serializes the block [ilo:ihi]×[jlo:jhi]×[klo:khi] of each array
// (r contributes comp components).
func (d *tpDriver) pack(arrays [][]float64, ilo, ihi, jlo, jhi, klo, khi int) []float64 {
	st := d.st
	var payload []float64
	for _, arr := range arrays {
		comps := 1
		if len(arr) == len(st.r) && st.comp > 1 {
			comps = st.comp
		}
		for m := 0; m < comps; m++ {
			for i := ilo; i <= ihi; i++ {
				for j := jlo; j <= jhi; j++ {
					for k := klo; k <= khi; k++ {
						if comps > 1 || len(arr) == len(st.r) {
							payload = append(payload, arr[st.ridx(m, i, j, k)])
						} else {
							payload = append(payload, arr[st.idx(i, j, k)])
						}
					}
				}
			}
		}
	}
	return payload
}

func (d *tpDriver) unpack(arrays [][]float64, data []float64, ilo, ihi, jlo, jhi, klo, khi int) {
	st := d.st
	at := 0
	for _, arr := range arrays {
		comps := 1
		if len(arr) == len(st.r) && st.comp > 1 {
			comps = st.comp
		}
		for m := 0; m < comps; m++ {
			for i := ilo; i <= ihi; i++ {
				for j := jlo; j <= jhi; j++ {
					for k := klo; k <= khi; k++ {
						if comps > 1 || len(arr) == len(st.r) {
							arr[st.ridx(m, i, j, k)] = data[at]
						} else {
							arr[st.idx(i, j, k)] = data[at]
						}
						at++
					}
				}
			}
		}
	}
}

func (d *tpDriver) addPhase(klo, khi int) {
	st, n := d.st, d.st.n
	var pts float64
	for i := 2; i <= n-3; i++ {
		for j := 2; j <= n-3; j++ {
			for k := max(2, klo); k <= min(n-3, khi); k++ {
				st.addPoint(i, j, k, d.bt)
				pts++
			}
		}
	}
	d.rk.ComputeLabeled(d.w.Add*pts, "add")
}
