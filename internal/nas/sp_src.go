package nas

import "fmt"

// SPSource returns the mini-HPF source of the simplified SP benchmark
// for an n³ grid, the given number of time steps, and a p1×p2 processor
// grid over the (y, z) dimensions — the Rice HPF version of the paper's
// §8.1: serial code structure plus directives (DISTRIBUTE, NEW on the
// lhsy-style line temporaries, LOCALIZE on the reciprocal array, and the
// y/z sweep loops already interchanged to carrier-outermost form).
//
// Like NAS SP, the solver carries NCOMP=5 solution components per grid
// point but the line systems are *scalar* (fully diagonalized): the five
// pentadiagonal systems per line share one elimination factor and do not
// couple — that is exactly what separates SP from BT (whose 5×5 block
// systems do couple, and cost comp× more per transferred byte).
//
// Per time step:
//
//	compute_rhs — rho = 1/u under LOCALIZE; r(m,·) from a ±1 stencil of
//	              rho plus a 2-deep dissipation stencil of u
//	lhs/spd     — privatizable line temporary cv(j) (NEW) feeding spd
//	x_solve     — bi-directional sweeps along the undistributed dimension
//	y_solve     — forward elimination writing rows j+1, j+2 (Fig 5.1) and
//	              backward substitution reading them: the wavefront the
//	              compiler pipelines; §7 kills the anti-pipeline read
//	z_solve     — the same along k
//	add         — u += CoefAdd·Σ_m r(m,·)
func SPSource(n, steps, p1, p2 int) string {
	return fmt.Sprintf(`
program sp
param N = %d
param STEPS = %d
param P1 = %d
param P2 = %d

!hpf$ processors procs(P1, P2)
!hpf$ template tm(N, N, N)
!hpf$ align u with tm(d0, d1, d2)
!hpf$ align rho with tm(d0, d1, d2)
!hpf$ align rhs with tm(*, d0, d1, d2)
!hpf$ align spd with tm(d0, d1, d2)
!hpf$ distribute tm(*, BLOCK, BLOCK) onto procs

subroutine main()
  real u(0:N-1, 0:N-1, 0:N-1)
  real rho(0:N-1, 0:N-1, 0:N-1)
  real rhs(1:5, 0:N-1, 0:N-1, 0:N-1)
  real spd(0:N-1, 0:N-1, 0:N-1)
  real cv(0:N-1)

  ! initialization (owner-computes everywhere, no communication)
  do k = 0, N-1
    do j = 0, N-1
      do i = 0, N-1
        u(i,j,k) = 1.0 + 0.001*i + 0.002*j + 0.003*k
        rho(i,j,k) = 0.0
        spd(i,j,k) = 0.0
        do m = 1, 5
          rhs(m,i,j,k) = 0.0
        enddo
      enddo
    enddo
  enddo

  do step = 1, STEPS

    ! --- compute_rhs: reciprocals partially replicated (LOCALIZE) ---
    !hpf$ independent, localize(rho)
    do onetrip = 1, 1
      do k = 0, N-1
        do j = 0, N-1
          do i = 0, N-1
            rho(i,j,k) = 1.0 / u(i,j,k)
          enddo
        enddo
      enddo
      do k = 2, N-3
        do j = 2, N-3
          do i = 2, N-3
            do m = 1, 5
              rhs(m,i,j,k) = %g*(rho(i+1,j,k) + rho(i-1,j,k) + rho(i,j+1,k) + rho(i,j-1,k) + rho(i,j,k+1) + rho(i,j,k-1) - 6.0*rho(i,j,k)) + %g*m*(u(i+2,j,k) + u(i-2,j,k) + u(i,j+2,k) + u(i,j-2,k) + u(i,j,k+2) + u(i,j,k-2))
            enddo
          enddo
        enddo
      enddo
    enddo

    ! --- lhs setup: privatizable line temporary (NEW), as in lhsy ---
    do k = 0, N-1
      !hpf$ independent, new(cv)
      do i = 0, N-1
        do j = 0, N-1
          cv(j) = %g * u(i,j,k)
        enddo
        do j = 1, N-2
          spd(i,j,k) = cv(j-1) + cv(j+1)
        enddo
      enddo
    enddo

    ! --- x_solve: sweeps along the undistributed dimension (local).
    ! Like NAS SP, each direction solves two separate scalar systems:
    ! components 1-3 (the lhs system) and components 4-5 (the ±c
    ! characteristic systems lhsp/lhsm).
    do k = 1, N-2
      do j = 1, N-2
        do i = 1, N-4
          do m = 1, 3
            rhs(m,i+1,j,k) = rhs(m,i+1,j,k) - (%g/u(i,j,k) + %g*spd(i,j,k))*rhs(m,i,j,k)
            rhs(m,i+2,j,k) = rhs(m,i+2,j,k) - %g*rhs(m,i,j,k)
          enddo
        enddo
        do i = 1, N-4
          do m = 4, 5
            rhs(m,i+1,j,k) = rhs(m,i+1,j,k) - (%g/u(i,j,k))*rhs(m,i,j,k)
            rhs(m,i+2,j,k) = rhs(m,i+2,j,k) - %g*rhs(m,i,j,k)
          enddo
        enddo
        do i = N-4, 1, -1
          do m = 1, 3
            rhs(m,i,j,k) = rhs(m,i,j,k) - %g*rhs(m,i+1,j,k) - %g*rhs(m,i+2,j,k)
          enddo
        enddo
        do i = N-4, 1, -1
          do m = 4, 5
            rhs(m,i,j,k) = rhs(m,i,j,k) - %g*rhs(m,i+1,j,k) - %g*rhs(m,i+2,j,k)
          enddo
        enddo
      enddo
    enddo

    ! --- y_solve: wavefronts along the first distributed dimension.
    ! Two separate systems ⇒ two forward and two reverse pipelines per
    ! phase, exactly the structure visible in the paper's Figure 8.2.
    do j = 1, N-4
      do k = 1, N-2
        do i = 1, N-2
          do m = 1, 3
            rhs(m,i,j+1,k) = rhs(m,i,j+1,k) - (%g/u(i,j,k) + %g*spd(i,j,k))*rhs(m,i,j,k)
            rhs(m,i,j+2,k) = rhs(m,i,j+2,k) - %g*rhs(m,i,j,k)
          enddo
        enddo
      enddo
    enddo
    do j = 1, N-4
      do k = 1, N-2
        do i = 1, N-2
          do m = 4, 5
            rhs(m,i,j+1,k) = rhs(m,i,j+1,k) - (%g/u(i,j,k))*rhs(m,i,j,k)
            rhs(m,i,j+2,k) = rhs(m,i,j+2,k) - %g*rhs(m,i,j,k)
          enddo
        enddo
      enddo
    enddo
    do j = N-4, 1, -1
      do k = 1, N-2
        do i = 1, N-2
          do m = 1, 3
            rhs(m,i,j,k) = rhs(m,i,j,k) - %g*rhs(m,i,j+1,k) - %g*rhs(m,i,j+2,k)
          enddo
        enddo
      enddo
    enddo
    do j = N-4, 1, -1
      do k = 1, N-2
        do i = 1, N-2
          do m = 4, 5
            rhs(m,i,j,k) = rhs(m,i,j,k) - %g*rhs(m,i,j+1,k) - %g*rhs(m,i,j+2,k)
          enddo
        enddo
      enddo
    enddo

    ! --- z_solve: wavefronts along the second distributed dimension ---
    do k = 1, N-4
      do j = 1, N-2
        do i = 1, N-2
          do m = 1, 3
            rhs(m,i,j,k+1) = rhs(m,i,j,k+1) - (%g/u(i,j,k) + %g*spd(i,j,k))*rhs(m,i,j,k)
            rhs(m,i,j,k+2) = rhs(m,i,j,k+2) - %g*rhs(m,i,j,k)
          enddo
        enddo
      enddo
    enddo
    do k = 1, N-4
      do j = 1, N-2
        do i = 1, N-2
          do m = 4, 5
            rhs(m,i,j,k+1) = rhs(m,i,j,k+1) - (%g/u(i,j,k))*rhs(m,i,j,k)
            rhs(m,i,j,k+2) = rhs(m,i,j,k+2) - %g*rhs(m,i,j,k)
          enddo
        enddo
      enddo
    enddo
    do k = N-4, 1, -1
      do j = 1, N-2
        do i = 1, N-2
          do m = 1, 3
            rhs(m,i,j,k) = rhs(m,i,j,k) - %g*rhs(m,i,j,k+1) - %g*rhs(m,i,j,k+2)
          enddo
        enddo
      enddo
    enddo
    do k = N-4, 1, -1
      do j = 1, N-2
        do i = 1, N-2
          do m = 4, 5
            rhs(m,i,j,k) = rhs(m,i,j,k) - %g*rhs(m,i,j,k+1) - %g*rhs(m,i,j,k+2)
          enddo
        enddo
      enddo
    enddo

    ! --- add ---
    do k = 2, N-3
      do j = 2, N-3
        do i = 2, N-3
          u(i,j,k) = u(i,j,k) + %g*(rhs(1,i,j,k) + rhs(2,i,j,k) + rhs(3,i,j,k) + rhs(4,i,j,k) + rhs(5,i,j,k))
        enddo
      enddo
    enddo
  enddo
end
`, n, steps, p1, p2,
		CoefDT, CoefDX,
		CoefCV,
		CoefFac, CoefSPD, CoefFw2, CoefFac2, CoefFw2, CoefBk1, CoefBk2, CoefBk1, CoefBk2,
		CoefFac, CoefSPD, CoefFw2, CoefFac2, CoefFw2, CoefBk1, CoefBk2, CoefBk1, CoefBk2,
		CoefFac, CoefSPD, CoefFw2, CoefFac2, CoefFw2, CoefBk1, CoefBk2, CoefBk1, CoefBk2,
		CoefAdd)
}
