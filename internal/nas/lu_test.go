package nas

import (
	"testing"

	"dhpf/internal/spmd"
	"dhpf/internal/trace"
)

func TestLUSourceParses(t *testing.T) {
	if _, err := spmd.CompileSource(LUSource(12, 1, 2, 2), nil, spmd.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
}

func TestLUCompiledMatchesSerial(t *testing.T) {
	for _, grid := range [][2]int{{2, 2}, {1, 3}, {3, 2}} {
		src := LUSource(ClassS.N, 2, grid[0], grid[1])
		res := verifyCompiled(t, src, grid[0]*grid[1], []string{"u", "v"})
		if grid[0]*grid[1] > 1 && res.Machine.TotalMessages() == 0 {
			t.Errorf("grid %v: LU must communicate", grid)
		}
	}
}

func TestLUDiagonalWavefrontShape(t *testing.T) {
	// The 2-D wavefront serializes along the grid's diagonal: the last
	// rank (both coordinates maximal) idles longer than rank 0 in the
	// lower-triangular sweep phase.
	src := LUSource(16, 1, 2, 2)
	prog, err := spmd.CompileSource(src, nil, spmd.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallMachine(4)
	cfg.Trace = true
	res, err := prog.Execute(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := trace.Summarize(res.Machine)
	if s.IdleFrac[3] <= s.IdleFrac[0] {
		t.Errorf("diagonal wavefront idle shape wrong: rank0 %.3f rank3 %.3f",
			s.IdleFrac[0], s.IdleFrac[3])
	}
}

func TestLUHand2DMatchesSerial(t *testing.T) {
	n, steps := 12, 2
	for _, grid := range [][2]int{{1, 1}, {2, 2}, {3, 2}} {
		run, err := RunLU2D(n, steps, grid[0], grid[1], smallMachine(grid[0]*grid[1]))
		if err != nil {
			t.Fatalf("grid %v: %v", grid, err)
		}
		ref := referenceArrays(t, LUSource(n, steps, 1, 1), "u", "v")
		if e := maxRelErr(run.U, ref["u"]); e > 1e-12 {
			t.Errorf("grid %v: u max rel err %g", grid, e)
		}
		if e := maxRelErr(run.V, ref["v"]); e > 1e-12 {
			t.Errorf("grid %v: v max rel err %g", grid, e)
		}
	}
}

func TestLUHandVsCompiled(t *testing.T) {
	// The hand 2-D pipelined baseline should beat the compiled code (as
	// with SP/BT) but both must be correct; compare times and messages.
	n, steps, p1, p2 := 16, 1, 2, 2
	hand, err := RunLU2D(n, steps, p1, p2, smallMachine(4))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := spmd.CompileSource(LUSource(n, steps, p1, p2), nil, spmd.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Execute(smallMachine(4))
	if err != nil {
		t.Fatal(err)
	}
	if hand.Machine.Time <= 0 || res.Machine.Time <= 0 {
		t.Fatal("bad times")
	}
	if res.Machine.Time < hand.Machine.Time*0.5 {
		t.Errorf("compiled LU implausibly faster: hand %g vs dhpf %g",
			hand.Machine.Time, res.Machine.Time)
	}
}
