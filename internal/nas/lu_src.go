package nas

import "fmt"

// LUSource returns a mini-HPF source with the communication structure of
// NAS LU: an SSOR-style iteration whose lower- and upper-triangular
// sweeps carry dependences along *two* distributed dimensions at once —
// the 2-D diagonal wavefront the paper's conclusion singles out
// ("the class of codes that make line-sweeps in multiple physical
// dimensions").  The paper evaluates SP and BT only; LU here is the
// extension exercising nested pipelined wavefronts in the compiler and
// executor.
//
// Per time step:
//
//	rhs   — reciprocal field under LOCALIZE plus a ±1 stencil
//	blts  — lower-triangular sweep: v(i,j,k) += f(v(i,j-1,k), v(i,j,k-1))
//	buts  — upper-triangular sweep: v(i,j,k) += f(v(i,j+1,k), v(i,j,k+1))
//	add   — u += CoefAdd·v
func LUSource(n, steps, p1, p2 int) string {
	return fmt.Sprintf(`
program lu
param N = %d
param STEPS = %d
param P1 = %d
param P2 = %d

!hpf$ processors procs(P1, P2)
!hpf$ template tm(N, N, N)
!hpf$ align u with tm(d0, d1, d2)
!hpf$ align v with tm(d0, d1, d2)
!hpf$ align rho with tm(d0, d1, d2)
!hpf$ distribute tm(*, BLOCK, BLOCK) onto procs

subroutine main()
  real u(0:N-1, 0:N-1, 0:N-1)
  real v(0:N-1, 0:N-1, 0:N-1)
  real rho(0:N-1, 0:N-1, 0:N-1)

  do k = 0, N-1
    do j = 0, N-1
      do i = 0, N-1
        u(i,j,k) = 1.0 + 0.001*i + 0.002*j + 0.003*k
        v(i,j,k) = 0.0
        rho(i,j,k) = 0.0
      enddo
    enddo
  enddo

  do step = 1, STEPS

    ! --- rhs: reciprocals (LOCALIZE) + stencil ---
    !hpf$ independent, localize(rho)
    do onetrip = 1, 1
      do k = 0, N-1
        do j = 0, N-1
          do i = 0, N-1
            rho(i,j,k) = 1.0 / u(i,j,k)
          enddo
        enddo
      enddo
      do k = 1, N-2
        do j = 1, N-2
          do i = 1, N-2
            v(i,j,k) = %g*(rho(i+1,j,k) + rho(i-1,j,k) + rho(i,j+1,k) + rho(i,j-1,k) + rho(i,j,k+1) + rho(i,j,k-1) - 6.0*rho(i,j,k))
          enddo
        enddo
      enddo
    enddo

    ! --- blts: lower-triangular 2-D diagonal wavefront ---
    do j = 1, N-2
      do k = 1, N-2
        do i = 1, N-2
          v(i,j,k) = v(i,j,k) + (%g/u(i,j,k))*v(i,j-1,k) + %g*v(i,j,k-1)
        enddo
      enddo
    enddo

    ! --- buts: upper-triangular 2-D diagonal wavefront ---
    do j = N-2, 1, -1
      do k = N-2, 1, -1
        do i = 1, N-2
          v(i,j,k) = v(i,j,k) + %g*v(i,j+1,k) + %g*v(i,j,k+1)
        enddo
      enddo
    enddo

    ! --- add ---
    do k = 1, N-2
      do j = 1, N-2
        do i = 1, N-2
          u(i,j,k) = u(i,j,k) + %g*v(i,j,k)
        enddo
      enddo
    enddo
  enddo
end
`, n, steps, p1, p2,
		CoefDT,
		CoefFac, CoefFw2,
		CoefBk1, CoefBk2,
		CoefAdd)
}
