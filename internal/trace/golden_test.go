package trace

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// TestGoldenRender pins the exact ASCII and CSV renderings of the
// deterministic pipeline fixture.  The simulator runs in virtual time,
// so these outputs are bit-stable across machines; any drift is a real
// rendering change and should be reviewed (then blessed with -update).
func TestGoldenRender(t *testing.T) {
	d := Build(tracedRun(), 40)
	check := func(name, got string) {
		t.Helper()
		path := filepath.Join("testdata", name)
		if *update {
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			return
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden file (regenerate with go test -run TestGolden -update): %v", err)
		}
		if got != string(want) {
			t.Errorf("%s drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
		}
	}
	check("pipeline.render.golden", d.Render("pipeline"))
	check("pipeline.csv.golden", d.CSV())
}
