package trace

import (
	"strings"
	"testing"

	"dhpf/internal/mpsim"
)

func tracedRun() *mpsim.Result {
	cfg := mpsim.Config{
		Procs:        3,
		SendOverhead: 1e-6,
		RecvOverhead: 1e-6,
		Latency:      10e-6,
		GapPerByte:   1e-8,
		FlopTime:     1e-8,
		Trace:        true,
	}
	return mpsim.Run(cfg, func(r *mpsim.Rank) {
		// A small pipeline so every rank has compute, comm and idle.
		if r.ID > 0 {
			r.Recv(r.ID-1, 1)
		}
		r.ComputeLabeled(1e5, "stage")
		if r.ID < 2 {
			r.Send(r.ID+1, 1, make([]float64, 64))
		}
	})
}

func TestBuildDiagramShape(t *testing.T) {
	res := tracedRun()
	d := Build(res, 50)
	if d.Procs != 3 || d.Bins != 50 || len(d.Rows) != 3 {
		t.Fatalf("diagram shape: %+v", d)
	}
	// Rank 0 computes from t=0; rank 2 starts idle/waiting.
	if d.Rows[0][0] != CellCompute {
		t.Errorf("rank 0 bin 0 = %q", d.Rows[0][0])
	}
	if d.Rows[2][0] == CellCompute {
		t.Errorf("rank 2 bin 0 should not be compute")
	}
	// Every row must contain some compute.
	for r, row := range d.Rows {
		found := false
		for _, c := range row {
			if c == CellCompute {
				found = true
			}
		}
		if !found {
			t.Errorf("rank %d has no compute cells", r)
		}
	}
}

func TestRenderAndCSV(t *testing.T) {
	res := tracedRun()
	d := Build(res, 40)
	out := d.Render("pipeline")
	if !strings.Contains(out, "pipeline") || !strings.Contains(out, "P0") || !strings.Contains(out, "legend") {
		t.Fatalf("render output malformed:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got < 5 {
		t.Errorf("render too short: %d lines", got)
	}
	csv := d.CSV()
	if !strings.HasPrefix(csv, "rank,bin,t_start,state\n") {
		t.Fatal("CSV header missing")
	}
	if strings.Count(csv, "\n") != 3*40+1 {
		t.Errorf("CSV rows = %d", strings.Count(csv, "\n"))
	}
}

func TestSummarize(t *testing.T) {
	res := tracedRun()
	s := Summarize(res)
	if s.Procs != 3 {
		t.Fatalf("procs = %d", s.Procs)
	}
	// The pipeline tail idles more than the head.
	if s.IdleFrac[2] <= s.IdleFrac[0] {
		t.Errorf("idle fractions: %v", s.IdleFrac)
	}
	if s.MeanCompute <= 0 || s.MeanCompute > 1 {
		t.Errorf("mean compute = %g", s.MeanCompute)
	}
	// Equal work on each rank: imbalance ~0.
	if s.LoadImbalance > 1e-9 {
		t.Errorf("imbalance = %g", s.LoadImbalance)
	}
}

func TestPhaseBreakdown(t *testing.T) {
	res := tracedRun()
	pb := PhaseBreakdown(res)
	if len(pb) != 1 || pb[0].Label != "stage" {
		t.Fatalf("breakdown = %+v", pb)
	}
	if pb[0].Seconds <= 0 {
		t.Error("phase time not positive")
	}
}
