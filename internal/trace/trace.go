// Package trace renders space–time diagrams from mpsim event traces —
// the paper's Figures 8.1–8.4.  Each processor is a row; time runs left
// to right; computation, communication and idle time are distinguished,
// so pipeline skew, load imbalance and communication phases are visible
// exactly as in the paper's figures (green compute bands, blue message
// bands, white idle gaps).
package trace

import (
	"fmt"
	"sort"
	"strings"

	"dhpf/internal/mpsim"
)

// Cell classifies one time bin of one rank's row.
type Cell byte

const (
	CellIdle    Cell = ' ' // no activity (white space in the paper's figures)
	CellCompute Cell = '#' // computation (solid green bands)
	CellSend    Cell = '>' // sending
	CellRecv    Cell = '<' // receiving / copy-in
	CellWait    Cell = '.' // blocked waiting for a message
	CellBarrier Cell = '|' // collective
)

// Diagram is a discretized space–time diagram.
type Diagram struct {
	Procs   int
	Bins    int
	T0, T1  float64 // time range covered
	Rows    [][]Cell
	BinSecs float64
}

// Build discretizes the events of a run into bins columns.
func Build(res *mpsim.Result, bins int) *Diagram {
	d := &Diagram{Procs: res.Procs, Bins: bins, T1: res.Time}
	if bins <= 0 {
		bins = 100
		d.Bins = bins
	}
	if d.T1 <= 0 {
		d.T1 = 1
	}
	d.BinSecs = (d.T1 - d.T0) / float64(bins)
	d.Rows = make([][]Cell, res.Procs)
	for r := range d.Rows {
		d.Rows[r] = make([]Cell, bins)
		for b := range d.Rows[r] {
			d.Rows[r][b] = CellIdle
		}
	}
	// Paint in priority order: compute < send/recv < wait, so that thin
	// communication marks stay visible over wide compute bands.
	paint := func(e mpsim.Event, c Cell) {
		b0 := int((e.Start - d.T0) / d.BinSecs)
		b1 := int((e.End - d.T0) / d.BinSecs)
		b0 = max(0, min(b0, bins-1))
		b1 = max(0, min(b1, bins-1))
		for b := b0; b <= b1; b++ {
			d.Rows[e.Rank][b] = c
		}
	}
	for _, e := range res.Events {
		if e.Kind == mpsim.EvCompute {
			paint(e, CellCompute)
		}
	}
	for _, e := range res.Events {
		switch e.Kind {
		case mpsim.EvSend:
			paint(e, CellSend)
		case mpsim.EvRecvCopy:
			paint(e, CellRecv)
		}
	}
	for _, e := range res.Events {
		switch e.Kind {
		case mpsim.EvRecvWait:
			paint(e, CellWait)
		case mpsim.EvBarrier:
			paint(e, CellBarrier)
		}
	}
	return d
}

// Render prints the diagram with a header and per-rank utilization.
func (d *Diagram) Render(title string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s  (0 .. %.4fs, %d bins of %.2gs)\n", title, d.T1, d.Bins, d.BinSecs)
	fmt.Fprintf(&sb, "legend: '#'=compute  '>'=send  '<'=recv  '.'=wait  ' '=idle\n")
	for r, row := range d.Rows {
		busy := 0
		for _, c := range row {
			if c == CellCompute || c == CellSend || c == CellRecv {
				busy++
			}
		}
		fmt.Fprintf(&sb, "P%-3d |%s| %3d%%\n", r, string(cellsToBytes(row)), busy*100/len(row))
	}
	return sb.String()
}

func cellsToBytes(row []Cell) []byte {
	out := make([]byte, len(row))
	for i, c := range row {
		out[i] = byte(c)
	}
	return out
}

// CSV emits the diagram as long-format rows: rank,bin,state.
func (d *Diagram) CSV() string {
	var sb strings.Builder
	sb.WriteString("rank,bin,t_start,state\n")
	for r, row := range d.Rows {
		for b, c := range row {
			state := "idle"
			switch c {
			case CellCompute:
				state = "compute"
			case CellSend:
				state = "send"
			case CellRecv:
				state = "recv"
			case CellWait:
				state = "wait"
			case CellBarrier:
				state = "barrier"
			}
			fmt.Fprintf(&sb, "%d,%d,%.6g,%s\n", r, b, d.T0+float64(b)*d.BinSecs, state)
		}
	}
	return sb.String()
}

// Stats summarizes a run the way the paper discusses its figures:
// compute/communication/idle fractions per rank and overall.
type Stats struct {
	Procs         int
	ComputeFrac   []float64
	CommFrac      []float64
	IdleFrac      []float64
	MeanCompute   float64
	MeanComm      float64
	MeanIdle      float64
	LoadImbalance float64 // (max-min)/max of per-rank compute time
}

// Summarize computes utilization statistics from a traced run.
func Summarize(res *mpsim.Result) Stats {
	s := Stats{
		Procs:       res.Procs,
		ComputeFrac: make([]float64, res.Procs),
		CommFrac:    make([]float64, res.Procs),
		IdleFrac:    make([]float64, res.Procs),
	}
	total := res.Time
	if total <= 0 {
		total = 1
	}
	compute := make([]float64, res.Procs)
	comm := make([]float64, res.Procs)
	idle := make([]float64, res.Procs)
	for _, e := range res.Events {
		dt := e.End - e.Start
		switch e.Kind {
		case mpsim.EvCompute:
			compute[e.Rank] += dt
		case mpsim.EvSend, mpsim.EvRecvCopy:
			comm[e.Rank] += dt
		case mpsim.EvRecvWait, mpsim.EvBarrier:
			idle[e.Rank] += dt
		}
	}
	var maxC, minC float64
	for r := 0; r < res.Procs; r++ {
		s.ComputeFrac[r] = compute[r] / total
		s.CommFrac[r] = comm[r] / total
		s.IdleFrac[r] = (idle[r] + (total - res.RankTime[r])) / total
		s.MeanCompute += s.ComputeFrac[r]
		s.MeanComm += s.CommFrac[r]
		s.MeanIdle += s.IdleFrac[r]
		if r == 0 || compute[r] > maxC {
			maxC = compute[r]
		}
		if r == 0 || compute[r] < minC {
			minC = compute[r]
		}
	}
	s.MeanCompute /= float64(res.Procs)
	s.MeanComm /= float64(res.Procs)
	s.MeanIdle /= float64(res.Procs)
	if maxC > 0 {
		s.LoadImbalance = (maxC - minC) / maxC
	}
	return s
}

// PhaseBreakdown sums labeled compute time per phase label across ranks,
// sorted by descending total — the narrative companion to the figures
// ("the largest loss of efficiency is in the wavefront computations").
func PhaseBreakdown(res *mpsim.Result) []PhaseTime {
	acc := map[string]float64{}
	for _, e := range res.Events {
		if e.Kind == mpsim.EvCompute && e.Label != "" {
			acc[e.Label] += e.End - e.Start
		}
	}
	labels := make([]string, 0, len(acc))
	for l := range acc {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	out := make([]PhaseTime, 0, len(labels))
	for _, l := range labels {
		out = append(out, PhaseTime{Label: l, Seconds: acc[l]})
	}
	// Stable on a label-sorted slice: phases with equal times keep a
	// deterministic (alphabetical) order.
	sort.SliceStable(out, func(i, j int) bool { return out[i].Seconds > out[j].Seconds })
	return out
}

// PhaseTime is one phase's cumulative compute time.
type PhaseTime struct {
	Label   string
	Seconds float64
}
