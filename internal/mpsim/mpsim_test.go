package mpsim

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

func testCfg(p int) Config {
	return Config{
		Procs:        p,
		SendOverhead: 1e-6,
		RecvOverhead: 1e-6,
		Latency:      10e-6,
		GapPerByte:   1e-8,
		FlopTime:     1e-8,
	}
}

// TestPinOSThreadsInvisible runs the same exchange with and without
// PinOSThreads and requires bit-identical virtual clocks, counters, and
// payloads: pinning maps goroutines onto OS threads but must never
// change what the machine computes.
func TestPinOSThreadsInvisible(t *testing.T) {
	run := func(pin bool) (*Result, float64) {
		cfg := testCfg(4)
		cfg.PinOSThreads = pin
		var got float64
		var mu sync.Mutex
		res := Run(cfg, func(r *Rank) {
			next, prev := (r.ID+1)%4, (r.ID+3)%4
			acc := float64(r.ID)
			for step := 0; step < 8; step++ {
				r.Send(next, step, []float64{acc})
				in := r.Recv(prev, step)
				acc += in[0] * 0.5
				r.Compute(100)
				r.Recycle(in)
			}
			r.Barrier()
			if r.ID == 2 {
				mu.Lock()
				got = acc
				mu.Unlock()
			}
		})
		return res, got
	}
	plain, accPlain := run(false)
	pinned, accPinned := run(true)
	if math.Float64bits(accPlain) != math.Float64bits(accPinned) {
		t.Fatalf("accumulated value differs under pinning: %v vs %v", accPlain, accPinned)
	}
	for rk := 0; rk < 4; rk++ {
		if math.Float64bits(plain.RankTime[rk]) != math.Float64bits(pinned.RankTime[rk]) {
			t.Fatalf("rank %d clock differs: %v vs %v", rk, plain.RankTime[rk], pinned.RankTime[rk])
		}
		if plain.SentMsgs[rk] != pinned.SentMsgs[rk] || plain.SentBytes[rk] != pinned.SentBytes[rk] {
			t.Fatalf("rank %d counters differ under pinning", rk)
		}
	}
}

func TestComputeAdvancesClock(t *testing.T) {
	res := Run(testCfg(1), func(r *Rank) {
		r.Compute(1e6)
	})
	want := 1e6 * 1e-8
	if math.Abs(res.Time-want) > 1e-12 {
		t.Fatalf("Time = %g, want %g", res.Time, want)
	}
	if res.RankFlops[0] != 1e6 {
		t.Fatalf("flops = %g", res.RankFlops[0])
	}
}

func TestSendRecvTimestamps(t *testing.T) {
	cfg := testCfg(2)
	res := Run(cfg, func(r *Rank) {
		switch r.ID {
		case 0:
			r.Compute(1000) // 10 µs
			r.Send(1, 7, []float64{1, 2, 3})
		case 1:
			data := r.Recv(0, 7)
			if len(data) != 3 || data[2] != 3 {
				t.Errorf("rank1 got %v", data)
			}
		}
	})
	// Sender: 10µs compute + send cost (1µs + 24B*10ns = 1.24µs) = 11.24µs.
	// Arrival = 11.24 + 10 (latency) = 21.24µs; receiver adds 1µs overhead.
	want := (10 + 1 + 24*0.01 + 10 + 1) * 1e-6
	if math.Abs(res.Time-want) > 1e-9 {
		t.Fatalf("Time = %g, want %g", res.Time, want)
	}
	if res.RankIdle[1] <= 0 {
		t.Error("receiver recorded no idle time")
	}
	if res.TotalMessages() != 1 || res.TotalBytes() != 24 {
		t.Errorf("msgs=%d bytes=%d", res.TotalMessages(), res.TotalBytes())
	}
}

func TestMessageDataIsolated(t *testing.T) {
	// The receiver must get a copy: sender mutating its buffer after
	// Send must not affect the delivered data.
	Run(testCfg(2), func(r *Rank) {
		if r.ID == 0 {
			buf := []float64{42}
			r.Send(1, 0, buf)
			buf[0] = -1
		} else {
			got := r.Recv(0, 0)
			if got[0] != 42 {
				t.Errorf("message data aliased: %v", got)
			}
		}
	})
}

func TestPipelineSerialization(t *testing.T) {
	// A 4-stage pipeline: each rank waits for its predecessor, computes,
	// forwards.  Total time must be ≈ sum of stages, not max.
	const p = 4
	const flops = 1e5 // 1 ms each
	res := Run(testCfg(p), func(r *Rank) {
		if r.ID > 0 {
			r.Recv(r.ID-1, 1)
		}
		r.Compute(flops)
		if r.ID < p-1 {
			r.Send(r.ID+1, 1, []float64{1})
		}
	})
	serial := float64(p) * flops * 1e-8
	if res.Time < serial {
		t.Fatalf("pipeline time %g < serial bound %g", res.Time, serial)
	}
	if res.Time > serial*1.1 {
		t.Fatalf("pipeline time %g too far above serial bound %g", res.Time, serial)
	}
	// Last rank idles roughly 3 stages.
	if res.RankIdle[p-1] < 2.9*flops*1e-8 {
		t.Fatalf("last rank idle = %g", res.RankIdle[p-1])
	}
}

func TestParallelIndependentWork(t *testing.T) {
	// Independent work on 8 ranks: makespan ≈ single rank's time.
	const flops = 1e5
	res := Run(testCfg(8), func(r *Rank) {
		r.Compute(flops)
	})
	want := flops * 1e-8
	if math.Abs(res.Time-want) > 1e-12 {
		t.Fatalf("Time = %g, want %g", res.Time, want)
	}
}

func TestBarrierAlignsClocks(t *testing.T) {
	res := Run(testCfg(4), func(r *Rank) {
		r.Compute(float64(r.ID) * 1e5) // staggered
		r.Barrier()
		if r.Time() < 3*1e5*1e-8 {
			t.Errorf("rank %d clock %g below barrier max", r.ID, r.Time())
		}
	})
	_ = res
}

func TestBarrierTwiceNoCarryover(t *testing.T) {
	res := Run(testCfg(2), func(r *Rank) {
		r.Compute(1e6)
		r.Barrier()
		first := r.Time()
		r.Barrier()
		// Second barrier should cost only the log-tree latency, not
		// re-apply the first barrier's max.
		if r.Time()-first > 2*10e-6+1e-9 {
			t.Errorf("second barrier cost %g", r.Time()-first)
		}
	})
	_ = res
}

func TestAllReduceSum(t *testing.T) {
	Run(testCfg(4), func(r *Rank) {
		got := r.AllReduceSum(float64(r.ID + 1))
		if got != 10 {
			t.Errorf("rank %d sum = %g", r.ID, got)
		}
	})
}

func TestAllReduceRepeated(t *testing.T) {
	Run(testCfg(3), func(r *Rank) {
		for k := 0; k < 5; k++ {
			got := r.AllReduceSum(1)
			if got != 3 {
				t.Errorf("round %d sum = %g", k, got)
			}
		}
	})
}

func TestIrecvWait(t *testing.T) {
	Run(testCfg(2), func(r *Rank) {
		if r.ID == 0 {
			r.Send(1, 3, []float64{9})
		} else {
			req := r.Irecv(0, 3)
			r.Compute(100) // overlap
			data := req.Wait()
			if data[0] != 9 {
				t.Errorf("Irecv data = %v", data)
			}
			// Wait twice is idempotent.
			if req.Wait()[0] != 9 {
				t.Error("second Wait failed")
			}
		}
	})
}

func TestTagMatching(t *testing.T) {
	// Messages with different tags must not cross-match even when sent
	// out of receive order.
	Run(testCfg(2), func(r *Rank) {
		if r.ID == 0 {
			r.Send(1, 1, []float64{1})
			r.Send(1, 2, []float64{2})
		} else {
			b := r.Recv(0, 2)
			a := r.Recv(0, 1)
			if a[0] != 1 || b[0] != 2 {
				t.Errorf("tag mismatch: a=%v b=%v", a, b)
			}
		}
	})
}

func TestFIFOWithinTag(t *testing.T) {
	Run(testCfg(2), func(r *Rank) {
		if r.ID == 0 {
			for k := 0; k < 10; k++ {
				r.Send(1, 0, []float64{float64(k)})
			}
		} else {
			for k := 0; k < 10; k++ {
				if got := r.Recv(0, 0); got[0] != float64(k) {
					t.Errorf("FIFO violated: got %v want %d", got, k)
				}
			}
		}
	})
}

func TestDeterministicTimes(t *testing.T) {
	run := func() float64 {
		res := Run(testCfg(6), func(r *Rank) {
			// Ring exchange with staggered compute.
			r.Compute(float64(r.ID+1) * 1e4)
			next := (r.ID + 1) % 6
			prev := (r.ID + 5) % 6
			r.Send(next, 0, make([]float64, 100))
			r.Recv(prev, 0)
			r.Compute(5e4)
			r.Barrier()
		})
		return res.Time
	}
	t1 := run()
	for k := 0; k < 5; k++ {
		if t2 := run(); t2 != t1 {
			t.Fatalf("nondeterministic time: %g vs %g", t1, t2)
		}
	}
}

func TestTraceEvents(t *testing.T) {
	cfg := testCfg(2)
	cfg.Trace = true
	res := Run(cfg, func(r *Rank) {
		if r.ID == 0 {
			r.ComputeLabeled(1000, "phase-a")
			r.Send(1, 0, []float64{1})
		} else {
			r.Recv(0, 0)
		}
	})
	var kinds = map[EventKind]int{}
	for _, e := range res.Events {
		kinds[e.Kind]++
		if e.End < e.Start {
			t.Errorf("event with negative duration: %+v", e)
		}
	}
	if kinds[EvCompute] != 1 || kinds[EvSend] != 1 || kinds[EvRecvWait] != 1 || kinds[EvRecvCopy] != 1 {
		t.Fatalf("event kinds = %v", kinds)
	}
	// Label preserved.
	found := false
	for _, e := range res.Events {
		if e.Label == "phase-a" {
			found = true
		}
	}
	if !found {
		t.Error("labeled event missing")
	}
}

func TestSP2ConfigSanity(t *testing.T) {
	cfg := SP2Config(16)
	if cfg.Procs != 16 || cfg.Latency <= 0 || cfg.FlopTime <= 0 || cfg.GapPerByte <= 0 {
		t.Fatalf("bad SP2 config: %+v", cfg)
	}
}

// runRecovering runs body on every rank with the panic-recovery wrapper
// real callers (spmd, nas) install, collecting the first abort error.
func runRecovering(cfg Config, body func(r *Rank)) (res *Result, err error) {
	var mu sync.Mutex
	res = Run(cfg, func(r *Rank) {
		defer func() {
			if rec := recover(); rec != nil {
				mu.Lock()
				if err == nil {
					if e, ok := rec.(error); ok {
						err = e
					} else {
						err = fmt.Errorf("rank %d: %v", r.ID, rec)
					}
				}
				mu.Unlock()
			}
		}()
		body(r)
	})
	return res, err
}

func TestTimeLimitAbortsDeterministically(t *testing.T) {
	cfg := Config{Procs: 2, FlopTime: 1e-6, Latency: 1e-6, TimeLimit: 50e-6}
	// Under the limit: completes.
	_, err := runRecovering(cfg, func(r *Rank) { r.Compute(40) })
	if err != nil {
		t.Fatalf("run under the limit aborted: %v", err)
	}
	// Over the limit: every run aborts with ErrTimeLimit.
	for i := 0; i < 3; i++ {
		_, err := runRecovering(cfg, func(r *Rank) {
			for j := 0; j < 100; j++ {
				r.Compute(1)
			}
		})
		if !errors.Is(err, ErrTimeLimit) || !errors.Is(err, ErrAborted) {
			t.Fatalf("run %d: want ErrTimeLimit, got %v", i, err)
		}
	}
}

func TestTimeLimitWakesBlockedReceiver(t *testing.T) {
	// Rank 0 exceeds the limit while rank 1 is blocked in Recv on a
	// message that will never be sent; the abort must wake rank 1 or the
	// run deadlocks (the test itself would then time out).
	cfg := Config{Procs: 2, FlopTime: 1e-6, Latency: 1e-6, TimeLimit: 10e-6}
	_, err := runRecovering(cfg, func(r *Rank) {
		if r.ID == 0 {
			r.Compute(100)
		} else {
			r.Recv(0, 7)
		}
	})
	if !errors.Is(err, ErrTimeLimit) {
		t.Fatalf("want ErrTimeLimit, got %v", err)
	}
}

func TestTimeLimitWakesBarrierAndReduce(t *testing.T) {
	cfg := Config{Procs: 3, FlopTime: 1e-6, Latency: 1e-6, TimeLimit: 10e-6}
	_, err := runRecovering(cfg, func(r *Rank) {
		if r.ID == 0 {
			r.Compute(100)
		} else if r.ID == 1 {
			r.Barrier()
		} else {
			r.AllReduceSum(1)
		}
	})
	if !errors.Is(err, ErrTimeLimit) {
		t.Fatalf("want ErrTimeLimit, got %v", err)
	}
}

func TestWallLimitBreaksVirtualDeadlock(t *testing.T) {
	// Both ranks wait on messages that are never sent: virtual time is
	// stuck, so only the wall-clock limit can end the run.
	cfg := Config{Procs: 2, FlopTime: 1e-6, Latency: 1e-6, WallLimit: 50 * time.Millisecond}
	_, err := runRecovering(cfg, func(r *Rank) {
		r.Recv(1-r.ID, 9)
	})
	if !errors.Is(err, ErrWallLimit) || !errors.Is(err, ErrAborted) {
		t.Fatalf("want ErrWallLimit, got %v", err)
	}
}

func TestNoLimitsUnchanged(t *testing.T) {
	// Zero limits keep the legacy behaviour: no aborts, exact clocks.
	cfg := Config{Procs: 2, FlopTime: 1e-6, Latency: 1e-6}
	res, err := runRecovering(cfg, func(r *Rank) { r.Compute(1000) })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Time-1000e-6) > 1e-12 {
		t.Fatalf("Time = %g, want 1e-3", res.Time)
	}
}
