package mpsim

import (
	"math"
	"testing"
)

// TestSendCopiesCallerBuffer pins the Send ownership contract the spmd
// engine's pooled packing depends on: Send copies its payload before
// returning, so the caller may immediately reuse or mutate the buffer
// without corrupting the in-flight message.
func TestSendCopiesCallerBuffer(t *testing.T) {
	cfg := Config{Procs: 2, Latency: 1e-6, GapPerByte: 1e-9, FlopTime: 1e-8}
	res := Run(cfg, func(r *Rank) {
		if r.ID == 0 {
			buf := []float64{1, 2, 3, 4}
			r.Send(1, 7, buf)
			for i := range buf {
				buf[i] = -99 // caller reuses the buffer right away
			}
			r.Send(1, 8, buf)
		} else {
			first := r.Recv(0, 7)
			for i, want := range []float64{1, 2, 3, 4} {
				if first[i] != want {
					t.Errorf("message mutated after Send: got %v at %d, want %v", first[i], i, want)
				}
			}
			second := r.Recv(0, 8)
			for i := range second {
				if second[i] != -99 {
					t.Errorf("second message: got %v at %d, want -99", second[i], i)
				}
			}
		}
	})
	if res.TotalMessages() != 2 {
		t.Fatalf("messages = %d, want 2", res.TotalMessages())
	}
}

// TestRecycleKeepsResultsAndClocksIdentical runs the same exchange
// pattern with and without buffer recycling and requires bit-identical
// payload values, clocks, and message counters — recycling must be
// semantically invisible.
func TestRecycleKeepsResultsAndClocksIdentical(t *testing.T) {
	run := func(recycle bool) (*Result, []float64) {
		cfg := SP2Config(2)
		var got []float64
		res := Run(cfg, func(r *Rank) {
			peer := 1 - r.ID
			for step := 0; step < 10; step++ {
				out := make([]float64, 16)
				for i := range out {
					out[i] = float64(r.ID*1000 + step*16 + i)
				}
				r.Send(peer, step, out)
				in := r.Recv(peer, step)
				r.Compute(float64(len(in)))
				if r.ID == 0 && step == 9 {
					got = append([]float64(nil), in...)
				}
				if recycle {
					r.Recycle(in)
				}
			}
		})
		return res, got
	}
	plain, plainData := run(false)
	pooled, pooledData := run(true)
	if len(plainData) != len(pooledData) {
		t.Fatalf("payload lengths differ: %d vs %d", len(plainData), len(pooledData))
	}
	for i := range plainData {
		if math.Float64bits(plainData[i]) != math.Float64bits(pooledData[i]) {
			t.Fatalf("payload[%d] differs: %v vs %v", i, plainData[i], pooledData[i])
		}
	}
	for rk := 0; rk < 2; rk++ {
		if plain.RankTime[rk] != pooled.RankTime[rk] {
			t.Fatalf("rank %d clock differs: %v vs %v", rk, plain.RankTime[rk], pooled.RankTime[rk])
		}
		if plain.SentMsgs[rk] != pooled.SentMsgs[rk] || plain.SentBytes[rk] != pooled.SentBytes[rk] {
			t.Fatalf("rank %d counters differ", rk)
		}
	}
}

// TestGetBufRetainsHighWater is the regression test for the mixed-size
// staging regrowth bug: after a large payload has been seen, drawing a
// too-small recycled buffer for a mid-size request must not fall back to
// an exactly-sized allocation (which the next large payload would have
// to re-grow from zero again).  Every allocation carries the high-water
// capacity, so the pool converges instead of thrashing.
func TestGetBufRetainsHighWater(t *testing.T) {
	m := &Machine{}
	big := m.getBuf(4096) // establishes the high-water mark
	if cap(big) < 4096 {
		t.Fatalf("cap(big) = %d, want ≥ 4096", cap(big))
	}
	small := m.getBuf(8)[:8:8] // capacity-clamped: cannot satisfy 500
	m.bufPool.Put(&small)
	mid := m.getBuf(500) // draws the 8-cap buffer, must discard it
	if len(mid) != 500 {
		t.Fatalf("len(mid) = %d, want 500", len(mid))
	}
	if cap(mid) < 4096 {
		t.Fatalf("cap(mid) = %d, want high-water ≥ 4096 (mixed-size regrowth regression)", cap(mid))
	}
}

// TestMixedSizeTransfersStayCorrect runs alternating small/large
// exchanges with recycling: the high-water allocation policy must stay
// semantically invisible (payloads intact, exact lengths) while the
// pool serves both sizes.
func TestMixedSizeTransfersStayCorrect(t *testing.T) {
	cfg := Config{Procs: 2, Latency: 1e-6}
	Run(cfg, func(r *Rank) {
		peer := 1 - r.ID
		sizes := []int{8, 2048}
		for step := 0; step < 40; step++ {
			out := make([]float64, sizes[step%2])
			for i := range out {
				out[i] = float64(step + i)
			}
			r.Send(peer, step, out)
			in := r.Recv(peer, step)
			if len(in) != sizes[step%2] {
				t.Errorf("step %d: len = %d, want %d", step, len(in), sizes[step%2])
			}
			if in[0] != float64(step) || in[len(in)-1] != float64(step+len(in)-1) {
				t.Errorf("step %d: payload corrupted: %v...%v", step, in[0], in[len(in)-1])
			}
			r.Recycle(in)
		}
	})
}

// TestRecycledBufferIsReusedBySend exercises the pool end to end: a
// recycled receive buffer of sufficient capacity must satisfy a later
// Send's internal copy without changing what the receiver observes.
func TestRecycledBufferIsReusedBySend(t *testing.T) {
	cfg := Config{Procs: 2, Latency: 1e-6}
	Run(cfg, func(r *Rank) {
		peer := 1 - r.ID
		for step := 0; step < 50; step++ {
			out := []float64{float64(step), float64(r.ID)}
			r.Send(peer, step, out)
			in := r.Recv(peer, step)
			if in[0] != float64(step) || in[1] != float64(peer) {
				t.Errorf("step %d: got %v", step, in)
			}
			r.Recycle(in)
		}
	})
}
