// Package mpsim is a deterministic virtual-time message-passing machine:
// the experimental substrate standing in for the paper's 32-node IBM SP2.
//
// Each rank runs as a goroutine with its own virtual clock.  Computation
// advances the local clock by an analytic cost (seconds per flop);
// messages carry their sender's virtual timestamp plus a LogGP-style
// latency/bandwidth cost, and a receive advances the receiver's clock to
// at least the message's arrival time — so pipeline serialization, load
// imbalance and communication overhead all show up in the final clocks
// exactly as they would in a space–time diagram of a real run.
//
// Matching is deterministic (per (src,dst,tag) FIFO mailboxes), so both
// numeric results and virtual times are reproducible run to run,
// regardless of goroutine scheduling.
package mpsim

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Config fixes the machine size and cost model.
type Config struct {
	Procs int
	// SendOverhead is the sender-side CPU cost per message (seconds).
	SendOverhead float64
	// RecvOverhead is the receiver-side CPU cost per message (seconds).
	RecvOverhead float64
	// Latency is the network wire latency per message (seconds).
	Latency float64
	// GapPerByte is the inverse bandwidth (seconds per byte).
	GapPerByte float64
	// FlopTime is the cost of one floating-point operation (seconds).
	FlopTime float64
	// Trace enables space–time event capture.
	Trace bool
	// TimeLimit aborts the run once any rank's virtual clock exceeds it
	// (0 = unlimited).  Because virtual clocks are deterministic, whether
	// a run aborts is a deterministic function of the program and the
	// limit: a run aborts iff its makespan would exceed the limit.  The
	// auto-tuner uses this to abandon candidates that are already slower
	// than the incumbent (early pruning).
	TimeLimit float64
	// WallLimit aborts the run after a real-time duration (0 =
	// unlimited): a safety valve for pathological configurations whose
	// virtual clocks stop advancing (e.g. a deadlocked exchange), which
	// TimeLimit alone can never catch.
	WallLimit time.Duration
	// PinOSThreads locks every rank goroutine to its own OS thread for
	// the duration of the run (runtime.LockOSThread), so a run with
	// Procs ≤ GOMAXPROCS maps each rank onto a hardware thread and
	// wall-clock time scales with real cores instead of the scheduler's
	// whim.  Results are unaffected — pinning changes where goroutines
	// run, never what they compute — so it is safe to flip for
	// wall-clock benchmarking while keeping virtual clocks identical.
	PinOSThreads bool
}

// ErrAborted is the base error of every mpsim-initiated abort; aborted
// runs surface it (wrapped) through the body's panic-recovery path.
var ErrAborted = errors.New("mpsim: run aborted")

// ErrTimeLimit reports a Config.TimeLimit abort; wraps ErrAborted.
var ErrTimeLimit = fmt.Errorf("virtual time limit exceeded: %w", ErrAborted)

// ErrWallLimit reports a Config.WallLimit abort; wraps ErrAborted.
var ErrWallLimit = fmt.Errorf("wall-clock limit exceeded: %w", ErrAborted)

// SP2Config approximates a 1998 IBM SP2 with 120 MHz P2SC nodes and the
// user-space MPI library: ~29 µs one-way latency, ~90 MB/s bandwidth,
// ~80 Mflop/s sustained per node on these codes.
func SP2Config(procs int) Config {
	return Config{
		Procs:        procs,
		SendOverhead: 8e-6,
		RecvOverhead: 8e-6,
		Latency:      29e-6,
		GapPerByte:   1.0 / 90e6,
		FlopTime:     1.0 / 80e6,
	}
}

// EventKind classifies space–time trace events.
type EventKind int

const (
	EvCompute EventKind = iota
	EvSend
	EvRecvWait // time blocked waiting for a message (idle)
	EvRecvCopy // receive overhead after arrival
	EvBarrier
)

func (k EventKind) String() string {
	switch k {
	case EvCompute:
		return "compute"
	case EvSend:
		return "send"
	case EvRecvWait:
		return "wait"
	case EvRecvCopy:
		return "recv"
	case EvBarrier:
		return "barrier"
	}
	return "?"
}

// Event is one interval in a rank's space–time row.
type Event struct {
	Rank       int
	Kind       EventKind
	Start, End float64
	Peer       int // message peer, -1 otherwise
	Bytes      int
	Tag        int
	Label      string
}

// message is an in-flight message.
type message struct {
	data    []float64
	arrival float64 // virtual time the last byte reaches the receiver
	bytes   int
}

type mailboxKey struct {
	src, dst, tag int
}

type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []message
}

func (mb *mailbox) push(m message) {
	mb.mu.Lock()
	mb.queue = append(mb.queue, m)
	mb.cond.Signal()
	mb.mu.Unlock()
}

// pop blocks until a message is queued or the machine aborts.  The
// abort flag is re-checked around every wait: Abort broadcasts while
// holding mb.mu, so a waiter either sees the flag before sleeping or is
// woken by the broadcast — it can never sleep through an abort.
func (mb *mailbox) pop(m *Machine) message {
	mb.mu.Lock()
	for len(mb.queue) == 0 {
		if err := m.abortedErr(); err != nil {
			mb.mu.Unlock()
			panic(err)
		}
		mb.cond.Wait()
	}
	msg := mb.queue[0]
	mb.queue = mb.queue[1:]
	mb.mu.Unlock()
	return msg
}

// Machine is the running virtual machine.
type Machine struct {
	cfg Config
	// abortErr is set once by Abort; every rank observing it panics with
	// the stored error, which the body's recover handler reports.
	abortErr atomic.Pointer[error]
	mu       sync.Mutex
	boxes    map[mailboxKey]*mailbox

	barrierMu     sync.Mutex
	barrierCond   *sync.Cond
	barrierCount  int
	barrierGen    int
	barrierMax    float64
	barrierTarget float64 // completion time of the last finished barrier

	reduceMu     sync.Mutex
	reduceCond   *sync.Cond
	reduceCnt    int
	reduceGen    int
	reduceMax    float64
	reduceVals   []float64
	reduceSum    float64 // result of the last finished reduction
	reduceTarget float64

	// bufPool recycles message payload buffers: Send draws its internal
	// copy from here and Recycle returns consumed receive buffers.
	// Pooling is invisible to the machine's semantics — a drawn buffer is
	// resliced to the exact payload length and fully overwritten before
	// it is enqueued — so numeric results and virtual clocks are
	// byte-identical with or without recycling.
	bufPool sync.Pool
	// bufHigh is the high-water payload capacity (element count) seen by
	// getBuf, maintained with atomics because Send runs on every rank
	// goroutine concurrently.
	bufHigh int64
}

// getBuf returns a payload buffer of exactly n elements, reusing a
// recycled buffer when one of sufficient capacity is available.  Fresh
// allocations carry the high-water capacity, not just n: on mixed-size
// transfer patterns (a small exchange recycled between two large ones)
// the pooled buffer drawn for a large payload is often the small one,
// and allocating at exactly n would re-grow from scratch every time the
// sizes alternate.  Allocating at the high-water mark instead makes the
// pool converge to buffers that fit every payload in the run.
func (m *Machine) getBuf(n int) []float64 {
	for {
		h := atomic.LoadInt64(&m.bufHigh)
		if int64(n) <= h {
			break
		}
		if atomic.CompareAndSwapInt64(&m.bufHigh, h, int64(n)) {
			break
		}
	}
	if v := m.bufPool.Get(); v != nil {
		if b := v.(*[]float64); cap(*b) >= n {
			return (*b)[:n]
		}
	}
	return make([]float64, n, atomic.LoadInt64(&m.bufHigh))
}

// Rank is one simulated processor, owned by its goroutine.
type Rank struct {
	ID     int
	m      *Machine
	clock  float64
	flops  float64
	sent   int64
	sentB  int64
	recvd  int64
	idle   float64
	events []Event
}

// Result aggregates a finished run.
type Result struct {
	Procs int
	// Time is the makespan: the maximum final virtual clock.
	Time float64
	// RankTime, RankIdle, RankFlops, Sent*, Recvd index by rank.
	RankTime  []float64
	RankIdle  []float64
	RankFlops []float64
	SentMsgs  []int64
	SentBytes []int64
	RecvMsgs  []int64
	Events    []Event
}

// TotalMessages sums messages sent by all ranks.
func (r *Result) TotalMessages() int64 {
	var n int64
	for _, s := range r.SentMsgs {
		n += s
	}
	return n
}

// TotalBytes sums bytes sent by all ranks.
func (r *Result) TotalBytes() int64 {
	var n int64
	for _, s := range r.SentBytes {
		n += s
	}
	return n
}

// Run executes body on every rank concurrently and collects the result.
//
// When the machine aborts (Config.TimeLimit, Config.WallLimit), every
// rank blocked in a machine operation is woken and panics with an error
// wrapping ErrAborted; body is expected to recover it (the spmd executor
// and the nas hand-coded drivers do) and surface it to their caller.
func Run(cfg Config, body func(r *Rank)) *Result {
	if cfg.Procs <= 0 {
		panic("mpsim: Procs must be positive")
	}
	m := &Machine{cfg: cfg, boxes: map[mailboxKey]*mailbox{}}
	m.barrierCond = sync.NewCond(&m.barrierMu)
	m.reduceCond = sync.NewCond(&m.reduceMu)

	var wallTimer *time.Timer
	if cfg.WallLimit > 0 {
		wallTimer = time.AfterFunc(cfg.WallLimit, func() { m.Abort(ErrWallLimit) })
	}

	ranks := make([]*Rank, cfg.Procs)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Procs; i++ {
		ranks[i] = &Rank{ID: i, m: m}
		wg.Add(1)
		go func(r *Rank) {
			defer wg.Done()
			if cfg.PinOSThreads {
				runtime.LockOSThread()
				defer runtime.UnlockOSThread()
			}
			body(r)
		}(ranks[i])
	}
	wg.Wait()
	if wallTimer != nil {
		wallTimer.Stop()
	}

	res := &Result{
		Procs:     cfg.Procs,
		RankTime:  make([]float64, cfg.Procs),
		RankIdle:  make([]float64, cfg.Procs),
		RankFlops: make([]float64, cfg.Procs),
		SentMsgs:  make([]int64, cfg.Procs),
		SentBytes: make([]int64, cfg.Procs),
		RecvMsgs:  make([]int64, cfg.Procs),
	}
	for i, r := range ranks {
		res.RankTime[i] = r.clock
		res.RankIdle[i] = r.idle
		res.RankFlops[i] = r.flops
		res.SentMsgs[i] = r.sent
		res.SentBytes[i] = r.sentB
		res.RecvMsgs[i] = r.recvd
		res.Time = math.Max(res.Time, r.clock)
		res.Events = append(res.Events, r.events...)
	}
	sort.Slice(res.Events, func(i, j int) bool {
		if res.Events[i].Rank != res.Events[j].Rank {
			return res.Events[i].Rank < res.Events[j].Rank
		}
		return res.Events[i].Start < res.Events[j].Start
	})
	return res
}

// Abort marks the machine dead with the given cause (first call wins)
// and wakes every rank blocked in a receive, barrier or reduction; woken
// ranks — and any rank entering a machine operation afterwards — panic
// with the cause, to be recovered by the run body.
func (m *Machine) Abort(cause error) {
	if cause == nil {
		cause = ErrAborted
	}
	if !m.abortErr.CompareAndSwap(nil, &cause) {
		return
	}
	// Broadcast under each condition's own lock: a waiter holds that
	// lock from its flag check until Wait releases it, so it either saw
	// the flag or receives this wake-up.
	m.mu.Lock()
	boxes := make([]*mailbox, 0, len(m.boxes))
	for _, mb := range m.boxes {
		boxes = append(boxes, mb)
	}
	m.mu.Unlock()
	for _, mb := range boxes {
		mb.mu.Lock()
		mb.cond.Broadcast()
		mb.mu.Unlock()
	}
	m.barrierMu.Lock()
	m.barrierCond.Broadcast()
	m.barrierMu.Unlock()
	m.reduceMu.Lock()
	m.reduceCond.Broadcast()
	m.reduceMu.Unlock()
}

// abortedErr returns the abort cause, or nil while the machine is live.
func (m *Machine) abortedErr() error {
	if p := m.abortErr.Load(); p != nil {
		return *p
	}
	return nil
}

// checkLimits panics with the abort cause if the machine is dead, and
// trips the virtual-time limit when this rank's clock has passed it.
// Called from every clock-advancing operation, so an over-limit run
// aborts deterministically: virtual clocks only grow, hence a run aborts
// iff its makespan would exceed the limit.
func (r *Rank) checkLimits() {
	m := r.m
	if err := m.abortedErr(); err != nil {
		panic(err)
	}
	if m.cfg.TimeLimit > 0 && r.clock > m.cfg.TimeLimit {
		m.Abort(ErrTimeLimit)
		panic(ErrTimeLimit)
	}
}

func (m *Machine) box(k mailboxKey) *mailbox {
	m.mu.Lock()
	defer m.mu.Unlock()
	mb, ok := m.boxes[k]
	if !ok {
		mb = &mailbox{}
		mb.cond = sync.NewCond(&mb.mu)
		m.boxes[k] = mb
	}
	return mb
}

// Procs returns the machine size.
func (r *Rank) Procs() int { return r.m.cfg.Procs }

// Time returns the rank's current virtual clock (seconds).
func (r *Rank) Time() float64 { return r.clock }

// Compute advances the clock by flops floating-point operations.
func (r *Rank) Compute(flops float64) {
	if flops <= 0 {
		return
	}
	dt := flops * r.m.cfg.FlopTime
	r.emit(Event{Kind: EvCompute, Start: r.clock, End: r.clock + dt, Peer: -1})
	r.clock += dt
	r.flops += flops
	r.checkLimits()
}

// ComputeLabeled is Compute with a phase label recorded in the trace.
func (r *Rank) ComputeLabeled(flops float64, label string) {
	if flops <= 0 {
		return
	}
	dt := flops * r.m.cfg.FlopTime
	r.emit(Event{Kind: EvCompute, Start: r.clock, End: r.clock + dt, Peer: -1, Label: label})
	r.clock += dt
	r.flops += flops
	r.checkLimits()
}

// Send transmits data to rank dst with a tag.  The model is a buffered
// (non-blocking) send: the sender pays its overhead and continues; the
// message arrives at sender_clock + overhead + latency + bytes/bandwidth.
//
// Send copies data into an internal buffer before it returns, so the
// caller may immediately reuse (or mutate) data after the call — the
// contract the spmd engine's pooled packing buffers rely on.  This is a
// stable part of the API, covered by TestSendCopiesCallerBuffer.
func (r *Rank) Send(dst, tag int, data []float64) {
	if dst < 0 || dst >= r.m.cfg.Procs {
		panic(fmt.Sprintf("mpsim: Send to invalid rank %d", dst))
	}
	r.checkLimits()
	bytes := 8 * len(data)
	cost := r.m.cfg.SendOverhead + float64(bytes)*r.m.cfg.GapPerByte
	r.emit(Event{Kind: EvSend, Start: r.clock, End: r.clock + cost, Peer: dst, Bytes: bytes, Tag: tag})
	r.clock += cost
	arrival := r.clock + r.m.cfg.Latency
	cp := r.m.getBuf(len(data))
	copy(cp, data)
	r.m.box(mailboxKey{src: r.ID, dst: dst, tag: tag}).push(message{data: cp, arrival: arrival, bytes: bytes})
	r.sent++
	r.sentB += int64(bytes)
}

// Recv blocks until a message from src with the tag arrives, advancing
// the virtual clock to the arrival time (idle time is recorded).
//
// The returned slice is owned by the caller.  A caller that has fully
// consumed it may hand it back with Recycle so later Sends reuse the
// storage instead of allocating.
func (r *Rank) Recv(src, tag int) []float64 {
	if src < 0 || src >= r.m.cfg.Procs {
		panic(fmt.Sprintf("mpsim: Recv from invalid rank %d", src))
	}
	r.checkLimits()
	msg := r.m.box(mailboxKey{src: src, dst: r.ID, tag: tag}).pop(r.m)
	if msg.arrival > r.clock {
		r.emit(Event{Kind: EvRecvWait, Start: r.clock, End: msg.arrival, Peer: src, Bytes: msg.bytes, Tag: tag})
		r.idle += msg.arrival - r.clock
		r.clock = msg.arrival
	}
	cost := r.m.cfg.RecvOverhead
	r.emit(Event{Kind: EvRecvCopy, Start: r.clock, End: r.clock + cost, Peer: src, Bytes: msg.bytes, Tag: tag})
	r.clock += cost
	r.recvd++
	r.checkLimits()
	return msg.data
}

// Recycle returns a buffer previously obtained from Recv to the
// machine's payload pool.  The caller must not touch buf afterwards: a
// later Send on any rank may reclaim and overwrite it.  Recycling is
// optional — unreturned buffers are simply garbage-collected — and never
// changes results: pooled buffers are resliced to the exact new payload
// length and fully overwritten before reuse.
func (r *Rank) Recycle(buf []float64) {
	if buf == nil {
		return
	}
	r.m.bufPool.Put(&buf)
}

// Request is a pending non-blocking receive.
type Request struct {
	rank *Rank
	src  int
	tag  int
	done bool
	data []float64
}

// Irecv posts a non-blocking receive; Wait completes it.
func (r *Rank) Irecv(src, tag int) *Request {
	return &Request{rank: r, src: src, tag: tag}
}

// Wait completes a pending receive.
func (q *Request) Wait() []float64 {
	if !q.done {
		q.data = q.rank.Recv(q.src, q.tag)
		q.done = true
	}
	return q.data
}

// Barrier synchronizes all ranks; every clock advances to the global max
// plus a log-tree latency term.  The completing rank computes the target
// time; waiters read it after wake-up.  A subsequent barrier cannot start
// overwriting state until every rank of this one has re-entered, so the
// published target is stable for all readers.
func (r *Rank) Barrier() {
	r.checkLimits()
	m := r.m
	m.barrierMu.Lock()
	gen := m.barrierGen
	if m.barrierCount == 0 {
		m.barrierMax = 0
	}
	if r.clock > m.barrierMax {
		m.barrierMax = r.clock
	}
	m.barrierCount++
	if m.barrierCount == m.cfg.Procs {
		m.barrierCount = 0
		m.barrierTarget = m.barrierMax + m.cfg.Latency*math.Ceil(math.Log2(float64(m.cfg.Procs)))
		m.barrierGen++
		m.barrierCond.Broadcast()
	} else {
		for gen == m.barrierGen {
			if err := m.abortedErr(); err != nil {
				m.barrierMu.Unlock()
				panic(err)
			}
			m.barrierCond.Wait()
		}
	}
	target := m.barrierTarget
	m.barrierMu.Unlock()

	if target > r.clock {
		r.emit(Event{Kind: EvBarrier, Start: r.clock, End: target, Peer: -1})
		r.idle += target - r.clock
		r.clock = target
	}
}

// AllReduceSum combines one value from every rank; all ranks receive the
// global sum and advance to the combined completion time.
func (r *Rank) AllReduceSum(v float64) float64 { return r.AllReduce('+', v) }

// AllReduce combines one value from every rank under op: '+' sum,
// '*' product, '<' min, '>' max.  All ranks receive the result and
// advance to the combined completion time (log-tree latency).
//
// Contributions are folded in rank order 0..P-1 regardless of which
// goroutine arrives last, so floating-point reductions are bit-exact
// run to run — and bit-exact against the shared-memory backend, whose
// teams fold in the same order.
func (r *Rank) AllReduce(op byte, v float64) float64 {
	r.checkLimits()
	m := r.m
	m.reduceMu.Lock()
	gen := m.reduceGen
	if m.reduceCnt == 0 {
		if cap(m.reduceVals) < m.cfg.Procs {
			m.reduceVals = make([]float64, m.cfg.Procs)
		}
		m.reduceVals = m.reduceVals[:m.cfg.Procs]
		m.reduceMax = 0
	}
	m.reduceVals[r.ID] = v
	if r.clock > m.reduceMax {
		m.reduceMax = r.clock
	}
	m.reduceCnt++
	if m.reduceCnt == m.cfg.Procs {
		m.reduceCnt = 0
		sum := m.reduceVals[0]
		for _, x := range m.reduceVals[1:] {
			switch op {
			case '+':
				sum += x
			case '*':
				sum *= x
			case '<':
				sum = math.Min(sum, x)
			case '>':
				sum = math.Max(sum, x)
			default:
				panic(fmt.Sprintf("mpsim: unknown reduction op %q", op))
			}
		}
		steps := math.Ceil(math.Log2(float64(m.cfg.Procs)))
		m.reduceSum = sum
		m.reduceTarget = m.reduceMax + steps*(m.cfg.Latency+8*m.cfg.GapPerByte)
		m.reduceGen++
		m.reduceCond.Broadcast()
	} else {
		for gen == m.reduceGen {
			if err := m.abortedErr(); err != nil {
				m.reduceMu.Unlock()
				panic(err)
			}
			m.reduceCond.Wait()
		}
	}
	sum := m.reduceSum
	target := m.reduceTarget
	m.reduceMu.Unlock()

	if target > r.clock {
		r.emit(Event{Kind: EvBarrier, Start: r.clock, End: target, Peer: -1, Label: "allreduce"})
		r.idle += target - r.clock
		r.clock = target
	}
	return sum
}

func (r *Rank) emit(e Event) {
	if !r.m.cfg.Trace {
		return
	}
	e.Rank = r.ID
	r.events = append(r.events, e)
}
