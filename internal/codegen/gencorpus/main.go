// Command gencorpus regenerates the checked-in native-kernel corpus
// (internal/codegen/gen): it compiles every program in codegen.Corpus,
// extracts all kernel units regardless of the specialization threshold
// (so parity tests can exercise kernels the runtime would skip), and
// writes the deduplicated, fingerprint-sorted generated package.  The
// output is deterministic — CI regenerates and diffs it.
package main

import (
	"flag"
	"fmt"
	"go/format"
	"os"

	"dhpf/internal/codegen"
	"dhpf/internal/spmd"
)

func main() {
	out := flag.String("o", "gen/kernels.go", "output file")
	flag.Parse()
	var units []*spmd.KernelUnit
	for _, e := range codegen.Corpus() {
		prog, err := spmd.CompileSource(e.Source, e.Params, e.Opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gencorpus: compile %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		us := codegen.SelectUnits(prog, -1)
		if len(us) == 0 {
			fmt.Fprintf(os.Stderr, "gencorpus: %s yields no kernel units\n", e.Name)
			os.Exit(1)
		}
		units = append(units, us...)
	}
	src, err := format.Source([]byte(codegen.EmitCorpus(units)))
	if err != nil {
		fmt.Fprintf(os.Stderr, "gencorpus: emitted source does not format: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, src, 0o666); err != nil {
		fmt.Fprintf(os.Stderr, "gencorpus: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("gencorpus: wrote %s (%d units)\n", *out, countKernels(units))
}

func countKernels(units []*spmd.KernelUnit) int {
	seen := map[string]bool{}
	for _, u := range units {
		seen[u.Fingerprint()] = true
	}
	return len(seen)
}
