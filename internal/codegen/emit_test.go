package codegen

// Emission-layer tests: the generated corpus must be deterministic
// (CI regenerates and diffs it), gofmt-clean, FMA-proof, and carry the
// header + linter-exemption contract tools/vetdet enforces.

import (
	"go/format"
	"strings"
	"testing"

	"dhpf/internal/spmd"
)

func corpusUnits(t *testing.T) []*spmd.KernelUnit {
	t.Helper()
	var units []*spmd.KernelUnit
	for _, e := range Corpus() {
		prog, err := spmd.CompileSource(e.Source, e.Params, e.Opt)
		if err != nil {
			t.Fatalf("compile %s: %v", e.Name, err)
		}
		units = append(units, SelectUnits(prog, -1)...)
	}
	return units
}

// TestEmitCorpusDeterministic: two independent compiles of the corpus
// emit byte-identical source — the property the CI drift gate rests on.
func TestEmitCorpusDeterministic(t *testing.T) {
	a := EmitCorpus(corpusUnits(t))
	b := EmitCorpus(corpusUnits(t))
	if a != b {
		t.Fatal("EmitCorpus output differs across identical compiles")
	}
}

// TestEmitCorpusFormatted: the emitted package is already gofmt-clean
// after the generator's format.Source pass, and parses as valid Go.
func TestEmitCorpusFormatted(t *testing.T) {
	src := EmitCorpus(corpusUnits(t))
	formatted, err := format.Source([]byte(src))
	if err != nil {
		t.Fatalf("emitted corpus does not parse: %v", err)
	}
	// The emitter's raw output is allowed to differ from gofmt in
	// whitespace only; the generator always writes the formatted form.
	if _, err := format.Source(formatted); err != nil {
		t.Fatalf("formatted corpus unstable: %v", err)
	}
	if !strings.HasPrefix(src, GeneratedHeader) {
		t.Fatal("corpus missing the machine-generated header")
	}
	if !strings.Contains(src, VetdetExempt) {
		t.Fatal("corpus missing the vetdet exemption line")
	}
}

// TestEmitKernelShape checks the structural contract of one kernel:
// float64-wrapped operations (the no-FMA guarantee), hex float
// constants, window clamps against the bounds array, and the flop
// accumulator threading.
func TestEmitKernelShape(t *testing.T) {
	e := Corpus()[0]
	prog, err := spmd.CompileSource(e.Source, e.Params, e.Opt)
	if err != nil {
		t.Fatal(err)
	}
	units := prog.KernelUnits()
	if len(units) == 0 {
		t.Fatal("no units")
	}
	u := units[0]
	src := EmitKernel(u)
	for _, want := range []string{
		"func " + KernelFuncName(u.Fingerprint()) + "(ints []int, intSet []bool, floats []float64, fset []bool, arrays [][]float64, bounds []int, flops float64) float64 {",
		"bounds[0]",
		"flops +=",
		"return flops",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("kernel missing %q:\n%s", want, src)
		}
	}
	// Any emitted decimal float would round; constants must be hex or
	// the math.* specials.
	for _, line := range strings.Split(src, "\n") {
		if strings.Contains(line, "flops += ") && !strings.Contains(line, "0x") {
			t.Errorf("non-hex flop constant: %s", line)
		}
	}
}

// TestEmitPluginShape: the plugin variant is a self-contained main
// package with the loader's Kernels table and no dhpf imports.
func TestEmitPluginShape(t *testing.T) {
	e := Corpus()[0]
	prog, err := spmd.CompileSource(e.Source, e.Params, e.Opt)
	if err != nil {
		t.Fatal(err)
	}
	src := EmitPlugin(prog.KernelUnits())
	for _, want := range []string{"package main", "var Kernels = []struct {", "func main() {}"} {
		if !strings.Contains(src, want) {
			t.Errorf("plugin source missing %q", want)
		}
	}
	if strings.Contains(src, "dhpf/") {
		t.Error("plugin source must not import dhpf packages (package identity must not cross the plugin boundary)")
	}
	if _, err := format.Source([]byte(src)); err != nil {
		t.Fatalf("plugin source does not parse: %v", err)
	}
}

// TestDedupeSorted: duplicate fingerprints collapse and output order
// is fingerprint order, independent of input order.
func TestDedupeSorted(t *testing.T) {
	e := Corpus()[0]
	prog, err := spmd.CompileSource(e.Source, e.Params, e.Opt)
	if err != nil {
		t.Fatal(err)
	}
	units := prog.KernelUnits()
	if len(units) < 2 {
		t.Skip("need at least two units")
	}
	doubled := append(append([]*spmd.KernelUnit{}, units...), units...)
	out := dedupeSorted(doubled)
	if len(out) != len(dedupeSorted(units)) {
		t.Fatalf("duplicates survived: %d vs %d", len(out), len(dedupeSorted(units)))
	}
	for i := 1; i < len(out); i++ {
		if out[i-1].Fingerprint() >= out[i].Fingerprint() {
			t.Fatal("output not sorted by fingerprint")
		}
	}
}
