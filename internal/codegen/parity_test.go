package codegen

// The three-tier differential harness: every corpus program — the NAS
// benchmarks, their ablation/backend/grain variants, and the feature
// programs — is executed under the interpreter, the closure engine,
// and the native codegen tier, and all observables must be
// Float64bits-identical: global array contents, the virtual clocks
// (total, per-rank busy/idle/flops), and per-rank traffic counters.
// The checked-in gen corpus provides the kernels, so this runs with no
// plugin machinery (and therefore also under -race).

import (
	"errors"
	"math"
	"testing"
	"time"

	_ "dhpf/internal/codegen/gen"
	"dhpf/internal/mpsim"
	"dhpf/internal/spmd"
)

// runEngine executes prog and fails the test on error.  Wall-limit
// aborts skip the test: some corpus configurations genuinely deadlock
// (e.g. wavefront phases with availability analysis disabled),
// identically in every engine, and leave nothing deterministic to
// compare.
func runEngine(t *testing.T, prog *spmd.Program, procs int, engine spmd.Engine) *spmd.ExecResult {
	t.Helper()
	cfg := mpsim.SP2Config(procs)
	cfg.WallLimit = 30 * time.Second
	res, err := prog.ExecuteEngine(cfg, engine)
	if errors.Is(err, mpsim.ErrWallLimit) {
		t.Skipf("%v engine hit the wall limit (configuration deadlocks in every engine)", engine)
	}
	if err != nil {
		t.Fatalf("%v engine: %v", engine, err)
	}
	return res
}

// requireIdentical compares every observable of two runs bit-for-bit.
func requireIdentical(t *testing.T, prog *spmd.Program, la, lb string, ra, rb *spmd.ExecResult) {
	t.Helper()
	ma, mb := ra.Machine, rb.Machine
	if math.Float64bits(ma.Time) != math.Float64bits(mb.Time) {
		t.Fatalf("virtual time differs: %s %v, %s %v", la, ma.Time, lb, mb.Time)
	}
	if ma.TotalMessages() != mb.TotalMessages() || ma.TotalBytes() != mb.TotalBytes() {
		t.Fatalf("traffic differs: %s %d msgs/%d B, %s %d msgs/%d B",
			la, ma.TotalMessages(), ma.TotalBytes(), lb, mb.TotalMessages(), mb.TotalBytes())
	}
	for r := range ma.RankTime {
		if math.Float64bits(ma.RankTime[r]) != math.Float64bits(mb.RankTime[r]) ||
			math.Float64bits(ma.RankIdle[r]) != math.Float64bits(mb.RankIdle[r]) ||
			math.Float64bits(ma.RankFlops[r]) != math.Float64bits(mb.RankFlops[r]) {
			t.Fatalf("rank %d clocks differ between %s and %s", r, la, lb)
		}
		if ma.SentMsgs[r] != mb.SentMsgs[r] || ma.SentBytes[r] != mb.SentBytes[r] {
			t.Fatalf("rank %d counters differ between %s and %s", r, la, lb)
		}
	}
	for _, d := range prog.IR.Main().Decls {
		if d.Rank() == 0 {
			continue
		}
		ga, _, _, errA := ra.Global(d.Name)
		gb, _, _, errB := rb.Global(d.Name)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%s: Global errors differ: %s %v, %s %v", d.Name, la, errA, lb, errB)
		}
		if errA != nil {
			continue
		}
		if len(ga) != len(gb) {
			t.Fatalf("%s: lengths differ: %s %d, %s %d", d.Name, la, len(ga), lb, len(gb))
		}
		for k := range ga {
			if math.Float64bits(ga[k]) != math.Float64bits(gb[k]) {
				t.Fatalf("%s[%d]: %s %v (%#x), %s %v (%#x)", d.Name, k,
					la, ga[k], math.Float64bits(ga[k]), lb, gb[k], math.Float64bits(gb[k]))
			}
		}
	}
}

// TestCodegenParityCorpus runs every corpus entry under all three
// execution tiers and requires bit-identical observables, and — since
// the gen package pre-registers every corpus kernel — requires that
// the native tier actually invoked kernels rather than silently
// falling back everywhere.
func TestCodegenParityCorpus(t *testing.T) {
	for _, e := range Corpus() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			prog, err := spmd.CompileSource(e.Source, e.Params, e.Opt)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			units := prog.KernelUnits()
			if len(units) == 0 {
				t.Fatalf("corpus entry extracts no kernel units")
			}
			for _, u := range units {
				if spmd.KernelFor(u.Fingerprint()) == nil {
					t.Fatalf("unit %s (proc %s, stmt %d) missing from the generated corpus — rerun go generate ./internal/codegen",
						u.Fingerprint(), u.Proc, u.RootID)
				}
			}
			before := spmd.KernelInvocations()
			rc := runEngine(t, prog, e.Procs, spmd.EngineCodegen)
			if spmd.KernelInvocations() == before {
				t.Fatalf("codegen run invoked no native kernels (all prechecks bailed)")
			}
			re := runEngine(t, prog, e.Procs, spmd.EngineCompiled)
			ri := runEngine(t, prog, e.Procs, spmd.EngineInterp)
			requireIdentical(t, prog, "codegen", "compiled", rc, re)
			requireIdentical(t, prog, "codegen", "interp", rc, ri)
		})
	}
}

// TestCodegenEmptyRegistryEqualsCompiled: a program whose kernels are
// not registered (novel source, not in the generated corpus) runs
// under EngineCodegen exactly as EngineCompiled — the fallback ladder.
func TestCodegenEmptyRegistryEqualsCompiled(t *testing.T) {
	const src = `
program novel
param N = 20
!hpf$ processors procs(4)
!hpf$ distribute a(BLOCK) onto procs
subroutine main()
  real a(0:N-1)
  do i = 0, N-1
    a(i) = 3.25 * i + 0.125
  enddo
end
`
	prog, err := spmd.CompileSource(src, nil, spmd.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range prog.KernelUnits() {
		if spmd.KernelFor(u.Fingerprint()) != nil {
			t.Skipf("unit %s unexpectedly registered; cannot test the empty-registry path", u.Fingerprint())
		}
	}
	before := spmd.KernelInvocations()
	rc := runEngine(t, prog, 4, spmd.EngineCodegen)
	if spmd.KernelInvocations() != before {
		t.Fatalf("unregistered program still invoked kernels")
	}
	re := runEngine(t, prog, 4, spmd.EngineCompiled)
	requireIdentical(t, prog, "codegen", "compiled", rc, re)
}

// TestSelectUnits: the threshold keeps hot phases and drops cold ones;
// negative selects everything; an absurd threshold selects nothing.
func TestSelectUnits(t *testing.T) {
	prog, err := spmd.CompileSource(Corpus()[0].Source, nil, spmd.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	all := SelectUnits(prog, -1)
	if len(all) != len(prog.KernelUnits()) {
		t.Fatalf("negative threshold selected %d of %d units", len(all), len(prog.KernelUnits()))
	}
	def := SelectUnits(prog, 0)
	if len(def) == 0 {
		t.Fatalf("default threshold selected no SP units")
	}
	if len(def) > len(all) {
		t.Fatalf("threshold selected more units (%d) than exist (%d)", len(def), len(all))
	}
	if got := SelectUnits(prog, 1e18); len(got) != 0 {
		t.Fatalf("absurd threshold still selected %d units", len(got))
	}
}

// TestEnableNativePreRegistered: for a corpus program, the generated
// package already covers every selected unit, so EnableNative is a
// no-op with no fallback and no build.
func TestEnableNativePreRegistered(t *testing.T) {
	e := Corpus()[0]
	prog, err := spmd.CompileSource(e.Source, e.Params, e.Opt)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := EnableNative(prog, Options{NoPlugin: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fallback != "" {
		t.Fatalf("corpus program fell back: %s", rep.String())
	}
	if rep.Registered != rep.Selected || rep.Built != 0 {
		t.Fatalf("want all selected units pre-registered with no build, got %s", rep.String())
	}
}

// TestEnableNativeNoPluginFallback: a program outside the corpus with
// plugin builds disabled reports an INFO fallback, never an error.
func TestEnableNativeNoPluginFallback(t *testing.T) {
	const src = `
program nofb
param N = 64
!hpf$ processors procs(4)
!hpf$ distribute a(BLOCK) onto procs
subroutine main()
  real a(0:N-1)
  do i = 0, N-1
    a(i) = 1.5 * i + 2.5
  enddo
end
`
	prog, err := spmd.CompileSource(src, nil, spmd.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := EnableNative(prog, Options{MinPhaseFlops: -1, NoPlugin: true})
	if err != nil {
		t.Fatalf("fallback must not be an error: %v", err)
	}
	if rep.Fallback == "" {
		t.Fatalf("want a fallback reason, got %s", rep.String())
	}

	t.Setenv("DHPF_NO_PLUGIN", "1")
	rep, err = EnableNative(prog, Options{MinPhaseFlops: -1})
	if err != nil {
		t.Fatalf("env-disabled fallback must not be an error: %v", err)
	}
	if rep.Fallback == "" {
		t.Fatalf("DHPF_NO_PLUGIN did not force a fallback: %s", rep.String())
	}
}

// FuzzCodegenVsEngine fuzzes the execution configuration — corpus
// entry, machine cost parameters, pipeline grain — and requires the
// native tier to stay bit-identical to the closure engine.  Cost
// parameters change virtual-time interleavings and strip windows
// without changing which kernels are registered, so prechecks and
// window packing get exercised under many schedules.
func FuzzCodegenVsEngine(f *testing.F) {
	f.Add(uint8(0), uint16(29), uint16(12), uint8(8))
	f.Add(uint8(2), uint16(1), uint16(1), uint8(3))
	f.Add(uint8(7), uint16(500), uint16(80), uint8(1))
	f.Fuzz(func(t *testing.T, idx uint8, latency, flop uint16, grain uint8) {
		corpus := Corpus()
		e := corpus[int(idx)%len(corpus)]
		opt := e.Opt
		opt.PipelineGrain = 1 + int(grain)%16
		prog, err := spmd.CompileSource(e.Source, e.Params, opt)
		if err != nil {
			t.Skip()
		}
		cfg := mpsim.SP2Config(e.Procs)
		cfg.Latency = float64(latency) * 1e-6
		cfg.FlopTime = float64(flop) * 1e-9
		rc, errC := prog.ExecuteEngine(cfg, spmd.EngineCodegen)
		re, errE := prog.ExecuteEngine(cfg, spmd.EngineCompiled)
		if (errC == nil) != (errE == nil) {
			t.Fatalf("engines disagree on success: codegen %v, compiled %v", errC, errE)
		}
		if errC != nil {
			return
		}
		requireIdentical(t, prog, "codegen", "compiled", rc, re)
	})
}
