package codegen

// plugin.go builds emitted kernel sources into Go plugins and loads
// them.  Builds are cached content-addressed: the .so file name is the
// hash of (kernel ABI, pipeline-option fingerprint, emitted source,
// toolchain version), so recompiling the same program with the same
// options reuses the artifact, and any change to emission or options
// misses cleanly.  When Options.StorePath is set the artifact is also
// persisted in a dhpf chunk store (internal/store), surviving cache
// directory cleanups.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"plugin"
	"runtime"
	"sync"

	"dhpf/internal/spmd"
	"dhpf/internal/store"
)

// loadedKernels caches kernel tables by content key.  The Go runtime
// refuses to load a second .so with the same module path, and the
// module path is derived from the key, so within one process the first
// successful load must serve every later request for that key — even
// from a different cache directory.
var (
	loadedMu      sync.Mutex
	loadedKernels = map[string]map[string]spmd.KernelFunc{}
)

func rememberLoaded(key string, kernels map[string]spmd.KernelFunc) {
	loadedMu.Lock()
	loadedKernels[key] = kernels
	loadedMu.Unlock()
}

// pluginUnsupported reports why this process cannot build and load
// plugins, or "" when it can.
func pluginUnsupported() string {
	if raceEnabled {
		return "host binary is race-instrumented (plugin runtime would mismatch)"
	}
	switch runtime.GOOS {
	case "linux", "darwin", "freebsd":
	default:
		return fmt.Sprintf("buildmode=plugin is unsupported on %s", runtime.GOOS)
	}
	if _, err := exec.LookPath("go"); err != nil {
		return "go toolchain not found in PATH"
	}
	return ""
}

// pluginKey is the content address of a build: every input that could
// change the produced kernels participates.
func pluginKey(src string, compileOpt spmd.Options) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s\n%s\n", spmd.KernelABI, compileOpt.Fingerprint(), runtime.Version())
	h.Write([]byte(src))
	return hex.EncodeToString(h.Sum(nil))
}

// cacheDir resolves the plugin cache directory, creating it.
func cacheDir(opt Options) (string, error) {
	dir := opt.CacheDir
	if dir == "" {
		if base, err := os.UserCacheDir(); err == nil {
			dir = filepath.Join(base, "dhpf-codegen")
		} else {
			dir = filepath.Join(os.TempDir(), "dhpf-codegen")
		}
	}
	return dir, os.MkdirAll(dir, 0o777)
}

// buildAndLoad turns emitted plugin source into a fingerprint → kernel
// map: cache-directory hit, then store hit, then a real
// `go build -buildmode=plugin` in a throwaway module.  The boolean
// reports whether the .so came from either cache.
func buildAndLoad(src string, compileOpt spmd.Options, opt Options) (map[string]spmd.KernelFunc, bool, error) {
	key := pluginKey(src, compileOpt)
	loadedMu.Lock()
	if kernels, ok := loadedKernels[key]; ok {
		loadedMu.Unlock()
		return kernels, true, nil
	}
	loadedMu.Unlock()
	dir, err := cacheDir(opt)
	if err != nil {
		return nil, false, fmt.Errorf("plugin cache dir: %v", err)
	}
	soPath := filepath.Join(dir, key+".so")
	if _, err := os.Stat(soPath); err == nil {
		kernels, err := loadPlugin(soPath)
		if err == nil {
			rememberLoaded(key, kernels)
		}
		return kernels, true, err
	}
	if fetchFromStore(opt.StorePath, key, soPath) {
		kernels, err := loadPlugin(soPath)
		if err == nil {
			rememberLoaded(key, kernels)
		}
		return kernels, true, err
	}
	if err := buildPlugin(src, key, dir, soPath); err != nil {
		return nil, false, err
	}
	putInStore(opt.StorePath, key, soPath)
	kernels, err := loadPlugin(soPath)
	if err == nil {
		rememberLoaded(key, kernels)
	}
	return kernels, false, err
}

// buildPlugin compiles src in a fresh single-file module named after
// the content key (unique module paths keep multiple loaded plugins
// distinct in one process) and moves the .so into place atomically.
func buildPlugin(src, key, dir, soPath string) error {
	work, err := os.MkdirTemp(dir, "build-")
	if err != nil {
		return fmt.Errorf("plugin workdir: %v", err)
	}
	defer os.RemoveAll(work)
	mod := fmt.Sprintf("module dhpfkernels_%s\n\ngo 1.21\n", key[:12])
	if err := os.WriteFile(filepath.Join(work, "go.mod"), []byte(mod), 0o666); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(work, "main.go"), []byte(src), 0o666); err != nil {
		return err
	}
	out := filepath.Join(work, "kernels.so")
	cmd := exec.Command("go", "build", "-buildmode=plugin", "-o", out, ".")
	cmd.Dir = work
	if msg, err := cmd.CombinedOutput(); err != nil {
		return fmt.Errorf("plugin build failed: %v: %s", err, msg)
	}
	// Rename within the cache directory is atomic: concurrent builders
	// of the same key race benignly to an identical artifact.
	if err := os.Rename(out, soPath); err != nil {
		return fmt.Errorf("plugin install: %v", err)
	}
	return nil
}

// loadPlugin opens a built plugin and returns its kernel table.
// plugin.Open caches by path, so reloading a cache hit in the same
// process returns the already-loaded module.
func loadPlugin(soPath string) (map[string]spmd.KernelFunc, error) {
	p, err := plugin.Open(soPath)
	if err != nil {
		return nil, fmt.Errorf("plugin open: %v", err)
	}
	sym, err := p.Lookup("Kernels")
	if err != nil {
		return nil, fmt.Errorf("plugin lookup: %v", err)
	}
	// The table type is unnamed on both sides of the plugin boundary,
	// so type identity is structural and survives separate builds.
	tab, ok := sym.(*[]struct {
		Unit string
		Fn   func([]int, []bool, []float64, []bool, [][]float64, []int, float64) float64
	})
	if !ok {
		return nil, fmt.Errorf("plugin Kernels has wrong type %T (ABI %s mismatch)", sym, spmd.KernelABI)
	}
	kernels := make(map[string]spmd.KernelFunc, len(*tab))
	for _, e := range *tab {
		kernels[e.Unit] = e.Fn
	}
	return kernels, nil
}

// storeKey names a plugin artifact inside the chunk store.
func storeKey(key string) string { return "codegen.plugin:" + key }

// fetchFromStore materializes a persisted plugin at soPath, reporting
// whether it did.  Store problems are treated as misses: the build
// path remains available.
func fetchFromStore(path, key, soPath string) bool {
	if path == "" {
		return false
	}
	st, err := store.Open(path, store.Options{})
	if err != nil {
		return false
	}
	defer st.Close()
	man, ok := st.GetManifest(storeKey(key))
	if !ok {
		return false
	}
	var so []byte
	for _, ref := range man.Refs {
		chunk, ok := st.GetChunk(ref.Addr)
		if !ok {
			return false
		}
		so = append(so, chunk...)
	}
	tmp := soPath + ".tmp"
	if os.WriteFile(tmp, so, 0o666) != nil {
		return false
	}
	return os.Rename(tmp, soPath) == nil
}

// putInStore persists a built plugin; failures are ignored (the cache
// directory copy still serves this process).
func putInStore(path, key, soPath string) {
	if path == "" {
		return
	}
	so, err := os.ReadFile(soPath)
	if err != nil {
		return
	}
	st, err := store.Open(path, store.Options{})
	if err != nil {
		return
	}
	defer st.Close()
	addr, err := st.PutChunk(so)
	if err != nil {
		return
	}
	_ = st.PutManifest(storeKey(key), store.Manifest{
		Kind: "codegen.plugin",
		Meta: map[string]string{"go": runtime.Version(), "abi": spmd.KernelABI},
		Refs: []store.ChunkRef{{Name: "so", Addr: addr}},
	})
}
