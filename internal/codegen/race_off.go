//go:build !race

package codegen

// raceEnabled mirrors the build's -race flag; see race_on.go.
const raceEnabled = false
