package codegen

// codegen.go is the orchestration layer of the native tier: the shared
// emission corpus (the programs whose kernels are pre-generated into
// internal/codegen/gen), analysis-driven unit selection (specialize
// only phases whose flop count clears a threshold; everything else
// stays on the closure engine), and EnableNative — the entry point
// cmd/dhpfc and the service use to bring a program's kernels online,
// falling back gracefully when plugins are unavailable.

//go:generate go run ./gencorpus -o gen/kernels.go

import (
	"fmt"
	"os"

	"dhpf/internal/ir"
	"dhpf/internal/nas"
	"dhpf/internal/passes"
	"dhpf/internal/spmd"
)

// DefaultMinPhaseFlops is the specialization threshold: a kernel unit
// is worth native code only when its phase's whole-program flop count
// (analysis.PhaseSummary.Flops, executed instances × cost summed over
// ranks) reaches it.  Phases below it — scalar epilogues, tiny setup
// loops — stay on the closure engine, whose per-call overhead is
// already negligible at that size.
const DefaultMinPhaseFlops = 256

// CorpusEntry is one program of the emission corpus.
type CorpusEntry struct {
	Name   string
	Source string
	Params map[string]int
	// Procs is the rank count the parity tests execute with (the grid
	// declared by Source must have this size).
	Procs int
	Opt   spmd.Options
}

// Corpus returns the emission corpus: the NAS benchmark programs at
// their standard benchmark sizes (the exact compiles BenchmarkExecute*
// runs, so the checked-in gen package accelerates them out of the box),
// ablation variants (disabled passes change computation partitions and
// therefore kernel shapes), backend/grain variants, and small feature
// programs covering emission paths the NAS codes miss (conditionals,
// intrinsics, broadcast reads).  gencorpus emits kernels for every
// entry; the parity tests execute every entry under all three tiers.
func Corpus() []CorpusEntry {
	shm := spmd.DefaultOptions()
	shm.Backend = passes.BackendShm
	grain := spmd.DefaultOptions()
	grain.PipelineGrain = 4
	return []CorpusEntry{
		{Name: "sp16", Source: nas.SPSource(16, 1, 2, 2), Procs: 4, Opt: spmd.DefaultOptions()},
		{Name: "bt12", Source: nas.BTSource(12, 1, 2, 2), Procs: 4, Opt: spmd.DefaultOptions()},
		{Name: "lu16", Source: nas.LUSource(16, 1, 2, 2), Procs: 4, Opt: spmd.DefaultOptions()},
		{Name: "sp16-nolocalize", Source: nas.SPSource(16, 1, 2, 2), Procs: 4,
			Opt: spmd.DefaultOptions().WithDisabled(passes.PassLocalize)},
		{Name: "sp16-noavail", Source: nas.SPSource(16, 1, 2, 2), Procs: 4,
			Opt: spmd.DefaultOptions().WithDisabled(passes.PassAvailability)},
		{Name: "bt12-noloopdist", Source: nas.BTSource(12, 1, 2, 2), Procs: 4,
			Opt: spmd.DefaultOptions().WithDisabled(passes.PassLoopDist)},
		{Name: "sp16-shm", Source: nas.SPSource(16, 1, 2, 2), Procs: 4, Opt: shm},
		{Name: "lu16-grain4", Source: nas.LUSource(16, 1, 2, 2), Procs: 4, Opt: grain},
		{Name: "features-cond", Source: featCondSource, Procs: 4, Opt: spmd.DefaultOptions()},
		{Name: "features-intrin", Source: featIntrinSource, Procs: 4, Opt: spmd.DefaultOptions()},
		{Name: "features-broadcast", Source: featBroadcastSource, Procs: 4, Opt: spmd.DefaultOptions()},
	}
}

// featCondSource exercises pIf lowering: nested conditionals with both
// arms, the "/=" operator, and guard boxes interacting with the
// conditional structure.
const featCondSource = `
program fcond
param N = 24
!hpf$ processors procs(4)
!hpf$ template tm(N, N)
!hpf$ align a with tm(d0, d1)
!hpf$ align b with tm(d0, d1)
!hpf$ distribute tm(*, BLOCK) onto procs
subroutine main()
  real a(0:N-1, 0:N-1)
  real b(0:N-1, 0:N-1)
  do j = 0, N-1
    do i = 0, N-1
      if (i < N-4) then
        if (j /= 7) then
          a(i,j) = 0.25 * i + 0.5 * j
        else
          a(i,j) = -1.0
        endif
      else
        a(i,j) = 2.0
      endif
    enddo
  enddo
  do j = 1, N-2
    do i = 1, N-2
      b(i,j) = a(i-1,j) + a(i+1,j) + a(i,j-1) + a(i,j+1)
    enddo
  enddo
end
`

// featIntrinSource covers every canonical intrinsic the extractor
// admits, both unary and binary arities, plus scalar assignments
// inside a parallel loop.
const featIntrinSource = `
program fintr
param N = 32
!hpf$ processors procs(4)
!hpf$ distribute a(BLOCK) onto procs
!hpf$ distribute b(BLOCK) onto procs
subroutine main()
  real a(0:N-1)
  real b(0:N-1)
  do i = 0, N-1
    a(i) = sin(0.1 * i) + cos(0.2 * i)
  enddo
  do i = 0, N-1
    b(i) = sqrt(abs(a(i))) + exp(0.01 * i) + log(2.0 + i)
  enddo
  do i = 0, N-1
    a(i) = min(a(i), b(i)) + max(a(i), b(i)) + mod(1.0 * i, 7.0) + pow(1.01, 1.0 * i)
  enddo
end
`

// featBroadcastSource covers replicated reads of a remote element
// (broadcast communication at the loop root) feeding a kernel body.
const featBroadcastSource = `
program fbc
param N = 16
!hpf$ processors procs(4)
!hpf$ distribute a(BLOCK) onto procs
!hpf$ distribute b(BLOCK) onto procs
subroutine main()
  real a(0:N-1)
  real b(0:N-1)
  do i = 0, N-1
    a(i) = 0.5 * i + 1.0
  enddo
  do i = 0, N-1
    b(i) = a(9) * i + a(2)
  enddo
end
`

// SelectUnits returns the program's kernel units whose containing
// top-level phase clears the flop threshold, per the static analysis
// (the same exact oracle the tuner trusts).  minPhaseFlops == 0 uses
// DefaultMinPhaseFlops; a negative value selects every unit (the
// corpus generator's setting, so parity tests can exercise kernels the
// threshold would skip).  If the analysis itself fails, every unit is
// selected: the precheck and registry make over-selection safe.
func SelectUnits(p *spmd.Program, minPhaseFlops float64) []*spmd.KernelUnit {
	units := p.KernelUnits()
	if minPhaseFlops < 0 {
		return units
	}
	if minPhaseFlops == 0 {
		minPhaseFlops = DefaultMinPhaseFlops
	}
	res, err := p.Analyze()
	if err != nil {
		return units
	}
	// Phase flops are keyed by top-level statement; map every statement
	// to its containing top-level statement, per procedure.
	topOf := map[string]map[int]int{}
	for _, proc := range p.IR.Procs {
		m := map[int]int{}
		for _, s := range proc.Body {
			top := s.StmtID()
			ir.Walk([]ir.Stmt{s}, func(st ir.Stmt, _ []*ir.Loop) bool {
				m[st.StmtID()] = top
				return true
			})
		}
		topOf[proc.Name] = m
	}
	flops := map[string]map[int]float64{}
	for _, ps := range res.Procs {
		m := map[int]float64{}
		for _, ph := range ps.Phases {
			m[ph.Stmt] = ph.Flops
		}
		flops[ps.Proc] = m
	}
	var out []*spmd.KernelUnit
	for _, u := range units {
		top, ok := topOf[u.Proc][u.RootID]
		if !ok {
			continue
		}
		if flops[u.Proc][top] >= minPhaseFlops {
			out = append(out, u)
		}
	}
	return out
}

// Options configures EnableNative.
type Options struct {
	// MinPhaseFlops is the specialization threshold (0 = default,
	// negative = every unit); see SelectUnits.
	MinPhaseFlops float64
	// NoPlugin disables on-the-fly plugin builds: only kernels already
	// in the registry (the checked-in gen corpus, or a prior
	// EnableNative) are used.  The DHPF_NO_PLUGIN environment variable
	// forces this.
	NoPlugin bool
	// CacheDir overrides the plugin build/cache directory (default: a
	// "dhpf-codegen" directory under os.UserCacheDir, falling back to
	// the system temp directory).
	CacheDir string
	// StorePath, when non-empty, persists built plugins in a dhpf
	// chunk store at this path, keyed by pipeline-option fingerprint +
	// emitted-source hash + toolchain version, so rebuilt caches
	// survive CacheDir cleanups.
	StorePath string
}

// Report says what EnableNative did.  Fallback is empty when native
// execution is fully available for the selected units; otherwise it is
// an INFO-grade reason (missing toolchain, plugins unsupported, build
// failure) and execution proceeds on the closure engine for the units
// that stayed unregistered — never an error, by the fallback-ladder
// contract (codegen → engine → interp).
type Report struct {
	Units      int    // kernel units extracted from the program
	Selected   int    // units above the specialization threshold
	Registered int    // selected units already in the registry
	Built      int    // kernels loaded from a freshly built plugin
	CacheHit   bool   // plugin came from the content-addressed cache
	Fallback   string // why some units stay on the closure engine ("" = none)
}

// String renders the report as the one-line diagnostic dhpfc prints.
func (r Report) String() string {
	s := fmt.Sprintf("codegen: %d units, %d selected, %d pre-registered, %d built",
		r.Units, r.Selected, r.Registered, r.Built)
	if r.CacheHit {
		s += " (cache hit)"
	}
	if r.Fallback != "" {
		s += "; fallback: " + r.Fallback
	}
	return s
}

// EnableNative makes the native tier available for p: it extracts and
// selects kernel units, reuses registry entries where fingerprints
// already match (the checked-in gen corpus covers the standard
// benchmarks), and emits + builds + loads a plugin for the rest.  The
// error return is reserved for invariant violations (corrupt cache
// store); every expected obstacle — no go toolchain, plugin buildmode
// unsupported on this platform, race-instrumented host binary — lands
// in Report.Fallback with a nil error, and execution under
// Options.Engine=codegen silently uses the closure engine for
// unregistered units.
func EnableNative(p *spmd.Program, opt Options) (Report, error) {
	var rep Report
	units := p.KernelUnits()
	rep.Units = len(units)
	selected := SelectUnits(p, opt.MinPhaseFlops)
	rep.Selected = len(selected)
	var missing []*spmd.KernelUnit
	for _, u := range selected {
		if spmd.KernelFor(u.Fingerprint()) != nil {
			rep.Registered++
		} else {
			missing = append(missing, u)
		}
	}
	if len(missing) == 0 {
		return rep, nil
	}
	if opt.NoPlugin || os.Getenv("DHPF_NO_PLUGIN") != "" {
		rep.Fallback = fmt.Sprintf("%d kernels not pre-generated and plugin builds disabled", len(missing))
		return rep, nil
	}
	if reason := pluginUnsupported(); reason != "" {
		rep.Fallback = fmt.Sprintf("%d kernels not pre-generated and %s", len(missing), reason)
		return rep, nil
	}
	src := EmitPlugin(missing)
	kernels, cacheHit, err := buildAndLoad(src, p.Opt, opt)
	if err != nil {
		// Build or load failures degrade, not fail: the closure engine
		// is always a correct executor for every unit.
		rep.Fallback = err.Error()
		return rep, nil
	}
	rep.CacheHit = cacheHit
	for _, u := range missing {
		fp := u.Fingerprint()
		if fn, ok := kernels[fp]; ok {
			spmd.RegisterKernel(fp, fn)
			rep.Built++
		}
	}
	if rep.Built < len(missing) {
		rep.Fallback = fmt.Sprintf("plugin served %d of %d kernels", rep.Built, len(missing))
	}
	return rep, nil
}
