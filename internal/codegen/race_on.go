//go:build race

package codegen

// raceEnabled mirrors the build's -race flag: a race-instrumented host
// cannot load a non-instrumented plugin, so the native tier falls back
// to the closure engine under the race detector (the parity tests
// still run — against pre-registered gen kernels compiled into the
// same instrumented binary).
const raceEnabled = true
