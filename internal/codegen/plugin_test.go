package codegen

// Plugin-path tests: emit → go build -buildmode=plugin → load →
// register → execute, plus both cache layers.  Skipped where plugins
// cannot work (race-instrumented binary, unsupported OS, no
// toolchain); the parity suite still covers the native tier there via
// the compiled-in gen corpus.

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"dhpf/internal/mpsim"
	"dhpf/internal/spmd"
)

// pluginSource is deliberately outside the emission corpus, so its
// kernels are never pre-registered by the gen package.
const pluginSource = `
program plg
param N = 40
!hpf$ processors procs(4)
!hpf$ template tm(N, N)
!hpf$ align a with tm(d0, d1)
!hpf$ align b with tm(d0, d1)
!hpf$ distribute tm(*, BLOCK) onto procs
subroutine main()
  real a(0:N-1, 0:N-1)
  real b(0:N-1, 0:N-1)
  do j = 0, N-1
    do i = 0, N-1
      a(i,j) = 0.75 * i + 1.25 * j
    enddo
  enddo
  do j = 1, N-2
    do i = 1, N-2
      b(i,j) = 0.2 * (a(i-1,j) + a(i+1,j) + a(i,j-1) + a(i,j+1) + a(i,j))
    enddo
  enddo
end
`

func requirePlugins(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("plugin builds are slow")
	}
	if reason := pluginUnsupported(); reason != "" {
		t.Skip(reason)
	}
}

// TestPluginBuildLoadAndCache drives buildAndLoad through all three
// acquisition paths — fresh build, cache-directory hit, store
// rehydration — and checks the loaded kernels cover every unit.
func TestPluginBuildLoadAndCache(t *testing.T) {
	requirePlugins(t)
	prog, err := spmd.CompileSource(pluginSource, nil, spmd.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	units := SelectUnits(prog, -1)
	if len(units) == 0 {
		t.Fatal("no kernel units extracted")
	}
	src := EmitPlugin(units)
	opt := Options{
		CacheDir:  t.TempDir(),
		StorePath: filepath.Join(t.TempDir(), "plugins.store"),
	}

	kernels, cacheHit, err := buildAndLoad(src, prog.Opt, opt)
	if err != nil {
		t.Fatalf("fresh build: %v", err)
	}
	if cacheHit {
		t.Fatal("fresh build reported a cache hit")
	}
	for _, u := range units {
		if kernels[u.Fingerprint()] == nil {
			t.Fatalf("plugin missing kernel for unit %s", u.Fingerprint())
		}
	}

	if _, cacheHit, err = buildAndLoad(src, prog.Opt, opt); err != nil || !cacheHit {
		t.Fatalf("second load: hit=%v err=%v, want cache hit", cacheHit, err)
	}

	// Store rehydration needs a key this process has never loaded (the
	// in-process table would otherwise serve it): build a variant
	// without loading it, persist it, drop the .so, and let
	// buildAndLoad materialize it from the store.
	src2 := src + "\n// store-rehydration probe\n"
	key2 := pluginKey(src2, prog.Opt)
	so2 := filepath.Join(opt.CacheDir, key2+".so")
	if err := buildPlugin(src2, key2, opt.CacheDir, so2); err != nil {
		t.Fatal(err)
	}
	putInStore(opt.StorePath, key2, so2)
	if err := os.Remove(so2); err != nil {
		t.Fatal(err)
	}
	kernels, cacheHit, err = buildAndLoad(src2, prog.Opt, opt)
	if err != nil || !cacheHit {
		t.Fatalf("store rehydration: hit=%v err=%v, want store hit", cacheHit, err)
	}
	for _, u := range units {
		if kernels[u.Fingerprint()] == nil {
			t.Fatalf("rehydrated plugin missing kernel for unit %s", u.Fingerprint())
		}
	}
}

// TestEnableNativeBuildsAndMatches runs the full ladder end to end:
// EnableNative builds a plugin for a non-corpus program, and the
// resulting codegen execution is bit-identical to the interpreter
// while actually invoking native kernels.
func TestEnableNativeBuildsAndMatches(t *testing.T) {
	requirePlugins(t)
	prog, err := spmd.CompileSource(pluginSource, nil, spmd.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := EnableNative(prog, Options{MinPhaseFlops: -1, CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fallback != "" {
		t.Fatalf("unexpected fallback: %s", rep.String())
	}
	if rep.Built+rep.Registered != rep.Selected || rep.Selected == 0 {
		t.Fatalf("ladder did not cover all units: %s", rep.String())
	}

	before := spmd.KernelInvocations()
	rc, err := prog.ExecuteEngine(mpsim.SP2Config(4), spmd.EngineCodegen)
	if err != nil {
		t.Fatal(err)
	}
	if spmd.KernelInvocations() == before {
		t.Fatal("plugin kernels registered but never invoked")
	}
	ri, err := prog.ExecuteEngine(mpsim.SP2Config(4), spmd.EngineInterp)
	if err != nil {
		t.Fatal(err)
	}
	ga, _, _, _ := rc.Global("b")
	gb, _, _, _ := ri.Global("b")
	for k := range ga {
		if math.Float64bits(ga[k]) != math.Float64bits(gb[k]) {
			t.Fatalf("b[%d]: codegen %v, interp %v", k, ga[k], gb[k])
		}
	}
}

// TestPluginKeySensitivity: the cache key must move with any input —
// source text, pipeline options, ABI — or stale artifacts would alias.
func TestPluginKeySensitivity(t *testing.T) {
	base := pluginKey("src-a", spmd.DefaultOptions())
	if pluginKey("src-b", spmd.DefaultOptions()) == base {
		t.Fatal("key ignores emitted source")
	}
	opt := spmd.DefaultOptions()
	opt.PipelineGrain = 32
	if pluginKey("src-a", opt) == base {
		t.Fatal("key ignores pipeline options")
	}
	if pluginKey("src-a", spmd.DefaultOptions()) != base {
		t.Fatal("key is not deterministic")
	}
}
