// Package codegen is the native execution tier: it emits specialized
// Go source for a program's kernel units (flat loops with inlined
// affine subscripts, hoisted box-guard bounds and precomputed slot
// offsets), compiles it either into the binary as a checked-in
// generated corpus (internal/codegen/gen) or on the fly via `go build
// -buildmode=plugin` behind a content-addressed cache, and registers
// the resulting functions with the engine's kernel registry
// (spmd.RegisterKernel).  Emitted code is bit-compatible with the
// closure engine by construction: every floating-point operation is
// performed in the same order and individually wrapped in float64(...)
// so the compiler may not contract it (no FMA), constants are exact
// hex literals, and guard/window decisions replicate
// iteratePlanLoop's arithmetic on precomputed bounds.
package codegen

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"dhpf/internal/spmd"
)

// KernelFuncName is the emitted function name for a unit fingerprint.
func KernelFuncName(fingerprint string) string {
	return "k_" + fingerprint[:16]
}

// hexFloat renders a float64 as an exact Go literal.
func hexFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "math.NaN()"
	case math.IsInf(v, 1):
		return "math.Inf(1)"
	case math.IsInf(v, -1):
		return "math.Inf(-1)"
	}
	return strconv.FormatFloat(v, 'x', -1, 64)
}

// iterm is one rendered integer affine term.
type iterm struct {
	coef int
	name string
}

// affString renders cst + Σ coef·name, returning the expression and its
// additive piece count (for parenthesization by callers).
func affString(cst int, ts []iterm) (string, int) {
	var b strings.Builder
	n := 0
	for _, t := range ts {
		if t.coef == 0 {
			continue
		}
		switch t.coef {
		case 1:
			if n > 0 {
				b.WriteByte('+')
			}
			b.WriteString(t.name)
		case -1:
			b.WriteByte('-')
			b.WriteString(t.name)
		default:
			if t.coef > 0 && n > 0 {
				b.WriteByte('+')
			}
			fmt.Fprintf(&b, "%d*%s", t.coef, t.name)
		}
		n++
	}
	if cst != 0 || n == 0 {
		if cst >= 0 && n > 0 {
			b.WriteByte('+')
		}
		fmt.Fprintf(&b, "%d", cst)
		n++
	}
	return b.String(), n
}

type emitter struct {
	u *spmd.KernelUnit
	b strings.Builder
}

func (em *emitter) local(level int) string { return fmt.Sprintf("i%d", level) }
func (em *emitter) slot(s int) string      { return fmt.Sprintf("s%d", s) }

func (em *emitter) affTerms(a spmd.KAff) (int, []iterm) {
	ts := make([]iterm, 0, len(a.Terms))
	for _, t := range a.Terms {
		if t.Local {
			ts = append(ts, iterm{coef: t.Coef, name: em.local(t.Level)})
		} else {
			ts = append(ts, iterm{coef: t.Coef, name: em.slot(t.Slot)})
		}
	}
	return a.Const, ts
}

func (em *emitter) affExpr(a spmd.KAff) string {
	cst, ts := em.affTerms(a)
	s, _ := affString(cst, ts)
	return s
}

// subPiece renders one subscript dimension's contribution to a
// row-major index: (sub − lo)·stride, with the −lo folded into the
// affine constant and the multiplication parenthesized when needed.
func (em *emitter) subPiece(s spmd.KSub, lo, stride int) string {
	cst := s.Off.Const - lo
	_, ts := em.affTerms(s.Off)
	if s.HasVar {
		name := em.slot(s.VarSlot)
		if s.VarLocal {
			name = em.local(s.Level)
		}
		ts = append([]iterm{{coef: s.Coef, name: name}}, ts...)
	}
	expr, n := affString(cst, ts)
	if stride == 1 {
		return expr
	}
	if n > 1 {
		expr = "(" + expr + ")"
	}
	return expr + "*" + strconv.Itoa(stride)
}

// index renders the flat row-major element index for an access.
func (em *emitter) index(arr *spmd.KArray, subs []spmd.KSub) string {
	var b strings.Builder
	for k := range subs {
		piece := em.subPiece(subs[k], arr.Lo[k], arr.Stride[k])
		if k > 0 {
			if piece[0] == '-' {
				piece = "(" + piece + ")"
			}
			b.WriteByte('+')
		}
		b.WriteString(piece)
	}
	return b.String()
}

var intrinFunc = map[string]string{
	"sqrt": "math.Sqrt", "exp": "math.Exp", "sin": "math.Sin",
	"cos": "math.Cos", "log": "math.Log", "abs": "math.Abs",
	"min": "math.Min", "max": "math.Max", "mod": "math.Mod", "pow": "math.Pow",
}

func (em *emitter) expr(e spmd.KExpr) string {
	switch x := e.(type) {
	case spmd.KConst:
		return hexFloat(x.Val)
	case spmd.KLocal:
		return "float64(" + em.local(x.Level) + ")"
	case spmd.KSlotInt:
		return "float64(" + em.slot(x.Slot) + ")"
	case spmd.KScalar:
		return fmt.Sprintf("sref(floats, fset, ints, intSet, %d, %d)", x.FSlot, x.ISlot)
	case spmd.KScalarLocal:
		return fmt.Sprintf("srefl(floats, fset, %d, %s)", x.FSlot, em.local(x.Level))
	case *spmd.KARead:
		arr := &em.u.Arrays[x.Arr]
		return fmt.Sprintf("arrays[%d][%s]", x.Arr, em.index(arr, x.Subs))
	case *spmd.KBin:
		// The float64 conversion around every binary operation forbids
		// fused multiply-add per the Go spec: results stay bit-identical
		// to the closure engine's one-operation-per-node evaluation.
		return fmt.Sprintf("float64(%s %c %s)", em.expr(x.L), x.Op, em.expr(x.R))
	case *spmd.KIntrin:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = em.expr(a)
		}
		return intrinFunc[x.Name] + "(" + strings.Join(args, ", ") + ")"
	}
	panic(fmt.Sprintf("codegen: unknown expr %T", e))
}

func condOp(op string) string {
	if op == "/=" {
		return "!="
	}
	return op
}

func (em *emitter) line(ind int, format string, args ...interface{}) {
	for i := 0; i < ind; i++ {
		em.b.WriteByte('\t')
	}
	fmt.Fprintf(&em.b, format, args...)
	em.b.WriteByte('\n')
}

func (em *emitter) stmts(body []spmd.KStmt, ind int) {
	for _, s := range body {
		switch st := s.(type) {
		case *spmd.KLoop:
			em.loop(st, ind)
		case *spmd.KAssign:
			em.assign(st, ind)
		case *spmd.KIf:
			em.ifStmt(st, ind)
		}
	}
}

// loop emits one level: bounds from the inlined affine forms, then the
// invocation window (strip ∩ clamp, packed by the runtime precheck)
// applied exactly like iteratePlanLoop's max/min clamping.
func (em *emitter) loop(kl *spmd.KLoop, ind int) {
	v := em.local(kl.Level)
	em.line(ind, "lo%d := %s", kl.Level, em.affExpr(kl.Lo))
	em.line(ind, "hi%d := %s", kl.Level, em.affExpr(kl.Hi))
	if kl.Step > 0 {
		em.line(ind, "if lo%d < bounds[%d] {", kl.Level, kl.WinIdx)
		em.line(ind+1, "lo%d = bounds[%d]", kl.Level, kl.WinIdx)
		em.line(ind, "}")
		em.line(ind, "if hi%d > bounds[%d] {", kl.Level, kl.WinIdx+1)
		em.line(ind+1, "hi%d = bounds[%d]", kl.Level, kl.WinIdx+1)
		em.line(ind, "}")
		em.line(ind, "for %s := lo%d; %s <= hi%d; %s++ {", v, kl.Level, v, kl.Level, v)
	} else {
		em.line(ind, "if lo%d > bounds[%d] {", kl.Level, kl.WinIdx+1)
		em.line(ind+1, "lo%d = bounds[%d]", kl.Level, kl.WinIdx+1)
		em.line(ind, "}")
		em.line(ind, "if hi%d < bounds[%d] {", kl.Level, kl.WinIdx)
		em.line(ind+1, "hi%d = bounds[%d]", kl.Level, kl.WinIdx)
		em.line(ind, "}")
		em.line(ind, "for %s := lo%d; %s >= hi%d; %s-- {", v, kl.Level, v, kl.Level, v)
	}
	em.stmts(kl.Body, ind+1)
	em.line(ind, "}")
}

// assign emits the per-point guard-box test over the kernel dimensions
// (outer dimensions were checked once by the precheck) and, on pass,
// the evaluate → count flops → store sequence of execPlanAssign.
func (em *emitter) assign(ka *spmd.KAssign, ind int) {
	var conds []string
	for d := 0; d < ka.KDims; d++ {
		v := em.local(ka.Levels[d])
		conds = append(conds,
			fmt.Sprintf("%s >= bounds[%d]", v, ka.BoundsIdx+2*d),
			fmt.Sprintf("%s <= bounds[%d]", v, ka.BoundsIdx+2*d+1))
	}
	em.line(ind, "if %s {", strings.Join(conds, " && "))
	em.line(ind+1, "v := %s", em.expr(ka.RHS))
	em.line(ind+1, "flops += %s", hexFloat(ka.Flops))
	if ka.Scalar {
		em.line(ind+1, "floats[%d] = v", ka.FSlot)
		em.line(ind+1, "fset[%d] = true", ka.FSlot)
	} else {
		arr := &em.u.Arrays[ka.Arr]
		em.line(ind+1, "arrays[%d][%s] = v", ka.Arr, em.index(arr, ka.Subs))
	}
	em.line(ind, "}")
}

func (em *emitter) ifStmt(ki *spmd.KIf, ind int) {
	em.line(ind, "if %s %s %s {", em.expr(ki.L), condOp(ki.Op), em.expr(ki.R))
	em.stmts(ki.Then, ind+1)
	if len(ki.Els) > 0 {
		em.line(ind, "} else {")
		em.stmts(ki.Els, ind+1)
	}
	em.line(ind, "}")
}

// collectSlots gathers every integer slot the emitted code reads as a
// hoisted local (affine terms, subscript variables, KSlotInt reads);
// KScalar reads slots dynamically through sref and needs no hoist.
func collectSlots(u *spmd.KernelUnit) []int {
	seen := map[int]bool{}
	var aff func(a spmd.KAff)
	aff = func(a spmd.KAff) {
		for _, t := range a.Terms {
			if !t.Local {
				seen[t.Slot] = true
			}
		}
	}
	sub := func(s spmd.KSub) {
		aff(s.Off)
		if s.HasVar && !s.VarLocal {
			seen[s.VarSlot] = true
		}
	}
	var expr func(e spmd.KExpr)
	expr = func(e spmd.KExpr) {
		switch x := e.(type) {
		case spmd.KSlotInt:
			seen[x.Slot] = true
		case *spmd.KARead:
			for _, s := range x.Subs {
				sub(s)
			}
		case *spmd.KBin:
			expr(x.L)
			expr(x.R)
		case *spmd.KIntrin:
			for _, a := range x.Args {
				expr(a)
			}
		}
	}
	var walk func(body []spmd.KStmt)
	walk = func(body []spmd.KStmt) {
		for _, s := range body {
			switch st := s.(type) {
			case *spmd.KLoop:
				aff(st.Lo)
				aff(st.Hi)
				walk(st.Body)
			case *spmd.KAssign:
				expr(st.RHS)
				for _, sb := range st.Subs {
					sub(sb)
				}
			case *spmd.KIf:
				expr(st.L)
				expr(st.R)
				walk(st.Then)
				walk(st.Els)
			}
		}
	}
	aff(u.Root.Lo)
	aff(u.Root.Hi)
	walk(u.Root.Body)
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// EmitKernel renders one unit's kernel function.
func EmitKernel(u *spmd.KernelUnit) string {
	em := &emitter{u: u}
	fp := u.Fingerprint()
	em.line(0, "// %s implements kernel unit %s", KernelFuncName(fp), fp)
	em.line(0, "// (proc %q, root stmt %d, depth %d, %d arrays, est. %.0f points).",
		u.Proc, u.RootID, u.RootDepth, len(u.Arrays), u.Points)
	em.line(0, "func %s(ints []int, intSet []bool, floats []float64, fset []bool, arrays [][]float64, bounds []int, flops float64) float64 {",
		KernelFuncName(fp))
	for _, s := range collectSlots(u) {
		em.line(1, "s%d := ints[%d]", s, s)
	}
	em.loop(u.Root, 1)
	em.line(1, "return flops")
	em.line(0, "}")
	return em.b.String()
}

// helperSource is the shared scalar-read helper pair, emitted once per
// generated package.  sref is ScalarRef's dynamic resolution verbatim;
// srefl is the same for names that are in-scope loop variables, whose
// integer binding is always present inside the loop.
const helperSource = `var _ = math.Sqrt

func sref(floats []float64, fset []bool, ints []int, intSet []bool, fs, is int) float64 {
	if fset[fs] {
		return floats[fs]
	}
	if intSet[is] {
		return float64(ints[is])
	}
	return 0
}

func srefl(floats []float64, fset []bool, fs int, v int) float64 {
	if fset[fs] {
		return floats[fs]
	}
	return float64(v)
}
`

// GeneratedHeader is the machine-written marker every emitted file
// starts with; tools/vetdet accepts its determinism exemption only in
// files carrying it.
const GeneratedHeader = "// Code generated by dhpf internal/codegen. DO NOT EDIT."

// VetdetExempt is the determinism-linter exemption line emitted into
// generated files (see tools/vetdet).
const VetdetExempt = "//vetdet:exempt-file machine-generated kernels (emission is deterministic by construction)"

// dedupeSorted returns the units deduplicated by fingerprint, sorted by
// fingerprint for stable output across corpus reordering.
func dedupeSorted(units []*spmd.KernelUnit) []*spmd.KernelUnit {
	byFP := map[string]*spmd.KernelUnit{}
	fps := make([]string, 0, len(units))
	for _, u := range units {
		fp := u.Fingerprint()
		if _, ok := byFP[fp]; !ok {
			byFP[fp] = u
			fps = append(fps, fp)
		}
	}
	sort.Strings(fps)
	out := make([]*spmd.KernelUnit, len(fps))
	for i, fp := range fps {
		out[i] = byFP[fp]
	}
	return out
}

// EmitCorpus renders the checked-in generated package: every unit's
// kernel plus an init that registers them all, deduplicated by
// fingerprint.
func EmitCorpus(units []*spmd.KernelUnit) string {
	units = dedupeSorted(units)
	var b strings.Builder
	b.WriteString(GeneratedHeader + "\n")
	b.WriteString(VetdetExempt + "\n\n")
	b.WriteString("// Package gen is the no-cgo native-kernel corpus: machine-emitted\n")
	b.WriteString("// kernels for the standard benchmark programs, compiled into any\n")
	b.WriteString("// binary that imports it and registered at init.  Regenerate with\n")
	b.WriteString("// `go generate ./internal/codegen`; CI diffs the output.\n")
	b.WriteString("package gen\n\n")
	b.WriteString("import (\n\t\"math\"\n\n\t\"dhpf/internal/spmd\"\n)\n\n")
	b.WriteString(helperSource)
	b.WriteString("\nfunc init() {\n")
	for _, u := range units {
		fp := u.Fingerprint()
		fmt.Fprintf(&b, "\tspmd.RegisterKernel(%q, %s)\n", fp, KernelFuncName(fp))
	}
	b.WriteString("}\n\n")
	for i, u := range units {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(EmitKernel(u))
	}
	return b.String()
}

// EmitPlugin renders a standalone main package for
// `go build -buildmode=plugin`: no dhpf imports (the plugin must not
// share package identity with the host), kernels exported through the
// unnamed-typed Kernels table the loader looks up.
func EmitPlugin(units []*spmd.KernelUnit) string {
	units = dedupeSorted(units)
	var b strings.Builder
	b.WriteString(GeneratedHeader + "\n")
	b.WriteString(VetdetExempt + "\n\n")
	b.WriteString("package main\n\n")
	b.WriteString("import \"math\"\n\n")
	b.WriteString(helperSource)
	b.WriteString("\n// Kernels is the loader contract: unit fingerprint → kernel.\n")
	b.WriteString("var Kernels = []struct {\n\tUnit string\n\tFn   func([]int, []bool, []float64, []bool, [][]float64, []int, float64) float64\n}{\n")
	for _, u := range units {
		fp := u.Fingerprint()
		fmt.Fprintf(&b, "\t{Unit: %q, Fn: %s},\n", fp, KernelFuncName(fp))
	}
	b.WriteString("}\n\nfunc main() {}\n\n")
	for i, u := range units {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(EmitKernel(u))
	}
	return b.String()
}
