package hpf

import (
	"fmt"

	"dhpf/internal/ir"
)

// Binding is the result of resolving a program's HPF directives against a
// concrete parameter binding: every distributed (or aligned) array gets a
// Layout; everything else is replicated.
type Binding struct {
	Grids   map[string]*Grid
	Layouts map[string]*Layout // keyed by array name
	Params  map[string]int
}

// LayoutOf returns the layout of an array, or nil when the array is
// replicated (undistributed).
func (b *Binding) LayoutOf(name string) *Layout { return b.Layouts[name] }

// Bind interprets the program's directives.  params overrides the
// program's default parameter values (nil keeps the defaults).
//
// Alignment resolution: an array aligned with a template inherits the
// template's distribution; its dimension k maps to the template dimension
// AlignDecl.Dims[k].TDim with the declared offset.  An array distributed
// directly acts as its own identity-aligned template.
func Bind(prog *ir.Program, params map[string]int) (*Binding, error) {
	bind := map[string]int{}
	for k, v := range prog.Params {
		bind[k] = v
	}
	for k, v := range params {
		bind[k] = v
	}
	out := &Binding{Grids: map[string]*Grid{}, Layouts: map[string]*Layout{}, Params: bind}

	for _, pd := range prog.Processors {
		shape := make([]int, len(pd.Extents))
		for k, e := range pd.Extents {
			shape[k] = e.Eval(bind)
			if shape[k] <= 0 {
				return nil, fmt.Errorf("hpf: PROCESSORS %s dimension %d has non-positive extent %d",
					pd.Name, k, shape[k])
			}
		}
		out.Grids[pd.Name] = NewGrid(pd.Name, shape...)
	}

	templates := map[string]*ir.TemplateDecl{}
	for _, td := range prog.Templates {
		templates[td.Name] = td
	}
	dists := map[string]*ir.DistributeDecl{}
	for _, dd := range prog.Distributes {
		dists[dd.Target] = dd
	}

	declOf := func(array string) *ir.Decl {
		for _, proc := range prog.Procs {
			if d := proc.DeclOf(array); d != nil && d.Rank() > 0 {
				return d
			}
		}
		return nil
	}

	build := func(array string, align *ir.AlignDecl, dd *ir.DistributeDecl, tplExtents []ir.AffExpr) error {
		decl := declOf(array)
		if decl == nil {
			return fmt.Errorf("hpf: directive names undeclared array %q", array)
		}
		grid, ok := out.Grids[dd.Onto]
		if !ok {
			return fmt.Errorf("hpf: distribute onto unknown processors %q", dd.Onto)
		}
		l := &Layout{Name: array, Grid: grid, Dims: make([]DimLayout, decl.Rank())}
		// Map grid dimensions: the i-th non-* spec uses grid dim i.
		gdimOfSpec := make([]int, len(dd.Specs))
		gi := 0
		for si, sp := range dd.Specs {
			if sp.Kind == ir.DistStar {
				gdimOfSpec[si] = -1
				continue
			}
			if gi >= len(grid.Shape) {
				return fmt.Errorf("hpf: distribute %q has more distributed dims than grid %q", dd.Target, dd.Onto)
			}
			gdimOfSpec[si] = gi
			gi++
		}
		if gi != len(grid.Shape) {
			return fmt.Errorf("hpf: distribute %q uses %d grid dims, grid %q has %d", dd.Target, gi, dd.Onto, len(grid.Shape))
		}
		for k := 0; k < decl.Rank(); k++ {
			lo := decl.LB[k].Eval(bind)
			hi := decl.UB[k].Eval(bind)
			dl := DimLayout{Kind: Star, GridDim: -1, Lo: lo, Hi: hi}
			// Without an ALIGN, the array is its own identity-aligned
			// 0-based template (TplOff = -lo).  With an ALIGN, the
			// declared offset is relative to the 0-based template.
			tdim, toff := k, -lo
			if align != nil {
				if k >= len(align.Dims) {
					return fmt.Errorf("hpf: align of %q has too few dims", array)
				}
				tdim = align.Dims[k].TDim
				if tdim >= 0 {
					toff = align.Dims[k].Off.Eval(bind)
				}
			}
			if tdim >= 0 && tdim < len(dd.Specs) {
				sp := dd.Specs[tdim]
				switch sp.Kind {
				case ir.DistStar:
					// stays Star
				case ir.DistBlock:
					dl.Kind = Block
					dl.GridDim = gdimOfSpec[tdim]
					dl.TplOff = toff
					np := grid.Shape[dl.GridDim]
					extent := hi - lo + 1
					if tplExtents != nil && tdim < len(tplExtents) {
						extent = tplExtents[tdim].Eval(bind)
					}
					if sp.Has {
						dl.BlockSz = sp.Size.Eval(bind)
					} else {
						dl.BlockSz = DefaultBlockSize(extent, np)
					}
					if dl.BlockSz <= 0 {
						return fmt.Errorf("hpf: non-positive block size for %q dim %d", array, k)
					}
				case ir.DistCyclic:
					dl.Kind = Cyclic
					dl.GridDim = gdimOfSpec[tdim]
				}
			}
			l.Dims[k] = dl
		}
		out.Layouts[array] = l
		return nil
	}

	// Arrays distributed directly.
	for _, dd := range prog.Distributes {
		if _, isTpl := templates[dd.Target]; isTpl {
			continue
		}
		if err := build(dd.Target, nil, dd, nil); err != nil {
			return nil, err
		}
	}
	// Arrays aligned with distributed templates.
	for _, ad := range prog.Aligns {
		dd, ok := dists[ad.Template]
		if !ok {
			return nil, fmt.Errorf("hpf: align of %q with undistributed template %q", ad.Array, ad.Template)
		}
		td := templates[ad.Template]
		var ext []ir.AffExpr
		if td != nil {
			ext = td.Extents
		}
		if err := build(ad.Array, ad, dd, ext); err != nil {
			return nil, err
		}
	}
	return out, nil
}
