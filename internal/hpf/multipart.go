package hpf

import (
	"fmt"

	"dhpf/internal/iset"
)

// Multipartition is the diagonal (skewed-block) 3-D multipartitioning of
// the hand-written NAS SP and BT codes (SC'98 §3, [Naik 95]).  The domain
// is cut into Q slabs along each of the three dimensions, yielding Q³
// cells; cell (c1,c2,c3) is owned by the processor with 2-D coordinates
//
//	( (c1 - c3) mod Q , (c2 - c3) mod Q )
//
// on a Q×Q logical grid of P = Q² processors.  Two properties make this
// the right layout for bi-directional line sweeps:
//
//  1. Each processor owns exactly Q cells — one in every slab of every
//     dimension — so work is balanced.
//  2. During a sweep along any dimension, at every step each processor
//     has exactly one cell to compute, so no processor idles waiting for
//     the pipeline to reach it.
//
// This layout is not expressible in HPF; it is implemented here for the
// hand-MPI baseline the paper compares against.
type Multipartition struct {
	Q    int    // cells per dimension; P = Q*Q processors
	N    [3]int // domain extents (0-based indices 0..N[d]-1)
	offs [3][]int
}

// NewMultipartition builds the layout for a domain of n1×n2×n3 points on
// q² processors.
func NewMultipartition(q int, n1, n2, n3 int) (*Multipartition, error) {
	if q <= 0 {
		return nil, fmt.Errorf("hpf: multipartition q=%d", q)
	}
	m := &Multipartition{Q: q, N: [3]int{n1, n2, n3}}
	for d := 0; d < 3; d++ {
		if m.N[d] < q {
			return nil, fmt.Errorf("hpf: multipartition extent %d < q=%d", m.N[d], q)
		}
		m.offs[d] = slabOffsets(m.N[d], q)
	}
	return m, nil
}

// slabOffsets cuts extent n into q near-equal slabs, returning q+1 cut
// offsets (slab s covers [off[s], off[s+1]-1]).
func slabOffsets(n, q int) []int {
	offs := make([]int, q+1)
	base, rem := n/q, n%q
	pos := 0
	for s := 0; s < q; s++ {
		offs[s] = pos
		pos += base
		if s < rem {
			pos++
		}
	}
	offs[q] = n
	return offs
}

// Procs returns the number of processors, Q².
func (m *Multipartition) Procs() int { return m.Q * m.Q }

// OwnerOfCell returns the linear rank owning cell (c1,c2,c3).
func (m *Multipartition) OwnerOfCell(c1, c2, c3 int) int {
	q := m.Q
	p0 := ((c1-c3)%q + q) % q
	p1 := ((c2-c3)%q + q) % q
	return p0*q + p1
}

// CellBox returns the index box of cell (c1,c2,c3).
func (m *Multipartition) CellBox(c1, c2, c3 int) iset.Box {
	return iset.NewBox(
		[]int{m.offs[0][c1], m.offs[1][c2], m.offs[2][c3]},
		[]int{m.offs[0][c1+1] - 1, m.offs[1][c2+1] - 1, m.offs[2][c3+1] - 1},
	)
}

// CellsOf returns the cell coordinates owned by a linear rank, ordered by
// the third coordinate (the order sweeps visit them).
func (m *Multipartition) CellsOf(rank int) [][3]int {
	q := m.Q
	p0, p1 := rank/q, rank%q
	cells := make([][3]int, 0, q)
	for c3 := 0; c3 < q; c3++ {
		c1 := (p0 + c3) % q
		c2 := (p1 + c3) % q
		cells = append(cells, [3]int{c1, c2, c3})
	}
	return cells
}

// LocalSet returns the union of index boxes owned by a rank.
func (m *Multipartition) LocalSet(rank int) iset.Set {
	s := iset.EmptySet(3)
	for _, c := range m.CellsOf(rank) {
		s = s.UnionBox(m.CellBox(c[0], c[1], c[2]))
	}
	return s
}

// SweepStage returns, for a sweep along dimension dim at stage s
// (s-th slab), the cell owned by each rank in that slab.  Every rank has
// exactly one — the load-balance property of multipartitioning.
func (m *Multipartition) SweepStage(dim, s int) map[int][3]int {
	out := make(map[int][3]int, m.Procs())
	q := m.Q
	for a := 0; a < q; a++ {
		for b := 0; b < q; b++ {
			var c [3]int
			switch dim {
			case 0:
				c = [3]int{s, a, b}
			case 1:
				c = [3]int{a, s, b}
			case 2:
				c = [3]int{a, b, s}
			default:
				panic("hpf: SweepStage dim out of range")
			}
			out[m.OwnerOfCell(c[0], c[1], c[2])] = c
		}
	}
	return out
}

// SuccessorInSweep returns the rank owning the next cell along dim after
// cell c (the rank a sweeping solver sends its partial results to), or -1
// at the domain boundary.
func (m *Multipartition) SuccessorInSweep(dim int, c [3]int) int {
	n := c
	n[dim]++
	if n[dim] >= m.Q {
		return -1
	}
	return m.OwnerOfCell(n[0], n[1], n[2])
}
