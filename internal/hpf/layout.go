// Package hpf models HPF data-layout semantics: processor arrangements,
// templates, alignments and distributions, answering the ownership
// queries every dhpf analysis is built on — "which processor owns array
// element A(i,j,k)?" and "which box of A does processor p own?" — in
// terms of the integer-set framework.
//
// It also implements the diagonal multipartitioning layout of the
// hand-written NAS SP/BT codes (Naik, IBM Systems Journal 1995; SC'98
// §3), which HPF itself cannot express — the paper's baseline.
package hpf

import (
	"fmt"

	"dhpf/internal/iset"
)

// Grid is a named processor arrangement with a Cartesian shape.
// Ranks are linearized row-major (last dimension fastest).
type Grid struct {
	Name  string
	Shape []int
}

// NewGrid creates a processor arrangement.
func NewGrid(name string, shape ...int) *Grid {
	for _, s := range shape {
		if s <= 0 {
			panic(fmt.Sprintf("hpf: grid %s has non-positive extent %d", name, s))
		}
	}
	g := &Grid{Name: name, Shape: make([]int, len(shape))}
	copy(g.Shape, shape)
	return g
}

// Size returns the total number of processors.
func (g *Grid) Size() int {
	n := 1
	for _, s := range g.Shape {
		n *= s
	}
	return n
}

// Coord returns the Cartesian coordinates of a linear rank.
func (g *Grid) Coord(rank int) []int {
	if rank < 0 || rank >= g.Size() {
		panic(fmt.Sprintf("hpf: rank %d out of range for grid %v", rank, g.Shape))
	}
	c := make([]int, len(g.Shape))
	for k := len(g.Shape) - 1; k >= 0; k-- {
		c[k] = rank % g.Shape[k]
		rank /= g.Shape[k]
	}
	return c
}

// Rank returns the linear rank of Cartesian coordinates.
func (g *Grid) Rank(coord []int) int {
	if len(coord) != len(g.Shape) {
		panic("hpf: coordinate rank mismatch")
	}
	r := 0
	for k, c := range coord {
		if c < 0 || c >= g.Shape[k] {
			panic(fmt.Sprintf("hpf: coordinate %v out of grid %v", coord, g.Shape))
		}
		r = r*g.Shape[k] + c
	}
	return r
}

// DistKind is a distribution format.
type DistKind int

const (
	Star DistKind = iota // dimension not distributed (fully local everywhere)
	Block
	Cyclic
)

func (k DistKind) String() string {
	switch k {
	case Star:
		return "*"
	case Block:
		return "BLOCK"
	case Cyclic:
		return "CYCLIC"
	}
	return "?"
}

// DimLayout describes how one array dimension is laid out.
type DimLayout struct {
	Kind    DistKind
	GridDim int // grid dimension this array dim maps to; -1 when Kind==Star
	Lo, Hi  int // array index bounds of the dimension (inclusive)
	BlockSz int // block size for Kind==Block
	// TplOff is the alignment offset: array index i sits at template cell
	// i+TplOff, where template cells are 0-based and block boundaries are
	// anchored at template cell 0 (grid coordinate p owns template cells
	// [p*BlockSz : (p+1)*BlockSz-1]).  A directly-distributed array acts
	// as its own identity-aligned template, i.e. TplOff = -Lo.
	TplOff int
}

// Layout is the complete layout of one array over a grid.
type Layout struct {
	Name string
	Grid *Grid
	Dims []DimLayout
}

// NewBlockLayout builds the common case directly: array with the given
// inclusive per-dim bounds, where distDims[k] names the grid dimension
// dimension k is BLOCK-distributed over (-1 ⇒ not distributed), with zero
// alignment offsets and default block sizes.
func NewBlockLayout(name string, g *Grid, lo, hi []int, distDims []int) *Layout {
	if len(lo) != len(hi) || len(lo) != len(distDims) {
		panic("hpf: NewBlockLayout length mismatch")
	}
	l := &Layout{Name: name, Grid: g, Dims: make([]DimLayout, len(lo))}
	for k := range lo {
		d := DimLayout{Kind: Star, GridDim: -1, Lo: lo[k], Hi: hi[k]}
		if distDims[k] >= 0 {
			d.Kind = Block
			d.GridDim = distDims[k]
			d.BlockSz = DefaultBlockSize(hi[k]-lo[k]+1, g.Shape[distDims[k]])
			d.TplOff = -lo[k]
		}
		l.Dims[k] = d
	}
	return l
}

// DefaultBlockSize is HPF's ceil(extent/np).
func DefaultBlockSize(extent, np int) int {
	return (extent + np - 1) / np
}

// Rank returns the array's dimensionality.
func (l *Layout) Rank() int { return len(l.Dims) }

// Space returns the full index space of the array as a box.
func (l *Layout) Space() iset.Box {
	lo := make([]int, l.Rank())
	hi := make([]int, l.Rank())
	for k, d := range l.Dims {
		lo[k], hi[k] = d.Lo, d.Hi
	}
	return iset.NewBox(lo, hi)
}

// Distributed reports whether any dimension is distributed.
func (l *Layout) Distributed() bool {
	for _, d := range l.Dims {
		if d.Kind != Star {
			return true
		}
	}
	return false
}

// LocalBox returns the box of array indices owned by the processor with
// the given linear rank.  For CYCLIC dimensions ownership is not a box;
// LocalBox panics — the compiler rejects CYCLIC earlier (the paper's
// codes use BLOCK only).
func (l *Layout) LocalBox(rank int) iset.Box {
	coord := l.Grid.Coord(rank)
	lo := make([]int, l.Rank())
	hi := make([]int, l.Rank())
	for k, d := range l.Dims {
		switch d.Kind {
		case Star:
			lo[k], hi[k] = d.Lo, d.Hi
		case Block:
			p := coord[d.GridDim]
			// Grid coordinate p owns template cells [p*bs:(p+1)*bs-1];
			// array index i sits at template cell i+TplOff.
			start := p*d.BlockSz - d.TplOff
			end := start + d.BlockSz - 1
			lo[k] = max(d.Lo, start)
			hi[k] = min(d.Hi, end)
		case Cyclic:
			panic("hpf: LocalBox on CYCLIC dimension")
		}
	}
	return iset.NewBox(lo, hi)
}

// OwnerOf returns the linear rank of the unique owner of the element.
func (l *Layout) OwnerOf(idx []int) int {
	if len(idx) != l.Rank() {
		panic("hpf: OwnerOf rank mismatch")
	}
	coord := make([]int, len(l.Grid.Shape))
	for k, d := range l.Dims {
		switch d.Kind {
		case Star:
			// unconstrained; leave 0
		case Block:
			t := idx[k] + d.TplOff
			p := t / d.BlockSz
			p = min(max(p, 0), l.Grid.Shape[d.GridDim]-1)
			coord[d.GridDim] = p
		case Cyclic:
			t := idx[k] - d.Lo
			coord[d.GridDim] = t % l.Grid.Shape[d.GridDim]
		}
	}
	return l.Grid.Rank(coord)
}

// OwnerRanks returns, for each rank, the part of region it owns.  The
// returned slice is indexed by linear rank; parts may be empty sets.
func (l *Layout) OwnerRanks(region iset.Set) []iset.Set {
	out := make([]iset.Set, l.Grid.Size())
	for r := range out {
		out[r] = region.IntersectBox(l.LocalBox(r))
	}
	return out
}

// GridDimOfArrayDim returns the grid dimension an array dimension is
// distributed over, or -1.
func (l *Layout) GridDimOfArrayDim(k int) int {
	if l.Dims[k].Kind == Star {
		return -1
	}
	return l.Dims[k].GridDim
}

// String summarizes the layout.
func (l *Layout) String() string {
	s := l.Name + "("
	for k, d := range l.Dims {
		if k > 0 {
			s += ","
		}
		switch d.Kind {
		case Star:
			s += "*"
		case Block:
			s += fmt.Sprintf("BLOCK(%d)@g%d", d.BlockSz, d.GridDim)
		case Cyclic:
			s += fmt.Sprintf("CYCLIC@g%d", d.GridDim)
		}
	}
	return s + fmt.Sprintf(") onto %s%v", l.Grid.Name, l.Grid.Shape)
}
