package hpf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dhpf/internal/ir"
	"dhpf/internal/iset"
	"dhpf/internal/parser"
)

func TestGridCoordRankRoundTrip(t *testing.T) {
	g := NewGrid("p", 3, 4, 2)
	if g.Size() != 24 {
		t.Fatalf("Size = %d", g.Size())
	}
	for r := 0; r < g.Size(); r++ {
		c := g.Coord(r)
		if back := g.Rank(c); back != r {
			t.Fatalf("Rank(Coord(%d)) = %d", r, back)
		}
	}
	// Row-major: last dim fastest.
	c := g.Coord(1)
	if c[0] != 0 || c[1] != 0 || c[2] != 1 {
		t.Fatalf("Coord(1) = %v", c)
	}
}

func TestDefaultBlockSize(t *testing.T) {
	cases := []struct{ extent, np, want int }{
		{64, 4, 16}, {65, 4, 17}, {100, 3, 34}, {5, 5, 1}, {7, 2, 4},
	}
	for _, c := range cases {
		if got := DefaultBlockSize(c.extent, c.np); got != c.want {
			t.Errorf("DefaultBlockSize(%d,%d) = %d, want %d", c.extent, c.np, got, c.want)
		}
	}
}

func TestBlockLayoutPartition(t *testing.T) {
	g := NewGrid("p", 2, 2)
	// 2-D array [0:63]×[0:63], both dims BLOCK.
	l := NewBlockLayout("a", g, []int{0, 0}, []int{63, 63}, []int{0, 1})
	space := l.Space()
	// Local boxes must partition the space.
	var union iset.Set = iset.EmptySet(2)
	var total int64
	for r := 0; r < g.Size(); r++ {
		lb := l.LocalBox(r)
		if lb.Empty() {
			t.Fatalf("rank %d owns nothing", r)
		}
		if union.IntersectBox(lb).Card() != 0 {
			t.Fatalf("rank %d box overlaps earlier ranks", r)
		}
		union = union.UnionBox(lb)
		total += lb.Card()
	}
	if total != space.Card() || !union.Eq(iset.FromBox(space)) {
		t.Fatalf("local boxes do not partition the space: %d vs %d", total, space.Card())
	}
	// OwnerOf must agree with LocalBox.
	for r := 0; r < g.Size(); r++ {
		lb := l.LocalBox(r)
		lb.Each(func(p []int) bool {
			if l.OwnerOf(p) != r {
				t.Fatalf("OwnerOf(%v) = %d, LocalBox says %d", p, l.OwnerOf(p), r)
			}
			return true
		})
	}
}

func TestStarDimensionReplicated(t *testing.T) {
	g := NewGrid("p", 4)
	// 2-D array, dim0 undistributed, dim1 BLOCK.
	l := NewBlockLayout("a", g, []int{0, 0}, []int{9, 63}, []int{-1, 0})
	for r := 0; r < 4; r++ {
		lb := l.LocalBox(r)
		if lb.Lo[0] != 0 || lb.Hi[0] != 9 {
			t.Fatalf("star dim not full on rank %d: %v", r, lb)
		}
		if lb.Hi[1]-lb.Lo[1]+1 != 16 {
			t.Fatalf("block dim width wrong on rank %d: %v", r, lb)
		}
	}
	if l.GridDimOfArrayDim(0) != -1 || l.GridDimOfArrayDim(1) != 0 {
		t.Error("GridDimOfArrayDim wrong")
	}
}

func TestUnevenBlockLastRankShortens(t *testing.T) {
	g := NewGrid("p", 4)
	// extent 10 over 4 procs: block size 3; rank 3 owns just 1 element.
	l := NewBlockLayout("a", g, []int{0}, []int{9}, []int{0})
	widths := []int64{3, 3, 3, 1}
	for r, w := range widths {
		if got := l.LocalBox(r).Card(); got != w {
			t.Errorf("rank %d owns %d, want %d", r, got, w)
		}
	}
}

func TestQuickOwnershipPartition(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		np := 1 + rng.Intn(6)
		extent := np + rng.Intn(40)
		g := NewGrid("p", np)
		l := NewBlockLayout("a", g, []int{0}, []int{extent - 1}, []int{0})
		// Every element owned exactly once; owners monotone nondecreasing.
		prev := 0
		for i := 0; i < extent; i++ {
			own := l.OwnerOf([]int{i})
			if own < prev || own >= np {
				return false
			}
			if !l.LocalBox(own).Contains([]int{i}) {
				return false
			}
			prev = own
		}
		// Sum of local box widths = extent.
		var total int64
		for r := 0; r < np; r++ {
			total += l.LocalBox(r).Card()
		}
		return total == int64(extent)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBindFromDirectives(t *testing.T) {
	src := `
program t
param N = 64
!hpf$ processors procs(2, 2)
!hpf$ template tmpl(N, N, N)
!hpf$ align u with tmpl(d0, d1, d2)
!hpf$ distribute tmpl(*, BLOCK, BLOCK) onto procs

subroutine main()
  real u(0:N-1, 0:N-1, 0:N-1)
  real w(0:N-1)
  do i = 0, N-1
    w(i) = u(i, 0, 0)
  enddo
end
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bind(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	lu := b.LayoutOf("u")
	if lu == nil {
		t.Fatal("u has no layout")
	}
	if lu.Dims[0].Kind != Star || lu.Dims[1].Kind != Block || lu.Dims[2].Kind != Block {
		t.Fatalf("u layout = %v", lu)
	}
	if lu.Dims[1].BlockSz != 32 {
		t.Fatalf("block size = %d", lu.Dims[1].BlockSz)
	}
	if b.LayoutOf("w") != nil {
		t.Error("w should be replicated (no layout)")
	}
	// Rank 3 = coords (1,1) owns the high halves of dims 1 and 2.
	lb := lu.LocalBox(3)
	want := iset.NewBox([]int{0, 32, 32}, []int{63, 63, 63})
	if !lb.Eq(want) {
		t.Fatalf("rank 3 box = %v, want %v", lb, want)
	}
}

func TestBindParamOverride(t *testing.T) {
	src := `
program t
param N = 64
param P = 2
!hpf$ processors procs(P)
!hpf$ distribute a(BLOCK) onto procs
subroutine main()
  real a(0:N-1)
  a(0) = 1.0
end
`
	prog := parser.MustParse(src)
	b, err := Bind(prog, map[string]int{"N": 100, "P": 5})
	if err != nil {
		t.Fatal(err)
	}
	if b.Grids["procs"].Size() != 5 {
		t.Fatalf("grid size = %d", b.Grids["procs"].Size())
	}
	if got := b.LayoutOf("a").Dims[0].BlockSz; got != 20 {
		t.Fatalf("block size = %d", got)
	}
}

func TestBindAlignOffset(t *testing.T) {
	src := `
program t
param N = 16
!hpf$ processors procs(4)
!hpf$ template tmpl(N)
!hpf$ align a with tmpl(d0+1)
!hpf$ distribute tmpl(BLOCK) onto procs
subroutine main()
  real a(0:N-2)
  a(0) = 1.0
end
`
	prog := parser.MustParse(src)
	b, err := Bind(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	l := b.LayoutOf("a")
	if l.Dims[0].TplOff != 1 {
		t.Fatalf("TplOff = %d", l.Dims[0].TplOff)
	}
	// Template cells 0..15 over 4 procs → blocks of 4.  a(i) sits at
	// template i+1, so rank 0 owns template [0:3] → a[0:2]
	// (a's index 3 sits at template cell 4, owned by rank 1).
	lb := l.LocalBox(0)
	if lb.Lo[0] != 0 || lb.Hi[0] != 2 {
		t.Fatalf("rank 0 box = %v", lb)
	}
	lb1 := l.LocalBox(1)
	if lb1.Lo[0] != 3 || lb1.Hi[0] != 6 {
		t.Fatalf("rank 1 box = %v", lb1)
	}
}

func TestBindErrors(t *testing.T) {
	srcs := map[string]string{
		"unknown grid": `
program t
param N = 8
!hpf$ distribute a(BLOCK) onto nosuch
subroutine main()
  real a(0:N-1)
  a(0) = 1.0
end
`,
		"undeclared array": `
program t
param N = 8
!hpf$ processors procs(2)
!hpf$ distribute ghost(BLOCK) onto procs
subroutine main()
  real a(0:N-1)
  a(0) = 1.0
end
`,
		"grid dim mismatch": `
program t
param N = 8
!hpf$ processors procs(2, 2)
!hpf$ distribute a(BLOCK) onto procs
subroutine main()
  real a(0:N-1)
  a(0) = 1.0
end
`,
	}
	for name, src := range srcs {
		t.Run(name, func(t *testing.T) {
			prog := parser.MustParse(src)
			if _, err := Bind(prog, nil); err == nil {
				t.Fatal("expected bind error")
			}
		})
	}
}

// --- multipartitioning -----------------------------------------------------

func TestMultipartitionBalance(t *testing.T) {
	m, err := NewMultipartition(4, 64, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if m.Procs() != 16 {
		t.Fatalf("Procs = %d", m.Procs())
	}
	// Each rank owns exactly Q cells, and the cells tile the domain.
	counts := map[int]int{}
	for c1 := 0; c1 < 4; c1++ {
		for c2 := 0; c2 < 4; c2++ {
			for c3 := 0; c3 < 4; c3++ {
				counts[m.OwnerOfCell(c1, c2, c3)]++
			}
		}
	}
	for r := 0; r < 16; r++ {
		if counts[r] != 4 {
			t.Fatalf("rank %d owns %d cells, want 4", r, counts[r])
		}
	}
	var total int64
	for r := 0; r < 16; r++ {
		total += m.LocalSet(r).Card()
	}
	if total != 64*64*64 {
		t.Fatalf("cells cover %d points, want %d", total, 64*64*64)
	}
}

func TestMultipartitionSweepProperty(t *testing.T) {
	m, _ := NewMultipartition(3, 30, 31, 32)
	// At every stage of a sweep along any dimension, every processor has
	// exactly one cell.
	for dim := 0; dim < 3; dim++ {
		for s := 0; s < m.Q; s++ {
			stage := m.SweepStage(dim, s)
			if len(stage) != m.Procs() {
				t.Fatalf("dim %d stage %d: %d procs active, want %d", dim, s, len(stage), m.Procs())
			}
		}
	}
}

func TestMultipartitionCellsOfConsistent(t *testing.T) {
	m, _ := NewMultipartition(4, 40, 40, 40)
	for r := 0; r < m.Procs(); r++ {
		cells := m.CellsOf(r)
		if len(cells) != m.Q {
			t.Fatalf("rank %d has %d cells", r, len(cells))
		}
		for _, c := range cells {
			if m.OwnerOfCell(c[0], c[1], c[2]) != r {
				t.Fatalf("CellsOf(%d) includes %v owned by %d", r, c, m.OwnerOfCell(c[0], c[1], c[2]))
			}
		}
	}
}

func TestMultipartitionSuccessor(t *testing.T) {
	m, _ := NewMultipartition(3, 9, 9, 9)
	c := [3]int{0, 1, 2}
	succ := m.SuccessorInSweep(0, c)
	if want := m.OwnerOfCell(1, 1, 2); succ != want {
		t.Fatalf("successor = %d, want %d", succ, want)
	}
	if m.SuccessorInSweep(0, [3]int{2, 1, 2}) != -1 {
		t.Error("boundary successor should be -1")
	}
}

func TestQuickMultipartitionIsPartition(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := 2 + rng.Intn(4)
		n1, n2, n3 := q+rng.Intn(20), q+rng.Intn(20), q+rng.Intn(20)
		m, err := NewMultipartition(q, n1, n2, n3)
		if err != nil {
			return false
		}
		var union iset.Set = iset.EmptySet(3)
		var total int64
		for r := 0; r < m.Procs(); r++ {
			ls := m.LocalSet(r)
			if !union.Intersect(ls).IsEmpty() {
				return false
			}
			union = union.Union(ls)
			total += ls.Card()
		}
		return total == int64(n1)*int64(n2)*int64(n3)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Guard: ir import used for building programs directly if needed later.
var _ = ir.Num
