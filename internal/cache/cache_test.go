package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func compute(v string, size int64) func(context.Context) (string, int64, error) {
	return func(context.Context) (string, int64, error) { return v, size, nil }
}

func TestHitMissEvict(t *testing.T) {
	c := New[string](100)
	ctx := context.Background()

	v, fromCache, err := c.GetOrCompute(ctx, "a", compute("va", 40))
	if err != nil || v != "va" || fromCache {
		t.Fatalf("first lookup: v=%q fromCache=%v err=%v", v, fromCache, err)
	}
	v, fromCache, err = c.GetOrCompute(ctx, "a", compute("XX", 40))
	if err != nil || v != "va" || !fromCache {
		t.Fatalf("second lookup should hit: v=%q fromCache=%v err=%v", v, fromCache, err)
	}

	// Fill past the budget: "a" (LRU) must be evicted.
	c.GetOrCompute(ctx, "b", compute("vb", 40))
	c.GetOrCompute(ctx, "c", compute("vc", 40))
	if _, ok := c.Get("a"); ok {
		t.Error("entry a should have been evicted")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("entry c should be resident")
	}

	s := c.Stats()
	if s.Hits < 2 || s.Misses != 3 || s.Evictions != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.SizeBytes > s.MaxBytes {
		t.Errorf("size %d exceeds budget %d", s.SizeBytes, s.MaxBytes)
	}
}

func TestRecencyOrder(t *testing.T) {
	c := New[string](100)
	ctx := context.Background()
	c.GetOrCompute(ctx, "a", compute("va", 40))
	c.GetOrCompute(ctx, "b", compute("vb", 40))
	c.Get("a") // touch: "b" becomes LRU
	c.GetOrCompute(ctx, "c", compute("vc", 40))
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted (LRU)")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a was recently used and should survive")
	}
}

func TestOversizedEntryNotRetained(t *testing.T) {
	c := New[string](10)
	v, _, err := c.GetOrCompute(context.Background(), "big", compute("huge", 1000))
	if err != nil || v != "huge" {
		t.Fatalf("oversized compute: %q %v", v, err)
	}
	if c.Len() != 0 {
		t.Errorf("oversized entry retained: %d entries", c.Len())
	}
}

func TestErrorNotCached(t *testing.T) {
	c := New[string](100)
	boom := errors.New("boom")
	calls := 0
	f := func(context.Context) (string, int64, error) {
		calls++
		if calls == 1 {
			return "", 0, boom
		}
		return "ok", 1, nil
	}
	if _, _, err := c.GetOrCompute(context.Background(), "k", f); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	v, _, err := c.GetOrCompute(context.Background(), "k", f)
	if err != nil || v != "ok" {
		t.Fatalf("retry after error: %q %v", v, err)
	}
	if calls != 2 {
		t.Errorf("compute ran %d times", calls)
	}
}

// TestSingleflight: concurrent identical misses run the computation once
// and everyone shares the result; the coalesce counter records it.
func TestSingleflight(t *testing.T) {
	c := New[string](1 << 20)
	var runs atomic.Int64
	release := make(chan struct{})
	f := func(context.Context) (string, int64, error) {
		runs.Add(1)
		<-release
		return "shared", 1, nil
	}
	const waiters = 16
	var wg sync.WaitGroup
	errs := make([]error, waiters)
	vals := make([]string, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], _, errs[i] = c.GetOrCompute(context.Background(), "k", f)
		}(i)
	}
	// Wait until every goroutine is either the runner or coalesced.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := c.Stats()
		if s.Misses+s.InflightCoalesced >= waiters {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("waiters never registered: %+v", s)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	for i := range errs {
		if errs[i] != nil || vals[i] != "shared" {
			t.Fatalf("waiter %d: %q %v", i, vals[i], errs[i])
		}
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("compute ran %d times, want 1", got)
	}
	s := c.Stats()
	if s.InflightCoalesced != waiters-1 {
		t.Errorf("coalesced = %d, want %d", s.InflightCoalesced, waiters-1)
	}
}

// TestWaiterCancel: a cancelled waiter unblocks immediately while the
// computation (still wanted by another waiter) proceeds and is cached.
func TestWaiterCancel(t *testing.T) {
	c := New[string](1 << 20)
	started := make(chan struct{})
	release := make(chan struct{})
	f := func(fctx context.Context) (string, int64, error) {
		close(started)
		select {
		case <-release:
			return "late", 1, nil
		case <-fctx.Done():
			return "", 0, fctx.Err()
		}
	}
	done := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrCompute(context.Background(), "k", f)
		done <- err
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.GetOrCompute(ctx, "k", f); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: %v", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("surviving waiter: %v", err)
	}
	if _, ok := c.Get("k"); !ok {
		t.Error("completed computation was not cached")
	}
}

// TestAllWaitersCancel: when the last waiter gives up, the computation's
// context is cancelled, and the aborted result is not cached.
func TestAllWaitersCancel(t *testing.T) {
	c := New[string](1 << 20)
	aborted := make(chan struct{})
	started := make(chan struct{})
	f := func(fctx context.Context) (string, int64, error) {
		close(started)
		<-fctx.Done()
		close(aborted)
		return "", 0, fctx.Err()
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() { <-started; cancel() }()
	if _, _, err := c.GetOrCompute(ctx, "k", f); !errors.Is(err, context.Canceled) {
		t.Fatalf("want canceled, got %v", err)
	}
	select {
	case <-aborted:
	case <-time.After(5 * time.Second):
		t.Fatal("computation context never cancelled")
	}
	// The failed flight must not poison the key.
	v, _, err := c.GetOrCompute(context.Background(), "k", compute("fresh", 1))
	if err != nil || v != "fresh" {
		t.Fatalf("key poisoned after abort: %q %v", v, err)
	}
}

// TestConcurrentMixed hammers the cache from many goroutines with a
// small budget, for the race detector.
func TestConcurrentMixed(t *testing.T) {
	c := New[int](64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", i%13)
				v, _, err := c.GetOrCompute(context.Background(), k,
					func(context.Context) (int, int64, error) { return i % 13, 16, nil })
				if err != nil {
					t.Error(err)
					return
				}
				if v != i%13 {
					t.Errorf("key %s: got %d", k, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s := c.Stats(); s.SizeBytes > s.MaxBytes {
		t.Errorf("budget exceeded: %+v", s)
	}
}
