package cache

import (
	"container/list"
	"sync"
)

// ArtifactStats snapshots the artifact tier's counters.  Hits and Misses
// are counted by Get; Dirty is counted by the incremental compiler when a
// missed artifact is actually recomputed because its inputs changed — the
// difference between Misses and Dirty is lookups that failed for other
// reasons (thaw refused, evicted entry).
type ArtifactStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// BackingHits counts Get misses served by the durable backing tier
	// (also counted in Hits): artifacts thawed from disk after a
	// restart or from another process's compile.
	BackingHits int64 `json:"backing_hits,omitempty"`
	Dirty       int64 `json:"dirty"`
	Evictions   int64 `json:"evictions"`
	Entries     int   `json:"entries"`
	SizeBytes   int64 `json:"size_bytes"`
	MaxBytes    int64 `json:"max_bytes"`
}

// ArtifactBacking is an optional durable second tier under the artifact
// store, mirroring Backing for the untyped artifact values.  Load
// returns a decoded artifact plus its charge size; implementations skip
// kinds they cannot serialize by returning false from Load and doing
// nothing in Store.  Both are called outside the store's mutex, so a
// slow disk stalls only the requesting compile; concurrent misses on
// one key may duplicate a Load, which is wasted work, never wrong
// (content keys make racing Puts identical).
type ArtifactBacking interface {
	Load(key string) (any, int64, bool)
	Store(key string, val any, size int64)
}

// ArtifactStore is the artifact-level cache tier of incremental
// compilation: a size-bounded LRU mapping (procedure, pass) content
// fingerprints to frozen pass artifacts (dependence graphs, communication
// events, verification fragments).  Unlike Cache it has no singleflight —
// the incremental scheduler computes missing artifacts itself, in
// parallel, and a duplicated computation is merely wasted work, never
// wrong (both racers Put identical values under the same content key).
//
// All methods are safe for concurrent use; one store may back many
// concurrent compiles (the service shares a single store across every
// request, which is what makes the batched compile endpoint share
// artifacts between batch members).
type ArtifactStore struct {
	mu      sync.Mutex
	max     int64
	size    int64
	ll      *list.List // front = most recently used; values are *artEntry
	items   map[string]*list.Element
	backing ArtifactBacking
	stats   ArtifactStats
}

type artEntry struct {
	key  string
	val  any
	size int64
}

// NewArtifactStore returns a store bounded at maxBytes of charged entry
// size (<=0 selects a 64 MiB default).
func NewArtifactStore(maxBytes int64) *ArtifactStore {
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	return &ArtifactStore{
		max:   maxBytes,
		ll:    list.New(),
		items: map[string]*list.Element{},
	}
}

// SetBacking installs a durable backing tier.  Call before the store is
// shared; subsequent misses read through it and Puts write through.
func (s *ArtifactStore) SetBacking(b ArtifactBacking) {
	s.mu.Lock()
	s.backing = b
	s.mu.Unlock()
}

// Get returns the artifact stored under key and marks it recently used,
// falling back to the durable backing tier (and promoting its value
// into memory) on a miss.
func (s *ArtifactStore) Get(key string) (any, bool) {
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		s.ll.MoveToFront(el)
		s.stats.Hits++
		v := el.Value.(*artEntry).val
		s.mu.Unlock()
		return v, true
	}
	b := s.backing
	if b == nil {
		s.stats.Misses++
		s.mu.Unlock()
		return nil, false
	}
	s.mu.Unlock()
	val, size, ok := b.Load(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if !ok {
		s.stats.Misses++
		return nil, false
	}
	s.stats.Hits++
	s.stats.BackingHits++
	s.putLocked(key, val, size)
	return val, true
}

// Put stores an artifact under its content key, charging size bytes
// against the budget and evicting LRU entries as needed.  With a
// backing tier installed the artifact is also written through to it.
func (s *ArtifactStore) Put(key string, val any, size int64) {
	s.mu.Lock()
	s.putLocked(key, val, size)
	b := s.backing
	s.mu.Unlock()
	if b != nil {
		b.Store(key, val, size)
	}
}

func (s *ArtifactStore) putLocked(key string, val any, size int64) {
	if size < 1 {
		size = 1
	}
	if el, ok := s.items[key]; ok {
		s.size -= el.Value.(*artEntry).size
		s.ll.Remove(el)
		delete(s.items, key)
	}
	s.items[key] = s.ll.PushFront(&artEntry{key: key, val: val, size: size})
	s.size += size
	for s.size > s.max {
		back := s.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*artEntry)
		s.ll.Remove(back)
		delete(s.items, e.key)
		s.size -= e.size
		s.stats.Evictions++
	}
}

// MarkDirty records n artifacts recomputed because their fingerprints
// changed (the incremental scheduler calls this once per recompiled
// artifact).
func (s *ArtifactStore) MarkDirty(n int64) {
	s.mu.Lock()
	s.stats.Dirty += n
	s.mu.Unlock()
}

// Len returns the number of stored artifacts.
func (s *ArtifactStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Stats returns a snapshot of the counters.
func (s *ArtifactStore) Stats() ArtifactStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = s.ll.Len()
	st.SizeBytes = s.size
	st.MaxBytes = s.max
	return st
}
