// Package cache is a content-addressed, size-bounded LRU cache with
// singleflight deduplication of in-flight computations.  It backs the
// compile service's program cache: values are keyed by the canonical
// fingerprint of their inputs (see passes.FingerprintKey), identical
// concurrent misses run the computation once and share the result, and
// the cache tracks hit/miss/evict/coalesce counters for /v1/stats.
//
// The package is deliberately generic (Cache[V]) so it stores compiled
// programs without importing the root dhpf package.
package cache

import (
	"container/list"
	"context"
	"strconv"
	"strings"
	"sync"
)

// Key builds a composite cache key from parts.  Each part is
// length-prefixed so distinct part lists can never collide by
// concatenation ("a","bc" vs "ab","c") — callers compose fingerprints
// with qualifiers (scheme, machine, tier) without inventing ad-hoc
// separators.
func Key(parts ...string) string {
	var b strings.Builder
	for _, p := range parts {
		b.WriteString(strconv.Itoa(len(p)))
		b.WriteByte(':')
		b.WriteString(p)
		b.WriteByte(0)
	}
	return b.String()
}

// Stats is a point-in-time snapshot of the cache's counters.
type Stats struct {
	Hits   int64 `json:"hits"`   // lookups served from a stored entry
	Misses int64 `json:"misses"` // lookups that started a computation
	// InflightCoalesced counts lookups that found an identical
	// computation already running and waited for its result instead of
	// starting their own — the singleflight dedup counter.
	InflightCoalesced int64 `json:"inflight_coalesced"`
	// BackingHits counts misses that were served by the durable backing
	// tier instead of running the computation (restart-warm hits).
	BackingHits int64 `json:"backing_hits,omitempty"`
	Evictions   int64 `json:"evictions"`
	Entries     int   `json:"entries"`
	SizeBytes   int64 `json:"size_bytes"`
	MaxBytes    int64 `json:"max_bytes"`
}

// Backing is an optional durable second tier under the in-memory cache
// (read-through on miss, write-through on compute).  Load returns the
// value and the size to charge against the in-memory budget; a false
// return falls through to the computation.  Both methods run inside the
// singleflight flight, so concurrent misses on one key consult the
// backing once, and Store completes before any waiter observes the
// value — a process crash after GetOrCompute returns can never lose a
// value the caller already saw.  Implementations must be safe for
// concurrent use and must treat undecodable or version-mismatched
// stored bytes as a miss, never an error.
type Backing[V any] interface {
	Load(key string) (V, int64, bool)
	Store(key string, val V, size int64)
}

// entry is one stored value with its charged size.
type entry[V any] struct {
	key  string
	val  V
	size int64
}

// flight is one in-progress computation that waiters share.  The
// computation runs under its own context, cancelled only when every
// waiter has given up — one caller's timeout must not abort a compile
// that other callers are still waiting for.
type flight[V any] struct {
	done    chan struct{} // closed when val/err are final
	val     V
	err     error
	cached  bool // value came from the backing tier, not compute
	waiters int
	cancel  context.CancelFunc
}

// Cache is a size-bounded LRU keyed by content-address strings.
// All methods are safe for concurrent use.
type Cache[V any] struct {
	mu       sync.Mutex
	max      int64
	size     int64
	ll       *list.List // front = most recently used; values are *entry[V]
	items    map[string]*list.Element
	inflight map[string]*flight[V]
	backing  Backing[V]
	stats    Stats
}

// New returns a cache bounded at maxBytes of charged entry size.  An
// entry's size is whatever its computation reports (use 1 per entry to
// bound by count); entries larger than the whole budget are evicted
// immediately after insertion, so they still coalesce concurrent
// requests but are never retained.
func New[V any](maxBytes int64) *Cache[V] {
	if maxBytes <= 0 {
		maxBytes = 1
	}
	return &Cache[V]{
		max:      maxBytes,
		ll:       list.New(),
		items:    map[string]*list.Element{},
		inflight: map[string]*flight[V]{},
	}
}

// SetBacking installs a durable backing tier.  Call before the cache is
// shared; subsequent misses read through it and computed values are
// written through to it.
func (c *Cache[V]) SetBacking(b Backing[V]) {
	c.mu.Lock()
	c.backing = b
	c.mu.Unlock()
}

// Get returns the stored value for key, if present, and marks it
// recently used.  It does not wait for in-flight computations and does
// not consult the backing tier.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.stats.Hits++
		return el.Value.(*entry[V]).val, true
	}
	var zero V
	return zero, false
}

// GetOrCompute returns the cached value for key, or computes it.  The
// first caller to miss runs compute; concurrent callers with the same
// key wait for that result (counted as InflightCoalesced).  compute
// receives a context that stays live while any caller is still waiting
// — if ctx is cancelled, this caller unblocks with ctx.Err(), and only
// when the last waiter leaves is the computation itself cancelled.
// compute returns the value and the size to charge against the cache
// budget; errors are returned to every waiter and never cached.
//
// The second result reports whether the value came from the cache (a
// stored entry, a coalesced flight, or the durable backing tier) rather
// than this caller's own computation.
func (c *Cache[V]) GetOrCompute(ctx context.Context, key string,
	compute func(ctx context.Context) (V, int64, error)) (V, bool, error) {

	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.stats.Hits++
		v := el.Value.(*entry[V]).val
		c.mu.Unlock()
		return v, true, nil
	}
	if f, ok := c.inflight[key]; ok {
		f.waiters++
		c.stats.InflightCoalesced++
		c.mu.Unlock()
		return c.wait(ctx, key, f, true)
	}
	c.stats.Misses++
	fctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	f := &flight[V]{done: make(chan struct{}), waiters: 1, cancel: cancel}
	c.inflight[key] = f
	backing := c.backing
	c.mu.Unlock()

	go func() {
		var (
			val  V
			size int64
			err  error
		)
		fromBacking := false
		if backing != nil {
			val, size, fromBacking = backing.Load(key)
		}
		if !fromBacking {
			val, size, err = compute(fctx)
			if err == nil && backing != nil {
				// Write through before waiters observe the value, so a
				// restart after GetOrCompute returns always replays it.
				backing.Store(key, val, size)
			}
		}
		c.mu.Lock()
		f.val, f.err, f.cached = val, err, fromBacking
		if fromBacking {
			c.stats.BackingHits++
		}
		delete(c.inflight, key)
		if err == nil {
			c.insertLocked(key, val, size)
		}
		c.mu.Unlock()
		cancel()
		close(f.done)
	}()
	return c.wait(ctx, key, f, false)
}

// wait blocks until the flight completes or ctx is cancelled.  Leaving
// early decrements the waiter count; the last waiter to leave cancels
// the computation (it has no audience left).
func (c *Cache[V]) wait(ctx context.Context, key string, f *flight[V], coalesced bool) (V, bool, error) {
	select {
	case <-f.done:
		return f.val, coalesced || f.cached, f.err
	case <-ctx.Done():
		c.mu.Lock()
		f.waiters--
		abandon := f.waiters == 0 && c.inflight[key] == f
		c.mu.Unlock()
		if abandon {
			f.cancel()
		}
		var zero V
		return zero, false, ctx.Err()
	}
}

// insertLocked stores a computed entry and evicts LRU entries until the
// budget holds again.  Callers hold c.mu.
func (c *Cache[V]) insertLocked(key string, val V, size int64) {
	if size < 1 {
		size = 1
	}
	if el, ok := c.items[key]; ok { // raced insert of the same key
		c.size -= el.Value.(*entry[V]).size
		c.ll.Remove(el)
		delete(c.items, key)
	}
	c.items[key] = c.ll.PushFront(&entry[V]{key: key, val: val, size: size})
	c.size += size
	for c.size > c.max {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry[V])
		c.ll.Remove(back)
		delete(c.items, e.key)
		c.size -= e.size
		c.stats.Evictions++
	}
}

// Len returns the number of stored entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the counters.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.ll.Len()
	s.SizeBytes = c.size
	s.MaxBytes = c.max
	return s
}
