package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// mapBacking is an in-memory Backing/ArtifactBacking double.
type mapBacking struct {
	mu     sync.Mutex
	m      map[string]string
	loads  int
	stores int
}

func newMapBacking() *mapBacking { return &mapBacking{m: map[string]string{}} }

func (b *mapBacking) Load(key string) (string, int64, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.loads++
	v, ok := b.m[key]
	return v, int64(len(v)), ok
}

func (b *mapBacking) Store(key, val string, size int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stores++
	b.m[key] = val
}

func TestCacheBackingWriteThroughReadThrough(t *testing.T) {
	ctx := context.Background()
	b := newMapBacking()

	c1 := New[string](1 << 20)
	c1.SetBacking(b)
	v, cached, err := c1.GetOrCompute(ctx, "k", func(context.Context) (string, int64, error) {
		return "computed", 8, nil
	})
	if err != nil || v != "computed" || cached {
		t.Fatalf("cold: v=%q cached=%v err=%v", v, cached, err)
	}
	if b.stores != 1 {
		t.Fatalf("stores = %d, want 1 (write-through)", b.stores)
	}

	// A fresh cache over the same backing — a restart — serves the value
	// without computing, and reports it as cached.
	c2 := New[string](1 << 20)
	c2.SetBacking(b)
	v, cached, err = c2.GetOrCompute(ctx, "k", func(context.Context) (string, int64, error) {
		t.Fatal("compute ran on a backing hit")
		return "", 0, nil
	})
	if err != nil || v != "computed" || !cached {
		t.Fatalf("restart-warm: v=%q cached=%v err=%v", v, cached, err)
	}
	if st := c2.Stats(); st.BackingHits != 1 || st.Hits != 0 {
		t.Fatalf("stats after backing hit: %+v", st)
	}

	// Second lookup is a plain memory hit; the backing is not consulted
	// again.
	loadsBefore := b.loads
	if _, cached, _ := c2.GetOrCompute(ctx, "k", nil); !cached {
		t.Fatal("memory hit not cached")
	}
	if b.loads != loadsBefore {
		t.Fatalf("backing consulted on a memory hit (%d -> %d loads)", loadsBefore, b.loads)
	}
}

func TestCacheBackingErrorsNotStored(t *testing.T) {
	b := newMapBacking()
	c := New[string](1 << 20)
	c.SetBacking(b)
	boom := errors.New("boom")
	_, _, err := c.GetOrCompute(context.Background(), "k", func(context.Context) (string, int64, error) {
		return "", 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if b.stores != 0 {
		t.Fatal("failed computation written through to backing")
	}
}

// Concurrent misses on one key consult the backing once (the load runs
// inside the singleflight flight).
func TestCacheBackingSingleflight(t *testing.T) {
	b := newMapBacking()
	b.m["k"] = "stored"
	c := New[string](1 << 20)
	c.SetBacking(b)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, cached, err := c.GetOrCompute(context.Background(), "k", func(context.Context) (string, int64, error) {
				t.Error("compute ran")
				return "", 0, nil
			})
			if err != nil || v != "stored" || !cached {
				t.Errorf("v=%q cached=%v err=%v", v, cached, err)
			}
		}()
	}
	wg.Wait()
	if b.loads != 1 {
		t.Fatalf("backing loads = %d, want 1", b.loads)
	}
}

type anyBacking struct {
	mu     sync.Mutex
	m      map[string]any
	stores int
}

func (b *anyBacking) Load(key string) (any, int64, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	v, ok := b.m[key]
	return v, 8, ok
}

func (b *anyBacking) Store(key string, val any, size int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stores++
	b.m[key] = val
}

func TestArtifactStoreBacking(t *testing.T) {
	b := &anyBacking{m: map[string]any{}}

	s1 := NewArtifactStore(1 << 20)
	s1.SetBacking(b)
	s1.Put("a", "artifact-value", 16)
	if b.stores != 1 {
		t.Fatalf("stores = %d after Put", b.stores)
	}

	// Restart: a fresh in-memory store over the same backing.
	s2 := NewArtifactStore(1 << 20)
	s2.SetBacking(b)
	v, ok := s2.Get("a")
	if !ok || v != "artifact-value" {
		t.Fatalf("restart Get = %v, %v", v, ok)
	}
	st := s2.Stats()
	if st.BackingHits != 1 || st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("stats: %+v", st)
	}
	// Promoted into memory: second Get is a pure memory hit.
	if _, ok := s2.Get("a"); !ok {
		t.Fatal("promoted artifact lost")
	}
	if st := s2.Stats(); st.BackingHits != 1 || st.Hits != 2 {
		t.Fatalf("stats after promotion: %+v", st)
	}
	if _, ok := s2.Get("absent"); ok {
		t.Fatal("phantom artifact")
	}
	if st := s2.Stats(); st.Misses != 1 {
		t.Fatalf("miss not counted: %+v", st)
	}
}

func TestArtifactStoreBackingConcurrent(t *testing.T) {
	b := &anyBacking{m: map[string]any{}}
	for i := 0; i < 32; i++ {
		b.m[fmt.Sprintf("k%d", i)] = fmt.Sprintf("v%d", i)
	}
	s := NewArtifactStore(1 << 20)
	s.SetBacking(b)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				key := fmt.Sprintf("k%d", i)
				if v, ok := s.Get(key); !ok || v != fmt.Sprintf("v%d", i) {
					t.Errorf("Get(%s) = %v, %v", key, v, ok)
				}
				s.Put(fmt.Sprintf("p%d", i), i, 8)
			}
		}()
	}
	wg.Wait()
}
