package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestArtifactStoreHitMissDirty(t *testing.T) {
	s := NewArtifactStore(1 << 20)
	if _, ok := s.Get("a"); ok {
		t.Fatal("empty store returned a value")
	}
	s.Put("a", 42, 10)
	v, ok := s.Get("a")
	if !ok || v.(int) != 42 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	s.MarkDirty(3)
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Dirty != 3 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 3 dirty", st)
	}
	if st.Entries != 1 || st.SizeBytes != 10 {
		t.Fatalf("stats = %+v, want 1 entry of 10 bytes", st)
	}
}

func TestArtifactStoreReplaceSameKey(t *testing.T) {
	s := NewArtifactStore(1 << 20)
	s.Put("k", "old", 100)
	s.Put("k", "new", 40)
	v, ok := s.Get("k")
	if !ok || v.(string) != "new" {
		t.Fatalf("Get(k) = %v, %v", v, ok)
	}
	if st := s.Stats(); st.Entries != 1 || st.SizeBytes != 40 {
		t.Fatalf("stats after replace = %+v", st)
	}
}

func TestArtifactStoreLRUEviction(t *testing.T) {
	s := NewArtifactStore(100)
	s.Put("a", 1, 40)
	s.Put("b", 2, 40)
	s.Get("a") // a is now more recent than b
	s.Put("c", 3, 40)
	if _, ok := s.Get("b"); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	if _, ok := s.Get("a"); !ok {
		t.Fatal("recently-used entry a was evicted")
	}
	if _, ok := s.Get("c"); !ok {
		t.Fatal("fresh entry c was evicted")
	}
	if st := s.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestArtifactStoreConcurrent(t *testing.T) {
	s := NewArtifactStore(1 << 20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%17)
				if _, ok := s.Get(key); !ok {
					s.Put(key, i, 8)
					s.MarkDirty(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 17 {
		t.Fatalf("Len = %d, want 17", s.Len())
	}
}
