// Package cp implements dhpf's computation partitioning (CP) model and
// the four CP optimizations of the SC'98 paper:
//
//   - the general CP representation ON_HOME A1(f1(i)) ∪ … ∪ An(fn(i)),
//     a strict generalization of owner-computes (§2);
//   - local CP selection: enumerate candidate CPs per statement, evaluate
//     the communication each combination induces, pick the cheapest (§2);
//   - CP propagation for privatizable (NEW) arrays and LOCALIZE partial
//     replication: translate each use's CP back to the definition through
//     a 1-1 linear subscript mapping, vectorizing untranslated subscripts
//     through the loops that enclose the use but not the definition
//     (§4.1, §4.2);
//   - communication-sensitive loop distribution: union-find grouping of
//     statements connected by loop-independent dependences, restricting
//     the groups' CP choice sets to common choices, then *selective* SCC
//     distribution for the pairs that could not be aligned (§5);
//   - interprocedural CP selection, bottom-up on the call graph, with the
//     callee's entry CP translated to each call site (§6).
package cp

import (
	"fmt"
	"sort"
	"strings"

	"dhpf/internal/hpf"
	"dhpf/internal/ir"
	"dhpf/internal/iset"
)

// HomeSub is one subscript of an ON_HOME term.  It is either an affine
// function of a loop index variable (like ir.Subscript) or a vectorized
// range [Lo:Hi] produced when CP translation expands an untranslated
// subscript through a loop surrounding the use (§4.1).
type HomeSub struct {
	// Affine form: Coef*Var + Off (Var == "" ⇒ the constant Off).
	Var  string
	Coef int
	Off  ir.AffExpr
	// Range form (IsRange == true): the closed interval [Lo:Hi].
	IsRange bool
	Lo, Hi  ir.AffExpr
}

// FromSubscript converts an ir.Subscript into a HomeSub.
func FromSubscript(s ir.Subscript) HomeSub {
	return HomeSub{Var: s.Var, Coef: s.Coef, Off: s.Off}
}

// RangeSub builds a vectorized range subscript.
func RangeSub(lo, hi ir.AffExpr) HomeSub {
	return HomeSub{IsRange: true, Lo: lo, Hi: hi}
}

// Eq reports structural equality.
func (h HomeSub) Eq(o HomeSub) bool {
	if h.IsRange != o.IsRange {
		return false
	}
	if h.IsRange {
		return h.Lo.Eq(o.Lo) && h.Hi.Eq(o.Hi)
	}
	if h.Var != o.Var {
		return false
	}
	if h.Var != "" && h.Coef != o.Coef {
		return false
	}
	return h.Off.Eq(o.Off)
}

func (h HomeSub) String() string {
	if h.IsRange {
		return fmt.Sprintf("%s:%s", h.Lo, h.Hi)
	}
	return ir.Subscript{Var: h.Var, Coef: h.Coef, Off: h.Off}.String()
}

// Term is one ON_HOME term: the owner set of Array(Subs...).
type Term struct {
	Array string
	Subs  []HomeSub
}

// TermOf builds a term from an array reference.
func TermOf(r *ir.ArrayRef) Term {
	t := Term{Array: r.Name, Subs: make([]HomeSub, len(r.Subs))}
	for k, s := range r.Subs {
		t.Subs[k] = FromSubscript(s)
	}
	return t
}

// Eq reports structural equality of terms.
func (t Term) Eq(o Term) bool {
	if t.Array != o.Array || len(t.Subs) != len(o.Subs) {
		return false
	}
	for k := range t.Subs {
		if !t.Subs[k].Eq(o.Subs[k]) {
			return false
		}
	}
	return true
}

func (t Term) String() string {
	subs := make([]string, len(t.Subs))
	for k, s := range t.Subs {
		subs[k] = s.String()
	}
	return fmt.Sprintf("%s(%s)", t.Array, strings.Join(subs, ","))
}

// CP is a computation partitioning: the union of the owner sets of its
// ON_HOME terms.  A nil/empty CP means replicated execution (every
// processor runs the statement) — used for statements touching only
// undistributed data.
type CP struct {
	Terms []Term
}

// OnHome builds a CP from array references.
func OnHome(refs ...*ir.ArrayRef) *CP {
	c := &CP{}
	for _, r := range refs {
		c.AddTerm(TermOf(r))
	}
	return c
}

// Replicated reports whether the CP means "execute everywhere".
func (c *CP) Replicated() bool { return c == nil || len(c.Terms) == 0 }

// AddTerm unions a term in, dropping structural duplicates.
func (c *CP) AddTerm(t Term) {
	for _, have := range c.Terms {
		if have.Eq(t) {
			return
		}
	}
	c.Terms = append(c.Terms, t)
}

// Union returns the union of two CPs.  Union with a replicated CP is
// replicated (everyone already executes).
func (c *CP) Union(o *CP) *CP {
	if c.Replicated() || o.Replicated() {
		return &CP{}
	}
	out := &CP{}
	for _, t := range c.Terms {
		out.AddTerm(t)
	}
	for _, t := range o.Terms {
		out.AddTerm(t)
	}
	return out
}

// Eq reports structural equality (as unordered term sets).
func (c *CP) Eq(o *CP) bool {
	if c.Replicated() || o.Replicated() {
		return c.Replicated() == o.Replicated()
	}
	if len(c.Terms) != len(o.Terms) {
		return false
	}
	for _, t := range c.Terms {
		found := false
		for _, u := range o.Terms {
			if t.Eq(u) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func (c *CP) String() string {
	if c.Replicated() {
		return "ON_HOME <all>"
	}
	parts := make([]string, len(c.Terms))
	for i, t := range c.Terms {
		parts[i] = t.String()
	}
	sort.Strings(parts)
	return "ON_HOME " + strings.Join(parts, " u ")
}

// ---------------------------------------------------------------------------
// Iteration-set evaluation
// ---------------------------------------------------------------------------

// IterBox evaluates the rectangular iteration space of a loop nest
// (outermost first) under the parameter binding, normalizing backward
// loops to forward intervals.
func IterBox(nest []*ir.Loop, bind map[string]int) iset.Box {
	lo := make([]int, len(nest))
	hi := make([]int, len(nest))
	for i, l := range nest {
		a, b := l.Lo.Eval(bind), l.Hi.Eval(bind)
		if l.Step < 0 {
			a, b = b, a
		}
		lo[i], hi[i] = a, b
	}
	return iset.NewBox(lo, hi)
}

// ExecBox computes the iterations of iterBox (whose dimensions are the
// nest variables, outermost first) that the term assigns to a processor
// owning exactly the array box local.  A range subscript constrains no
// iteration variable; it only gates the whole box on whether the range
// intersects the local box in that dimension (∃-semantics).
func (t Term) ExecBox(nestVars []string, iterBox iset.Box, local iset.Box, bind map[string]int) iset.Box {
	if len(t.Subs) != local.Rank() {
		panic(fmt.Sprintf("cp: term %v rank %d vs local box rank %d", t, len(t.Subs), local.Rank()))
	}
	out := iset.NewBox(iterBox.Lo, iterBox.Hi)
	kill := func() iset.Box {
		e := iset.NewBox(iterBox.Lo, iterBox.Hi)
		for k := range e.Lo {
			e.Lo[k], e.Hi[k] = 1, 0
		}
		return e
	}
	for d, s := range t.Subs {
		dlo, dhi := local.Lo[d], local.Hi[d]
		switch {
		case s.IsRange:
			rlo, rhi := s.Lo.EvalOr(bind, 0), s.Hi.EvalOr(bind, 0)
			if max(rlo, dlo) > min(rhi, dhi) {
				return kill()
			}
		case s.Var == "":
			v := s.Off.EvalOr(bind, 0)
			if v < dlo || v > dhi {
				return kill()
			}
		default:
			j := indexOf(nestVars, s.Var)
			if j < 0 {
				// Subscript variable is not a nest variable (e.g. an
				// integer formal bound at run time); treat as a symbolic
				// parameter.
				v := s.Coef*bind[s.Var] + s.Off.EvalOr(bind, 0)
				if v < dlo || v > dhi {
					return kill()
				}
				continue
			}
			off := s.Off.EvalOr(bind, 0)
			var a, b int
			if s.Coef == 1 {
				a, b = dlo-off, dhi-off
			} else { // Coef == -1: dlo ≤ -i+off ≤ dhi
				a, b = off-dhi, off-dlo
			}
			out.Lo[j] = max(out.Lo[j], a)
			out.Hi[j] = min(out.Hi[j], b)
		}
	}
	return out
}

// IterSet computes the set of iterations of the nest a processor with the
// given local ownership boxes executes under this CP.  localOf maps an
// array name to the processor's local box for it (nil layout arrays —
// replicated — make the term cover the whole iteration space).
func (c *CP) IterSet(nest []*ir.Loop, bind map[string]int, localOf func(array string) (iset.Box, bool)) iset.Set {
	iterBox := IterBox(nest, bind)
	if c.Replicated() {
		return iset.FromBox(iterBox)
	}
	vars := ir.NestVars(nest)
	out := iset.EmptySet(iterBox.Rank())
	for _, t := range c.Terms {
		local, distributed := localOf(t.Array)
		if !distributed {
			return iset.FromBox(iterBox)
		}
		out = out.UnionBox(t.ExecBox(vars, iterBox, local, bind))
	}
	return out
}

// RefDataBox computes the box of array elements a reference touches over
// an iteration box (dimensions = nestVars).
func RefDataBox(ref *ir.ArrayRef, nestVars []string, iter iset.Box, bind map[string]int) iset.Box {
	lo := make([]int, len(ref.Subs))
	hi := make([]int, len(ref.Subs))
	empty := iter.Empty()
	for d, s := range ref.Subs {
		if s.Var == "" {
			v := s.Off.EvalOr(bind, 0)
			lo[d], hi[d] = v, v
			continue
		}
		j := indexOf(nestVars, s.Var)
		if j < 0 {
			v := s.Coef*bind[s.Var] + s.Off.EvalOr(bind, 0)
			lo[d], hi[d] = v, v
			continue
		}
		off := s.Off.EvalOr(bind, 0)
		a := s.Coef*iter.Lo[j] + off
		b := s.Coef*iter.Hi[j] + off
		lo[d], hi[d] = min(a, b), max(a, b)
	}
	box := iset.NewBox(lo, hi)
	if empty {
		for d := range box.Lo {
			box.Lo[d], box.Hi[d] = 1, 0
		}
	}
	return box
}

// RefDataSet maps an iteration set through a reference.
func RefDataSet(ref *ir.ArrayRef, nestVars []string, iters iset.Set, bind map[string]int) iset.Set {
	out := iset.EmptySet(len(ref.Subs))
	for _, b := range iters.Boxes() {
		out = out.UnionBox(RefDataBox(ref, nestVars, b, bind))
	}
	return out
}

func indexOf(xs []string, v string) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

// LocalBoxFunc builds the localOf callback for a rank from a binding.
func LocalBoxFunc(b *hpf.Binding, rank int) func(string) (iset.Box, bool) {
	return func(array string) (iset.Box, bool) {
		l := b.LayoutOf(array)
		if l == nil {
			return iset.Box{}, false
		}
		return l.LocalBox(rank), true
	}
}
