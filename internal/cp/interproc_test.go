package cp

import (
	"testing"

	"dhpf/internal/ir"
)

// interprocSrc mirrors the paper's Figure 6.1: leaf routines performing
// pointwise work on whole-array arguments anchored by scalar index
// formals, called inside parallel loops.  The callee's uniform CP must be
// translated to the call sites so the enclosing loops partition.
const interprocSrc = `
program bt_solve
param N = 64
!hpf$ processors procs(2, 2)
!hpf$ template tm(N, N, N)
!hpf$ align rhs with tm(d0, d1, d2)
!hpf$ align lhs with tm(d0, d1, d2)
!hpf$ distribute tm(*, BLOCK, BLOCK) onto procs

subroutine matvec_sub(v, jj, kk)
  real v(0:N-1, 0:N-1, 0:N-1)
  do i = 1, N-2
    v(i, jj, kk) = v(i, jj, kk) * 0.5
  enddo
end

subroutine main()
  real rhs(0:N-1, 0:N-1, 0:N-1)
  real lhs(0:N-1, 0:N-1, 0:N-1)
  do k = 1, N-2
    do j = 1, N-2
      call matvec_sub(rhs, j, k)
    enddo
  enddo
end
`

func TestInterprocEntryCP(t *testing.T) {
	ctx := mustCtx(t, interprocSrc)
	sel := mustSelect(t, ctx, DefaultOptions())

	// The leaf's statements all get ON_HOME v(i,jj,kk); the entry CP
	// vectorizes the internal i loop: ON_HOME v(1:N-2, jj, kk).
	entry := sel.Entry["matvec_sub"]
	if entry == nil || entry.Replicated() {
		t.Fatalf("matvec_sub entry CP = %v", entry)
	}
	if len(entry.Terms) != 1 || entry.Terms[0].Array != "v" {
		t.Fatalf("entry = %v", entry)
	}
	sub0 := entry.Terms[0].Subs[0]
	if !sub0.IsRange {
		t.Fatalf("entry sub0 not vectorized: %v", sub0)
	}
	if !sub0.Lo.Eq(ir.Num(1)) || !sub0.Hi.Eq(ir.Sym("N").AddConst(-2)) {
		t.Fatalf("entry range = %v:%v", sub0.Lo, sub0.Hi)
	}
}

func TestInterprocCallSiteTranslation(t *testing.T) {
	ctx := mustCtx(t, interprocSrc)
	sel := mustSelect(t, ctx, DefaultOptions())
	mainProc := ctx.Prog.Proc("main")
	var call *ir.CallStmt
	ir.Walk(mainProc.Body, func(s ir.Stmt, _ []*ir.Loop) bool {
		if c, ok := s.(*ir.CallStmt); ok {
			call = c
		}
		return true
	})
	got := sel.CPOf(call.ID)
	if got.Replicated() {
		t.Fatal("call CP replicated; translation failed")
	}
	if got.Terms[0].Array != "rhs" {
		t.Fatalf("call CP array = %s", got.Terms[0].Array)
	}
	// Subscripts: (range 1:N-2, j, k).
	subs := got.Terms[0].Subs
	if !subs[0].IsRange {
		t.Fatalf("dim0 = %v", subs[0])
	}
	if subs[1].Var != "j" || subs[1].Coef != 1 {
		t.Fatalf("dim1 = %v", subs[1])
	}
	if subs[2].Var != "k" || subs[2].Coef != 1 {
		t.Fatalf("dim2 = %v", subs[2])
	}
}

func TestInterprocCallPartitionsWork(t *testing.T) {
	// With the translated CP, the (j,k) call iterations must partition
	// across ranks following rhs's (·, BLOCK, BLOCK) layout: every rank
	// runs exactly the (j,k) pairs it owns.
	ctx := mustCtx(t, interprocSrc)
	sel := mustSelect(t, ctx, DefaultOptions())
	mainProc := ctx.Prog.Proc("main")
	kLoop := mainProc.Body[0].(*ir.Loop)
	jLoop := kLoop.Body[0].(*ir.Loop)
	call := jLoop.Body[0].(*ir.CallStmt)
	nest := []*ir.Loop{kLoop, jLoop}

	var total int64
	for r := 0; r < 4; r++ {
		iters := sel.CPOf(call.ID).IterSet(nest, ctx.Bind.Params, ctx.LocalOf(mainProc, r))
		total += iters.Card()
	}
	want := int64(62 * 62)
	if total != want {
		t.Fatalf("call iterations across ranks = %d, want %d (exact partition)", total, want)
	}
}

func TestInterprocDisabledReplicates(t *testing.T) {
	ctx := mustCtx(t, interprocSrc)
	opt := DefaultOptions()
	opt.Interproc = false
	sel := mustSelect(t, ctx, opt)
	mainProc := ctx.Prog.Proc("main")
	var call *ir.CallStmt
	ir.Walk(mainProc.Body, func(s ir.Stmt, _ []*ir.Loop) bool {
		if c, ok := s.(*ir.CallStmt); ok {
			call = c
		}
		return true
	})
	if !sel.CPOf(call.ID).Replicated() {
		t.Fatal("with interproc off the call should replicate")
	}
}

func TestNonUniformCalleeHasNilEntry(t *testing.T) {
	ctx := mustCtx(t, `
program t
param N = 64
!hpf$ processors procs(4)
!hpf$ template tm(N)
!hpf$ align a with tm(d0)
!hpf$ align b with tm(d0)
!hpf$ distribute tm(BLOCK) onto procs

subroutine two_cps(a, b)
  real a(0:N-1)
  real b(0:N-1)
  do i = 1, N-2
    a(i) = 1.0
  enddo
  do i = 1, N-2
    b(i+1) = 2.0
  enddo
end

subroutine main()
  real a(0:N-1)
  real b(0:N-1)
  call two_cps(a, b)
end
`)
	sel := mustSelect(t, ctx, DefaultOptions())
	if sel.Entry["two_cps"] != nil {
		t.Fatalf("two_cps entry should be nil, got %v", sel.Entry["two_cps"])
	}
}

func TestCalleesOrderAndRecursionDetection(t *testing.T) {
	ctx := mustCtx(t, interprocSrc)
	order, err := ctx.Callees()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0].Name != "matvec_sub" || order[1].Name != "main" {
		names := []string{}
		for _, p := range order {
			names = append(names, p.Name)
		}
		t.Fatalf("order = %v", names)
	}
}

func TestFormalLayoutPropagation(t *testing.T) {
	ctx := mustCtx(t, interprocSrc)
	callee := ctx.Prog.Proc("matvec_sub")
	l := ctx.Layout(callee, "v")
	if l == nil {
		t.Fatal("formal v has no propagated layout")
	}
	if l != ctx.Bind.LayoutOf("rhs") {
		t.Fatal("formal v layout is not rhs's layout")
	}
}
