package cp

import (
	"testing"

	"dhpf/internal/ir"
)

// ySolveSrc is the paper's Figure 5.1 pattern (subroutine y_solve of SP):
// a forward-elimination loop where every statement references lhs/rhs at
// row j and row j+1.  All loop-independent dependences can be localized
// by giving every statement the same CP, so no distribution happens.
const ySolveSrc = `
program sp_ysolve
param N = 64
!hpf$ processors procs(4)
!hpf$ template tm(N, N)
!hpf$ align lhs with tm(d0, d1)
!hpf$ align rhs with tm(d0, d1)
!hpf$ distribute tm(*, BLOCK) onto procs

subroutine main()
  real lhs(0:N-1, 0:N-1)
  real rhs(0:N-1, 0:N-1)
  real fac1
  do j = 1, N-3
    do i = 1, N-2
      fac1 = 1.0 / lhs(i,j)
      lhs(i,j+1) = lhs(i,j+1) - fac1 * lhs(i,j)
      rhs(i,j+1) = rhs(i,j+1) - fac1 * rhs(i,j)
    enddo
  enddo
end
`

func TestYSolveAllStatementsGrouped(t *testing.T) {
	ctx := mustCtx(t, ySolveSrc)
	sel := mustSelect(t, ctx, DefaultOptions())
	if n := len(sel.Marked[ctx.Prog.Main()]); n != 0 {
		t.Fatalf("marked pairs = %d, want 0 (all deps localizable)", n)
	}
	// All three statements must share one CP (the paper's result: the
	// whole group runs ON_HOME lhs(i,j+1)-equivalent partition).
	jLoop := ctx.Prog.Main().Body[0].(*ir.Loop)
	iLoop := jLoop.Body[0].(*ir.Loop)
	var cps []*CP
	for _, s := range iLoop.Body {
		cps = append(cps, sel.CPOf(s.(*ir.Assign).ID))
	}
	for k := 1; k < len(cps); k++ {
		if cpKey(ctx, ctx.Prog.Main(), cps[k]) != cpKey(ctx, ctx.Prog.Main(), cps[0]) {
			t.Fatalf("statement %d CP %v differs from %v", k, cps[k], cps[0])
		}
	}
	if cps[0].Replicated() {
		t.Fatal("group CP is replicated")
	}
}

// conflictSrc modifies the pattern so two statements have NO common CP
// choice (the paper's hypothetical: statement 8 referencing lhs(i,j+1,n+4)
// forcing a distribution).  Here stmt A is pinned to partition j and
// stmt B to partition j+1 on different arrays with a loop-independent
// dependence chain through a third array at mismatched offsets.
const conflictSrc = `
program conflict
param N = 64
!hpf$ processors procs(4)
!hpf$ template tm(N)
!hpf$ align a with tm(d0)
!hpf$ align b with tm(d0)
!hpf$ distribute tm(BLOCK) onto procs

subroutine main()
  real a(0:N-1)
  real b(0:N-1)
  do j = 1, N-3
    a(j) = 1.5
    b(j+1) = a(j) + 2.0
  enddo
end
`

func TestConflictingChoicesMarkedAndDistributed(t *testing.T) {
	// a(j)=… has the single choice ON_HOME a(j); b(j+1)=…a(j) has choices
	// {b(j+1), a(j)} — they share a(j)'s partition, so grouping works and
	// nothing distributes.  Verify grouping picked the common partition.
	ctx := mustCtx(t, conflictSrc)
	sel := mustSelect(t, ctx, DefaultOptions())
	proc := ctx.Prog.Main()
	if n := len(sel.Marked[proc]); n != 0 {
		t.Fatalf("marked = %d", n)
	}
	loop := proc.Body[0].(*ir.Loop)
	sa := loop.Body[0].(*ir.Assign)
	sb := loop.Body[1].(*ir.Assign)
	ka := cpKey(ctx, proc, sel.CPOf(sa.ID))
	kb := cpKey(ctx, proc, sel.CPOf(sb.ID))
	if ka != kb {
		t.Fatalf("grouped statements have different partitions: %v vs %v", sel.CPOf(sa.ID), sel.CPOf(sb.ID))
	}
}

// trueConflictSrc really has no common choice: the dependence connects
// statements whose only candidates are pinned to different partitions
// (each statement references exactly one distributed array, at offsets
// that conflict).
const trueConflictSrc = `
program conflict2
param N = 64
!hpf$ processors procs(4)
!hpf$ template tm(N)
!hpf$ align a with tm(d0)
!hpf$ align b with tm(d0)
!hpf$ align c with tm(d0)
!hpf$ distribute tm(BLOCK) onto procs

subroutine main()
  real a(0:N-1)
  real b(0:N-1)
  real c(0:N-1)
  real s
  do j = 1, N-3
    s = a(j) * 2.0
    c(j+1) = s + b(j+1)
  enddo
end
`

func TestTrueConflictMarksPair(t *testing.T) {
	ctx := mustCtx(t, trueConflictSrc)
	sel := mustSelect(t, ctx, DefaultOptions())
	proc := ctx.Prog.Main()
	// s=a(j)… is pinned to partition a(j); c(j+1)=s+b(j+1) to partition
	// j+1.  The scalar flow dep s forces grouping, which must fail.
	if n := len(sel.Marked[proc]); n == 0 {
		t.Fatal("expected a marked pair")
	}
	// Distribution must split the loop into two.
	changed := DistributeLoops(ctx, proc, sel)
	if !changed {
		t.Fatal("DistributeLoops made no change")
	}
	loops := 0
	for _, s := range proc.Body {
		if _, ok := s.(*ir.Loop); ok {
			loops++
		}
	}
	if loops != 2 {
		t.Fatalf("top-level loops after distribution = %d, want 2", loops)
	}
	// Statements preserved, in order.
	asn := ir.Assignments(proc.Body)
	if len(asn) != 2 {
		t.Fatalf("assignments after distribution = %d", len(asn))
	}
	if len(asn[0].Nest) != 1 || len(asn[1].Nest) != 1 || asn[0].Nest[0] == asn[1].Nest[0] {
		t.Fatal("statements not split into different loops")
	}
}

func TestDistributionRefusesSCCCycle(t *testing.T) {
	// A recurrence couples the two statements in both directions: they
	// form one SCC, so distribution is illegal and must be refused.
	ctx := mustCtx(t, `
program cyc
param N = 64
!hpf$ processors procs(4)
!hpf$ template tm(N)
!hpf$ align a with tm(d0)
!hpf$ align b with tm(d0)
!hpf$ distribute tm(BLOCK) onto procs

subroutine main()
  real a(0:N-1)
  real b(0:N-1)
  do j = 1, N-3
    a(j) = b(j-1) + 1.0
    b(j+1) = a(j) + 2.0
  enddo
end
`)
	sel := mustSelect(t, ctx, DefaultOptions())
	proc := ctx.Prog.Main()
	// Force a marked pair artificially to exercise the SCC refusal.
	loop := proc.Body[0].(*ir.Loop)
	s1 := loop.Body[0].(*ir.Assign)
	s2 := loop.Body[1].(*ir.Assign)
	sel.Marked[proc] = append(sel.Marked[proc], [2]*ir.Assign{s1, s2})
	DistributeLoops(ctx, proc, sel)
	loops := 0
	for _, s := range proc.Body {
		if _, ok := s.(*ir.Loop); ok {
			loops++
		}
	}
	if loops != 1 {
		t.Fatalf("SCC-coupled loop was split into %d loops", loops)
	}
}

func TestSelectiveNotMaximalDistribution(t *testing.T) {
	// Four statements; only the pair (s1, s4) conflicts.  Selective
	// distribution must produce exactly 2 loops, not 4 (§5: "only
	// selectively distributes these SCCs").
	ctx := mustCtx(t, `
program sel
param N = 64
!hpf$ processors procs(4)
!hpf$ template tm(N)
!hpf$ align a with tm(d0)
!hpf$ align b with tm(d0)
!hpf$ align c with tm(d0)
!hpf$ align d with tm(d0)
!hpf$ distribute tm(BLOCK) onto procs

subroutine main()
  real a(0:N-1)
  real b(0:N-1)
  real c(0:N-1)
  real d(0:N-1)
  do j = 1, N-3
    a(j) = 1.0
    b(j) = 2.0
    c(j) = 3.0
    d(j+1) = a(j) + 4.0
  enddo
end
`)
	sel := mustSelect(t, ctx, DefaultOptions())
	proc := ctx.Prog.Main()
	loop := proc.Body[0].(*ir.Loop)
	s1 := loop.Body[0].(*ir.Assign)
	s4 := loop.Body[3].(*ir.Assign)
	sel.Marked[proc] = [][2]*ir.Assign{{s1, s4}}
	if !DistributeLoops(ctx, proc, sel) {
		t.Fatal("no distribution performed")
	}
	loops := 0
	for _, s := range proc.Body {
		if _, ok := s.(*ir.Loop); ok {
			loops++
		}
	}
	if loops != 2 {
		t.Fatalf("selective distribution produced %d loops, want 2", loops)
	}
}
