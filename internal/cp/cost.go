package cp

import (
	"dhpf/internal/ir"
	"dhpf/internal/iset"
)

// Cost-model constants for CP selection.  These weigh messages against
// moved elements the way a 1998-era MPP does: a message start-up costs
// on the order of hundreds of element-transfer times, so the selection
// strongly prefers plans with fewer, larger (vectorizable) messages —
// exactly the pressure that drives the paper's choices.
const (
	msgCost  = 512 // per contiguous non-local region (≈ one message)
	elemCost = 1   // per non-local element moved
)

// CommCost estimates the communication cost a CP assignment induces for
// the assignments under a loop nest, summed over sampled ranks.
//
// For each assignment S executed with iteration set I(p) on rank p:
//   - every distributed RHS reference R contributes the non-local part of
//     R(I(p)): data the rank reads but does not own;
//   - the LHS reference W contributes the non-local part of W(I(p)):
//     non-owner writes that the dhpf communication model sends back to
//     the owner (§2).
//
// The estimate deliberately ignores the later comm optimizations
// (vectorization placement, coalescing, availability): it is the simple
// approximate evaluation the paper's selection algorithm uses.
func (ctx *Context) CommCost(proc *ir.Procedure, loop *ir.Loop, cps map[int]*CP) int64 {
	ranks := ctx.sampleRanks()
	var total int64
	asn := ir.Assignments([]ir.Stmt{loop})
	for _, rank := range ranks {
		localOf := ctx.LocalOf(proc, rank)
		for _, a := range asn {
			cp := cps[a.Assign.ID]
			nest := a.Nest
			vars := ir.NestVars(nest)
			iters := cp.IterSet(nest, ctx.Bind.Params, localOf)
			if iters.IsEmpty() {
				continue
			}
			refs := []*ir.ArrayRef{a.Assign.LHS}
			refs = append(refs, ir.Refs(a.Assign.RHS)...)
			for ri, r := range refs {
				l := ctx.Layout(proc, r.Name)
				if l == nil || len(r.Subs) == 0 {
					continue
				}
				local, _ := localOf(r.Name)
				data := RefDataSet(r, vars, iters, ctx.Bind.Params)
				data = data.IntersectBox(l.Space())
				nonlocal := data.SubtractBox(local)
				if nonlocal.IsEmpty() {
					continue
				}
				boxes := nonlocal.Boxes()
				cost := int64(len(boxes)) * msgCost
				cost += nonlocal.Card() * elemCost
				if ri == 0 {
					// Non-owner writes also force the owner's copy to be
					// fetched or the value returned; same order of cost.
					total += cost
				} else {
					total += cost
				}
			}
		}
	}
	return total
}

// sampleRanks picks the ranks cost evaluation sums over: all of them for
// small grids, otherwise a spread of representatives (corners + middle
// of each grid dimension).
func (ctx *Context) sampleRanks() []int {
	grid, err := ctx.Grid()
	if err != nil {
		return []int{0}
	}
	n := grid.Size()
	if n <= 16 {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	seen := map[int]bool{}
	var out []int
	add := func(r int) {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	// Corners and center of the grid.
	dims := len(grid.Shape)
	for mask := 0; mask < 1<<dims; mask++ {
		c := make([]int, dims)
		for d := 0; d < dims; d++ {
			if mask&(1<<d) != 0 {
				c[d] = grid.Shape[d] - 1
			}
		}
		add(grid.Rank(c))
	}
	mid := make([]int, dims)
	for d := range mid {
		mid[d] = grid.Shape[d] / 2
	}
	add(grid.Rank(mid))
	return out
}

// NonLocalData returns, for one rank, the non-local part of what a
// reference touches when a statement executes with the given iteration
// set — the primitive the comm package builds its events from.
func (ctx *Context) NonLocalData(proc *ir.Procedure, ref *ir.ArrayRef, nestVars []string, iters iset.Set, rank int) iset.Set {
	l := ctx.Layout(proc, ref.Name)
	if l == nil || len(ref.Subs) == 0 {
		return iset.EmptySet(len(ref.Subs))
	}
	data := RefDataSet(ref, nestVars, iters, ctx.Bind.Params)
	data = data.IntersectBox(l.Space())
	return data.SubtractBox(l.LocalBox(rank))
}
