package cp

import (
	"dhpf/internal/dep"
	"dhpf/internal/ir"
)

// DistributeLoops applies §5's *selective* loop distribution: for every
// statement pair marked during CP selection (no common CP choice), split
// the loop that is their lowest common ancestor so the pair lands in
// different loops — into the *minimum* number of new loops, by fusing
// the SCCs of the dependence graph that do not need to be separated.
// Pairs whose endpoints share an SCC cannot legally be split; they are
// left in place (their communication stays at that loop level) and
// reported in the selection notes.
//
// Statement objects are reused, so CPs recorded by statement ID remain
// valid; only Loop nodes are re-created (with fresh IDs).
func DistributeLoops(ctx *Context, proc *ir.Procedure, sel *Selection) bool {
	// Distribution notes come after every selection note, grouped by the
	// procedure's program order (the order compile calls us in).
	sel.cur = noteKey{late: 1}
	for i, p := range ctx.Prog.Procs {
		if p == proc {
			sel.cur.proc = i
			break
		}
	}
	pairs := sel.Marked[proc]
	if len(pairs) == 0 {
		return false
	}

	changed := false
	// Process repeatedly: splitting an outer loop can expose the next
	// pair's LCA.  Each pass resolves at least one pair or stops.
	for iter := 0; iter < len(pairs)+1; iter++ {
		var unresolved [][2]*ir.Assign
		progressed := false
		for _, pair := range pairs {
			lca, parentBody := lcaLoop(proc, pair[0], pair[1])
			if lca == nil || parentBody == nil {
				continue // endpoints no longer share a loop: resolved
			}
			if splitLoop(ctx, proc, lca, parentBody, pair, sel) {
				changed = true
				progressed = true
			} else {
				unresolved = append(unresolved, pair)
			}
		}
		pairs = unresolved
		if !progressed || len(pairs) == 0 {
			break
		}
	}
	for _, pair := range pairs {
		sel.notef("proc %s: pair (stmt %d, stmt %d) not distributable (shared SCC); communication stays inner",
			proc.Name, pair[0].ID, pair[1].ID)
	}
	return changed
}

// lcaLoop finds the innermost loop containing both statements, and the
// body slice holding that loop (for replacement).  Returns nils when the
// statements no longer share a loop.
func lcaLoop(proc *ir.Procedure, a, b *ir.Assign) (*ir.Loop, *[]ir.Stmt) {
	pa := pathTo(proc.Body, a)
	pb := pathTo(proc.Body, b)
	if pa == nil || pb == nil {
		return nil, nil
	}
	var lca *ir.Loop
	n := min(len(pa), len(pb))
	k := 0
	for ; k < n; k++ {
		if pa[k] != pb[k] {
			break
		}
		lca = pa[k]
	}
	if lca == nil {
		return nil, nil
	}
	// Parent body of lca: body of the loop above it, or the proc body.
	if k >= 2 && pa[k-2] != nil {
		return lca, &pa[k-2].Body
	}
	return lca, &proc.Body
}

// pathTo returns the chain of loops from the top of body down to the
// statement (outermost first), or nil if absent.
func pathTo(body []ir.Stmt, target *ir.Assign) []*ir.Loop {
	var found []*ir.Loop
	ir.Walk(body, func(s ir.Stmt, loops []*ir.Loop) bool {
		if found != nil {
			return false
		}
		if s == ir.Stmt(target) {
			found = make([]*ir.Loop, len(loops))
			copy(found, loops)
			if found == nil {
				found = []*ir.Loop{}
			}
			return false
		}
		return true
	})
	return found
}

// splitLoop distributes loop l (found inside *parent) so that the two
// statements of pair end up in different loops.  Returns false when the
// pair shares an SCC of l's dependence graph (split illegal).
func splitLoop(ctx *Context, proc *ir.Procedure, l *ir.Loop, parent *[]ir.Stmt, pair [2]*ir.Assign, sel *Selection) bool {
	units := l.Body
	if len(units) < 2 {
		return false
	}
	unitOf := func(a *ir.Assign) int {
		for i, u := range units {
			if u == ir.Stmt(a) {
				return i
			}
			if lu, ok := u.(*ir.Loop); ok && containsAssign(lu, a) {
				return i
			}
		}
		return -1
	}
	u1, u2 := unitOf(pair[0]), unitOf(pair[1])
	if u1 < 0 || u2 < 0 || u1 == u2 {
		return false
	}

	// Dependence graph over units: any dependence between statements in
	// different units whose common nest includes l constrains order; a
	// backward (textually) dependence edge creates a cycle with the
	// forward program order, placing both units in one SCC.
	n := len(units)
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	stmtUnit := map[int]int{}
	for i, u := range units {
		ir.Walk([]ir.Stmt{u}, func(s ir.Stmt, _ []*ir.Loop) bool {
			if a, ok := s.(*ir.Assign); ok {
				stmtUnit[a.ID] = i
			}
			return true
		})
	}
	expandable := expandableScalars(ctx, proc, l, stmtUnit)
	for _, d := range ctx.Deps[proc] {
		// Dependence endpoints must both be inside l.
		if !nestHasLoop(d.CommonNest, l) {
			continue
		}
		si, oki := stmtUnit[d.Src.ID]
		di, okj := stmtUnit[d.Dst.ID]
		if !oki || !okj || si == di {
			continue
		}
		// Carried anti/output dependences on expandable scalars are
		// satisfied by scalar expansion (performed below if the split
		// separates the scalar's def from a use), so they do not
		// constrain distribution.
		if len(d.SrcRef.Subs) == 0 && expandable[d.SrcRef.Name] && d.Kind != dep.Flow {
			continue
		}
		adj[si][di] = true
	}

	comp := sccs(adj)
	if comp[u1] == comp[u2] {
		return false
	}

	// Units in textual order already topologically order the SCC
	// condensation for forward edges; backward edges are inside SCCs.
	// Greedy fusion: sweep units in order, cut only where a marked pair
	// would otherwise share a group.  (Only the current pair is enforced
	// here; other pairs get their own splitLoop call.)
	groupOf := make([]int, n)
	g := 0
	firstUnit, secondUnit := u1, u2
	if order_of(units, pair[0]) > order_of(units, pair[1]) {
		firstUnit, secondUnit = u2, u1
	}
	for i := 0; i < n; i++ {
		groupOf[i] = g
		// Cut between i and i+1 when the first pair member's component
		// is complete and the second's has not started.
		if i+1 < n && compDone(comp, i, firstUnit) && !compStarted(comp, i, secondUnit) && groupOf[firstUnit] == g {
			g++
		}
	}
	if groupOf[firstUnit] == groupOf[secondUnit] {
		// The greedy cut failed (interleaved components); fall back to
		// maximal split between distinct components.
		g = 0
		groupOf[0] = 0
		for i := 1; i < n; i++ {
			if comp[i] != comp[i-1] {
				g++
			}
			groupOf[i] = g
		}
		if groupOf[firstUnit] == groupOf[secondUnit] {
			return false
		}
	}

	// Build replacement loops.
	var repl []ir.Stmt
	cur := -1
	var curLoop *ir.Loop
	for i, u := range units {
		if groupOf[i] != cur {
			cur = groupOf[i]
			curLoop = &ir.Loop{
				ID: ctx.Prog.NewStmtID(), Var: l.Var, Lo: l.Lo, Hi: l.Hi, Step: l.Step,
				Independent: l.Independent, New: l.New, Localize: l.Localize,
			}
			repl = append(repl, curLoop)
		}
		curLoop.Body = append(curLoop.Body, u)
	}
	if len(repl) < 2 {
		return false
	}

	// Scalar expansion: any expandable scalar whose value now flows
	// between the split loops must become a per-iteration array so each
	// new loop sees the right instance (the standard enabling transform
	// for distribution past scalar temporaries like fac1 in Figure 5.1).
	for name := range expandable {
		if scalarCrossesGroups(ctx, proc, name, stmtUnit, groupOf) {
			expandScalar(ctx, proc, l, name, repl)
			sel.notef("proc %s: scalar %s expanded across distributed loops of %s", proc.Name, name, l.Var)
		}
	}

	// Replace l in its parent body.
	for i, s := range *parent {
		if s == ir.Stmt(l) {
			nb := make([]ir.Stmt, 0, len(*parent)+len(repl)-1)
			nb = append(nb, (*parent)[:i]...)
			nb = append(nb, repl...)
			nb = append(nb, (*parent)[i+1:]...)
			*parent = nb
			sel.notef("proc %s: distributed loop %s into %d loops", proc.Name, l.Var, len(repl))
			return true
		}
	}
	return false
}

// expandableScalars finds scalars that are privatizable on loop l: every
// read inside l is preceded (textually, within the loop body — the mini
// language has no intra-loop control flow) by a write inside l.  Such
// scalars carry no value across iterations of l, so they can be expanded
// to arrays indexed by l's variable, dissolving their carried anti/output
// (and conservatively-reported carried flow) dependences.
func expandableScalars(ctx *Context, proc *ir.Procedure, l *ir.Loop, stmtUnit map[int]int) map[string]bool {
	firstWrite := map[string]int{}
	firstRead := map[string]int{}
	hasWrite := map[string]bool{}
	order := 0
	ir.Walk(l.Body, func(s ir.Stmt, _ []*ir.Loop) bool {
		a, ok := s.(*ir.Assign)
		if !ok {
			return true
		}
		order++
		for _, name := range ir.ScalarReads(a.RHS) {
			if _, seen := firstRead[name]; !seen {
				firstRead[name] = order
			}
		}
		if len(a.LHS.Subs) == 0 {
			if _, seen := firstWrite[a.LHS.Name]; !seen {
				firstWrite[a.LHS.Name] = order
			}
			hasWrite[a.LHS.Name] = true
		}
		return true
	})
	out := map[string]bool{}
	for name := range hasWrite {
		fr, read := firstRead[name]
		if !read || firstWrite[name] < fr {
			out[name] = true
		} else if read && firstWrite[name] == fr && !selfAccumulates(l, name) {
			// Written and read by the same statement: expandable only
			// when that statement does not read its own previous value
			// (a reduction carries a genuine recurrence).
			out[name] = true
		}
	}
	return out
}

// selfAccumulates reports whether some statement in l both writes the
// scalar and reads it (an accumulation like s = s + e).
func selfAccumulates(l *ir.Loop, name string) bool {
	found := false
	ir.Walk(l.Body, func(s ir.Stmt, _ []*ir.Loop) bool {
		a, ok := s.(*ir.Assign)
		if !ok || a.LHS.Name != name || len(a.LHS.Subs) != 0 {
			return true
		}
		for _, n := range ir.ScalarReads(a.RHS) {
			if n == name {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// scalarCrossesGroups reports whether any flow dependence on the scalar
// connects statements placed in different groups.
func scalarCrossesGroups(ctx *Context, proc *ir.Procedure, name string, stmtUnit map[int]int, groupOf []int) bool {
	for _, d := range ctx.Deps[proc] {
		if d.SrcRef.Name != name || len(d.SrcRef.Subs) != 0 || d.Kind != dep.Flow {
			continue
		}
		si, oki := stmtUnit[d.Src.ID]
		di, okj := stmtUnit[d.Dst.ID]
		if oki && okj && groupOf[si] != groupOf[di] {
			return true
		}
	}
	return false
}

// expandScalar rewrites every access to the scalar inside the split loops
// into an access to a fresh array indexed by the loop variable, and
// declares that array in the procedure.
func expandScalar(ctx *Context, proc *ir.Procedure, l *ir.Loop, name string, newLoops []ir.Stmt) {
	lo, hi := l.Lo, l.Hi
	if l.Step < 0 {
		lo, hi = hi, lo
	}
	xname := name + "__x"
	for proc.DeclOf(xname) != nil {
		xname += "x"
	}
	proc.Decls = append(proc.Decls, &ir.Decl{Name: xname, LB: []ir.AffExpr{lo}, UB: []ir.AffExpr{hi}})
	xref := func() *ir.ArrayRef { return ir.NewRef(xname, ir.SubVar(l.Var, 0)) }
	ir.Walk(newLoops, func(s ir.Stmt, _ []*ir.Loop) bool {
		a, ok := s.(*ir.Assign)
		if !ok {
			return true
		}
		if a.LHS.Name == name && len(a.LHS.Subs) == 0 {
			a.LHS = xref()
		}
		a.RHS = ir.RewriteExpr(a.RHS, func(e ir.Expr) ir.Expr {
			if sr, ok := e.(ir.ScalarRef); ok && sr.Name == name {
				return xref()
			}
			return e
		})
		return true
	})
}

func containsAssign(l *ir.Loop, a *ir.Assign) bool {
	found := false
	ir.Walk(l.Body, func(s ir.Stmt, _ []*ir.Loop) bool {
		if s == ir.Stmt(a) {
			found = true
			return false
		}
		return !found
	})
	return found
}

func order_of(units []ir.Stmt, a *ir.Assign) int {
	for i, u := range units {
		if u == ir.Stmt(a) {
			return i
		}
		if lu, ok := u.(*ir.Loop); ok && containsAssign(lu, a) {
			return i
		}
	}
	return -1
}

// compDone reports whether all units of unit's component appear at index
// ≤ i.
func compDone(comp []int, i, unit int) bool {
	c := comp[unit]
	for j := i + 1; j < len(comp); j++ {
		if comp[j] == c {
			return false
		}
	}
	// unit itself must already have appeared.
	return unit <= i
}

// compStarted reports whether any unit of unit's component appears at
// index ≤ i.
func compStarted(comp []int, i, unit int) bool {
	c := comp[unit]
	for j := 0; j <= i; j++ {
		if comp[j] == c {
			return true
		}
	}
	return false
}

// sccs computes strongly connected components (Tarjan), returning the
// component id per node.
func sccs(adj [][]bool) []int {
	n := len(adj)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	counter, nComp := 0, 0
	var strong func(v int)
	strong = func(v int) {
		index[v], low[v] = counter, counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for w := 0; w < n; w++ {
			if !adj[v][w] {
				continue
			}
			if index[w] < 0 {
				strong(w)
				low[v] = min(low[v], low[w])
			} else if onStack[w] {
				low[v] = min(low[v], index[w])
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = nComp
				if w == v {
					break
				}
			}
			nComp++
		}
	}
	for v := 0; v < n; v++ {
		if index[v] < 0 {
			strong(v)
		}
	}
	return comp
}
