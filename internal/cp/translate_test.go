package cp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dhpf/internal/hpf"
	"dhpf/internal/ir"
	"dhpf/internal/parser"
)

// TestQuickTranslateCPSemantics checks the §4.1 translation's defining
// property on randomized use/def subscript pairs: if the use statement's
// CP assigns its iteration j to processor set S, and the definition at
// iteration w produces the element the use at j consumes, then the
// translated CP must assign iteration w to (at least) S.
//
// Concretely, for 1-D subscripts with a shared template:
// use cv(a'·j + c') under ON_HOME lhs(s·j + f); def cv(a·w + c).
// Element equality a·w + c = a'·j + c' links w and j; the translated
// term must evaluate at w to the same owner lhs position as the original
// at j.
func TestQuickTranslateCPSemantics(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pm := func() (int, int) { // random ±1 coef and small offset
			c := 1
			if r.Intn(2) == 0 {
				c = -1
			}
			return c, r.Intn(7) - 3
		}
		ua, uc := pm() // use subscript a'·j + c'
		da, dc := pm() // def subscript a·w + c
		sa, sc := pm() // use CP term subscript s·j + f

		useLoop := &ir.Loop{ID: 1, Var: "j", Lo: ir.Num(0), Hi: ir.Num(19), Step: 1}
		defLoop := &ir.Loop{ID: 2, Var: "w", Lo: ir.Num(0), Hi: ir.Num(19), Step: 1}

		uref := ir.NewRef("cv", ir.Subscript{Var: "j", Coef: ua, Off: ir.Num(uc)})
		dref := ir.NewRef("cv", ir.Subscript{Var: "w", Coef: da, Off: ir.Num(dc)})
		useCP := &CP{}
		useCP.AddTerm(Term{Array: "lhs", Subs: []HomeSub{{Var: "j", Coef: sa, Off: ir.Num(sc)}}})

		tr := TranslateCP(useCP, uref, dref, []*ir.Loop{useLoop}, []*ir.Loop{defLoop})
		if len(tr.Terms) != 1 {
			return false
		}
		ts := tr.Terms[0].Subs[0]

		// For every def iteration w, find the matching use iteration j
		// (element equality) and compare owner positions.
		for w := -5; w <= 5; w++ {
			elem := da*w + dc
			// j with ua*j + uc == elem  ⇒  j = ua*(elem-uc)
			j := ua * (elem - uc)
			wantPos := sa*j + sc
			var gotPos int
			if ts.IsRange {
				return false // no vectorization expected here (mapped var)
			}
			if ts.Var == "" {
				gotPos = ts.Off.EvalOr(nil, 0)
			} else if ts.Var == "w" {
				gotPos = ts.Coef*w + ts.Off.EvalOr(nil, 0)
			} else {
				return false
			}
			if gotPos != wantPos {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTranslateVectorizesUnmapped: a use CP term whose subscript
// uses a use-local loop variable not linked by any dimension must be
// vectorized through that loop's range.
func TestQuickTranslateVectorizesUnmapped(t *testing.T) {
	prop := func(lo8, width8 uint8, off8 int8) bool {
		lo := int(lo8 % 16)
		hi := lo + int(width8%16)
		off := int(off8 % 8)
		kLoop := &ir.Loop{ID: 1, Var: "kk", Lo: ir.Num(lo), Hi: ir.Num(hi), Step: 1}
		defLoop := &ir.Loop{ID: 2, Var: "w", Lo: ir.Num(0), Hi: ir.Num(9), Step: 1}

		// Use cv(kk) (a scalar-style pairing that cannot map: def is a
		// scalar ref with no dims).
		uref := ir.NewRef("cv")
		dref := ir.NewRef("cv")
		useCP := &CP{}
		useCP.AddTerm(Term{Array: "lhs", Subs: []HomeSub{{Var: "kk", Coef: 1, Off: ir.Num(off)}}})

		tr := TranslateCP(useCP, uref, dref, []*ir.Loop{kLoop}, []*ir.Loop{defLoop})
		ts := tr.Terms[0].Subs[0]
		if !ts.IsRange {
			return false
		}
		gotLo := ts.Lo.EvalOr(nil, 0)
		gotHi := ts.Hi.EvalOr(nil, 0)
		return gotLo == lo+off && gotHi == hi+off
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickIterSetsPartitionOwnerComputes: for a random BLOCK layout and
// owner-computes CP, the per-rank iteration sets must exactly partition
// the loop's iteration space.
func TestQuickIterSetsPartitionOwnerComputes(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		np := 1 + r.Intn(6)
		n := np * (1 + r.Intn(10))
		src := `
program t
param N = ` + itoa(n) + `
param P = ` + itoa(np) + `
!hpf$ processors procs(P)
!hpf$ distribute a(BLOCK) onto procs
subroutine main()
  real a(0:N-1)
  do i = 1, N-2
    a(i) = 1.0
  enddo
end
`
		ctx := mustCtxQuick(src)
		if ctx == nil {
			return false
		}
		proc := ctx.Prog.Main()
		loop := proc.Body[0].(*ir.Loop)
		a := loop.Body[0].(*ir.Assign)
		c := OnHome(a.LHS)
		var total int64
		for rank := 0; rank < np; rank++ {
			s := c.IterSet([]*ir.Loop{loop}, ctx.Bind.Params, ctx.LocalOf(proc, rank))
			total += s.Card()
			// Every member iteration's element must be owned by rank.
			okAll := true
			s.Each(func(p []int) bool {
				if ctx.Bind.LayoutOf("a").OwnerOf([]int{p[0]}) != rank {
					okAll = false
					return false
				}
				return true
			})
			if !okAll {
				return false
			}
		}
		return total == int64(max(0, n-2))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	digits := ""
	for v > 0 {
		digits = string(rune('0'+v%10)) + digits
		v /= 10
	}
	return digits
}

func mustCtxQuick(src string) *Context {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil
	}
	b, err := hpf.Bind(prog, nil)
	if err != nil {
		return nil
	}
	ctx, err := NewContext(prog, b)
	if err != nil {
		return nil
	}
	return ctx
}
