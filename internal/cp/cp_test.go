package cp

import (
	"testing"

	"dhpf/internal/hpf"
	"dhpf/internal/ir"
	"dhpf/internal/iset"
	"dhpf/internal/parser"
)

// mustCtx parses a program and builds the analysis context.
func mustCtx(t *testing.T, src string) *Context {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := hpf.Bind(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(prog, b)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func mustSelect(t *testing.T, ctx *Context, opt Options) *Selection {
	t.Helper()
	sel, err := Select(ctx, opt)
	if err != nil {
		t.Fatal(err)
	}
	return sel
}

func TestCPBasics(t *testing.T) {
	c1 := OnHome(ir.NewRef("a", ir.SubVar("i", 0)))
	c2 := OnHome(ir.NewRef("a", ir.SubVar("i", 0)))
	c3 := OnHome(ir.NewRef("a", ir.SubVar("i", 1)))
	if !c1.Eq(c2) {
		t.Error("identical CPs not equal")
	}
	if c1.Eq(c3) {
		t.Error("different CPs equal")
	}
	u := c1.Union(c3)
	if len(u.Terms) != 2 {
		t.Fatalf("union terms = %d", len(u.Terms))
	}
	// Union with duplicate keeps one term.
	u2 := c1.Union(c2)
	if len(u2.Terms) != 1 {
		t.Fatalf("dup union terms = %d", len(u2.Terms))
	}
	var rep *CP
	if !rep.Replicated() {
		t.Error("nil CP should be replicated")
	}
	if got := c1.Union(rep); !got.Replicated() {
		t.Error("union with replicated should be replicated")
	}
}

func TestIterSetOwnerComputes(t *testing.T) {
	ctx := mustCtx(t, `
program t
param N = 16
!hpf$ processors procs(4)
!hpf$ distribute a(BLOCK) onto procs
subroutine main()
  real a(0:N-1)
  do i = 1, N-2
    a(i) = 1.0
  enddo
end
`)
	proc := ctx.Prog.Main()
	loop := proc.Body[0].(*ir.Loop)
	a := loop.Body[0].(*ir.Assign)
	c := OnHome(a.LHS)
	// Rank 0 owns a[0:3]; iterations 1..3 run there.
	is := c.IterSet([]*ir.Loop{loop}, ctx.Bind.Params, ctx.LocalOf(proc, 0))
	want := iset.FromBox(iset.Interval(1, 3))
	if !is.Eq(want) {
		t.Fatalf("rank0 iters = %v, want %v", is, want)
	}
	// Rank 3 owns a[12:15]; iterations 12..14.
	is3 := c.IterSet([]*ir.Loop{loop}, ctx.Bind.Params, ctx.LocalOf(proc, 3))
	if !is3.Eq(iset.FromBox(iset.Interval(12, 14))) {
		t.Fatalf("rank3 iters = %v", is3)
	}
	// Union over all ranks covers the loop exactly once.
	total := iset.EmptySet(1)
	var card int64
	for r := 0; r < 4; r++ {
		s := c.IterSet([]*ir.Loop{loop}, ctx.Bind.Params, ctx.LocalOf(proc, r))
		card += s.Card()
		total = total.Union(s)
	}
	if card != 14 || total.Card() != 14 {
		t.Fatalf("iteration partition broken: card=%d union=%d", card, total.Card())
	}
}

func TestIterSetShiftedAndReversed(t *testing.T) {
	ctx := mustCtx(t, `
program t
param N = 16
!hpf$ processors procs(4)
!hpf$ distribute a(BLOCK) onto procs
subroutine main()
  real a(0:N-1)
  do i = 1, N-2
    a(i) = 1.0
  enddo
end
`)
	proc := ctx.Prog.Main()
	loop := proc.Body[0].(*ir.Loop)
	// ON_HOME a(i+1): rank 0 owns a[0:3] ⇒ i+1 ∈ [0,3] ⇒ i ∈ [1,2] (∩ loop).
	c := OnHome(ir.NewRef("a", ir.SubVar("i", 1)))
	is := c.IterSet([]*ir.Loop{loop}, ctx.Bind.Params, ctx.LocalOf(proc, 0))
	if !is.Eq(iset.FromBox(iset.Interval(1, 2))) {
		t.Fatalf("shifted iters = %v", is)
	}
	// ON_HOME a(-i+15): rank 0 ⇒ 15-i ∈ [0,3] ⇒ i ∈ [12,14].
	cr := OnHome(ir.NewRef("a", ir.Subscript{Var: "i", Coef: -1, Off: ir.Num(15)}))
	isr := cr.IterSet([]*ir.Loop{loop}, ctx.Bind.Params, ctx.LocalOf(proc, 0))
	if !isr.Eq(iset.FromBox(iset.Interval(12, 14))) {
		t.Fatalf("reversed iters = %v", isr)
	}
}

func TestIterSetRangeTerm(t *testing.T) {
	ctx := mustCtx(t, `
program t
param N = 16
!hpf$ processors procs(4)
!hpf$ distribute a(BLOCK) onto procs
subroutine main()
  real a(0:N-1)
  do i = 0, N-1
    a(i) = 1.0
  enddo
end
`)
	proc := ctx.Prog.Main()
	loop := proc.Body[0].(*ir.Loop)
	// Term a([2:5]) — vectorized: ranks intersecting [2:5] run the whole
	// loop; others run nothing.
	c := &CP{}
	c.AddTerm(Term{Array: "a", Subs: []HomeSub{RangeSub(ir.Num(2), ir.Num(5))}})
	full := iset.FromBox(iset.Interval(0, 15))
	if got := c.IterSet([]*ir.Loop{loop}, ctx.Bind.Params, ctx.LocalOf(proc, 0)); !got.Eq(full) {
		t.Fatalf("rank0 (owns 0:3, hits [2:5]) iters = %v", got)
	}
	if got := c.IterSet([]*ir.Loop{loop}, ctx.Bind.Params, ctx.LocalOf(proc, 1)); !got.Eq(full) {
		t.Fatalf("rank1 (owns 4:7, hits) iters = %v", got)
	}
	if got := c.IterSet([]*ir.Loop{loop}, ctx.Bind.Params, ctx.LocalOf(proc, 3)); !got.IsEmpty() {
		t.Fatalf("rank3 (owns 12:15, misses) iters = %v", got)
	}
}

func TestRefDataBoxAndSet(t *testing.T) {
	iter := iset.NewBox([]int{1, 2}, []int{5, 9})
	ref := ir.NewRef("a", ir.SubVar("j", 1), ir.SubVar("i", -1))
	// nest vars (i,j): dim0 uses j+1 → [3:10]; dim1 uses i-1 → [0:4].
	box := RefDataBox(ref, []string{"i", "j"}, iter, map[string]int{})
	if !box.Eq(iset.NewBox([]int{3, 0}, []int{10, 4})) {
		t.Fatalf("data box = %v", box)
	}
	// Constant subscripts and empty iteration boxes.
	empty := iset.NewBox([]int{2, 2}, []int{1, 1})
	if !RefDataBox(ref, []string{"i", "j"}, empty, map[string]int{}).Empty() {
		t.Error("empty iter box gave non-empty data")
	}
}

// --- local selection (§2) ---------------------------------------------------

func TestSelectionPrefersOwnerComputesForStencil(t *testing.T) {
	ctx := mustCtx(t, `
program t
param N = 64
!hpf$ processors procs(4)
!hpf$ template tm(N, N)
!hpf$ align a with tm(d0, d1)
!hpf$ align b with tm(d0, d1)
!hpf$ distribute tm(*, BLOCK) onto procs
subroutine main()
  real a(0:N-1, 0:N-1)
  real b(0:N-1, 0:N-1)
  do j = 1, N-2
    do i = 1, N-2
      b(i,j) = a(i,j-1) + a(i,j+1)
    enddo
  enddo
end
`)
	sel := mustSelect(t, ctx, DefaultOptions())
	loop := ctx.Prog.Main().Body[0].(*ir.Loop)
	a := loop.Body[0].(*ir.Loop).Body[0].(*ir.Assign)
	got := sel.CPOf(a.ID)
	want := OnHome(a.LHS)
	if !got.Eq(want) {
		t.Fatalf("stencil CP = %v, want %v", got, want)
	}
}

func TestSelectionFollowsReadsForScalarWrites(t *testing.T) {
	// Scalar LHS, distributed RHS: the statement should execute where
	// the data lives, not everywhere.
	ctx := mustCtx(t, `
program t
param N = 64
!hpf$ processors procs(4)
!hpf$ distribute a(BLOCK) onto procs
subroutine main()
  real a(0:N-1)
  real s
  do i = 1, N-2
    s = a(i) * 2.0
    a(i) = s + 1.0
  enddo
end
`)
	sel := mustSelect(t, ctx, DefaultOptions())
	loop := ctx.Prog.Main().Body[0].(*ir.Loop)
	a := loop.Body[0].(*ir.Assign)
	got := sel.CPOf(a.ID)
	if got.Replicated() {
		t.Fatal("CP replicated; should be ON_HOME a(i)")
	}
	if got.Terms[0].Array != "a" {
		t.Fatalf("CP = %v", got)
	}
}

func TestUndistributedArrayWriteReplicates(t *testing.T) {
	// Writes to an undistributed (replicated) array must execute on
	// every rank to keep the copies consistent.
	ctx := mustCtx(t, `
program t
param N = 64
!hpf$ processors procs(4)
!hpf$ distribute a(BLOCK) onto procs
subroutine main()
  real a(0:N-1)
  real w(0:N-1)
  do i = 1, N-2
    w(i) = a(i) * 2.0
  enddo
end
`)
	sel := mustSelect(t, ctx, DefaultOptions())
	loop := ctx.Prog.Main().Body[0].(*ir.Loop)
	a := loop.Body[0].(*ir.Assign)
	if !sel.CPOf(a.ID).Replicated() {
		t.Fatalf("CP = %v, want replicated", sel.CPOf(a.ID))
	}
}

// --- §4.1: NEW propagation (paper Figure 4.1, subroutine lhsy of SP) --------

const lhsySrc = `
program sp_lhsy
param N = 64
!hpf$ processors procs(4)
!hpf$ template tm(N, N)
!hpf$ align lhs with tm(d0, d1)
!hpf$ distribute tm(*, BLOCK) onto procs

subroutine main()
  real lhs(0:N-1, 0:N-1)
  real cv(0:N-1)
  real rhoq(0:N-1)
  !hpf$ independent, new(cv, rhoq)
  do i = 1, N-2
    do j = 0, N-1
      cv(j) = 1.5
      rhoq(j) = 2.5
    enddo
    do j = 1, N-2
      lhs(i,j) = cv(j-1) + rhoq(j) + cv(j+1)
    enddo
  enddo
end
`

func TestNewPropagationLhsy(t *testing.T) {
	ctx := mustCtx(t, lhsySrc)
	sel := mustSelect(t, ctx, DefaultOptions())
	iLoop := ctx.Prog.Main().Body[0].(*ir.Loop)
	defLoop := iLoop.Body[0].(*ir.Loop)
	cvDef := defLoop.Body[0].(*ir.Assign)
	rhoqDef := defLoop.Body[1].(*ir.Assign)
	useLoop := iLoop.Body[1].(*ir.Loop)
	use := useLoop.Body[0].(*ir.Assign)

	// The use keeps owner-computes.
	if !sel.CPOf(use.ID).Eq(OnHome(use.LHS)) {
		t.Fatalf("use CP = %v", sel.CPOf(use.ID))
	}
	// cv is read at j-1 and j+1 ⇒ def CP = lhs(i,j+1) ∪ lhs(i,j-1).
	cvCP := sel.CPOf(cvDef.ID)
	wantCv := OnHome(
		ir.NewRef("lhs", ir.SubVar("i", 0), ir.SubVar("j", 1)),
		ir.NewRef("lhs", ir.SubVar("i", 0), ir.SubVar("j", -1)),
	)
	if !cvCP.Eq(wantCv) {
		t.Fatalf("cv def CP = %v, want %v", cvCP, wantCv)
	}
	// rhoq is read only at j ⇒ def CP = lhs(i,j).
	rhoqCP := sel.CPOf(rhoqDef.ID)
	wantRhoq := OnHome(ir.NewRef("lhs", ir.SubVar("i", 0), ir.SubVar("j", 0)))
	if !rhoqCP.Eq(wantRhoq) {
		t.Fatalf("rhoq def CP = %v, want %v", rhoqCP, wantRhoq)
	}
}

func TestNewPropagationEliminatesInnerComm(t *testing.T) {
	// The whole point of §4.1: with the propagated CP, every processor
	// computes exactly the cv elements it uses — the non-local read set
	// of cv in the use loop must be empty on every rank.
	ctx := mustCtx(t, lhsySrc)
	sel := mustSelect(t, ctx, DefaultOptions())
	proc := ctx.Prog.Main()
	iLoop := proc.Body[0].(*ir.Loop)
	defLoop := iLoop.Body[0].(*ir.Loop)
	cvDef := defLoop.Body[0].(*ir.Assign)
	useLoop := iLoop.Body[1].(*ir.Loop)
	use := useLoop.Body[0].(*ir.Assign)

	defNest := []*ir.Loop{iLoop, defLoop}
	useNest := []*ir.Loop{iLoop, useLoop}
	for r := 0; r < 4; r++ {
		localOf := ctx.LocalOf(proc, r)
		defIters := sel.CPOf(cvDef.ID).IterSet(defNest, ctx.Bind.Params, localOf)
		computed := RefDataSet(cvDef.LHS, ir.NestVars(defNest), defIters, ctx.Bind.Params)
		useIters := sel.CPOf(use.ID).IterSet(useNest, ctx.Bind.Params, localOf)
		for _, uref := range ir.Refs(use.RHS) {
			if uref.Name != "cv" {
				continue
			}
			needed := RefDataSet(uref, ir.NestVars(useNest), useIters, ctx.Bind.Params)
			if !needed.SubsetOf(computed) {
				t.Fatalf("rank %d: needs cv %v but computes only %v", r, needed, computed)
			}
		}
	}
}

func TestNewPropagationBoundaryReplication(t *testing.T) {
	// Boundary elements must be computed on BOTH neighbouring processors
	// (partial replication), interior elements on exactly one.
	ctx := mustCtx(t, lhsySrc)
	sel := mustSelect(t, ctx, DefaultOptions())
	proc := ctx.Prog.Main()
	iLoop := proc.Body[0].(*ir.Loop)
	defLoop := iLoop.Body[0].(*ir.Loop)
	cvDef := defLoop.Body[0].(*ir.Assign)
	defNest := []*ir.Loop{iLoop, defLoop}

	count := map[int]int{}
	for r := 0; r < 4; r++ {
		iters := sel.CPOf(cvDef.ID).IterSet(defNest, ctx.Bind.Params, ctx.LocalOf(proc, r))
		data := RefDataSet(cvDef.LHS, ir.NestVars(defNest), iters, ctx.Bind.Params)
		data.Each(func(p []int) bool {
			count[p[0]]++
			return true
		})
	}
	// lhs block boundary in j at 16: cv(15) and cv(16) straddle ranks 0/1
	// (used at j-1 and j+1 from both sides).
	if count[15] < 2 || count[16] < 2 {
		t.Fatalf("boundary cv elements not replicated: cv[15]=%d cv[16]=%d", count[15], count[16])
	}
	if count[8] != 1 {
		t.Fatalf("interior element computed %d times", count[8])
	}
}

func TestNewPropagationAblationModes(t *testing.T) {
	// Replicate mode: defs of privatizables become replicated.
	ctx := mustCtx(t, lhsySrc)
	opt := DefaultOptions()
	opt.NewProp = NewPropReplicate
	sel := mustSelect(t, ctx, opt)
	iLoop := ctx.Prog.Main().Body[0].(*ir.Loop)
	cvDef := iLoop.Body[0].(*ir.Loop).Body[0].(*ir.Assign)
	if !sel.CPOf(cvDef.ID).Replicated() {
		t.Fatalf("replicate mode CP = %v", sel.CPOf(cvDef.ID))
	}
	// Owner mode: owner-computes of cv(j) itself.
	ctx2 := mustCtx(t, lhsySrc)
	opt.NewProp = NewPropOwner
	sel2 := mustSelect(t, ctx2, opt)
	iLoop2 := ctx2.Prog.Main().Body[0].(*ir.Loop)
	cvDef2 := iLoop2.Body[0].(*ir.Loop).Body[0].(*ir.Assign)
	want := OnHome(cvDef2.LHS)
	if !sel2.CPOf(cvDef2.ID).Eq(want) {
		t.Fatalf("owner mode CP = %v", sel2.CPOf(cvDef2.ID))
	}
}

// --- §4.2: LOCALIZE (paper Figure 4.2, compute_rhs) --------------------------

const computeRhsSrc = `
program bt_rhs
param N = 64
!hpf$ processors procs(2, 2)
!hpf$ template tm(N, N, N)
!hpf$ align rhs with tm(d0, d1, d2)
!hpf$ align rho_i with tm(d0, d1, d2)
!hpf$ distribute tm(*, BLOCK, BLOCK) onto procs

subroutine main()
  real rhs(0:N-1, 0:N-1, 0:N-1)
  real rho_i(0:N-1, 0:N-1, 0:N-1)
  real u(0:N-1, 0:N-1, 0:N-1)
  !hpf$ independent, localize(rho_i)
  do onetrip = 1, 1
    do k = 0, N-1
      do j = 0, N-1
        do i = 0, N-1
          rho_i(i,j,k) = 1.0 / u(i,j,k)
        enddo
      enddo
    enddo
    do k = 1, N-2
      do j = 1, N-2
        do i = 1, N-2
          rhs(i,j,k) = rho_i(i+1,j,k) - rho_i(i-1,j,k) + rho_i(i,j+1,k) - rho_i(i,j-1,k)
        enddo
      enddo
    enddo
  enddo
end
`

func TestLocalizeComputeRhs(t *testing.T) {
	ctx := mustCtx(t, computeRhsSrc)
	sel := mustSelect(t, ctx, DefaultOptions())
	one := ctx.Prog.Main().Body[0].(*ir.Loop)
	defK := one.Body[0].(*ir.Loop)
	def := defK.Body[0].(*ir.Loop).Body[0].(*ir.Loop).Body[0].(*ir.Assign)
	cp := sel.CPOf(def.ID)
	if cp.Replicated() {
		t.Fatal("LOCALIZE def CP is replicated")
	}
	// Must contain the owner term and the four translated use terms.
	if len(cp.Terms) != 5 {
		t.Fatalf("LOCALIZE def CP has %d terms: %v", len(cp.Terms), cp)
	}
	hasOwner := false
	for _, term := range cp.Terms {
		if term.Array == "rho_i" {
			hasOwner = true
		}
	}
	if !hasOwner {
		t.Fatalf("LOCALIZE def CP lacks owner term: %v", cp)
	}
}

func TestLocalizeEliminatesBoundaryComm(t *testing.T) {
	ctx := mustCtx(t, computeRhsSrc)
	sel := mustSelect(t, ctx, DefaultOptions())
	proc := ctx.Prog.Main()
	one := proc.Body[0].(*ir.Loop)
	defK := one.Body[0].(*ir.Loop)
	def := defK.Body[0].(*ir.Loop).Body[0].(*ir.Loop).Body[0].(*ir.Assign)
	useK := one.Body[1].(*ir.Loop)
	use := useK.Body[0].(*ir.Loop).Body[0].(*ir.Loop).Body[0].(*ir.Assign)

	defNest := []*ir.Loop{one, defK, defK.Body[0].(*ir.Loop), defK.Body[0].(*ir.Loop).Body[0].(*ir.Loop)}
	useNest := []*ir.Loop{one, useK, useK.Body[0].(*ir.Loop), useK.Body[0].(*ir.Loop).Body[0].(*ir.Loop)}

	for r := 0; r < 4; r++ {
		localOf := ctx.LocalOf(proc, r)
		defIters := sel.CPOf(def.ID).IterSet(defNest, ctx.Bind.Params, localOf)
		computed := RefDataSet(def.LHS, ir.NestVars(defNest), defIters, ctx.Bind.Params)
		useIters := sel.CPOf(use.ID).IterSet(useNest, ctx.Bind.Params, localOf)
		for _, uref := range ir.Refs(use.RHS) {
			if uref.Name != "rho_i" {
				continue
			}
			needed := RefDataSet(uref, ir.NestVars(useNest), useIters, ctx.Bind.Params)
			if !needed.SubsetOf(computed) {
				t.Fatalf("rank %d: needs rho_i %v beyond computed %v (ref %v)", r, needed.Subtract(computed), computed, uref)
			}
		}
	}
}

func TestLocalizeOffFallsBackToOwner(t *testing.T) {
	ctx := mustCtx(t, computeRhsSrc)
	opt := DefaultOptions()
	opt.Localize = false
	sel := mustSelect(t, ctx, opt)
	one := ctx.Prog.Main().Body[0].(*ir.Loop)
	def := one.Body[0].(*ir.Loop).Body[0].(*ir.Loop).Body[0].(*ir.Loop).Body[0].(*ir.Assign)
	cp := sel.CPOf(def.ID)
	if len(cp.Terms) != 1 {
		t.Fatalf("without LOCALIZE expected single-term CP, got %v", cp)
	}
}
