package cp

import (
	"dhpf/internal/ir"
)

// entryCP computes the CP of a procedure's entry point (§6): when every
// assignment and call in the procedure carries the same *partition* —
// the same processor assignment for every iteration, compared through
// the distributed dimensions only, so e.g. ON_HOME r(m,i+1,jj,kk) and
// ON_HOME r(m,i+2,jj,kk) agree when i is not distributed — the first
// statement's CP, with subscripts over the procedure's internal loop
// variables vectorized to their loop ranges, is the entry CP.  Otherwise
// the procedure has no uniform entry CP (nil) and call sites fall back
// to replicated execution of the call.
func entryCP(ctx *Context, proc *ir.Procedure, sel *Selection) *CP {
	var uniform *CP
	var uniformKey string
	found := false
	bad := false
	ir.Walk(proc.Body, func(s ir.Stmt, _ []*ir.Loop) bool {
		if bad {
			return false
		}
		var c *CP
		switch st := s.(type) {
		case *ir.Assign:
			c = sel.CPOf(st.ID)
		case *ir.CallStmt:
			c = sel.CPOf(st.ID)
		default:
			return true
		}
		if !found {
			uniform = c
			uniformKey = cpKey(ctx, proc, c)
			found = true
			return true
		}
		if cpKey(ctx, proc, c) != uniformKey {
			bad = true
		}
		return true
	})
	if !found || bad || uniform.Replicated() {
		if !found {
			return &CP{}
		}
		if bad {
			return nil
		}
		return &CP{}
	}

	// Vectorize subscripts that use the procedure's internal loop
	// variables: they do not exist at call sites.
	loops := map[string]*ir.Loop{}
	ir.Walk(proc.Body, func(s ir.Stmt, _ []*ir.Loop) bool {
		if l, ok := s.(*ir.Loop); ok {
			if _, dup := loops[l.Var]; !dup {
				loops[l.Var] = l
			}
		}
		return true
	})
	out := &CP{}
	for _, t := range uniform.Terms {
		nt := Term{Array: t.Array, Subs: make([]HomeSub, len(t.Subs))}
		for k, s := range t.Subs {
			if !s.IsRange && s.Var != "" {
				if l, ok := loops[s.Var]; ok {
					lo, hi := l.Lo, l.Hi
					if l.Step < 0 {
						lo, hi = hi, lo
					}
					if s.Coef == 1 {
						nt.Subs[k] = RangeSub(lo.AddAff(s.Off), hi.AddAff(s.Off))
					} else {
						nt.Subs[k] = RangeSub(s.Off.Sub(hi), s.Off.Sub(lo))
					}
					continue
				}
			}
			nt.Subs[k] = s
		}
		out.AddTerm(nt)
	}
	return out
}

// TranslateEntryCP rewrites a callee's entry CP into the caller's terms
// at one call site: formal array names become the actual array names and
// formal scalar names appearing in subscript offsets become the actual
// expressions (a caller loop index, a parameter, or a constant).  Returns
// nil when some formal cannot be translated (e.g. an actual that is a
// general expression), in which case the caller replicates the call.
//
// This is the paper's "formal argument to actual name or value"
// translation.  The paper's companion translation through HPF templates
// is unnecessary here because directive-named arrays are program-global
// in the mini language (see Context.Overlay).
func TranslateEntryCP(ctx *Context, callee *ir.Procedure, entry *CP, call *ir.CallStmt) *CP {
	if entry == nil {
		return nil
	}
	if entry.Replicated() {
		return &CP{}
	}
	arrayActual := map[string]string{}
	scalarActual := map[string]ir.Expr{}
	for k, formal := range callee.Formals {
		if k >= len(call.Args) {
			return nil
		}
		switch arg := call.Args[k].(type) {
		case *ir.ArrayRef:
			if len(arg.Subs) == 0 {
				arrayActual[formal] = arg.Name
			}
		default:
			scalarActual[formal] = arg
		}
	}

	out := &CP{}
	for _, t := range entry.Terms {
		nt := Term{Array: t.Array}
		if actual, ok := arrayActual[t.Array]; ok {
			nt.Array = actual
		}
		for _, s := range t.Subs {
			ns, ok := translateFormalSub(s, scalarActual)
			if !ok {
				return nil
			}
			nt.Subs = append(nt.Subs, ns)
		}
		out.AddTerm(nt)
	}
	return out
}

// translateFormalSub substitutes formal scalar names inside one subscript.
func translateFormalSub(s HomeSub, scalarActual map[string]ir.Expr) (HomeSub, bool) {
	if s.IsRange {
		lo, ok1 := substAffFormals(s.Lo, scalarActual, nil)
		hi, ok2 := substAffFormals(s.Hi, scalarActual, nil)
		if !ok1 || !ok2 {
			return s, false
		}
		return RangeSub(lo, hi), true
	}
	// The subscript's Var can itself be a formal scalar? No: Var is a
	// loop variable by construction; formals appear in Off as symbols.
	var varOut *varRef
	off, ok := substAffFormals(s.Off, scalarActual, &varOut)
	if !ok {
		return s, false
	}
	ns := HomeSub{Var: s.Var, Coef: s.Coef, Off: off}
	if varOut != nil {
		if ns.Var != "" {
			return s, false // two loop variables in one subscript
		}
		ns.Var, ns.Coef = varOut.name, varOut.coef
	}
	return ns, true
}

type varRef struct {
	name string
	coef int
}

// substAffFormals replaces formal names in an affine expression with
// their actual values.  A formal bound to a caller loop index becomes a
// variable reference returned via varOut (only one allowed, coefficient
// ±1); formals bound to parameters or numeric constants merge into the
// expression.  Unmapped names pass through (program parameters).
func substAffFormals(a ir.AffExpr, scalarActual map[string]ir.Expr, varOut **varRef) (ir.AffExpr, bool) {
	out := ir.Num(a.Const)
	for _, t := range a.Terms {
		actual, ok := scalarActual[t.Name]
		if !ok {
			out = out.AddAff(ir.Sym(t.Name).Scale(t.Coef))
			continue
		}
		switch e := actual.(type) {
		case ir.IndexRef:
			if varOut == nil || *varOut != nil || (t.Coef != 1 && t.Coef != -1) {
				return out, false
			}
			*varOut = &varRef{name: e.Name, coef: t.Coef}
		case ir.ParamRef:
			out = out.AddAff(ir.Sym(e.Name).Scale(t.Coef))
		case ir.FloatConst:
			iv := int(e.Val)
			if float64(iv) != e.Val {
				return out, false
			}
			out = out.AddConst(t.Coef * iv)
		default:
			return out, false
		}
	}
	return out, true
}
