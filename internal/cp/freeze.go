package cp

import (
	"fmt"

	"dhpf/internal/ir"
)

// This file is the selection's freeze/thaw surface for the incremental
// pass scheduler: a Selection decomposes into independent per-procedure
// slices (SelectBase, the propagation phases and the per-procedure half
// of SelectInterproc are all strictly procedure-local, and §6's
// cross-procedure input — the callees' entry CPs — is covered by the
// scheduler's transitive environment fingerprint), so a procedure's
// completed selection state can be extracted after §6, stored, and
// installed into a fresh Selection on a later compile of identical
// procedure text.

// ProcNote is one frozen decision note: the intra-procedure ordering key
// (noteKey minus the bottom-up procedure index, which is reassigned at
// install time) plus the rendered text.
type ProcNote struct {
	Late, Entry, Top, Phase, Loop, Sub int
	Text                               string
}

// ProcSelection is the per-procedure slice of a Selection: the chosen
// CPs of the procedure's statements (keyed by statement ID), its entry
// CP, the §5 distribution-marked pairs (as statement-ID pairs) and the
// decision notes attributed to the procedure, in emission order.
type ProcSelection struct {
	CPs   map[int]*CP
	Entry *CP
	// HasEntry distinguishes a recorded nil entry CP (no uniform CP)
	// from state frozen before §6 ran at all.
	HasEntry bool
	Marked   [][2]int
	Notes    []ProcNote
}

// Clone returns a structurally independent copy of the CP.  Term and
// subscript slices are copied; the affine expressions inside are value
// types whose operations never mutate in place, so sharing their term
// slices is safe.
func (c *CP) Clone() *CP {
	if c == nil {
		return nil
	}
	out := &CP{Terms: make([]Term, len(c.Terms))}
	for i, t := range c.Terms {
		nt := Term{Array: t.Array, Subs: make([]HomeSub, len(t.Subs))}
		copy(nt.Subs, t.Subs)
		out.Terms[i] = nt
	}
	return out
}

// ExtractProc returns a deep copy of the procedure's selection slice.
// pi is the procedure's bottom-up call-graph index (its position in
// Context.Callees order), which attributes the decision notes.
func (s *Selection) ExtractProc(proc *ir.Procedure, pi int) *ProcSelection {
	out := &ProcSelection{CPs: map[int]*CP{}}
	ir.Walk(proc.Body, func(st ir.Stmt, _ []*ir.Loop) bool {
		if c, ok := s.CPs[st.StmtID()]; ok {
			out.CPs[st.StmtID()] = c.Clone()
		}
		return true
	})
	if entry, ok := s.Entry[proc.Name]; ok {
		out.Entry, out.HasEntry = entry.Clone(), true
	}
	for _, pair := range s.Marked[proc] {
		out.Marked = append(out.Marked, [2]int{pair[0].ID, pair[1].ID})
	}
	for _, r := range s.notes {
		if r.key.proc != pi {
			continue
		}
		out.Notes = append(out.Notes, ProcNote{
			Late: r.key.late, Entry: r.key.entry, Top: r.key.top,
			Phase: r.key.phase, Loop: r.key.loop, Sub: r.key.sub,
			Text: r.text,
		})
	}
	return out
}

// InstallProc merges an extracted slice into the selection, attributing
// its notes to bottom-up index pi.  The caller must already have
// relocated statement IDs (CP keys, marked pairs, IDs inside note text)
// onto the current program.  The report ordering comes out identical to
// a fresh selection: note keys carry the full intra-procedure position,
// ties keep their frozen emission order under Notes' stable sort, and
// distinct procedures never share a key.proc.
func (s *Selection) InstallProc(proc *ir.Procedure, pi int, ps *ProcSelection) error {
	marked := make([][2]*ir.Assign, 0, len(ps.Marked))
	if len(ps.Marked) > 0 {
		byID := map[int]*ir.Assign{}
		ir.Walk(proc.Body, func(st ir.Stmt, _ []*ir.Loop) bool {
			if a, ok := st.(*ir.Assign); ok {
				byID[a.ID] = a
			}
			return true
		})
		for _, pair := range ps.Marked {
			a, b := byID[pair[0]], byID[pair[1]]
			if a == nil || b == nil {
				return fmt.Errorf("cp: marked pair (stmt %d, stmt %d) not in procedure %s", pair[0], pair[1], proc.Name)
			}
			marked = append(marked, [2]*ir.Assign{a, b})
		}
	}
	for id, c := range ps.CPs {
		s.CPs[id] = c.Clone()
	}
	if ps.HasEntry {
		s.Entry[proc.Name] = ps.Entry.Clone()
	}
	if len(marked) > 0 {
		s.Marked[proc] = append(s.Marked[proc], marked...)
	}
	for _, n := range ps.Notes {
		s.notes = append(s.notes, noteRec{
			key: noteKey{
				late: n.Late, proc: pi, entry: n.Entry, top: n.Top,
				phase: n.Phase, loop: n.Loop, sub: n.Sub,
			},
			text: n.Text,
		})
		s.seq++
	}
	return nil
}
