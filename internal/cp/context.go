package cp

import (
	"fmt"

	"dhpf/internal/dep"
	"dhpf/internal/hpf"
	"dhpf/internal/ir"
	"dhpf/internal/iset"
)

// Context carries everything CP selection needs for one program: the
// bound layouts, per-procedure dependence information, layouts propagated
// onto procedure formals, and the entry CPs of already-processed callees
// (the bottom-up interprocedural state of §6).
type Context struct {
	Prog *ir.Program
	Bind *hpf.Binding

	// Overlay maps a procedure's formal array names to the layouts of the
	// actuals bound to them — the mini-language stand-in for the paper's
	// CP translation through HPF templates (our directive-named arrays
	// are program-global, so only formals need translation).
	Overlay map[*ir.Procedure]map[string]*hpf.Layout

	// Deps caches dependence analysis per procedure.
	Deps map[*ir.Procedure][]*dep.Dependence

	// EntryCPs holds, per processed procedure, the CP of its entry point
	// expressed over its formals with callee-loop subscripts vectorized,
	// or nil when the procedure has no uniform CP.
	EntryCPs map[string]*CP
}

// NewContext builds a context, running dependence analysis on every
// procedure and propagating formal layouts through call sites.
func NewContext(prog *ir.Program, bind *hpf.Binding) (*Context, error) {
	ctx, err := NewContextNoDeps(prog, bind)
	if err != nil {
		return nil, err
	}
	for _, proc := range prog.Procs {
		ctx.Deps[proc] = dep.Analyze(proc.Body)
	}
	return ctx, nil
}

// NewContextNoDeps builds a context with formal layouts propagated but
// ctx.Deps left empty.  The incremental compiler uses it to compute
// per-procedure fingerprints (which need the formal-layout overlays but
// not the dependence graphs) before deciding which procedures' dependence
// analyses it can reuse from the artifact store; it then fills Deps
// itself, per procedure, from the store or a fresh dep.Analyze.
func NewContextNoDeps(prog *ir.Program, bind *hpf.Binding) (*Context, error) {
	ctx := &Context{
		Prog:     prog,
		Bind:     bind,
		Overlay:  map[*ir.Procedure]map[string]*hpf.Layout{},
		Deps:     map[*ir.Procedure][]*dep.Dependence{},
		EntryCPs: map[string]*CP{},
	}
	for _, l := range bind.Layouts {
		for _, d := range l.Dims {
			if d.Kind == hpf.Cyclic {
				return nil, fmt.Errorf("cp: CYCLIC distribution of %q is not supported by the set-based analyses", l.Name)
			}
		}
	}
	if err := ctx.propagateFormalLayouts(); err != nil {
		return nil, err
	}
	return ctx, nil
}

// Layout resolves the layout of an array name inside a procedure:
// formal overlays first, then the global binding.  nil ⇒ replicated.
func (ctx *Context) Layout(proc *ir.Procedure, array string) *hpf.Layout {
	if ov := ctx.Overlay[proc]; ov != nil {
		if l, ok := ov[array]; ok {
			return l
		}
	}
	return ctx.Bind.LayoutOf(array)
}

// LocalOf builds the per-rank ownership callback for CP.IterSet.
func (ctx *Context) LocalOf(proc *ir.Procedure, rank int) func(string) (iset.Box, bool) {
	return func(array string) (iset.Box, bool) {
		l := ctx.Layout(proc, array)
		if l == nil {
			return iset.Box{}, false
		}
		return l.LocalBox(rank), true
	}
}

// Grid returns the (single) processor grid of the program.  The paper's
// codes use one PROCESSORS arrangement; we require the same.
func (ctx *Context) Grid() (*hpf.Grid, error) {
	if len(ctx.Bind.Grids) != 1 {
		return nil, fmt.Errorf("cp: expected exactly one PROCESSORS arrangement, found %d", len(ctx.Bind.Grids))
	}
	for _, g := range ctx.Bind.Grids {
		return g, nil
	}
	panic("unreachable")
}

// propagateFormalLayouts walks every call site and binds each whole-array
// actual's layout to the callee's formal.  Conflicting bindings from
// different call sites are rejected (the paper's compiler would clone).
func (ctx *Context) propagateFormalLayouts() error {
	// Iterate to a fixed point so chains main→a→b propagate.
	for pass := 0; pass < len(ctx.Prog.Procs)+1; pass++ {
		changed := false
		for _, caller := range ctx.Prog.Procs {
			var err error
			ir.Walk(caller.Body, func(s ir.Stmt, _ []*ir.Loop) bool {
				call, ok := s.(*ir.CallStmt)
				if !ok || err != nil {
					return true
				}
				callee := ctx.Prog.Proc(call.Callee)
				if callee == nil {
					err = fmt.Errorf("cp: call to undefined procedure %q", call.Callee)
					return false
				}
				if len(call.Args) != len(callee.Formals) {
					err = fmt.Errorf("cp: call to %q passes %d args, wants %d", call.Callee, len(call.Args), len(callee.Formals))
					return false
				}
				for k, arg := range call.Args {
					ref, ok := arg.(*ir.ArrayRef)
					if !ok || len(ref.Subs) != 0 {
						continue
					}
					l := ctx.Layout(caller, ref.Name)
					if l == nil {
						continue
					}
					formal := callee.Formals[k]
					ov := ctx.Overlay[callee]
					if ov == nil {
						ov = map[string]*hpf.Layout{}
						ctx.Overlay[callee] = ov
					}
					if have, ok := ov[formal]; ok {
						if have != l {
							err = fmt.Errorf("cp: formal %s of %q bound to conflicting layouts at different call sites", formal, call.Callee)
							return false
						}
						continue
					}
					ov[formal] = l
					changed = true
				}
				return true
			})
			if err != nil {
				return err
			}
		}
		if !changed {
			return nil
		}
	}
	return nil
}

// Callees returns procedures in bottom-up call-graph order (callees
// before callers).  It rejects recursion, which the mini language (like
// Fortran 77) does not support.
func (ctx *Context) Callees() ([]*ir.Procedure, error) {
	const (
		white = iota
		grey
		black
	)
	color := map[string]int{}
	var order []*ir.Procedure
	var visit func(p *ir.Procedure) error
	visit = func(p *ir.Procedure) error {
		switch color[p.Name] {
		case grey:
			return fmt.Errorf("cp: recursive call cycle through %q", p.Name)
		case black:
			return nil
		}
		color[p.Name] = grey
		var err error
		ir.Walk(p.Body, func(s ir.Stmt, _ []*ir.Loop) bool {
			if err != nil {
				return false
			}
			if call, ok := s.(*ir.CallStmt); ok {
				callee := ctx.Prog.Proc(call.Callee)
				if callee == nil {
					err = fmt.Errorf("cp: call to undefined procedure %q", call.Callee)
					return false
				}
				err = visit(callee)
			}
			return true
		})
		if err != nil {
			return err
		}
		color[p.Name] = black
		order = append(order, p)
		return nil
	}
	for _, p := range ctx.Prog.Procs {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}
