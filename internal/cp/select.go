package cp

import (
	"fmt"
	"sort"

	"dhpf/internal/hpf"
	"dhpf/internal/ir"
)

// NewPropMode selects how statements defining NEW (privatizable) arrays
// are partitioned — the three alternatives §4.1 weighs.
type NewPropMode int

const (
	// NewPropTranslate is the paper's technique: compute exactly the
	// elements each processor will use, by translating use CPs to defs.
	NewPropTranslate NewPropMode = iota
	// NewPropReplicate keeps a complete copy per processor (every
	// processor computes all elements) — the first rejected alternative.
	NewPropReplicate
	// NewPropOwner partitions the privatizable array and owner-computes
	// it, forcing boundary communication — the second rejected
	// alternative.
	NewPropOwner
)

// Options toggles the individual optimizations (for ablations).
type Options struct {
	NewProp   NewPropMode
	Localize  bool // §4.2 LOCALIZE partial replication
	LoopDist  bool // §5 grouping + selective distribution
	Interproc bool // §6 entry-CP translation at call sites
	MaxCombos int  // cap on exhaustive CP-combination search
}

// DefaultOptions enables everything the paper describes.
func DefaultOptions() Options {
	return Options{
		NewProp:   NewPropTranslate,
		Localize:  true,
		LoopDist:  true,
		Interproc: true,
		MaxCombos: 4096,
	}
}

// Selection is the result of CP selection for a whole program.
type Selection struct {
	// CPs maps statement IDs (assignments and calls) to their chosen CP.
	CPs map[int]*CP
	// Marked lists, per procedure, statement pairs that could not share a
	// CP choice and must be split into different loops (§5).
	Marked map[*ir.Procedure][][2]*ir.Assign
	// Entry holds each procedure's entry CP (nil if not uniform).
	Entry map[string]*CP

	notes []noteRec
	cur   noteKey
	seq   int
}

// NewSelection returns an empty selection ready for the phase functions
// (SelectBase, PropagateNewArrays, PropagateLocalize, SelectInterproc).
func NewSelection() *Selection {
	return &Selection{
		CPs:    map[int]*CP{},
		Marked: map[*ir.Procedure][][2]*ir.Assign{},
		Entry:  map[string]*CP{},
	}
}

// noteKey orders a decision note the way the interleaved selection of
// the pre-pass-pipeline compiler emitted it, so that running the phases
// as separate whole-program passes reproduces the identical report:
// procedures bottom-up, within a procedure its top-level statements in
// order (grouping notes, then call-translation notes, then propagation
// notes innermost-loop-first with NEW before LOCALIZE per level), the
// entry-CP note last, and loop-distribution notes after every selection
// note.
type noteKey struct {
	late  int // 1: post-selection (loop distribution) notes
	proc  int // bottom-up procedure index
	entry int // 1: the procedure's entry-CP note (after its other notes)
	top   int // top-level statement index within the procedure
	phase int // 0 grouping/search, 1 call translation, 2 propagation
	loop  int // innermost-first position of the propagated loop
	sub   int // 0 NEW, 1 LOCALIZE
}

type noteRec struct {
	key  noteKey
	text string
}

func (k noteKey) less(o noteKey) bool {
	if k.late != o.late {
		return k.late < o.late
	}
	if k.proc != o.proc {
		return k.proc < o.proc
	}
	if k.entry != o.entry {
		return k.entry < o.entry
	}
	if k.top != o.top {
		return k.top < o.top
	}
	if k.phase != o.phase {
		return k.phase < o.phase
	}
	if k.loop != o.loop {
		return k.loop < o.loop
	}
	return k.sub < o.sub
}

// Notes returns the human-readable decision log in report order.
func (s *Selection) Notes() []string {
	recs := make([]noteRec, len(s.notes))
	copy(recs, s.notes)
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].key.less(recs[j].key) })
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.text
	}
	return out
}

// NoteCount reports how many decision notes have been recorded so far
// (the pass manager diffs it around each pass).
func (s *Selection) NoteCount() int { return len(s.notes) }

// NotesSince returns the notes recorded after the first n, in the order
// they were emitted (not report order) — the decisions one pass made.
func (s *Selection) NotesSince(n int) []string {
	if n < 0 || n > len(s.notes) {
		return nil
	}
	out := make([]string, 0, len(s.notes)-n)
	for _, r := range s.notes[n:] {
		out = append(out, r.text)
	}
	return out
}

// CPOf returns the CP chosen for a statement (replicated if none).
func (s *Selection) CPOf(id int) *CP {
	if cp, ok := s.CPs[id]; ok {
		return cp
	}
	return &CP{}
}

func (s *Selection) notef(format string, args ...any) {
	s.seq++
	s.notes = append(s.notes, noteRec{key: s.cur, text: fmt.Sprintf(format, args...)})
}

// Select runs the complete CP selection: local selection with §5
// grouping, §4.1/§4.2 propagation, and §6 interprocedural entry-CP
// translation.  It is the all-in-one convenience the pass pipeline
// decomposes into SelectBase, PropagateNewArrays, PropagateLocalize and
// SelectInterproc.
func Select(ctx *Context, opt Options) (*Selection, error) {
	sel, err := SelectBase(ctx, opt)
	if err != nil {
		return nil, err
	}
	if err := PropagateNewArrays(ctx, sel, opt); err != nil {
		return nil, err
	}
	if opt.Localize {
		if err := PropagateLocalize(ctx, sel, opt); err != nil {
			return nil, err
		}
	}
	if err := SelectInterproc(ctx, sel, opt); err != nil {
		return nil, err
	}
	return sel, nil
}

// SelectBase runs the local CP selection of §2 and §5 for every
// procedure, bottom-up on the call graph: candidate enumeration,
// union-find grouping over loop-independent dependences (when
// opt.LoopDist), and the least-communication combination search.  It
// assigns CPs to assignments only; call statements are handled by
// SelectInterproc and privatizable overrides by the propagation phases.
func SelectBase(ctx *Context, opt Options) (*Selection, error) {
	sel := NewSelection()
	if err := SelectBaseInto(ctx, sel, opt, nil); err != nil {
		return nil, err
	}
	return sel, nil
}

// SelectBaseInto is SelectBase running into an existing selection,
// skipping procedures for which skip returns true — those had their
// completed per-procedure selection installed from a frozen artifact by
// the incremental scheduler (Selection.InstallProc), so re-selecting
// them would both waste the search and duplicate their decision notes.
// A nil skip selects every procedure.
func SelectBaseInto(ctx *Context, sel *Selection, opt Options, skip func(*ir.Procedure) bool) error {
	order, err := ctx.Callees()
	if err != nil {
		return err
	}
	for pi, proc := range order {
		if skip != nil && skip(proc) {
			continue
		}
		for ti, s := range proc.Body {
			sel.cur = noteKey{proc: pi, top: ti}
			switch st := s.(type) {
			case *ir.Assign:
				sel.CPs[st.ID] = defaultCP(ctx, proc, st)
			case *ir.Loop:
				if err := selectLoopBase(ctx, proc, st, sel, opt); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// PropagateNewArrays applies §4.1: for every loop carrying a NEW
// directive, innermost loops first, the CPs of the statements defining
// the privatizable are recomputed from the CPs of its uses.
func PropagateNewArrays(ctx *Context, sel *Selection, opt Options) error {
	return propagatePhase(ctx, sel, opt, false, nil)
}

// PropagateNewArraysPartial is PropagateNewArrays restricted to the
// procedures skip rejects (skipped ones carry thawed, already-propagated
// selections).
func PropagateNewArraysPartial(ctx *Context, sel *Selection, opt Options, skip func(*ir.Procedure) bool) error {
	return propagatePhase(ctx, sel, opt, false, skip)
}

// PropagateLocalize applies §4.2: LOCALIZE partial replication for
// distributed arrays, keeping the owner-computes term so the owner's
// copy stays current.
func PropagateLocalize(ctx *Context, sel *Selection, opt Options) error {
	return propagatePhase(ctx, sel, opt, true, nil)
}

// PropagateLocalizePartial is PropagateLocalize restricted to the
// procedures skip rejects.
func PropagateLocalizePartial(ctx *Context, sel *Selection, opt Options, skip func(*ir.Procedure) bool) error {
	return propagatePhase(ctx, sel, opt, true, skip)
}

func propagatePhase(ctx *Context, sel *Selection, opt Options, localize bool, skip func(*ir.Procedure) bool) error {
	order, err := ctx.Callees()
	if err != nil {
		return err
	}
	sub := 0
	if localize {
		sub = 1
	}
	for pi, proc := range order {
		if skip != nil && skip(proc) {
			continue
		}
		for ti, s := range proc.Body {
			top, ok := s.(*ir.Loop)
			if !ok {
				continue
			}
			var nestLoops []*ir.Loop
			collectLoops([]ir.Stmt{top}, &nestLoops)
			for i := len(nestLoops) - 1; i >= 0; i-- {
				l := nestLoops[i]
				vars := l.New
				if localize {
					vars = l.Localize
				}
				for _, v := range vars {
					sel.cur = noteKey{proc: pi, top: ti, phase: 2, loop: len(nestLoops) - 1 - i, sub: sub}
					if err := propagateNew(ctx, proc, l, v, sel, opt, localize); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// SelectInterproc applies §6 bottom-up on the call graph: every call
// statement receives the callee's entry CP translated through the
// formal→actual binding (replicated when opt.Interproc is off, the
// callee has no uniform entry CP, or translation fails), and then the
// procedure's own entry CP is computed from its now-complete statement
// CPs and recorded in sel.Entry and ctx.EntryCPs.  Must run after the
// propagation phases so entry CPs reflect the propagated selections.
func SelectInterproc(ctx *Context, sel *Selection, opt Options) error {
	return SelectInterprocPartial(ctx, sel, opt, nil)
}

// SelectInterprocPartial is SelectInterproc restricted to the procedures
// skip rejects.  A skipped procedure's entry CP was installed by the
// thaw (Selection.InstallProc); it is republished into ctx.EntryCPs here
// — at the procedure's bottom-up turn — so dirty callers later in the
// order translate against exactly what a cold run would have computed.
func SelectInterprocPartial(ctx *Context, sel *Selection, opt Options, skip func(*ir.Procedure) bool) error {
	order, err := ctx.Callees()
	if err != nil {
		return err
	}
	for pi, proc := range order {
		if skip != nil && skip(proc) {
			if entry, ok := sel.Entry[proc.Name]; ok {
				ctx.EntryCPs[proc.Name] = entry
				continue
			}
			// No thawed entry CP (the artifact predates §6 state for this
			// procedure); fall through and compute it like a dirty one.
		}
		for ti, s := range proc.Body {
			sel.cur = noteKey{proc: pi, top: ti, phase: 1}
			switch st := s.(type) {
			case *ir.CallStmt:
				sel.CPs[st.ID] = callCP(ctx, proc, st, sel, opt)
			case *ir.Loop:
				ir.Walk(st.Body, func(inner ir.Stmt, _ []*ir.Loop) bool {
					if call, ok := inner.(*ir.CallStmt); ok {
						sel.CPs[call.ID] = callCP(ctx, proc, call, sel, opt)
					}
					return true
				})
			}
		}
		sel.cur = noteKey{proc: pi, entry: 1}
		entry := entryCP(ctx, proc, sel)
		sel.Entry[proc.Name] = entry
		ctx.EntryCPs[proc.Name] = entry
		if entry != nil && !entry.Replicated() {
			sel.notef("proc %s: entry CP %s", proc.Name, entry)
		}
	}
	return nil
}

// callCP computes a call statement's CP from the callee's entry CP (§6),
// translated through the formal→actual binding; replicated when the
// callee has no uniform entry CP or translation fails.
func callCP(ctx *Context, proc *ir.Procedure, call *ir.CallStmt, sel *Selection, opt Options) *CP {
	if !opt.Interproc {
		return &CP{}
	}
	entry := ctx.EntryCPs[call.Callee]
	if entry == nil || entry.Replicated() {
		return &CP{}
	}
	callee := ctx.Prog.Proc(call.Callee)
	translated := TranslateEntryCP(ctx, callee, entry, call)
	if translated == nil {
		sel.notef("proc %s: call %s: entry CP %s not translatable; replicating", proc.Name, call.Callee, entry)
		return &CP{}
	}
	return translated
}

// selectLoopBase runs §5 grouping then least-cost combination search for
// one outermost loop nest.
func selectLoopBase(ctx *Context, proc *ir.Procedure, loop *ir.Loop, sel *Selection, opt Options) error {
	asn := ir.Assignments([]ir.Stmt{loop})

	// Candidate choice sets.
	idx := map[int]int{} // stmt ID → index in asn
	choices := make([][]*CP, len(asn))
	for i, a := range asn {
		idx[a.Assign.ID] = i
		choices[i] = candidates(ctx, proc, a.Assign)
	}

	// §5: union-find grouping over loop-independent dependences.
	parent := make([]int, len(asn))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	groupChoices := make([][]*CP, len(asn))
	copy(groupChoices, choices)

	if opt.LoopDist {
		for _, d := range ctx.Deps[proc] {
			if !d.LoopIndependent() || !nestHasLoop(d.CommonNest, loop) {
				continue
			}
			si, oki := idx[d.Src.ID]
			di, okj := idx[d.Dst.ID]
			if !oki || !okj {
				continue
			}
			ri, rj := find(si), find(di)
			if ri == rj {
				continue
			}
			// Statements with no distributed refs are CP-neutral: they
			// can join any group.
			common := intersectChoiceSets(ctx, proc, groupChoices[ri], groupChoices[rj])
			switch {
			case len(groupChoices[ri]) == 0:
				parent[ri] = rj
			case len(groupChoices[rj]) == 0:
				parent[rj] = ri
			case len(common) > 0:
				parent[rj] = ri
				groupChoices[ri] = common
			default:
				sel.Marked[proc] = append(sel.Marked[proc], [2]*ir.Assign{d.Src, d.Dst})
				sel.notef("proc %s loop %s: cannot localize dep %v -> %v; marked for distribution",
					proc.Name, loop.Var, d.SrcRef, d.DstRef)
			}
		}
	}

	// Collect final groups.
	groupOf := map[int][]int{} // root → member indices
	for i := range asn {
		r := find(i)
		groupOf[r] = append(groupOf[r], i)
	}
	roots := make([]int, 0, len(groupOf))
	for r := range groupOf {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	groups := make([]cpGroup, 0, len(roots))
	for _, r := range roots {
		groups = append(groups, cpGroup{members: groupOf[r], choices: groupChoices[r]})
	}
	// Search order is by first member, not by root (a group's root need
	// not be its smallest member).
	sort.Slice(groups, func(i, j int) bool { return groups[i].members[0] < groups[j].members[0] })

	// Combination search over group choices, minimizing estimated comm.
	assign := func(pick []int) map[int]*CP {
		cps := map[int]*CP{}
		for gi, g := range groups {
			var c *CP
			if len(g.choices) == 0 {
				c = &CP{}
			} else {
				c = g.choices[pick[gi]]
			}
			for _, mi := range g.members {
				cps[asn[mi].Assign.ID] = c
			}
		}
		return cps
	}

	nCombos := 1
	capped := false
	for _, g := range groups {
		n := max(len(g.choices), 1)
		if nCombos > opt.MaxCombos/n {
			capped = true
			break
		}
		nCombos *= n
	}

	pick := make([]int, len(groups))
	var best map[int]*CP
	if !capped && nCombos > 1 {
		bestCost := int64(-1)
		bestPick := make([]int, len(groups))
		for {
			cps := assign(pick)
			cost := ctx.CommCost(proc, loop, cps)
			if bestCost < 0 || cost < bestCost {
				bestCost = cost
				copy(bestPick, pick)
			}
			// Advance odometer.
			k := len(groups) - 1
			for k >= 0 {
				pick[k]++
				if pick[k] < max(len(groups[k].choices), 1) {
					break
				}
				pick[k] = 0
				k--
			}
			if k < 0 {
				break
			}
		}
		best = assign(bestPick)
	} else if capped {
		// Greedy: settle one group at a time against the current plan.
		for gi := range groups {
			bestCost := int64(-1)
			bestCi := 0
			for ci := 0; ci < max(len(groups[gi].choices), 1); ci++ {
				pick[gi] = ci
				cost := ctx.CommCost(proc, loop, assign(pick))
				if bestCost < 0 || cost < bestCost {
					bestCost = cost
					bestCi = ci
				}
			}
			pick[gi] = bestCi
		}
		best = assign(pick)
	} else {
		best = assign(pick)
	}
	for id, c := range best {
		sel.CPs[id] = c
	}
	return nil
}

// defaultCP is owner-computes of the LHS when distributed, else the
// first distributed RHS ref, else replicated.
func defaultCP(ctx *Context, proc *ir.Procedure, a *ir.Assign) *CP {
	for _, c := range candidates(ctx, proc, a) {
		return c
	}
	return &CP{}
}

// candidates enumerates the CP choices for an assignment: one ON_HOME
// term per *distinct data partition* among the statement's distributed
// references (references with identical partitions count once — §5).
// The LHS reference comes first so owner-computes is the tie-break.
//
// A statement writing an *undistributed array* gets no candidates
// (replicated execution): every processor holds a copy of such an array
// and the copies must stay consistent.  The exception — privatizable
// arrays whose values are consumed only where they were computed — is
// handled afterwards by NEW/LOCALIZE propagation (§4), which overrides
// the replicated CP with the translated partial one.
func candidates(ctx *Context, proc *ir.Procedure, a *ir.Assign) []*CP {
	if len(a.LHS.Subs) > 0 && ctx.Layout(proc, a.LHS.Name) == nil {
		return nil
	}
	var out []*CP
	seen := map[string]bool{}
	consider := func(r *ir.ArrayRef) {
		l := ctx.Layout(proc, r.Name)
		if l == nil || len(r.Subs) == 0 {
			return
		}
		key := partitionKey(ctx, l, r)
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, OnHome(r))
	}
	consider(a.LHS)
	for _, r := range ir.Refs(a.RHS) {
		consider(r)
	}
	return out
}

// partitionKey renders the partition-relevant part of a reference: which
// grid dimension each distributed array dimension maps to and the
// subscript used there.  Two references with equal keys assign every
// iteration to the same processor.
func partitionKey(ctx *Context, l *hpf.Layout, r *ir.ArrayRef) string {
	key := ""
	for d, dl := range l.Dims {
		if dl.Kind != hpf.Block {
			continue
		}
		s := r.Subs[d]
		off := s.Off.EvalOr(ctx.Bind.Params, 0)
		key += fmt.Sprintf("g%d:b%d:t%d:%s*%d+%d;", dl.GridDim, dl.BlockSz, dl.TplOff, s.Var, s.Coef, off)
	}
	return key
}

// termPartitionKey is partitionKey for an ON_HOME term (used when
// intersecting group choice sets).
func termPartitionKey(ctx *Context, proc *ir.Procedure, t Term) string {
	l := ctx.Layout(proc, t.Array)
	if l == nil {
		return "<replicated>"
	}
	key := ""
	for d, dl := range l.Dims {
		if dl.Kind != hpf.Block {
			continue
		}
		s := t.Subs[d]
		if s.IsRange {
			key += fmt.Sprintf("g%d:b%d:t%d:[%d:%d];", dl.GridDim, dl.BlockSz, dl.TplOff,
				s.Lo.EvalOr(ctx.Bind.Params, 0), s.Hi.EvalOr(ctx.Bind.Params, 0))
			continue
		}
		off := s.Off.EvalOr(ctx.Bind.Params, 0)
		key += fmt.Sprintf("g%d:b%d:t%d:%s*%d+%d;", dl.GridDim, dl.BlockSz, dl.TplOff, s.Var, s.Coef, off)
	}
	return key
}

// PartitionKey renders the partition-relevant content of a CP: two CPs
// with equal keys assign every iteration to the same processor.  The
// replicated CP yields "<replicated>".
func PartitionKey(ctx *Context, proc *ir.Procedure, c *CP) string {
	return cpKey(ctx, proc, c)
}

func cpKey(ctx *Context, proc *ir.Procedure, c *CP) string {
	if c.Replicated() {
		return "<replicated>"
	}
	key := ""
	for _, t := range c.Terms {
		key += termPartitionKey(ctx, proc, t) + "|"
	}
	return key
}

func collectLoops(body []ir.Stmt, out *[]*ir.Loop) {
	ir.Walk(body, func(s ir.Stmt, _ []*ir.Loop) bool {
		if l, ok := s.(*ir.Loop); ok {
			*out = append(*out, l)
		}
		return true
	})
}

func nestHasLoop(nest []*ir.Loop, l *ir.Loop) bool {
	for _, x := range nest {
		if x == l {
			return true
		}
	}
	return false
}

// intersectChoiceSets intersects two CP choice sets by partition key.
func intersectChoiceSets(ctx *Context, proc *ir.Procedure, a, b []*CP) []*CP {
	var out []*CP
	for _, ca := range a {
		ka := cpKey(ctx, proc, ca)
		for _, cb := range b {
			if ka == cpKey(ctx, proc, cb) {
				out = append(out, ca)
				break
			}
		}
	}
	return out
}

// cpGroup is a set of statements constrained to share one CP choice.
type cpGroup struct {
	members []int
	choices []*CP
}
