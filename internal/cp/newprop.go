package cp

import (
	"fmt"

	"dhpf/internal/ir"
)

// propagateNew implements §4.1 (NEW privatizable arrays) and §4.2
// (LOCALIZE partial replication).  For every assignment defining the
// variable v inside loop l, the definition's CP is recomputed from the
// CPs of the statements that *use* v inside l:
//
//  1. For each use reference, establish a 1-1 linear mapping from the
//     subscripts of the use to the subscripts of the definition (skipped
//     per-dimension when impossible).
//  2. Apply the inverse of this mapping to the subscripts of the use's
//     ON_HOME terms.
//  3. Vectorize any remaining untranslated subscripts through the loops
//     that surround the use but do not surround the definition.
//
// The definition receives the union of the CPs translated from every
// use.  With localize=true the definition's owner-computes term is also
// kept (LOCALIZE variables are distributed and stay live after the loop,
// so the owner must still hold the up-to-date value).
//
// The effect (the paper's Figure 4.1): each processor computes all and
// only the elements of the privatizable it will use, partially
// replicating boundary values onto both neighbours, so the inner loop
// needs no communication for v at all.
func propagateNew(ctx *Context, proc *ir.Procedure, l *ir.Loop, v string, sel *Selection, opt Options, localize bool) error {
	type siteT struct {
		stmt *ir.Assign
		ref  *ir.ArrayRef
		nest []*ir.Loop // nest inside l (l excluded), outermost first
	}
	var defs, uses []siteT
	ir.Walk(l.Body, func(s ir.Stmt, loops []*ir.Loop) bool {
		a, ok := s.(*ir.Assign)
		if !ok {
			return true
		}
		nest := make([]*ir.Loop, len(loops))
		copy(nest, loops)
		if a.LHS.Name == v {
			defs = append(defs, siteT{stmt: a, ref: a.LHS, nest: nest})
		}
		for _, r := range ir.Refs(a.RHS) {
			if r.Name == v {
				uses = append(uses, siteT{stmt: a, ref: r, nest: nest})
			}
		}
		for _, sn := range ir.ScalarReads(a.RHS) {
			if sn == v {
				uses = append(uses, siteT{stmt: a, ref: &ir.ArrayRef{Name: v}, nest: nest})
			}
		}
		return true
	})
	if len(defs) == 0 {
		return fmt.Errorf("cp: %s(%s) on loop %s: no definition inside the loop",
			directiveName(localize), v, l.Var)
	}

	switch opt.NewProp {
	case NewPropReplicate:
		if !localize {
			for _, d := range defs {
				sel.CPs[d.stmt.ID] = &CP{} // everyone computes everything
			}
			return nil
		}
	case NewPropOwner:
		if !localize {
			for _, d := range defs {
				sel.CPs[d.stmt.ID] = OnHome(d.stmt.LHS)
			}
			return nil
		}
	}

	for _, d := range defs {
		// Accumulate terms directly: an empty CP literal means
		// "replicated", which is the union's absorbing element, not its
		// identity — so we must not start the fold from it.
		out := &CP{}
		if localize {
			// Keep the owner-computes term: the owner's copy must stay
			// up to date since LOCALIZE values live past the loop.
			out.AddTerm(TermOf(d.stmt.LHS))
		}
		replicated := false
		for _, u := range uses {
			useCP := sel.CPOf(u.stmt.ID)
			if useCP.Replicated() {
				replicated = true
				break
			}
			tr := TranslateCP(useCP, u.ref, d.ref, u.nest, d.nest)
			if tr.Replicated() {
				replicated = true
				break
			}
			for _, tm := range tr.Terms {
				out.AddTerm(tm)
			}
		}
		if replicated || len(out.Terms) == 0 {
			sel.CPs[d.stmt.ID] = &CP{}
			continue
		}
		sel.CPs[d.stmt.ID] = out
		sel.notef("proc %s: %s(%s): def stmt %d gets %s",
			proc.Name, directiveName(localize), v, d.stmt.ID, out)
	}
	return nil
}

func directiveName(localize bool) string {
	if localize {
		return "LOCALIZE"
	}
	return "NEW"
}

// varSubst is the replacement for one use-site loop variable when
// translating a CP from a use to a definition.
type varSubst struct {
	// Affine replacement: Var' = Coef*DefVar + Off (DefVar == "" for a
	// pure offset).
	DefVar string
	Coef   int
	Off    ir.AffExpr
}

// TranslateCP translates useCP from the use site (reference uref in loop
// nest useNest) to the definition site (reference dref, nest defNest).
// Both nests exclude the loops common to the two sites and outside the
// NEW loop; they are the nests *inside* the NEW/LOCALIZE loop.
func TranslateCP(useCP *CP, uref, dref *ir.ArrayRef, useNest, defNest []*ir.Loop) *CP {
	common := ir.CommonPrefix(useNest, defNest)
	commonVars := map[string]bool{}
	for _, cl := range common {
		commonVars[cl.Var] = true
	}

	// Step 1: the 1-1 linear mapping from use subscripts to def
	// subscripts, per dimension.  For def dim k = a·w + c and use dim
	// k = a'·j + c', matching elements satisfy a·w + c = a'·j + c', so
	// j = (a·a')·w + a'·(c − c').
	subst := map[string]varSubst{}
	nd := min(len(uref.Subs), len(dref.Subs))
	for k := 0; k < nd; k++ {
		us, ds := uref.Subs[k], dref.Subs[k]
		if us.Var == "" || commonVars[us.Var] {
			continue // nothing to map, or already valid at the def site
		}
		if _, dup := subst[us.Var]; dup {
			continue // first mapping wins; extras are skipped (paper: "simply skipped")
		}
		if ds.Var == "" {
			// j = a'·(c − c')
			subst[us.Var] = varSubst{Coef: 0, Off: ds.Off.Sub(us.Off).Scale(us.Coef)}
			continue
		}
		subst[us.Var] = varSubst{
			DefVar: ds.Var,
			Coef:   ds.Coef * us.Coef,
			Off:    ds.Off.Sub(us.Off).Scale(us.Coef),
		}
	}

	// Loops that surround the use but not the definition: vectorization
	// ranges for any use variables the mapping did not translate.
	useOnly := map[string]*ir.Loop{}
	for _, ul := range useNest[len(common):] {
		useOnly[ul.Var] = ul
	}

	out := &CP{}
	for _, t := range useCP.Terms {
		nt := Term{Array: t.Array, Subs: make([]HomeSub, len(t.Subs))}
		for si, s := range t.Subs {
			nt.Subs[si] = translateSub(s, subst, useOnly)
		}
		out.AddTerm(nt)
	}
	return out
}

// translateSub rewrites one ON_HOME subscript under the variable
// substitution, vectorizing any remaining use-only loop variables.
func translateSub(s HomeSub, subst map[string]varSubst, useOnly map[string]*ir.Loop) HomeSub {
	if s.IsRange || s.Var == "" {
		return s
	}
	if rep, ok := subst[s.Var]; ok {
		// s = Coef·j + Off with j = rep.Coef·w + rep.Off
		ns := HomeSub{
			Var:  rep.DefVar,
			Coef: s.Coef * rep.Coef,
			Off:  s.Off.AddAff(rep.Off.Scale(s.Coef)),
		}
		if rep.DefVar == "" || ns.Coef == 0 {
			ns.Var, ns.Coef = "", 0
		}
		return ns
	}
	if ul, ok := useOnly[s.Var]; ok {
		// Vectorize: j ranges over [lo:hi] (normalized), so Coef·j+Off
		// ranges over the corresponding interval.
		lo, hi := ul.Lo, ul.Hi
		if ul.Step < 0 {
			lo, hi = hi, lo
		}
		if s.Coef == 1 {
			return RangeSub(lo.AddAff(s.Off), hi.AddAff(s.Off))
		}
		return RangeSub(s.Off.Sub(hi), s.Off.Sub(lo))
	}
	// Variable valid at the definition site (common loop or parameter).
	return s
}
