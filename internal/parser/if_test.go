package parser

import (
	"strings"
	"testing"

	"dhpf/internal/ir"
)

func TestParseIfThenElse(t *testing.T) {
	src := `
program t
param N = 16
subroutine main()
  real a(0:N-1)
  do i = 0, N-1
    if (i == 0) then
      a(i) = 1.0
    else
      a(i) = 2.0
    endif
  enddo
end
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	l := prog.Main().Body[0].(*ir.Loop)
	st, ok := l.Body[0].(*ir.IfStmt)
	if !ok {
		t.Fatalf("expected IfStmt, got %T", l.Body[0])
	}
	if st.Cond.Op != "==" {
		t.Errorf("op = %q", st.Cond.Op)
	}
	if len(st.Then) != 1 || len(st.Else) != 1 {
		t.Errorf("branches: %d/%d", len(st.Then), len(st.Else))
	}
}

func TestParseIfOperators(t *testing.T) {
	for _, op := range []string{"<", ">", "<=", ">=", "==", "/="} {
		src := `
program t
param N = 16
subroutine main()
  real a(0:N-1)
  do i = 1, N-2
    if (i ` + op + ` N-2) then
      a(i) = 1.0
    endif
  enddo
end
`
		prog, err := Parse(src)
		if err != nil {
			t.Fatalf("op %s: %v", op, err)
		}
		st := prog.Main().Body[0].(*ir.Loop).Body[0].(*ir.IfStmt)
		if st.Cond.Op != op {
			t.Errorf("parsed op %q, want %q", st.Cond.Op, op)
		}
	}
}

func TestParseIfRejectsArrayCondition(t *testing.T) {
	src := `
program t
param N = 16
subroutine main()
  real a(0:N-1)
  do i = 0, N-1
    if (a(i) > 0) then
      a(i) = 1.0
    endif
  enddo
end
`
	_, err := Parse(src)
	if err == nil {
		t.Fatal("expected rejection of array-valued condition")
	}
	if !strings.Contains(err.Error(), "processor-uniform") {
		t.Errorf("error %q", err)
	}
}

func TestParseNestedIf(t *testing.T) {
	src := `
program t
param N = 16
subroutine main()
  real a(0:N-1)
  do i = 0, N-1
    if (i > 0) then
      if (i < N-1) then
        a(i) = 1.0
      endif
    endif
  enddo
end
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	outer := prog.Main().Body[0].(*ir.Loop).Body[0].(*ir.IfStmt)
	if _, ok := outer.Then[0].(*ir.IfStmt); !ok {
		t.Fatal("nested if not parsed")
	}
}
