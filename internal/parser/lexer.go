// Package parser implements the front end of the dhpf compiler: a lexer
// and recursive-descent parser for the mini-HPF surface language into the
// internal/ir representation.
//
// The language is a deliberately small Fortran-like notation:
//
//	program stencil
//	param N = 64
//	!hpf$ processors procs(2, 2)
//	!hpf$ template tmpl(N, N)
//	!hpf$ align a with tmpl(d0, d1)
//	!hpf$ distribute tmpl(BLOCK, BLOCK) onto procs
//
//	subroutine main()
//	  real a(0:N-1, 0:N-1)
//	  !hpf$ independent, new(cv)
//	  do j = 1, N-2
//	    do i = 1, N-2
//	      a(i,j) = 0.25 * (a(i-1,j) + a(i+1,j))
//	    enddo
//	  enddo
//	end
//
// Statements are line-oriented; `!` begins a comment unless the line is a
// `!hpf$` directive.
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tEOF tokKind = iota
	tNewline
	tIdent
	tInt
	tFloat
	tPunct // single punctuation: ( ) , = + - * / :
	tDirective
)

type token struct {
	kind tokKind
	text string
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tEOF:
		return "end of input"
	case tNewline:
		return "end of line"
	case tDirective:
		return "directive " + t.text
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lexer tokenizes the whole input eagerly; mini-HPF files are small.
type lexer struct {
	src   string
	pos   int
	line  int
	col   int
	items []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1, col: 1}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		// Collapse consecutive newlines.
		if tok.kind == tNewline {
			if n := len(l.items); n > 0 && l.items[n-1].kind == tNewline {
				continue
			}
		}
		l.items = append(l.items, tok)
		if tok.kind == tEOF {
			return l.items, nil
		}
	}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) next() (token, error) {
	// Skip spaces and tabs (not newlines).
	for l.pos < len(l.src) {
		c := l.peekByte()
		if c == ' ' || c == '\t' || c == '\r' {
			l.advance()
			continue
		}
		break
	}
	if l.pos >= len(l.src) {
		return token{kind: tEOF, line: l.line, col: l.col}, nil
	}
	line, col := l.line, l.col
	c := l.peekByte()

	switch {
	case c == '\n':
		l.advance()
		return token{kind: tNewline, line: line, col: col}, nil

	case c == '!':
		// Directive or comment: read to end of line.
		start := l.pos
		for l.pos < len(l.src) && l.peekByte() != '\n' {
			l.advance()
		}
		text := l.src[start:l.pos]
		low := strings.ToLower(text)
		if strings.HasPrefix(low, "!hpf$") {
			return token{kind: tDirective, text: strings.TrimSpace(text[5:]), line: line, col: col}, nil
		}
		// Plain comment: produce the newline that follows (if any) on the
		// next call; comments vanish.
		return l.next()

	case isIdentStart(rune(c)):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(rune(l.peekByte())) {
			l.advance()
		}
		return token{kind: tIdent, text: l.src[start:l.pos], line: line, col: col}, nil

	case unicode.IsDigit(rune(c)):
		start := l.pos
		isFloat := false
		for l.pos < len(l.src) {
			c := l.peekByte()
			if unicode.IsDigit(rune(c)) {
				l.advance()
				continue
			}
			if c == '.' && !isFloat {
				// Disambiguate "1.5" from "1:" ranges — '.' always means
				// float here since ranges use ':'.
				isFloat = true
				l.advance()
				continue
			}
			if (c == 'e' || c == 'E') && l.pos+1 < len(l.src) {
				nxt := l.src[l.pos+1]
				if unicode.IsDigit(rune(nxt)) || nxt == '+' || nxt == '-' {
					isFloat = true
					l.advance() // e
					l.advance() // sign or digit
					continue
				}
			}
			break
		}
		kind := tInt
		if isFloat {
			kind = tFloat
		}
		return token{kind: kind, text: l.src[start:l.pos], line: line, col: col}, nil

	case strings.IndexByte("(),=+-*/:<>", c) >= 0:
		l.advance()
		return token{kind: tPunct, text: string(c), line: line, col: col}, nil
	}
	return token{}, fmt.Errorf("parser: line %d:%d: unexpected character %q", line, col, c)
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isIdentPart(r rune) bool  { return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' }
