// Package parser implements the front end of the dhpf compiler: a lexer
// and recursive-descent parser for the mini-HPF surface language into the
// internal/ir representation.
//
// The language is a deliberately small Fortran-like notation:
//
//	program stencil
//	param N = 64
//	!hpf$ processors procs(2, 2)
//	!hpf$ template tmpl(N, N)
//	!hpf$ align a with tmpl(d0, d1)
//	!hpf$ distribute tmpl(BLOCK, BLOCK) onto procs
//
//	subroutine main()
//	  real a(0:N-1, 0:N-1)
//	  !hpf$ independent, new(cv)
//	  do j = 1, N-2
//	    do i = 1, N-2
//	      a(i,j) = 0.25 * (a(i-1,j) + a(i+1,j))
//	    enddo
//	  enddo
//	end
//
// Statements are line-oriented; `!` begins a comment unless the line is a
// `!hpf$` directive.
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tEOF tokKind = iota
	tNewline
	tIdent
	tInt
	tFloat
	tPunct // single punctuation: ( ) , = + - * / :
	tDirective
)

type token struct {
	kind tokKind
	text string
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tEOF:
		return "end of input"
	case tNewline:
		return "end of line"
	case tDirective:
		return "directive " + t.text
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lexer tokenizes the whole input eagerly; mini-HPF files are small.
type lexer struct {
	src   string
	pos   int
	line  int
	col   int
	items []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1, col: 1, items: make([]token, 0, len(src)/3)}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		// Collapse consecutive newlines.
		if tok.kind == tNewline {
			if n := len(l.items); n > 0 && l.items[n-1].kind == tNewline {
				continue
			}
		}
		l.items = append(l.items, tok)
		if tok.kind == tEOF {
			return l.items, nil
		}
	}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) next() (token, error) {
	// Skip spaces and tabs (not newlines).
	for l.pos < len(l.src) {
		c := l.peekByte()
		if c == ' ' || c == '\t' || c == '\r' {
			l.advance()
			continue
		}
		break
	}
	if l.pos >= len(l.src) {
		return token{kind: tEOF, line: l.line, col: l.col}, nil
	}
	line, col := l.line, l.col
	c := l.peekByte()

	switch {
	case c == '\n':
		l.advance()
		return token{kind: tNewline, line: line, col: col}, nil

	case c == '!':
		// Directive or comment: read to end of line.
		start := l.pos
		for l.pos < len(l.src) && l.peekByte() != '\n' {
			l.advance()
		}
		text := l.src[start:l.pos]
		if len(text) >= 5 && strings.EqualFold(text[:5], "!hpf$") {
			return token{kind: tDirective, text: strings.TrimSpace(text[5:]), line: line, col: col}, nil
		}
		// Plain comment: produce the newline that follows (if any) on the
		// next call; comments vanish.
		return l.next()

	case isIdentStart(rune(c)):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(rune(l.peekByte())) {
			l.advance()
		}
		return token{kind: tIdent, text: l.src[start:l.pos], line: line, col: col}, nil

	case c >= '0' && c <= '9':
		start := l.pos
		isFloat := false
		for l.pos < len(l.src) {
			c := l.peekByte()
			if c >= '0' && c <= '9' {
				l.advance()
				continue
			}
			if c == '.' && !isFloat {
				// Disambiguate "1.5" from "1:" ranges — '.' always means
				// float here since ranges use ':'.
				isFloat = true
				l.advance()
				continue
			}
			if (c == 'e' || c == 'E') && l.pos+1 < len(l.src) {
				nxt := l.src[l.pos+1]
				if (nxt >= '0' && nxt <= '9') || nxt == '+' || nxt == '-' {
					isFloat = true
					l.advance() // e
					l.advance() // sign or digit
					continue
				}
			}
			break
		}
		kind := tInt
		if isFloat {
			kind = tFloat
		}
		return token{kind: kind, text: l.src[start:l.pos], line: line, col: col}, nil

	case strings.IndexByte("(),=+-*/:<>", c) >= 0:
		l.advance()
		// Slice the source rather than string(c): no allocation per token.
		return token{kind: tPunct, text: l.src[l.pos-1 : l.pos], line: line, col: col}, nil
	}
	return token{}, fmt.Errorf("parser: line %d:%d: unexpected character %q", line, col, c)
}

// Identifiers are ASCII in practice; fall back to unicode classes only for
// multi-byte runes so non-ASCII input still errors in the same place.
func isIdentStart(r rune) bool {
	return (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || (r > 127 && unicode.IsLetter(r))
}

func isIdentPart(r rune) bool {
	return (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') || r == '_' || (r > 127 && unicode.IsLetter(r))
}
