package parser

import (
	"fmt"
	"strconv"
	"strings"

	"dhpf/internal/ir"
)

// intrinsics the expression grammar recognizes as function calls.
var intrinsics = map[string]bool{
	"sqrt": true, "exp": true, "sin": true, "cos": true, "log": true,
	"min": true, "max": true, "abs": true, "mod": true, "pow": true,
}

// Parse parses mini-HPF source into an ir.Program.
func Parse(src string) (*ir.Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParse is Parse that panics on error; for embedded workload sources
// validated by tests.
func MustParse(src string) *ir.Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

type parser struct {
	toks []token
	pos  int
	prog *ir.Program
	proc *ir.Procedure
	// loop index variables currently in scope
	loopVars []string
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) at(k tokKind) bool {
	return p.cur().kind == k
}
func (p *parser) atPunct(s string) bool {
	return p.cur().kind == tPunct && p.cur().text == s
}
func (p *parser) atKw(kw string) bool {
	return p.cur().kind == tIdent && strings.EqualFold(p.cur().text, kw)
}

func (p *parser) next() token {
	t := p.cur()
	if t.kind != tEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("parser: line %d: %s", t.line, fmt.Sprintf(format, args...))
}

func (p *parser) expectPunct(s string) error {
	if !p.atPunct(s) {
		return p.errf("expected %q, found %s", s, p.cur())
	}
	p.next()
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if !p.at(tIdent) {
		return "", p.errf("expected identifier, found %s", p.cur())
	}
	return p.next().text, nil
}

func (p *parser) expectKw(kw string) error {
	if !p.atKw(kw) {
		return p.errf("expected %q, found %s", kw, p.cur())
	}
	p.next()
	return nil
}

func (p *parser) endOfLine() error {
	if p.at(tEOF) {
		return nil
	}
	if !p.at(tNewline) {
		return p.errf("unexpected %s at end of statement", p.cur())
	}
	p.next()
	return nil
}

func (p *parser) skipNewlines() {
	for p.at(tNewline) {
		p.next()
	}
}

// --- top level -------------------------------------------------------------

func (p *parser) parseProgram() (*ir.Program, error) {
	p.skipNewlines()
	if err := p.expectKw("program"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.endOfLine(); err != nil {
		return nil, err
	}
	p.prog = ir.NewProgram(name)

	for {
		p.skipNewlines()
		switch {
		case p.at(tEOF):
			return p.prog, nil
		case p.atKw("param"):
			if err := p.parseParam(); err != nil {
				return nil, err
			}
		case p.at(tDirective):
			if err := p.parseGlobalDirective(p.next().text); err != nil {
				return nil, err
			}
		case p.atKw("subroutine"):
			if err := p.parseSubroutine(); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("expected param, directive or subroutine, found %s", p.cur())
		}
	}
}

func (p *parser) parseParam() error {
	p.next() // param
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectPunct("="); err != nil {
		return err
	}
	neg := false
	if p.atPunct("-") {
		neg = true
		p.next()
	}
	if !p.at(tInt) {
		return p.errf("expected integer parameter value, found %s", p.cur())
	}
	v, _ := strconv.Atoi(p.next().text)
	if neg {
		v = -v
	}
	p.prog.Params[name] = v
	return p.endOfLine()
}

// --- directives ------------------------------------------------------------

// parseGlobalDirective handles processors/template/align/distribute.  The
// directive text was captured as one token; re-lex it.
func (p *parser) parseGlobalDirective(text string) error {
	toks, err := lex(text)
	if err != nil {
		return err
	}
	d := &parser{toks: toks, prog: p.prog}
	switch {
	case d.atKw("processors"):
		d.next()
		name, extents, err := d.parseNameExtents()
		if err != nil {
			return err
		}
		p.prog.Processors = append(p.prog.Processors, &ir.ProcessorsDecl{Name: name, Extents: extents})
	case d.atKw("template"):
		d.next()
		name, extents, err := d.parseNameExtents()
		if err != nil {
			return err
		}
		p.prog.Templates = append(p.prog.Templates, &ir.TemplateDecl{Name: name, Extents: extents})
	case d.atKw("align"):
		d.next()
		if err := d.parseAlign(); err != nil {
			return err
		}
	case d.atKw("distribute"):
		d.next()
		if err := d.parseDistribute(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("parser: unknown global directive %q", text)
	}
	return p.endOfLine()
}

func (p *parser) parseNameExtents() (string, []ir.AffExpr, error) {
	name, err := p.expectIdent()
	if err != nil {
		return "", nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return "", nil, err
	}
	var extents []ir.AffExpr
	for {
		e, err := p.parseAffParamExpr()
		if err != nil {
			return "", nil, err
		}
		extents = append(extents, e)
		if p.atPunct(",") {
			p.next()
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return "", nil, err
	}
	return name, extents, nil
}

func (p *parser) parseAlign() error {
	array, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectKw("with"); err != nil {
		return err
	}
	tmpl, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectPunct("("); err != nil {
		return err
	}
	var dims []ir.AlignDim
	for {
		if p.atPunct("*") {
			p.next()
			dims = append(dims, ir.AlignDim{TDim: -1})
		} else {
			id, err := p.expectIdent()
			if err != nil {
				return err
			}
			if !strings.HasPrefix(id, "d") {
				return fmt.Errorf("parser: align dim must be dK or *, got %q", id)
			}
			k, err := strconv.Atoi(id[1:])
			if err != nil {
				return fmt.Errorf("parser: bad align dim %q", id)
			}
			off := ir.Num(0)
			if p.atPunct("+") || p.atPunct("-") {
				sign := 1
				if p.next().text == "-" {
					sign = -1
				}
				e, err := p.parseAffParamExpr()
				if err != nil {
					return err
				}
				off = e.Scale(sign)
			}
			dims = append(dims, ir.AlignDim{TDim: k, Off: off})
		}
		if p.atPunct(",") {
			p.next()
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return err
	}
	p.prog.Aligns = append(p.prog.Aligns, &ir.AlignDecl{Array: array, Template: tmpl, Dims: dims})
	return nil
}

func (p *parser) parseDistribute() error {
	target, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectPunct("("); err != nil {
		return err
	}
	var specs []ir.DistSpec
	for {
		switch {
		case p.atPunct("*"):
			p.next()
			specs = append(specs, ir.DistSpec{Kind: ir.DistStar})
		case p.atKw("block"):
			p.next()
			spec := ir.DistSpec{Kind: ir.DistBlock}
			if p.atPunct("(") {
				p.next()
				e, err := p.parseAffParamExpr()
				if err != nil {
					return err
				}
				spec.Size, spec.Has = e, true
				if err := p.expectPunct(")"); err != nil {
					return err
				}
			}
			specs = append(specs, spec)
		case p.atKw("cyclic"):
			p.next()
			specs = append(specs, ir.DistSpec{Kind: ir.DistCyclic})
		default:
			return p.errf("expected BLOCK, CYCLIC or *")
		}
		if p.atPunct(",") {
			p.next()
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return err
	}
	if err := p.expectKw("onto"); err != nil {
		return err
	}
	onto, err := p.expectIdent()
	if err != nil {
		return err
	}
	p.prog.Distributes = append(p.prog.Distributes, &ir.DistributeDecl{Target: target, Onto: onto, Specs: specs})
	return nil
}

// loopDirective is a parsed "!hpf$ independent[, new(..)][, localize(..)]".
type loopDirective struct {
	independent bool
	newVars     []string
	localize    []string
}

func parseLoopDirective(text string) (*loopDirective, error) {
	toks, err := lex(text)
	if err != nil {
		return nil, err
	}
	d := &parser{toks: toks}
	out := &loopDirective{}
	if !d.atKw("independent") {
		return nil, fmt.Errorf("parser: unknown loop directive %q", text)
	}
	d.next()
	out.independent = true
	for d.atPunct(",") {
		d.next()
		switch {
		case d.atKw("new"), d.atKw("localize"):
			kw := strings.ToLower(d.next().text)
			if err := d.expectPunct("("); err != nil {
				return nil, err
			}
			var names []string
			for {
				n, err := d.expectIdent()
				if err != nil {
					return nil, err
				}
				names = append(names, n)
				if d.atPunct(",") {
					d.next()
					continue
				}
				break
			}
			if err := d.expectPunct(")"); err != nil {
				return nil, err
			}
			if kw == "new" {
				out.newVars = append(out.newVars, names...)
			} else {
				out.localize = append(out.localize, names...)
			}
		default:
			return nil, fmt.Errorf("parser: unknown clause in %q", text)
		}
	}
	return out, nil
}

// --- subroutines -----------------------------------------------------------

func (p *parser) parseSubroutine() error {
	p.next() // subroutine
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectPunct("("); err != nil {
		return err
	}
	var formals []string
	if !p.atPunct(")") {
		for {
			f, err := p.expectIdent()
			if err != nil {
				return err
			}
			formals = append(formals, f)
			if p.atPunct(",") {
				p.next()
				continue
			}
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return err
	}
	if err := p.endOfLine(); err != nil {
		return err
	}
	p.proc = &ir.Procedure{Name: name, Formals: formals}
	p.prog.Procs = append(p.prog.Procs, p.proc)
	p.loopVars = nil

	body, err := p.parseBody(func() bool { return p.atKw("end") })
	if err != nil {
		return err
	}
	p.proc.Body = body
	p.next() // end
	return p.endOfLine()
}

// parseBody parses statements until stop() holds at a statement boundary.
func (p *parser) parseBody(stop func() bool) ([]ir.Stmt, error) {
	var body []ir.Stmt
	var pending *loopDirective
	for {
		p.skipNewlines()
		if p.at(tEOF) {
			return nil, p.errf("unexpected end of input inside body")
		}
		if stop() {
			if pending != nil {
				return nil, p.errf("dangling !hpf$ independent directive")
			}
			return body, nil
		}
		switch {
		case p.at(tDirective):
			d, err := parseLoopDirective(p.next().text)
			if err != nil {
				return nil, err
			}
			pending = d
			if err := p.endOfLine(); err != nil {
				return nil, err
			}

		case p.atKw("real"):
			if pending != nil {
				return nil, p.errf("directive must precede a do loop")
			}
			if err := p.parseRealDecl(); err != nil {
				return nil, err
			}

		case p.atKw("do"):
			l, err := p.parseDo(pending)
			pending = nil
			if err != nil {
				return nil, err
			}
			body = append(body, l)

		case p.atKw("call"):
			if pending != nil {
				return nil, p.errf("directive must precede a do loop")
			}
			c, err := p.parseCall()
			if err != nil {
				return nil, err
			}
			body = append(body, c)

		case p.atKw("if"):
			if pending != nil {
				return nil, p.errf("directive must precede a do loop")
			}
			st, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			body = append(body, st)

		default:
			if pending != nil {
				return nil, p.errf("directive must precede a do loop")
			}
			a, err := p.parseAssign()
			if err != nil {
				return nil, err
			}
			body = append(body, a)
		}
	}
}

func (p *parser) parseRealDecl() error {
	p.next() // real
	for {
		name, err := p.expectIdent()
		if err != nil {
			return err
		}
		d := &ir.Decl{Name: name}
		for _, f := range p.proc.Formals {
			if f == name {
				d.Dummy = true
			}
		}
		if p.atPunct("(") {
			p.next()
			for {
				lb, err := p.parseAffParamExpr()
				if err != nil {
					return err
				}
				ub := lb
				if p.atPunct(":") {
					p.next()
					ub, err = p.parseAffParamExpr()
					if err != nil {
						return err
					}
				} else {
					// Fortran-style "real a(N)" means 1:N.
					ub = lb
					lb = ir.Num(1)
				}
				d.LB = append(d.LB, lb)
				d.UB = append(d.UB, ub)
				if p.atPunct(",") {
					p.next()
					continue
				}
				break
			}
			if err := p.expectPunct(")"); err != nil {
				return err
			}
		}
		p.proc.Decls = append(p.proc.Decls, d)
		if p.atPunct(",") {
			p.next()
			continue
		}
		break
	}
	return p.endOfLine()
}

func (p *parser) parseDo(dir *loopDirective) (*ir.Loop, error) {
	p.next() // do
	v, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("="); err != nil {
		return nil, err
	}
	lo, err := p.parseAffParamExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	hi, err := p.parseAffParamExpr()
	if err != nil {
		return nil, err
	}
	step := 1
	if p.atPunct(",") {
		p.next()
		neg := false
		if p.atPunct("-") {
			neg = true
			p.next()
		}
		if !p.at(tInt) {
			return nil, p.errf("expected loop step")
		}
		step, _ = strconv.Atoi(p.next().text)
		if neg {
			step = -step
		}
		if step != 1 && step != -1 {
			return nil, p.errf("loop step must be 1 or -1")
		}
	}
	if err := p.endOfLine(); err != nil {
		return nil, err
	}

	l := &ir.Loop{ID: p.prog.NewStmtID(), Var: v, Lo: lo, Hi: hi, Step: step}
	if dir != nil {
		l.Independent = dir.independent
		l.New = dir.newVars
		l.Localize = dir.localize
	}
	p.loopVars = append(p.loopVars, v)
	body, err := p.parseBody(func() bool { return p.atKw("enddo") })
	if err != nil {
		return nil, err
	}
	p.loopVars = p.loopVars[:len(p.loopVars)-1]
	l.Body = body
	p.next() // enddo
	if err := p.endOfLine(); err != nil {
		return nil, err
	}
	return l, nil
}

// parseIf parses "if (cond) then ... [else ...] endif".  Conditions are
// restricted to loop indices, parameters and constants so control flow
// is identical on every processor.
func (p *parser) parseIf() (*ir.IfStmt, error) {
	p.next() // if
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectKw("then"); err != nil {
		return nil, err
	}
	if err := p.endOfLine(); err != nil {
		return nil, err
	}
	st := &ir.IfStmt{ID: p.prog.NewStmtID(), Cond: cond}
	thenBody, err := p.parseBody(func() bool { return p.atKw("endif") || p.atKw("else") })
	if err != nil {
		return nil, err
	}
	st.Then = thenBody
	if p.atKw("else") {
		p.next()
		if err := p.endOfLine(); err != nil {
			return nil, err
		}
		elseBody, err := p.parseBody(func() bool { return p.atKw("endif") })
		if err != nil {
			return nil, err
		}
		st.Else = elseBody
	}
	p.next() // endif
	if err := p.endOfLine(); err != nil {
		return nil, err
	}
	return st, nil
}

// parseCond parses "expr RELOP expr" with RELOP ∈ {<, >, <=, >=, ==, /=}.
func (p *parser) parseCond() (ir.Cond, error) {
	var c ir.Cond
	l, err := p.parseExpr()
	if err != nil {
		return c, err
	}
	var op string
	switch {
	case p.atPunct("<"):
		p.next()
		op = "<"
		if p.atPunct("=") {
			p.next()
			op = "<="
		}
	case p.atPunct(">"):
		p.next()
		op = ">"
		if p.atPunct("=") {
			p.next()
			op = ">="
		}
	case p.atPunct("="):
		p.next()
		if err := p.expectPunct("="); err != nil {
			return c, err
		}
		op = "=="
	case p.atPunct("/"):
		p.next()
		if err := p.expectPunct("="); err != nil {
			return c, err
		}
		op = "/="
	default:
		return c, p.errf("expected a comparison operator, found %s", p.cur())
	}
	r, err := p.parseExpr()
	if err != nil {
		return c, err
	}
	for _, side := range []ir.Expr{l, r} {
		bad := false
		ir.WalkExpr(side, func(e ir.Expr) {
			switch e.(type) {
			case *ir.ArrayRef, ir.ScalarRef:
				bad = true
			}
		})
		if bad {
			return c, p.errf("if-conditions may use loop indices, parameters and constants only (processor-uniform control flow)")
		}
	}
	return ir.Cond{L: l, Op: op, R: r}, nil
}

func (p *parser) parseCall() (*ir.CallStmt, error) {
	p.next() // call
	callee, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var args []ir.Expr
	if !p.atPunct(")") {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, e)
			if p.atPunct(",") {
				p.next()
				continue
			}
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.endOfLine(); err != nil {
		return nil, err
	}
	return &ir.CallStmt{ID: p.prog.NewStmtID(), Callee: callee, Args: args}, nil
}

func (p *parser) parseAssign() (*ir.Assign, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	lhs := &ir.ArrayRef{Name: name}
	if p.atPunct("(") {
		subs, err := p.parseSubscripts()
		if err != nil {
			return nil, err
		}
		lhs.Subs = subs
	}
	if err := p.expectPunct("="); err != nil {
		return nil, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.endOfLine(); err != nil {
		return nil, err
	}
	return &ir.Assign{ID: p.prog.NewStmtID(), LHS: lhs, RHS: rhs}, nil
}

// --- expressions -----------------------------------------------------------

func (p *parser) parseExpr() (ir.Expr, error) { return p.parseAdd() }

func (p *parser) parseAdd() (ir.Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.atPunct("+") || p.atPunct("-") {
		op := p.next().text[0]
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &ir.Bin{Op: op, L: l, R: r}
	}
	return l, nil
}

// nextIsPunct reports whether the token after the current one is the
// given punctuation (one-token lookahead, used to keep "/" division
// distinct from the "/=" comparison).
func (p *parser) nextIsPunct(s string) bool {
	if p.pos+1 >= len(p.toks) {
		return false
	}
	t := p.toks[p.pos+1]
	return t.kind == tPunct && t.text == s
}

func (p *parser) parseMul() (ir.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.atPunct("*") || (p.atPunct("/") && !p.nextIsPunct("=")) {
		op := p.next().text[0]
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &ir.Bin{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (ir.Expr, error) {
	if p.atPunct("-") {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ir.Bin{Op: '-', L: ir.FloatConst{Val: 0}, R: x}, nil
	}
	if p.atPunct("+") {
		p.next()
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (ir.Expr, error) {
	switch {
	case p.at(tInt), p.at(tFloat):
		t := p.next()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("parser: line %d: bad number %q", t.line, t.text)
		}
		return ir.FloatConst{Val: v}, nil

	case p.atPunct("("):
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil

	case p.at(tIdent):
		name := p.next().text
		if p.atPunct("(") {
			if intrinsics[strings.ToLower(name)] {
				p.next()
				var args []ir.Expr
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.atPunct(",") {
						p.next()
						continue
					}
					break
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				return &ir.Intrinsic{Name: strings.ToLower(name), Args: args}, nil
			}
			subs, err := p.parseSubscripts()
			if err != nil {
				return nil, err
			}
			return &ir.ArrayRef{Name: name, Subs: subs}, nil
		}
		return p.resolveName(name), nil
	}
	return nil, p.errf("expected expression, found %s", p.cur())
}

// resolveName classifies a bare identifier: loop index, symbolic
// parameter, declared array (whole-array reference), or scalar.
func (p *parser) resolveName(name string) ir.Expr {
	for _, v := range p.loopVars {
		if v == name {
			return ir.IndexRef{Name: name}
		}
	}
	if _, ok := p.prog.Params[name]; ok {
		return ir.ParamRef{Name: name}
	}
	if p.proc != nil {
		if d := p.proc.DeclOf(name); d != nil && d.Rank() > 0 {
			return &ir.ArrayRef{Name: name}
		}
	}
	return ir.ScalarRef{Name: name}
}

// parseSubscripts parses "(aff, aff, ...)" where each subscript is affine
// in at most one in-scope loop variable with coefficient ±1.
func (p *parser) parseSubscripts() ([]ir.Subscript, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var subs []ir.Subscript
	for {
		s, err := p.parseSubscript()
		if err != nil {
			return nil, err
		}
		subs = append(subs, s)
		if p.atPunct(",") {
			p.next()
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return subs, nil
}

func (p *parser) isLoopVar(name string) bool {
	for _, v := range p.loopVars {
		if v == name {
			return true
		}
	}
	return false
}

// parseSubscript parses one affine subscript: a sum of terms over loop
// variables, parameters and integers.
func (p *parser) parseSubscript() (ir.Subscript, error) {
	sub := ir.Subscript{Off: ir.Num(0)}
	sign := 1
	first := true
	for {
		if p.atPunct("-") {
			sign = -sign
			p.next()
		} else if p.atPunct("+") {
			p.next()
		} else if !first {
			break
		}
		if err := p.parseSubTerm(&sub, sign); err != nil {
			return sub, err
		}
		sign = 1
		first = false
		if !(p.atPunct("+") || p.atPunct("-")) {
			break
		}
	}
	return sub, nil
}

func (p *parser) parseSubTerm(sub *ir.Subscript, sign int) error {
	switch {
	case p.at(tInt):
		c, _ := strconv.Atoi(p.next().text)
		if p.atPunct("*") {
			p.next()
			name, err := p.expectIdent()
			if err != nil {
				return err
			}
			return p.addSubTerm(sub, name, sign*c)
		}
		sub.Off = sub.Off.AddConst(sign * c)
		return nil
	case p.at(tIdent):
		name := p.next().text
		return p.addSubTerm(sub, name, sign)
	}
	return p.errf("expected affine subscript term, found %s", p.cur())
}

func (p *parser) addSubTerm(sub *ir.Subscript, name string, coef int) error {
	if p.isLoopVar(name) {
		if sub.Var != "" && sub.Var != name {
			return p.errf("subscript uses two loop variables (%s and %s)", sub.Var, name)
		}
		if sub.Var == name {
			coef += sub.Coef
		}
		if coef != 1 && coef != -1 {
			if coef == 0 {
				sub.Var = ""
				sub.Coef = 0
				return nil
			}
			return p.errf("loop variable %s has non-unit coefficient %d", name, coef)
		}
		sub.Var, sub.Coef = name, coef
		return nil
	}
	sub.Off = sub.Off.AddAff(ir.Sym(name).Scale(coef))
	return nil
}

// parseAffParamExpr parses an affine expression over parameters only
// (loop bounds, extents, align offsets).
func (p *parser) parseAffParamExpr() (ir.AffExpr, error) {
	out := ir.Num(0)
	sign := 1
	first := true
	for {
		if p.atPunct("-") {
			sign = -sign
			p.next()
		} else if p.atPunct("+") {
			p.next()
		} else if !first {
			break
		}
		switch {
		case p.at(tInt):
			c, _ := strconv.Atoi(p.next().text)
			if p.atPunct("*") {
				p.next()
				name, err := p.expectIdent()
				if err != nil {
					return out, err
				}
				out = out.AddAff(ir.Sym(name).Scale(sign * c))
			} else {
				out = out.AddConst(sign * c)
			}
		case p.at(tIdent):
			name := p.next().text
			out = out.AddAff(ir.Sym(name).Scale(sign))
		default:
			return out, p.errf("expected affine term, found %s", p.cur())
		}
		sign = 1
		first = false
		if !(p.atPunct("+") || p.atPunct("-")) {
			break
		}
	}
	return out, nil
}
