package parser

import (
	"strings"
	"testing"

	"dhpf/internal/ir"
)

const stencilSrc = `
program stencil
param N = 64

!hpf$ processors procs(2, 2)
!hpf$ template tmpl(N, N)
!hpf$ align a with tmpl(d0, d1)
!hpf$ align b with tmpl(d0, d1)
!hpf$ distribute tmpl(BLOCK, BLOCK) onto procs

subroutine main()
  real a(0:N-1, 0:N-1)
  real b(0:N-1, 0:N-1)
  do j = 1, N-2
    do i = 1, N-2
      b(i,j) = 0.25 * (a(i-1,j) + a(i+1,j) + a(i,j-1) + a(i,j+1))
    enddo
  enddo
end
`

func TestParseStencil(t *testing.T) {
	prog, err := Parse(stencilSrc)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name != "stencil" {
		t.Errorf("name = %q", prog.Name)
	}
	if prog.Params["N"] != 64 {
		t.Errorf("param N = %d", prog.Params["N"])
	}
	if len(prog.Processors) != 1 || len(prog.Processors[0].Extents) != 2 {
		t.Fatalf("processors = %+v", prog.Processors)
	}
	if len(prog.Templates) != 1 || len(prog.Aligns) != 2 || len(prog.Distributes) != 1 {
		t.Fatalf("directive counts wrong: %d %d %d", len(prog.Templates), len(prog.Aligns), len(prog.Distributes))
	}
	if prog.Distributes[0].Specs[0].Kind != ir.DistBlock {
		t.Error("distribute spec not BLOCK")
	}
	m := prog.Main()
	if m == nil {
		t.Fatal("no main")
	}
	if got := m.DeclOf("a"); got == nil || got.Rank() != 2 {
		t.Fatalf("decl a = %+v", got)
	}
	asn := ir.Assignments(m.Body)
	if len(asn) != 1 {
		t.Fatalf("assignments = %d", len(asn))
	}
	a := asn[0]
	if len(a.Nest) != 2 || a.Nest[0].Var != "j" || a.Nest[1].Var != "i" {
		t.Fatalf("nest = %v", ir.NestVars(a.Nest))
	}
	refs := ir.Refs(a.Assign.RHS)
	if len(refs) != 4 {
		t.Fatalf("rhs refs = %d", len(refs))
	}
	// Check a(i-1,j) parsed with offset -1 on dim 0.
	r := refs[0]
	if r.Subs[0].Var != "i" || r.Subs[0].Coef != 1 {
		t.Fatalf("sub[0] = %+v", r.Subs[0])
	}
	if c, ok := r.Subs[0].Off.IsConst(); !ok || c != -1 {
		t.Fatalf("sub[0].Off = %v", r.Subs[0].Off)
	}
}

func TestParseDirectivesOnLoop(t *testing.T) {
	src := `
program t
param N = 8
subroutine lhsy(lhs)
  real lhs(0:N-1, 0:N-1)
  real cv(0:N-1)
  real rhoq(0:N-1)
  !hpf$ independent, new(cv, rhoq)
  do i = 1, N-2
    do j = 1, N-2
      cv(j) = 1.0
      rhoq(j) = 2.0
    enddo
    do j = 1, N-2
      lhs(i,j) = cv(j-1) + rhoq(j+1)
    enddo
  enddo
end
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	l := prog.Procs[0].Body[0].(*ir.Loop)
	if !l.Independent {
		t.Error("loop not independent")
	}
	if len(l.New) != 2 || l.New[0] != "cv" || l.New[1] != "rhoq" {
		t.Errorf("new = %v", l.New)
	}
	if len(l.Body) != 2 {
		t.Fatalf("outer body stmts = %d", len(l.Body))
	}
}

func TestParseLocalizeAndOneTripLoop(t *testing.T) {
	src := `
program t
param N = 8
subroutine compute_rhs(rhs, rho_i)
  real rhs(0:N-1, 0:N-1)
  real rho_i(0:N-1, 0:N-1)
  !hpf$ independent, localize(rho_i)
  do onetrip = 1, 1
    do j = 0, N-1
      do i = 0, N-1
        rho_i(i,j) = 1.0 / rhs(i,j)
      enddo
    enddo
    do j = 1, N-2
      do i = 1, N-2
        rhs(i,j) = rho_i(i+1,j) - rho_i(i-1,j)
      enddo
    enddo
  enddo
end
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	l := prog.Procs[0].Body[0].(*ir.Loop)
	if len(l.Localize) != 1 || l.Localize[0] != "rho_i" {
		t.Fatalf("localize = %v", l.Localize)
	}
	if lo, _ := l.Lo.IsConst(); lo != 1 {
		t.Error("onetrip lo != 1")
	}
}

func TestParseCallsAndScalars(t *testing.T) {
	src := `
program t
param N = 8
subroutine main()
  real u(0:N-1)
  real tmp
  do i = 1, N-2
    tmp = u(i) * 2.0
    call solve(u, i, tmp)
  enddo
end
subroutine solve(v, idx, s)
  real v(0:N-1)
  real s
  v(1) = s
end
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Procs) != 2 {
		t.Fatalf("procs = %d", len(prog.Procs))
	}
	var call *ir.CallStmt
	ir.Walk(prog.Main().Body, func(s ir.Stmt, _ []*ir.Loop) bool {
		if c, ok := s.(*ir.CallStmt); ok {
			call = c
		}
		return true
	})
	if call == nil || call.Callee != "solve" || len(call.Args) != 3 {
		t.Fatalf("call = %+v", call)
	}
	if r, ok := call.Args[0].(*ir.ArrayRef); !ok || r.Name != "u" || len(r.Subs) != 0 {
		t.Fatalf("arg0 = %v", call.Args[0])
	}
	if _, ok := call.Args[1].(ir.IndexRef); !ok {
		t.Fatalf("arg1 = %v (%T)", call.Args[1], call.Args[1])
	}
	if _, ok := call.Args[2].(ir.ScalarRef); !ok {
		t.Fatalf("arg2 = %v (%T)", call.Args[2], call.Args[2])
	}
}

func TestParseBackwardLoopAndIntrinsics(t *testing.T) {
	src := `
program t
param N = 8
subroutine main()
  real u(0:N-1)
  do i = N-2, 1, -1
    u(i) = sqrt(abs(u(i+1))) + max(u(i), 0.5)
  enddo
end
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	l := prog.Main().Body[0].(*ir.Loop)
	if l.Step != -1 {
		t.Fatalf("step = %d", l.Step)
	}
	a := l.Body[0].(*ir.Assign)
	if !strings.Contains(a.RHS.String(), "sqrt") || !strings.Contains(a.RHS.String(), "max") {
		t.Fatalf("rhs = %s", a.RHS)
	}
}

func TestParseSubscriptForms(t *testing.T) {
	src := `
program t
param N = 8
param M = 4
subroutine main()
  real a(0:N-1, 0:N-1)
  do i = 1, N-2
    a(N-2, i) = a(-i+N, 3) + a(i+M-1, 0)
  enddo
end
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a := prog.Main().Body[0].(*ir.Loop).Body[0].(*ir.Assign)
	// LHS dim0 is loop-invariant N-2.
	if a.LHS.Subs[0].Var != "" {
		t.Fatalf("lhs sub0 = %+v", a.LHS.Subs[0])
	}
	refs := ir.Refs(a.RHS)
	if refs[0].Subs[0].Coef != -1 {
		t.Fatalf("(-i+N) coef = %d", refs[0].Subs[0].Coef)
	}
	if refs[1].Subs[0].Var != "i" || !refs[1].Subs[0].Off.Eq(ir.Sym("M").AddConst(-1)) {
		t.Fatalf("(i+M-1) = %+v", refs[1].Subs[0])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"missing program", "subroutine main()\nend\n", "program"},
		{"bad step", "program t\nsubroutine main()\ndo i = 1, 4, 2\nenddo\nend\n", "step"},
		{"two loop vars", `
program t
param N = 4
subroutine main()
  real a(0:N-1)
  do i = 1, 2
    do j = 1, 2
      a(i+j) = 1.0
    enddo
  enddo
end
`, "two loop variables"},
		{"nonunit coef", `
program t
param N = 4
subroutine main()
  real a(0:N-1)
  do i = 1, 2
    a(2*i) = 1.0
  enddo
end
`, "non-unit"},
		{"dangling directive", `
program t
subroutine main()
  !hpf$ independent
end
`, "dangling"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestRoundTripThroughPrinter(t *testing.T) {
	prog, err := Parse(stencilSrc)
	if err != nil {
		t.Fatal(err)
	}
	text := ir.Print(prog)
	prog2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, text)
	}
	text2 := ir.Print(prog2)
	if text != text2 {
		t.Fatalf("print not stable:\n--- first\n%s\n--- second\n%s", text, text2)
	}
}

func TestCommentsIgnored(t *testing.T) {
	src := `
program t
! this is a comment
param N = 4
subroutine main()
  real a(0:N-1)
  ! another comment
  do i = 0, N-1
    a(i) = 1.0   ! trailing comment would be part of line? no: comments need own line
  enddo
end
`
	// Trailing comments after statements are also supported because the
	// lexer strips any !... run to end of line.
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}
