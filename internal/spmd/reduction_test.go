package spmd

import (
	"math"
	"testing"

	"dhpf/internal/parser"
)

const reductionSrc = `
program red
param N = 64
param P = 4
!hpf$ processors procs(P)
!hpf$ distribute a(BLOCK) onto procs

subroutine main()
  real a(0:N-1)
  real total
  real lo
  real hi
  total = 0.5
  lo = 1000.0
  hi = -1000.0
  do i = 0, N-1
    a(i) = 0.25*i - 3.0
  enddo
  do i = 0, N-1
    total = total + a(i)
  enddo
  do i = 0, N-1
    lo = min(lo, a(i))
    hi = max(hi, a(i))
  enddo
  do i = 0, N-1
    a(i) = a(i) + 0.001*total + 0.0001*lo - 0.0001*hi
  enddo
end
`

func TestReductionRecognized(t *testing.T) {
	prog, err := CompileSource(reductionSrc, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	plans := prog.Reductions["main"]
	if len(plans) != 3 {
		t.Fatalf("reduction plans = %d, want 3 (%+v)", len(plans), plans)
	}
	ops := map[byte]bool{}
	for _, p := range plans {
		ops[p.Op] = true
	}
	if !ops['+'] || !ops['<'] || !ops['>'] {
		t.Errorf("ops = %v", ops)
	}
}

func TestReductionExecutionMatchesSerial(t *testing.T) {
	compareWithSerial(t, reductionSrc, 4, []string{"a"})
}

func TestReductionWorkIsPartitioned(t *testing.T) {
	prog, err := CompileSource(reductionSrc, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Execute(testMachine(4))
	if err != nil {
		t.Fatal(err)
	}
	// Each rank should do roughly a quarter of the flops, not all of
	// them (which replication would cause).
	var tot float64
	for _, f := range res.Machine.RankFlops {
		tot += f
	}
	for r, f := range res.Machine.RankFlops {
		if f > tot/2 {
			t.Errorf("rank %d flops %g of %g: reduction not partitioned", r, f, tot)
		}
	}
}

func TestProductReductionFallsBackToReplication(t *testing.T) {
	src := `
program prod
param N = 16
param P = 4
!hpf$ processors procs(P)
!hpf$ distribute a(BLOCK) onto procs

subroutine main()
  real a(0:N-1)
  real p
  p = 1.0
  do i = 0, N-1
    a(i) = 1.0 + 0.01*i
  enddo
  do i = 0, N-1
    p = p * a(i)
  enddo
  do i = 0, N-1
    a(i) = a(i) * p
  enddo
end
`
	prog, err := CompileSource(src, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if n := len(prog.Reductions["main"]); n != 0 {
		t.Fatalf("product should not be planned, got %d plans", n)
	}
	// It must still be CORRECT (replicated accumulation).
	compareWithSerial(t, src, 4, []string{"a"})
}

func TestReductionNotPlannedWhenScalarEscapesInLoop(t *testing.T) {
	src := `
program esc
param N = 16
param P = 2
!hpf$ processors procs(P)
!hpf$ distribute a(BLOCK) onto procs

subroutine main()
  real a(0:N-1)
  real s
  s = 0.0
  do i = 0, N-1
    a(i) = 1.0*i
  enddo
  do i = 0, N-1
    s = s + a(i)
    a(i) = s
  enddo
end
`
	prog, err := CompileSource(src, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if n := len(prog.Reductions["main"]); n != 0 {
		t.Fatalf("escaping scalar wrongly planned: %d plans", n)
	}
}

func TestReductionVirtualTimeIncludesCollective(t *testing.T) {
	prog, err := CompileSource(reductionSrc, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testMachine(4)
	res, err := prog.Execute(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The three collectives add at least 3 log-tree latencies.
	if res.Machine.Time < 3*cfg.Latency {
		t.Errorf("virtual time %g suspiciously small", res.Machine.Time)
	}
	// And the result must be right.
	ref, err := RunSerial(parser.MustParse(reductionSrc), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _, _, _ := res.Global("a")
	want, _, _, _ := ref.Array("a")
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("a[%d] = %g want %g", i, got[i], want[i])
		}
	}
}
